package tensor

import (
	"fmt"

	"repro/internal/par"
)

// parFlopThreshold is the approximate floating-point-op count below which
// MatMul/MatVec stay serial: small multiplies (the per-row inference calls
// of tiny models) would lose more to goroutine fan-out than they gain.
const parFlopThreshold = 1 << 17

// MatMul multiplies two rank-2 tensors: (m×k) · (k×n) → (m×n). Large
// multiplies fan the output rows across the shared worker pool (for the
// conv2d lowering the rows are the output channels); every output row is
// computed wholly by one worker, so the parallel product is bit-identical
// to the serial one.
func MatMul(a, b *Tensor) (*Tensor, error) {
	if a.Dims() != 2 || b.Dims() != 2 {
		return nil, fmt.Errorf("%w: MatMul needs rank-2 tensors, got %v and %v", ErrShape, a.shape, b.shape)
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		return nil, fmt.Errorf("%w: inner dimensions %d and %d differ", ErrShape, k, k2)
	}
	out := New(m, n)
	degree := 1
	if m*k*n >= parFlopThreshold {
		degree = par.DefaultDegree()
	}
	rowsPerMorsel := parFlopThreshold / (k*n + 1)
	if rowsPerMorsel < 1 {
		rowsPerMorsel = 1
	}
	par.Run(degree, m, rowsPerMorsel, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.data[i*k : (i+1)*k]
			orow := out.data[i*n : (i+1)*n]
			// ikj order keeps the inner loop streaming over contiguous memory.
			for kk := 0; kk < k; kk++ {
				av := arow[kk]
				if av == 0 {
					continue
				}
				brow := b.data[kk*n : (kk+1)*n]
				for j := 0; j < n; j++ {
					orow[j] += av * brow[j]
				}
			}
		}
	})
	return out, nil
}

// MatVec multiplies a rank-2 tensor (m×k) by a length-k vector, producing a
// length-m vector. Rows (a linear layer's output channels) fan across the
// worker pool above the FLOP threshold; each output element is one worker's
// dot product, so results are bit-identical to serial execution.
func MatVec(a *Tensor, x []float64) ([]float64, error) {
	if a.Dims() != 2 {
		return nil, fmt.Errorf("%w: MatVec needs a rank-2 tensor, got %v", ErrShape, a.shape)
	}
	m, k := a.shape[0], a.shape[1]
	if len(x) != k {
		return nil, fmt.Errorf("%w: vector length %d does not match %d columns", ErrShape, len(x), k)
	}
	out := make([]float64, m)
	degree := 1
	if m*k >= parFlopThreshold {
		degree = par.DefaultDegree()
	}
	rowsPerMorsel := parFlopThreshold / (k + 1)
	if rowsPerMorsel < 1 {
		rowsPerMorsel = 1
	}
	par.Run(degree, m, rowsPerMorsel, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			row := a.data[i*k : (i+1)*k]
			s := 0.0
			for j, v := range row {
				s += v * x[j]
			}
			out[i] = s
		}
	})
	return out, nil
}

// Transpose returns the transpose of a rank-2 tensor.
func Transpose(a *Tensor) (*Tensor, error) {
	if a.Dims() != 2 {
		return nil, fmt.Errorf("%w: Transpose needs a rank-2 tensor, got %v", ErrShape, a.shape)
	}
	m, n := a.shape[0], a.shape[1]
	out := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.data[j*m+i] = a.data[i*n+j]
		}
	}
	return out, nil
}
