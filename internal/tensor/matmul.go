package tensor

import "fmt"

// MatMul multiplies two rank-2 tensors: (m×k) · (k×n) → (m×n).
func MatMul(a, b *Tensor) (*Tensor, error) {
	if a.Dims() != 2 || b.Dims() != 2 {
		return nil, fmt.Errorf("%w: MatMul needs rank-2 tensors, got %v and %v", ErrShape, a.shape, b.shape)
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		return nil, fmt.Errorf("%w: inner dimensions %d and %d differ", ErrShape, k, k2)
	}
	out := New(m, n)
	// ikj loop order keeps the inner loop streaming over contiguous memory.
	for i := 0; i < m; i++ {
		arow := a.data[i*k : (i+1)*k]
		orow := out.data[i*n : (i+1)*n]
		for kk := 0; kk < k; kk++ {
			av := arow[kk]
			if av == 0 {
				continue
			}
			brow := b.data[kk*n : (kk+1)*n]
			for j := 0; j < n; j++ {
				orow[j] += av * brow[j]
			}
		}
	}
	return out, nil
}

// MatVec multiplies a rank-2 tensor (m×k) by a length-k vector, producing a
// length-m vector.
func MatVec(a *Tensor, x []float64) ([]float64, error) {
	if a.Dims() != 2 {
		return nil, fmt.Errorf("%w: MatVec needs a rank-2 tensor, got %v", ErrShape, a.shape)
	}
	m, k := a.shape[0], a.shape[1]
	if len(x) != k {
		return nil, fmt.Errorf("%w: vector length %d does not match %d columns", ErrShape, len(x), k)
	}
	out := make([]float64, m)
	for i := 0; i < m; i++ {
		row := a.data[i*k : (i+1)*k]
		s := 0.0
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out, nil
}

// Transpose returns the transpose of a rank-2 tensor.
func Transpose(a *Tensor) (*Tensor, error) {
	if a.Dims() != 2 {
		return nil, fmt.Errorf("%w: Transpose needs a rank-2 tensor, got %v", ErrShape, a.shape)
	}
	m, n := a.shape[0], a.shape[1]
	out := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.data[j*m+i] = a.data[i*n+j]
		}
	}
	return out, nil
}
