// Package tensor implements dense multi-dimensional arrays of float64 used
// as the numeric substrate for the neural-network inference engine. It is a
// from-scratch, stdlib-only stand-in for the tensor runtime of a deep
// learning framework (the paper uses PyTorch/LibTorch).
//
// Tensors are row-major and immutable in shape: reshaping returns a new
// header sharing the same backing slice. All arithmetic is performed in
// float64 to keep the SQL-side (which computes in the database's Float64
// column type) and the native-side numerics bit-identical, which the
// equivalence tests between DL2SQL and the native engine rely on.
package tensor

import (
	"errors"
	"fmt"
	"math"
)

// Tensor is a dense row-major array of float64.
type Tensor struct {
	shape   []int
	strides []int
	data    []float64
}

// ErrShape is returned when an operation receives tensors with incompatible
// shapes.
var ErrShape = errors.New("tensor: shape mismatch")

// New allocates a zero-filled tensor with the given shape.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d", d))
		}
		n *= d
	}
	t := &Tensor{
		shape: append([]int(nil), shape...),
		data:  make([]float64, n),
	}
	t.strides = computeStrides(t.shape)
	return t
}

// FromSlice wraps data in a tensor of the given shape. The slice is used
// directly (not copied); its length must equal the product of the shape.
func FromSlice(data []float64, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if len(data) != n {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v (need %d)", len(data), shape, n))
	}
	t := &Tensor{
		shape: append([]int(nil), shape...),
		data:  data,
	}
	t.strides = computeStrides(t.shape)
	return t
}

func computeStrides(shape []int) []int {
	strides := make([]int, len(shape))
	s := 1
	for i := len(shape) - 1; i >= 0; i-- {
		strides[i] = s
		s *= shape[i]
	}
	return strides
}

// Shape returns the tensor's dimensions. The returned slice must not be
// mutated.
func (t *Tensor) Shape() []int { return t.shape }

// Dims returns the number of dimensions.
func (t *Tensor) Dims() int { return len(t.shape) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.data) }

// Data returns the backing slice in row-major order. Mutating it mutates the
// tensor.
func (t *Tensor) Data() []float64 { return t.data }

// At returns the element at the given multi-dimensional index.
func (t *Tensor) At(idx ...int) float64 {
	return t.data[t.offset(idx)]
}

// Set assigns the element at the given multi-dimensional index.
func (t *Tensor) Set(v float64, idx ...int) {
	t.data[t.offset(idx)] = v
}

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index rank %d does not match tensor rank %d", len(idx), len(t.shape)))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %d out of range for dimension %d (size %d)", x, i, t.shape[i]))
		}
		off += x * t.strides[i]
	}
	return off
}

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := New(t.shape...)
	copy(c.data, t.data)
	return c
}

// Reshape returns a tensor sharing t's data with a new shape. The total
// element count must be unchanged. One dimension may be -1 to be inferred.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	shape = append([]int(nil), shape...)
	infer := -1
	known := 1
	for i, d := range shape {
		if d == -1 {
			if infer >= 0 {
				panic("tensor: at most one dimension may be -1 in Reshape")
			}
			infer = i
		} else {
			known *= d
		}
	}
	if infer >= 0 {
		if known == 0 || len(t.data)%known != 0 {
			panic(fmt.Sprintf("tensor: cannot infer dimension for reshape of %d elements into %v", len(t.data), shape))
		}
		shape[infer] = len(t.data) / known
		known *= shape[infer]
	}
	if known != len(t.data) {
		panic(fmt.Sprintf("tensor: cannot reshape %d elements into %v", len(t.data), shape))
	}
	return &Tensor{shape: shape, strides: computeStrides(shape), data: t.data}
}

// Fill sets every element to v and returns t.
func (t *Tensor) Fill(v float64) *Tensor {
	for i := range t.data {
		t.data[i] = v
	}
	return t
}

// Apply replaces each element x with f(x) in place and returns t.
func (t *Tensor) Apply(f func(float64) float64) *Tensor {
	for i, v := range t.data {
		t.data[i] = f(v)
	}
	return t
}

// Equal reports whether two tensors have identical shape and all elements
// within eps of each other.
func Equal(a, b *Tensor, eps float64) bool {
	if len(a.shape) != len(b.shape) {
		return false
	}
	for i := range a.shape {
		if a.shape[i] != b.shape[i] {
			return false
		}
	}
	for i := range a.data {
		if math.Abs(a.data[i]-b.data[i]) > eps {
			return false
		}
	}
	return true
}

// Add returns a + b elementwise.
func Add(a, b *Tensor) (*Tensor, error) {
	if !sameShape(a, b) {
		return nil, fmt.Errorf("%w: %v vs %v", ErrShape, a.shape, b.shape)
	}
	out := New(a.shape...)
	for i := range a.data {
		out.data[i] = a.data[i] + b.data[i]
	}
	return out, nil
}

// Sub returns a - b elementwise.
func Sub(a, b *Tensor) (*Tensor, error) {
	if !sameShape(a, b) {
		return nil, fmt.Errorf("%w: %v vs %v", ErrShape, a.shape, b.shape)
	}
	out := New(a.shape...)
	for i := range a.data {
		out.data[i] = a.data[i] - b.data[i]
	}
	return out, nil
}

// Mul returns a * b elementwise (Hadamard product).
func Mul(a, b *Tensor) (*Tensor, error) {
	if !sameShape(a, b) {
		return nil, fmt.Errorf("%w: %v vs %v", ErrShape, a.shape, b.shape)
	}
	out := New(a.shape...)
	for i := range a.data {
		out.data[i] = a.data[i] * b.data[i]
	}
	return out, nil
}

// Scale returns a new tensor with every element multiplied by s.
func (t *Tensor) Scale(s float64) *Tensor {
	out := New(t.shape...)
	for i, v := range t.data {
		out.data[i] = v * s
	}
	return out
}

// AddScalar returns a new tensor with s added to every element.
func (t *Tensor) AddScalar(s float64) *Tensor {
	out := New(t.shape...)
	for i, v := range t.data {
		out.data[i] = v + s
	}
	return out
}

// Sum returns the sum of all elements.
func (t *Tensor) Sum() float64 {
	s := 0.0
	for _, v := range t.data {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of all elements (0 for empty tensors).
func (t *Tensor) Mean() float64 {
	if len(t.data) == 0 {
		return 0
	}
	return t.Sum() / float64(len(t.data))
}

// Variance returns the population variance of all elements.
func (t *Tensor) Variance() float64 {
	if len(t.data) == 0 {
		return 0
	}
	m := t.Mean()
	s := 0.0
	for _, v := range t.data {
		d := v - m
		s += d * d
	}
	return s / float64(len(t.data))
}

// VarianceSample returns the sample (Bessel-corrected) variance, matching the
// SQL stddevSamp aggregate used by the DL2SQL batch-norm rewrite.
func (t *Tensor) VarianceSample() float64 {
	if len(t.data) < 2 {
		return 0
	}
	m := t.Mean()
	s := 0.0
	for _, v := range t.data {
		d := v - m
		s += d * d
	}
	return s / float64(len(t.data)-1)
}

// Max returns the maximum element; it panics on an empty tensor.
func (t *Tensor) Max() float64 {
	if len(t.data) == 0 {
		panic("tensor: Max of empty tensor")
	}
	m := t.data[0]
	for _, v := range t.data[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// ArgMax returns the flat index of the maximum element.
func (t *Tensor) ArgMax() int {
	if len(t.data) == 0 {
		panic("tensor: ArgMax of empty tensor")
	}
	best, bi := t.data[0], 0
	for i, v := range t.data {
		if v > best {
			best, bi = v, i
		}
	}
	return bi
}

func sameShape(a, b *Tensor) bool {
	if len(a.shape) != len(b.shape) {
		return false
	}
	for i := range a.shape {
		if a.shape[i] != b.shape[i] {
			return false
		}
	}
	return true
}

// String renders small tensors fully and larger ones as a summary.
func (t *Tensor) String() string {
	if len(t.data) <= 16 {
		return fmt.Sprintf("Tensor%v%v", t.shape, t.data)
	}
	return fmt.Sprintf("Tensor%v[%d elements]", t.shape, len(t.data))
}
