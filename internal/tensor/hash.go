package tensor

import "math"

// fnvOffset and fnvPrime are the FNV-1a 64-bit parameters.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// Hash returns a stable FNV-1a digest over the tensor's shape and exact
// element bit patterns. Two tensors hash equal iff they have the same shape
// and bit-identical float64 data (NaN payloads and signed zeros included),
// which is what the inference memoization layer keys on: a repeated
// keyframe must hit, a perturbed one must miss.
func (t *Tensor) Hash() uint64 {
	h := uint64(fnvOffset)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= fnvPrime
			v >>= 8
		}
	}
	for _, d := range t.shape {
		mix(uint64(d))
	}
	for _, v := range t.data {
		mix(math.Float64bits(v))
	}
	return h
}

// HashBytes returns the FNV-1a digest of a byte slice. The strategies layer
// uses it as the stable model id of a compiled artifact.
func HashBytes(b []byte) uint64 {
	h := uint64(fnvOffset)
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime
	}
	return h
}

// HashMix folds additional words into an existing digest; dl2sql chains it
// over (model stamp, input hash, pipeline step) to key intermediate
// FeatureMap tables.
func HashMix(h uint64, words ...uint64) uint64 {
	if h == 0 {
		h = fnvOffset
	}
	for _, w := range words {
		for i := 0; i < 8; i++ {
			h ^= w & 0xff
			h *= fnvPrime
			w >>= 8
		}
	}
	return h
}

// HashString folds a string into an existing digest.
func HashString(h uint64, s string) uint64 {
	if h == 0 {
		h = fnvOffset
	}
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return h
}
