package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewShapeAndLen(t *testing.T) {
	x := New(2, 3, 4)
	if x.Len() != 24 {
		t.Fatalf("Len = %d, want 24", x.Len())
	}
	if x.Dims() != 3 || x.Dim(0) != 2 || x.Dim(1) != 3 || x.Dim(2) != 4 {
		t.Fatalf("bad shape %v", x.Shape())
	}
}

func TestAtSetRoundTrip(t *testing.T) {
	x := New(3, 4)
	x.Set(7.5, 2, 1)
	if got := x.At(2, 1); got != 7.5 {
		t.Fatalf("At(2,1) = %v, want 7.5", got)
	}
	// Row-major layout: offset of (2,1) in a 3x4 tensor is 2*4+1 = 9.
	if x.Data()[9] != 7.5 {
		t.Fatalf("row-major offset wrong: data[9] = %v", x.Data()[9])
	}
}

func TestAtOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range index")
		}
	}()
	New(2, 2).At(2, 0)
}

func TestFromSliceSharesData(t *testing.T) {
	d := []float64{1, 2, 3, 4}
	x := FromSlice(d, 2, 2)
	d[0] = 9
	if x.At(0, 0) != 9 {
		t.Fatal("FromSlice must wrap, not copy")
	}
}

func TestFromSliceBadLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	FromSlice([]float64{1, 2, 3}, 2, 2)
}

func TestReshapeInference(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	y := x.Reshape(3, -1)
	if y.Dim(0) != 3 || y.Dim(1) != 2 {
		t.Fatalf("reshape got %v", y.Shape())
	}
	// Reshape shares data.
	y.Set(42, 0, 0)
	if x.At(0, 0) != 42 {
		t.Fatal("Reshape must share backing data")
	}
}

func TestReshapeBadPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2, 3).Reshape(4, 2)
}

func TestCloneIndependent(t *testing.T) {
	x := FromSlice([]float64{1, 2}, 2)
	y := x.Clone()
	y.Set(5, 0)
	if x.At(0) != 1 {
		t.Fatal("Clone must deep-copy")
	}
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3}, 3)
	b := FromSlice([]float64{4, 5, 6}, 3)
	sum, err := Add(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if sum.At(2) != 9 {
		t.Fatalf("Add wrong: %v", sum.Data())
	}
	diff, _ := Sub(b, a)
	if diff.At(0) != 3 {
		t.Fatalf("Sub wrong: %v", diff.Data())
	}
	prod, _ := Mul(a, b)
	if prod.At(1) != 10 {
		t.Fatalf("Mul wrong: %v", prod.Data())
	}
}

func TestShapeMismatchError(t *testing.T) {
	_, err := Add(New(2), New(3))
	if err == nil {
		t.Fatal("expected shape error")
	}
}

func TestScaleAddScalar(t *testing.T) {
	a := FromSlice([]float64{1, -2}, 2)
	if got := a.Scale(3).At(1); got != -6 {
		t.Fatalf("Scale = %v", got)
	}
	if got := a.AddScalar(10).At(0); got != 11 {
		t.Fatalf("AddScalar = %v", got)
	}
}

func TestReductions(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4}, 4)
	if a.Sum() != 10 {
		t.Fatalf("Sum = %v", a.Sum())
	}
	if a.Mean() != 2.5 {
		t.Fatalf("Mean = %v", a.Mean())
	}
	if math.Abs(a.Variance()-1.25) > 1e-12 {
		t.Fatalf("Variance = %v", a.Variance())
	}
	if math.Abs(a.VarianceSample()-5.0/3.0) > 1e-12 {
		t.Fatalf("VarianceSample = %v", a.VarianceSample())
	}
	if a.Max() != 4 {
		t.Fatalf("Max = %v", a.Max())
	}
	if a.ArgMax() != 3 {
		t.Fatalf("ArgMax = %v", a.ArgMax())
	}
}

func TestMatMul(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float64{7, 8, 9, 10, 11, 12}, 3, 2)
	c, err := MatMul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{58, 64, 139, 154}
	for i, w := range want {
		if c.Data()[i] != w {
			t.Fatalf("MatMul[%d] = %v, want %v", i, c.Data()[i], w)
		}
	}
}

func TestMatMulMismatch(t *testing.T) {
	if _, err := MatMul(New(2, 3), New(2, 3)); err == nil {
		t.Fatal("expected inner-dim error")
	}
}

func TestMatVec(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	y, err := MatVec(a, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if y[0] != 3 || y[1] != 7 {
		t.Fatalf("MatVec = %v", y)
	}
}

func TestTranspose(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b, err := Transpose(a)
	if err != nil {
		t.Fatal(err)
	}
	if b.Dim(0) != 3 || b.Dim(1) != 2 || b.At(2, 1) != 6 || b.At(0, 1) != 4 {
		t.Fatalf("Transpose wrong: %v %v", b.Shape(), b.Data())
	}
}

func TestPad2D(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4}, 1, 2, 2)
	p, err := Pad2D(x, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Dim(1) != 4 || p.Dim(2) != 4 {
		t.Fatalf("pad shape %v", p.Shape())
	}
	if p.At(0, 0, 0) != 0 || p.At(0, 1, 1) != 1 || p.At(0, 2, 2) != 4 {
		t.Fatalf("pad content wrong: %v", p.Data())
	}
	if got := p.Sum(); got != 10 {
		t.Fatalf("padding must not change sum: %v", got)
	}
}

func TestConvOutDim(t *testing.T) {
	// Paper's running example: 5x5 input, 3x3 kernel, stride 2, no padding → 2.
	if got := ConvOutDim(5, 3, 2, 0); got != 2 {
		t.Fatalf("ConvOutDim = %d, want 2", got)
	}
	if got := ConvOutDim(224, 7, 2, 3); got != 112 {
		t.Fatalf("ConvOutDim = %d, want 112", got)
	}
}

func TestIm2ColPaperExample(t *testing.T) {
	// 5x5 single-channel input 1..25, 3x3 kernel, stride 2, no padding.
	data := make([]float64, 25)
	for i := range data {
		data[i] = float64(i + 1)
	}
	x := FromSlice(data, 1, 5, 5)
	cols, err := Im2Col(x, 3, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cols.Dim(0) != 4 || cols.Dim(1) != 9 {
		t.Fatalf("im2col shape %v, want [4 9]", cols.Shape())
	}
	// First patch is rows {1,2,3},{6,7,8},{11,12,13}.
	want0 := []float64{1, 2, 3, 6, 7, 8, 11, 12, 13}
	for j, w := range want0 {
		if cols.At(0, j) != w {
			t.Fatalf("patch0[%d] = %v, want %v", j, cols.At(0, j), w)
		}
	}
	// Second patch starts at column 2 (stride 2): {3,4,5},...
	if cols.At(1, 0) != 3 || cols.At(1, 8) != 15 {
		t.Fatalf("patch1 wrong: %v", cols.Data()[9:18])
	}
	// Redundant storage: element 3 appears in both patch 0 and patch 1,
	// matching the paper's note about duplicated FeatureMap entries.
	if cols.At(0, 2) != cols.At(1, 0) {
		t.Fatal("overlapping elements must be duplicated")
	}
}

func TestIm2ColTooSmallInput(t *testing.T) {
	if _, err := Im2Col(New(1, 2, 2), 3, 1, 0); err == nil {
		t.Fatal("expected error for kernel larger than input")
	}
}

func TestApplyFill(t *testing.T) {
	x := New(3).Fill(2)
	x.Apply(func(v float64) float64 { return v * v })
	if x.At(1) != 4 {
		t.Fatalf("Apply wrong: %v", x.Data())
	}
}

func TestEqual(t *testing.T) {
	a := FromSlice([]float64{1, 2}, 2)
	b := FromSlice([]float64{1, 2.0000001}, 2)
	if !Equal(a, b, 1e-6) {
		t.Fatal("tensors should be equal within eps")
	}
	if Equal(a, b, 1e-9) {
		t.Fatal("tensors should differ at tight eps")
	}
	if Equal(a, New(3), 1) {
		t.Fatal("different shapes must not be equal")
	}
}

// Property: (A·B)ᵀ = Bᵀ·Aᵀ for random small matrices.
func TestMatMulTransposeProperty(t *testing.T) {
	f := func(seed uint8) bool {
		m, k, n := int(seed%3)+1, int(seed/3%3)+1, int(seed/9%3)+1
		a := New(m, k)
		b := New(k, n)
		for i := range a.Data() {
			a.Data()[i] = float64((int(seed)+i*7)%11) - 5
		}
		for i := range b.Data() {
			b.Data()[i] = float64((int(seed)+i*13)%9) - 4
		}
		ab, err := MatMul(a, b)
		if err != nil {
			return false
		}
		at, _ := Transpose(a)
		bt, _ := Transpose(b)
		btat, err := MatMul(bt, at)
		if err != nil {
			return false
		}
		abt, _ := Transpose(ab)
		return Equal(abt, btat, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: padding never changes the sum, and im2col of a stride-k,
// kernel-k lowering partitions the input exactly (each element once).
func TestIm2ColPartitionProperty(t *testing.T) {
	f := func(seed uint8) bool {
		k := int(seed%2) + 1       // kernel 1 or 2
		tiles := int(seed/2%3) + 1 // output tiles per side
		side := k * tiles          // input exactly tiled
		x := New(1, side, side)
		for i := range x.Data() {
			x.Data()[i] = float64(i%17) + 1
		}
		cols, err := Im2Col(x, k, k, 0)
		if err != nil {
			return false
		}
		return math.Abs(cols.Sum()-x.Sum()) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
