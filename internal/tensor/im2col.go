package tensor

import "fmt"

// Pad2D zero-pads a CHW tensor by p on each spatial side.
func Pad2D(t *Tensor, p int) (*Tensor, error) {
	if t.Dims() != 3 {
		return nil, fmt.Errorf("%w: Pad2D needs a CHW tensor, got %v", ErrShape, t.shape)
	}
	if p == 0 {
		return t, nil
	}
	c, h, w := t.shape[0], t.shape[1], t.shape[2]
	out := New(c, h+2*p, w+2*p)
	oh, ow := h+2*p, w+2*p
	for ch := 0; ch < c; ch++ {
		for y := 0; y < h; y++ {
			src := t.data[ch*h*w+y*w : ch*h*w+(y+1)*w]
			dstOff := ch*oh*ow + (y+p)*ow + p
			copy(out.data[dstOff:dstOff+w], src)
		}
	}
	return out, nil
}

// ConvOutDim computes the spatial output dimension of a convolution:
// (in + 2p - k)/s + 1, matching Eq. (3) of the paper. Inputs smaller than
// the kernel yield 0 (Go's truncating division would otherwise round the
// negative span up to an output of 1).
func ConvOutDim(in, k, s, p int) int {
	span := in + 2*p - k
	if span < 0 {
		return 0
	}
	return span/s + 1
}

// Im2Col lowers a CHW tensor into the (outH*outW) × (C*k*k) patch matrix
// used to express convolution as a matrix multiply. Row i holds the
// flattened receptive field of output pixel i, channel-major then row-major
// within the kernel window — the same serialization order Algorithm 1 of the
// paper uses for the FeatureMap table, so the SQL path and the native path
// enumerate patch elements identically.
func Im2Col(t *Tensor, k, stride, pad int) (*Tensor, error) {
	if t.Dims() != 3 {
		return nil, fmt.Errorf("%w: Im2Col needs a CHW tensor, got %v", ErrShape, t.shape)
	}
	src, err := Pad2D(t, pad)
	if err != nil {
		return nil, err
	}
	c, h, w := src.shape[0], src.shape[1], src.shape[2]
	outH := ConvOutDim(h, k, stride, 0)
	outW := ConvOutDim(w, k, stride, 0)
	if outH <= 0 || outW <= 0 {
		return nil, fmt.Errorf("%w: kernel %d with stride %d does not fit input %dx%d", ErrShape, k, stride, h, w)
	}
	cols := New(outH*outW, c*k*k)
	row := 0
	for oy := 0; oy < outH; oy++ {
		for ox := 0; ox < outW; ox++ {
			base := row * c * k * k
			for ch := 0; ch < c; ch++ {
				for ky := 0; ky < k; ky++ {
					srcOff := ch*h*w + (oy*stride+ky)*w + ox*stride
					dstOff := base + ch*k*k + ky*k
					copy(cols.data[dstOff:dstOff+k], src.data[srcOff:srcOff+k])
				}
			}
			row++
		}
	}
	return cols, nil
}
