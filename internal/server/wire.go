package server

// The JSON wire format shared by the HTTP handlers and the Go client.
//
// Design constraint: results must round-trip *bit-identically* — the
// differential suite compares server-side results against embedded
// execution datum by datum, so the encoding cannot lose information.
// JSON numbers are unsafe for that (int64 beyond 2^53 and float64
// NaN/Inf/-0 all degrade), so every datum travels as a tagged string:
// ints via strconv in base 10, floats via strconv 'g'/-1 (the shortest
// representation that parses back to the same bits, including "NaN",
// "+Inf", "-0"), bools as "t"/"f", blobs as base64. Schema types travel
// by their engine names ("Int64", "Float64", ...).

import (
	"encoding/base64"
	"fmt"
	"math"
	"strconv"

	"repro/internal/sqldb"
)

// wireValue is one SQL datum on the wire.
type wireValue struct {
	// T tags the type: "" (null), "i", "f", "s", "b", "x" (blob).
	T string `json:"t,omitempty"`
	// V is the value rendering (absent for nulls).
	V string `json:"v,omitempty"`
}

// wireCol describes one output column.
type wireCol struct {
	Table string `json:"table,omitempty"`
	Name  string `json:"name"`
	Type  string `json:"type"`
}

// wireResult is a materialized relation on the wire, row-oriented for
// client ergonomics.
type wireResult struct {
	Schema []wireCol     `json:"schema"`
	Rows   [][]wireValue `json:"rows"`
}

// encodeDatum renders one datum.
func encodeDatum(d sqldb.Datum) wireValue {
	if d.IsNull() {
		return wireValue{}
	}
	switch d.T {
	case sqldb.TInt:
		return wireValue{T: "i", V: strconv.FormatInt(d.I, 10)}
	case sqldb.TFloat:
		return wireValue{T: "f", V: formatFloatExact(d.F)}
	case sqldb.TString:
		return wireValue{T: "s", V: d.S}
	case sqldb.TBool:
		if b, _ := d.AsBool(); b {
			return wireValue{T: "b", V: "t"}
		}
		return wireValue{T: "b", V: "f"}
	case sqldb.TBlob:
		return wireValue{T: "x", V: base64.StdEncoding.EncodeToString(d.B)}
	}
	return wireValue{}
}

// formatFloatExact renders a float so it parses back to the identical
// bits: shortest round-trip form, with the non-finite spellings strconv
// accepts on the way back in.
func formatFloatExact(f float64) string {
	switch {
	case math.IsNaN(f):
		return "NaN"
	case math.IsInf(f, 1):
		return "+Inf"
	case math.IsInf(f, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// decodeDatum parses one wire value back into a datum.
func decodeDatum(v wireValue) (sqldb.Datum, error) {
	switch v.T {
	case "":
		return sqldb.Null(), nil
	case "i":
		n, err := strconv.ParseInt(v.V, 10, 64)
		if err != nil {
			return sqldb.Null(), fmt.Errorf("server: bad int %q: %w", v.V, err)
		}
		return sqldb.Int(n), nil
	case "f":
		f, err := strconv.ParseFloat(v.V, 64)
		if err != nil {
			return sqldb.Null(), fmt.Errorf("server: bad float %q: %w", v.V, err)
		}
		return sqldb.Float(f), nil
	case "s":
		return sqldb.Str(v.V), nil
	case "b":
		return sqldb.Bool(v.V == "t"), nil
	case "x":
		b, err := base64.StdEncoding.DecodeString(v.V)
		if err != nil {
			return sqldb.Null(), fmt.Errorf("server: bad blob: %w", err)
		}
		return sqldb.Blob(b), nil
	}
	return sqldb.Null(), fmt.Errorf("server: unknown value tag %q", v.T)
}

// encodeResult renders a result (nil results — DDL/DML — render as a
// nil-schema wireResult so the client can distinguish "no relation" from
// an empty one).
func encodeResult(res *sqldb.Result) *wireResult {
	if res == nil {
		return &wireResult{}
	}
	out := &wireResult{Schema: make([]wireCol, len(res.Schema)), Rows: [][]wireValue{}}
	for i, c := range res.Schema {
		out.Schema[i] = wireCol{Table: c.Table, Name: c.Name, Type: c.Type.String()}
	}
	n := res.NumRows()
	for i := 0; i < n; i++ {
		row := make([]wireValue, len(res.Cols))
		for j, c := range res.Cols {
			row[j] = encodeDatum(c.Get(i))
		}
		out.Rows = append(out.Rows, row)
	}
	return out
}

// decodeResult reconstructs a *sqldb.Result from the wire form. A
// nil-schema payload decodes to nil (a statement with no relation).
func decodeResult(wr *wireResult) (*sqldb.Result, error) {
	if wr == nil || wr.Schema == nil {
		return nil, nil
	}
	res := &sqldb.Result{
		Schema: make([]sqldb.OutCol, len(wr.Schema)),
		Cols:   make([]*sqldb.Column, len(wr.Schema)),
	}
	for i, c := range wr.Schema {
		t, err := parseColType(c.Type)
		if err != nil {
			return nil, err
		}
		res.Schema[i] = sqldb.OutCol{Table: c.Table, Name: c.Name, Type: t}
		res.Cols[i] = sqldb.NewColumn(t)
	}
	for ri, row := range wr.Rows {
		if len(row) != len(res.Cols) {
			return nil, fmt.Errorf("server: row %d has %d values, want %d", ri, len(row), len(res.Cols))
		}
		for j, v := range row {
			d, err := decodeDatum(v)
			if err != nil {
				return nil, err
			}
			if err := res.Cols[j].Append(d); err != nil {
				return nil, fmt.Errorf("server: row %d col %d: %w", ri, j, err)
			}
		}
	}
	return res, nil
}

// parseColType maps a wire type name back to an engine type. sqldb's
// Type.String renders "NULL" for untyped columns, which ParseType
// (deliberately) rejects for CREATE TABLE, so it is special-cased here.
func parseColType(s string) (sqldb.Type, error) {
	if s == "NULL" {
		return sqldb.TNull, nil
	}
	return sqldb.ParseType(s)
}
