package server

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/qerr"
	"repro/internal/sqldb"
)

// newTestServer builds a server over a small populated DB plus an
// httptest front end, and returns a connected client.
func newTestServer(t *testing.T, cfg Config) (*Server, *Client, *sqldb.DB) {
	t.Helper()
	db := sqldb.New()
	db.Metrics = obs.NewRegistry()
	db.History = obs.NewQueryHistory(64)
	db.EnableSysCatalog()
	mustExec(t, db, `CREATE TABLE kv (k Int64, v String)`)
	for i := 0; i < 10; i++ {
		if err := db.GetTable("kv").AppendRow([]sqldb.Datum{
			sqldb.Int(int64(i)), sqldb.Str(strings.Repeat("v", 8)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	srv := New(db, nil, cfg)
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	cli := Dial(hs.URL).WithHTTPClient(hs.Client())
	if err := cli.Connect(context.Background(), "test"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Close(context.Background()) })
	return srv, cli, db
}

// TestServerQueryRoundTrip: ad-hoc queries through the HTTP path return
// the same rows as embedded execution.
func TestServerQueryRoundTrip(t *testing.T) {
	_, cli, db := newTestServer(t, Config{})
	const q = `SELECT k, v FROM kv WHERE k < 5 ORDER BY k`
	want, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := cli.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != want.NumRows() {
		t.Fatalf("rows: %d != %d", got.NumRows(), want.NumRows())
	}
	for i := 0; i < want.NumRows(); i++ {
		for j := range want.Cols {
			if !datumBitsEqual(want.Cols[j].Get(i), got.Cols[j].Get(i)) {
				t.Fatalf("row %d col %d: %v != %v", i, j, want.Cols[j].Get(i), got.Cols[j].Get(i))
			}
		}
	}
	// DDL/DML: nil result survives, and the write is visible embedded.
	if res, err := cli.Query(context.Background(), `INSERT INTO kv VALUES (100, 'remote')`); err != nil || res != nil {
		t.Fatalf("insert: res=%v err=%v", res, err)
	}
	check, err := db.Query(`SELECT v FROM kv WHERE k = 100`)
	if err != nil || check.NumRows() != 1 {
		t.Fatalf("write not visible: %v, %v", check, err)
	}
}

// TestServerPreparedStatements: prepare once, execute with different
// bindings, close; handles are per-session.
func TestServerPreparedStatements(t *testing.T) {
	_, cli, _ := newTestServer(t, Config{})
	stmt, err := cli.Prepare(context.Background(), `SELECT v FROM kv WHERE k = ?`)
	if err != nil {
		t.Fatal(err)
	}
	if stmt.Params != 1 {
		t.Fatalf("params = %d, want 1", stmt.Params)
	}
	for _, k := range []int64{1, 7, 9} {
		res, err := stmt.Exec(context.Background(), sqldb.Int(k))
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if res.NumRows() != 1 {
			t.Fatalf("k=%d: %d rows", k, res.NumRows())
		}
	}
	if err := stmt.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := stmt.Exec(context.Background(), sqldb.Int(1)); err == nil {
		t.Fatal("exec after close succeeded")
	}
}

// TestServerTypedErrors: server-side failures come back as the same qerr
// sentinels embedded execution produces — errors.Is works over the wire.
func TestServerTypedErrors(t *testing.T) {
	srv, cli, db := newTestServer(t, Config{
		TenantMemory: map[string]int64{"tiny": 64},
	})
	ctx := context.Background()

	// Plain SQL error: untyped, class "error".
	_, err := cli.Query(ctx, `SELECT nope FROM kv`)
	if err == nil || qerr.Lifecycle(err) {
		t.Fatalf("bad column: %v", err)
	}

	// Session timeout -> ErrTimeout. Slow morsels force the deadline; the
	// table must be big enough to cross morsel boundaries (where the
	// lifecycle context is checked).
	mustExec(t, db, `CREATE TABLE pt (id Int64, v Float64)`)
	pt := db.GetTable("pt")
	for i := 0; i < 30000; i++ {
		if err := pt.AppendRow([]sqldb.Datum{sqldb.Int(int64(i)), sqldb.Float(float64(i % 100))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := cli.SetTimeout(ctx, 5*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := cli.SetParallelism(ctx, 2); err != nil {
		t.Fatal(err)
	}
	inj, err := faults.Parse("morsel.delay:d=20ms")
	if err != nil {
		t.Fatal(err)
	}
	db.Faults = inj
	_, err = cli.Query(ctx, `SELECT id, v FROM pt WHERE v > 50 ORDER BY v DESC LIMIT 10`)
	db.Faults = nil
	if !errors.Is(err, qerr.ErrTimeout) {
		t.Fatalf("timeout: got %v, want ErrTimeout", err)
	}
	if err := cli.SetTimeout(ctx, 0); err != nil {
		t.Fatal(err)
	}
	if err := cli.SetParallelism(ctx, 0); err != nil {
		t.Fatal(err)
	}

	// Tenant memory budget -> ErrMemoryBudget (64 bytes cannot hold kv).
	tiny := Dial(strings.TrimSuffix(cli.base, "/")).WithHTTPClient(cli.hc)
	if err := tiny.Connect(ctx, "tiny"); err != nil {
		t.Fatal(err)
	}
	defer tiny.Close(ctx)
	if _, err := tiny.Query(ctx, `SELECT k, v FROM kv`); !errors.Is(err, qerr.ErrMemoryBudget) {
		t.Fatalf("budget: got %v, want ErrMemoryBudget", err)
	}

	// A session can tighten its budget but not loosen the tenant's.
	if err := tiny.SetMemoryBudget(ctx, 1<<30); err != nil {
		t.Fatal(err)
	}
	if _, err := tiny.Query(ctx, `SELECT k, v FROM kv`); !errors.Is(err, qerr.ErrMemoryBudget) {
		t.Fatalf("loosened budget: got %v, want ErrMemoryBudget still", err)
	}
	_ = srv
}

// TestServerSessionVariablesApply: per-session parallelism reaches the
// executor (results stay identical — the differential property).
func TestServerSessionVariablesApply(t *testing.T) {
	_, cli, db := newTestServer(t, Config{})
	ctx := context.Background()
	const q = `SELECT k, v FROM kv ORDER BY k`
	want, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{1, 4} {
		if err := cli.SetParallelism(ctx, par); err != nil {
			t.Fatal(err)
		}
		got, err := cli.Query(ctx, q)
		if err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		if got.NumRows() != want.NumRows() {
			t.Fatalf("par=%d: rows %d != %d", par, got.NumRows(), want.NumRows())
		}
		for i := 0; i < want.NumRows(); i++ {
			for j := range want.Cols {
				if !datumBitsEqual(want.Cols[j].Get(i), got.Cols[j].Get(i)) {
					t.Fatalf("par=%d row %d col %d differ", par, i, j)
				}
			}
		}
	}
}

// TestServerSysTables: sys.sessions and sys.admission are queryable with
// SQL through the server itself and reflect live state.
func TestServerSysTables(t *testing.T) {
	_, cli, _ := newTestServer(t, Config{})
	ctx := context.Background()

	res, err := cli.Query(ctx, `SELECT id, tenant, queries FROM sys.sessions ORDER BY id`)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 1 {
		t.Fatalf("sys.sessions rows = %d, want 1", res.NumRows())
	}
	if got := res.Cols[0].Get(0).S; got != cli.Session() {
		t.Fatalf("sys.sessions id = %q, want %q", got, cli.Session())
	}
	if got := res.Cols[1].Get(0).S; got != "test" {
		t.Fatalf("sys.sessions tenant = %q", got)
	}
	// The scan runs inside the query being counted, so queries >= 1.
	if n, _ := res.Cols[2].Get(0).AsInt(); n < 1 {
		t.Fatalf("sys.sessions queries = %d", n)
	}

	res, err = cli.Query(ctx, `SELECT tenant, admitted, rejected, draining FROM sys.admission WHERE tenant = 'test'`)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 1 {
		t.Fatalf("sys.admission rows = %d, want 1", res.NumRows())
	}
	if n, _ := res.Cols[1].Get(0).AsInt(); n < 1 {
		t.Fatalf("sys.admission admitted = %d", n)
	}
	if b, _ := res.Cols[3].Get(0).AsBool(); b {
		t.Fatal("sys.admission reports draining on a live server")
	}
}

// TestServerMetricsEndpoint: the Prometheus mux is mounted on the same
// listener and exports the server.* series.
func TestServerMetricsEndpoint(t *testing.T) {
	srv, cli, _ := newTestServer(t, Config{})
	if _, err := cli.Query(context.Background(), `SELECT k FROM kv`); err != nil {
		t.Fatal(err)
	}
	_ = srv
	resp, err := cli.hc.Get(cli.base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{"server_requests", "server_admission_admitted", "server_sessions"} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
}

// TestServerDrain: drain stops new work with the typed sentinel, finishes
// in-flight queries within the grace window, and health reports draining.
func TestServerDrain(t *testing.T) {
	srv, cli, _ := newTestServer(t, Config{DrainGrace: 2 * time.Second})
	ctx := context.Background()

	// A query started before drain finishes normally within the grace.
	started := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		close(started)
		_, err := cli.Query(ctx, `SELECT k, v FROM kv ORDER BY k`)
		done <- err
	}()
	<-started
	srv.Drain()
	if err := <-done; err != nil && !errors.Is(err, qerr.ErrAdmissionRejected) {
		// The race between the query reaching admission and Drain is
		// legitimate; what is not allowed is an untyped failure.
		t.Fatalf("in-flight query during drain: %v", err)
	}

	// New queries are refused with the sentinel.
	if _, err := cli.Query(ctx, `SELECT 1 AS x`); !errors.Is(err, qerr.ErrAdmissionRejected) {
		t.Fatalf("post-drain query: got %v, want ErrAdmissionRejected", err)
	}
	if status, err := cli.Health(ctx); err != nil || status != "draining" {
		t.Fatalf("health = %q, %v", status, err)
	}
	// Drain is idempotent.
	srv.Drain()
}

// TestServerRejectionStatusCode: admission rejection surfaces as HTTP 429
// for generic middleware, with the class in the payload.
func TestServerRejectionStatusCode(t *testing.T) {
	srv, cli, _ := newTestServer(t, Config{})
	srv.Drain()
	body := strings.NewReader(`{"sql":"SELECT 1 AS x"}`)
	resp, err := cli.hc.Post(cli.base+"/v1/query", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	payload, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(payload), `"admission_rejected"`) {
		t.Fatalf("payload %s missing class", payload)
	}
}

// TestServerOnDrainHook: drain hooks (slow-log flush) run exactly once,
// after in-flight work is gone.
func TestServerOnDrainHook(t *testing.T) {
	srv, _, _ := newTestServer(t, Config{})
	ran := 0
	srv.OnDrain(func() { ran++ })
	srv.Drain()
	srv.Drain()
	if ran != 1 {
		t.Fatalf("drain hook ran %d times", ran)
	}
}
