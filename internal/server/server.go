// Package server is the multi-session serving front end: a pure-stdlib
// HTTP/JSON layer that multiplexes many client sessions over one shared
// sqldb.DB (and, optionally, one strategies.Context for collaborative
// inference queries).
//
// The layering turns the embedded engine outward without changing it:
//
//	client ──HTTP/JSON──▶ handlers ──▶ admission control ──▶ session ctx
//	                                        │                    │
//	                                 fair RR across tenants  timeout/budget/
//	                                 bounded queue depth     parallelism overrides
//	                                        ▼                    ▼
//	                                  shared sqldb.DB  /  strategies.Context
//	                                                             │
//	                                               schedule.Scheduler (optional):
//	                                               concurrent sessions' inference
//	                                               coalesces into shared batches
//
// When the strategies context has a scheduler enabled (EnableScheduler),
// concurrent colquery sessions stop paying per-query inference: their
// forward passes coalesce into shared batches and identical requests
// single-flight. Drain waits for the scheduler's in-flight batches after
// the last query exits.
//
// Every query runs under a context assembled from three sources — the HTTP
// request's context (client disconnects cancel mid-query), the server's
// drain context (shutdown cancels in-flight work at morsel boundaries),
// and the session's timeout variable — plus the per-tenant memory budget
// and per-session parallelism carried as sqldb context overrides. Failures
// surface as the qerr taxonomy, serialized as a stable error class the
// client maps back onto the same sentinels, so errors.Is works identically
// embedded and over the wire.
//
// Admission control (see admission.go) bounds concurrency and queue depth
// with round-robin fairness across tenants. Graceful drain stops accepting
// work, rejects the queue, waits a grace period, cancels stragglers via
// the lifecycle contexts, and flushes the slow log. The server registers
// sys.sessions and sys.admission into the engine's sys.* catalog, so its
// own state is queryable with SQL through itself.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/colquery"
	"repro/internal/obs"
	"repro/internal/obs/export"
	"repro/internal/qerr"
	"repro/internal/sqldb"
	"repro/internal/strategies"
)

// Config assembles a Server.
type Config struct {
	// Admission sizes the admission controller (zero value = defaults).
	Admission AdmissionConfig
	// DefaultTenant is the tenant label for requests that do not name one
	// ("default" when empty).
	DefaultTenant string
	// TenantMemory is each tenant's per-query materialization budget in
	// bytes; TenantMemoryDefault applies to tenants not in the map. 0
	// means no budget beyond the DB-level knob.
	TenantMemory        map[string]int64
	TenantMemoryDefault int64
	// SessionIdleTimeout evicts sessions idle this long (0 = never).
	SessionIdleTimeout time.Duration
	// DrainGrace is how long Drain waits for in-flight queries to finish
	// naturally before cancelling them (default 5s; negative = cancel
	// immediately).
	DrainGrace time.Duration
}

// Server multiplexes client sessions over one shared DB.
type Server struct {
	db   *sqldb.DB
	env  *strategies.Context // optional collaborative-inference surface
	cfg  Config
	adm  *admission
	sess *sessions
	mux  *http.ServeMux

	// colMu serializes collaborative-query strategy executions that mutate
	// shared engine state: DB-UDF registers its nUDFs on the shared DB for
	// the duration of one execution, so two concurrent DB-UDF colqueries
	// would race on the UDF registry (and any strategy running with the
	// fallback ladder may degrade into DB-UDF). DB-PyTorch without
	// fallback touches no shared registry — its predictions tables get
	// unique names — so it runs without the lock; that is the path whose
	// concurrent requests coalesce in the inference scheduler. Plain SQL
	// (including SQL that calls persistently registered UDFs) is never
	// serialized.
	colMu sync.Mutex

	baseCtx    context.Context
	baseCancel context.CancelFunc
	// drainMu orders enter() against Drain: once draining flips under the
	// lock, no new inflight.Add can race Drain's inflight.Wait.
	drainMu   sync.Mutex
	inflight  sync.WaitGroup
	draining  atomic.Bool
	drainOnce sync.Once
	// background tracks server-owned loops (the session reaper) separately
	// from inflight: Drain's grace period is for client queries only — an
	// idle server must drain immediately, not wait out the grace window for
	// its own housekeeping goroutines.
	background sync.WaitGroup

	// onDrain hooks run after in-flight queries are gone (slow-log flush).
	onDrain []func()

	strategies map[string]strategies.Strategy
}

// New assembles a server over a DB. env may be nil (plain SQL serving
// only); when set, the /v1/colquery surface executes collaborative queries
// under any of the paper's four strategies. New registers sys.sessions and
// sys.admission into the DB's sys.* catalog.
func New(db *sqldb.DB, env *strategies.Context, cfg Config) *Server {
	if cfg.DefaultTenant == "" {
		cfg.DefaultTenant = "default"
	}
	if cfg.DrainGrace == 0 {
		cfg.DrainGrace = 5 * time.Second
	}
	baseCtx, baseCancel := context.WithCancel(context.Background())
	s := &Server{
		db:         db,
		env:        env,
		cfg:        cfg,
		adm:        newAdmission(cfg.Admission),
		sess:       newSessions(),
		baseCtx:    baseCtx,
		baseCancel: baseCancel,
		strategies: map[string]strategies.Strategy{},
	}
	for _, st := range strategies.All() {
		s.strategies[strings.ToLower(st.Name())] = st
	}
	s.mux = http.NewServeMux()
	s.routes()
	s.registerSysTables()
	if cfg.SessionIdleTimeout > 0 {
		s.background.Add(1)
		go s.reapLoop()
	}
	return s
}

// OnDrain registers a hook to run at the end of Drain, after in-flight
// queries have finished (e.g. flushing a buffered slow-query log).
func (s *Server) OnDrain(fn func()) { s.onDrain = append(s.onDrain, fn) }

// Handler returns the server's HTTP handler (for httptest and embedding
// into a larger mux).
func (s *Server) Handler() http.Handler { return s.mux }

// DB exposes the shared engine (the sys-table scans need it).
func (s *Server) DB() *sqldb.DB { return s.db }

func (s *Server) metrics() *obs.Registry { return s.db.Metrics }

func (s *Server) routes() {
	s.mux.HandleFunc("POST /v1/session", s.handleSessionNew)
	s.mux.HandleFunc("POST /v1/session/set", s.handleSessionSet)
	s.mux.HandleFunc("POST /v1/session/close", s.handleSessionClose)
	s.mux.HandleFunc("POST /v1/query", s.handleQuery)
	s.mux.HandleFunc("POST /v1/prepare", s.handlePrepare)
	s.mux.HandleFunc("POST /v1/stmt/exec", s.handleStmtExec)
	s.mux.HandleFunc("POST /v1/stmt/close", s.handleStmtClose)
	s.mux.HandleFunc("POST /v1/colquery", s.handleColQuery)
	s.mux.HandleFunc("GET /v1/traces/{id}", s.handleTraceGet)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	if reg := s.metrics(); reg != nil {
		// The Prometheus text endpoint plus the pprof handlers, mounted on
		// the same listener as the query API.
		diag := export.NewMux(reg)
		s.mux.Handle("/metrics", diag)
		s.mux.Handle("/debug/pprof/", diag)
	}
}

// reapLoop evicts idle sessions until the server drains.
func (s *Server) reapLoop() {
	defer s.background.Done()
	t := time.NewTicker(s.cfg.SessionIdleTimeout / 2)
	defer t.Stop()
	for {
		select {
		case <-s.baseCtx.Done():
			return
		case <-t.C:
			s.sess.reapIdle(s.cfg.SessionIdleTimeout)
			s.noteSessionGauge()
		}
	}
}

// Drain gracefully shuts the serving layer down: stop admitting, reject
// the queue, give in-flight queries DrainGrace to finish, cancel the
// stragglers through their lifecycle contexts, wait for every handler to
// exit, drain the inference scheduler's in-flight batches, then run the
// drain hooks (slow-log flush). Idempotent; safe to call from a signal
// handler while requests are in flight.
func (s *Server) Drain() {
	s.drainOnce.Do(func() {
		s.drainMu.Lock()
		s.draining.Store(true)
		s.drainMu.Unlock()
		s.adm.drain()
		done := make(chan struct{})
		go func() {
			s.inflight.Wait()
			close(done)
		}()
		if s.cfg.DrainGrace > 0 {
			select {
			case <-done:
			case <-time.After(s.cfg.DrainGrace):
			}
		}
		// Cancel whatever is still running (also stops the reap loop).
		s.baseCancel()
		<-done
		s.background.Wait()
		// In-flight queries are gone; drain the inference scheduler so its
		// coalesced batches finish (or are cut off after its own grace)
		// before the drain hooks run. Nil-safe when no inference context
		// or no scheduler is wired.
		if s.env != nil {
			s.env.Scheduler.Drain()
		}
		for _, fn := range s.onDrain {
			fn()
		}
	})
}

// Draining reports whether Drain has started.
func (s *Server) Draining() bool { return s.draining.Load() }

// enter registers one query-shaped request with the drain tracker, or
// refuses it when the server is draining.
func (s *Server) enter() error {
	s.drainMu.Lock()
	defer s.drainMu.Unlock()
	if s.draining.Load() {
		return fmt.Errorf("%w: server is draining", qerr.ErrAdmissionRejected)
	}
	s.inflight.Add(1)
	return nil
}

// ---- wire request/response envelopes ----

type sessionNewRequest struct {
	Tenant string `json:"tenant,omitempty"`
	// TimeoutMs, ParallelismN, MemoryBudget seed the session variables.
	TimeoutMs    int64 `json:"timeout_ms,omitempty"`
	Parallelism  int   `json:"parallelism,omitempty"`
	MemoryBudget int64 `json:"memory_budget,omitempty"`
}

type sessionNewResponse struct {
	Session string `json:"session"`
	Tenant  string `json:"tenant"`
}

type sessionSetRequest struct {
	Session string `json:"session"`
	// Pointers distinguish "leave unchanged" from "set to zero/off".
	TimeoutMs    *int64 `json:"timeout_ms,omitempty"`
	Parallelism  *int   `json:"parallelism,omitempty"`
	MemoryBudget *int64 `json:"memory_budget,omitempty"`
}

type sessionRequest struct {
	Session string `json:"session"`
}

type queryRequest struct {
	Session string `json:"session,omitempty"`
	Tenant  string `json:"tenant,omitempty"` // for session-less one-shots
	SQL     string `json:"sql"`
}

type queryResponse struct {
	Result *wireResult `json:"result,omitempty"`
	WallMs float64     `json:"wall_ms"`
	Queued bool        `json:"queued,omitempty"`
	// TraceID identifies the request's retained trace (empty when the
	// tail sampler dropped it or tracing is off); also sent as the
	// X-Trace-Id response header.
	TraceID string `json:"trace_id,omitempty"`
}

type prepareRequest struct {
	Session string `json:"session"`
	SQL     string `json:"sql"`
}

type prepareResponse struct {
	Stmt   string `json:"stmt"`
	Params int    `json:"params"`
}

type stmtExecRequest struct {
	Session string      `json:"session"`
	Stmt    string      `json:"stmt"`
	Params  []wireValue `json:"params,omitempty"`
}

type stmtCloseRequest struct {
	Session string `json:"session"`
	Stmt    string `json:"stmt"`
}

type colQueryRequest struct {
	Session  string `json:"session,omitempty"`
	Tenant   string `json:"tenant,omitempty"`
	SQL      string `json:"sql"`
	Strategy string `json:"strategy"`
	// Fallback engages the graceful-degradation ladder on serving
	// failures (ExecuteWithFallback) instead of reporting them.
	Fallback bool `json:"fallback,omitempty"`
}

type colQueryResponse struct {
	Result       *wireResult `json:"result,omitempty"`
	Strategy     string      `json:"strategy"`
	FallbackPath []string    `json:"fallback_path,omitempty"`
	LoadingS     float64     `json:"loading_s"`
	InferenceS   float64     `json:"inference_s"`
	RelationalS  float64     `json:"relational_s"`
	WallMs       float64     `json:"wall_ms"`
	TraceID      string      `json:"trace_id,omitempty"`
}

type wireError struct {
	Class   string `json:"class"`
	Message string `json:"message"`
}

type errorResponse struct {
	Error wireError `json:"error"`
}

// ---- handlers ----

const maxRequestBytes = 64 << 20

func readJSON(w http.ResponseWriter, r *http.Request, into any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, maxRequestBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		writeError(w, fmt.Errorf("bad request: %w", err))
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, payload any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(payload)
}

// statusOf maps an error class onto an HTTP status. The class string in
// the payload is authoritative for clients; the status exists for generic
// HTTP middlware (load balancers retry 429/503, not 400).
func statusOf(err error) int {
	switch {
	case errors.Is(err, qerr.ErrAdmissionRejected):
		return http.StatusTooManyRequests
	case errors.Is(err, qerr.ErrTimeout):
		return http.StatusRequestTimeout
	case errors.Is(err, qerr.ErrCancelled):
		return 499 // client closed request (nginx convention)
	case errors.Is(err, qerr.ErrServingUnavailable):
		return http.StatusServiceUnavailable
	case errors.Is(err, qerr.ErrMemoryBudget), errors.Is(err, qerr.ErrInternal):
		return http.StatusInternalServerError
	}
	return http.StatusBadRequest
}

func writeError(w http.ResponseWriter, err error) {
	class := qerr.Class(err)
	if class == "" {
		class = "error"
	}
	writeJSON(w, statusOf(err), errorResponse{Error: wireError{Class: class, Message: err.Error()}})
}

// traceContext plants a client-supplied X-Trace-Id as a trace-ID hint on
// the request context; the trace store adopts valid hints when runQuery
// starts the request trace, so a trace spans the HTTP hop end to end.
func traceContext(r *http.Request) context.Context {
	if id := r.Header.Get("X-Trace-Id"); id != "" {
		return obs.ContextWithTraceID(r.Context(), id)
	}
	return r.Context()
}

// handleTraceGet serves one retained trace as Chrome trace_event JSON
// (load it at chrome://tracing or ui.perfetto.dev).
func (s *Server) handleTraceGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, ok := s.db.Traces.Get(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: wireError{
			Class: "not_found", Message: fmt.Sprintf("no retained trace %q", id),
		}})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	st.WriteChromeTrace(w)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if s.draining.Load() {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": status})
}

func (s *Server) handleSessionNew(w http.ResponseWriter, r *http.Request) {
	var req sessionNewRequest
	if !readJSON(w, r, &req) {
		return
	}
	if s.draining.Load() {
		writeError(w, fmt.Errorf("%w: server is draining", qerr.ErrAdmissionRejected))
		return
	}
	tenant := req.Tenant
	if tenant == "" {
		tenant = s.cfg.DefaultTenant
	}
	sess := s.sess.create(tenant)
	sess.SetTimeout(time.Duration(req.TimeoutMs) * time.Millisecond)
	sess.SetParallelism(req.Parallelism)
	sess.SetMemoryBudget(req.MemoryBudget)
	s.noteSessionGauge()
	writeJSON(w, http.StatusOK, sessionNewResponse{Session: sess.ID, Tenant: tenant})
}

func (s *Server) handleSessionSet(w http.ResponseWriter, r *http.Request) {
	var req sessionSetRequest
	if !readJSON(w, r, &req) {
		return
	}
	sess, ok := s.sess.get(req.Session)
	if !ok {
		writeError(w, fmt.Errorf("no such session %q", req.Session))
		return
	}
	sess.touch()
	if req.TimeoutMs != nil {
		sess.SetTimeout(time.Duration(*req.TimeoutMs) * time.Millisecond)
	}
	if req.Parallelism != nil {
		sess.SetParallelism(*req.Parallelism)
	}
	if req.MemoryBudget != nil {
		sess.SetMemoryBudget(*req.MemoryBudget)
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleSessionClose(w http.ResponseWriter, r *http.Request) {
	var req sessionRequest
	if !readJSON(w, r, &req) {
		return
	}
	if !s.sess.close(req.Session) {
		writeError(w, fmt.Errorf("no such session %q", req.Session))
		return
	}
	s.noteSessionGauge()
	writeJSON(w, http.StatusOK, map[string]string{"status": "closed"})
}

func (s *Server) handlePrepare(w http.ResponseWriter, r *http.Request) {
	var req prepareRequest
	if !readJSON(w, r, &req) {
		return
	}
	sess, ok := s.sess.get(req.Session)
	if !ok {
		writeError(w, fmt.Errorf("prepare requires a session (got %q)", req.Session))
		return
	}
	sess.touch()
	p, err := s.db.Prepare(req.SQL)
	if err != nil {
		writeError(w, err)
		return
	}
	id := sess.addPrepared(p, p.NumParams())
	writeJSON(w, http.StatusOK, prepareResponse{Stmt: id, Params: p.NumParams()})
}

func (s *Server) handleStmtClose(w http.ResponseWriter, r *http.Request) {
	var req stmtCloseRequest
	if !readJSON(w, r, &req) {
		return
	}
	sess, ok := s.sess.get(req.Session)
	if !ok {
		writeError(w, fmt.Errorf("no such session %q", req.Session))
		return
	}
	sess.touch()
	if !sess.closePrepared(req.Stmt) {
		writeError(w, fmt.Errorf("no such statement %q", req.Stmt))
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "closed"})
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if !readJSON(w, r, &req) {
		return
	}
	sess, tenant, err := s.resolveSession(req.Session, req.Tenant)
	if err != nil {
		writeError(w, err)
		return
	}
	start := time.Now()
	res, queued, traceID, err := s.runQuery(traceContext(r), sess, tenant, func(ctx context.Context) (*sqldb.Result, error) {
		return s.db.ExecContext(ctx, req.SQL)
	})
	if err != nil {
		writeError(w, err)
		return
	}
	if traceID != "" {
		w.Header().Set("X-Trace-Id", traceID)
	}
	writeJSON(w, http.StatusOK, queryResponse{
		Result:  encodeResult(res),
		WallMs:  float64(time.Since(start)) / float64(time.Millisecond),
		Queued:  queued,
		TraceID: traceID,
	})
}

func (s *Server) handleStmtExec(w http.ResponseWriter, r *http.Request) {
	var req stmtExecRequest
	if !readJSON(w, r, &req) {
		return
	}
	sess, ok := s.sess.get(req.Session)
	if !ok {
		writeError(w, fmt.Errorf("no such session %q", req.Session))
		return
	}
	p, ok := sess.getPrepared(req.Stmt)
	if !ok {
		writeError(w, fmt.Errorf("no such statement %q", req.Stmt))
		return
	}
	args := make([]sqldb.Datum, len(req.Params))
	for i, v := range req.Params {
		d, err := decodeDatum(v)
		if err != nil {
			writeError(w, err)
			return
		}
		args[i] = d
	}
	start := time.Now()
	res, queued, traceID, err := s.runQuery(traceContext(r), sess, sess.Tenant, func(ctx context.Context) (*sqldb.Result, error) {
		return p.ExecContext(ctx, args...)
	})
	if err != nil {
		writeError(w, err)
		return
	}
	if traceID != "" {
		w.Header().Set("X-Trace-Id", traceID)
	}
	writeJSON(w, http.StatusOK, queryResponse{
		Result:  encodeResult(res),
		WallMs:  float64(time.Since(start)) / float64(time.Millisecond),
		Queued:  queued,
		TraceID: traceID,
	})
}

func (s *Server) handleColQuery(w http.ResponseWriter, r *http.Request) {
	var req colQueryRequest
	if !readJSON(w, r, &req) {
		return
	}
	if s.env == nil {
		writeError(w, errors.New("this server has no inference context (started without a dataset binding)"))
		return
	}
	strat, ok := s.strategies[strings.ToLower(req.Strategy)]
	if !ok {
		writeError(w, fmt.Errorf("unknown strategy %q (want DL2SQL, DL2SQL-OP, DB-UDF, or DB-PyTorch)", req.Strategy))
		return
	}
	sess, tenant, err := s.resolveSession(req.Session, req.Tenant)
	if err != nil {
		writeError(w, err)
		return
	}
	q, err := colquery.Analyze(req.SQL)
	if err != nil {
		writeError(w, err)
		return
	}
	start := time.Now()
	var bd strategies.CostBreakdown
	finalStrategy := strat.Name()
	res, queued, traceID, err := s.runQuery(traceContext(r), sess, tenant, func(ctx context.Context) (*sqldb.Result, error) {
		// DB-PyTorch without the fallback ladder mutates no shared engine
		// state, so concurrent requests run unserialized and their
		// inference submissions coalesce in the scheduler; everything else
		// may register UDFs and takes colMu.
		if _, lockFree := strat.(*strategies.DBPyTorch); !lockFree || req.Fallback {
			s.colMu.Lock()
			defer s.colMu.Unlock()
		}
		var res *sqldb.Result
		var execErr error
		if req.Fallback {
			res, bd, execErr = strategies.ExecuteWithFallback(ctx, s.env, strat, q)
			if n := len(bd.FallbackPath); n > 0 {
				finalStrategy = bd.FallbackPath[n-1]
			}
		} else {
			res, bd, execErr = strat.Execute(ctx, s.env, q)
		}
		return res, execErr
	})
	if err != nil {
		writeError(w, err)
		return
	}
	if traceID != "" {
		w.Header().Set("X-Trace-Id", traceID)
	}
	writeJSON(w, http.StatusOK, colQueryResponse{
		Result:       encodeResult(res),
		Strategy:     finalStrategy,
		FallbackPath: bd.FallbackPath,
		LoadingS:     bd.Loading,
		InferenceS:   bd.Inference,
		RelationalS:  bd.Relational,
		WallMs:       float64(time.Since(start)) / float64(time.Millisecond),
		TraceID:      traceID,
	})
	_ = queued
}

// resolveSession maps an optional session ID (or explicit tenant, for
// session-less one-shots) to the session and admission tenant.
func (s *Server) resolveSession(sessionID, tenant string) (*Session, string, error) {
	if sessionID != "" {
		sess, ok := s.sess.get(sessionID)
		if !ok {
			return nil, "", fmt.Errorf("no such session %q", sessionID)
		}
		sess.touch()
		return sess, sess.Tenant, nil
	}
	if tenant == "" {
		tenant = s.cfg.DefaultTenant
	}
	return nil, tenant, nil
}

// tenantBudget resolves a tenant's per-query byte budget.
func (s *Server) tenantBudget(tenant string) int64 {
	if b, ok := s.cfg.TenantMemory[tenant]; ok {
		return b
	}
	return s.cfg.TenantMemoryDefault
}

// runQuery is the one path every query-shaped request takes: admission,
// context assembly (drain + disconnect + session vars + tenant budget),
// trace creation, execution, and metrics. The returned traceID is the
// request's retained trace ID ("" when the tail sampler dropped it or the
// DB has no trace store); handlers echo it in the response envelope and
// the X-Trace-Id header.
func (s *Server) runQuery(reqCtx context.Context, sess *Session, tenant string,
	exec func(ctx context.Context) (*sqldb.Result, error)) (res *sqldb.Result, queued bool, traceID string, err error) {
	reg := s.metrics()
	if err := s.enter(); err != nil {
		if reg != nil {
			reg.Counter(obs.MetricServerRejected).Add(1)
		}
		return nil, false, "", err
	}
	defer s.inflight.Done()

	admitStart := time.Now()
	release, queued, err := s.adm.Admit(reqCtx, tenant)
	if err != nil {
		if reg != nil {
			if errors.Is(err, qerr.ErrAdmissionRejected) {
				reg.Counter(obs.MetricServerRejected).Add(1)
			}
			reg.Counter(obs.MetricServerErrors).Add(1)
		}
		return nil, queued, "", err
	}
	defer release()
	if reg != nil {
		reg.Counter(obs.MetricServerRequests).Add(1)
		reg.Counter(obs.MetricServerAdmitted).Add(1)
		if queued {
			reg.Counter(obs.MetricServerQueued).Add(1)
			reg.Histogram(obs.MetricServerQueueSeconds).Observe(time.Since(admitStart).Seconds())
		}
		reg.Gauge(obs.MetricServerInflight).Set(float64(s.admInflight()))
	}

	// Context assembly: request ctx (client disconnect) merged with the
	// drain ctx, bounded by the session timeout, carrying the tenant
	// memory budget and session parallelism.
	ctx, cancel := context.WithCancel(reqCtx)
	defer cancel()
	stopAfter := context.AfterFunc(s.baseCtx, cancel)
	defer stopAfter()

	budget := s.tenantBudget(tenant)
	if sess != nil {
		if t := sess.Timeout(); t > 0 {
			var cancelT context.CancelFunc
			ctx, cancelT = context.WithTimeout(ctx, t)
			defer cancelT()
		}
		if sb := sess.MemoryBudget(); sb > 0 && (budget <= 0 || sb < budget) {
			budget = sb
		}
		if p := sess.Parallelism(); p > 0 {
			ctx = sqldb.WithParallelism(ctx, p)
		}
		sess.inflight.Add(1)
		sess.queries.Add(1)
		defer sess.inflight.Add(-1)
	}
	ctx = sqldb.WithMemoryBudget(ctx, budget)

	// The server is the outermost layer: every served request gets its
	// trace here, and the inner layers (sqldb statement accounting, the
	// strategy executor) join it through the context instead of creating
	// their own. A client-supplied X-Trace-Id arrives as a context hint
	// (traceContext) and is adopted by StartTrace.
	tr := s.db.Traces.StartTrace(ctx, "request")
	if tr != nil {
		if sess != nil {
			tr.Root().SetAttr("tenant", sess.Tenant)
		} else {
			tr.Root().SetAttr("tenant", tenant)
		}
		s.db.Tracer.Adopt(tr.Root())
		ctx = obs.ContextWithTraceSpan(ctx, tr, tr.Root())
	}

	start := time.Now()
	res, err = exec(ctx)
	if tr != nil {
		if err != nil {
			tr.Root().SetAttr("err", qerr.Class(err))
			tr.MarkError()
		}
		s.db.Traces.Finish(tr)
		traceID = tr.RecordID()
	}
	if reg != nil {
		reg.Histogram(obs.MetricServerRequestSeconds).ObserveExemplar(time.Since(start).Seconds(), traceID)
		if traceID != "" {
			reg.Counter(obs.MetricTraceExemplars).Add(1)
		}
		if err != nil {
			reg.Counter(obs.MetricServerErrors).Add(1)
		}
		reg.Gauge(obs.MetricServerInflight).Set(float64(s.admInflight()))
	}
	return res, queued, traceID, err
}

func (s *Server) admInflight() int {
	_, inflight, _, _ := s.adm.stats()
	return inflight
}

func (s *Server) noteSessionGauge() {
	if reg := s.metrics(); reg != nil {
		reg.Gauge(obs.MetricServerSessions).Set(float64(s.sess.count()))
	}
}
