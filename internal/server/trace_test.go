package server

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/sqldb"
)

// newTracedServer builds a server whose DB has a keep-everything trace
// store armed before any statement runs, so every query — including the
// fixture DDL — leaves a retained trace and a trace_id in history.
func newTracedServer(t *testing.T) (*Client, *obs.TraceStore) {
	t.Helper()
	db := sqldb.New()
	db.Metrics = obs.NewRegistry()
	db.History = obs.NewQueryHistory(64)
	ts := obs.NewTraceStore(obs.TraceStoreConfig{Seed: 1, SlowThreshold: -1, SampleEvery: 1, Metrics: db.Metrics})
	db.Traces = ts
	db.EnableSysCatalog()
	mustExec(t, db, `CREATE TABLE kv (k Int64, v String)`)
	mustExec(t, db, `INSERT INTO kv VALUES (0, 'a'), (1, 'b'), (2, 'c'), (3, 'd')`)
	srv := New(db, nil, Config{})
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	cli := Dial(hs.URL).WithHTTPClient(hs.Client())
	if err := cli.Connect(context.Background(), "test"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Close(context.Background()) })
	return cli, ts
}

// TestServerIssuesTraceIDs: a served query's envelope and the X-Trace-Id
// response header carry the trace ID, and the client remembers it.
func TestServerIssuesTraceIDs(t *testing.T) {
	cli, ts := newTracedServer(t)
	if _, err := cli.Query(context.Background(), `SELECT k FROM kv WHERE k < 3`); err != nil {
		t.Fatal(err)
	}
	id := cli.LastTraceID()
	if id == "" {
		t.Fatal("client saw no X-Trace-Id on a traced server")
	}
	st, ok := ts.Get(id)
	if !ok {
		t.Fatalf("trace %q not retained server-side", id)
	}
	if st.Spans[0].Name != "request" {
		t.Fatalf("root span = %q, want request", st.Spans[0].Name)
	}
	// The request root must have the statement span hanging under it —
	// the served hop and the engine share one tree.
	var hasSQL bool
	for _, row := range st.Spans {
		if row.Name == "sql" && row.ParentID == 1 {
			hasSQL = true
		}
	}
	if !hasSQL {
		t.Fatalf("no sql child span under the request root: %+v", st.Spans)
	}
}

// TestClientPropagatesTraceID: a client-side trace's ID crosses the HTTP
// hop via X-Trace-Id and the server adopts it, so both ends of the hop
// file their spans under one ID.
func TestClientPropagatesTraceID(t *testing.T) {
	cli, ts := newTracedServer(t)
	local := obs.NewTraceStore(obs.TraceStoreConfig{Seed: 99, SlowThreshold: -1, SampleEvery: 1})
	ltr := local.StartTrace(context.Background(), "client")
	ctx := obs.ContextWithTrace(context.Background(), ltr)
	if _, err := cli.Query(ctx, `SELECT v FROM kv WHERE k = 1`); err != nil {
		t.Fatal(err)
	}
	local.Finish(ltr)
	if got := cli.LastTraceID(); got != ltr.ID() {
		t.Fatalf("server returned trace %q, want the propagated %q", got, ltr.ID())
	}
	if _, ok := ts.Get(ltr.ID()); !ok {
		t.Fatalf("server did not retain the adopted trace %q", ltr.ID())
	}
}

// TestTraceJSONRoundTrip: the retained trace is retrievable post-hoc over
// HTTP as Chrome trace_event JSON, and unknown IDs are a clean error.
func TestTraceJSONRoundTrip(t *testing.T) {
	cli, _ := newTracedServer(t)
	ctx := context.Background()
	if _, err := cli.Query(ctx, `SELECT k, v FROM kv`); err != nil {
		t.Fatal(err)
	}
	id := cli.LastTraceID()
	raw, err := cli.TraceJSON(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(raw, &events); err != nil {
		t.Fatalf("trace export is not a JSON array: %v", err)
	}
	if len(events) < 2 {
		t.Fatalf("exported %d events, want request root + engine spans", len(events))
	}
	args, _ := events[0]["args"].(map[string]any)
	if args["trace_id"] != id {
		t.Fatalf("event trace_id = %v, want %s", args["trace_id"], id)
	}
	if _, err := cli.TraceJSON(ctx, "no-such-trace"); err == nil {
		t.Fatal("unknown trace ID must fail")
	} else if !strings.Contains(err.Error(), "no retained trace") {
		t.Fatalf("miss should read as not-found, got: %v", err)
	}
}

// TestSysTracesQueryableThroughServer: the span tree a served query left
// behind answers SQL over the same connection — sys.queries joins
// sys.spans on trace_id with no empty IDs under keep-all sampling.
func TestSysTracesQueryableThroughServer(t *testing.T) {
	cli, _ := newTracedServer(t)
	ctx := context.Background()
	if _, err := cli.Query(ctx, `SELECT count(*) AS c FROM kv`); err != nil {
		t.Fatal(err)
	}
	res, err := cli.Query(ctx, `SELECT count(*) c FROM sys.queries WHERE trace_id = ''`)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := res.Cols[0].Get(0).AsInt(); n != 0 {
		t.Fatalf("%d served queries lack a trace_id under keep-all sampling", n)
	}
	res, err = cli.Query(ctx, `SELECT q.trace_id t, s.name n
FROM sys.queries q, sys.spans s
WHERE q.trace_id = s.trace_id AND s.span_id = 1`)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() < 1 {
		t.Fatal("join over sys.queries and sys.spans returned no rows")
	}
	// Fixture DDL ran embedded (root "query"); the served statements must
	// show up with the serving hop's "request" root.
	served := 0
	for i := 0; i < res.NumRows(); i++ {
		switch name := res.Cols[1].Get(i).S; name {
		case "request":
			served++
		case "query":
		default:
			t.Fatalf("unexpected root span %q", name)
		}
	}
	if served < 1 {
		t.Fatal("no served query joined to a request root span")
	}
}

// TestUntracedServerStaysSilent: without a trace store the envelope has no
// trace ID, no header is emitted, and /v1/traces/{id} misses cleanly —
// the nil-store contract holds across the wire.
func TestUntracedServerStaysSilent(t *testing.T) {
	_, cli, _ := newTestServer(t, Config{})
	ctx := context.Background()
	if _, err := cli.Query(ctx, `SELECT k FROM kv WHERE k = 2`); err != nil {
		t.Fatal(err)
	}
	if id := cli.LastTraceID(); id != "" {
		t.Fatalf("untraced server returned trace ID %q", id)
	}
	if _, err := cli.TraceJSON(ctx, "anything"); err == nil {
		t.Fatal("trace fetch on an untraced server must fail")
	}
}
