package server

// The serving layer's contribution to the sys.* catalog: sys.sessions and
// sys.admission. Registered into the shared DB at server construction, so
// server state is queryable with plain SQL *through the server itself*
// (the scan reads live registries at execution time — sys tables bypass
// the plan cache by design).

import (
	"sort"
	"time"

	"repro/internal/sqldb"
)

func sysCol(name string, t sqldb.Type) sqldb.OutCol {
	return sqldb.OutCol{Name: name, Type: t}
}

// sysResult materializes rows against a schema (scan-time helper; row
// counts here are tiny).
func sysResult(schema []sqldb.OutCol, rows [][]sqldb.Datum) (*sqldb.Result, error) {
	res := &sqldb.Result{Schema: schema, Cols: make([]*sqldb.Column, len(schema))}
	for i, c := range schema {
		res.Cols[i] = sqldb.NewColumn(c.Type)
	}
	for _, row := range rows {
		for j, d := range row {
			if err := res.Cols[j].Append(d); err != nil {
				return nil, err
			}
		}
	}
	return res, nil
}

func (s *Server) registerSysTables() {
	s.db.RegisterSysTable(&sqldb.SysTable{
		Name:        "sys.sessions",
		Description: "live client sessions: tenant, counters, session variables",
		Schema:      sysSessionsSchema(),
		Scan: func(*sqldb.DB) (*sqldb.Result, error) {
			now := time.Now()
			sess := s.sess.list()
			sort.Slice(sess, func(i, j int) bool { return sess[i].ID < sess[j].ID })
			rows := make([][]sqldb.Datum, 0, len(sess))
			for _, c := range sess {
				rows = append(rows, []sqldb.Datum{
					sqldb.Str(c.ID),
					sqldb.Str(c.Tenant),
					sqldb.Int(c.inflight.Load()),
					sqldb.Int(c.queries.Load()),
					sqldb.Int(int64(c.preparedCount())),
					sqldb.Int(int64(c.Timeout() / time.Millisecond)),
					sqldb.Int(int64(c.Parallelism())),
					sqldb.Int(c.MemoryBudget()),
					sqldb.Int(now.Sub(c.Created).Milliseconds()),
					sqldb.Int(c.idleFor(now).Milliseconds()),
				})
			}
			return sysResult(sysSessionsSchema(), rows)
		},
	})

	s.db.RegisterSysTable(&sqldb.SysTable{
		Name:        "sys.admission",
		Description: "per-tenant admission control state: slots, queue, reject counters",
		Schema:      sysAdmissionSchema(),
		Scan: func(*sqldb.DB) (*sqldb.Result, error) {
			stats, _, _, draining := s.adm.stats()
			sort.Slice(stats, func(i, j int) bool { return stats[i].Tenant < stats[j].Tenant })
			d := sqldb.Bool(draining)
			rows := make([][]sqldb.Datum, 0, len(stats))
			for _, t := range stats {
				rows = append(rows, []sqldb.Datum{
					sqldb.Str(t.Tenant),
					sqldb.Int(int64(t.Inflight)),
					sqldb.Int(int64(t.Queued)),
					sqldb.Int(t.Admitted),
					sqldb.Int(t.QueuedEver),
					sqldb.Int(t.Rejected),
					sqldb.Int(t.Cancelled),
					d,
				})
			}
			return sysResult(sysAdmissionSchema(), rows)
		},
	})
}

// The schemas are built per call (OutCol slices are cheap and the planner
// stamps aliases onto them, so sharing one slice across scans would race).
func sysSessionsSchema() []sqldb.OutCol {
	return []sqldb.OutCol{
		sysCol("id", sqldb.TString),
		sysCol("tenant", sqldb.TString),
		sysCol("inflight", sqldb.TInt),
		sysCol("queries", sqldb.TInt),
		sysCol("prepared", sqldb.TInt),
		sysCol("timeout_ms", sqldb.TInt),
		sysCol("parallelism", sqldb.TInt),
		sysCol("mem_budget", sqldb.TInt),
		sysCol("age_ms", sqldb.TInt),
		sysCol("idle_ms", sqldb.TInt),
	}
}

func sysAdmissionSchema() []sqldb.OutCol {
	return []sqldb.OutCol{
		sysCol("tenant", sqldb.TString),
		sysCol("inflight", sqldb.TInt),
		sysCol("queued", sqldb.TInt),
		sysCol("admitted", sqldb.TInt),
		sysCol("queued_total", sqldb.TInt),
		sysCol("rejected", sqldb.TInt),
		sysCol("cancelled", sqldb.TInt),
		sysCol("draining", sqldb.TBool),
	}
}
