package server

// Client sessions. A session is the unit of per-client state multiplexed
// over the one shared DB: prepared statements (which bind through the
// engine's shared statement/plan cache, so two sessions preparing the same
// SQL share one cached plan), session variables (per-query timeout,
// executor parallelism, memory budget), and usage counters surfaced by
// sys.sessions. Sessions are cheap — a map entry and a few atomics — so
// the registry holds thousands without pressure; an idle reaper evicts
// sessions untouched for IdleTimeout.

import (
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sqldb"
)

// Session is one client's server-side state.
type Session struct {
	ID     string
	Tenant string

	Created time.Time

	mu       sync.Mutex
	prepared map[string]*sqldb.Prepared
	nParams  map[string]int
	nextStmt int
	lastUsed time.Time

	// Session variables. timeoutNs and parallelism are atomics because
	// the sys.sessions scan reads them while queries run.
	timeoutNs   atomic.Int64
	parallelism atomic.Int64
	memBudget   atomic.Int64

	queries  atomic.Int64
	inflight atomic.Int64
	closed   atomic.Bool
}

// Timeout returns the session's per-query deadline (0 = none).
func (s *Session) Timeout() time.Duration { return time.Duration(s.timeoutNs.Load()) }

// SetTimeout sets the per-query deadline (d <= 0 clears it).
func (s *Session) SetTimeout(d time.Duration) {
	if d < 0 {
		d = 0
	}
	s.timeoutNs.Store(int64(d))
}

// Parallelism returns the session's executor worker degree override
// (0 = server default).
func (s *Session) Parallelism() int { return int(s.parallelism.Load()) }

// SetParallelism sets the per-query worker degree (0 clears the override).
func (s *Session) SetParallelism(n int) {
	if n < 0 {
		n = 0
	}
	s.parallelism.Store(int64(n))
}

// MemoryBudget returns the session's per-query byte budget (0 = the
// tenant/server default only).
func (s *Session) MemoryBudget() int64 { return s.memBudget.Load() }

// SetMemoryBudget sets a session-level per-query byte budget. The
// effective budget is the tightest of this, the tenant budget, and the
// DB-level knob — a session can tighten its tenant's cap, never loosen it.
func (s *Session) SetMemoryBudget(b int64) {
	if b < 0 {
		b = 0
	}
	s.memBudget.Store(b)
}

// touch refreshes the idle clock.
func (s *Session) touch() {
	s.mu.Lock()
	s.lastUsed = time.Now()
	s.mu.Unlock()
}

// idleFor reports how long the session has been idle.
func (s *Session) idleFor(now time.Time) time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return now.Sub(s.lastUsed)
}

// preparedCount reports how many statements the session holds.
func (s *Session) preparedCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.prepared)
}

// addPrepared stores a prepared statement, returning its handle.
func (s *Session) addPrepared(p *sqldb.Prepared, nParams int) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.prepared == nil {
		s.prepared = map[string]*sqldb.Prepared{}
		s.nParams = map[string]int{}
	}
	s.nextStmt++
	id := "stmt-" + strconv.Itoa(s.nextStmt)
	s.prepared[id] = p
	s.nParams[id] = nParams
	return id
}

// getPrepared resolves a statement handle.
func (s *Session) getPrepared(id string) (*sqldb.Prepared, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.prepared[id]
	return p, ok
}

// closePrepared drops a statement handle.
func (s *Session) closePrepared(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.prepared[id]; !ok {
		return false
	}
	delete(s.prepared, id)
	delete(s.nParams, id)
	return true
}

// sessions is the registry of live sessions.
type sessions struct {
	mu     sync.Mutex
	byID   map[string]*Session
	nextID int64
}

func newSessions() *sessions {
	return &sessions{byID: map[string]*Session{}}
}

// create registers a new session for a tenant.
func (r *sessions) create(tenant string) *Session {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.nextID++
	now := time.Now()
	s := &Session{
		ID:      fmt.Sprintf("s%06d", r.nextID),
		Tenant:  tenant,
		Created: now,
	}
	s.lastUsed = now
	r.byID[s.ID] = s
	return s
}

// get resolves a session ID.
func (r *sessions) get(id string) (*Session, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.byID[id]
	return s, ok
}

// close removes a session; its prepared statements go with it.
func (r *sessions) close(id string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.byID[id]
	if !ok {
		return false
	}
	s.closed.Store(true)
	delete(r.byID, id)
	return true
}

// list snapshots the live sessions sorted by ID (map order is random; the
// sys.sessions scan sorts for deterministic output).
func (r *sessions) list() []*Session {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Session, 0, len(r.byID))
	for _, s := range r.byID {
		out = append(out, s)
	}
	return out
}

// count reports the number of live sessions.
func (r *sessions) count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.byID)
}

// reapIdle closes sessions idle longer than maxIdle, returning how many
// went. Sessions with in-flight queries are never reaped.
func (r *sessions) reapIdle(maxIdle time.Duration) int {
	if maxIdle <= 0 {
		return 0
	}
	now := time.Now()
	reaped := 0
	for _, s := range r.list() {
		if s.inflight.Load() > 0 {
			continue
		}
		if s.idleFor(now) >= maxIdle {
			if r.close(s.ID) {
				reaped++
			}
		}
	}
	return reaped
}
