package server

// Admission control for the multi-session front end.
//
// The controller sits between the HTTP handlers and the executor and
// enforces three limits over one shared DB:
//
//   - a global in-flight cap (MaxConcurrent execution slots), sized to the
//     machine rather than to the client population, so a flood of cheap
//     HTTP requests cannot oversubscribe the morsel worker pool;
//   - a bounded admission queue (MaxQueue): once every slot is busy,
//     queries wait; once the queue is full they are refused immediately
//     with qerr.ErrAdmissionRejected instead of building an unbounded
//     backlog (fail fast beats queueing forever — the client can retry
//     against a less loaded replica);
//   - a per-tenant in-flight cap (TenantConcurrent), so one tenant cannot
//     occupy every slot while others starve.
//
// Queued queries are granted slots in round-robin order *across tenants*:
// each tenant keeps a FIFO of its own waiters, and the dispatcher cycles
// through tenants that have waiters, taking one query from each. A tenant
// that floods the queue therefore delays its own queries, not everyone
// else's — the fairness property the soak tests pin.
//
// Cancellation is first-class: a waiter whose context fires (client
// disconnect, deadline) leaves the queue immediately. Drain rejects all
// waiters and refuses newcomers so the server can shut down without
// abandoning goroutines.

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/qerr"
)

// AdmissionConfig sizes the controller. The zero value gets defaults from
// withDefaults.
type AdmissionConfig struct {
	// MaxConcurrent is the global number of execution slots (default 8).
	MaxConcurrent int
	// MaxQueue bounds the total number of queries waiting for a slot
	// across all tenants; the MaxQueue+1'th waiter is rejected (default
	// 64).
	MaxQueue int
	// TenantConcurrent caps one tenant's in-flight queries (default:
	// MaxConcurrent, i.e. no extra per-tenant restriction).
	TenantConcurrent int
}

func (c AdmissionConfig) withDefaults() AdmissionConfig {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 8
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 64
	}
	if c.TenantConcurrent <= 0 {
		c.TenantConcurrent = c.MaxConcurrent
	}
	return c
}

// waiter is one queued query.
type waiter struct {
	ready   chan struct{} // closed on grant or rejection
	granted bool          // slot assigned (set under the controller lock)
	err     error         // rejection reason (set before close when not granted)
}

// tenantQ is one tenant's admission state.
type tenantQ struct {
	name     string
	waiters  []*waiter
	inflight int
	inOrder  bool // present in the dispatcher's round-robin ring

	// Monotonic counters for sys.admission.
	admitted  int64
	queued    int64
	rejected  int64
	cancelled int64
}

// admission is the controller. All state is guarded by mu; grants close
// waiter channels while holding it, which is fine because the channels are
// buffered by construction (closing never blocks).
type admission struct {
	mu       sync.Mutex
	cfg      AdmissionConfig
	tenants  map[string]*tenantQ
	order    []string // round-robin ring of tenants with waiters
	inflight int
	queuedN  int
	draining bool
}

func newAdmission(cfg AdmissionConfig) *admission {
	return &admission{cfg: cfg.withDefaults(), tenants: map[string]*tenantQ{}}
}

func (a *admission) tenant(name string) *tenantQ {
	tq := a.tenants[name]
	if tq == nil {
		tq = &tenantQ{name: name}
		a.tenants[name] = tq
	}
	return tq
}

// Admit blocks until the query may run, then returns a release function
// that must be called exactly once when it finishes. It fails with
// qerr.ErrAdmissionRejected when the queue is full or the server is
// draining, and with the classified context error when ctx fires while
// waiting. queued reports whether the query had to wait.
func (a *admission) Admit(ctx context.Context, tenant string) (release func(), queued bool, err error) {
	a.mu.Lock()
	if a.draining {
		a.mu.Unlock()
		return nil, false, fmt.Errorf("%w: server is draining", qerr.ErrAdmissionRejected)
	}
	tq := a.tenant(tenant)
	// Fast path: a free slot and nobody queued ahead (no barging past
	// waiters — fairness includes newcomers).
	if a.queuedN == 0 && a.inflight < a.cfg.MaxConcurrent && tq.inflight < a.cfg.TenantConcurrent {
		a.inflight++
		tq.inflight++
		tq.admitted++
		a.mu.Unlock()
		return a.releaseFn(tq), false, nil
	}
	if a.queuedN >= a.cfg.MaxQueue {
		tq.rejected++
		a.mu.Unlock()
		return nil, false, fmt.Errorf("%w: admission queue full (%d waiting, %d in flight)",
			qerr.ErrAdmissionRejected, a.cfg.MaxQueue, a.cfg.MaxConcurrent)
	}
	w := &waiter{ready: make(chan struct{})}
	tq.waiters = append(tq.waiters, w)
	tq.queued++
	a.queuedN++
	if !tq.inOrder {
		a.order = append(a.order, tenant)
		tq.inOrder = true
	}
	// The enqueue itself may be grantable (a slot freed between the fast
	// path check and now cannot happen under the lock, but the per-tenant
	// cap may make an earlier waiter ineligible while this one is not).
	a.dispatchLocked()
	a.mu.Unlock()

	select {
	case <-w.ready:
		if w.err != nil {
			return nil, true, w.err
		}
		return a.releaseFn(tq), true, nil
	case <-ctx.Done():
		a.mu.Lock()
		if w.granted {
			// Lost the race: the slot was granted concurrently with the
			// cancellation. Give it back.
			a.releaseLocked(tq)
			a.mu.Unlock()
			return nil, true, qerr.FromContext(ctx.Err())
		}
		// Remove ourselves from the tenant queue.
		for i, q := range tq.waiters {
			if q == w {
				tq.waiters = append(tq.waiters[:i], tq.waiters[i+1:]...)
				break
			}
		}
		a.queuedN--
		tq.cancelled++
		a.mu.Unlock()
		return nil, true, qerr.FromContext(ctx.Err())
	}
}

// releaseFn builds the idempotent slot-release closure for a granted query.
func (a *admission) releaseFn(tq *tenantQ) func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			a.mu.Lock()
			a.releaseLocked(tq)
			a.mu.Unlock()
		})
	}
}

func (a *admission) releaseLocked(tq *tenantQ) {
	a.inflight--
	tq.inflight--
	a.dispatchLocked()
}

// dispatchLocked hands free slots to queued waiters, one tenant at a time
// in ring order. Called with a.mu held.
func (a *admission) dispatchLocked() {
	for a.inflight < a.cfg.MaxConcurrent {
		granted := false
		// One full sweep of the ring; tenants whose queue emptied drop
		// out, tenants at their concurrency cap stay for a later pass.
		for sweep := len(a.order); sweep > 0 && !granted; sweep-- {
			name := a.order[0]
			a.order = a.order[1:]
			tq := a.tenants[name]
			if len(tq.waiters) == 0 {
				tq.inOrder = false
				continue
			}
			if tq.inflight >= a.cfg.TenantConcurrent {
				a.order = append(a.order, name)
				continue
			}
			w := tq.waiters[0]
			tq.waiters = tq.waiters[1:]
			a.queuedN--
			a.inflight++
			tq.inflight++
			tq.admitted++
			w.granted = true
			close(w.ready)
			if len(tq.waiters) > 0 {
				a.order = append(a.order, name)
			} else {
				tq.inOrder = false
			}
			granted = true
		}
		if !granted {
			return
		}
	}
}

// drain refuses new admissions and rejects every queued waiter.
func (a *admission) drain() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.draining = true
	for _, name := range a.order {
		tq := a.tenants[name]
		for _, w := range tq.waiters {
			w.err = fmt.Errorf("%w: server is draining", qerr.ErrAdmissionRejected)
			tq.rejected++
			close(w.ready)
		}
		a.queuedN -= len(tq.waiters)
		tq.waiters = nil
		tq.inOrder = false
	}
	a.order = nil
}

// AdmissionStat is one tenant's point-in-time admission state, rendered by
// sys.admission.
type AdmissionStat struct {
	Tenant     string
	Inflight   int
	Queued     int
	Admitted   int64
	QueuedEver int64
	Rejected   int64
	Cancelled  int64
}

// stats snapshots per-tenant admission state plus the controller totals.
func (a *admission) stats() (rows []AdmissionStat, inflight, queued int, draining bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, tq := range a.tenants {
		rows = append(rows, AdmissionStat{
			Tenant: tq.name, Inflight: tq.inflight, Queued: len(tq.waiters),
			Admitted: tq.admitted, QueuedEver: tq.queued,
			Rejected: tq.rejected, Cancelled: tq.cancelled,
		})
	}
	return rows, a.inflight, a.queuedN, a.draining
}
