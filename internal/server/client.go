package server

// Client is the Go client for the serving front end. It speaks the same
// tagged-string wire format as the handlers, so results decode
// bit-identically to embedded execution, and it reconstructs typed errors:
// the server serializes qerr.Class(err), the client maps the class back
// onto the matching sentinel, so errors.Is(err, qerr.ErrTimeout) gives the
// same answer whether the query ran embedded or over the wire.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/qerr"
	"repro/internal/sqldb"
)

// Client talks to one server.
type Client struct {
	base string
	hc   *http.Client

	session string
	tenant  string

	// traceMu guards lastTraceID: the X-Trace-Id of the most recent
	// response that carried one (the server omits the header when the
	// tail sampler dropped the request's trace).
	traceMu     sync.Mutex
	lastTraceID string
}

// Dial builds a client for a server base URL (e.g. "http://127.0.0.1:7878").
// No connection is made until the first call.
func Dial(base string) *Client {
	return &Client{base: base, hc: &http.Client{}}
}

// WithHTTPClient swaps the underlying *http.Client (tests inject
// httptest server clients).
func (c *Client) WithHTTPClient(hc *http.Client) *Client {
	c.hc = hc
	return c
}

// remoteError is a server-side failure carrying its lifecycle class. It
// unwraps to the matching qerr sentinel so errors.Is works transparently.
type remoteError struct {
	class    string
	msg      string
	sentinel error
}

func (e *remoteError) Error() string { return e.msg }
func (e *remoteError) Unwrap() error { return e.sentinel }

// Class returns the server-reported error class.
func (e *remoteError) Class() string { return e.class }

func errFromWire(we wireError) error {
	var sentinel error
	switch we.Class {
	case "cancelled":
		sentinel = qerr.ErrCancelled
	case "timeout":
		sentinel = qerr.ErrTimeout
	case "memory_budget":
		sentinel = qerr.ErrMemoryBudget
	case "serving_unavailable":
		sentinel = qerr.ErrServingUnavailable
	case "admission_rejected":
		sentinel = qerr.ErrAdmissionRejected
	case "internal":
		sentinel = qerr.ErrInternal
	default:
		return errors.New(we.Message)
	}
	return &remoteError{class: we.Class, msg: we.Message, sentinel: sentinel}
}

// post round-trips one JSON call, decoding the error envelope on non-200s.
func (c *Client) post(ctx context.Context, path string, req, into any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	hreq.Header.Set("Content-Type", "application/json")
	// Propagate an ambient trace ID across the hop: a caller already
	// inside a traced operation (ContextWithTrace) stamps its ID on the
	// request, so the server-side trace adopts it and the two sides of
	// the hop share one trace ID.
	if id := obs.TraceIDFromContext(ctx); id != "" {
		hreq.Header.Set("X-Trace-Id", id)
	}
	resp, err := c.hc.Do(hreq)
	if err != nil {
		// Classify transport-level context failures the same way the
		// engine would, so a client-side deadline looks like ErrTimeout.
		if ctxErr := qerr.FromContext(ctx.Err()); ctxErr != nil {
			return ctxErr
		}
		return err
	}
	defer resp.Body.Close()
	if id := resp.Header.Get("X-Trace-Id"); id != "" {
		c.traceMu.Lock()
		c.lastTraceID = id
		c.traceMu.Unlock()
	}
	raw, err := io.ReadAll(io.LimitReader(resp.Body, maxRequestBytes))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		var er errorResponse
		if json.Unmarshal(raw, &er) == nil && er.Error.Message != "" {
			return errFromWire(er.Error)
		}
		return fmt.Errorf("server: HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(raw))
	}
	if into == nil {
		return nil
	}
	return json.Unmarshal(raw, into)
}

// Connect opens a session. tenant may be empty (the server default).
func (c *Client) Connect(ctx context.Context, tenant string) error {
	var resp sessionNewResponse
	if err := c.post(ctx, "/v1/session", sessionNewRequest{Tenant: tenant}, &resp); err != nil {
		return err
	}
	c.session = resp.Session
	c.tenant = resp.Tenant
	return nil
}

// Session returns the session ID ("" before Connect).
func (c *Client) Session() string { return c.session }

// Tenant returns the server-resolved tenant ("" before Connect).
func (c *Client) Tenant() string { return c.tenant }

// Close ends the session (no-op without one).
func (c *Client) Close(ctx context.Context) error {
	if c.session == "" {
		return nil
	}
	err := c.post(ctx, "/v1/session/close", sessionRequest{Session: c.session}, nil)
	c.session = ""
	return err
}

// Set updates session variables; nil fields are left unchanged.
func (c *Client) Set(ctx context.Context, timeoutMs *int64, parallelism *int, memBudget *int64) error {
	return c.post(ctx, "/v1/session/set", sessionSetRequest{
		Session: c.session, TimeoutMs: timeoutMs, Parallelism: parallelism, MemoryBudget: memBudget,
	}, nil)
}

// SetTimeout is a Set shorthand.
func (c *Client) SetTimeout(ctx context.Context, d time.Duration) error {
	ms := d.Milliseconds()
	return c.Set(ctx, &ms, nil, nil)
}

// SetParallelism is a Set shorthand.
func (c *Client) SetParallelism(ctx context.Context, n int) error {
	return c.Set(ctx, nil, &n, nil)
}

// SetMemoryBudget is a Set shorthand.
func (c *Client) SetMemoryBudget(ctx context.Context, b int64) error {
	return c.Set(ctx, nil, nil, &b)
}

// Query executes one SQL statement, returning the decoded result (nil for
// statements without a relation, e.g. DDL).
func (c *Client) Query(ctx context.Context, sql string) (*sqldb.Result, error) {
	var resp queryResponse
	if err := c.post(ctx, "/v1/query", queryRequest{Session: c.session, SQL: sql}, &resp); err != nil {
		return nil, err
	}
	return decodeResult(resp.Result)
}

// Stmt is a server-side prepared statement handle.
type Stmt struct {
	c      *Client
	ID     string
	Params int
}

// Prepare compiles a statement server-side (requires a session).
func (c *Client) Prepare(ctx context.Context, sql string) (*Stmt, error) {
	var resp prepareResponse
	if err := c.post(ctx, "/v1/prepare", prepareRequest{Session: c.session, SQL: sql}, &resp); err != nil {
		return nil, err
	}
	return &Stmt{c: c, ID: resp.Stmt, Params: resp.Params}, nil
}

// Exec runs the prepared statement with bound parameters.
func (s *Stmt) Exec(ctx context.Context, args ...sqldb.Datum) (*sqldb.Result, error) {
	params := make([]wireValue, len(args))
	for i, d := range args {
		params[i] = encodeDatum(d)
	}
	var resp queryResponse
	err := s.c.post(ctx, "/v1/stmt/exec", stmtExecRequest{
		Session: s.c.session, Stmt: s.ID, Params: params,
	}, &resp)
	if err != nil {
		return nil, err
	}
	return decodeResult(resp.Result)
}

// Close drops the server-side statement.
func (s *Stmt) Close(ctx context.Context) error {
	return s.c.post(ctx, "/v1/stmt/close", stmtCloseRequest{Session: s.c.session, Stmt: s.ID}, nil)
}

// ColResult is a collaborative query's answer plus its cost accounting.
type ColResult struct {
	Result       *sqldb.Result
	Strategy     string
	FallbackPath []string
	LoadingS     float64
	InferenceS   float64
	RelationalS  float64
	// TraceID is set when the server's tail sampler retained the
	// request's trace ("" otherwise).
	TraceID string
}

// ColQuery executes a collaborative (inference) query under a named
// strategy; fallback engages the graceful-degradation ladder.
func (c *Client) ColQuery(ctx context.Context, sql, strategy string, fallback bool) (*ColResult, error) {
	var resp colQueryResponse
	err := c.post(ctx, "/v1/colquery", colQueryRequest{
		Session: c.session, SQL: sql, Strategy: strategy, Fallback: fallback,
	}, &resp)
	if err != nil {
		return nil, err
	}
	res, err := decodeResult(resp.Result)
	if err != nil {
		return nil, err
	}
	return &ColResult{
		Result: res, Strategy: resp.Strategy, FallbackPath: resp.FallbackPath,
		LoadingS: resp.LoadingS, InferenceS: resp.InferenceS, RelationalS: resp.RelationalS,
		TraceID: resp.TraceID,
	}, nil
}

// LastTraceID returns the trace ID of the most recent call whose response
// carried one ("" before any traced call). The server only reports IDs of
// traces its tail sampler retained, so a non-empty value is always
// fetchable via TraceJSON (until the store's ring evicts it).
func (c *Client) LastTraceID() string {
	c.traceMu.Lock()
	defer c.traceMu.Unlock()
	return c.lastTraceID
}

// TraceJSON fetches one retained trace as Chrome trace_event JSON from
// GET /v1/traces/{id}.
func (c *Client) TraceJSON(ctx context.Context, id string) ([]byte, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/traces/"+id, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, maxRequestBytes))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		var er errorResponse
		if json.Unmarshal(raw, &er) == nil && er.Error.Message != "" {
			return nil, errFromWire(er.Error)
		}
		return nil, fmt.Errorf("server: HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(raw))
	}
	return raw, nil
}

// Health probes /healthz, returning the status string.
func (c *Client) Health(ctx context.Context) (string, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.hc.Do(hreq)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	var payload map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		return "", err
	}
	return payload["status"], nil
}
