package server

import (
	"encoding/json"
	"math"
	"testing"

	"repro/internal/sqldb"
)

// TestDatumWireRoundTrip pins the bit-exactness contract of the wire
// format: every datum — including the values plain JSON numbers lose —
// must decode back to identical bits.
func TestDatumWireRoundTrip(t *testing.T) {
	cases := []sqldb.Datum{
		sqldb.Null(),
		sqldb.Int(0),
		sqldb.Int(-1),
		sqldb.Int(math.MaxInt64),
		sqldb.Int(math.MinInt64),
		sqldb.Int(1<<53 + 1), // beyond float64-exact JSON integers
		sqldb.Float(0),
		sqldb.Float(math.Copysign(0, -1)), // -0
		sqldb.Float(math.NaN()),
		sqldb.Float(math.Inf(1)),
		sqldb.Float(math.Inf(-1)),
		sqldb.Float(math.MaxFloat64),
		sqldb.Float(math.SmallestNonzeroFloat64),
		sqldb.Float(0.1),
		sqldb.Float(1.0 / 3.0),
		sqldb.Str(""),
		sqldb.Str("line\nbreak \x00 and ünïcode ✓"),
		sqldb.Bool(true),
		sqldb.Bool(false),
		sqldb.Blob(nil),
		sqldb.Blob([]byte{0, 1, 2, 255, 254}),
	}
	for _, d := range cases {
		wv := encodeDatum(d)
		// Through actual JSON, as the HTTP path does.
		raw, err := json.Marshal(wv)
		if err != nil {
			t.Fatalf("%v: %v", d, err)
		}
		var back wireValue
		if err := json.Unmarshal(raw, &back); err != nil {
			t.Fatalf("%v: %v", d, err)
		}
		got, err := decodeDatum(back)
		if err != nil {
			t.Fatalf("%v: %v", d, err)
		}
		if !datumBitsEqual(d, got) {
			t.Errorf("round trip changed %#v -> %#v (wire %s)", d, got, raw)
		}
	}
}

// datumBitsEqual compares datums at the bit level (NaN equals NaN, -0
// differs from +0 — stricter than SQL equality on purpose).
func datumBitsEqual(a, b sqldb.Datum) bool {
	if a.IsNull() || b.IsNull() {
		return a.IsNull() == b.IsNull()
	}
	if a.T != b.T {
		return false
	}
	switch a.T {
	case sqldb.TFloat:
		return math.Float64bits(a.F) == math.Float64bits(b.F)
	case sqldb.TBlob:
		return string(a.B) == string(b.B)
	default:
		return a.I == b.I && a.S == b.S
	}
}

// TestResultWireRoundTrip pins result-level encoding: schema names/types
// survive, row order survives, and nil results (DDL) stay distinguishable
// from empty relations.
func TestResultWireRoundTrip(t *testing.T) {
	db := sqldb.New()
	mustExec(t, db, `CREATE TABLE t (a Int64, b Float64, c String, d Bool)`)
	mustExec(t, db, `INSERT INTO t VALUES (1, 1.5, 'x', TRUE), (2, -0.25, '', FALSE)`)
	res, err := db.Query(`SELECT a, b, c, d FROM t ORDER BY a`)
	if err != nil {
		t.Fatal(err)
	}

	raw, err := json.Marshal(encodeResult(res))
	if err != nil {
		t.Fatal(err)
	}
	var wr wireResult
	if err := json.Unmarshal(raw, &wr); err != nil {
		t.Fatal(err)
	}
	back, err := decodeResult(&wr)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != res.NumRows() || len(back.Schema) != len(res.Schema) {
		t.Fatalf("shape changed: %dx%d -> %dx%d",
			res.NumRows(), len(res.Schema), back.NumRows(), len(back.Schema))
	}
	for i, c := range res.Schema {
		if back.Schema[i].Name != c.Name || back.Schema[i].Type != c.Type {
			t.Fatalf("schema col %d changed: %+v -> %+v", i, c, back.Schema[i])
		}
	}
	for i := 0; i < res.NumRows(); i++ {
		for j := range res.Cols {
			if !datumBitsEqual(res.Cols[j].Get(i), back.Cols[j].Get(i)) {
				t.Fatalf("row %d col %d changed: %v -> %v",
					i, j, res.Cols[j].Get(i), back.Cols[j].Get(i))
			}
		}
	}

	// nil result (DDL) round-trips to nil; empty relation stays non-nil.
	if enc := encodeResult(nil); enc.Schema != nil {
		t.Fatal("nil result encoded with a schema")
	}
	if dec, err := decodeResult(&wireResult{}); err != nil || dec != nil {
		t.Fatalf("nil round trip: %v, %v", dec, err)
	}
	empty, err := db.Query(`SELECT a FROM t WHERE a > 100`)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := decodeResult(encodeResult(empty))
	if err != nil {
		t.Fatal(err)
	}
	if dec == nil || dec.NumRows() != 0 || len(dec.Schema) != 1 {
		t.Fatalf("empty relation did not survive: %+v", dec)
	}
}

func mustExec(t *testing.T, db *sqldb.DB, sql string) *sqldb.Result {
	t.Helper()
	res, err := db.Exec(sql)
	if err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	return res
}
