package server

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/qerr"
)

// TestAdmissionFastPath: free slots admit immediately without queueing.
func TestAdmissionFastPath(t *testing.T) {
	a := newAdmission(AdmissionConfig{MaxConcurrent: 2})
	rel1, queued, err := a.Admit(context.Background(), "a")
	if err != nil || queued {
		t.Fatalf("first admit: queued=%v err=%v", queued, err)
	}
	rel2, queued, err := a.Admit(context.Background(), "b")
	if err != nil || queued {
		t.Fatalf("second admit: queued=%v err=%v", queued, err)
	}
	rel1()
	rel2()
	rel2() // release is idempotent
	_, inflight, queuedN, _ := a.stats()
	if inflight != 0 || queuedN != 0 {
		t.Fatalf("after release: inflight=%d queued=%d", inflight, queuedN)
	}
}

// TestAdmissionQueueFullRejects: the MaxQueue+1'th waiter gets the typed
// sentinel immediately instead of blocking.
func TestAdmissionQueueFullRejects(t *testing.T) {
	a := newAdmission(AdmissionConfig{MaxConcurrent: 1, MaxQueue: 2})
	release, _, err := a.Admit(context.Background(), "t")
	if err != nil {
		t.Fatal(err)
	}
	// Fill the queue with two waiters.
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rel, _, err := a.Admit(context.Background(), "t")
			if err != nil {
				t.Errorf("queued admit failed: %v", err)
				return
			}
			rel()
		}()
	}
	waitFor(t, func() bool { _, _, q, _ := a.stats(); return q == 2 })

	_, _, err = a.Admit(context.Background(), "t")
	if !errors.Is(err, qerr.ErrAdmissionRejected) {
		t.Fatalf("overflow admit: got %v, want ErrAdmissionRejected", err)
	}
	if qerr.Class(err) != "admission_rejected" {
		t.Fatalf("class = %q", qerr.Class(err))
	}

	release() // let the two waiters drain
	wg.Wait()
}

// TestAdmissionRoundRobinFairness: with one tenant flooding the queue and
// another trickling, grants alternate between tenants instead of serving
// the flood first. The order of grant completion is tracked with one
// in-flight slot so grants serialize.
func TestAdmissionRoundRobinFairness(t *testing.T) {
	a := newAdmission(AdmissionConfig{MaxConcurrent: 1, MaxQueue: 32})
	gate, _, err := a.Admit(context.Background(), "warm")
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var order []string
	var wg sync.WaitGroup
	// The gate slot is held, so no grants happen during enqueueing and the
	// queue depth grows monotonically — waiting for depth == want makes the
	// queue order deterministic.
	depth := 0
	enqueue := func(tenant string) {
		depth++
		want := depth
		wg.Add(1)
		go func() {
			defer wg.Done()
			rel, _, err := a.Admit(context.Background(), tenant)
			if err != nil {
				t.Errorf("%s: %v", tenant, err)
				return
			}
			mu.Lock()
			order = append(order, tenant)
			mu.Unlock()
			rel()
		}()
		waitFor(t, func() bool { _, _, q, _ := a.stats(); return q == want })
	}

	// Tenant "flood" enqueues 6, tenant "drip" enqueues 2, interleaved so
	// flood's backlog is deep before drip arrives.
	for i := 0; i < 4; i++ {
		enqueue("flood")
	}
	enqueue("drip")
	for i := 0; i < 2; i++ {
		enqueue("flood")
	}
	enqueue("drip")

	gate() // open the single slot; grants proceed one at a time
	wg.Wait()

	// Fairness property: drip's two queries must both complete within the
	// first four grants (round-robin alternation), despite flood's backlog.
	dripSeen := 0
	for i, tenant := range order {
		if tenant == "drip" {
			dripSeen++
			if i >= 4 {
				t.Fatalf("drip query granted at position %d of %v — starved by flood", i, order)
			}
		}
	}
	if dripSeen != 2 {
		t.Fatalf("drip completed %d queries, want 2 (order %v)", dripSeen, order)
	}
}

// TestAdmissionCancelWhileQueued: a waiter whose context fires leaves the
// queue with a typed cancellation and no slot leak.
func TestAdmissionCancelWhileQueued(t *testing.T) {
	a := newAdmission(AdmissionConfig{MaxConcurrent: 1, MaxQueue: 8})
	release, _, err := a.Admit(context.Background(), "t")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, _, err := a.Admit(ctx, "t")
		errc <- err
	}()
	waitFor(t, func() bool { _, _, q, _ := a.stats(); return q == 1 })
	cancel()
	if err := <-errc; !errors.Is(err, qerr.ErrCancelled) {
		t.Fatalf("cancelled waiter: got %v, want ErrCancelled", err)
	}
	release()
	// The slot must be reusable.
	rel, queued, err := a.Admit(context.Background(), "t")
	if err != nil || queued {
		t.Fatalf("post-cancel admit: queued=%v err=%v", queued, err)
	}
	rel()
}

// TestAdmissionDrainRejectsWaiters: drain rejects everything queued with
// the sentinel and refuses newcomers.
func TestAdmissionDrainRejectsWaiters(t *testing.T) {
	a := newAdmission(AdmissionConfig{MaxConcurrent: 1, MaxQueue: 8})
	release, _, err := a.Admit(context.Background(), "t")
	if err != nil {
		t.Fatal(err)
	}
	errs := make(chan error, 3)
	for i := 0; i < 3; i++ {
		go func() {
			_, _, err := a.Admit(context.Background(), "t")
			errs <- err
		}()
	}
	waitFor(t, func() bool { _, _, q, _ := a.stats(); return q == 3 })
	a.drain()
	for i := 0; i < 3; i++ {
		if err := <-errs; !errors.Is(err, qerr.ErrAdmissionRejected) {
			t.Fatalf("drained waiter %d: got %v", i, err)
		}
	}
	if _, _, err := a.Admit(context.Background(), "t"); !errors.Is(err, qerr.ErrAdmissionRejected) {
		t.Fatalf("post-drain admit: got %v", err)
	}
	release()
}

// TestAdmissionTenantCap: a tenant at its per-tenant cap queues even while
// global slots are free, and other tenants keep running.
func TestAdmissionTenantCap(t *testing.T) {
	a := newAdmission(AdmissionConfig{MaxConcurrent: 4, MaxQueue: 8, TenantConcurrent: 1})
	relA, _, err := a.Admit(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}
	// Second "a" query must queue (tenant cap), even with 3 free slots.
	got := make(chan struct{})
	go func() {
		rel, queued, err := a.Admit(context.Background(), "a")
		if err != nil {
			t.Errorf("capped admit: %v", err)
		} else {
			if !queued {
				t.Error("capped admit did not report queued")
			}
			rel()
		}
		close(got)
	}()
	waitFor(t, func() bool { _, _, q, _ := a.stats(); return q == 1 })
	// Another tenant is granted promptly despite a's backlog (it briefly
	// queues — no barging past waiters — but dispatch grants it at once
	// because a free slot exists and b is under its cap).
	relB, _, err := a.Admit(context.Background(), "b")
	if err != nil {
		t.Fatalf("tenant b: %v", err)
	}
	relB()
	relA() // frees a's slot; the queued query proceeds
	<-got
}

// waitFor polls until cond holds (tests only; 2s cap).
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 2s")
		}
		time.Sleep(time.Millisecond)
	}
}
