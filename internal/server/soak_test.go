package server

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/qerr"
	"repro/internal/sqldb"
)

// soakFixture builds a server over a moderately sized table so queries do
// real morsel work, plus a goroutine baseline taken before anything spins
// up.
func soakFixture(t *testing.T, rows int, cfg Config) (*Server, *httptest.Server, int) {
	t.Helper()
	before := runtime.NumGoroutine()
	db := sqldb.New()
	db.Metrics = obs.NewRegistry()
	db.History = obs.NewQueryHistory(128)
	db.EnableSysCatalog()
	db.EnableCache(64)
	mustExec(t, db, `CREATE TABLE pt (id Int64, grp Int64, v Float64)`)
	pt := db.GetTable("pt")
	for i := 0; i < rows; i++ {
		if err := pt.AppendRow([]sqldb.Datum{
			sqldb.Int(int64(i)), sqldb.Int(int64(i % 37)), sqldb.Float(float64(i%1000) / 7),
		}); err != nil {
			t.Fatal(err)
		}
	}
	srv := New(db, nil, cfg)
	hs := httptest.NewServer(srv.Handler())
	return srv, hs, before
}

// assertNoGoroutineLeak waits for the goroutine count to return to the
// pre-server baseline (plus slack for runtime background goroutines).
func assertNoGoroutineLeak(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	var g int
	for time.Now().Before(deadline) {
		g = runtime.NumGoroutine()
		if g <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutine leak after drain: %d before, %d after\n%s", before, g, buf[:n])
}

// TestSoakConcurrentSessions is the concurrency soak: N sessions across 3
// tenants run M queries each — a mix of ad-hoc SQL, shared prepared
// statements, and sys.* scans — under -race, then the server drains and
// must leave no goroutines behind. Every failure along the way must be a
// typed lifecycle error.
func TestSoakConcurrentSessions(t *testing.T) {
	sessionsN, queriesM := 16, 25
	if testing.Short() {
		sessionsN, queriesM = 6, 8
	}
	srv, hs, before := soakFixture(t, 20000, Config{
		Admission: AdmissionConfig{MaxConcurrent: 4, MaxQueue: 256},
	})
	defer hs.Close()

	adhoc := []string{
		`SELECT count(*) AS c FROM pt WHERE v > 100`,
		`SELECT grp, count(*) AS c FROM pt GROUP BY grp ORDER BY grp`,
		`SELECT id, v FROM pt WHERE grp = 3 ORDER BY v DESC LIMIT 5`,
		`SELECT count(*) AS c FROM sys.sessions`,
		`SELECT tenant, admitted FROM sys.admission ORDER BY tenant`,
	}

	var failures atomic.Int64
	var wg sync.WaitGroup
	for s := 0; s < sessionsN; s++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(worker)))
			ctx := context.Background()
			cli := Dial(hs.URL).WithHTTPClient(hs.Client())
			tenant := fmt.Sprintf("tenant-%d", worker%3)
			if err := cli.Connect(ctx, tenant); err != nil {
				t.Errorf("worker %d connect: %v", worker, err)
				failures.Add(1)
				return
			}
			defer cli.Close(ctx)
			stmt, err := cli.Prepare(ctx, `SELECT count(*) AS c FROM pt WHERE grp = ?`)
			if err != nil {
				t.Errorf("worker %d prepare: %v", worker, err)
				failures.Add(1)
				return
			}
			for q := 0; q < queriesM; q++ {
				var err error
				if q%3 == 0 {
					_, err = stmt.Exec(ctx, sqldb.Int(int64(rng.Intn(37))))
				} else {
					_, err = cli.Query(ctx, adhoc[rng.Intn(len(adhoc))])
				}
				if err != nil && !qerr.Lifecycle(err) {
					t.Errorf("worker %d query %d: untyped error %v", worker, q, err)
					failures.Add(1)
					return
				}
			}
		}(s)
	}
	wg.Wait()
	if failures.Load() > 0 {
		t.Fatalf("%d workers failed", failures.Load())
	}

	// Fair scheduling left every tenant served: each tenant admitted work.
	stats, _, _, _ := srv.adm.stats()
	if len(stats) != 3 {
		t.Fatalf("tenants seen = %d, want 3", len(stats))
	}
	for _, s := range stats {
		if s.Admitted == 0 {
			t.Errorf("tenant %s admitted 0 queries", s.Tenant)
		}
		if s.Inflight != 0 || s.Queued != 0 {
			t.Errorf("tenant %s left residue: inflight=%d queued=%d", s.Tenant, s.Inflight, s.Queued)
		}
	}

	srv.Drain()
	hs.Close()
	assertNoGoroutineLeak(t, before)
}

// TestSoakClientDisconnects: clients abandon queries mid-flight (context
// cancellation closes the HTTP request); the server must cancel the
// execution at a morsel boundary, release the admission slot, and keep
// serving. Drain afterwards must still leave zero leaked goroutines.
func TestSoakClientDisconnects(t *testing.T) {
	rounds := 20
	if testing.Short() {
		rounds = 6
	}
	srv, hs, before := soakFixture(t, 30000, Config{
		Admission: AdmissionConfig{MaxConcurrent: 2, MaxQueue: 64},
	})
	defer hs.Close()

	ctx := context.Background()
	cli := Dial(hs.URL).WithHTTPClient(hs.Client())
	if err := cli.Connect(ctx, "flaky"); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < rounds; i++ {
		qctx, cancel := context.WithTimeout(ctx, time.Duration(1+i%5)*time.Millisecond)
		_, err := cli.Query(qctx, `SELECT grp, count(*) AS c, avg(v) AS m FROM pt GROUP BY grp ORDER BY grp`)
		cancel()
		if err != nil && !qerr.Lifecycle(err) {
			t.Fatalf("round %d: untyped error %v", i, err)
		}
	}

	// The admission slots all came back: a full-width query still runs.
	if _, err := cli.Query(ctx, `SELECT count(*) AS c FROM pt`); err != nil {
		t.Fatalf("post-disconnect query: %v", err)
	}
	cli.Close(ctx)

	srv.Drain()
	hs.Close()
	assertNoGoroutineLeak(t, before)
}

// TestSoakAdmissionFlood: a request flood far beyond MaxConcurrent+MaxQueue
// must reject the overflow with qerr.ErrAdmissionRejected — never panic,
// never hang, never return an untyped error — while every admitted query
// completes correctly.
func TestSoakAdmissionFlood(t *testing.T) {
	srv, hs, before := soakFixture(t, 20000, Config{
		Admission: AdmissionConfig{MaxConcurrent: 2, MaxQueue: 4},
	})
	defer hs.Close()

	// Deterministic overload: occupy both execution slots and fill the
	// queue, so every HTTP query that arrives must be refused.
	rel1, _, err := srv.adm.Admit(context.Background(), "hog")
	if err != nil {
		t.Fatal(err)
	}
	rel2, _, err := srv.adm.Admit(context.Background(), "hog")
	if err != nil {
		t.Fatal(err)
	}
	var waiters sync.WaitGroup
	for i := 0; i < 4; i++ {
		waiters.Add(1)
		go func() {
			defer waiters.Done()
			rel, _, err := srv.adm.Admit(context.Background(), "hog")
			if err == nil {
				rel()
			}
		}()
	}
	waitFor(t, func() bool { _, _, q, _ := srv.adm.stats(); return q == 4 })

	flood := 16
	if testing.Short() {
		flood = 8
	}
	var rejected, other atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < flood; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			cli := Dial(hs.URL).WithHTTPClient(hs.Client())
			_, err := cli.Query(context.Background(), `SELECT grp, count(*) AS c FROM pt GROUP BY grp`)
			switch {
			case errors.Is(err, qerr.ErrAdmissionRejected):
				rejected.Add(1)
				if !strings.Contains(err.Error(), "admission") {
					t.Errorf("rejection lost its message: %v", err)
				}
			case err == nil:
				t.Errorf("flood query %d was admitted with a full queue", n)
				other.Add(1)
			default:
				other.Add(1)
				t.Errorf("flood query %d: %v", n, err)
			}
		}(i)
	}
	wg.Wait()
	if other.Load() > 0 {
		t.Fatalf("%d queries did not fail with the typed rejection", other.Load())
	}
	if rejected.Load() != int64(flood) {
		t.Fatalf("rejected %d of %d", rejected.Load(), flood)
	}

	// Free the slots; the held waiters drain, and service resumes.
	rel1()
	rel2()
	waiters.Wait()
	cli := Dial(hs.URL).WithHTTPClient(hs.Client())
	if _, err := cli.Query(context.Background(), `SELECT count(*) AS c FROM pt`); err != nil {
		t.Fatalf("post-flood query: %v", err)
	}

	// Rejection counters surfaced in sys.admission.
	stats, _, _, _ := srv.adm.stats()
	var totalRejected int64
	for _, s := range stats {
		totalRejected += s.Rejected
	}
	if totalRejected != rejected.Load() {
		t.Fatalf("sys.admission rejected=%d, clients saw %d", totalRejected, rejected.Load())
	}

	srv.Drain()
	hs.Close()
	assertNoGoroutineLeak(t, before)
}

// TestSoakDrainUnderLoad: drain fires while a workload is running; every
// in-flight or queued query ends in success or a typed error, drain
// returns, and no goroutines are left.
func TestSoakDrainUnderLoad(t *testing.T) {
	srv, hs, before := soakFixture(t, 30000, Config{
		Admission:  AdmissionConfig{MaxConcurrent: 4, MaxQueue: 64},
		DrainGrace: 200 * time.Millisecond,
	})
	defer hs.Close()

	var untyped atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			ctx := context.Background()
			cli := Dial(hs.URL).WithHTTPClient(hs.Client())
			for {
				select {
				case <-stop:
					return
				default:
				}
				_, err := cli.Query(ctx, `SELECT grp, count(*) AS c, avg(v) AS m FROM pt GROUP BY grp`)
				if err != nil {
					if !qerr.Lifecycle(err) {
						untyped.Add(1)
					}
					if errors.Is(err, qerr.ErrAdmissionRejected) {
						return // draining reached us
					}
				}
			}
		}(w)
	}
	time.Sleep(50 * time.Millisecond) // let the workload get going
	srv.Drain()
	close(stop)
	wg.Wait()
	if untyped.Load() > 0 {
		t.Fatalf("%d untyped errors during drain", untyped.Load())
	}
	hs.Close()
	assertNoGoroutineLeak(t, before)
}
