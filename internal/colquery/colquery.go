// Package colquery models the paper's collaborative queries: SQL statements
// that embed neural-UDF calls (nUDF_*). It analyzes the dependency between
// the relational part (Q_db) and the learning part (Q_learning) to classify
// a query into the four types of Table I, extracts the nUDF usages the
// execution strategies need, and generates the paper's benchmark query
// templates over the IoT schema.
package colquery

import (
	"fmt"
	"strings"

	"repro/internal/sqldb"
)

// QueryType is the Table I classification.
type QueryType int

// The four collaborative query types of Table I.
const (
	// Type1: Q_db and Q_learning are independent — the nUDF is a standalone
	// filter with no relational predicates gating its inputs.
	Type1 QueryType = iota + 1
	// Type2: Q_db depends on Q_learning — nUDF outputs feed relational
	// aggregation in the SELECT clause.
	Type2
	// Type3: Q_learning depends on Q_db — relational predicates restrict
	// which tuples reach the nUDF.
	Type3
	// Type4: interdependence — the nUDF participates in a join condition
	// against another relation's column.
	Type4
)

func (t QueryType) String() string {
	if t >= Type1 && t <= Type4 {
		return fmt.Sprintf("Type %d", int(t))
	}
	return fmt.Sprintf("QueryType(%d)", int(t))
}

// Difficulty returns Table I's difficulty label.
func (t QueryType) Difficulty() string {
	switch t {
	case Type1:
		return "Easy"
	case Type2, Type3:
		return "Medium"
	case Type4:
		return "Hard"
	}
	return "Unknown"
}

// UDFUsage is one nUDF occurrence in the query.
type UDFUsage struct {
	// Name is the UDF's function name (lower-cased), e.g. "nudf_detect".
	Name string
	// Arg is the textual argument (e.g. "V.keyframe").
	Arg string
	// EqualsLiteral is the literal the UDF result is compared to when the
	// usage has the form nUDF(x) = literal (the hint machinery derives the
	// selectivity of this predicate from the class histogram); nil
	// otherwise.
	EqualsLiteral *sqldb.Datum
	// InWhere / InSelect / InJoin locate the usage.
	InWhere  bool
	InSelect bool
	InJoin   bool // compared against another relation's column
}

// Query is an analyzed collaborative query.
type Query struct {
	SQL  string
	Stmt *sqldb.SelectStmt
	Type QueryType
	UDFs []UDFUsage
	// UDFNames is the deduplicated set of nUDF names used.
	UDFNames []string
}

// IsNUDF reports whether a function name is a neural UDF by the paper's
// naming convention.
func IsNUDF(name string) bool {
	return strings.HasPrefix(strings.ToLower(name), "nudf_")
}

// Analyze parses and classifies a collaborative query.
func Analyze(sql string) (*Query, error) {
	stmt, err := sqldb.Parse(sql)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*sqldb.SelectStmt)
	if !ok {
		return nil, fmt.Errorf("colquery: collaborative queries must be SELECTs, got %T", stmt)
	}
	q := &Query{SQL: sql, Stmt: sel}

	// Relations in FROM, for join detection.
	aliases := map[string]bool{}
	collectAliases(sel.From, aliases)

	// WHERE conjuncts (plus join ON conditions).
	var conds []sqldb.Expr
	collectJoinConds(sel.From, &conds)
	conds = append(conds, splitAnd(sel.Where)...)

	// filteredRels: relations carrying single-relation non-UDF predicates;
	// joinEdges: equi-join pairs between relations.
	filteredRels := map[string]bool{}
	type edge struct{ a, b string }
	var joinEdges []edge
	for _, c := range conds {
		udfs := findUDFCalls(c)
		if len(udfs) == 0 {
			rels := relationRefs(c)
			if len(rels) == 1 {
				filteredRels[rels[0]] = true
			}
			if b, ok := c.(*sqldb.BinExpr); ok && b.Op == "=" && len(rels) == 2 {
				joinEdges = append(joinEdges, edge{rels[0], rels[1]})
			}
			continue
		}
		for _, call := range udfs {
			usage := UDFUsage{Name: strings.ToLower(call.Name), InWhere: true}
			if len(call.Args) > 0 {
				usage.Arg = call.Args[0].String()
			}
			// nUDF(x) = literal / nUDF(x) != literal?
			if lit := comparedLiteral(c, call); lit != nil {
				usage.EqualsLiteral = lit
			}
			// Join usage: the conjunct references other relations' columns
			// outside the UDF argument.
			if referencesOtherRelation(c, call) {
				usage.InJoin = true
			}
			q.UDFs = append(q.UDFs, usage)
		}
	}
	// SELECT-clause usages.
	for _, it := range sel.Items {
		if it.Star {
			continue
		}
		for _, call := range findUDFCalls(it.Expr) {
			usage := UDFUsage{Name: strings.ToLower(call.Name), InSelect: true}
			if len(call.Args) > 0 {
				usage.Arg = call.Args[0].String()
			}
			if lit := comparedLiteral(it.Expr, call); lit != nil {
				usage.EqualsLiteral = lit
			}
			q.UDFs = append(q.UDFs, usage)
		}
	}

	seen := map[string]bool{}
	for _, u := range q.UDFs {
		if !seen[u.Name] {
			seen[u.Name] = true
			q.UDFNames = append(q.UDFNames, u.Name)
		}
	}
	if len(q.UDFs) == 0 {
		return nil, fmt.Errorf("colquery: query contains no nUDF call")
	}

	// Classification per Table I.
	hasJoinUDF := false
	hasSelectUDF := false
	udfRels := map[string]bool{}
	for _, u := range q.UDFs {
		if u.InJoin {
			hasJoinUDF = true
		}
		if u.InSelect {
			hasSelectUDF = true
		}
		// Relation feeding the UDF argument (e.g. "v" for V.keyframe).
		if i := strings.IndexByte(u.Arg, '.'); i > 0 {
			udfRels[strings.ToLower(u.Arg[:i])] = true
		}
	}
	// Q_learning depends on Q_db when the UDF's relation is equi-joined to a
	// relation that carries its own filter predicates (the joined Q_db
	// output gates which tuples reach the model).
	learningDependsOnDB := false
	for _, e := range joinEdges {
		var partner string
		switch {
		case udfRels[e.a]:
			partner = e.b
		case udfRels[e.b]:
			partner = e.a
		default:
			continue
		}
		if filteredRels[partner] {
			learningDependsOnDB = true
		}
	}
	switch {
	case hasJoinUDF:
		q.Type = Type4
	case hasSelectUDF:
		q.Type = Type2
	case learningDependsOnDB:
		q.Type = Type3
	default:
		q.Type = Type1
	}
	return q, nil
}

func collectAliases(ref *sqldb.TableRef, out map[string]bool) {
	if ref == nil {
		return
	}
	if ref.Join != nil {
		collectAliases(ref.Join.L, out)
		collectAliases(ref.Join.R, out)
		return
	}
	if ref.Alias != "" {
		out[strings.ToLower(ref.Alias)] = true
	} else if ref.Table != "" {
		out[strings.ToLower(ref.Table)] = true
	}
}

func collectJoinConds(ref *sqldb.TableRef, out *[]sqldb.Expr) {
	if ref == nil || ref.Join == nil {
		return
	}
	collectJoinConds(ref.Join.L, out)
	collectJoinConds(ref.Join.R, out)
	if ref.Join.Cond != nil {
		*out = append(*out, splitAnd(ref.Join.Cond)...)
	}
}

func splitAnd(e sqldb.Expr) []sqldb.Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(*sqldb.BinExpr); ok && b.Op == "and" {
		return append(splitAnd(b.L), splitAnd(b.R)...)
	}
	return []sqldb.Expr{e}
}

// findUDFCalls returns all nUDF_* function calls in an expression.
func findUDFCalls(e sqldb.Expr) []*sqldb.FuncCall {
	var out []*sqldb.FuncCall
	var walk func(sqldb.Expr)
	walk = func(x sqldb.Expr) {
		switch t := x.(type) {
		case *sqldb.FuncCall:
			if IsNUDF(t.Name) {
				out = append(out, t)
			}
			for _, a := range t.Args {
				walk(a)
			}
		case *sqldb.BinExpr:
			walk(t.L)
			walk(t.R)
		case *sqldb.UnaryExpr:
			walk(t.E)
		case *sqldb.CaseExpr:
			for _, w := range t.Whens {
				walk(w.Cond)
				walk(w.Then)
			}
			if t.Else != nil {
				walk(t.Else)
			}
		case *sqldb.InExpr:
			walk(t.E)
			for _, i := range t.List {
				walk(i)
			}
		case *sqldb.BetweenExpr:
			walk(t.E)
			walk(t.Lo)
			walk(t.Hi)
		case *sqldb.IsNullExpr:
			walk(t.E)
		}
	}
	walk(e)
	return out
}

// comparedLiteral returns the literal a UDF call is compared to when the
// expression contains `call OP literal` (or the mirror).
func comparedLiteral(e sqldb.Expr, call *sqldb.FuncCall) *sqldb.Datum {
	var found *sqldb.Datum
	var walk func(sqldb.Expr)
	walk = func(x sqldb.Expr) {
		if found != nil {
			return
		}
		b, ok := x.(*sqldb.BinExpr)
		if !ok {
			return
		}
		switch b.Op {
		case "=", "!=":
			if fc, ok := b.L.(*sqldb.FuncCall); ok && fc == call {
				if lit, ok := b.R.(*sqldb.Lit); ok {
					v := lit.Val
					found = &v
					return
				}
			}
			if fc, ok := b.R.(*sqldb.FuncCall); ok && fc == call {
				if lit, ok := b.L.(*sqldb.Lit); ok {
					v := lit.Val
					found = &v
					return
				}
			}
		}
		walk(b.L)
		walk(b.R)
	}
	walk(e)
	return found
}

// relationRefs lists the table qualifiers referenced by an expression
// (qualified references only — good enough for the template queries, which
// always qualify).
func relationRefs(e sqldb.Expr) []string {
	var out []string
	var walk func(sqldb.Expr)
	seen := map[string]bool{}
	walk = func(x sqldb.Expr) {
		switch t := x.(type) {
		case *sqldb.ColRef:
			if t.Table != "" && !seen[strings.ToLower(t.Table)] {
				seen[strings.ToLower(t.Table)] = true
				out = append(out, strings.ToLower(t.Table))
			}
		case *sqldb.BinExpr:
			walk(t.L)
			walk(t.R)
		case *sqldb.UnaryExpr:
			walk(t.E)
		case *sqldb.FuncCall:
			for _, a := range t.Args {
				walk(a)
			}
		case *sqldb.InExpr:
			walk(t.E)
			for _, i := range t.List {
				walk(i)
			}
		case *sqldb.BetweenExpr:
			walk(t.E)
			walk(t.Lo)
			walk(t.Hi)
		case *sqldb.IsNullExpr:
			walk(t.E)
		}
	}
	walk(e)
	return out
}

// referencesOtherRelation reports whether the conjunct containing a UDF call
// also references a column outside the UDF's own arguments (Type 4's
// `F.patternID != nUDF_recog(V.keyframe)` pattern).
func referencesOtherRelation(cond sqldb.Expr, call *sqldb.FuncCall) bool {
	argRels := map[string]bool{}
	for _, a := range call.Args {
		for _, r := range relationRefs(a) {
			argRels[r] = true
		}
	}
	// Collect refs in the conjunct excluding those inside the call itself.
	var outside []string
	var walk func(x sqldb.Expr, inCall bool)
	walk = func(x sqldb.Expr, inCall bool) {
		switch t := x.(type) {
		case *sqldb.ColRef:
			if !inCall && t.Table != "" {
				outside = append(outside, strings.ToLower(t.Table))
			}
		case *sqldb.FuncCall:
			child := inCall || t == call
			for _, a := range t.Args {
				walk(a, child)
			}
		case *sqldb.BinExpr:
			walk(t.L, inCall)
			walk(t.R, inCall)
		case *sqldb.UnaryExpr:
			walk(t.E, inCall)
		case *sqldb.InExpr:
			walk(t.E, inCall)
			for _, i := range t.List {
				walk(i, inCall)
			}
		case *sqldb.BetweenExpr:
			walk(t.E, inCall)
			walk(t.Lo, inCall)
			walk(t.Hi, inCall)
		case *sqldb.IsNullExpr:
			walk(t.E, inCall)
		}
	}
	walk(cond, false)
	for _, r := range outside {
		if !argRels[r] {
			return true
		}
	}
	return false
}
