package colquery

import (
	"fmt"
	"math"

	"repro/internal/iotdata"
)

// TemplateParams parameterizes a generated benchmark query.
type TemplateParams struct {
	// Selectivity is the accumulated selectivity of the relational (Q_db)
	// predicates, e.g. 0.0001 for the paper's default 0.01%.
	Selectivity float64
	// DetectUDF / ClassifyUDF / RecogUDF name the nUDFs the template calls;
	// the generator picks them per the chosen DL task.
	DetectUDF   string
	ClassifyUDF string
	RecogUDF    string
	// PatternLabel is the class literal used by classification predicates.
	PatternLabel string
	// DateLo/DateHi frame the time window (defaults: the paper's January
	// 2021 window).
	DateLo, DateHi string
	// UseDeviceTable routes the sensor predicates of the Type 3 template
	// through the device table (a three-way join: the printer's own sensor
	// stream gates which keyframes reach the model) instead of the fabric
	// table's aggregated readings.
	UseDeviceTable bool
}

// withDefaults fills unset fields.
func (p TemplateParams) withDefaults() TemplateParams {
	if p.DetectUDF == "" {
		p.DetectUDF = "nUDF_detect"
	}
	if p.ClassifyUDF == "" {
		p.ClassifyUDF = "nUDF_classify"
	}
	if p.RecogUDF == "" {
		p.RecogUDF = "nUDF_recog"
	}
	if p.PatternLabel == "" {
		p.PatternLabel = "Floral Pattern"
	}
	if p.DateLo == "" {
		p.DateLo = "2021-01-01"
	}
	if p.DateHi == "" {
		p.DateHi = "2021-01-31"
	}
	if p.Selectivity <= 0 {
		p.Selectivity = 0.0001
	}
	return p
}

// Generate builds the benchmark query of the given type, mirroring the
// example queries of Table I over the iotdata schema. The relational
// predicates are calibrated so their accumulated selectivity matches
// params.Selectivity (dates are uniform over Q1 2021, so a one-month window
// keeps ~1/3 of rows; the remaining factor is pushed into the sensor
// predicates).
func Generate(t QueryType, params TemplateParams) (string, error) {
	p := params.withDefaults()
	dateWindow := fmt.Sprintf("V.date > '%s' and V.date < '%s'", p.DateLo, p.DateHi)
	fabricDates := fmt.Sprintf("F.printdate > '%s' and F.printdate < '%s'", p.DateLo, p.DateHi)
	// The date window keeps about 1/3 of rows; sensor predicates supply the
	// remaining selectivity on the fabric side.
	sensorSel := p.Selectivity / (1.0 / 3.0)
	if sensorSel > 1 {
		sensorSel = 1
	}
	sensors := iotdata.FabricPredicateFor(sensorSel)

	switch t {
	case Type1:
		// Q_db (fabric dates) and Q_learning (video classification) are
		// independent: no join between F and V.
		return fmt.Sprintf(
			`SELECT sum(meter) AS total FROM fabric F, video V WHERE %s and %s and %s(V.keyframe) = '%s'`,
			fabricDates, dateWindow, p.ClassifyUDF, p.PatternLabel), nil
	case Type2:
		// Defect rate per pattern: the aggregate consumes nUDF outputs.
		return fmt.Sprintf(
			`SELECT patternID, sum(if(%s(V.keyframe) = TRUE, 1, 0)) / sum(meter) AS rate FROM fabric F, video V WHERE %s and F.transID = V.transID and %s GROUP BY patternID`,
			p.DetectUDF, fabricDates, dateWindow), nil
	case Type3:
		if p.UseDeviceTable {
			// Sensor predicates come from the device table: a three-way
			// join where the printer's own sensor stream gates which
			// keyframes reach the model.
			perPred := math.Sqrt(sensorSel)
			devSensors := fmt.Sprintf("D.humidity > %.4f and D.temperature > %.4f",
				100*(1-perPred), 60*(1-perPred))
			return fmt.Sprintf(
				`SELECT patternID, F.transID AS transID FROM fabric F, device D, video V WHERE %s and %s and D.transID = F.transID and F.transID = V.transID and %s and %s(V.keyframe) = FALSE`,
				devSensors, fabricDates, dateWindow, p.DetectUDF), nil
		}
		// Sensor predicates on F gate which keyframes reach the model.
		// The paper's template projects a bare transID; it is qualified here
		// because this engine rejects ambiguous references.
		return fmt.Sprintf(
			`SELECT patternID, F.transID AS transID FROM fabric F, video V WHERE %s and %s and F.transID = V.transID and %s and %s(V.keyframe) = FALSE`,
			sensors, fabricDates, dateWindow, p.DetectUDF), nil
	case Type4:
		// The nUDF output joins against another relation's column.
		return fmt.Sprintf(
			`SELECT patternID FROM fabric F, video V WHERE %s and F.transID = V.transID and %s and F.patternID != %s(V.keyframe)`,
			fabricDates, dateWindow, p.RecogUDF), nil
	}
	return "", fmt.Errorf("colquery: unknown query type %v", t)
}

// GenerateAnalyzed generates and immediately analyzes a template,
// asserting the classifier round-trips the intended type.
func GenerateAnalyzed(t QueryType, params TemplateParams) (*Query, error) {
	sql, err := Generate(t, params)
	if err != nil {
		return nil, err
	}
	q, err := Analyze(sql)
	if err != nil {
		return nil, fmt.Errorf("colquery: analyzing generated %v query: %w", t, err)
	}
	if q.Type != t {
		return nil, fmt.Errorf("colquery: generated %v query classified as %v:\n%s", t, q.Type, sql)
	}
	return q, nil
}

// Mix produces n queries of each type with the given selectivity — the
// paper's benchmark mixes 100 per type.
func Mix(nPerType int, selectivity float64) ([]*Query, error) {
	var out []*Query
	for _, t := range []QueryType{Type1, Type2, Type3, Type4} {
		for i := 0; i < nPerType; i++ {
			q, err := GenerateAnalyzed(t, TemplateParams{Selectivity: selectivity})
			if err != nil {
				return nil, err
			}
			out = append(out, q)
		}
	}
	return out, nil
}
