package colquery

import (
	"strings"
	"testing"

	"repro/internal/sqldb"
)

func TestPaperType1Example(t *testing.T) {
	q, err := Analyze(`SELECT sum(meter) FROM fabric F, video V
		WHERE F.printdate > '2021-01-01' and F.printdate < '2021-1-31'
		and V.date > '2021-01-01' and V.date < '2021-1-31'
		and nUDF_classify(V.keyframe) = 'Floral Pattern'`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Type != Type1 {
		t.Fatalf("type = %v, want Type 1", q.Type)
	}
	if q.Type.Difficulty() != "Easy" {
		t.Fatalf("difficulty = %s", q.Type.Difficulty())
	}
}

func TestPaperType2Example(t *testing.T) {
	q, err := Analyze(`SELECT patternID, sum(if(nUDF_detect(V.keyframe) = TRUE, 1, 0)) / sum(meter)
		FROM fabric F, video V
		WHERE F.printdate > '2021-01-01' and F.printdate < '2021-1-31'
		and F.transID = V.transID
		and V.date > '2021-01-01' and V.date < '2021-1-31'
		GROUP BY patternID`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Type != Type2 {
		t.Fatalf("type = %v, want Type 2", q.Type)
	}
}

func TestPaperType3Example(t *testing.T) {
	q, err := Analyze(`SELECT patternID, transID FROM fabric F, video V
		WHERE F.humidity > 80 and F.temperature > 30
		and F.printdate > '2021-01-01' and F.printdate < '2021-1-31'
		and F.transID = V.transID
		and V.date > '2021-01-01' and V.date < '2021-1-31'
		and nUDF_detect(V.keyframe) = FALSE`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Type != Type3 {
		t.Fatalf("type = %v, want Type 3", q.Type)
	}
	if q.Type.Difficulty() != "Medium" {
		t.Fatalf("difficulty = %s", q.Type.Difficulty())
	}
}

func TestPaperType4Example(t *testing.T) {
	q, err := Analyze(`SELECT patternID FROM fabric F, video V
		WHERE F.printdate > '2021-01-01' and F.printdate < '2021-1-31'
		and F.transID = V.transID
		and V.date > '2021-01-01' and V.date < '2021-1-31'
		and F.patternID != nUDF_recog(V.keyframe)`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Type != Type4 {
		t.Fatalf("type = %v, want Type 4", q.Type)
	}
	if q.Type.Difficulty() != "Hard" {
		t.Fatalf("difficulty = %s", q.Type.Difficulty())
	}
	if !q.UDFs[0].InJoin {
		t.Fatal("type 4 usage must be marked InJoin")
	}
}

func TestIntroQueryClassifiesType3(t *testing.T) {
	// The paper's opening printing-fault query.
	q, err := Analyze(`SELECT patternID, transID FROM fabric F, video V
		WHERE F.humidity > 80 and F.temperature > 30
		and F.printdate > '2021-01-01' and F.printdate < '2021-1-31'
		and F.transID = V.transID
		and V.date > '2021-01-01' and V.date < '2021-1-31'
		and nUDF_detect(V.keyframe) = FALSE`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Type != Type3 {
		t.Fatalf("type = %v", q.Type)
	}
}

func TestEqualsLiteralExtraction(t *testing.T) {
	q, err := Analyze(`SELECT transID FROM video V WHERE nUDF_classify(V.keyframe) = 'Floral Pattern'`)
	if err != nil {
		t.Fatal(err)
	}
	u := q.UDFs[0]
	if u.EqualsLiteral == nil || u.EqualsLiteral.S != "Floral Pattern" {
		t.Fatalf("literal = %v", u.EqualsLiteral)
	}
	if u.Arg != "V.keyframe" {
		t.Fatalf("arg = %q", u.Arg)
	}
}

func TestMultipleUDFs(t *testing.T) {
	q, err := Analyze(`SELECT patternID, transID FROM fabric F, video V
		WHERE F.transID = V.transID and nUDF_detect(V.keyframe) = TRUE
		and nUDF_classify(V.keyframe) = 'Floral Pattern'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.UDFNames) != 2 {
		t.Fatalf("udf names = %v", q.UDFNames)
	}
}

func TestNonCollaborativeRejected(t *testing.T) {
	if _, err := Analyze(`SELECT 1`); err == nil {
		t.Fatal("plain query must be rejected")
	}
	if _, err := Analyze(`INSERT INTO t VALUES (1)`); err == nil {
		t.Fatal("non-SELECT must be rejected")
	}
}

func TestIsNUDF(t *testing.T) {
	if !IsNUDF("nUDF_detect") || !IsNUDF("NUDF_X") {
		t.Fatal("nUDF names must match")
	}
	if IsNUDF("sum") || IsNUDF("udf_detect") {
		t.Fatal("non-nUDF names must not match")
	}
}

func TestTemplatesRoundTrip(t *testing.T) {
	for _, typ := range []QueryType{Type1, Type2, Type3, Type4} {
		q, err := GenerateAnalyzed(typ, TemplateParams{Selectivity: 0.001})
		if err != nil {
			t.Fatalf("type %v: %v", typ, err)
		}
		if q.Type != typ {
			t.Fatalf("template %v classified as %v", typ, q.Type)
		}
	}
}

func TestTemplatesParse(t *testing.T) {
	for _, typ := range []QueryType{Type1, Type2, Type3, Type4} {
		sql, err := Generate(typ, TemplateParams{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sqldb.Parse(sql); err != nil {
			t.Fatalf("type %v SQL does not parse: %v\n%s", typ, err, sql)
		}
	}
}

func TestTemplateCustomUDFNames(t *testing.T) {
	sql, err := Generate(Type3, TemplateParams{DetectUDF: "nUDF_defect_detection_v1"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sql, "nUDF_defect_detection_v1") {
		t.Fatalf("custom UDF name missing:\n%s", sql)
	}
}

func TestMixProducesAllTypes(t *testing.T) {
	qs, err := Mix(2, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 8 {
		t.Fatalf("mix size = %d", len(qs))
	}
	counts := map[QueryType]int{}
	for _, q := range qs {
		counts[q.Type]++
	}
	for _, typ := range []QueryType{Type1, Type2, Type3, Type4} {
		if counts[typ] != 2 {
			t.Fatalf("type %v count = %d", typ, counts[typ])
		}
	}
}

func TestUDFInSelectDetected(t *testing.T) {
	q, err := Analyze(`SELECT nUDF_classify(V.keyframe) AS label, count(*) FROM video V GROUP BY nUDF_classify(V.keyframe)`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Type != Type2 {
		t.Fatalf("select-clause UDF should classify Type 2, got %v", q.Type)
	}
	found := false
	for _, u := range q.UDFs {
		if u.InSelect {
			found = true
		}
	}
	if !found {
		t.Fatal("InSelect usage not marked")
	}
}

func TestDeviceTableTemplate(t *testing.T) {
	q, err := GenerateAnalyzed(Type3, TemplateParams{Selectivity: 0.05, UseDeviceTable: true})
	if err != nil {
		t.Fatal(err)
	}
	if q.Type != Type3 {
		t.Fatalf("device variant classified as %v", q.Type)
	}
	if !strings.Contains(q.SQL, "device D") || !strings.Contains(q.SQL, "D.humidity") {
		t.Fatalf("device variant missing device table:\n%s", q.SQL)
	}
}
