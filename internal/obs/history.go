package obs

// QueryHistory is the engine's fixed-size query-history ring buffer: every
// executed statement leaves one QueryRecord behind — normalized SQL,
// strategy and fallback path, cache state, per-query resource accounting
// (rows, bytes, morsels, UDF/inference calls), wall and busy time, and the
// qerr error class — and the newest records overwrite the oldest once the
// ring is full, bounding memory for always-on use. The sqldb `sys.queries`
// system table renders a snapshot of this ring relationally, so the engine
// can answer questions about its own recent workload with SQL.
//
// A secondary slow-query ring keeps records whose wall time crossed a
// threshold (they would otherwise age out of the main ring fastest during
// a flood of cheap queries), and an optional structured log writer
// receives one JSON line per slow query as it is recorded.

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// QueryRecord is one executed statement's history entry.
type QueryRecord struct {
	// ID is the monotonically increasing sequence number assigned by Add.
	ID int64 `json:"id"`
	// SQL is the normalized statement text.
	SQL string `json:"sql"`
	// Strategy labels strategy-level roll-up records (DB-PyTorch, DB-UDF,
	// DL2SQL, DL2SQL-OP); plain engine statements leave it "sql".
	Strategy string `json:"strategy,omitempty"`
	// Fallback is the fallback ladder walked to produce the result, e.g.
	// "DB-PyTorch->DB-UDF"; empty when the primary strategy answered.
	Fallback string `json:"fallback,omitempty"`
	// CacheState is the plan-cache outcome: "hit", "miss", "bypass"
	// (uncacheable statement), or "disabled".
	CacheState string `json:"cache,omitempty"`
	// Start is the statement's start time.
	Start time.Time `json:"start"`
	// Wall is end-to-end latency; Busy is the summed self-time of the
	// executed plan operators (a CPU-time proxy: under parallel execution
	// it reports operator wall time, not per-worker CPU).
	Wall time.Duration `json:"wall_ns"`
	Busy time.Duration `json:"busy_ns"`
	// RowsOut / RowsScanned / BytesOut are result cardinality, rows read
	// by scans, and the approximate materialized size of the result.
	RowsOut     int64 `json:"rows_out"`
	RowsScanned int64 `json:"rows_scanned"`
	BytesOut    int64 `json:"bytes_out"`
	// Morsels / ParallelOps count morsel dispatches and operators that
	// genuinely fanned out over >1 workers.
	Morsels     int64 `json:"morsels"`
	ParallelOps int64 `json:"parallel_ops"`
	// UDFCalls counts scalar-UDF evaluations (inference calls for the
	// UDF-shaped strategies); InferCalls counts strategy-level inference
	// batches shipped to the serving component.
	UDFCalls   int64 `json:"udf_calls"`
	InferCalls int64 `json:"infer_calls"`
	// Retries counts serving-pipe retry attempts during the statement.
	Retries int64 `json:"retries"`
	// ErrClass is the qerr classification ("cancelled", "timeout", ...);
	// empty for successful statements. Err is the error text.
	ErrClass string `json:"err_class,omitempty"`
	Err      string `json:"err,omitempty"`
	// TraceID links the record to a retained trace in the trace store
	// (sys.traces / sys.spans / /v1/traces/{id}); empty when the query ran
	// untraced or the tail sampler dropped its trace before this record
	// was added.
	TraceID string `json:"trace_id,omitempty"`
}

// defaultSlowCap bounds the secondary slow-query ring.
const defaultSlowCap = 128

// QueryHistory is a race-safe fixed-capacity ring of QueryRecords. A nil
// *QueryHistory is a valid disabled history: Add no-ops and snapshots are
// empty, so callers need no nil checks.
type QueryHistory struct {
	mu      sync.Mutex
	cap     int
	nextID  int64
	ring    []QueryRecord
	pos     int
	slowThr time.Duration
	slow    []QueryRecord
	slowPos int
	slowW   io.Writer
}

// NewQueryHistory creates a history retaining the last capacity records
// (minimum 1).
func NewQueryHistory(capacity int) *QueryHistory {
	if capacity < 1 {
		capacity = 1
	}
	return &QueryHistory{cap: capacity}
}

// SetSlowThreshold arms the slow-query path: records with Wall >= thr are
// additionally kept in the slow ring and, when a writer was attached with
// SetSlowLog, emitted as one JSON line each. thr <= 0 disables it.
func (h *QueryHistory) SetSlowThreshold(thr time.Duration) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.slowThr = thr
	h.mu.Unlock()
}

// SetSlowLog attaches a structured slow-query log writer (one JSON object
// per line). Writes happen under the history lock, so lines from
// concurrent queries never interleave. nil detaches.
func (h *QueryHistory) SetSlowLog(w io.Writer) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.slowW = w
	h.mu.Unlock()
}

// SlowThreshold reads the current slow-query threshold.
func (h *QueryHistory) SlowThreshold() time.Duration {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.slowThr
}

// Add assigns the record an ID and appends it to the ring (overwriting the
// oldest entry when full), returning the ID. Safe on a nil receiver
// (returns 0).
func (h *QueryHistory) Add(rec QueryRecord) int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	h.nextID++
	rec.ID = h.nextID
	if len(h.ring) < h.cap {
		h.ring = append(h.ring, rec)
	} else {
		h.ring[h.pos] = rec
		h.pos = (h.pos + 1) % h.cap
	}
	if h.slowThr > 0 && rec.Wall >= h.slowThr {
		slowCap := h.cap
		if slowCap > defaultSlowCap {
			slowCap = defaultSlowCap
		}
		if len(h.slow) < slowCap {
			h.slow = append(h.slow, rec)
		} else {
			h.slow[h.slowPos] = rec
			h.slowPos = (h.slowPos + 1) % slowCap
		}
		if h.slowW != nil {
			line, err := json.Marshal(rec)
			if err == nil {
				line = append(line, '\n')
				h.slowW.Write(line)
			}
		}
	}
	h.mu.Unlock()
	return rec.ID
}

// Snapshot copies the retained records, oldest first.
func (h *QueryHistory) Snapshot() []QueryRecord {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return ringCopy(h.ring, h.pos)
}

// SlowSnapshot copies the retained slow-query records, oldest first.
func (h *QueryHistory) SlowSnapshot() []QueryRecord {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return ringCopy(h.slow, h.slowPos)
}

// Len reports how many records are currently retained in the main ring.
func (h *QueryHistory) Len() int {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.ring)
}

// Cap reports the ring capacity (0 for a nil history).
func (h *QueryHistory) Cap() int {
	if h == nil {
		return 0
	}
	return h.cap
}

// ringCopy linearizes a ring whose oldest element sits at pos.
func ringCopy(ring []QueryRecord, pos int) []QueryRecord {
	out := make([]QueryRecord, 0, len(ring))
	out = append(out, ring[pos:]...)
	out = append(out, ring[:pos]...)
	return out
}
