package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestQueryHistoryRing(t *testing.T) {
	h := NewQueryHistory(4)
	for i := 0; i < 10; i++ {
		id := h.Add(QueryRecord{SQL: fmt.Sprintf("SELECT %d", i)})
		if id != int64(i+1) {
			t.Fatalf("id = %d, want %d", id, i+1)
		}
	}
	if h.Len() != 4 || h.Cap() != 4 {
		t.Fatalf("len/cap = %d/%d, want 4/4", h.Len(), h.Cap())
	}
	snap := h.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("snapshot len = %d", len(snap))
	}
	// Oldest first, and only the newest four records survive.
	for i, rec := range snap {
		wantID := int64(7 + i)
		if rec.ID != wantID || rec.SQL != fmt.Sprintf("SELECT %d", wantID-1) {
			t.Fatalf("snapshot[%d] = %+v, want id %d", i, rec, wantID)
		}
	}
}

func TestQueryHistoryNilSafe(t *testing.T) {
	var h *QueryHistory
	if id := h.Add(QueryRecord{SQL: "SELECT 1"}); id != 0 {
		t.Fatalf("nil history Add returned %d", id)
	}
	h.SetSlowThreshold(time.Second)
	h.SetSlowLog(&bytes.Buffer{})
	if h.Snapshot() != nil || h.SlowSnapshot() != nil || h.Len() != 0 || h.Cap() != 0 {
		t.Fatal("nil history not inert")
	}
}

func TestQueryHistorySlowLog(t *testing.T) {
	var buf bytes.Buffer
	h := NewQueryHistory(16)
	h.SetSlowThreshold(100 * time.Millisecond)
	h.SetSlowLog(&buf)
	h.Add(QueryRecord{SQL: "SELECT fast", Wall: 5 * time.Millisecond})
	h.Add(QueryRecord{SQL: "SELECT slow", Wall: 250 * time.Millisecond, RowsOut: 7, ErrClass: ""})
	h.Add(QueryRecord{SQL: "SELECT slower", Wall: time.Second, ErrClass: "timeout", Err: "query timeout"})

	slow := h.SlowSnapshot()
	if len(slow) != 2 || slow[0].SQL != "SELECT slow" || slow[1].SQL != "SELECT slower" {
		t.Fatalf("slow snapshot: %+v", slow)
	}
	// The structured log is one parseable JSON object per line.
	sc := bufio.NewScanner(&buf)
	var lines []map[string]any
	for sc.Scan() {
		var obj map[string]any
		if err := json.Unmarshal(sc.Bytes(), &obj); err != nil {
			t.Fatalf("slow log line not JSON: %v: %s", err, sc.Text())
		}
		lines = append(lines, obj)
	}
	if len(lines) != 2 {
		t.Fatalf("slow log has %d lines, want 2", len(lines))
	}
	if lines[0]["sql"] != "SELECT slow" || lines[0]["rows_out"] != float64(7) {
		t.Fatalf("slow log line 0: %v", lines[0])
	}
	if lines[1]["err_class"] != "timeout" {
		t.Fatalf("slow log line 1: %v", lines[1])
	}
}

// TestQueryHistoryConcurrent hammers the ring from concurrent writers and
// readers; run under -race this pins the race-safety contract sys.queries
// relies on.
func TestQueryHistoryConcurrent(t *testing.T) {
	h := NewQueryHistory(64)
	h.SetSlowThreshold(time.Nanosecond)
	h.SetSlowLog(&bytes.Buffer{})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				h.Add(QueryRecord{SQL: fmt.Sprintf("SELECT %d", w), Wall: time.Duration(i)})
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				_ = h.Snapshot()
				_ = h.SlowSnapshot()
				_ = h.Len()
			}
		}()
	}
	wg.Wait()
	if h.Len() != 64 {
		t.Fatalf("len = %d, want 64", h.Len())
	}
	snap := h.Snapshot()
	for i := 1; i < len(snap); i++ {
		if snap[i].ID <= snap[i-1].ID {
			t.Fatalf("snapshot IDs not increasing: %d then %d", snap[i-1].ID, snap[i].ID)
		}
	}
	if snap[len(snap)-1].ID != 1600 {
		t.Fatalf("last ID = %d, want 1600", snap[len(snap)-1].ID)
	}
}
