package obs

// Tail-sampled trace retention: a bounded in-memory store of finished span
// trees, queryable through the engine's sys.traces / sys.spans virtual
// tables and exportable per trace as Chrome trace_event JSON.
//
// The sampling decision is tail-based — made when the trace finishes, with
// the whole query's outcome in hand. A trace is retained when it was slow
// (wall time over the configured threshold), errored, engaged the fallback
// ladder, or was rejected by the circuit breaker, plus a deterministic
// 1-in-N fraction of normal traces (a hash of the trace ID, so a seeded ID
// generator makes the decision fully reproducible in tests). Dropped
// traces cost nothing beyond their live spans, which become garbage
// immediately.
//
// Retained traces are flattened at Finish time: the mutable span tree is
// walked depth-first into immutable SpanRow snapshots with store-assigned
// span IDs, bounded by MaxSpansPerTrace. Readers (sys.spans scans, the
// /v1/traces/{id} endpoint) only ever touch these frozen rows, so
// concurrent queries writing new spans never race a reader.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"strings"
	"sync"
	"time"
)

// TraceStoreConfig sizes a TraceStore. The zero value uses the defaults
// noted per field.
type TraceStoreConfig struct {
	// MaxTraces bounds the retained-trace ring (default 256).
	MaxTraces int
	// MaxSpansPerTrace truncates a retained trace's flattened span tree
	// (default 512; the trace records how many spans it really had).
	MaxSpansPerTrace int
	// SlowThreshold marks traces for retention by wall time (default
	// 250ms; negative disables the slow criterion).
	SlowThreshold time.Duration
	// SampleEvery keeps 1 in N normal (fast, clean) traces, decided by a
	// hash of the trace ID (default 64; 1 keeps every trace; negative
	// keeps none beyond the tail criteria).
	SampleEvery int
	// Seed seeds the trace-ID generator; 0 derives a seed from the clock.
	// Tests pin it so IDs — and with them the 1-in-N decisions — are
	// deterministic.
	Seed int64
	// Metrics, when non-nil, receives the trace.* counters, gauges, and
	// histograms.
	Metrics *Registry
}

func (c TraceStoreConfig) maxTraces() int {
	if c.MaxTraces <= 0 {
		return 256
	}
	return c.MaxTraces
}

func (c TraceStoreConfig) maxSpans() int {
	if c.MaxSpansPerTrace <= 0 {
		return 512
	}
	return c.MaxSpansPerTrace
}

func (c TraceStoreConfig) slowThreshold() time.Duration {
	if c.SlowThreshold == 0 {
		return 250 * time.Millisecond
	}
	return c.SlowThreshold
}

func (c TraceStoreConfig) sampleEvery() int {
	if c.SampleEvery == 0 {
		return 64
	}
	return c.SampleEvery
}

// SpanRow is one flattened, immutable span of a retained trace. SpanID is
// assigned depth-first at retention time (the root is 1); ParentID is 0
// for the root.
type SpanRow struct {
	SpanID   int
	ParentID int
	Name     string
	Start    time.Time
	Dur      time.Duration
	Attrs    string
}

// StoredTrace is one retained trace: identity, outcome, and its frozen
// span rows.
type StoredTrace struct {
	ID    string
	Start time.Time
	Wall  time.Duration
	// Reason says why the tail sampler kept it: "slow", "error",
	// "fallback", "breaker", or "sampled" (the 1-in-N fraction).
	Reason string
	// Spans is the flattened tree, depth-first; SpanTotal is the true span
	// count before MaxSpansPerTrace truncation.
	Spans     []SpanRow
	SpanTotal int
}

// Truncated reports whether the span tree was cut off by MaxSpansPerTrace.
func (st *StoredTrace) Truncated() bool { return st.SpanTotal > len(st.Spans) }

// TraceStore owns trace creation (seedable IDs), the tail-sampling
// decision, and the bounded ring of retained traces. A nil *TraceStore is
// a valid disabled store: StartTrace returns a nil trace and every lookup
// is empty, so always-on call sites pay only nil checks.
type TraceStore struct {
	cfg TraceStoreConfig

	genMu sync.Mutex
	gen   *rand.Rand

	// Metric handles are resolved once at construction: the registry hands
	// out stable pointers, and the per-query paths (StartTrace, Finish)
	// must not pay a name lookup under the registry lock each time.
	mStarted  *Counter
	mRetained *Counter
	mDropped  *Counter
	mByReason map[string]*Counter
	mSpans    *Histogram
	mTraces   *Gauge

	mu   sync.Mutex
	ring []*StoredTrace
	pos  int
	byID map[string]*StoredTrace
}

// NewTraceStore builds a store (and its ID generator) from the config.
func NewTraceStore(cfg TraceStoreConfig) *TraceStore {
	seed := cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	ts := &TraceStore{
		cfg:  cfg,
		gen:  rand.New(rand.NewSource(seed)),
		byID: map[string]*StoredTrace{},
	}
	if m := cfg.Metrics; m != nil {
		ts.mStarted = m.Counter(MetricTracesStarted)
		ts.mRetained = m.Counter(MetricTracesRetained)
		ts.mDropped = m.Counter(MetricTracesDropped)
		ts.mByReason = map[string]*Counter{}
		for _, r := range []string{"slow", "error", "fallback", "breaker", "sampled"} {
			ts.mByReason[r] = m.Counter(TraceRetainedMetric(r))
		}
		ts.mSpans = m.Histogram(MetricTraceSpans)
		ts.mTraces = m.Gauge(MetricTraceStoreTraces)
	}
	return ts
}

// NextID generates a fresh trace ID: 16 lowercase hex characters from the
// seeded generator. Encoded by hand — this runs once per query, and
// fmt.Sprintf("%016x") shows up in profiles at that frequency.
func (ts *TraceStore) NextID() string {
	if ts == nil {
		return ""
	}
	ts.genMu.Lock()
	v := ts.gen.Uint64()
	ts.genMu.Unlock()
	if v == 0 {
		v = 1
	}
	const hexdigits = "0123456789abcdef"
	var buf [16]byte
	for i := 15; i >= 0; i-- {
		buf[i] = hexdigits[v&0xf]
		v >>= 4
	}
	return string(buf[:])
}

// StartTrace opens a new trace whose root span is named rootName. When the
// context carries a valid externally supplied ID (ContextWithTraceID — the
// server plants the request's X-Trace-Id here), the trace adopts it;
// otherwise a fresh ID is generated. Callers attach the returned trace and
// its root span to the context and later pass the trace to Finish exactly
// once. Nil-safe: a nil store returns a nil trace.
func (ts *TraceStore) StartTrace(ctx context.Context, rootName string) *Trace {
	return ts.StartTraceAt(ctx, rootName, time.Now())
}

// StartTraceAt is StartTrace with a caller-supplied start time, for call
// sites that already read the clock for their own accounting (the query
// recorder's wall-time stamp) and can lend tracing the same reading.
func (ts *TraceStore) StartTraceAt(ctx context.Context, rootName string, start time.Time) *Trace {
	if ts == nil {
		return nil
	}
	id := ""
	if hint := TraceIDHint(ctx); ValidTraceID(hint) {
		id = hint
	}
	if id == "" {
		id = ts.NextID()
	}
	t := &Trace{id: id}
	// Bound span creation at the retention bound: spans past it would be
	// discarded by the flatten step anyway, so don't build them at all.
	t.arena.limit = ts.cfg.maxSpans()
	t.root = t.arena.alloc(rootName, start)
	t.start = start
	if ts.mStarted != nil {
		ts.mStarted.Add(1)
	}
	return t
}

// Finish closes the trace's root span, runs the tail-sampling decision,
// and — when the trace is kept — flattens and retains its span tree.
// Returns whether the trace was retained. Safe on a nil store or trace.
func (ts *TraceStore) Finish(t *Trace) bool {
	if ts == nil || t == nil {
		return false
	}
	t.root.Finish()
	wall := t.root.Duration()
	reason := ts.keepReason(t, wall)
	if reason == "" {
		t.state.Store(traceDropped)
		// The span tree is unreachable from here on: detach it and hand
		// the chunk back to the pool for the next trace (unless a Tracer
		// adopted a span, which pins the arena).
		t.root = nil
		t.arena.release()
		if ts.mDropped != nil {
			ts.mDropped.Add(1)
		}
		return false
	}
	t.state.Store(traceKept)
	st := &StoredTrace{ID: t.id, Start: t.start, Wall: wall, Reason: reason}
	st.Spans, st.SpanTotal = flattenSpans(t.root, ts.cfg.maxSpans())
	// Spans suppressed by the creation-time budget still count toward the
	// true total, so Truncated() stays honest.
	st.SpanTotal += t.arena.droppedSpans()
	ts.mu.Lock()
	if len(ts.ring) < ts.cfg.maxTraces() {
		ts.ring = append(ts.ring, st)
	} else {
		old := ts.ring[ts.pos]
		if ts.byID[old.ID] == old {
			delete(ts.byID, old.ID)
		}
		ts.ring[ts.pos] = st
		ts.pos = (ts.pos + 1) % ts.cfg.maxTraces()
	}
	ts.byID[st.ID] = st
	n := len(ts.ring)
	ts.mu.Unlock()
	if ts.mRetained != nil {
		ts.mRetained.Add(1)
		ts.mByReason[reason].Add(1)
		ts.mSpans.Observe(float64(st.SpanTotal))
		ts.mTraces.Set(float64(n))
	}
	return true
}

// keepReason is the tail-sampling policy. Flag criteria win over the slow
// criterion so a trace that both erred and was slow reports "error"; the
// deterministic fraction is the last resort for normal traces.
func (ts *TraceStore) keepReason(t *Trace, wall time.Duration) string {
	switch {
	case t.flag(traceFlagError):
		return "error"
	case t.flag(traceFlagBreaker):
		return "breaker"
	case t.flag(traceFlagFallback):
		return "fallback"
	}
	if thr := ts.cfg.slowThreshold(); thr > 0 && wall >= thr {
		return "slow"
	}
	if every := ts.cfg.sampleEvery(); every > 0 && sampledByHash(t.id, every) {
		return "sampled"
	}
	return ""
}

// sampledByHash is the deterministic 1-in-N decision: an FNV-1a hash of
// the trace ID modulo N. Every process (and every test re-run with a
// seeded ID generator) agrees on the same decision for the same ID.
func sampledByHash(id string, every int) bool {
	if every <= 1 {
		return true
	}
	var h uint64 = 14695981039346656037
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= 1099511628211
	}
	return h%uint64(every) == 0
}

// flattenSpans freezes a finished span tree into SpanRows, depth-first,
// assigning span IDs as it goes and truncating at maxSpans. Returns the
// rows and the true total span count.
func flattenSpans(root *Span, maxSpans int) ([]SpanRow, int) {
	var rows []SpanRow
	total := 0
	next := 1
	var walk func(s *Span, parent int)
	walk = func(s *Span, parent int) {
		total++
		var id int
		if len(rows) < maxSpans {
			id = next
			next++
			rows = append(rows, SpanRow{
				SpanID:   id,
				ParentID: parent,
				Name:     s.Name,
				Start:    s.Start,
				Dur:      s.Duration(),
				Attrs:    renderAttrs(s.Attrs()),
			})
		}
		for _, c := range s.Children() {
			walk(c, id)
		}
	}
	walk(root, 0)
	return rows, total
}

// renderAttrs renders span annotations as "k=v" pairs, space-joined.
func renderAttrs(attrs []Attr) string {
	if len(attrs) == 0 {
		return ""
	}
	var sb strings.Builder
	for i, a := range attrs {
		if i > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%s=%v", a.Key, a.Value)
	}
	return sb.String()
}

// Get looks up a retained trace by ID.
func (ts *TraceStore) Get(id string) (*StoredTrace, bool) {
	if ts == nil {
		return nil, false
	}
	ts.mu.Lock()
	st, ok := ts.byID[id]
	ts.mu.Unlock()
	return st, ok
}

// Snapshot copies the retained traces, oldest first.
func (ts *TraceStore) Snapshot() []*StoredTrace {
	if ts == nil {
		return nil
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	out := make([]*StoredTrace, 0, len(ts.ring))
	out = append(out, ts.ring[ts.pos:]...)
	out = append(out, ts.ring[:ts.pos]...)
	return out
}

// Len reports how many traces are currently retained.
func (ts *TraceStore) Len() int {
	if ts == nil {
		return 0
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return len(ts.ring)
}

// SlowThreshold exposes the resolved slow-trace threshold (0 on nil).
func (ts *TraceStore) SlowThreshold() time.Duration {
	if ts == nil {
		return 0
	}
	return ts.cfg.slowThreshold()
}

// WriteChromeTrace exports one retained trace as Chrome trace_event JSON
// (load it at chrome://tracing or https://ui.perfetto.dev). Timestamps are
// microseconds relative to the trace start.
func (st *StoredTrace) WriteChromeTrace(w io.Writer) error {
	events := make([]chromeEvent, 0, len(st.Spans))
	for _, r := range st.Spans {
		ev := chromeEvent{
			Name:  r.Name,
			Phase: "X",
			TS:    float64(r.Start.Sub(st.Start)) / float64(time.Microsecond),
			Dur:   float64(r.Dur) / float64(time.Microsecond),
			PID:   1,
			TID:   1,
		}
		ev.Args = map[string]any{
			"trace_id": st.ID,
			"span_id":  r.SpanID,
			"parent":   r.ParentID,
		}
		if r.Attrs != "" {
			ev.Args["attrs"] = r.Attrs
		}
		events = append(events, ev)
	}
	return json.NewEncoder(w).Encode(events)
}
