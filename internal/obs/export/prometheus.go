// Package export renders an obs.Registry for external monitoring systems:
// WritePrometheus emits text exposition format 0.0.4 (the format every
// Prometheus-compatible scraper ingests), Handler wraps it as an HTTP
// endpoint, and NewMux assembles a diagnostics mux combining /metrics with
// the stdlib net/http/pprof profile handlers — all with zero dependencies
// beyond the standard library.
package export

import (
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"

	"repro/internal/obs"
)

// PromName sanitizes an internal dotted metric name into the Prometheus
// naming alphabet [a-zA-Z_:][a-zA-Z0-9_:]*: dots and every other
// disallowed byte (including the "->" in fallback-hop names) become
// underscores, runs collapse, and a leading digit gains an underscore
// prefix. "sqldb.cache.plan.hits" renders as "sqldb_cache_plan_hits".
func PromName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	prevUnderscore := false
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == ':' ||
			c >= '0' && c <= '9'
		if ok {
			b.WriteByte(c)
			prevUnderscore = false
			continue
		}
		if !prevUnderscore {
			b.WriteByte('_')
			prevUnderscore = true
		}
	}
	out := strings.Trim(b.String(), "_")
	if out == "" {
		return "_"
	}
	if c := out[0]; c >= '0' && c <= '9' {
		out = "_" + out
	}
	return out
}

// WritePrometheus renders a point-in-time snapshot of the registry in
// Prometheus text exposition format 0.0.4. Counters render as counter
// series, gauges as gauge series, and histograms as summary series with
// quantile labels plus the _sum and _count conventions. Series are sorted
// by name so output is deterministic and diffable.
func WritePrometheus(w io.Writer, reg *obs.Registry) error {
	snap := reg.Snapshot()

	names := make([]string, 0, len(snap.Counters))
	for name := range snap.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := PromName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, snap.Counters[name]); err != nil {
			return err
		}
	}

	names = names[:0]
	for name := range snap.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := PromName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", pn, pn, formatFloat(snap.Gauges[name])); err != nil {
			return err
		}
	}

	names = names[:0]
	for name := range snap.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := PromName(name)
		s := snap.Histograms[name]
		if _, err := fmt.Fprintf(w, "# TYPE %s summary\n", pn); err != nil {
			return err
		}
		for _, q := range []struct {
			label string
			value float64
		}{{"0.5", s.P50}, {"0.95", s.P95}, {"0.99", s.P99}} {
			if _, err := fmt.Fprintf(w, "%s{quantile=%q} %s\n", pn, q.label, formatFloat(q.value)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum %s\n", pn, formatFloat(s.Sum)); err != nil {
			return err
		}
		// When the histogram carries a trace-ID exemplar, append it to the
		// _count line in OpenMetrics exemplar syntax
		// (`# {trace_id="..."} value timestamp`) — the hook Grafana and
		// OpenMetrics-aware scrapers use to jump from a latency series to
		// the trace of its worst outlier. This exporter renders histograms
		// as summaries, so the counter-like _count line is the one sample
		// eligible to carry the exemplar (see ARCHITECTURE.md).
		if s.ExemplarTraceID != "" {
			if _, err := fmt.Fprintf(w, "%s_count %d # {trace_id=%q} %s %s\n",
				pn, s.Count, s.ExemplarTraceID, formatFloat(s.ExemplarValue),
				formatFloat(float64(s.ExemplarTS.UnixMilli())/1000)); err != nil {
				return err
			}
		} else if _, err := fmt.Fprintf(w, "%s_count %d\n", pn, s.Count); err != nil {
			return err
		}
	}
	return nil
}

// formatFloat renders a float the way Prometheus clients do: shortest
// round-trip representation, so 3 prints as "3" and 0.1 as "0.1".
func formatFloat(v float64) string {
	return strings.TrimSuffix(fmt.Sprintf("%g", v), ".0")
}

// Handler serves the registry at scrape time in text format 0.0.4.
func Handler(reg *obs.Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WritePrometheus(w, reg)
	})
}

// NewMux assembles the engine's diagnostics mux:
//
//	/metrics        - Prometheus text exposition of the registry
//	/debug/pprof/   - stdlib profile index (heap, goroutine, block, ...)
//	/debug/pprof/{cmdline,profile,symbol,trace}
//
// The pprof handlers are the explicit net/http/pprof functions rather than
// the package's DefaultServeMux side-effect registration, so importing
// export never pollutes the global mux.
func NewMux(reg *obs.Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler(reg))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
