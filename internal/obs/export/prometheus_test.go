package export

import (
	"bufio"
	"bytes"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/obs"
)

// promSample is one parsed exposition line.
type promSample struct {
	name   string
	labels map[string]string
	value  float64
}

var (
	promNameRe  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	promLineRe  = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (\S+)$`)
	promLabelRe = regexp.MustCompile(`^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"$`)
)

// parsePrometheus is a strict minimal text-format 0.0.4 parser: every
// sample line must match the grammar, every sample's metric family must
// have a preceding # TYPE declaration, and names must use the Prometheus
// alphabet. It fails the test on any violation.
func parsePrometheus(t *testing.T, text string) []promSample {
	t.Helper()
	types := map[string]string{}
	var samples []promSample
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 2 && fields[1] == "TYPE" {
				if len(fields) != 4 {
					t.Fatalf("malformed TYPE line: %q", line)
				}
				name, kind := fields[2], fields[3]
				if !promNameRe.MatchString(name) {
					t.Fatalf("TYPE line has invalid name: %q", line)
				}
				switch kind {
				case "counter", "gauge", "summary", "histogram", "untyped":
				default:
					t.Fatalf("TYPE line has invalid kind: %q", line)
				}
				if prev, ok := types[name]; ok && prev != kind {
					t.Fatalf("metric %q re-declared as %s (was %s)", name, kind, prev)
				}
				types[name] = kind
			}
			continue
		}
		m := promLineRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("malformed sample line: %q", line)
		}
		// _sum/_count series belong to their summary family's TYPE line.
		family := strings.TrimSuffix(strings.TrimSuffix(m[1], "_sum"), "_count")
		if _, ok := types[family]; !ok {
			if _, ok := types[m[1]]; !ok {
				t.Fatalf("sample %q has no preceding # TYPE", line)
			}
		}
		labels := map[string]string{}
		if m[2] != "" {
			inner := strings.TrimSuffix(strings.TrimPrefix(m[2], "{"), "}")
			for _, pair := range strings.Split(inner, ",") {
				lm := promLabelRe.FindStringSubmatch(pair)
				if lm == nil {
					t.Fatalf("malformed label pair %q in line %q", pair, line)
				}
				labels[lm[1]] = lm[2]
			}
		}
		v, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			t.Fatalf("sample %q has non-numeric value: %v", line, err)
		}
		samples = append(samples, promSample{name: m[1], labels: labels, value: v})
	}
	return samples
}

func findSample(samples []promSample, name, quantile string) (promSample, bool) {
	for _, s := range samples {
		if s.name == name && s.labels["quantile"] == quantile {
			return s, true
		}
	}
	return promSample{}, false
}

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"sqldb.cache.plan.hits":                "sqldb_cache_plan_hits",
		"strategy.fallback.DB-PyTorch->DB-UDF": "strategy_fallback_DB_PyTorch_DB_UDF",
		"sqldb.query.wall_s":                   "sqldb_query_wall_s",
		"9lives":                               "_9lives",
		"":                                     "_",
		"...":                                  "_",
	}
	for in, want := range cases {
		if got := PromName(in); got != want {
			t.Errorf("PromName(%q) = %q, want %q", in, got, want)
		}
		if got := PromName(in); !promNameRe.MatchString(got) {
			t.Errorf("PromName(%q) = %q not in Prometheus alphabet", in, got)
		}
	}
}

func TestWritePrometheusParses(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter(obs.MetricQueries).Add(42)
	reg.Counter(obs.FallbackMetric("DB-PyTorch", "DB-UDF")).Add(3)
	reg.Gauge("sqldb.tables").Set(7)
	h := reg.Histogram(obs.MetricQueryWallSeconds)
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) * 0.001)
	}

	var buf bytes.Buffer
	if err := WritePrometheus(&buf, reg); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	samples := parsePrometheus(t, buf.String())

	if s, ok := findSample(samples, "sqldb_queries", ""); !ok || s.value != 42 {
		t.Fatalf("sqldb_queries sample missing or wrong: %+v (ok=%v)", s, ok)
	}
	if s, ok := findSample(samples, "strategy_fallback_DB_PyTorch_DB_UDF", ""); !ok || s.value != 3 {
		t.Fatalf("fallback counter sample missing or wrong: %+v (ok=%v)", s, ok)
	}
	if s, ok := findSample(samples, "sqldb_tables", ""); !ok || s.value != 7 {
		t.Fatalf("gauge sample missing or wrong: %+v (ok=%v)", s, ok)
	}
	if s, ok := findSample(samples, "sqldb_query_wall_s_count", ""); !ok || s.value != 100 {
		t.Fatalf("summary _count missing or wrong: %+v (ok=%v)", s, ok)
	}
	wantSum := 0.0
	for i := 1; i <= 100; i++ {
		wantSum += float64(i) * 0.001
	}
	if s, ok := findSample(samples, "sqldb_query_wall_s_sum", ""); !ok || s.value < wantSum*0.999 || s.value > wantSum*1.001 {
		t.Fatalf("summary _sum missing or wrong: %+v (ok=%v, want ~%v)", s, ok, wantSum)
	}
	p50, ok50 := findSample(samples, "sqldb_query_wall_s", "0.5")
	p99, ok99 := findSample(samples, "sqldb_query_wall_s", "0.99")
	if !ok50 || !ok99 {
		t.Fatalf("quantile samples missing: p50=%v p99=%v", ok50, ok99)
	}
	if p50.value <= 0 || p99.value <= p50.value {
		t.Fatalf("quantile ordering wrong: p50=%v p99=%v", p50.value, p99.value)
	}

	// Deterministic output: a second render of the same registry is
	// byte-identical.
	var buf2 bytes.Buffer
	if err := WritePrometheus(&buf2, reg); err != nil {
		t.Fatalf("WritePrometheus (2nd): %v", err)
	}
	if buf.String() != buf2.String() {
		t.Fatal("WritePrometheus output is not deterministic")
	}
}

func TestWritePrometheusEmptyAndNil(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, nil); err != nil {
		t.Fatalf("nil registry: %v", err)
	}
	if buf.Len() != 0 {
		t.Fatalf("nil registry produced output: %q", buf.String())
	}
	if err := WritePrometheus(&buf, obs.NewRegistry()); err != nil {
		t.Fatalf("empty registry: %v", err)
	}
}

func TestMuxEndpoints(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter(obs.MetricQueries).Add(1)
	mux := NewMux(reg)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("/metrics content type %q", ct)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatalf("read /metrics: %v", err)
	}
	samples := parsePrometheus(t, buf.String())
	if _, ok := findSample(samples, "sqldb_queries", ""); !ok {
		t.Fatalf("scraped output missing sqldb_queries: %s", buf.String())
	}

	// The pprof index must be mounted and answer 200.
	resp2, err := srv.Client().Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatalf("GET /debug/pprof/: %v", err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != 200 {
		t.Fatalf("/debug/pprof/ status %d", resp2.StatusCode)
	}
	// And a concrete profile endpoint (goroutine dump, debug form).
	resp3, err := srv.Client().Get(srv.URL + "/debug/pprof/goroutine?debug=1")
	if err != nil {
		t.Fatalf("GET goroutine profile: %v", err)
	}
	defer resp3.Body.Close()
	if resp3.StatusCode != 200 {
		t.Fatalf("goroutine profile status %d", resp3.StatusCode)
	}
}
