package obs

import (
	"context"
	"testing"
	"time"
)

// BenchmarkTracePerQueryCost replays the per-statement tracing work of the
// engine's recordQuery/execPlan path, including the chained-timestamp
// pattern (operator boundaries lend their clock readings to the spans, so
// the only fresh read per statement is the wall-clock start the untraced
// path pays too). The number is the intrinsic per-query cost of always-on
// tracing with the default 1-in-64 tail retention.
func BenchmarkTracePerQueryCost(b *testing.B) {
	ts := NewTraceStore(TraceStoreConfig{Seed: 1})
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		start := time.Now() // paid by the untraced path as well
		tr := ts.StartTraceAt(ctx, "query", start)
		root := tr.Root()
		c1 := ctx
		c1 = ContextWithTrace(c1, tr)
		c1 = ContextWithSpan(c1, root)
		_ = c1
		root.SetAttr("sql", "SELECT ...")
		stamp := start
		for op := 0; op < 6; op++ {
			sp := root.StartChildAt("op", stamp)
			sp.SetAttr("rows", 1000)
			stamp = stamp.Add(time.Microsecond) // stands in for profAdd's read
			sp.FinishAt(stamp)
		}
		ts.Finish(tr)
	}
}

func BenchmarkClockRead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = time.Now()
	}
}
