// Package obs is the repo's stdlib-only observability layer: hierarchical
// trace spans with tree and Chrome trace_event exporters, plus a metrics
// registry (counters, gauges, latency histograms).
//
// Everything is nil-safe: a nil *Tracer produces nil *Spans, and every
// method on a nil receiver is a no-op that allocates nothing. Hot paths can
// therefore call Start/End unconditionally and pay only a nil check when
// tracing is disabled — the per-operator instrumentation in sqldb, the
// per-layer instrumentation in nn, and the per-step instrumentation in
// dl2sql all rely on this.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string
	Value any
}

// Span is one timed region of work. Spans nest: children created with
// Start(name) are rendered inside their parent by both exporters.
//
// The first annotation and the first child live in inline slots: the
// always-on tracing path creates many spans that carry exactly one attr
// ("sql", "rows") and at most one child, and the inline slots keep those
// spans to a single allocation (zero when arena-backed).
//
// Ownership contract: a span is mutated (SetAttr, Finish) only by the
// goroutine that created it. Child creation is the one genuinely
// concurrent mutation — morsel workers evaluating a traced UDF and the
// cross-query batch scheduler both open children under a parent they do
// not own — so linking is serialized (by the trace's arena lock, or by
// the parent's own mutex for arena-less spans) while everything else is
// lock-free. Tree walks (Children, Attrs, the exporters) are safe once
// the walked subtree is quiescent: after the trace finished, or after
// the statement that owned the spans returned.
type Span struct {
	Name  string
	Start time.Time
	End   time.Time

	mu       sync.Mutex // guards child linking on arena-less spans
	attr0    Attr
	nattr    int
	attrs    []Attr // overflow beyond attr0
	child0   *Span
	children []*Span // overflow beyond child0
	ended    bool
	arena    *spanArena
}

// spanChunkLen covers a typical statement's span tree (root + one span
// per plan operator) in a single chunk.
const spanChunkLen = 8

// spanChunkPool recycles first chunks between dropped traces: with the
// default 1-in-64 tail sampling almost every trace is discarded wholesale,
// and reusing the chunk keeps the per-query tracing cost off the GC.
var spanChunkPool = sync.Pool{New: func() any { return new([spanChunkLen]Span) }}

// spanArena chunk-allocates the spans of one trace so a typical query's
// span tree costs at most one bulk allocation instead of one per span.
// Spans are handed out by pointer into the chunk and never move. The
// first chunk comes from spanChunkPool and goes back via release();
// overflow chunks are ordinary garbage.
type spanArena struct {
	mu     sync.Mutex
	chunk  []Span
	used   int
	pooled *[spanChunkLen]Span
	pinned bool
	// total counts spans handed out; once it reaches limit (0 = unbounded)
	// alloc returns nil and counts the request in dropped. The trace store
	// sets limit to its MaxSpansPerTrace, so a query that would produce
	// thousands of spans (per-call, per-layer inference detail) stops paying
	// for them at creation time — the flatten step would discard them anyway.
	total   int
	limit   int
	dropped int
}

func (a *spanArena) alloc(name string, start time.Time) *Span {
	a.mu.Lock()
	s := a.allocLocked(name, start)
	a.mu.Unlock()
	return s
}

func (a *spanArena) allocLocked(name string, start time.Time) *Span {
	if a.limit > 0 && a.total >= a.limit {
		a.dropped++
		return nil
	}
	a.total++
	if a.used == len(a.chunk) {
		if a.chunk == nil {
			a.pooled = spanChunkPool.Get().(*[spanChunkLen]Span)
			a.chunk = a.pooled[:]
		} else {
			n := 2 * len(a.chunk)
			if n > 64 {
				n = 64
			}
			a.chunk = make([]Span, n)
		}
		a.used = 0
	}
	s := &a.chunk[a.used]
	a.used++
	s.Name, s.Start, s.arena = name, start, a
	return s
}

// newChild allocates a child span and links it into parent under one lock
// acquisition. Every span of a trace shares the trace's arena, so the
// arena lock serializes all child linking within the trace — including
// concurrent creations under the same parent from morsel workers.
func (a *spanArena) newChild(parent *Span, name string, start time.Time) *Span {
	a.mu.Lock()
	c := a.allocLocked(name, start)
	if c != nil {
		if parent.child0 == nil && parent.children == nil {
			parent.child0 = c
		} else {
			parent.children = append(parent.children, c)
		}
	}
	a.mu.Unlock()
	return c
}

// droppedSpans reports how many span allocations the limit suppressed.
func (a *spanArena) droppedSpans() int {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.dropped
}

// pin marks the arena's spans as escaped — adopted into a Tracer whose
// views outlive the trace — so release() must leave the chunk alone.
func (a *spanArena) pin() {
	if a == nil {
		return
	}
	a.mu.Lock()
	a.pinned = true
	a.mu.Unlock()
}

// release recycles the pooled first chunk after the owning trace is
// decided and its spans are unreachable (dropped, or kept and flattened
// into immutable SpanRows). Pinned arenas keep their memory.
func (a *spanArena) release() {
	if a == nil {
		return
	}
	a.mu.Lock()
	p := a.pooled
	// A chunk of spanChunkLen is necessarily the pooled one; once the
	// arena grew past it, the pooled chunk was fully used.
	used := spanChunkLen
	if len(a.chunk) == spanChunkLen {
		used = a.used
	}
	pinned := a.pinned
	a.pooled, a.chunk, a.used = nil, nil, 0
	a.mu.Unlock()
	if p == nil || pinned {
		return
	}
	for i := range p[:used] {
		p[i] = Span{}
	}
	spanChunkPool.Put(p)
}

// Tracer collects root spans. A nil Tracer is a valid disabled tracer.
type Tracer struct {
	mu    sync.Mutex
	roots []*Span
	epoch time.Time
}

// New creates an enabled tracer.
func New() *Tracer {
	return &Tracer{epoch: time.Now()}
}

// Enabled reports whether the tracer records anything.
func (t *Tracer) Enabled() bool { return t != nil }

// StartSpan opens a new root span. On a nil tracer it returns nil, which
// propagates no-ops through the whole child tree.
func (t *Tracer) StartSpan(name string) *Span {
	if t == nil {
		return nil
	}
	s := &Span{Name: name, Start: time.Now()}
	t.mu.Lock()
	t.roots = append(t.roots, s)
	t.mu.Unlock()
	return s
}

// Reset discards all recorded spans and restarts the epoch.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.roots = nil
	t.epoch = time.Now()
	t.mu.Unlock()
}

// Roots returns the recorded root spans.
func (t *Tracer) Roots() []*Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]*Span(nil), t.roots...)
}

// StartChild opens a child span. Safe (and free) on a nil receiver.
func (s *Span) StartChild(name string) *Span {
	return s.StartChildAt(name, time.Now())
}

// StartChildAt opens a child span with a caller-supplied start time. Hot
// paths that already read the clock for accounting (the executor's
// per-operator profile) pass that stamp through instead of paying a
// second read per span.
func (s *Span) StartChildAt(name string, start time.Time) *Span {
	if s == nil {
		return nil
	}
	if s.arena != nil {
		// Returns nil once the trace's span budget is exhausted; the whole
		// subtree then degrades to nil no-op spans.
		return s.arena.newChild(s, name, start)
	}
	c := &Span{Name: name, Start: start}
	s.mu.Lock()
	if s.child0 == nil && s.children == nil {
		s.child0 = c
	} else {
		s.children = append(s.children, c)
	}
	s.mu.Unlock()
	return c
}

// SetAttr annotates the span. Safe on a nil receiver. Owner-only (see the
// Span ownership contract) — it runs lock-free.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	if s.nattr == 0 {
		s.attr0 = Attr{Key: key, Value: value}
	} else {
		s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	}
	s.nattr++
}

// Finish closes the span; later calls are ignored. Safe on a nil receiver.
// Owner-only, lock-free.
func (s *Span) Finish() {
	if s == nil || s.ended {
		return
	}
	s.End = time.Now()
	s.ended = true
}

// FinishAt closes the span with a caller-supplied end time (the companion
// of StartChildAt for paths that already hold a fresh clock reading).
// Later calls are ignored. Safe on a nil receiver. Owner-only, lock-free.
func (s *Span) FinishAt(end time.Time) {
	if s == nil || s.ended {
		return
	}
	s.End = end
	s.ended = true
}

// Duration is End-Start for a finished span, time-since-Start otherwise.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	if s.ended {
		return s.End.Sub(s.Start)
	}
	return time.Since(s.Start)
}

// Children returns the span's direct children. Safe once the subtree is
// quiescent (see the Span ownership contract).
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	if s.child0 == nil {
		return append([]*Span(nil), s.children...)
	}
	out := make([]*Span, 0, 1+len(s.children))
	out = append(out, s.child0)
	return append(out, s.children...)
}

// Attrs returns the span's annotations. Safe once the span is quiescent.
func (s *Span) Attrs() []Attr {
	if s == nil {
		return nil
	}
	if s.nattr == 0 {
		return nil
	}
	out := make([]Attr, 0, s.nattr)
	out = append(out, s.attr0)
	return append(out, s.attrs...)
}

// Tree renders the recorded spans as an indented human-readable tree.
func (t *Tracer) Tree() string {
	if t == nil {
		return ""
	}
	var sb strings.Builder
	for _, r := range t.Roots() {
		writeSpanTree(&sb, r, 0)
	}
	return sb.String()
}

func writeSpanTree(sb *strings.Builder, s *Span, depth int) {
	sb.WriteString(strings.Repeat("  ", depth))
	sb.WriteString(s.Name)
	fmt.Fprintf(sb, " %s", s.Duration().Round(time.Microsecond))
	for _, a := range s.Attrs() {
		fmt.Fprintf(sb, " %s=%v", a.Key, a.Value)
	}
	sb.WriteByte('\n')
	for _, c := range s.Children() {
		writeSpanTree(sb, c, depth+1)
	}
}

// chromeEvent is one Chrome trace_event entry ("X" = complete event).
// Load the exported file at chrome://tracing or https://ui.perfetto.dev.
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`  // microseconds since epoch start
	Dur   float64        `json:"dur"` // microseconds
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Args  map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace exports all recorded spans as Chrome trace_event JSON.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, "[]")
		return err
	}
	t.mu.Lock()
	epoch := t.epoch
	t.mu.Unlock()
	var events []chromeEvent
	for _, r := range t.Roots() {
		collectChrome(&events, r, epoch)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(events)
}

func collectChrome(out *[]chromeEvent, s *Span, epoch time.Time) {
	ev := chromeEvent{
		Name:  s.Name,
		Phase: "X",
		TS:    float64(s.Start.Sub(epoch)) / float64(time.Microsecond),
		Dur:   float64(s.Duration()) / float64(time.Microsecond),
		PID:   1,
		TID:   1,
	}
	if attrs := s.Attrs(); len(attrs) > 0 {
		ev.Args = make(map[string]any, len(attrs))
		for _, a := range attrs {
			ev.Args[a.Key] = fmt.Sprint(a.Value)
		}
	}
	*out = append(*out, ev)
	for _, c := range s.Children() {
		collectChrome(out, c, epoch)
	}
}

// SpanCount returns the total number of spans (all depths), for tests.
func (t *Tracer) SpanCount() int {
	if t == nil {
		return 0
	}
	n := 0
	var walk func(*Span)
	walk = func(s *Span) {
		n++
		for _, c := range s.Children() {
			walk(c)
		}
	}
	for _, r := range t.Roots() {
		walk(r)
	}
	return n
}

// FindSpan returns the first span (depth-first) whose name matches, or nil.
func (t *Tracer) FindSpan(name string) *Span {
	if t == nil {
		return nil
	}
	var find func(*Span) *Span
	find = func(s *Span) *Span {
		if s.Name == name {
			return s
		}
		for _, c := range s.Children() {
			if got := find(c); got != nil {
				return got
			}
		}
		return nil
	}
	for _, r := range t.Roots() {
		if got := find(r); got != nil {
			return got
		}
	}
	return nil
}

// sortedKeys returns map keys in deterministic order (exporter helper).
func sortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
