// Package obs is the repo's stdlib-only observability layer: hierarchical
// trace spans with tree and Chrome trace_event exporters, plus a metrics
// registry (counters, gauges, latency histograms).
//
// Everything is nil-safe: a nil *Tracer produces nil *Spans, and every
// method on a nil receiver is a no-op that allocates nothing. Hot paths can
// therefore call Start/End unconditionally and pay only a nil check when
// tracing is disabled — the per-operator instrumentation in sqldb, the
// per-layer instrumentation in nn, and the per-step instrumentation in
// dl2sql all rely on this.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string
	Value any
}

// Span is one timed region of work. Spans nest: children created with
// Start(name) are rendered inside their parent by both exporters.
type Span struct {
	Name  string
	Start time.Time
	End   time.Time

	mu       sync.Mutex
	attrs    []Attr
	children []*Span
	ended    bool
}

// Tracer collects root spans. A nil Tracer is a valid disabled tracer.
type Tracer struct {
	mu    sync.Mutex
	roots []*Span
	epoch time.Time
}

// New creates an enabled tracer.
func New() *Tracer {
	return &Tracer{epoch: time.Now()}
}

// Enabled reports whether the tracer records anything.
func (t *Tracer) Enabled() bool { return t != nil }

// StartSpan opens a new root span. On a nil tracer it returns nil, which
// propagates no-ops through the whole child tree.
func (t *Tracer) StartSpan(name string) *Span {
	if t == nil {
		return nil
	}
	s := &Span{Name: name, Start: time.Now()}
	t.mu.Lock()
	t.roots = append(t.roots, s)
	t.mu.Unlock()
	return s
}

// Reset discards all recorded spans and restarts the epoch.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.roots = nil
	t.epoch = time.Now()
	t.mu.Unlock()
}

// Roots returns the recorded root spans.
func (t *Tracer) Roots() []*Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]*Span(nil), t.roots...)
}

// StartChild opens a child span. Safe (and free) on a nil receiver.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{Name: name, Start: time.Now()}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// SetAttr annotates the span. Safe on a nil receiver.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// Finish closes the span; later calls are ignored. Safe on a nil receiver.
func (s *Span) Finish() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.End = time.Now()
		s.ended = true
	}
	s.mu.Unlock()
}

// Duration is End-Start for a finished span, time-since-Start otherwise.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return s.End.Sub(s.Start)
	}
	return time.Since(s.Start)
}

// Children returns the span's direct children.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

// Attrs returns the span's annotations.
func (s *Span) Attrs() []Attr {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Attr(nil), s.attrs...)
}

// Tree renders the recorded spans as an indented human-readable tree.
func (t *Tracer) Tree() string {
	if t == nil {
		return ""
	}
	var sb strings.Builder
	for _, r := range t.Roots() {
		writeSpanTree(&sb, r, 0)
	}
	return sb.String()
}

func writeSpanTree(sb *strings.Builder, s *Span, depth int) {
	sb.WriteString(strings.Repeat("  ", depth))
	sb.WriteString(s.Name)
	fmt.Fprintf(sb, " %s", s.Duration().Round(time.Microsecond))
	for _, a := range s.Attrs() {
		fmt.Fprintf(sb, " %s=%v", a.Key, a.Value)
	}
	sb.WriteByte('\n')
	for _, c := range s.Children() {
		writeSpanTree(sb, c, depth+1)
	}
}

// chromeEvent is one Chrome trace_event entry ("X" = complete event).
// Load the exported file at chrome://tracing or https://ui.perfetto.dev.
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`  // microseconds since epoch start
	Dur   float64        `json:"dur"` // microseconds
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Args  map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace exports all recorded spans as Chrome trace_event JSON.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, "[]")
		return err
	}
	t.mu.Lock()
	epoch := t.epoch
	t.mu.Unlock()
	var events []chromeEvent
	for _, r := range t.Roots() {
		collectChrome(&events, r, epoch)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(events)
}

func collectChrome(out *[]chromeEvent, s *Span, epoch time.Time) {
	ev := chromeEvent{
		Name:  s.Name,
		Phase: "X",
		TS:    float64(s.Start.Sub(epoch)) / float64(time.Microsecond),
		Dur:   float64(s.Duration()) / float64(time.Microsecond),
		PID:   1,
		TID:   1,
	}
	if attrs := s.Attrs(); len(attrs) > 0 {
		ev.Args = make(map[string]any, len(attrs))
		for _, a := range attrs {
			ev.Args[a.Key] = fmt.Sprint(a.Value)
		}
	}
	*out = append(*out, ev)
	for _, c := range s.Children() {
		collectChrome(out, c, epoch)
	}
}

// SpanCount returns the total number of spans (all depths), for tests.
func (t *Tracer) SpanCount() int {
	if t == nil {
		return 0
	}
	n := 0
	var walk func(*Span)
	walk = func(s *Span) {
		n++
		for _, c := range s.Children() {
			walk(c)
		}
	}
	for _, r := range t.Roots() {
		walk(r)
	}
	return n
}

// FindSpan returns the first span (depth-first) whose name matches, or nil.
func (t *Tracer) FindSpan(name string) *Span {
	if t == nil {
		return nil
	}
	var find func(*Span) *Span
	find = func(s *Span) *Span {
		if s.Name == name {
			return s
		}
		for _, c := range s.Children() {
			if got := find(c); got != nil {
				return got
			}
		}
		return nil
	}
	for _, r := range t.Roots() {
		if got := find(r); got != nil {
			return got
		}
	}
	return nil
}

// sortedKeys returns map keys in deterministic order (exporter helper).
func sortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
