package obs

// Request-scoped tracing: trace identity and context plumbing.
//
// A Trace is one query's identity (a seedable hex ID) plus its root span
// and the tail-sampling flags that accumulate while it runs. The active
// trace and the active span both ride the context.Context that already
// threads through sqldb → strategies → schedule, so every layer can attach
// child spans and mark sampling-relevant events (errors, fallbacks,
// breaker rejections) without new plumbing. The outermost layer that sees
// no trace in its context creates one (server request handling, the
// strategy fallback entry point, or the engine's statement recorder) and
// is the only layer that finishes it and runs the tail-sampling decision.
//
// Everything here follows the package's nil-safety contract: a nil *Trace
// is a valid disabled trace whose methods no-op, so hot paths pay only a
// nil check when the trace store is not armed.

import (
	"context"
	"sync/atomic"
	"time"
)

// Trace is one query's tracing identity: the ID propagated across layers
// (and across the HTTP hop via the X-Trace-Id header), the root span of
// its tree, and the flags the tail sampler consults at the end.
type Trace struct {
	id    string
	root  *Span
	start time.Time

	// arena backs every span of this trace; embedding it makes the trace,
	// its arena, and (via the first chunk) its typical span tree one
	// allocation group instead of one per span.
	arena spanArena

	// flags accumulate sampling-relevant events (see traceFlag*).
	flags atomic.Uint32
	// state is the tail-sampling outcome: 0 undecided, 1 dropped, 2 kept.
	state atomic.Uint32
}

const (
	traceFlagError uint32 = 1 << iota
	traceFlagFallback
	traceFlagBreaker
)

const (
	traceUndecided uint32 = iota
	traceDropped
	traceKept
)

// ID returns the trace's hex identifier ("" on a nil trace).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Root returns the trace's root span.
func (t *Trace) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// Start returns the trace's start time.
func (t *Trace) Start() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.start
}

// MarkError flags the trace for tail retention: it ended in an error.
func (t *Trace) MarkError() { t.mark(traceFlagError) }

// MarkFallback flags the trace for tail retention: the graceful-degradation
// ladder engaged during it.
func (t *Trace) MarkFallback() { t.mark(traceFlagFallback) }

// MarkBreakerRejected flags the trace for tail retention: the serving
// circuit breaker failed a call fast during it.
func (t *Trace) MarkBreakerRejected() { t.mark(traceFlagBreaker) }

func (t *Trace) mark(flag uint32) {
	if t == nil {
		return
	}
	for {
		cur := t.flags.Load()
		if cur&flag != 0 || t.flags.CompareAndSwap(cur, cur|flag) {
			return
		}
	}
}

func (t *Trace) flag(flag uint32) bool {
	return t != nil && t.flags.Load()&flag != 0
}

// Kept reports whether the tail sampler retained the trace (false while
// undecided).
func (t *Trace) Kept() bool {
	return t != nil && t.state.Load() == traceKept
}

// RecordID is the trace ID to stamp on query-history records: the ID while
// the sampling decision is pending or once the trace is kept, "" once the
// trace is decided-dropped (an unsampled trace is not retrievable, so its
// ID would dangle).
func (t *Trace) RecordID() string {
	if t == nil || t.state.Load() == traceDropped {
		return ""
	}
	return t.id
}

// ---- context plumbing ----

// The active trace and the active span travel under ONE context key as a
// pair: the per-query hot path attaches both at once for a single
// context allocation, and every lookup resolves in a single chain walk.
// Setting just one of the two (a nested span push, a bare trace attach)
// snapshots the other from the current context so the nearest pair always
// carries both correctly.

type traceSpanKey struct{}
type traceIDHintKey struct{}

type traceSpanPair struct {
	t *Trace
	s *Span
}

// ContextWithTrace attaches the active trace to the context.
func ContextWithTrace(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	if ctx == nil {
		ctx = context.Background()
	}
	return context.WithValue(ctx, traceSpanKey{}, &traceSpanPair{t: t, s: SpanFromContext(ctx)})
}

// ContextWithTraceSpan attaches the active trace and span in one step —
// one context allocation instead of two for the per-query path.
func ContextWithTraceSpan(ctx context.Context, t *Trace, s *Span) context.Context {
	if t == nil && s == nil {
		return ctx
	}
	if ctx == nil {
		ctx = context.Background()
	}
	return context.WithValue(ctx, traceSpanKey{}, &traceSpanPair{t: t, s: s})
}

// TraceFromContext recovers the active trace, if any.
func TraceFromContext(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	if p, _ := ctx.Value(traceSpanKey{}).(*traceSpanPair); p != nil {
		return p.t
	}
	return nil
}

// TraceIDFromContext is the active trace's ID ("" when untraced) — the
// value the serving client sends as X-Trace-Id and the scheduler records
// per batch waiter.
func TraceIDFromContext(ctx context.Context) string {
	return TraceFromContext(ctx).ID()
}

// ContextWithSpan attaches the active span (the parent for child spans
// started further down the call chain).
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	if ctx == nil {
		ctx = context.Background()
	}
	return context.WithValue(ctx, traceSpanKey{}, &traceSpanPair{t: TraceFromContext(ctx), s: s})
}

// SpanFromContext recovers the active span, if any.
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	if p, _ := ctx.Value(traceSpanKey{}).(*traceSpanPair); p != nil {
		return p.s
	}
	return nil
}

// ContextWithTraceID plants an externally supplied trace ID (the server
// reads the request's X-Trace-Id header into this) so the trace created
// downstream adopts it instead of generating a fresh one. Invalid IDs are
// ignored at creation time.
func ContextWithTraceID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	if ctx == nil {
		ctx = context.Background()
	}
	return context.WithValue(ctx, traceIDHintKey{}, id)
}

// TraceIDHint recovers an externally supplied trace ID, if any.
func TraceIDHint(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	id, _ := ctx.Value(traceIDHintKey{}).(string)
	return id
}

// ValidTraceID reports whether an externally supplied trace ID is safe to
// adopt: 1–64 bytes of [0-9a-zA-Z_-]. Anything else (empty, oversized,
// exotic bytes from an untrusted header) is rejected and a fresh ID is
// generated instead.
func ValidTraceID(id string) bool {
	if id == "" || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= '0' && c <= '9', c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z',
			c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// StartSpan opens a span as a child of the context's active span when one
// exists, as a root span on the tracer otherwise. When both are live the
// span is created under the context parent and additionally adopted into
// the tracer's root list, so tracer-based views (sqlsh \trace, dl2sql
// -trace, FindSpan in tests) keep seeing it. Returns the context carrying
// the new span as the active parent; when neither sink is live it returns
// ctx unchanged and a nil span (the usual zero-cost disabled path).
func StartSpan(ctx context.Context, tracer *Tracer, name string) (context.Context, *Span) {
	parent := SpanFromContext(ctx)
	if parent == nil {
		s := tracer.StartSpan(name)
		if s == nil {
			return ctx, nil
		}
		return ContextWithSpan(ctx, s), s
	}
	s := parent.StartChild(name)
	tracer.Adopt(s)
	return ContextWithSpan(ctx, s), s
}

// Adopt appends an existing span to the tracer's root list so tracer-based
// exporters render it even though its parent lives in another tree (the
// request-scoped trace). Safe on nil receiver and nil span.
func (t *Tracer) Adopt(s *Span) {
	if t == nil || s == nil {
		return
	}
	// The tracer's views (sqlsh \trace) outlive the trace that owns the
	// span, so its arena chunk must never be recycled.
	s.arena.pin()
	t.mu.Lock()
	t.roots = append(t.roots, s)
	t.mu.Unlock()
}
