package obs

import (
	"strings"
	"testing"
)

func TestValidMetricName(t *testing.T) {
	valid := []string{
		MetricParallelOps,
		MetricParallelMorsels,
		MetricPlanInvalidations,
		MetricQueries,
		MetricQueryErrors,
		MetricSlowQueries,
		MetricQueryWallSeconds,
		MetricServingRetries,
		MetricServingBreakerRejected,
		MetricFallbackTotal,
		StrategyMetric("DB-PyTorch", "total_s"),
		StrategyMetric("DL2SQL-OP", "queries"),
		FallbackMetric("DB-PyTorch", "DB-UDF"),
		CacheMetric(CachePrefixStmt, CacheSuffixHits),
		CacheMetric(CachePrefixPlan, CacheSuffixMisses),
		CacheMetric(CachePrefixInfer, CacheSuffixEvictions),
	}
	for _, name := range valid {
		if !ValidMetricName(name) {
			t.Errorf("ValidMetricName(%q) = false, want true", name)
		}
	}
	invalid := []string{
		"", ".", "x.", ".x", "a..b", "9lives", "has space", "tab\tchar", "semi;colon", "_lead",
	}
	for _, name := range invalid {
		if ValidMetricName(name) {
			t.Errorf("ValidMetricName(%q) = true, want false", name)
		}
	}
}

func TestRegistryCheck(t *testing.T) {
	var nilReg *Registry
	if err := nilReg.Check(); err != nil {
		t.Fatalf("nil registry check: %v", err)
	}
	r := NewRegistry()
	if err := r.Check(); err != nil {
		t.Fatalf("empty registry check: %v", err)
	}
	r.Counter(MetricQueries).Add(1)
	r.Gauge("sqldb.tables").Set(3)
	r.Histogram(StrategyMetric("DB-UDF", "total_s")).Observe(0.1)
	if err := r.Check(); err != nil {
		t.Fatalf("well-formed registry check: %v", err)
	}

	// A cross-kind duplicate is a call-site typo: reject it.
	r.Gauge(MetricQueries).Set(1)
	err := r.Check()
	if err == nil || !strings.Contains(err.Error(), MetricQueries) {
		t.Fatalf("duplicate name not reported: %v", err)
	}

	// A malformed name is rejected too.
	r2 := NewRegistry()
	r2.Counter("bad name with spaces").Add(1)
	err = r2.Check()
	if err == nil || !strings.Contains(err.Error(), "malformed") {
		t.Fatalf("malformed name not reported: %v", err)
	}
}
