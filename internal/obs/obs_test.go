package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	sp := tr.StartSpan("root")
	if sp != nil {
		t.Fatal("nil tracer returned a live span")
	}
	// Every downstream call must be safe on the nil span.
	child := sp.StartChild("child")
	child.SetAttr("k", "v")
	child.Finish()
	sp.Finish()
	if tr.Tree() != "" {
		t.Fatal("nil tracer rendered a tree")
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(buf.String()) != "[]" {
		t.Fatalf("nil tracer chrome export = %q, want []", buf.String())
	}
}

func TestSpanNesting(t *testing.T) {
	tr := New()
	root := tr.StartSpan("query")
	root.SetAttr("sql", "SELECT 1")
	scan := root.StartChild("Scan")
	scan.SetAttr("rows", 10)
	scan.Finish()
	join := root.StartChild("Join")
	inner := join.StartChild("probe")
	inner.Finish()
	join.Finish()
	root.Finish()

	if got := tr.SpanCount(); got != 4 {
		t.Fatalf("span count = %d, want 4", got)
	}
	if tr.FindSpan("probe") == nil {
		t.Fatal("nested span not reachable")
	}
	kids := root.Children()
	if len(kids) != 2 || kids[0].Name != "Scan" || kids[1].Name != "Join" {
		t.Fatalf("unexpected children: %+v", kids)
	}
	if root.Duration() <= 0 {
		t.Fatal("finished span has non-positive duration")
	}
}

func TestTreeExporter(t *testing.T) {
	tr := New()
	root := tr.StartSpan("inference")
	l1 := root.StartChild("conv2d:conv1")
	l1.Finish()
	l2 := root.StartChild("relu:act1")
	l2.Finish()
	root.Finish()

	tree := tr.Tree()
	lines := strings.Split(strings.TrimRight(tree, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("tree has %d lines, want 3:\n%s", len(lines), tree)
	}
	if !strings.HasPrefix(lines[0], "inference") {
		t.Fatalf("root line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "  conv2d:conv1") || !strings.HasPrefix(lines[2], "  relu:act1") {
		t.Fatalf("children not indented under root:\n%s", tree)
	}
}

func TestChromeTraceExporter(t *testing.T) {
	tr := New()
	root := tr.StartSpan("strategy")
	root.SetAttr("name", "DL2SQL")
	child := root.StartChild("loading")
	time.Sleep(time.Millisecond)
	child.Finish()
	root.Finish()

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(events) != 2 {
		t.Fatalf("exported %d events, want 2", len(events))
	}
	for _, ev := range events {
		if ev["ph"] != "X" {
			t.Fatalf("event phase = %v, want X", ev["ph"])
		}
		if _, ok := ev["ts"].(float64); !ok {
			t.Fatalf("event missing numeric ts: %v", ev)
		}
		if _, ok := ev["dur"].(float64); !ok {
			t.Fatalf("event missing numeric dur: %v", ev)
		}
	}
	if events[0]["name"] != "strategy" {
		t.Fatalf("first event = %v, want root span", events[0]["name"])
	}
	args, ok := events[0]["args"].(map[string]any)
	if !ok || args["name"] != "DL2SQL" {
		t.Fatalf("root span args not exported: %v", events[0]["args"])
	}
	// Child duration must sit inside the parent's window.
	if events[1]["dur"].(float64) > events[0]["dur"].(float64) {
		t.Fatal("child event outlasts its parent")
	}
}

func TestConcurrentSpansAndMetrics(t *testing.T) {
	tr := New()
	reg := NewRegistry()
	root := tr.StartSpan("parallel")
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				sp := root.StartChild("work")
				sp.SetAttr("j", j)
				sp.Finish()
				reg.Counter("ops").Add(1)
				reg.Gauge("last").Set(float64(j))
				reg.Histogram("latency").Observe(float64(j))
			}
		}()
	}
	wg.Wait()
	root.Finish()
	if got := len(root.Children()); got != 16*50 {
		t.Fatalf("children = %d, want %d", got, 16*50)
	}
	if got := reg.Counter("ops").Value(); got != 16*50 {
		t.Fatalf("counter = %d, want %d", got, 16*50)
	}
	if got := reg.Histogram("latency").Summary().Count; got != 16*50 {
		t.Fatalf("histogram count = %d, want %d", got, 16*50)
	}
}

func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	r.Counter("c").Add(5)
	r.Gauge("g").Set(1)
	r.Histogram("h").Observe(2)
	snap := r.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Gauges) != 0 || len(snap.Histograms) != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", snap)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := &Histogram{}
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	s := h.Summary()
	if s.Count != 100 || s.Min != 1 || s.Max != 100 {
		t.Fatalf("summary basics wrong: %+v", s)
	}
	// Count/Min/Max/Mean are exact; quantiles are bucket-interpolated with
	// at most one bucket (~2.2%) of relative error around the exact order
	// statistics (50.5 / 95.05 / 99.01).
	if s.P50 < 48.5 || s.P50 > 52 {
		t.Fatalf("p50 = %v, want ~50.5 (±2.5%%)", s.P50)
	}
	if s.P95 < 92.5 || s.P95 > 97.5 {
		t.Fatalf("p95 = %v, want ~95 (±2.5%%)", s.P95)
	}
	if s.P99 < 96.5 || s.P99 > 100 {
		t.Fatalf("p99 = %v, want ~99 (±2.5%%)", s.P99)
	}
	if s.Mean < 50.4 || s.Mean > 50.6 {
		t.Fatalf("mean = %v, want 50.5", s.Mean)
	}
	if s.Sum != 5050 {
		t.Fatalf("sum = %v, want 5050", s.Sum)
	}
}

func TestRegistrySnapshotJSONAndString(t *testing.T) {
	r := NewRegistry()
	r.Counter("queries").Add(3)
	r.Gauge("tables").Set(7)
	r.Histogram("strategy.DL2SQL.inference").Observe(0.25)

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("snapshot JSON round-trip: %v", err)
	}
	if snap.Counters["queries"] != 3 || snap.Gauges["tables"] != 7 {
		t.Fatalf("round-tripped snapshot wrong: %+v", snap)
	}
	text := r.Snapshot().String()
	for _, want := range []string{"queries", "tables", "strategy.DL2SQL.inference", "p95"} {
		if !strings.Contains(text, want) {
			t.Fatalf("snapshot text missing %q:\n%s", want, text)
		}
	}
}
