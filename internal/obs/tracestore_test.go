package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// finish closes any open child spans and runs the store's tail decision.
func finishTrace(ts *TraceStore, t *Trace) bool { return ts.Finish(t) }

func TestTraceStoreSeededIDsAreDeterministic(t *testing.T) {
	a := NewTraceStore(TraceStoreConfig{Seed: 42})
	b := NewTraceStore(TraceStoreConfig{Seed: 42})
	for i := 0; i < 16; i++ {
		ia, ib := a.NextID(), b.NextID()
		if ia != ib {
			t.Fatalf("seeded ID %d diverged: %q vs %q", i, ia, ib)
		}
		if len(ia) != 16 || !ValidTraceID(ia) {
			t.Fatalf("bad generated ID %q", ia)
		}
	}
}

func TestTailSamplingReasonPrecedence(t *testing.T) {
	// SlowThreshold 1ns: every finished trace qualifies as slow, so the
	// flag criteria must still win the reason.
	ts := NewTraceStore(TraceStoreConfig{Seed: 1, SlowThreshold: time.Nanosecond})
	cases := []struct {
		name string
		mark func(tr *Trace)
		want string
	}{
		{"error wins", func(tr *Trace) { tr.MarkError(); tr.MarkFallback(); tr.MarkBreakerRejected() }, "error"},
		{"breaker beats fallback", func(tr *Trace) { tr.MarkFallback(); tr.MarkBreakerRejected() }, "breaker"},
		{"fallback beats slow", func(tr *Trace) { tr.MarkFallback() }, "fallback"},
		{"slow is the default tail criterion", func(tr *Trace) {}, "slow"},
	}
	for _, c := range cases {
		tr := ts.StartTrace(context.Background(), "q")
		c.mark(tr)
		time.Sleep(time.Microsecond)
		if !finishTrace(ts, tr) {
			t.Fatalf("%s: trace dropped", c.name)
		}
		st, ok := ts.Get(tr.ID())
		if !ok {
			t.Fatalf("%s: retained trace not gettable", c.name)
		}
		if st.Reason != c.want {
			t.Fatalf("%s: reason = %q, want %q", c.name, st.Reason, c.want)
		}
	}
}

func TestTailSamplingHashFractionIsDeterministic(t *testing.T) {
	// Two stores with the same seed generate the same IDs, so the 1-in-N
	// hash decision sequence must be identical — and neither all-keep nor
	// all-drop over a window much larger than N.
	mk := func() []bool {
		ts := NewTraceStore(TraceStoreConfig{Seed: 7, SlowThreshold: -1, SampleEvery: 4})
		out := make([]bool, 0, 64)
		for i := 0; i < 64; i++ {
			tr := ts.StartTrace(context.Background(), "q")
			out = append(out, finishTrace(ts, tr))
		}
		return out
	}
	a, b := mk(), mk()
	kept := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d diverged between identically seeded stores", i)
		}
		if a[i] {
			kept++
		}
	}
	if kept == 0 || kept == len(a) {
		t.Fatalf("1-in-4 sampling kept %d of %d traces", kept, len(a))
	}
}

func TestSampleEveryExtremes(t *testing.T) {
	keepAll := NewTraceStore(TraceStoreConfig{Seed: 3, SlowThreshold: -1, SampleEvery: 1})
	if !finishTrace(keepAll, keepAll.StartTrace(context.Background(), "q")) {
		t.Fatal("SampleEvery=1 must keep every clean trace")
	}
	keepNone := NewTraceStore(TraceStoreConfig{Seed: 3, SlowThreshold: -1, SampleEvery: -1})
	for i := 0; i < 32; i++ {
		if finishTrace(keepNone, keepNone.StartTrace(context.Background(), "q")) {
			t.Fatal("SampleEvery<0 must keep no clean trace")
		}
	}
	// Tail criteria still apply with sampling off.
	tr := keepNone.StartTrace(context.Background(), "q")
	tr.MarkError()
	if !finishTrace(keepNone, tr) {
		t.Fatal("errored trace must be retained even with SampleEvery<0")
	}
}

func TestRecordIDLifecycle(t *testing.T) {
	ts := NewTraceStore(TraceStoreConfig{Seed: 5, SlowThreshold: -1, SampleEvery: -1})

	tr := ts.StartTrace(context.Background(), "q")
	if tr.RecordID() != tr.ID() {
		t.Fatal("undecided trace must report its ID")
	}
	finishTrace(ts, tr) // dropped: clean + sampling off
	if got := tr.RecordID(); got != "" {
		t.Fatalf("dropped trace RecordID = %q, want empty", got)
	}

	kept := ts.StartTrace(context.Background(), "q")
	kept.MarkError()
	finishTrace(ts, kept)
	if kept.RecordID() != kept.ID() {
		t.Fatal("kept trace must report its ID")
	}

	var nilTrace *Trace
	if nilTrace.RecordID() != "" || nilTrace.ID() != "" {
		t.Fatal("nil trace must report empty IDs")
	}
	nilTrace.MarkError() // must not panic
}

func TestStartTraceAdoptsValidHint(t *testing.T) {
	ts := NewTraceStore(TraceStoreConfig{Seed: 9})
	ctx := ContextWithTraceID(context.Background(), "client-supplied-id_1")
	tr := ts.StartTrace(ctx, "request")
	if tr.ID() != "client-supplied-id_1" {
		t.Fatalf("trace ID = %q, want the hinted ID", tr.ID())
	}
	bad := ContextWithTraceID(context.Background(), "no spaces allowed\n")
	tr2 := ts.StartTrace(bad, "request")
	if tr2.ID() == "no spaces allowed\n" || len(tr2.ID()) != 16 {
		t.Fatalf("invalid hint must be replaced by a generated ID, got %q", tr2.ID())
	}
}

func TestRingEvictionAndLookup(t *testing.T) {
	ts := NewTraceStore(TraceStoreConfig{Seed: 2, MaxTraces: 4, SlowThreshold: -1, SampleEvery: 1})
	var ids []string
	for i := 0; i < 10; i++ {
		tr := ts.StartTrace(context.Background(), "q")
		if !finishTrace(ts, tr) {
			t.Fatal("SampleEvery=1 trace dropped")
		}
		ids = append(ids, tr.ID())
	}
	if ts.Len() != 4 {
		t.Fatalf("Len = %d, want ring bound 4", ts.Len())
	}
	if _, ok := ts.Get(ids[0]); ok {
		t.Fatal("oldest trace must be evicted from the index")
	}
	if _, ok := ts.Get(ids[len(ids)-1]); !ok {
		t.Fatal("newest trace must be gettable")
	}
	snap := ts.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("Snapshot len = %d, want 4", len(snap))
	}
}

func TestSpanFlatteningAndTruncation(t *testing.T) {
	ts := NewTraceStore(TraceStoreConfig{Seed: 11, MaxSpansPerTrace: 3, SlowThreshold: -1, SampleEvery: 1})
	tr := ts.StartTrace(context.Background(), "root")
	a := tr.Root().StartChild("a")
	a.SetAttr("k", "v")
	b := a.StartChild("b")
	b.Finish()
	a.Finish()
	for i := 0; i < 3; i++ {
		tr.Root().StartChild("extra").Finish()
	}
	if !finishTrace(ts, tr) {
		t.Fatal("trace dropped")
	}
	st, _ := ts.Get(tr.ID())
	if st.SpanTotal != 6 {
		t.Fatalf("SpanTotal = %d, want 6", st.SpanTotal)
	}
	if len(st.Spans) != 3 || !st.Truncated() {
		t.Fatalf("kept %d spans, truncated=%v; want 3, true", len(st.Spans), st.Truncated())
	}
	// Depth-first IDs: root=1 parent=0, a=2 parent=1, b=3 parent=2.
	if st.Spans[0].Name != "root" || st.Spans[0].SpanID != 1 || st.Spans[0].ParentID != 0 {
		t.Fatalf("root row = %+v", st.Spans[0])
	}
	if st.Spans[1].Name != "a" || st.Spans[1].ParentID != 1 || st.Spans[1].Attrs != "k=v" {
		t.Fatalf("child row = %+v", st.Spans[1])
	}
	if st.Spans[2].Name != "b" || st.Spans[2].ParentID != 2 {
		t.Fatalf("grandchild row = %+v", st.Spans[2])
	}
}

func TestStoredTraceChromeExport(t *testing.T) {
	ts := NewTraceStore(TraceStoreConfig{Seed: 13, SlowThreshold: -1, SampleEvery: 1})
	tr := ts.StartTrace(context.Background(), "root")
	tr.Root().StartChild("child").Finish()
	finishTrace(ts, tr)
	st, _ := ts.Get(tr.ID())
	var buf bytes.Buffer
	if err := st.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("export is not a JSON array: %v", err)
	}
	if len(events) != 2 {
		t.Fatalf("exported %d events, want 2", len(events))
	}
	args := events[0]["args"].(map[string]any)
	if args["trace_id"] != tr.ID() {
		t.Fatalf("event trace_id = %v, want %s", args["trace_id"], tr.ID())
	}
	if !strings.Contains(buf.String(), `"ph":"X"`) {
		t.Fatal("expected complete-event phase X")
	}
}

// TestTraceStoreConcurrentWritersAndReaders exercises the store's frozen-
// snapshot contract under -race: goroutines finishing traces (and mutating
// live span trees) while readers iterate Snapshot rows and Get results.
func TestTraceStoreConcurrentWritersAndReaders(t *testing.T) {
	ts := NewTraceStore(TraceStoreConfig{Seed: 17, MaxTraces: 8, SlowThreshold: -1, SampleEvery: 1, Metrics: NewRegistry()})
	var writers, readers sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			for i := 0; i < 200; i++ {
				tr := ts.StartTrace(context.Background(), "q")
				sp := tr.Root().StartChild("op")
				sp.SetAttr("i", i)
				sp.Finish()
				ts.Finish(tr)
			}
		}()
	}
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, st := range ts.Snapshot() {
					for _, row := range st.Spans {
						_ = row.Name
						_ = row.Attrs
					}
					if got, ok := ts.Get(st.ID); ok && got.ID != st.ID {
						t.Error("Get returned a trace with the wrong ID")
						return
					}
				}
			}
		}()
	}
	writers.Wait()
	close(stop)
	readers.Wait()
	if ts.Len() != 8 {
		t.Fatalf("Len = %d, want full ring of 8", ts.Len())
	}
}

func TestNilStoreAndNilTraceAreSafe(t *testing.T) {
	var ts *TraceStore
	if ts.NextID() != "" {
		t.Fatal("nil store NextID must be empty")
	}
	tr := ts.StartTrace(context.Background(), "q")
	if tr != nil {
		t.Fatal("nil store must return a nil trace")
	}
	if ts.Finish(tr) {
		t.Fatal("nil store Finish must report false")
	}
	if ts.Len() != 0 || ts.Snapshot() != nil {
		t.Fatal("nil store must be empty")
	}
	if _, ok := ts.Get("x"); ok {
		t.Fatal("nil store Get must miss")
	}
}
