package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Registry is a named collection of counters, gauges, and histograms. Like
// the tracer, a nil *Registry is a valid disabled registry: lookups return
// nil instruments whose methods are no-ops.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry creates an empty enabled registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter is a monotonically increasing integer.
type Counter struct{ v atomic.Int64 }

// Add increments the counter. Safe on a nil receiver.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value reads the counter.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable float value (e.g. table sizes, cache occupancy).
type Gauge struct{ bits atomic.Uint64 }

// Set stores the gauge value. Safe on a nil receiver.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value reads the gauge.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram accumulates float observations (typically latency seconds) and
// summarizes them as count/min/max/mean plus p50/p95/p99 quantiles.
type Histogram struct {
	mu      sync.Mutex
	samples []float64
}

// Observe records one sample. Safe on a nil receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.samples = append(h.samples, v)
	h.mu.Unlock()
}

// ObserveDuration records a duration in seconds. Safe on a nil receiver.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// HistSummary is a point-in-time histogram summary.
type HistSummary struct {
	Count int     `json:"count"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// Summary computes the histogram's summary.
func (h *Histogram) Summary() HistSummary {
	if h == nil {
		return HistSummary{}
	}
	h.mu.Lock()
	samples := append([]float64(nil), h.samples...)
	h.mu.Unlock()
	if len(samples) == 0 {
		return HistSummary{}
	}
	sort.Float64s(samples)
	sum := 0.0
	for _, v := range samples {
		sum += v
	}
	return HistSummary{
		Count: len(samples),
		Min:   samples[0],
		Max:   samples[len(samples)-1],
		Mean:  sum / float64(len(samples)),
		P50:   quantile(samples, 0.50),
		P95:   quantile(samples, 0.95),
		P99:   quantile(samples, 0.99),
	}
}

// quantile reads the q-quantile of sorted samples by linear interpolation.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Counter returns (creating on first use) the named counter. On a nil
// registry it returns a nil instrument whose methods no-op.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating on first use) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating on first use) the named histogram.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Snapshot is a point-in-time copy of every instrument, JSON-serializable.
type Snapshot struct {
	Counters   map[string]int64       `json:"counters,omitempty"`
	Gauges     map[string]float64     `json:"gauges,omitempty"`
	Histograms map[string]HistSummary `json:"histograms,omitempty"`
}

// Snapshot captures every instrument's current value.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistSummary{},
	}
	if r == nil {
		return snap
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()
	for k, v := range counters {
		snap.Counters[k] = v.Value()
	}
	for k, v := range gauges {
		snap.Gauges[k] = v.Value()
	}
	for k, v := range hists {
		snap.Histograms[k] = v.Summary()
	}
	return snap
}

// WriteJSON serializes a snapshot of the registry.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// String renders the snapshot as aligned text, one instrument per line,
// keys sorted for determinism.
func (s Snapshot) String() string {
	var sb strings.Builder
	for _, k := range sortedKeys(s.Counters) {
		fmt.Fprintf(&sb, "counter   %-42s %d\n", k, s.Counters[k])
	}
	for _, k := range sortedKeys(s.Gauges) {
		fmt.Fprintf(&sb, "gauge     %-42s %g\n", k, s.Gauges[k])
	}
	for _, k := range sortedKeys(s.Histograms) {
		h := s.Histograms[k]
		fmt.Fprintf(&sb, "histogram %-42s count=%d mean=%.6f p50=%.6f p95=%.6f p99=%.6f max=%.6f\n",
			k, h.Count, h.Mean, h.P50, h.P95, h.P99, h.Max)
	}
	return sb.String()
}
