package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Registry is a named collection of counters, gauges, and histograms. Like
// the tracer, a nil *Registry is a valid disabled registry: lookups return
// nil instruments whose methods are no-ops.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry creates an empty enabled registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter is a monotonically increasing integer.
type Counter struct{ v atomic.Int64 }

// Add increments the counter. Safe on a nil receiver.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value reads the counter.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable float value (e.g. table sizes, cache occupancy).
type Gauge struct{ bits atomic.Uint64 }

// Set stores the gauge value. Safe on a nil receiver.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value reads the gauge.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram bucket layout. Observations land in exponentially-growing
// buckets so a histogram's memory stays fixed no matter how many samples
// it absorbs — the property that makes always-on per-query accounting
// safe (the previous implementation kept every sample and grew without
// bound). 106 buckets per decade over 12 decades (1e-6 .. 1e6, covering
// sub-microsecond latencies through ~11-day outliers) gives a growth
// factor of 10^(1/106) ≈ 1.0220, i.e. ~2.2% worst-case relative
// quantile error. Values outside the range land in dedicated
// underflow/overflow buckets whose interpolation is clamped by the exact
// min/max.
const (
	histMinBound         = 1e-6
	histBucketsPerDecade = 106
	histDecades          = 12
	histBuckets          = histBucketsPerDecade * histDecades
)

// histLogGrowth is ln(growth): bucket i's upper bound is
// histMinBound * e^(i*histLogGrowth).
var histLogGrowth = math.Ln10 / histBucketsPerDecade

// histBucketIndex maps a value to its bucket: 0 for v <= histMinBound
// (and all non-positive values), histBuckets+1 for overflow.
func histBucketIndex(v float64) int {
	if v <= histMinBound {
		return 0
	}
	i := int(math.Ceil(math.Log(v/histMinBound) / histLogGrowth))
	if i < 1 {
		return 1
	}
	if i > histBuckets {
		return histBuckets + 1
	}
	return i
}

// histUpperBound returns bucket i's upper bound (i in 0..histBuckets).
func histUpperBound(i int) float64 {
	return histMinBound * math.Exp(float64(i)*histLogGrowth)
}

// Histogram accumulates float observations (typically latency seconds) and
// summarizes them as count/min/max/mean plus p50/p95/p99 quantiles.
// Memory is O(1): a fixed exponential bucket array (allocated lazily on
// the first observation) plus exact count/sum/min/max.
type Histogram struct {
	mu      sync.Mutex
	count   int64
	sum     float64
	min     float64
	max     float64
	buckets []int64 // len histBuckets+2: [underflow, b1..bN, overflow]

	// Exemplar: the largest observation so far that carried a trace ID,
	// linking the histogram's tail back to a retrievable trace.
	exVal  float64
	exID   string
	exTime time.Time
}

// Observe records one sample. Safe on a nil receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	if h.buckets == nil {
		h.buckets = make([]int64, histBuckets+2)
	}
	h.buckets[histBucketIndex(v)]++
	h.mu.Unlock()
}

// ObserveDuration records a duration in seconds. Safe on a nil receiver.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// ObserveExemplar records a sample carrying a trace ID. The histogram
// retains the max-valued such observation as its exemplar, so the exported
// series points at the trace of its worst outlier. An empty traceID is a
// plain Observe. Safe on a nil receiver.
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	if h == nil {
		return
	}
	if traceID == "" {
		h.Observe(v)
		return
	}
	h.mu.Lock()
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	if h.buckets == nil {
		h.buckets = make([]int64, histBuckets+2)
	}
	h.buckets[histBucketIndex(v)]++
	if h.exID == "" || v >= h.exVal {
		h.exVal = v
		h.exID = traceID
		h.exTime = time.Now()
	}
	h.mu.Unlock()
}

// HistSummary is a point-in-time histogram summary. Quantiles are
// estimated by linear interpolation within the exponential bucket holding
// the target rank (worst-case relative error one bucket width, ~2.2%);
// Count, Sum, Min, Max, and Mean are exact.
type HistSummary struct {
	Count int     `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`

	// Exemplar fields: the max-valued observation that carried a trace ID
	// (empty/zero when no observation did).
	ExemplarValue   float64   `json:"exemplar_value,omitempty"`
	ExemplarTraceID string    `json:"exemplar_trace_id,omitempty"`
	ExemplarTS      time.Time `json:"exemplar_ts,omitempty"`
}

// Summary computes the histogram's summary.
func (h *Histogram) Summary() HistSummary {
	if h == nil {
		return HistSummary{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return HistSummary{}
	}
	return HistSummary{
		Count: int(h.count),
		Sum:   h.sum,
		Min:   h.min,
		Max:   h.max,
		Mean:  h.sum / float64(h.count),
		P50:   h.quantileLocked(0.50),
		P95:   h.quantileLocked(0.95),
		P99:   h.quantileLocked(0.99),

		ExemplarValue:   h.exVal,
		ExemplarTraceID: h.exID,
		ExemplarTS:      h.exTime,
	}
}

// quantileLocked estimates the q-quantile from the bucket counts by
// interpolating WITHIN the bucket containing the target rank — the
// upper-bound snapping a naive bucketed quantile reports would bias every
// estimate high by up to a full bucket. The target rank follows the
// order-statistic interpolation convention (rank 1..count, fractional),
// and the interpolation window is clamped to the exact [min, max] so the
// under/overflow buckets and single-value histograms stay exact.
func (h *Histogram) quantileLocked(q float64) float64 {
	t := q*float64(h.count-1) + 1
	var cum int64
	for b, cnt := range h.buckets {
		if cnt == 0 {
			continue
		}
		before := cum
		cum += cnt
		if t > float64(cum) {
			continue
		}
		lo := h.min
		if b > 0 {
			if lb := histUpperBound(b - 1); lb > lo {
				lo = lb
			}
		}
		hi := h.max
		if b <= histBuckets {
			if ub := histUpperBound(b); ub < hi {
				hi = ub
			}
		}
		if hi < lo {
			hi = lo
		}
		frac := (t - float64(before)) / float64(cnt)
		est := lo + frac*(hi-lo)
		if est < h.min {
			est = h.min
		}
		if est > h.max {
			est = h.max
		}
		return est
	}
	return h.max
}

// Counter returns (creating on first use) the named counter. On a nil
// registry it returns a nil instrument whose methods no-op.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating on first use) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating on first use) the named histogram.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Snapshot is a point-in-time copy of every instrument, JSON-serializable.
type Snapshot struct {
	Counters   map[string]int64       `json:"counters,omitempty"`
	Gauges     map[string]float64     `json:"gauges,omitempty"`
	Histograms map[string]HistSummary `json:"histograms,omitempty"`
}

// Snapshot captures every instrument's current value.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistSummary{},
	}
	if r == nil {
		return snap
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()
	for k, v := range counters {
		snap.Counters[k] = v.Value()
	}
	for k, v := range gauges {
		snap.Gauges[k] = v.Value()
	}
	for k, v := range hists {
		snap.Histograms[k] = v.Summary()
	}
	return snap
}

// WriteJSON serializes a snapshot of the registry.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// String renders the snapshot as aligned text, one instrument per line,
// keys sorted for determinism.
func (s Snapshot) String() string {
	var sb strings.Builder
	for _, k := range sortedKeys(s.Counters) {
		fmt.Fprintf(&sb, "counter   %-42s %d\n", k, s.Counters[k])
	}
	for _, k := range sortedKeys(s.Gauges) {
		fmt.Fprintf(&sb, "gauge     %-42s %g\n", k, s.Gauges[k])
	}
	for _, k := range sortedKeys(s.Histograms) {
		h := s.Histograms[k]
		fmt.Fprintf(&sb, "histogram %-42s count=%d mean=%.6f p50=%.6f p95=%.6f p99=%.6f max=%.6f\n",
			k, h.Count, h.Mean, h.P50, h.P95, h.P99, h.Max)
	}
	return sb.String()
}
