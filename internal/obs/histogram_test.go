package obs

import (
	"math"
	"testing"
)

// exactQuantile computes the order-statistic interpolated quantile the
// bucketed estimate approximates.
func exactQuantile(sorted []float64, q float64) float64 {
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// TestHistogramQuantileInterpolation pins p50/p95/p99 on known
// distributions against the exact order statistics: every estimate must
// land within one bucket (2.5% relative, plus a small absolute floor for
// near-zero values) of the exact value — the contract that within-bucket
// interpolation provides and upper-bound snapping (which biases every
// quantile a full bucket high) does not.
func TestHistogramQuantileInterpolation(t *testing.T) {
	distributions := map[string][]float64{
		"uniform-latency": func() []float64 {
			out := make([]float64, 1000)
			for i := range out {
				out[i] = 0.001 + float64(i)*0.0005 // 1ms .. 500ms
			}
			return out
		}(),
		"bimodal": func() []float64 {
			var out []float64
			for i := 0; i < 900; i++ {
				out = append(out, 0.002+float64(i%10)*0.0001) // fast mode ~2ms
			}
			for i := 0; i < 100; i++ {
				out = append(out, 1.5+float64(i%10)*0.01) // slow mode ~1.5s
			}
			return out
		}(),
		"exponential-ish": func() []float64 {
			out := make([]float64, 500)
			for i := range out {
				out[i] = 0.0001 * math.Pow(1.02, float64(i))
			}
			return out
		}(),
	}
	for name, vals := range distributions {
		h := &Histogram{}
		sorted := make([]float64, len(vals))
		copy(sorted, vals)
		for _, v := range vals {
			h.Observe(v)
		}
		// Observe in arbitrary order; sort the reference copy.
		for i := 1; i < len(sorted); i++ {
			for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
				sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
			}
		}
		s := h.Summary()
		if s.Count != len(vals) || s.Min != sorted[0] || s.Max != sorted[len(sorted)-1] {
			t.Fatalf("%s: basics wrong: %+v", name, s)
		}
		for _, c := range []struct {
			q   float64
			got float64
		}{{0.50, s.P50}, {0.95, s.P95}, {0.99, s.P99}} {
			want := exactQuantile(sorted, c.q)
			tol := 0.025*math.Abs(want) + 1e-6
			if math.Abs(c.got-want) > tol {
				t.Errorf("%s: q%.0f = %v, want %v ± %v", name, c.q*100, c.got, want, tol)
			}
		}
	}
}

// TestHistogramInterpolatesWithinBucket asserts the estimate is NOT the
// containing bucket's upper bound when the target rank sits mid-bucket —
// the regression this implementation fixes.
func TestHistogramInterpolatesWithinBucket(t *testing.T) {
	h := &Histogram{}
	// 100 identical-bucket observations: all land in the bucket containing
	// 0.1; the p50 of a uniform spread within it must interpolate below
	// the bucket's upper bound.
	for i := 0; i < 100; i++ {
		h.Observe(0.100 + float64(i)*0.00001) // 0.1000 .. 0.10099, one bucket wide-ish
	}
	s := h.Summary()
	ub := histUpperBound(histBucketIndex(s.Max))
	if s.P50 >= ub {
		t.Fatalf("p50 = %v snapped to bucket upper bound %v", s.P50, ub)
	}
	if s.P50 < s.Min || s.P50 > s.Max {
		t.Fatalf("p50 = %v outside [min=%v, max=%v]", s.P50, s.Min, s.Max)
	}
	if s.P50 >= s.P95 {
		// Within one bucket the interpolation still orders the quantiles.
		t.Fatalf("p50 %v >= p95 %v", s.P50, s.P95)
	}
}

// TestHistogramBoundedMemory pins the O(1) memory contract: a million
// observations allocate exactly one fixed bucket array.
func TestHistogramBoundedMemory(t *testing.T) {
	h := &Histogram{}
	for i := 0; i < 1_000_000; i++ {
		h.Observe(float64(i%1000) * 0.001)
	}
	if got := len(h.buckets); got != histBuckets+2 {
		t.Fatalf("bucket array len = %d, want %d", got, histBuckets+2)
	}
	if s := h.Summary(); s.Count != 1_000_000 {
		t.Fatalf("count = %d", s.Count)
	}
}

// TestHistogramEdgeCases covers out-of-range and degenerate inputs.
func TestHistogramEdgeCases(t *testing.T) {
	var nilH *Histogram
	nilH.Observe(1) // must not panic
	if s := nilH.Summary(); s.Count != 0 {
		t.Fatalf("nil histogram summary: %+v", s)
	}

	single := &Histogram{}
	single.Observe(42)
	if s := single.Summary(); s.P50 != 42 || s.P95 != 42 || s.P99 != 42 || s.Min != 42 || s.Max != 42 {
		t.Fatalf("single-value summary: %+v", s)
	}

	outOfRange := &Histogram{}
	outOfRange.Observe(-5)  // underflow bucket
	outOfRange.Observe(0)   // underflow bucket
	outOfRange.Observe(1e9) // overflow bucket
	outOfRange.Observe(2e9) // overflow bucket
	s := outOfRange.Summary()
	if s.Min != -5 || s.Max != 2e9 || s.Count != 4 {
		t.Fatalf("out-of-range summary basics: %+v", s)
	}
	if s.P50 < s.Min || s.P50 > s.Max || s.P99 < s.Min || s.P99 > s.Max {
		t.Fatalf("out-of-range quantiles escape [min, max]: %+v", s)
	}
}
