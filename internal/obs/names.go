package obs

// Canonical metric names. Call sites used to re-type these as string
// literals ("sqldb.parallel.ops" in one package, "strategy.fallback.*" in
// another); a single typo silently forked a series. Every engine-emitted
// name now lives here, either as a constant or as a helper that derives
// dynamic names (per-strategy, per-fallback-hop) from one format string,
// and Registry.Check validates whatever actually got registered.

import (
	"fmt"
	"sort"
	"strings"
)

// Executor metrics (internal/sqldb).
const (
	// MetricParallelOps counts operator executions that genuinely fanned
	// out across >1 workers.
	MetricParallelOps = "sqldb.parallel.ops"
	// MetricParallelMorsels counts morsels dispatched by parallel operators.
	MetricParallelMorsels = "sqldb.parallel.morsels"
	// MetricPlanInvalidations counts cached plans discarded because a
	// dependency's write version moved.
	MetricPlanInvalidations = "sqldb.cache.plan.invalidations"
	// MetricQueries counts statements recorded into the query history.
	MetricQueries = "sqldb.queries"
	// MetricQueryErrors counts recorded statements that failed.
	MetricQueryErrors = "sqldb.query.errors"
	// MetricSlowQueries counts recorded statements over the slow-query
	// threshold.
	MetricSlowQueries = "sqldb.query.slow"
	// MetricQueryWallSeconds is the wall-clock latency histogram of
	// recorded statements.
	MetricQueryWallSeconds = "sqldb.query.wall_s"
)

// Serving-pipe metrics (internal/strategies).
const (
	// MetricServingRetries counts serving-batch retry attempts.
	MetricServingRetries = "serving.retries"
	// MetricServingBreakerRejected counts calls the circuit breaker
	// failed fast.
	MetricServingBreakerRejected = "serving.breaker_rejected"
	// MetricFallbackTotal counts every fallback-ladder hop.
	MetricFallbackTotal = "strategy.fallback.total"
)

// Inference-scheduler metrics (internal/schedule).
const (
	// MetricSchedSubmitted counts inference requests submitted to the
	// scheduler (before cache/dedup short-circuits).
	MetricSchedSubmitted = "sched.submitted"
	// MetricSchedCacheHits counts submissions answered from the shared
	// prediction cache without queueing.
	MetricSchedCacheHits = "sched.cache_hits"
	// MetricSchedDedupHits counts submissions that single-flighted onto an
	// identical (artifact, blob) request already in flight.
	MetricSchedDedupHits = "sched.dedup_hits"
	// MetricSchedBatches counts coalesced batches executed.
	MetricSchedBatches = "sched.batches"
	// MetricSchedBatchSize is the histogram of coalesced batch sizes.
	MetricSchedBatchSize = "sched.batch_size"
	// MetricSchedBatchSeconds is the batch execution wall-time histogram.
	MetricSchedBatchSeconds = "sched.batch_wall_s"
	// MetricSchedQueueDepth gauges requests waiting in batch queues.
	MetricSchedQueueDepth = "sched.queue_depth"
	// MetricSchedRejected counts submissions refused because the scheduler
	// is draining.
	MetricSchedRejected = "sched.rejected"
)

// Serving front-end metrics (internal/server).
const (
	// MetricServerRequests counts requests accepted by the HTTP front end
	// (after admission, before execution).
	MetricServerRequests = "server.requests"
	// MetricServerErrors counts requests that finished with an error.
	MetricServerErrors = "server.request.errors"
	// MetricServerAdmitted counts queries granted an execution slot.
	MetricServerAdmitted = "server.admission.admitted"
	// MetricServerQueued counts queries that had to wait in the admission
	// queue before their slot was granted.
	MetricServerQueued = "server.admission.queued"
	// MetricServerRejected counts queries refused with
	// qerr.ErrAdmissionRejected (queue full or draining).
	MetricServerRejected = "server.admission.rejected"
	// MetricServerSessions gauges the number of live sessions.
	MetricServerSessions = "server.sessions"
	// MetricServerInflight gauges queries currently holding an execution
	// slot.
	MetricServerInflight = "server.inflight"
	// MetricServerRequestSeconds is the end-to-end request latency
	// histogram (admission wait included).
	MetricServerRequestSeconds = "server.request.wall_s"
	// MetricServerQueueSeconds is the admission-queue wait histogram for
	// queries that had to queue.
	MetricServerQueueSeconds = "server.admission.wait_s"
)

// Tracing metrics (internal/obs trace store + exemplars).
const (
	// MetricTracesStarted counts traces opened (every traced query, kept
	// or not).
	MetricTracesStarted = "trace.started"
	// MetricTracesRetained counts traces the tail sampler kept.
	MetricTracesRetained = "trace.retained"
	// MetricTracesDropped counts traces the tail sampler discarded.
	MetricTracesDropped = "trace.dropped"
	// MetricTraceSpans is the histogram of span counts per retained trace
	// (pre-truncation totals).
	MetricTraceSpans = "trace.spans"
	// MetricTraceStoreTraces gauges traces currently held in the store.
	MetricTraceStoreTraces = "trace.store.traces"
	// MetricTraceExemplars counts histogram observations that carried a
	// trace-ID exemplar.
	MetricTraceExemplars = "trace.exemplars"
)

// TraceRetainedMetric derives the per-reason retention counter:
// TraceRetainedMetric("slow") = "trace.retained.slow". Reasons: "slow",
// "error", "fallback", "breaker", "sampled".
func TraceRetainedMetric(reason string) string {
	return "trace.retained." + reason
}

// KnownTraceMetric reports whether a "trace."-prefixed name is one the
// trace subsystem legitimately emits. Registry.Check fails on any other
// trace.* registration so exemplar/trace series can't fork silently.
func KnownTraceMetric(name string) bool {
	switch name {
	case MetricTracesStarted, MetricTracesRetained, MetricTracesDropped,
		MetricTraceSpans, MetricTraceStoreTraces, MetricTraceExemplars:
		return true
	}
	for _, reason := range []string{"slow", "error", "fallback", "breaker", "sampled"} {
		if name == TraceRetainedMetric(reason) {
			return true
		}
	}
	return false
}

// Cache-instrument prefixes: cache.LRU.Instrument appends ".hits",
// ".misses", ".evictions".
const (
	CachePrefixStmt      = "sqldb.cache.stmt"
	CachePrefixPlan      = "sqldb.cache.plan"
	CachePrefixInfer     = "strategies.infercache"
	CacheSuffixHits      = "hits"
	CacheSuffixMisses    = "misses"
	CacheSuffixEvictions = "evictions"
)

// StrategyMetric derives the per-strategy series name for one phase:
// StrategyMetric("DB-UDF", "queries") = "strategy.DB-UDF.queries".
// Conventional phases: "queries" (counter), "loading_s", "inference_s",
// "relational_s", "total_s" (histograms).
func StrategyMetric(strategy, phase string) string {
	return "strategy." + strategy + "." + phase
}

// FallbackMetric derives the per-hop fallback counter name:
// FallbackMetric("DB-PyTorch", "DB-UDF") = "strategy.fallback.DB-PyTorch->DB-UDF".
func FallbackMetric(from, to string) string {
	return "strategy.fallback." + from + "->" + to
}

// CacheMetric derives a cache-instrument counter name from its prefix:
// CacheMetric(CachePrefixPlan, CacheSuffixHits) = "sqldb.cache.plan.hits".
func CacheMetric(prefix, counter string) string {
	return prefix + "." + counter
}

// ValidMetricName reports whether a name satisfies the naming contract:
// non-empty, starts with a letter, built from letters, digits, and the
// separators '.', '_', '-', '>' (the fallback hop arrow), with no empty
// dot-separated segment. Names that fail are still registered (instruments
// never error at the call site) but Registry.Check reports them.
func ValidMetricName(name string) bool {
	if name == "" {
		return false
	}
	c0 := name[0]
	if !(c0 >= 'a' && c0 <= 'z' || c0 >= 'A' && c0 <= 'Z') {
		return false
	}
	prevDot := false
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '_', c == '-', c == '>':
			prevDot = false
		case c == '.':
			if prevDot || i == len(name)-1 {
				return false
			}
			prevDot = true
		default:
			return false
		}
	}
	return true
}

// Check is the registry's self-check: it reports every malformed
// registered name and every name registered under more than one
// instrument kind (a counter and a gauge sharing a name is almost always
// a call-site typo — the two series would silently shadow each other in
// rendered snapshots). A nil registry and an empty registry both pass.
func (r *Registry) Check() error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	kinds := map[string][]string{}
	for name := range r.counters {
		kinds[name] = append(kinds[name], "counter")
	}
	for name := range r.gauges {
		kinds[name] = append(kinds[name], "gauge")
	}
	for name := range r.hists {
		kinds[name] = append(kinds[name], "histogram")
	}
	r.mu.Unlock()
	var problems []string
	for name, ks := range kinds {
		if !ValidMetricName(name) {
			problems = append(problems, fmt.Sprintf("malformed metric name %q", name))
		}
		if strings.HasPrefix(name, "trace.") && !KnownTraceMetric(name) {
			problems = append(problems, fmt.Sprintf("unregistered trace metric %q (add it to names.go)", name))
		}
		if len(ks) > 1 {
			sort.Strings(ks)
			problems = append(problems, fmt.Sprintf("metric %q registered as %s", name, strings.Join(ks, " and ")))
		}
	}
	if len(problems) == 0 {
		return nil
	}
	sort.Strings(problems)
	return fmt.Errorf("obs: registry check failed:\n  %s", strings.Join(problems, "\n  "))
}
