// Package iotdata synthesizes the paper's evaluation dataset: the five
// tables of Alibaba's textile-printing IoT platform (video, fabric, client,
// order, device) at the paper's 100:10:1:10:1 size ratio, with video
// keyframes stored as blobs. The original dataset (100 M tuples, >100 GB of
// video resized to 224×224×3) is proprietary; the generator reproduces its
// statistical structure — table ratios, join keys, predicate columns with
// controllable selectivity, and keyframe tensors of configurable resolution
// — which is what every experiment in Section V actually depends on.
package iotdata

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/sqldb"
	"repro/internal/tensor"
)

// Config controls dataset generation.
type Config struct {
	// Scale is the base unit: client and device get Scale rows, fabric and
	// order 10×, video 100× (the paper's 100:10:1:10:1 ratio).
	Scale int
	// KeyframeSide is the square resolution of video keyframes (the paper
	// resizes to 224; benches default lower to keep runtimes sane).
	KeyframeSide int
	// Seed makes generation deterministic.
	Seed int64
	// PatternCount is the number of distinct fabric patterns.
	PatternCount int
}

// DefaultConfig is a laptop-scale dataset preserving the paper's ratios.
func DefaultConfig() Config {
	return Config{Scale: 20, KeyframeSide: 16, Seed: 42, PatternCount: 6}
}

// Sizes reports the row count of each table under the config.
func (c Config) Sizes() map[string]int {
	return map[string]int{
		"video":  100 * c.Scale,
		"fabric": 10 * c.Scale,
		"client": c.Scale,
		"order":  10 * c.Scale,
		"device": c.Scale,
	}
}

// Dataset wraps a populated database.
type Dataset struct {
	DB     *sqldb.DB
	Config Config
}

// KeyframeBytes serializes a CHW float64 tensor into the blob layout used
// by the video table: little-endian float64s prefixed by three int32 dims.
func KeyframeBytes(t *tensor.Tensor) []byte {
	s := t.Shape()
	buf := make([]byte, 12+8*t.Len())
	binary.LittleEndian.PutUint32(buf[0:], uint32(s[0]))
	binary.LittleEndian.PutUint32(buf[4:], uint32(s[1]))
	binary.LittleEndian.PutUint32(buf[8:], uint32(s[2]))
	for i, v := range t.Data() {
		binary.LittleEndian.PutUint64(buf[12+8*i:], math.Float64bits(v))
	}
	return buf
}

// KeyframeTensor decodes a keyframe blob back into a tensor.
func KeyframeTensor(b []byte) (*tensor.Tensor, error) {
	if len(b) < 12 {
		return nil, fmt.Errorf("iotdata: keyframe blob too short (%d bytes)", len(b))
	}
	c := int(binary.LittleEndian.Uint32(b[0:]))
	h := int(binary.LittleEndian.Uint32(b[4:]))
	w := int(binary.LittleEndian.Uint32(b[8:]))
	n := c * h * w
	if len(b) != 12+8*n {
		return nil, fmt.Errorf("iotdata: keyframe blob length %d does not match dims %dx%dx%d", len(b), c, h, w)
	}
	out := tensor.New(c, h, w)
	for i := 0; i < n; i++ {
		out.Data()[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[12+8*i:]))
	}
	return out, nil
}

// Generate builds and populates the five tables.
func Generate(cfg Config) (*Dataset, error) {
	db := sqldb.New()
	db.Profile = sqldb.NewProfile()
	ds := &Dataset{DB: db, Config: cfg}
	rng := newRand(cfg.Seed)
	sizes := cfg.Sizes()

	video, err := db.CreateTable("video", sqldb.Schema{
		{Name: "videoID", Type: sqldb.TInt},
		{Name: "transID", Type: sqldb.TInt},
		{Name: "date", Type: sqldb.TString},
		{Name: "keyframe", Type: sqldb.TBlob},
	})
	if err != nil {
		return nil, err
	}
	fabric, err := db.CreateTable("fabric", sqldb.Schema{
		{Name: "transID", Type: sqldb.TInt},
		{Name: "patternID", Type: sqldb.TInt},
		{Name: "meter", Type: sqldb.TFloat},
		{Name: "humidity", Type: sqldb.TFloat},
		{Name: "temperature", Type: sqldb.TFloat},
		{Name: "printdate", Type: sqldb.TString},
	})
	if err != nil {
		return nil, err
	}
	client, err := db.CreateTable("client", sqldb.Schema{
		{Name: "clientID", Type: sqldb.TInt},
		{Name: "name", Type: sqldb.TString},
		{Name: "region", Type: sqldb.TString},
	})
	if err != nil {
		return nil, err
	}
	order, err := db.CreateTable("order_tbl", sqldb.Schema{
		{Name: "orderID", Type: sqldb.TInt},
		{Name: "clientID", Type: sqldb.TInt},
		{Name: "transID", Type: sqldb.TInt},
		{Name: "amount", Type: sqldb.TFloat},
	})
	if err != nil {
		return nil, err
	}
	device, err := db.CreateTable("device", sqldb.Schema{
		{Name: "deviceID", Type: sqldb.TInt},
		{Name: "transID", Type: sqldb.TInt},
		{Name: "temperature", Type: sqldb.TFloat},
		{Name: "humidity", Type: sqldb.TFloat},
		{Name: "ts", Type: sqldb.TString},
	})
	if err != nil {
		return nil, err
	}

	nFabric := sizes["fabric"]
	for i := 0; i < nFabric; i++ {
		// humidity and temperature are uniform so predicate selectivity is
		// directly controllable by threshold.
		if err := fabric.AppendRow([]sqldb.Datum{
			sqldb.Int(int64(i)),                          // transID
			sqldb.Int(int64(rng.intn(cfg.PatternCount))), // patternID
			sqldb.Float(10 + rng.float()*990),            // meter
			sqldb.Float(rng.float() * 100),               // humidity
			sqldb.Float(rng.float() * 60),                // temperature
			sqldb.Str(dateFor(rng.intn(90))),             // printdate in Q1 2021
		}); err != nil {
			return nil, err
		}
	}
	for i := 0; i < sizes["video"]; i++ {
		transID := i % nFabric // ~10 clips per transaction
		kf := synthKeyframe(cfg.KeyframeSide, cfg.Seed+int64(i))
		if err := video.AppendRow([]sqldb.Datum{
			sqldb.Int(int64(i)),
			sqldb.Int(int64(transID)),
			sqldb.Str(dateFor(rng.intn(90))),
			sqldb.Blob(KeyframeBytes(kf)),
		}); err != nil {
			return nil, err
		}
	}
	regions := []string{"hangzhou", "shanghai", "shenzhen", "beijing"}
	for i := 0; i < sizes["client"]; i++ {
		if err := client.AppendRow([]sqldb.Datum{
			sqldb.Int(int64(i)),
			sqldb.Str(fmt.Sprintf("client_%d", i)),
			sqldb.Str(regions[rng.intn(len(regions))]),
		}); err != nil {
			return nil, err
		}
	}
	for i := 0; i < sizes["order"]; i++ {
		if err := order.AppendRow([]sqldb.Datum{
			sqldb.Int(int64(i)),
			sqldb.Int(int64(rng.intn(sizes["client"]))),
			sqldb.Int(int64(i % nFabric)),
			sqldb.Float(100 + rng.float()*9900),
		}); err != nil {
			return nil, err
		}
	}
	for i := 0; i < sizes["device"]; i++ {
		if err := device.AppendRow([]sqldb.Datum{
			sqldb.Int(int64(i)),
			sqldb.Int(int64(rng.intn(nFabric))),
			sqldb.Float(rng.float() * 60),
			sqldb.Float(rng.float() * 100),
			sqldb.Str(dateFor(rng.intn(90))),
		}); err != nil {
			return nil, err
		}
	}
	return ds, nil
}

// dateFor maps day offsets 0..89 into ISO dates across 2021 Q1.
func dateFor(day int) string {
	month := day/30 + 1
	d := day%30 + 1
	return fmt.Sprintf("2021-%02d-%02d", month, d)
}

// synthKeyframe generates a deterministic pseudo-image for a video row.
func synthKeyframe(side int, seed int64) *tensor.Tensor {
	out := tensor.New(3, side, side)
	rng := newRand(seed)
	for i := range out.Data() {
		out.Data()[i] = rng.float()
	}
	return out
}

// HumidityThresholdFor returns the humidity lower bound whose predicate
// `humidity > x` keeps roughly the requested fraction of fabric rows
// (humidity is uniform on [0, 100)).
func HumidityThresholdFor(selectivity float64) float64 {
	if selectivity <= 0 {
		return 100
	}
	if selectivity >= 1 {
		return 0
	}
	return 100 * (1 - selectivity)
}

// FabricPredicateFor builds a fabric-side conjunction with the requested
// overall selectivity, splitting it between humidity and temperature like
// the paper's Type 3 template.
func FabricPredicateFor(selectivity float64) string {
	perPred := math.Sqrt(selectivity)
	hum := 100 * (1 - perPred)
	temp := 60 * (1 - perPred)
	return fmt.Sprintf("F.humidity > %.4f and F.temperature > %.4f", hum, temp)
}

type splitMix struct{ state uint64 }

func newRand(seed int64) *splitMix { return &splitMix{state: uint64(seed)*0x9E3779B97F4A7C15 + 1} }

func (s *splitMix) next() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (s *splitMix) float() float64 { return float64(s.next()>>11) / float64(1<<53) }

func (s *splitMix) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(s.next() % uint64(n))
}
