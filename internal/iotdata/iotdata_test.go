package iotdata

import (
	"math"
	"strconv"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func TestGenerateRatios(t *testing.T) {
	cfg := Config{Scale: 5, KeyframeSide: 4, Seed: 1, PatternCount: 3}
	ds, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's 100:10:1:10:1 ratio.
	checks := map[string]int{"video": 500, "fabric": 50, "client": 5, "order_tbl": 50, "device": 5}
	for table, want := range checks {
		got := ds.DB.GetTable(table).NumRows()
		if got != want {
			t.Fatalf("%s rows = %d, want %d", table, got, want)
		}
	}
}

func TestKeyframeRoundTrip(t *testing.T) {
	in := tensor.New(3, 4, 4)
	for i := range in.Data() {
		in.Data()[i] = float64(i) * 0.5
	}
	b := KeyframeBytes(in)
	out, err := KeyframeTensor(b)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.Equal(in, out, 0) {
		t.Fatal("keyframe round trip must be exact")
	}
}

func TestKeyframeBadBlob(t *testing.T) {
	if _, err := KeyframeTensor([]byte{1, 2}); err == nil {
		t.Fatal("short blob must error")
	}
	if _, err := KeyframeTensor(make([]byte, 20)); err == nil {
		t.Fatal("inconsistent dims must error")
	}
}

func TestVideoJoinsFabric(t *testing.T) {
	ds, err := Generate(Config{Scale: 3, KeyframeSide: 4, Seed: 2, PatternCount: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ds.DB.Query(`SELECT count(*) c FROM fabric F, video V WHERE F.transID = V.transID`)
	if err != nil {
		t.Fatal(err)
	}
	// Every video row joins exactly one fabric row.
	if res.Cols[0].Get(0).I != 300 {
		t.Fatalf("join count = %v, want 300", res.Cols[0].Get(0))
	}
}

func TestSelectivityControl(t *testing.T) {
	ds, err := Generate(Config{Scale: 50, KeyframeSide: 4, Seed: 3, PatternCount: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, sel := range []float64{0.1, 0.5} {
		th := HumidityThresholdFor(sel)
		res, err := ds.DB.Query(`SELECT count(*) c FROM fabric WHERE humidity > ` +
			strconv.FormatFloat(th, 'f', 4, 64))
		if err != nil {
			t.Fatal(err)
		}
		got := float64(res.Cols[0].Get(0).I) / 500.0
		if math.Abs(got-sel) > 0.1 {
			t.Fatalf("selectivity %v got %v", sel, got)
		}
	}
}

func TestHumidityThresholdBounds(t *testing.T) {
	if HumidityThresholdFor(0) != 100 || HumidityThresholdFor(1) != 0 {
		t.Fatal("threshold bounds wrong")
	}
	if HumidityThresholdFor(0.25) != 75 {
		t.Fatalf("threshold(0.25) = %v", HumidityThresholdFor(0.25))
	}
}

func TestFabricPredicateSelectivity(t *testing.T) {
	ds, err := Generate(Config{Scale: 100, KeyframeSide: 4, Seed: 4, PatternCount: 3})
	if err != nil {
		t.Fatal(err)
	}
	pred := FabricPredicateFor(0.25)
	res, err := ds.DB.Query(`SELECT count(*) c FROM fabric F WHERE ` + pred)
	if err != nil {
		t.Fatal(err)
	}
	got := float64(res.Cols[0].Get(0).I) / 1000.0
	if math.Abs(got-0.25) > 0.08 {
		t.Fatalf("combined selectivity = %v, want ~0.25", got)
	}
}

func TestDeterministicGeneration(t *testing.T) {
	a, err := Generate(Config{Scale: 2, KeyframeSide: 4, Seed: 9, PatternCount: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Config{Scale: 2, KeyframeSide: 4, Seed: 9, PatternCount: 3})
	if err != nil {
		t.Fatal(err)
	}
	ra, _ := a.DB.Query(`SELECT sum(humidity) s FROM fabric`)
	rb, _ := b.DB.Query(`SELECT sum(humidity) s FROM fabric`)
	if ra.Cols[0].Get(0).F != rb.Cols[0].Get(0).F {
		t.Fatal("same seed must generate identical data")
	}
}

// Property: every keyframe blob in a generated dataset decodes to the
// configured shape.
func TestKeyframeDecodableProperty(t *testing.T) {
	ds, err := Generate(Config{Scale: 1, KeyframeSide: 4, Seed: 5, PatternCount: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ds.DB.Query(`SELECT keyframe FROM video`)
	if err != nil {
		t.Fatal(err)
	}
	n := res.NumRows()
	for i := 0; i < n; i++ {
		kt, err := KeyframeTensor(res.Cols[0].Get(i).B)
		if err != nil {
			t.Fatalf("row %d: %v", i, err)
		}
		if kt.Dim(0) != 3 || kt.Dim(1) != 4 || kt.Dim(2) != 4 {
			t.Fatalf("row %d shape %v", i, kt.Shape())
		}
	}
}

// Property: KeyframeBytes/KeyframeTensor round-trips arbitrary data.
func TestKeyframeRoundTripProperty(t *testing.T) {
	f := func(vals []float64, c8 uint8) bool {
		c := int(c8%3) + 1
		side := 2
		n := c * side * side
		data := make([]float64, n)
		for i := range data {
			if i < len(vals) && !math.IsNaN(vals[i]) {
				data[i] = vals[i]
			}
		}
		in := tensor.FromSlice(data, c, side, side)
		out, err := KeyframeTensor(KeyframeBytes(in))
		if err != nil {
			return false
		}
		return tensor.Equal(in, out, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDatesWithinQ1(t *testing.T) {
	ds, err := Generate(Config{Scale: 5, KeyframeSide: 4, Seed: 6, PatternCount: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ds.DB.Query(`SELECT count(*) c FROM fabric WHERE printdate < '2021-01-01' OR printdate > '2021-03-31'`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cols[0].Get(0).I != 0 {
		t.Fatalf("%v fabric rows outside Q1 2021", res.Cols[0].Get(0))
	}
}
