// Package strategies implements the paper's four experimental
// configurations for collaborative query processing:
//
//   - DB-PyTorch  — independent processing: the application layer splits the
//     query, ships keyframes to a separate model-serving component over a
//     real byte-pipe (serialization and transfer are actually performed),
//     and merges predictions back into the database.
//   - DB-UDF      — loose integration: the compiled model artifact is
//     registered as a native scalar UDF and the whole query runs in the
//     database, with the UDF opaque to the optimizer.
//   - DL2SQL      — tight integration: inference is rewritten to SQL by the
//     dl2sql translator and executed for every candidate keyframe.
//   - DL2SQL-OP   — DL2SQL plus Section IV's optimizations: hint rules 1–3
//     and the customized cost model decide nUDF placement, so only tuples
//     surviving the relational predicates are inferred.
//
// Every strategy returns the paper's cost breakdown: loading (model +
// data movement), inference, and relational algebra, in seconds.
package strategies

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/internal/cache"
	"repro/internal/colquery"
	"repro/internal/dl2sql"
	"repro/internal/faults"
	"repro/internal/hints"
	"repro/internal/hwprofile"
	"repro/internal/iotdata"
	"repro/internal/modelrepo"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/qerr"
	"repro/internal/schedule"
	"repro/internal/sqldb"
	"repro/internal/tensor"
)

// CostBreakdown is the paper's three-bucket cost accounting (seconds).
type CostBreakdown struct {
	Loading    float64
	Inference  float64
	Relational float64
	// FallbackPath records graceful degradation: the strategies tried in
	// order, ending with the one that produced the result. Empty when the
	// primary strategy succeeded (see ExecuteWithFallback).
	FallbackPath []string
}

// Total sums the buckets.
func (c CostBreakdown) Total() float64 { return c.Loading + c.Inference + c.Relational }

// Add accumulates another breakdown.
func (c *CostBreakdown) Add(o CostBreakdown) {
	c.Loading += o.Loading
	c.Inference += o.Inference
	c.Relational += o.Relational
	c.FallbackPath = append(c.FallbackPath, o.FallbackPath...)
}

// Scale divides every bucket by n (for averaging).
func (c CostBreakdown) Scale(n float64) CostBreakdown {
	return CostBreakdown{Loading: c.Loading / n, Inference: c.Inference / n,
		Relational: c.Relational / n, FallbackPath: c.FallbackPath}
}

// UDFKind describes how a model's class prediction converts to a SQL value.
type UDFKind int

const (
	// UDFBool: binary classifiers — class 1 maps to TRUE ("Defect").
	UDFBool UDFKind = iota
	// UDFLabel: the class label string.
	UDFLabel
	// UDFIndex: the class index as an integer (pattern recognition, whose
	// indices align with fabric.patternID).
	UDFIndex
)

// UDFBinding wires an nUDF name to a repository model.
type UDFBinding struct {
	Name  string // lower-cased nUDF name
	Entry *modelrepo.Entry
	Kind  UDFKind
	// Artifact is the compiled model (built once, offline).
	Artifact []byte
	// artifactHash fingerprints Artifact for inference-memoization keys.
	artifactHash uint64
}

// Context carries the shared experimental fixtures.
type Context struct {
	Dataset  *iotdata.Dataset
	Bindings map[string]*UDFBinding
	Profile  hwprofile.Profile
	// HintProvider supplies Eq. 9–10 selectivities for DL2SQL-OP.
	HintProvider *hints.Provider
	// Tracer, when non-nil, receives one root span per strategy execution
	// with nested loading/inference/relational phase spans (and, below
	// them, per-NN-layer or per-SQL-step spans). Nil disables tracing at
	// zero cost.
	Tracer *obs.Tracer
	// Metrics, when non-nil, accumulates per-strategy phase latency
	// histograms and query counters across Execute calls.
	Metrics *obs.Registry
	// History, when non-nil, receives one strategy-level QueryRecord per
	// ExecuteWithFallback call: strategy name, fallback path, serving
	// retries, and inference-call counts — the accounting the engine-level
	// recorder cannot see. Share the engine's ring (Dataset.DB.History) to
	// interleave both layers in sys.queries, or use a separate ring to keep
	// them apart.
	History *obs.QueryHistory
	// Traces, when non-nil, arms request-scoped tracing at the strategy
	// layer: every ExecuteWithFallback call gets (or joins) a trace whose
	// span tree the store tail-samples. Share the engine's store
	// (Dataset.DB.Traces) so strategy and statement spans land in one tree.
	Traces *obs.TraceStore
	// InferCache, when non-nil, memoizes (model, keyframe) → class index
	// for the DB-UDF and DB-PyTorch strategies. Enable with
	// EnableInferCache; nil disables memoization at zero cost.
	InferCache *cache.LRU[InferKey, int]
	// SQLCache, when non-nil, is attached to every DL2SQL translator so
	// repeated SQL inferences reuse memoized results and materialized
	// intermediates. Enabled together with InferCache.
	SQLCache *dl2sql.PipelineCache
	// Timeout, when positive, bounds every Execute call: the strategy runs
	// under a context.WithTimeout derived from the caller's context, and
	// expiry surfaces as an error matching qerr.ErrTimeout.
	Timeout time.Duration
	// Faults, when non-nil, injects failures at the serving, UDF-decode,
	// and DL2SQL-translate points (chaos testing). Nil in production.
	Faults *faults.Injector
	// Retry configures the DB-PyTorch serving pipe's retry loop; the zero
	// value uses defaults (see RetryPolicy).
	Retry RetryPolicy
	// Breaker, when non-nil, is the circuit breaker guarding the serving
	// pipe; it persists across Execute calls so repeated failures fail
	// fast. Nil disables the breaker.
	Breaker *Breaker
	// Scheduler, when non-nil, routes DB-UDF and DB-PyTorch forward passes
	// through the cross-query inference scheduler: requests from
	// concurrent queries coalesce into batched MatMuls and identical
	// in-flight requests single-flight onto one computation. Enable with
	// EnableScheduler; nil keeps the strategy-local inference paths.
	Scheduler *schedule.Scheduler
	// schedNative / schedServing are the scheduler backends wired by
	// EnableScheduler: in-process batched inference for DB-UDF and the
	// breaker-guarded serving pipe for DB-PyTorch.
	schedNative  *schedule.Backend
	schedServing *schedule.Backend
}

// queryCtx derives the per-query context: the caller's ctx bounded by the
// Context's Timeout knob.
func (env *Context) queryCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if ctx == nil {
		ctx = context.Background()
	}
	if env.Timeout > 0 {
		return context.WithTimeout(ctx, env.Timeout)
	}
	return ctx, func() {}
}

// recordBreakdown folds one Execute's cost breakdown into the metrics
// registry. Safe to call with a nil registry.
func (env *Context) recordBreakdown(strategy string, bd CostBreakdown) {
	if env.Metrics == nil {
		return
	}
	env.Metrics.Counter(obs.StrategyMetric(strategy, "queries")).Add(1)
	env.Metrics.Histogram(obs.StrategyMetric(strategy, "loading_s")).Observe(bd.Loading)
	env.Metrics.Histogram(obs.StrategyMetric(strategy, "inference_s")).Observe(bd.Inference)
	env.Metrics.Histogram(obs.StrategyMetric(strategy, "relational_s")).Observe(bd.Relational)
	env.Metrics.Histogram(obs.StrategyMetric(strategy, "total_s")).Observe(bd.Total())
}

// NewContext assembles a context over a dataset with the default profile.
func NewContext(ds *iotdata.Dataset) *Context {
	return &Context{
		Dataset:  ds,
		Bindings: map[string]*UDFBinding{},
		Profile:  hwprofile.EdgeCPU,
	}
}

// Bind registers a model for an nUDF name, compiling its artifact.
func (env *Context) Bind(name string, entry *modelrepo.Entry, kind UDFKind) error {
	blob, err := nn.EncodeBytes(entry.Model)
	if err != nil {
		return fmt.Errorf("strategies: compiling %s: %w", name, err)
	}
	env.Bindings[strings.ToLower(name)] = &UDFBinding{
		Name: strings.ToLower(name), Entry: entry, Kind: kind, Artifact: blob,
		artifactHash: tensor.HashBytes(blob),
	}
	return nil
}

// BindDefaults wires the three template nUDFs to repository models and
// calibrates their histograms (the offline-training step).
func (env *Context) BindDefaults(repo *modelrepo.Repository, calibrationSamples int) error {
	side := env.Dataset.Config.KeyframeSide
	pairs := []struct {
		name string
		task modelrepo.Task
		kind UDFKind
	}{
		{"nudf_detect", modelrepo.TaskDefectDetection, UDFBool},
		{"nudf_classify", modelrepo.TaskPatternRecog, UDFLabel},
		{"nudf_recog", modelrepo.TaskPatternRecog, UDFIndex},
	}
	prov := hints.NewProvider()
	for _, p := range pairs {
		entry := repo.ForTask(p.task)
		if entry == nil {
			return fmt.Errorf("strategies: no model for task %s", p.task)
		}
		if entry.Histogram == nil {
			if err := entry.Calibrate(calibrationSamples, side, 1234); err != nil {
				return err
			}
		}
		if err := env.Bind(p.name, entry, p.kind); err != nil {
			return err
		}
		if err := prov.RegisterModel(p.name, entry); err != nil {
			return err
		}
	}
	env.HintProvider = prov
	return nil
}

// predictionDatum converts a class prediction to the binding's SQL type.
func (b *UDFBinding) predictionDatum(classIdx int) sqldb.Datum {
	switch b.Kind {
	case UDFBool:
		return sqldb.Bool(classIdx == 1)
	case UDFLabel:
		classes := b.Entry.Model.Classes
		if classIdx < len(classes) {
			return sqldb.Str(classes[classIdx])
		}
		return sqldb.Str(fmt.Sprintf("class_%d", classIdx))
	default:
		return sqldb.Int(int64(classIdx))
	}
}

// predictionType is the SQL column type of the binding's outputs.
func (b *UDFBinding) predictionType() sqldb.Type {
	switch b.Kind {
	case UDFBool:
		return sqldb.TBool
	case UDFLabel:
		return sqldb.TString
	default:
		return sqldb.TInt
	}
}

// Strategy executes collaborative queries one way.
type Strategy interface {
	// Name is the Fig. 8 configuration label.
	Name() string
	// Execute runs the query under ctx (cancellation and deadlines are
	// observed down to SQL morsel boundaries; env.Timeout adds a per-query
	// deadline), returning its result and cost breakdown. Lifecycle
	// failures carry the qerr sentinels: ErrCancelled, ErrTimeout,
	// ErrServingUnavailable, ErrMemoryBudget.
	Execute(ctx context.Context, env *Context, q *colquery.Query) (*sqldb.Result, CostBreakdown, error)
}

// All returns the four configurations in the paper's order.
func All() []Strategy {
	return []Strategy{
		&DL2SQL{Optimized: false},
		&DL2SQL{Optimized: true},
		&DBUDF{},
		&DBPyTorch{},
	}
}

// fallbackFor is the graceful-degradation ladder: when a strategy fails
// with a serving-availability error, the query is retried one integration
// level tighter — DB-PyTorch falls back to DB-UDF (no serving component),
// DB-UDF falls back to DL2SQL (no native model execution at all). DL2SQL
// has nothing below it.
func fallbackFor(s Strategy) Strategy {
	switch s.(type) {
	case *DBPyTorch:
		return &DBUDF{}
	case *DBUDF:
		return &DL2SQL{}
	}
	return nil
}

// ExecuteWithFallback runs the strategy, degrading down the fallback
// ladder when the failure is a serving-availability problem
// (qerr.ErrServingUnavailable — a dead serving pipe, an open circuit
// breaker, a failed UDF model decode). Caller cancellation, query
// timeouts, memory-budget failures, and data errors never degrade: they
// report the original error. The result's FallbackPath lists the
// strategies tried (ending with the one that answered) whenever
// degradation engaged; each hop is also recorded as a
// "strategy.fallback.<from>→<to>" metrics counter and a fallback span.
func ExecuteWithFallback(ctx context.Context, env *Context, s Strategy, q *colquery.Query) (*sqldb.Result, CostBreakdown, error) {
	if env.History == nil && env.Traces == nil && obs.TraceFromContext(ctx) == nil {
		res, bd, _, err := executeWithFallback(ctx, env, s, q)
		return res, bd, err
	}
	// Recorded execution: thread a strategy-level accounting struct through
	// the context (the serving retry loop and both native inference paths
	// charge it) and leave one QueryRecord behind — including on error.
	//
	// Trace ownership mirrors the engine recorder: when the context already
	// carries a trace (a served request), this execution contributes a
	// child span; when it does not and a store is armed, this is the
	// outermost traced layer — it creates the trace and decides retention.
	acct := &stratAcct{}
	tr := obs.TraceFromContext(ctx)
	created := false
	var span *obs.Span
	if env.Traces != nil || tr != nil {
		if tr == nil {
			tr = env.Traces.StartTrace(ctx, "colquery")
			created = true
			span = tr.Root()
			// Adopt the root into the session tracer so tracer-based views
			// (sqlsh \trace, dl2sql -trace) keep rendering it.
			env.Tracer.Adopt(span)
		} else if parent := obs.SpanFromContext(ctx); parent != nil {
			span = parent.StartChild("colquery")
		} else {
			span = tr.Root().StartChild("colquery")
		}
		span.SetAttr("sql", q.SQL)
		ctx = obs.ContextWithTraceSpan(ctx, tr, span)
	}
	start := time.Now()
	res, bd, final, err := executeWithFallback(withStratAcct(ctx, acct), env, s, q)
	if err != nil {
		span.SetAttr("err", qerr.Class(err))
		tr.MarkError()
	}
	span.Finish()
	if created {
		env.Traces.Finish(tr)
	}
	env.recordExecution(q.SQL, final, bd, acct, start, res, err, tr.RecordID())
	return res, bd, err
}

// executeWithFallback is the fallback-ladder loop; it additionally returns
// the name of the strategy that answered (or failed last) for recording.
func executeWithFallback(ctx context.Context, env *Context, s Strategy, q *colquery.Query) (*sqldb.Result, CostBreakdown, string, error) {
	var bd CostBreakdown
	var path []string
	for {
		res, cur, err := s.Execute(ctx, env, q)
		bd.Loading += cur.Loading
		bd.Inference += cur.Inference
		bd.Relational += cur.Relational
		if err == nil {
			if len(path) > 0 {
				bd.FallbackPath = append(path, s.Name())
			}
			return res, bd, s.Name(), nil
		}
		next := fallbackFor(s)
		if next == nil || !errors.Is(err, qerr.ErrServingUnavailable) {
			bd.FallbackPath = path
			return nil, bd, s.Name(), err
		}
		if qerr.FromContext(ctx.Err()) != nil {
			// The query itself is done; degradation would run a fresh
			// strategy against a dead context.
			bd.FallbackPath = path
			return nil, bd, s.Name(), err
		}
		path = append(path, s.Name())
		if env.Metrics != nil {
			env.Metrics.Counter(obs.FallbackMetric(s.Name(), next.Name())).Add(1)
			env.Metrics.Counter(obs.MetricFallbackTotal).Add(1)
		}
		obs.TraceFromContext(ctx).MarkFallback()
		_, sp := obs.StartSpan(ctx, env.Tracer, "fallback:"+s.Name()+"->"+next.Name())
		sp.SetAttr("cause", err.Error())
		sp.Finish()
		s = next
	}
}

// candidate is one keyframe requiring inference.
type candidate struct {
	videoID int64
	blob    []byte
}

// videoSideCandidates extracts the video rows selected by the query's
// single-relation predicates on the keyframe relation (the set a strategy
// without cross-table pruning must infer).
func videoSideCandidates(ctx context.Context, env *Context, q *colquery.Query, prof *sqldb.Profile) ([]candidate, time.Duration, error) {
	alias := keyframeAlias(q)
	conds := videoConds(q, alias)
	where := ""
	if len(conds) > 0 {
		where = " WHERE " + strings.Join(conds, " AND ")
	}
	sql := fmt.Sprintf("SELECT videoID, keyframe FROM video %s%s", alias, where)
	start := time.Now()
	res, err := env.Dataset.DB.ExecContext(ctx, sql)
	if err != nil {
		return nil, 0, fmt.Errorf("strategies: extracting candidates: %w", err)
	}
	out, err := candidatesFromResult(res)
	return out, time.Since(start), err
}

// prunedCandidates extracts the distinct video rows surviving *all* non-UDF
// predicates and joins (DL2SQL-OP's delayed evaluation).
func prunedCandidates(ctx context.Context, env *Context, q *colquery.Query, h *sqldb.QueryHints) ([]candidate, time.Duration, error) {
	alias := keyframeAlias(q)
	stripped := stripUDFConjuncts(q.Stmt)
	stripped.Items = []sqldb.SelectItem{
		{Expr: &sqldb.ColRef{Table: alias, Name: "videoID"}},
		{Expr: &sqldb.ColRef{Table: alias, Name: "keyframe"}},
	}
	stripped.Distinct = true
	stripped.GroupBy = nil
	stripped.Having = nil
	stripped.OrderBy = nil
	start := time.Now()
	res, err := env.Dataset.DB.ExecStmtContext(ctx, stripped, h)
	if err != nil {
		return nil, 0, fmt.Errorf("strategies: extracting pruned candidates: %w", err)
	}
	out, err := candidatesFromResult(res)
	return out, time.Since(start), err
}

func candidatesFromResult(res *sqldb.Result) ([]candidate, error) {
	n := res.NumRows()
	out := make([]candidate, 0, n)
	for i := 0; i < n; i++ {
		id, _ := res.Cols[0].Get(i).AsInt()
		blob := res.Cols[1].Get(i)
		if blob.T != sqldb.TBlob {
			return nil, fmt.Errorf("strategies: keyframe column is %s, want Blob", blob.T)
		}
		out = append(out, candidate{videoID: id, blob: blob.B})
	}
	return out, nil
}

// keyframeAlias finds the alias of the relation feeding the nUDFs (the
// video table in every template).
func keyframeAlias(q *colquery.Query) string {
	for _, u := range q.UDFs {
		if i := strings.IndexByte(u.Arg, '.'); i > 0 {
			return u.Arg[:i]
		}
	}
	return "V"
}

// videoConds renders the single-relation conjuncts on the keyframe alias.
func videoConds(q *colquery.Query, alias string) []string {
	var out []string
	for _, c := range whereConjuncts(q.Stmt) {
		if len(findNUDFs(c)) > 0 {
			continue
		}
		rels := exprRelations(c)
		if len(rels) == 1 && strings.EqualFold(rels[0], alias) {
			out = append(out, c.String())
		}
	}
	return out
}
