package strategies

// Serving-pipe resilience: retry with exponential backoff and jitter, and
// a circuit breaker guarding the DB↔PyTorch serving boundary.
//
// The DB-PyTorch strategy crosses a real component boundary (a byte pipe
// to a serving goroutine standing in for a remote model server), so it is
// the one strategy whose failures look like distributed-system failures:
// connection errors, hangs, truncated responses. serveWithRetry wraps each
// batch call in a bounded retry loop — per-attempt timeout, exponential
// backoff with deterministic jitter — behind a circuit breaker that stops
// hammering a serving component that keeps failing and lets one probe
// attempt through after a cooldown (half-open). Caller cancellation and
// the query deadline are never retried; only serving-availability failures
// (qerr.ErrServingUnavailable, per-attempt timeouts) are.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/qerr"
)

// RetryPolicy bounds the serving pipe's retry loop. The zero value means
// "use defaults" (3 attempts, 2ms base delay, 100ms cap, no per-attempt
// timeout).
type RetryPolicy struct {
	// MaxAttempts is the total number of tries (not re-tries); <=0 = 3.
	MaxAttempts int
	// BaseDelay seeds the exponential backoff (doubles per attempt); <=0 = 2ms.
	BaseDelay time.Duration
	// MaxDelay caps the backoff; <=0 = 100ms.
	MaxDelay time.Duration
	// AttemptTimeout bounds each individual serving attempt; 0 = none.
	// Expiry counts as a serving failure (retried), not a query timeout.
	AttemptTimeout time.Duration
	// JitterSeed makes the backoff jitter deterministic for tests; 0 seeds
	// from 1.
	JitterSeed int64
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 3
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 2 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 100 * time.Millisecond
	}
	return p
}

// backoff returns the sleep before attempt n (1-based: the delay after the
// n-th failure): BaseDelay·2^(n-1), capped at MaxDelay, with up to 50%
// deterministic jitter from rng.
func (p RetryPolicy) backoff(n int, rng *rand.Rand) time.Duration {
	d := p.BaseDelay << (n - 1)
	if d > p.MaxDelay || d <= 0 {
		d = p.MaxDelay
	}
	return d/2 + time.Duration(rng.Int63n(int64(d)/2+1))
}

// Breaker states.
const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen
)

// Breaker is a counting circuit breaker for the serving pipe. Closed it
// passes every call; FailThreshold consecutive failures open it; open it
// fails fast with qerr.ErrServingUnavailable until Cooldown elapses, then
// lets a single probe through (half-open) — the probe's outcome closes or
// re-opens the circuit.
type Breaker struct {
	// FailThreshold is the consecutive-failure count that opens the
	// circuit; <=0 = 5.
	FailThreshold int
	// Cooldown is how long the circuit stays open before a probe; <=0 = 100ms.
	Cooldown time.Duration

	mu       sync.Mutex
	state    int
	failures int
	openedAt time.Time
	// trips counts closed→open transitions (exposed for metrics/tests).
	trips int64
}

func (b *Breaker) failThreshold() int {
	if b.FailThreshold <= 0 {
		return 5
	}
	return b.FailThreshold
}

func (b *Breaker) cooldown() time.Duration {
	if b.Cooldown <= 0 {
		return 100 * time.Millisecond
	}
	return b.Cooldown
}

// Allow reports whether a call may proceed. Open circuits fail fast; after
// the cooldown one probe is admitted (half-open). A nil breaker admits
// everything.
func (b *Breaker) Allow() error {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerOpen:
		if time.Since(b.openedAt) < b.cooldown() {
			return fmt.Errorf("%w: serving circuit open (%d consecutive failures)",
				qerr.ErrServingUnavailable, b.failures)
		}
		b.state = breakerHalfOpen
		return nil
	case breakerHalfOpen:
		// One probe at a time: further calls fail fast until it reports.
		return fmt.Errorf("%w: serving circuit half-open, probe in flight",
			qerr.ErrServingUnavailable)
	}
	return nil
}

// Record reports a call outcome to the breaker. Success closes the circuit
// and clears the failure count; failure counts toward the threshold (and
// re-opens a half-open circuit immediately).
func (b *Breaker) Record(ok bool) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if ok {
		b.state = breakerClosed
		b.failures = 0
		return
	}
	b.failures++
	if b.state == breakerHalfOpen || b.failures >= b.failThreshold() {
		if b.state != breakerOpen {
			b.trips++
		}
		b.state = breakerOpen
		b.openedAt = time.Now()
	}
}

// Trips returns the number of closed→open transitions so far.
func (b *Breaker) Trips() int64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}

// State renders the breaker state for diagnostics.
func (b *Breaker) State() string {
	if b == nil {
		return "disabled"
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	}
	return "closed"
}

// retryable reports whether a serving error is worth another attempt:
// serving-availability failures and per-attempt timeouts are; caller
// cancellation, the query deadline, and data errors are not. attemptCtx is
// the per-attempt context (nil when no attempt timeout was set) and
// callerCtx the query context.
func retryable(err error, attemptCtx, callerCtx context.Context) bool {
	if err == nil {
		return false
	}
	if callerCtx != nil && callerCtx.Err() != nil {
		return false // the query itself was cancelled or timed out
	}
	if errors.Is(err, qerr.ErrServingUnavailable) {
		return true
	}
	// A timeout that came from the attempt's own deadline is a serving
	// hang, not a query timeout.
	if errors.Is(err, qerr.ErrTimeout) && attemptCtx != nil && attemptCtx.Err() != nil {
		return true
	}
	return false
}

// serveWithRetry runs one serving batch through the breaker and retry
// loop. It returns the first successful attempt's results, or the last
// error once attempts are exhausted (wrapped so errors.Is(err,
// qerr.ErrServingUnavailable) holds for availability failures).
func (env *Context) serveWithRetry(ctx context.Context, artifact []byte, cands []candidate, span *obs.Span) (map[int64]int, *servingStats, error) {
	pol := env.Retry.withDefaults()
	seed := pol.JitterSeed
	if seed == 0 {
		seed = 1
	}
	rng := rand.New(rand.NewSource(seed))
	var lastErr error
	for attempt := 1; attempt <= pol.MaxAttempts; attempt++ {
		if err := qerr.FromContext(ctx.Err()); err != nil {
			return nil, nil, err
		}
		if err := env.Breaker.Allow(); err != nil {
			env.count(obs.MetricServingBreakerRejected)
			stratAcctFrom(ctx).noteBreakerRejected()
			obs.TraceFromContext(ctx).MarkBreakerRejected()
			return nil, nil, err
		}
		actx := ctx
		cancel := func() {}
		var attemptCtx context.Context
		if pol.AttemptTimeout > 0 {
			actx, cancel = context.WithTimeout(ctx, pol.AttemptTimeout)
			attemptCtx = actx
		}
		attemptSpan := span
		if attempt > 1 {
			attemptSpan = span.StartChild(fmt.Sprintf("retry:%d", attempt))
		}
		res, stats, err := serveBatch(actx, env.Faults, artifact, cands, attemptSpan)
		if attempt > 1 {
			attemptSpan.Finish()
		}
		cancel()
		env.Breaker.Record(err == nil)
		if err == nil {
			return res, stats, nil
		}
		if !retryable(err, attemptCtx, ctx) {
			return nil, nil, err
		}
		lastErr = err
		env.count(obs.MetricServingRetries)
		stratAcctFrom(ctx).noteRetry()
		if attempt < pol.MaxAttempts {
			if serr := sleepCtx(ctx, pol.backoff(attempt, rng)); serr != nil {
				return nil, nil, serr
			}
		}
	}
	return nil, nil, fmt.Errorf("%w: serving failed after %d attempts: %w",
		qerr.ErrServingUnavailable, pol.MaxAttempts, lastErr)
}

// count bumps a metrics counter when a registry is attached.
func (env *Context) count(name string) {
	if env.Metrics != nil {
		env.Metrics.Counter(name).Add(1)
	}
}

// sleepCtx sleeps for d or until ctx is done.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return qerr.FromContext(ctx.Err())
	}
}
