package strategies

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/colquery"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/qerr"
)

func fallbackQuery(t *testing.T) *colquery.Query {
	t.Helper()
	q, err := colquery.GenerateAnalyzed(colquery.Type3, colquery.TemplateParams{Selectivity: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestFallbackTwoHops(t *testing.T) {
	env := testContext(t)
	env.Metrics = obs.NewRegistry()
	env.Retry = RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, JitterSeed: 3}
	q := fallbackQuery(t)

	want, _, err := (&DL2SQL{}).Execute(context.Background(), env, q)
	if err != nil {
		t.Fatal(err)
	}

	// Serving pipe dead AND model decode broken: only DL2SQL can answer.
	env.Faults = faults.New(1,
		faults.Rule{Point: faults.PointServingError},
		faults.Rule{Point: faults.PointUDFDecode})
	res, bd, err := ExecuteWithFallback(context.Background(), env, &DBPyTorch{}, q)
	if err != nil {
		t.Fatalf("two-hop fallback failed: %v", err)
	}
	if resultKey(res) != resultKey(want) {
		t.Fatal("fallback result differs from direct DL2SQL result")
	}
	wantPath := []string{"DB-PyTorch", "DB-UDF", "DL2SQL"}
	if len(bd.FallbackPath) != 3 {
		t.Fatalf("FallbackPath = %v, want %v", bd.FallbackPath, wantPath)
	}
	for i, name := range wantPath {
		if bd.FallbackPath[i] != name {
			t.Fatalf("FallbackPath = %v, want %v", bd.FallbackPath, wantPath)
		}
	}
	for _, ctr := range []string{
		"strategy.fallback.DB-PyTorch->DB-UDF",
		"strategy.fallback.DB-UDF->DL2SQL",
	} {
		if got := env.Metrics.Counter(ctr).Value(); got != 1 {
			t.Errorf("counter %s = %d, want 1", ctr, got)
		}
	}
	if got := env.Metrics.Counter("strategy.fallback.total").Value(); got != 2 {
		t.Errorf("fallback.total = %d, want 2", got)
	}
}

func TestFallbackExhaustedReturnsTypedError(t *testing.T) {
	env := testContext(t)
	env.Retry = RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, JitterSeed: 3}
	env.Faults = faults.New(1,
		faults.Rule{Point: faults.PointServingError},
		faults.Rule{Point: faults.PointUDFDecode},
		faults.Rule{Point: faults.PointDL2SQLTranslate})
	res, bd, err := ExecuteWithFallback(context.Background(), env, &DBPyTorch{}, fallbackQuery(t))
	if res != nil || err == nil {
		t.Fatalf("exhausted ladder returned res=%v err=%v", res != nil, err)
	}
	if !errors.Is(err, qerr.ErrServingUnavailable) {
		t.Fatalf("err = %v, want ErrServingUnavailable", err)
	}
	// The path records the rungs that were tried and failed.
	if len(bd.FallbackPath) != 2 {
		t.Fatalf("FallbackPath = %v, want the two failed upper rungs", bd.FallbackPath)
	}
}

func TestFallbackDoesNotEngageOnCancellation(t *testing.T) {
	env := testContext(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, bd, err := ExecuteWithFallback(ctx, env, &DBPyTorch{}, fallbackQuery(t))
	if !errors.Is(err, qerr.ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
	if len(bd.FallbackPath) != 0 {
		t.Fatalf("cancellation triggered fallback: %v", bd.FallbackPath)
	}
}

func TestPerQueryTimeoutKnob(t *testing.T) {
	env := testContext(t)
	env.Timeout = 5 * time.Millisecond
	// Every strategy opens with at least one filtered SQL scan, so a 50ms
	// stall per morsel guarantees the 5ms budget expires mid-query on all
	// of them (the stall itself is context-interruptible).
	env.Dataset.DB.Faults = faults.New(1,
		faults.Rule{Point: faults.PointMorselDelay, Delay: 50 * time.Millisecond})
	defer func() { env.Dataset.DB.Faults = nil }()
	for _, s := range All() {
		_, _, err := s.Execute(context.Background(), env, fallbackQuery(t))
		if !errors.Is(err, qerr.ErrTimeout) {
			t.Fatalf("%s with 5ms budget: err = %v, want ErrTimeout", s.Name(), err)
		}
	}
}

func TestCancelledQueryDoesNotPopulateInferCaches(t *testing.T) {
	env := testContext(t)
	env.EnableInferCache(256)
	env.Dataset.DB.EnableCache(16)
	q := fallbackQuery(t)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, s := range All() {
		if _, _, err := s.Execute(ctx, env, q); !errors.Is(err, qerr.ErrCancelled) {
			t.Fatalf("%s: err = %v, want ErrCancelled", s.Name(), err)
		}
	}
	if n := env.InferCache.Len(); n != 0 {
		t.Fatalf("cancelled queries left %d InferCache entries", n)
	}
	results, steps := env.SQLCache.Stats()
	if results.Len != 0 || steps.Len != 0 {
		t.Fatalf("cancelled queries left dl2sql cache entries: results=%d steps=%d",
			results.Len, steps.Len)
	}
	if st := env.Dataset.DB.CacheStats(); st.Plan.Len != 0 {
		t.Fatalf("cancelled queries left %d plan cache entries", st.Plan.Len)
	}

	// Same queries succeed and populate once the context is live again —
	// proving the emptiness above came from the guards, not from the
	// workload never reaching the caches.
	for _, s := range All() {
		if _, _, err := s.Execute(context.Background(), env, q); err != nil {
			t.Fatalf("%s live run: %v", s.Name(), err)
		}
	}
	if env.InferCache.Len() == 0 {
		t.Fatal("live run did not populate InferCache")
	}
	if results, _ := env.SQLCache.Stats(); results.Len == 0 {
		t.Fatal("live run did not populate the dl2sql results cache")
	}
}

// TestMidQueryTimeoutLeavesResultCachesEmpty expires the deadline in the
// middle of SQL inference (slow-morsel injection) and checks that the
// whole-inference memo and the plan cache stay unpopulated: results are
// only published after the unit of work completes on a live context.
func TestMidQueryTimeoutLeavesResultCachesEmpty(t *testing.T) {
	env := testContext(t)
	env.EnableInferCache(256)
	env.Dataset.DB.EnableCache(16)
	env.Dataset.DB.Faults = faults.New(1,
		faults.Rule{Point: faults.PointMorselDelay, Delay: 2 * time.Millisecond})
	defer func() { env.Dataset.DB.Faults = nil }()
	q := fallbackQuery(t)

	ctx, cancel := context.WithTimeout(context.Background(), 25*time.Millisecond)
	defer cancel()
	_, _, err := (&DL2SQL{}).Execute(ctx, env, q)
	if !errors.Is(err, qerr.ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if results, _ := env.SQLCache.Stats(); results.Len != 0 {
		t.Fatalf("timed-out query memoized %d whole inferences", results.Len)
	}
}
