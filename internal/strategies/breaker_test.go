package strategies

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/qerr"
)

func TestBreakerNilIsDisabled(t *testing.T) {
	var b *Breaker
	if err := b.Allow(); err != nil {
		t.Fatalf("nil breaker rejected: %v", err)
	}
	b.Record(false) // must not panic
	if b.Trips() != 0 || b.State() != "disabled" {
		t.Fatal("nil breaker reports state")
	}
}

func TestBreakerOpensAtThresholdAndProbes(t *testing.T) {
	b := &Breaker{FailThreshold: 3, Cooldown: 10 * time.Millisecond}
	for i := 0; i < 3; i++ {
		if err := b.Allow(); err != nil {
			t.Fatalf("closed breaker rejected call %d: %v", i, err)
		}
		b.Record(false)
	}
	if b.State() != "open" || b.Trips() != 1 {
		t.Fatalf("after threshold failures: state=%s trips=%d", b.State(), b.Trips())
	}
	err := b.Allow()
	if !errors.Is(err, qerr.ErrServingUnavailable) {
		t.Fatalf("open breaker error = %v, want ErrServingUnavailable", err)
	}

	time.Sleep(15 * time.Millisecond)
	// After the cooldown one probe goes through (half-open); a second
	// concurrent call is rejected until the probe reports.
	if err := b.Allow(); err != nil {
		t.Fatalf("probe rejected after cooldown: %v", err)
	}
	if b.State() != "half-open" {
		t.Fatalf("state after probe admit = %s", b.State())
	}
	if err := b.Allow(); !errors.Is(err, qerr.ErrServingUnavailable) {
		t.Fatalf("second call during probe = %v, want fail-fast", err)
	}
	// A failed probe re-opens immediately (and counts a new trip).
	b.Record(false)
	if b.State() != "open" || b.Trips() != 2 {
		t.Fatalf("after failed probe: state=%s trips=%d", b.State(), b.Trips())
	}

	time.Sleep(15 * time.Millisecond)
	if err := b.Allow(); err != nil {
		t.Fatalf("second probe rejected: %v", err)
	}
	b.Record(true)
	if b.State() != "closed" {
		t.Fatalf("successful probe left state %s", b.State())
	}
	if err := b.Allow(); err != nil {
		t.Fatalf("closed-again breaker rejected: %v", err)
	}
}

func TestBreakerSuccessResetsFailureCount(t *testing.T) {
	b := &Breaker{FailThreshold: 3}
	b.Record(false)
	b.Record(false)
	b.Record(true)
	b.Record(false)
	b.Record(false)
	if b.State() != "closed" {
		t.Fatal("non-consecutive failures opened the breaker")
	}
	b.Record(false)
	if b.State() != "open" {
		t.Fatal("three consecutive failures did not open the breaker")
	}
}

func TestBackoffBoundedAndDeterministic(t *testing.T) {
	p := RetryPolicy{BaseDelay: 2 * time.Millisecond, MaxDelay: 16 * time.Millisecond}.withDefaults()
	for _, n := range []int{1, 2, 3, 10, 40} {
		d := p.backoff(n, rand.New(rand.NewSource(9)))
		ideal := p.BaseDelay << (n - 1)
		if ideal > p.MaxDelay || ideal <= 0 {
			ideal = p.MaxDelay
		}
		if d < ideal/2 || d > ideal {
			t.Fatalf("backoff(%d) = %v outside [%v, %v]", n, d, ideal/2, ideal)
		}
	}
	a := p.backoff(3, rand.New(rand.NewSource(5)))
	b := p.backoff(3, rand.New(rand.NewSource(5)))
	if a != b {
		t.Fatalf("same-seed jitter diverged: %v vs %v", a, b)
	}
}

func TestRetryableClassification(t *testing.T) {
	bg := context.Background()
	cancelled, cc := context.WithCancel(bg)
	cc()
	expired, ec := context.WithTimeout(bg, time.Nanosecond)
	defer ec()
	<-expired.Done()

	serving := fmt.Errorf("wrap: %w", qerr.ErrServingUnavailable)
	attemptTimeout := qerr.FromContext(expired.Err())

	cases := []struct {
		name      string
		err       error
		attempt   context.Context
		caller    context.Context
		wantRetry bool
	}{
		{"nil error", nil, nil, bg, false},
		{"serving failure", serving, nil, bg, true},
		{"serving failure but caller cancelled", serving, nil, cancelled, false},
		{"attempt deadline expired", attemptTimeout, expired, bg, true},
		{"query deadline expired", attemptTimeout, nil, expired, false},
		{"data error", errors.New("bad keyframe"), nil, bg, false},
	}
	for _, c := range cases {
		if got := retryable(c.err, c.attempt, c.caller); got != c.wantRetry {
			t.Errorf("%s: retryable = %v, want %v", c.name, got, c.wantRetry)
		}
	}
}
