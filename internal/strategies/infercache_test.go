package strategies

import (
	"context"
	"testing"

	"repro/internal/colquery"
	"repro/internal/obs"
)

// TestCachedResultsMatchUncachedAllStrategies is the differential
// correctness gate for inference memoization: for every strategy and
// every template type, a cache-enabled context run twice must return
// exactly the rows an uncached context returns.
func TestCachedResultsMatchUncachedAllStrategies(t *testing.T) {
	for _, typ := range []colquery.QueryType{colquery.Type1, colquery.Type2, colquery.Type3, colquery.Type4} {
		q, err := colquery.GenerateAnalyzed(typ, colquery.TemplateParams{Selectivity: 0.05})
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range All() {
			cold := testContext(t)
			res, _, err := s.Execute(context.Background(), cold, q)
			if err != nil {
				t.Fatalf("%s uncached on %v: %v", s.Name(), typ, err)
			}
			want := resultKey(res)

			warm := testContext(t)
			warm.EnableInferCache(4096)
			for pass := 0; pass < 2; pass++ {
				res, _, err := s.Execute(context.Background(), warm, q)
				if err != nil {
					t.Fatalf("%s cached pass %d on %v: %v", s.Name(), pass, typ, err)
				}
				if got := resultKey(res); got != want {
					t.Fatalf("%s on %v pass %d: cached result differs from uncached:\n--- want ---\n%s\n--- got ---\n%s",
						s.Name(), typ, pass, want, got)
				}
			}
		}
	}
}

func TestInferCacheHitsOnRepeat(t *testing.T) {
	ctx := testContext(t)
	ctx.Metrics = obs.NewRegistry()
	ctx.EnableInferCache(4096)
	q, err := colquery.GenerateAnalyzed(colquery.Type1, colquery.TemplateParams{Selectivity: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	s := &DBUDF{}
	if _, _, err := s.Execute(context.Background(), ctx, q); err != nil {
		t.Fatal(err)
	}
	st := ctx.InferCacheStats()
	if st.Misses == 0 || st.Len == 0 {
		t.Fatalf("first run should populate the cache: %+v", st)
	}
	_, bd, err := s.Execute(context.Background(), ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	st2 := ctx.InferCacheStats()
	if st2.Hits < st.Misses {
		t.Fatalf("second run should hit for every first-run miss: first %+v, second %+v", st, st2)
	}
	// Memoized calls skip the forward pass, so inference cost collapses.
	if bd.Inference > bd.Total()*0.5 && bd.Inference > 1e-3 {
		t.Logf("note: inference bucket still %v of %v after warm run", bd.Inference, bd.Total())
	}
	if got := ctx.Metrics.Counter("strategies.infercache.hits").Value(); got != st2.Hits {
		t.Fatalf("metrics hits %d != stats hits %d", got, st2.Hits)
	}
}

func TestInferCacheSharedAcrossStrategies(t *testing.T) {
	ctx := testContext(t)
	ctx.EnableInferCache(4096)
	q, err := colquery.GenerateAnalyzed(colquery.Type1, colquery.TemplateParams{Selectivity: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	// DB-UDF populates; DB-PyTorch should then serve (mostly) from cache:
	// both key on (artifact hash, blob hash).
	udf := &DBUDF{}
	if _, _, err := udf.Execute(context.Background(), ctx, q); err != nil {
		t.Fatal(err)
	}
	before := ctx.InferCacheStats()
	pt := &DBPyTorch{}
	if _, _, err := pt.Execute(context.Background(), ctx, q); err != nil {
		t.Fatal(err)
	}
	after := ctx.InferCacheStats()
	if after.Hits == before.Hits {
		t.Fatalf("DB-PyTorch did not reuse DB-UDF predictions: before %+v, after %+v", before, after)
	}
}

// TestSQLCacheReusesPipeline checks the DL2SQL pipeline cache: a repeated
// query must hit the whole-inference memo, and results stay identical.
func TestSQLCacheReusesPipeline(t *testing.T) {
	ctx := testContext(t)
	ctx.Metrics = obs.NewRegistry()
	ctx.EnableInferCache(4096)
	q, err := colquery.GenerateAnalyzed(colquery.Type1, colquery.TemplateParams{Selectivity: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	s := &DL2SQL{}
	res1, _, err := s.Execute(context.Background(), ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	results, _ := ctx.SQLCache.Stats()
	if results.Len == 0 {
		t.Fatalf("first DL2SQL run should populate the result memo: %+v", results)
	}
	res2, _, err := s.Execute(context.Background(), ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if resultKey(res1) != resultKey(res2) {
		t.Fatal("cached DL2SQL run returned different rows")
	}
	results2, _ := ctx.SQLCache.Stats()
	if results2.Hits == 0 {
		t.Fatalf("second DL2SQL run should hit the result memo: %+v", results2)
	}
	if got := ctx.Metrics.Counter("dl2sql.cache.results.hits").Value(); got != results2.Hits {
		t.Fatalf("metrics hits %d != stats hits %d", got, results2.Hits)
	}
}

// TestInferCacheDisabledByDefault pins that memoization stays off unless
// explicitly enabled (determinism of the measured baselines).
func TestInferCacheDisabledByDefault(t *testing.T) {
	ctx := testContext(t)
	if ctx.InferCache != nil || ctx.SQLCache != nil {
		t.Fatal("caches must be nil on a fresh context")
	}
	if st := ctx.InferCacheStats(); st.Hits+st.Misses != 0 {
		t.Fatalf("nil cache reported activity: %+v", st)
	}
	ctx.EnableInferCache(16)
	if ctx.InferCache == nil || ctx.SQLCache == nil {
		t.Fatal("EnableInferCache did not enable")
	}
	ctx.EnableInferCache(0)
	if ctx.InferCache != nil || ctx.SQLCache != nil {
		t.Fatal("EnableInferCache(0) must disable")
	}
}
