package strategies

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"time"

	"repro/internal/colquery"
	"repro/internal/iotdata"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/sqldb"
	"repro/internal/tensor"
)

// DBPyTorch is the independent-processing strategy: the database and the DL
// serving system are separate components, and the application layer
// coordinates them. The cross-system boundary is real — candidate keyframes
// are serialized over a byte pipe to a serving goroutine, which deserializes
// them, runs batch inference, and streams serialized predictions back. The
// serialization, transfer, and model-load time land in the loading bucket;
// only the forward passes count as inference; the two relational phases
// (candidate extraction and final merge query) count as relational cost.
type DBPyTorch struct{}

// Name implements Strategy.
func (s *DBPyTorch) Name() string { return "DB-PyTorch" }

// servingStats is what the serving component reports back alongside
// predictions.
type servingStats struct {
	decodeSecs float64 // model decode (loading)
	inferSecs  float64 // forward passes
}

// Execute implements Strategy.
func (s *DBPyTorch) Execute(ctx *Context, q *colquery.Query) (*sqldb.Result, CostBreakdown, error) {
	var bd CostBreakdown
	db := ctx.Dataset.DB
	root := ctx.Tracer.StartSpan("strategy:" + s.Name())
	defer root.Finish()

	// Phase 1 (relational): extract candidates with the database.
	candSpan := root.StartChild("relational:candidates")
	cands, relDur, err := videoSideCandidates(ctx, q, db.Profile)
	candSpan.SetAttr("candidates", len(cands))
	candSpan.Finish()
	if err != nil {
		return nil, bd, err
	}
	bd.Relational += relDur.Seconds()

	// Phase 2 (cross-system): ship candidates to the serving component once
	// per referenced model, batch style.
	preds := make(map[int64]map[string]sqldb.Datum, len(cands))
	for _, c := range cands {
		preds[c.videoID] = map[string]sqldb.Datum{}
	}
	var totalBytes int64
	for _, name := range q.UDFNames {
		b := ctx.Bindings[name]
		if b == nil {
			return nil, bd, fmt.Errorf("strategies: no model bound for %s", name)
		}
		// Memoization: candidates whose (model, keyframe) pair is cached
		// never cross the serving boundary — no serialization, no
		// transfer, no forward pass. Only the misses are batched out.
		serve := cands
		var keys []InferKey
		if ctx.InferCache != nil {
			serve = make([]candidate, 0, len(cands))
			keys = make([]InferKey, 0, len(cands))
			for _, c := range cands {
				key := InferKey{Model: b.artifactHash, Input: tensor.HashBytes(c.blob)}
				if idx, ok := ctx.InferCache.Get(key); ok {
					preds[c.videoID][name] = b.predictionDatum(idx)
					continue
				}
				serve = append(serve, c)
				keys = append(keys, key)
			}
		}
		if len(serve) == 0 {
			continue
		}
		serveSpan := root.StartChild("serving:" + name)
		serveSpan.SetAttr("candidates", len(serve))
		xferStart := time.Now()
		results, stats, err := serveBatch(b.Artifact, serve, serveSpan)
		serveSpan.Finish()
		if err != nil {
			return nil, bd, fmt.Errorf("strategies: serving %s: %w", name, err)
		}
		wall := time.Since(xferStart).Seconds()
		// The serving pathway pays per-call framework dispatch overhead and
		// the heavier DL-framework model deserialization (see hwprofile).
		bd.Inference += ctx.Profile.ScaleInference(stats.inferSecs) +
			ctx.Profile.DLCallOverhead(len(serve))
		// Everything that is not a forward pass is cross-system overhead.
		bd.Loading += wall - stats.inferSecs +
			ctx.Profile.DLLoadCost(stats.decodeSecs) - stats.decodeSecs
		for id, classIdx := range results {
			preds[id][name] = b.predictionDatum(classIdx)
		}
		if ctx.InferCache != nil {
			for i, c := range serve {
				if idx, ok := results[c.videoID]; ok {
					ctx.InferCache.Put(keys[i], idx)
				}
			}
		}
		totalBytes += int64(len(b.Artifact))
		for _, c := range serve {
			totalBytes += int64(len(c.blob))
		}
	}
	// GPU settings ship the model and the batch across the bus once.
	bd.Loading += ctx.Profile.TransferCost(totalBytes)

	// Phase 3 (relational): merge predictions back and run the final query.
	mergeSpan := root.StartChild("relational:final-merge")
	finStart := time.Now()
	predTable, err := buildPredictionsTable(ctx, q, preds, "pt")
	if err != nil {
		return nil, bd, err
	}
	defer db.DropTable(predTable)
	final := rewriteWithPredictions(q, predTable)
	res, err := db.ExecStmt(final, nil)
	if err != nil {
		return nil, bd, fmt.Errorf("strategies: DB-PyTorch final query: %w", err)
	}
	bd.Relational += time.Since(finStart).Seconds()
	mergeSpan.SetAttr("rows", res.NumRows())
	mergeSpan.Finish()
	bd.Relational = ctx.Profile.ScaleRelational(bd.Relational)
	ctx.recordBreakdown(s.Name(), bd)
	return res, bd, nil
}

// serveBatch runs the serving component for one model over the candidate
// batch. The request and response cross real byte pipes: keyframes are
// serialized by the application side, deserialized by the serving side, and
// predictions come back the same way — the paper's serialization /
// de-serialization overhead is physically incurred.
func serveBatch(artifact []byte, cands []candidate, span *obs.Span) (map[int64]int, *servingStats, error) {
	reqR, reqW := io.Pipe()
	respR, respW := io.Pipe()
	stats := &servingStats{}
	serveErr := make(chan error, 1)

	go func() {
		serveErr <- servingLoop(artifact, reqR, respW, stats, span)
	}()

	// Application side: serialize the batch.
	writeErr := make(chan error, 1)
	go func() {
		w := bufio.NewWriter(reqW)
		var hdr [12]byte
		binary.LittleEndian.PutUint32(hdr[:4], uint32(len(cands)))
		if _, err := w.Write(hdr[:4]); err != nil {
			writeErr <- err
			return
		}
		for _, c := range cands {
			binary.LittleEndian.PutUint64(hdr[:8], uint64(c.videoID))
			binary.LittleEndian.PutUint32(hdr[8:12], uint32(len(c.blob)))
			if _, err := w.Write(hdr[:12]); err != nil {
				writeErr <- err
				return
			}
			if _, err := w.Write(c.blob); err != nil {
				writeErr <- err
				return
			}
		}
		if err := w.Flush(); err != nil {
			writeErr <- err
			return
		}
		writeErr <- reqW.Close()
	}()

	// Application side: deserialize predictions.
	out := make(map[int64]int, len(cands))
	r := bufio.NewReader(respR)
	var cnt [4]byte
	if _, err := io.ReadFull(r, cnt[:]); err != nil {
		return nil, nil, fmt.Errorf("reading response count: %w", err)
	}
	n := int(binary.LittleEndian.Uint32(cnt[:]))
	var rec [12]byte
	for i := 0; i < n; i++ {
		if _, err := io.ReadFull(r, rec[:]); err != nil {
			return nil, nil, fmt.Errorf("reading prediction %d: %w", i, err)
		}
		id := int64(binary.LittleEndian.Uint64(rec[:8]))
		out[id] = int(int32(binary.LittleEndian.Uint32(rec[8:12])))
	}
	if err := <-writeErr; err != nil {
		return nil, nil, err
	}
	if err := <-serveErr; err != nil {
		return nil, nil, err
	}
	return out, stats, nil
}

// servingLoop is the DL system: it loads the model artifact, reads
// serialized keyframes, runs inference, and writes serialized predictions.
func servingLoop(artifact []byte, req *io.PipeReader, resp *io.PipeWriter, stats *servingStats, span *obs.Span) error {
	defer resp.Close()
	decodeSpan := span.StartChild("loading:decode-model")
	decodeStart := time.Now()
	model, err := nn.DecodeBytes(artifact)
	decodeSpan.Finish()
	if err != nil {
		return fmt.Errorf("serving: decoding model: %w", err)
	}
	stats.decodeSecs = time.Since(decodeStart).Seconds()

	r := bufio.NewReader(req)
	var cnt [4]byte
	if _, err := io.ReadFull(r, cnt[:]); err != nil {
		return fmt.Errorf("serving: reading batch count: %w", err)
	}
	n := int(binary.LittleEndian.Uint32(cnt[:]))
	w := bufio.NewWriter(resp)
	binary.LittleEndian.PutUint32(cnt[:], uint32(n))
	if _, err := w.Write(cnt[:]); err != nil {
		return err
	}
	infSpan := span.StartChild("inference")
	model.Trace = infSpan
	defer infSpan.Finish()
	var hdr [12]byte
	for i := 0; i < n; i++ {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return fmt.Errorf("serving: reading request %d: %w", i, err)
		}
		id := int64(binary.LittleEndian.Uint64(hdr[:8]))
		blen := int(binary.LittleEndian.Uint32(hdr[8:12]))
		blob := make([]byte, blen)
		if _, err := io.ReadFull(r, blob); err != nil {
			return fmt.Errorf("serving: reading blob %d: %w", i, err)
		}
		in, err := iotdata.KeyframeTensor(blob)
		if err != nil {
			return fmt.Errorf("serving: decoding keyframe %d: %w", i, err)
		}
		start := time.Now()
		idx, _, err := model.Predict(in)
		stats.inferSecs += time.Since(start).Seconds()
		if err != nil {
			return fmt.Errorf("serving: inference %d: %w", i, err)
		}
		binary.LittleEndian.PutUint64(hdr[:8], uint64(id))
		binary.LittleEndian.PutUint32(hdr[8:12], uint32(int32(idx)))
		if _, err := w.Write(hdr[:]); err != nil {
			return err
		}
	}
	return w.Flush()
}
