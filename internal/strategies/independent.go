package strategies

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"time"

	"repro/internal/colquery"
	"repro/internal/faults"
	"repro/internal/iotdata"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/qerr"
	"repro/internal/sqldb"
	"repro/internal/tensor"
)

// DBPyTorch is the independent-processing strategy: the database and the DL
// serving system are separate components, and the application layer
// coordinates them. The cross-system boundary is real — candidate keyframes
// are serialized over a byte pipe to a serving goroutine, which deserializes
// them, runs batch inference, and streams serialized predictions back. The
// serialization, transfer, and model-load time land in the loading bucket;
// only the forward passes count as inference; the two relational phases
// (candidate extraction and final merge query) count as relational cost.
type DBPyTorch struct{}

// Name implements Strategy.
func (s *DBPyTorch) Name() string { return "DB-PyTorch" }

// servingStats is what the serving component reports back alongside
// predictions.
type servingStats struct {
	decodeSecs float64 // model decode (loading)
	inferSecs  float64 // forward passes
}

// Execute implements Strategy.
func (s *DBPyTorch) Execute(ctx context.Context, env *Context, q *colquery.Query) (*sqldb.Result, CostBreakdown, error) {
	var bd CostBreakdown
	ctx, cancel := env.queryCtx(ctx)
	defer cancel()
	db := env.Dataset.DB
	ctx, root := obs.StartSpan(ctx, env.Tracer, "strategy:"+s.Name())
	defer root.Finish()

	// Phase 1 (relational): extract candidates with the database.
	candSpan := root.StartChild("relational:candidates")
	cands, relDur, err := videoSideCandidates(ctx, env, q, db.Profile)
	candSpan.SetAttr("candidates", len(cands))
	candSpan.Finish()
	if err != nil {
		return nil, bd, err
	}
	bd.Relational += relDur.Seconds()

	// Phase 2 (cross-system): ship candidates to the serving component once
	// per referenced model, batch style.
	preds := make(map[int64]map[string]sqldb.Datum, len(cands))
	for _, c := range cands {
		preds[c.videoID] = map[string]sqldb.Datum{}
	}
	var totalBytes int64
	for _, name := range q.UDFNames {
		b := env.Bindings[name]
		if b == nil {
			return nil, bd, fmt.Errorf("strategies: no model bound for %s", name)
		}
		// Memoization: candidates whose (model, keyframe) pair is cached
		// never cross the serving boundary — no serialization, no
		// transfer, no forward pass. Only the misses are batched out.
		serve := cands
		var keys []InferKey
		if env.InferCache != nil {
			serve = make([]candidate, 0, len(cands))
			keys = make([]InferKey, 0, len(cands))
			for _, c := range cands {
				key := InferKey{Model: b.artifactHash, Input: tensor.HashBytes(c.blob)}
				if idx, ok := env.InferCache.Get(key); ok {
					preds[c.videoID][name] = b.predictionDatum(idx)
					continue
				}
				serve = append(serve, c)
				keys = append(keys, key)
			}
		}
		if len(serve) == 0 {
			continue
		}
		// Scheduled serving: submit every miss to the cross-query scheduler
		// at once. Submissions coalesce into large serving batches (shared
		// with concurrent queries), identical blobs single-flight, and the
		// breaker/retry pipe still guards every physical batch — so error
		// classes, and with them the fallback ladder, are unchanged. Cost
		// shares come back per submission: only physical forward passes
		// (SourceBatch) charge inference and cross-system overhead.
		if env.Scheduler != nil {
			serveSpan := root.StartChild("serving:" + name)
			serveSpan.SetAttr("candidates", len(serve))
			serveSpan.SetAttr("scheduled", true)
			results, stats, wallShare, executed, err := env.schedServeCandidates(ctx, b, serve)
			serveSpan.Finish()
			if err != nil {
				return nil, bd, fmt.Errorf("strategies: serving %s: %w", name, err)
			}
			bd.Inference += env.Profile.ScaleInference(stats.inferSecs) +
				env.Profile.DLCallOverhead(executed)
			bd.Loading += wallShare - stats.inferSecs +
				env.Profile.DLLoadCost(stats.decodeSecs) - stats.decodeSecs
			for id, classIdx := range results {
				preds[id][name] = b.predictionDatum(classIdx)
			}
			totalBytes += int64(len(b.Artifact))
			for _, c := range serve {
				totalBytes += int64(len(c.blob))
			}
			continue
		}
		serveSpan := root.StartChild("serving:" + name)
		serveSpan.SetAttr("candidates", len(serve))
		xferStart := time.Now()
		results, stats, err := env.serveWithRetry(ctx, b.Artifact, serve, serveSpan)
		serveSpan.Finish()
		if err != nil {
			return nil, bd, fmt.Errorf("strategies: serving %s: %w", name, err)
		}
		wall := time.Since(xferStart).Seconds()
		// The serving pathway pays per-call framework dispatch overhead and
		// the heavier DL-framework model deserialization (see hwprofile).
		bd.Inference += env.Profile.ScaleInference(stats.inferSecs) +
			env.Profile.DLCallOverhead(len(serve))
		// Everything that is not a forward pass is cross-system overhead.
		bd.Loading += wall - stats.inferSecs +
			env.Profile.DLLoadCost(stats.decodeSecs) - stats.decodeSecs
		for id, classIdx := range results {
			preds[id][name] = b.predictionDatum(classIdx)
		}
		if env.InferCache != nil && ctx.Err() == nil {
			for i, c := range serve {
				if idx, ok := results[c.videoID]; ok {
					env.InferCache.Put(keys[i], idx)
				}
			}
		}
		totalBytes += int64(len(b.Artifact))
		for _, c := range serve {
			totalBytes += int64(len(c.blob))
		}
	}
	// GPU settings ship the model and the batch across the bus once.
	bd.Loading += env.Profile.TransferCost(totalBytes)

	// Phase 3 (relational): merge predictions back and run the final query.
	mergeSpan := root.StartChild("relational:final-merge")
	finStart := time.Now()
	predTable, err := buildPredictionsTable(env, q, preds, "pt")
	if err != nil {
		return nil, bd, err
	}
	defer db.DropTable(predTable)
	final := rewriteWithPredictions(q, predTable)
	res, err := db.ExecStmtContext(ctx, final, nil)
	if err != nil {
		return nil, bd, fmt.Errorf("strategies: DB-PyTorch final query: %w", err)
	}
	bd.Relational += time.Since(finStart).Seconds()
	mergeSpan.SetAttr("rows", res.NumRows())
	mergeSpan.Finish()
	bd.Relational = env.Profile.ScaleRelational(bd.Relational)
	env.recordBreakdown(s.Name(), bd)
	return res, bd, nil
}

// serveBatch runs the serving component for one model over the candidate
// batch. The request and response cross real byte pipes: keyframes are
// serialized by the application side, deserialized by the serving side, and
// predictions come back the same way — the paper's serialization /
// de-serialization overhead is physically incurred.
//
// Failures of the pipe itself (truncated responses, a dead serving loop)
// surface as qerr.ErrServingUnavailable so the retry loop and fallback
// ladder can tell them from data errors. Cancellation of ctx tears both
// pipes down, which unblocks every goroutine — nothing leaks.
func serveBatch(ctx context.Context, inj *faults.Injector, artifact []byte, cands []candidate, span *obs.Span) (map[int64]int, *servingStats, error) {
	if err := inj.Hit(ctx, faults.PointServingError); err != nil {
		return nil, nil, fmt.Errorf("serving: %w", err)
	}
	reqR, reqW := io.Pipe()
	respR, respW := io.Pipe()
	stats := &servingStats{}
	serveErr := make(chan error, 1)

	// Watchdog: a done context closes both pipes, failing every blocked
	// read/write with the classified lifecycle error.
	watchStop := make(chan struct{})
	defer close(watchStop)
	if ctx != nil && ctx.Done() != nil {
		go func() {
			select {
			case <-ctx.Done():
				cause := qerr.FromContext(ctx.Err())
				reqR.CloseWithError(cause)
				respW.CloseWithError(cause)
			case <-watchStop:
			}
		}()
	}

	go func() {
		serveErr <- servingLoop(ctx, inj, artifact, reqR, respW, stats, span)
	}()

	// Application side: serialize the batch.
	writeErr := make(chan error, 1)
	go func() {
		w := bufio.NewWriter(reqW)
		var hdr [12]byte
		binary.LittleEndian.PutUint32(hdr[:4], uint32(len(cands)))
		if _, err := w.Write(hdr[:4]); err != nil {
			writeErr <- err
			return
		}
		for _, c := range cands {
			binary.LittleEndian.PutUint64(hdr[:8], uint64(c.videoID))
			binary.LittleEndian.PutUint32(hdr[8:12], uint32(len(c.blob)))
			if _, err := w.Write(hdr[:12]); err != nil {
				writeErr <- err
				return
			}
			if _, err := w.Write(c.blob); err != nil {
				writeErr <- err
				return
			}
		}
		if err := w.Flush(); err != nil {
			writeErr <- err
			return
		}
		writeErr <- reqW.Close()
	}()

	// Application side: deserialize predictions. A short or broken response
	// stream means the serving component died mid-batch: drain its actual
	// error if it reported one, else classify the pipe failure itself.
	out := make(map[int64]int, len(cands))
	r := bufio.NewReader(respR)
	readFail := func(i int, err error) error {
		// Let the serving loop finish so its (more precise) error wins and
		// no goroutine outlives the call.
		reqR.CloseWithError(err)
		<-writeErr
		if serr := <-serveErr; serr != nil {
			return serr
		}
		if qerr.Lifecycle(err) {
			return err
		}
		return fmt.Errorf("%w: reading prediction %d: %v", qerr.ErrServingUnavailable, i, err)
	}
	var cnt [4]byte
	if _, err := io.ReadFull(r, cnt[:]); err != nil {
		return nil, nil, readFail(-1, err)
	}
	n := int(binary.LittleEndian.Uint32(cnt[:]))
	var rec [12]byte
	for i := 0; i < n; i++ {
		if _, err := io.ReadFull(r, rec[:]); err != nil {
			return nil, nil, readFail(i, err)
		}
		id := int64(binary.LittleEndian.Uint64(rec[:8]))
		out[id] = int(int32(binary.LittleEndian.Uint32(rec[8:12])))
	}
	if err := <-writeErr; err != nil {
		if qerr.Lifecycle(err) {
			return nil, nil, err
		}
		return nil, nil, fmt.Errorf("%w: writing request batch: %v", qerr.ErrServingUnavailable, err)
	}
	if err := <-serveErr; err != nil {
		return nil, nil, err
	}
	return out, stats, nil
}

// servingLoop is the DL system: it loads the model artifact, reads
// serialized keyframes, runs inference, and writes serialized predictions.
// A panic anywhere in the loop (malformed artifact, tensor shape bug) is
// recovered and reported as a serving failure rather than crashing the
// process.
func servingLoop(ctx context.Context, inj *faults.Injector, artifact []byte, req *io.PipeReader, resp *io.PipeWriter, stats *servingStats, span *obs.Span) (err error) {
	defer resp.Close()
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%w: %v", qerr.ErrServingUnavailable, qerr.Recovered("serving loop", r))
		}
	}()
	// The hang fault blocks here — before the loop answers anything — until
	// its d= elapses or the attempt context expires.
	if err := inj.Hit(ctx, faults.PointServingHang); err != nil {
		return fmt.Errorf("serving: %w", err)
	}
	decodeSpan := span.StartChild("loading:decode-model")
	decodeStart := time.Now()
	model, err := nn.DecodeBytes(artifact)
	decodeSpan.Finish()
	if err != nil {
		return fmt.Errorf("%w: decoding model: %v", qerr.ErrServingUnavailable, err)
	}
	stats.decodeSecs = time.Since(decodeStart).Seconds()

	r := bufio.NewReader(req)
	var cnt [4]byte
	if _, err := io.ReadFull(r, cnt[:]); err != nil {
		return servingPipeErr("reading batch count", err)
	}
	n := int(binary.LittleEndian.Uint32(cnt[:]))
	w := bufio.NewWriter(resp)
	binary.LittleEndian.PutUint32(cnt[:], uint32(n))
	if _, err := w.Write(cnt[:]); err != nil {
		return servingPipeErr("writing response count", err)
	}
	infSpan := span.StartChild("inference")
	model.Trace = infSpan
	defer infSpan.Finish()
	var hdr [12]byte
	for i := 0; i < n; i++ {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return servingPipeErr(fmt.Sprintf("reading request %d", i), err)
		}
		id := int64(binary.LittleEndian.Uint64(hdr[:8]))
		blen := int(binary.LittleEndian.Uint32(hdr[8:12]))
		blob := make([]byte, blen)
		if _, err := io.ReadFull(r, blob); err != nil {
			return servingPipeErr(fmt.Sprintf("reading blob %d", i), err)
		}
		in, err := iotdata.KeyframeTensor(blob)
		if err != nil {
			return fmt.Errorf("serving: decoding keyframe %d: %w", i, err)
		}
		start := time.Now()
		idx, _, err := model.Predict(in)
		stats.inferSecs += time.Since(start).Seconds()
		stratAcctFrom(ctx).noteInfer(1)
		if err != nil {
			return fmt.Errorf("serving: inference %d: %w", i, err)
		}
		// The partial-response fault kills the serving component mid-batch:
		// the response stream is truncated (everything buffered so far is
		// flushed, then the pipe closes) and the application side sees a
		// short read.
		if n > 1 && i == n/2 && inj.Active(faults.PointServingPartial) {
			if ferr := inj.Hit(ctx, faults.PointServingPartial); ferr != nil {
				w.Flush()
				return fmt.Errorf("serving: died mid-batch after %d of %d predictions: %w", i, n, ferr)
			}
		}
		binary.LittleEndian.PutUint64(hdr[:8], uint64(id))
		binary.LittleEndian.PutUint32(hdr[8:12], uint32(int32(idx)))
		if _, err := w.Write(hdr[:]); err != nil {
			return servingPipeErr(fmt.Sprintf("writing prediction %d", i), err)
		}
	}
	if err := w.Flush(); err != nil {
		return servingPipeErr("flushing response", err)
	}
	return nil
}

// servingPipeErr classifies a serving-side pipe failure: lifecycle causes
// (the cancellation watchdog closed the pipe) pass through, anything else
// becomes a serving-availability error.
func servingPipeErr(op string, err error) error {
	if qerr.Lifecycle(err) {
		return err
	}
	return fmt.Errorf("%w: serving: %s: %v", qerr.ErrServingUnavailable, op, err)
}
