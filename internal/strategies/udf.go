package strategies

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/colquery"
	"repro/internal/faults"
	"repro/internal/iotdata"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/schedule"
	"repro/internal/sqldb"
	"repro/internal/tensor"
)

// DBUDF is the loose-integration strategy: the compiled model artifact is
// linked into the database as a built-in scalar UDF, and the collaborative
// query executes unmodified. The optimizer sees the UDF as a black box
// (its cost and selectivity are unknown), which is exactly the limitation
// Table III records for this approach.
type DBUDF struct{}

// Name implements Strategy.
func (s *DBUDF) Name() string { return "DB-UDF" }

// Execute implements Strategy.
func (s *DBUDF) Execute(ctx context.Context, env *Context, q *colquery.Query) (*sqldb.Result, CostBreakdown, error) {
	db := env.Dataset.DB
	var bd CostBreakdown
	ctx, cancel := env.queryCtx(ctx)
	defer cancel()
	ctx, root := obs.StartSpan(ctx, env.Tracer, "strategy:"+s.Name())
	defer root.Finish()

	// Loading: the database "recompilation" — decode each compiled artifact
	// into an executable model. On GPU settings the weights also cross the
	// PCIe bus once. A decode failure (here, the udf.decode fault point) is
	// an availability problem — the fallback ladder degrades it to DL2SQL.
	var models = map[string]*nn.Model{}
	loadSpan := root.StartChild("loading:decode-models")
	loadStart := time.Now()
	var modelBytes int64
	for _, name := range q.UDFNames {
		b := env.Bindings[name]
		if b == nil {
			return nil, bd, fmt.Errorf("strategies: no model bound for %s", name)
		}
		if err := env.Faults.Hit(ctx, faults.PointUDFDecode); err != nil {
			return nil, bd, fmt.Errorf("strategies: loading UDF %s: %w", name, err)
		}
		m, err := nn.DecodeBytes(b.Artifact)
		if err != nil {
			return nil, bd, fmt.Errorf("strategies: loading UDF %s: %w", name, err)
		}
		models[name] = m
		modelBytes += int64(len(b.Artifact))
	}
	bd.Loading += env.Profile.DLLoadCost(time.Since(loadStart).Seconds()) +
		env.Profile.TransferCost(modelBytes)
	loadSpan.Finish()

	// Register the UDFs. Each call decodes the keyframe and runs native
	// inference; inference time accumulates separately from the enclosing
	// relational execution. querySpan is assigned before the query runs so
	// the per-call inference spans created inside each UDF nest under it.
	// The UDFs are ParallelSafe: the morsel-driven executor may invoke them
	// from several workers at once, so the shared accounting counters sit
	// behind a mutex and each call runs a shallow per-call copy of the
	// model (layers/weights are read-only during Forward; only the Trace
	// attachment point is per-call state).
	var querySpan *obs.Span
	var mu sync.Mutex
	var inferSecs float64
	var calls int
	var keyframeBytes int64
	for _, name := range q.UDFNames {
		name := name
		b := env.Bindings[name]
		m := models[name]
		db.RegisterUDF(&sqldb.ScalarUDF{
			Name:         name,
			Arity:        1,
			ParallelSafe: true,
			Fn: func(args []sqldb.Datum) (sqldb.Datum, error) {
				if args[0].T != sqldb.TBlob {
					return sqldb.Null(), fmt.Errorf("%s expects a keyframe blob", name)
				}
				// Scheduled call: the forward pass is submitted to the
				// cross-query scheduler, where it coalesces with other
				// queries' requests into one batched MatMul (the scheduler
				// consults the shared cache and single-flights duplicates
				// itself). Only physical forward passes — SourceBatch —
				// charge inference time: this waiter's share of the batch.
				if env.Scheduler != nil {
					r, err := env.schedInfer(ctx, env.schedNative, b, args[0].B)
					if err != nil {
						return sqldb.Null(), err
					}
					if r.Source == schedule.SourceBatch {
						mu.Lock()
						inferSecs += r.InferSeconds
						calls++
						keyframeBytes += int64(len(args[0].B))
						mu.Unlock()
					}
					return b.predictionDatum(r.Class), nil
				}
				// Memoized call: identical (model, keyframe) pairs skip
				// the forward pass — and its inference-time accounting —
				// entirely. The key hashes the raw blob, so hits are
				// shared with DB-PyTorch runs over the same candidates.
				var key InferKey
				if env.InferCache != nil {
					key = InferKey{Model: b.artifactHash, Input: tensor.HashBytes(args[0].B)}
					if idx, ok := env.InferCache.Get(key); ok {
						return b.predictionDatum(idx), nil
					}
				}
				in, err := iotdata.KeyframeTensor(args[0].B)
				if err != nil {
					return sqldb.Null(), err
				}
				// The inference-time accounting read doubles as the call
				// span's start/end, so tracing a call adds no clock reads.
				start := time.Now()
				callSpan := querySpan.StartChildAt("inference:"+name, start)
				mc := *m
				mc.Trace = callSpan
				idx, _, err := mc.Predict(in)
				wall := time.Since(start)
				elapsed := wall.Seconds()
				stratAcctFrom(ctx).noteInfer(1)
				callSpan.FinishAt(start.Add(wall))
				mu.Lock()
				inferSecs += elapsed
				calls++
				keyframeBytes += int64(len(args[0].B))
				mu.Unlock()
				if err != nil {
					return sqldb.Null(), err
				}
				if env.InferCache != nil && ctx.Err() == nil {
					env.InferCache.Put(key, idx)
				}
				return b.predictionDatum(idx), nil
			},
			// A black-box UDF: the engine falls back to its default cost
			// guess and assumes no selectivity.
		})
	}
	defer func() {
		for _, name := range q.UDFNames {
			db.UnregisterUDF(name)
		}
	}()

	querySpan = root.StartChild("relational:query")
	wallStart := time.Now()
	res, err := db.ExecContext(ctx, q.SQL)
	wall := time.Since(wallStart).Seconds()
	querySpan.SetAttr("udf_calls", calls)
	querySpan.Finish()
	if err != nil {
		return nil, bd, fmt.Errorf("strategies: DB-UDF execution: %w", err)
	}

	// Per-call device transfers: a UDF runs row-at-a-time, so on GPU each
	// call ships one keyframe and pays the launch overhead — the paper's
	// observation that DB-UDF is the one approach the GPU does not help.
	if env.Profile.UsesGPU && calls > 0 {
		perCall := env.Profile.TransferBaseSec*float64(calls) +
			float64(keyframeBytes)/1e6*env.Profile.TransferSecPerMB
		bd.Loading += perCall
	}
	// The UDF pathway pays the DL framework's per-call dispatch overhead on
	// top of the raw forward passes (see hwprofile).
	bd.Inference += env.Profile.ScaleInference(inferSecs) + env.Profile.DLCallOverhead(calls)
	bd.Relational += env.Profile.ScaleRelational(wall - inferSecs)
	env.recordBreakdown(s.Name(), bd)
	return res, bd, nil
}
