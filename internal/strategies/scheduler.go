package strategies

// Cross-query inference scheduling for the UDF-shaped strategies.
//
// With a scheduler enabled, DB-UDF and DB-PyTorch stop running forward
// passes strategy-locally and submit every (artifact, keyframe) request to
// the shared schedule.Scheduler instead. Concurrent queries' requests
// coalesce into large batched MatMuls, identical in-flight requests
// single-flight onto one computation, and the scheduler's shared cache is
// the same LRU as Context.InferCache — so memoization keeps working across
// both layers and both strategies.
//
// Two backends are wired: the native one (in-process nn.PredictBatch, used
// by DB-UDF) and a serving one that routes coalesced batches through the
// existing DB-PyTorch serving pipe — breaker, retry loop, and fault points
// included, so the fallback ladder sees exactly the error classes it
// would without the scheduler.

import (
	"context"
	"fmt"

	"repro/internal/obs"
	"repro/internal/qerr"
	"repro/internal/schedule"
)

// EnableScheduler wires a cross-query inference scheduler into the
// strategies layer and returns it (callers hand it to the server and to
// schedule.RegisterSysTable). Zero-value cfg fields inherit the Context's
// own wiring: the shared prediction cache defaults to env.InferCache (set
// Metrics / EnableInferCache first so instruments and memoization are
// shared), the metrics registry to env.Metrics, and the fault injector to
// env.Faults. Call with env.Scheduler = nil semantics in mind: strategies
// only route through the scheduler while the field is non-nil, so tests
// flip it off by clearing the field.
func (env *Context) EnableScheduler(cfg schedule.Config) *schedule.Scheduler {
	if cfg.Cache == nil {
		cfg.Cache = env.InferCache
	}
	if cfg.Metrics == nil {
		cfg.Metrics = env.Metrics
	}
	if cfg.Faults == nil {
		cfg.Faults = env.Faults
	}
	env.Scheduler = schedule.New(cfg)
	env.schedNative = schedule.NewNativeBackend(schedModelCacheCap)
	env.schedServing = &schedule.Backend{ID: "serving", Run: env.runServingBatch}
	return env.Scheduler
}

// schedModelCacheCap bounds the native backend's decoded-model LRU: the
// repository holds a handful of models, so 8 keeps every hot artifact
// decoded without unbounded growth.
const schedModelCacheCap = 8

// runServingBatch adapts the DB-PyTorch serving pipe to the scheduler's
// Backend contract: one coalesced batch becomes one serveWithRetry call
// (breaker, retry policy, and serving fault points all apply), with the
// batch positions standing in for video IDs on the wire.
func (env *Context) runServingBatch(ctx context.Context, artifact []byte, blobs [][]byte) ([]int, schedule.BackendStats, error) {
	cands := make([]candidate, len(blobs))
	for i, b := range blobs {
		cands[i] = candidate{videoID: int64(i), blob: b}
	}
	var span *obs.Span
	if env.Tracer != nil {
		span = env.Tracer.StartSpan("scheduler:serving-batch")
		span.SetAttr("batch", len(blobs))
		defer span.Finish()
	}
	results, stats, err := env.serveWithRetry(ctx, artifact, cands, span)
	if err != nil {
		return nil, schedule.BackendStats{}, err
	}
	out := make([]int, len(blobs))
	for i := range blobs {
		idx, ok := results[int64(i)]
		if !ok {
			return nil, schedule.BackendStats{}, fmt.Errorf("%w: serving batch lost prediction %d of %d",
				qerr.ErrServingUnavailable, i, len(blobs))
		}
		out[i] = idx
	}
	return out, schedule.BackendStats{DecodeSeconds: stats.decodeSecs, InferSeconds: stats.inferSecs}, nil
}

// schedServeCandidates routes one model's cache-missing candidates
// through the scheduler's serving backend, one submission per candidate,
// all in flight at once so they coalesce — with each other and with
// concurrent queries' submissions — into large serving batches. It
// returns videoID→class predictions plus this query's cost shares:
// serving stats (decode/infer share), total batch-wall share, and the
// number of physical forward passes charged to this query. The first
// submission error wins (remaining submissions still drain; their batches
// complete under the scheduler's own context).
func (env *Context) schedServeCandidates(ctx context.Context, b *UDFBinding, cands []candidate) (map[int64]int, servingStats, float64, int, error) {
	type schedOut struct {
		i   int
		r   schedule.Result
		err error
	}
	ch := make(chan schedOut, len(cands))
	for i, c := range cands {
		go func(i int, blob []byte) {
			r, err := env.schedInfer(ctx, env.schedServing, b, blob)
			ch <- schedOut{i: i, r: r, err: err}
		}(i, c.blob)
	}
	results := make(map[int64]int, len(cands))
	var stats servingStats
	var wallShare float64
	var executed int
	var firstErr error
	for range cands {
		out := <-ch
		if out.err != nil {
			if firstErr == nil {
				firstErr = out.err
			}
			continue
		}
		results[cands[out.i].videoID] = out.r.Class
		if out.r.Source == schedule.SourceBatch {
			stats.inferSecs += out.r.InferSeconds
			stats.decodeSecs += out.r.DecodeSeconds
			wallShare += out.r.WallSeconds
			executed++
		}
	}
	if firstErr != nil {
		return nil, servingStats{}, 0, 0, firstErr
	}
	return results, stats, wallShare, executed, nil
}

// schedInfer submits one inference through the scheduler and charges the
// per-query accounting: a SourceBatch result was a physical forward pass
// (this waiter's share of it); dedup followers and cache hits paid no
// compute and charge nothing.
func (env *Context) schedInfer(ctx context.Context, be *schedule.Backend, b *UDFBinding, blob []byte) (schedule.Result, error) {
	r, err := env.Scheduler.Infer(ctx, be, b.artifactHash, b.Artifact, blob)
	if err != nil {
		return r, err
	}
	if r.Source == schedule.SourceBatch {
		stratAcctFrom(ctx).noteInfer(1)
	}
	return r, nil
}
