package strategies

import (
	"context"
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/colquery"
	"repro/internal/dl2sql"
	"repro/internal/faults"
	"repro/internal/iotdata"
	"repro/internal/obs"
	"repro/internal/sqldb"
	"repro/internal/tensor"
)

// DL2SQL is the tight-integration strategy: every nUDF's model is stored as
// relational tables and its inference executes as native SQL in the same
// database that holds the IoT data. The unoptimized configuration evaluates
// the nUDF for every keyframe selected by the video-side predicates
// (scan-time evaluation); the Optimized configuration (DL2SQL-OP) applies
// Section IV: the customized cost model plus hint rules decide whether to
// delay the nUDF behind the relational predicates, attach Eq. 9–10
// selectivities, and switch nUDF joins to the symmetric hash join.
type DL2SQL struct {
	Optimized bool
	// PreJoin selects the Fig. 11 pre-join strategy.
	PreJoin dl2sql.PreJoinStrategy
	// Batched runs all candidate keyframes through one SampleID-keyed SQL
	// pipeline per model instead of one pipeline per keyframe — the batch
	// execution the paper describes for nUDFs.
	Batched bool
	// LastSteps exposes the translator steps of the most recent Execute
	// (for the Fig. 9/10 breakdowns).
	LastSteps []dl2sql.StepCost
}

var dl2sqlSeq atomic.Int64

// Name implements Strategy.
func (s *DL2SQL) Name() string {
	if s.Optimized {
		return "DL2SQL-OP"
	}
	return "DL2SQL"
}

// Execute implements Strategy.
func (s *DL2SQL) Execute(ctx context.Context, env *Context, q *colquery.Query) (*sqldb.Result, CostBreakdown, error) {
	var bd CostBreakdown
	ctx, cancel := env.queryCtx(ctx)
	defer cancel()
	db := env.Dataset.DB
	ctx, root := obs.StartSpan(ctx, env.Tracer, "strategy:"+s.Name())
	defer root.Finish()

	// Build hints (DL2SQL-OP only).
	var h *sqldb.QueryHints
	if s.Optimized && env.HintProvider != nil {
		relRows := float64(db.GetTable("video").NumRows())
		relSel := estimateRelationalSelectivity(ctx, env, q)
		h = env.HintProvider.BuildHints(q, relRows, relSel)
	}

	// Loading: store every referenced model as relational tables.
	translators := map[string]*dl2sql.Translator{}
	stored := map[string]*dl2sql.StoredModel{}
	loadSpan := root.StartChild("loading:store-models")
	loadStart := time.Now()
	for _, name := range q.UDFNames {
		b := env.Bindings[name]
		if b == nil {
			return nil, bd, fmt.Errorf("strategies: no model bound for %s", name)
		}
		tr := dl2sql.NewTranslator(db, fmt.Sprintf("dl2sql_%s_%d", sanitize(name), dl2sqlSeq.Add(1)))
		tr.PreJoin = s.PreJoin
		tr.Hints = h
		tr.Cache = env.SQLCache
		tr.Ctx = ctx
		if err := env.Faults.Hit(ctx, faults.PointDL2SQLTranslate); err != nil {
			return nil, bd, fmt.Errorf("strategies: storing model for %s: %w", name, err)
		}
		sm, err := tr.StoreModel(b.Entry.Model)
		if err != nil {
			return nil, bd, fmt.Errorf("strategies: storing model for %s: %w", name, err)
		}
		translators[name] = tr
		stored[name] = sm
	}
	bd.Loading += time.Since(loadStart).Seconds()
	loadSpan.Finish()
	defer func() {
		for name, sm := range stored {
			for _, t := range sm.TableNames() {
				db.DropTable(t)
			}
			_ = name
		}
	}()

	// Candidate selection: rule 1. Scan-time evaluation infers every
	// keyframe the video-side predicates keep; delayed evaluation (OP, when
	// the cost comparison favours it) infers only tuples surviving all
	// relational predicates.
	candSpan := root.StartChild("relational:candidates")
	var cands []candidate
	var relDur time.Duration
	var err error
	if s.Optimized && h != nil && h.DelayUDFs != nil && *h.DelayUDFs {
		cands, relDur, err = prunedCandidates(ctx, env, q, h)
	} else {
		cands, relDur, err = videoSideCandidates(ctx, env, q, db.Profile)
	}
	candSpan.SetAttr("candidates", len(cands))
	candSpan.Finish()
	if err != nil {
		return nil, bd, err
	}
	bd.Relational += relDur.Seconds()

	// SQL inference per candidate per model.
	preds := make(map[int64]map[string]sqldb.Datum, len(cands))
	s.LastSteps = nil
	for _, c := range cands {
		preds[c.videoID] = map[string]sqldb.Datum{}
	}
	infSpan := root.StartChild("inference")
	for _, name := range q.UDFNames {
		tr := translators[name]
		sm := stored[name]
		b := env.Bindings[name]
		modelSpan := infSpan.StartChild("model:" + name)
		tr.Span = modelSpan
		if s.Batched && len(cands) > 0 {
			ins := make([]*tensor.Tensor, len(cands))
			for i, c := range cands {
				in, err := iotdata.KeyframeTensor(c.blob)
				if err != nil {
					return nil, bd, fmt.Errorf("strategies: keyframe %d: %w", c.videoID, err)
				}
				ins[i] = in
			}
			tr.ResetSteps()
			wallStart := time.Now()
			idxs, err := tr.InferBatch(sm, ins)
			wall := time.Since(wallStart).Seconds()
			if err != nil {
				return nil, bd, fmt.Errorf("strategies: batched SQL inference for %s: %w", name, err)
			}
			sqlSecs := tr.StepTotal().Seconds()
			bd.Inference += env.Profile.ScaleRelational(sqlSecs)
			bd.Loading += wall - sqlSecs
			s.LastSteps = append(s.LastSteps, tr.Steps...)
			for i, c := range cands {
				preds[c.videoID][name] = b.predictionDatum(idxs[i])
			}
			modelSpan.Finish()
			continue
		}
		for _, c := range cands {
			in, err := iotdata.KeyframeTensor(c.blob)
			if err != nil {
				return nil, bd, fmt.Errorf("strategies: keyframe %d: %w", c.videoID, err)
			}
			tr.ResetSteps()
			wallStart := time.Now()
			idx, _, err := tr.Infer(sm, in)
			wall := time.Since(wallStart).Seconds()
			if err != nil {
				return nil, bd, fmt.Errorf("strategies: SQL inference for %s: %w", name, err)
			}
			sqlSecs := tr.StepTotal().Seconds()
			// The SQL pipeline is the inference; encoding the input into
			// the feature-map table is data loading.
			bd.Inference += env.Profile.ScaleRelational(sqlSecs)
			bd.Loading += wall - sqlSecs
			s.LastSteps = append(s.LastSteps, tr.Steps...)
			preds[c.videoID][name] = b.predictionDatum(idx)
		}
		modelSpan.Finish()
	}
	infSpan.Finish()

	// Final relational merge.
	mergeSpan := root.StartChild("relational:final-merge")
	finStart := time.Now()
	predTable, err := buildPredictionsTable(env, q, preds, "dl2sql")
	if err != nil {
		return nil, bd, err
	}
	defer db.DropTable(predTable)
	final := rewriteWithPredictions(q, predTable)
	res, err := db.ExecStmtContext(ctx, final, h)
	if err != nil {
		return nil, bd, fmt.Errorf("strategies: DL2SQL final query: %w", err)
	}
	bd.Relational += time.Since(finStart).Seconds()
	mergeSpan.SetAttr("rows", res.NumRows())
	mergeSpan.Finish()
	bd.Relational = env.Profile.ScaleRelational(bd.Relational)
	env.recordBreakdown(s.Name(), bd)
	return res, bd, nil
}

// estimateRelationalSelectivity estimates the accumulated selectivity of
// the non-UDF predicates by cheap sampling: it counts the fabric rows the
// single-relation fabric predicates keep (the dominant pruning factor in
// every template).
func estimateRelationalSelectivity(ctx context.Context, env *Context, q *colquery.Query) float64 {
	db := env.Dataset.DB
	var fabricConds []string
	for _, c := range whereConjuncts(q.Stmt) {
		if len(findNUDFs(c)) > 0 {
			continue
		}
		rels := exprRelations(c)
		if len(rels) == 1 && rels[0] == "f" {
			fabricConds = append(fabricConds, c.String())
		}
	}
	if len(fabricConds) == 0 {
		return 1
	}
	total := db.GetTable("fabric").NumRows()
	if total == 0 {
		return 1
	}
	res, err := db.QueryContext(ctx, "SELECT count(*) c FROM fabric F WHERE "+strings.Join(fabricConds, " AND "))
	if err != nil {
		return 1
	}
	kept, _ := res.Cols[0].Get(0).AsInt()
	return float64(kept) / float64(total)
}

func sanitize(name string) string {
	return strings.Map(func(r rune) rune {
		if r >= 'a' && r <= 'z' || r >= '0' && r <= '9' || r == '_' {
			return r
		}
		return '_'
	}, strings.ToLower(name))
}
