package strategies

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/obs"
)

// obsContext arms the full observability stack on a test Context: a shared
// metrics registry and query-history ring wired into both the strategy
// layer and the engine, plus the sys.* catalog with live strategy state.
func obsContext(t *testing.T) *Context {
	t.Helper()
	env := testContext(t)
	env.Metrics = obs.NewRegistry()
	env.History = obs.NewQueryHistory(64)
	db := env.Dataset.DB
	db.Metrics = env.Metrics
	db.History = env.History
	db.EnableSysCatalog()
	env.AttachObservability(db)
	return env
}

// TestFallbackObservedEndToEnd is the fallback-ladder observability test:
// a chaos-injected serving failure degrades DB-PyTorch -> DB-UDF, and the
// degradation must be visible relationally — the FallbackPath in the
// recorded history, the per-node actuals in EXPLAIN ANALYZE over the very
// table holding that record.
func TestFallbackObservedEndToEnd(t *testing.T) {
	env := obsContext(t)
	env.Retry = RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, JitterSeed: 3}
	env.Faults = faults.New(1, faults.Rule{Point: faults.PointServingError})
	q := fallbackQuery(t)

	res, bd, err := ExecuteWithFallback(context.Background(), env, &DBPyTorch{}, q)
	if err != nil {
		t.Fatalf("fallback execution failed: %v", err)
	}
	if res == nil || res.NumRows() == 0 {
		t.Fatal("degraded execution returned no rows")
	}
	if want := []string{"DB-PyTorch", "DB-UDF"}; len(bd.FallbackPath) != 2 ||
		bd.FallbackPath[0] != want[0] || bd.FallbackPath[1] != want[1] {
		t.Fatalf("FallbackPath = %v, want %v", bd.FallbackPath, want)
	}

	// The strategy-level record carries what the engine recorder cannot
	// see: final strategy, fallback path, serving retries, forward passes.
	var rec *obs.QueryRecord
	for _, r := range env.History.Snapshot() {
		if r.Fallback != "" {
			r := r
			rec = &r
		}
	}
	if rec == nil {
		t.Fatal("no fallback record in history")
	}
	if rec.Strategy != "DB-UDF" || rec.Fallback != "DB-PyTorch->DB-UDF" {
		t.Fatalf("record strategy=%q fallback=%q, want DB-UDF / DB-PyTorch->DB-UDF", rec.Strategy, rec.Fallback)
	}
	if rec.Retries < 1 {
		t.Errorf("record retries = %d, want >= 1 (serving retry before degradation)", rec.Retries)
	}
	if rec.InferCalls == 0 {
		t.Errorf("record infer_calls = 0, want > 0 (DB-UDF forward passes)")
	}
	if rec.ErrClass != "" || rec.RowsOut != int64(res.NumRows()) {
		t.Errorf("record err_class=%q rows_out=%d, want clean record with %d rows", rec.ErrClass, rec.RowsOut, res.NumRows())
	}

	// The same record is queryable through the engine, and EXPLAIN ANALYZE
	// over the sys table still carries per-node actuals post-degradation.
	db := env.Dataset.DB
	sel, err := db.Query(`SELECT strategy, fallback, retries, infer_calls FROM sys.queries WHERE fallback <> ''`)
	if err != nil {
		t.Fatal(err)
	}
	if sel.NumRows() != 1 || sel.Cols[0].Get(0).S != "DB-UDF" {
		t.Fatalf("sys.queries fallback rows = %d", sel.NumRows())
	}
	ea, err := db.Exec(`EXPLAIN ANALYZE SELECT strategy FROM sys.queries WHERE fallback <> ''`)
	if err != nil {
		t.Fatal(err)
	}
	var plan strings.Builder
	for i := 0; i < ea.NumRows(); i++ {
		plan.WriteString(ea.Cols[0].Get(i).S + "\n")
	}
	if !strings.Contains(plan.String(), "SysScan sys.queries") ||
		!strings.Contains(plan.String(), "actual rows=") {
		t.Fatalf("EXPLAIN ANALYZE lost per-node actuals after degradation:\n%s", plan.String())
	}

	// The fallback hop counters use the canonical names.
	if got := env.Metrics.Counter(obs.FallbackMetric("DB-PyTorch", "DB-UDF")).Value(); got != 1 {
		t.Errorf("fallback hop counter = %d, want 1", got)
	}
	if got := env.Metrics.Counter(obs.MetricServingRetries).Value(); got < 1 {
		t.Errorf("serving retries counter = %d, want >= 1", got)
	}
}

func TestStrategyHistoryRecordsErrors(t *testing.T) {
	env := obsContext(t)
	env.Retry = RetryPolicy{MaxAttempts: 1, BaseDelay: time.Millisecond, JitterSeed: 3}
	env.Faults = faults.New(1,
		faults.Rule{Point: faults.PointServingError},
		faults.Rule{Point: faults.PointUDFDecode},
		faults.Rule{Point: faults.PointDL2SQLTranslate})
	if _, _, err := ExecuteWithFallback(context.Background(), env, &DBPyTorch{}, fallbackQuery(t)); err == nil {
		t.Fatal("exhausted ladder unexpectedly succeeded")
	}
	recs := env.History.Snapshot()
	rec := recs[len(recs)-1]
	if rec.Strategy != "DL2SQL" || rec.ErrClass != "serving_unavailable" || rec.Err == "" {
		t.Fatalf("error record = strategy %q class %q, want DL2SQL / serving_unavailable", rec.Strategy, rec.ErrClass)
	}
}

func TestSysBreakerLiveRows(t *testing.T) {
	env := obsContext(t)
	env.Breaker = &Breaker{FailThreshold: 2, Cooldown: time.Minute}
	db := env.Dataset.DB

	res, err := db.Query(`SELECT component, state, trips FROM sys.breaker`)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 1 || res.Cols[1].Get(0).S != "closed" {
		t.Fatalf("initial breaker row: %d rows, state %v", res.NumRows(), res.Cols[1].Get(0))
	}

	env.Breaker.Record(false)
	env.Breaker.Record(false)
	res, err = db.Query(`SELECT state, trips, fail_threshold FROM sys.breaker WHERE state = 'open'`)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 1 || res.Cols[1].Get(0).I != 1 || res.Cols[2].Get(0).I != 2 {
		t.Fatalf("tripped breaker row missing: %d rows", res.NumRows())
	}
}

func TestSysCacheInferenceRow(t *testing.T) {
	env := obsContext(t)
	env.EnableInferCache(32)
	env.InferCache.Put(InferKey{Model: 1, Input: 2}, 3)
	env.InferCache.Get(InferKey{Model: 1, Input: 2})

	res, err := env.Dataset.DB.Query(`SELECT cache, hits, len FROM sys.cache WHERE cache = 'inference'`)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 1 || res.Cols[1].Get(0).I != 1 || res.Cols[2].Get(0).I != 1 {
		t.Fatalf("inference cache row = %d rows", res.NumRows())
	}
}

func TestStrategyMetricNamesWellFormed(t *testing.T) {
	env := obsContext(t)
	if _, _, err := ExecuteWithFallback(context.Background(), env, &DBUDF{}, fallbackQuery(t)); err != nil {
		t.Fatal(err)
	}
	if err := env.Metrics.Check(); err != nil {
		t.Fatalf("registry self-check after strategy run: %v", err)
	}
	// Engine-level records from the inner relational queries interleave
	// with the strategy-level record in the shared ring.
	var sawSQL, sawStrategy bool
	for _, r := range env.History.Snapshot() {
		switch r.Strategy {
		case "sql":
			sawSQL = true
		case "DB-UDF":
			sawStrategy = true
		}
	}
	if !sawSQL || !sawStrategy {
		t.Fatalf("shared ring missing layers: engine=%v strategy=%v", sawSQL, sawStrategy)
	}
}
