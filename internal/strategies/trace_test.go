package strategies

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/colquery"
	"repro/internal/obs"
)

// collectNames walks a span tree collecting every span name.
func collectNames(sp *obs.Span, out map[string]int) {
	if sp == nil {
		return
	}
	out[sp.Name]++
	for _, c := range sp.Children() {
		collectNames(c, out)
	}
}

// TestStrategyTraces is the acceptance test for strategy-level tracing:
// every strategy executed with a tracer must produce one root span with
// nested loading / inference / relational phase spans, and the whole tree
// must export as Chrome-loadable trace_event JSON.
func TestStrategyTraces(t *testing.T) {
	ctx := testContext(t)
	ctx.Tracer = obs.New()
	ctx.Metrics = obs.NewRegistry()
	q, err := colquery.GenerateAnalyzed(colquery.Type1, colquery.TemplateParams{Selectivity: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range All() {
		ctx.Tracer.Reset()
		if _, _, err := s.Execute(context.Background(), ctx, q); err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		roots := ctx.Tracer.Roots()
		if len(roots) != 1 {
			t.Fatalf("%s: want 1 root span, got %d", s.Name(), len(roots))
		}
		root := roots[0]
		if want := "strategy:" + s.Name(); root.Name != want {
			t.Fatalf("root span %q, want %q", root.Name, want)
		}
		names := map[string]int{}
		collectNames(root, names)
		var hasLoading, hasInference, hasRelational bool
		for n := range names {
			hasLoading = hasLoading || strings.HasPrefix(n, "loading:")
			hasInference = hasInference || n == "inference" || strings.HasPrefix(n, "inference:") || strings.HasPrefix(n, "model:")
			hasRelational = hasRelational || strings.HasPrefix(n, "relational:")
		}
		if !hasLoading || !hasInference || !hasRelational {
			t.Fatalf("%s: missing phase spans (loading=%v inference=%v relational=%v) in %v",
				s.Name(), hasLoading, hasInference, hasRelational, names)
		}
		// Chrome export must be valid JSON with one complete event per span.
		var buf bytes.Buffer
		if err := ctx.Tracer.WriteChromeTrace(&buf); err != nil {
			t.Fatalf("%s: chrome export: %v", s.Name(), err)
		}
		var events []map[string]any
		if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
			t.Fatalf("%s: chrome trace is not valid JSON: %v", s.Name(), err)
		}
		if len(events) != ctx.Tracer.SpanCount() {
			t.Fatalf("%s: %d chrome events for %d spans", s.Name(), len(events), ctx.Tracer.SpanCount())
		}
	}
	// Metrics: every strategy recorded its breakdown.
	snap := ctx.Metrics.Snapshot()
	for _, s := range All() {
		if got := snap.Counters["strategy."+s.Name()+".queries"]; got < 1 {
			t.Fatalf("%s: queries counter = %d, want >= 1", s.Name(), got)
		}
		if _, ok := snap.Histograms["strategy."+s.Name()+".total_s"]; !ok {
			t.Fatalf("%s: total_s histogram missing", s.Name())
		}
	}
}

// TestPerLayerSpans pins the acceptance criterion that native-NN strategies
// (DB-UDF's in-database UDF and DB-PyTorch's serving component) emit one
// span per NN layer, and DL2SQL emits one span per SQL pipeline step.
func TestPerLayerSpans(t *testing.T) {
	ctx := testContext(t)
	ctx.Tracer = obs.New()
	q, err := colquery.GenerateAnalyzed(colquery.Type1, colquery.TemplateParams{Selectivity: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		strat  Strategy
		marker string // span-name prefix proving layer/step granularity
	}{
		{&DBUDF{}, "conv2d:"},
		{&DBPyTorch{}, "conv2d:"},
		{&DL2SQL{}, "Conv"},
	}
	for _, tc := range cases {
		ctx.Tracer.Reset()
		if _, _, err := tc.strat.Execute(context.Background(), ctx, q); err != nil {
			t.Fatalf("%s: %v", tc.strat.Name(), err)
		}
		names := map[string]int{}
		for _, r := range ctx.Tracer.Roots() {
			collectNames(r, names)
		}
		found := false
		for n := range names {
			if strings.HasPrefix(n, tc.marker) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("%s: no span with prefix %q in %v", tc.strat.Name(), tc.marker, names)
		}
	}
}

// TestTracingDisabledUnchanged guards the nil fast path: with no tracer the
// strategies run exactly as before and allocate no spans.
func TestTracingDisabledUnchanged(t *testing.T) {
	ctx := testContext(t)
	if ctx.Tracer.Enabled() {
		t.Fatal("fresh context must have tracing disabled")
	}
	q, err := colquery.GenerateAnalyzed(colquery.Type1, colquery.TemplateParams{Selectivity: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range All() {
		if _, _, err := s.Execute(context.Background(), ctx, q); err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
	}
}
