package strategies

import (
	"context"
	"sort"
	"strings"
	"testing"

	"repro/internal/colquery"
	"repro/internal/hwprofile"
	"repro/internal/iotdata"
	"repro/internal/modelrepo"
	"repro/internal/sqldb"
)

// testContext builds a tiny dataset + bound models shared by the strategy
// tests. Keyframes are 8×8 to keep SQL inference fast.
func testContext(t *testing.T) *Context {
	t.Helper()
	ds, err := iotdata.Generate(iotdata.Config{Scale: 2, KeyframeSide: 8, Seed: 7, PatternCount: 6})
	if err != nil {
		t.Fatal(err)
	}
	ctx := NewContext(ds)
	repo := modelrepo.NewRepository(8, 99)
	if err := ctx.BindDefaults(repo, 20); err != nil {
		t.Fatal(err)
	}
	return ctx
}

// resultKey renders a result into an order-independent canonical string.
func resultKey(res *sqldb.Result) string {
	n := res.NumRows()
	rows := make([]string, n)
	for i := 0; i < n; i++ {
		var sb strings.Builder
		for _, c := range res.Cols {
			d := c.Get(i)
			if d.T == sqldb.TFloat {
				// round to avoid fp noise in comparisons
				sb.WriteString(trim(d.F))
			} else {
				sb.WriteString(d.String())
			}
			sb.WriteByte('|')
		}
		rows[i] = sb.String()
	}
	sort.Strings(rows)
	return strings.Join(rows, "\n")
}

func trim(f float64) string {
	return strings.TrimRight(strings.TrimRight(
		sqldb.Float(float64(int64(f*1e6))/1e6).String(), "0"), ".")
}

func TestAllStrategiesAgreeType1(t *testing.T) { agreeOnType(t, colquery.Type1) }
func TestAllStrategiesAgreeType2(t *testing.T) { agreeOnType(t, colquery.Type2) }
func TestAllStrategiesAgreeType3(t *testing.T) { agreeOnType(t, colquery.Type3) }
func TestAllStrategiesAgreeType4(t *testing.T) { agreeOnType(t, colquery.Type4) }

func agreeOnType(t *testing.T, typ colquery.QueryType) {
	t.Helper()
	ctx := testContext(t)
	q, err := colquery.GenerateAnalyzed(typ, colquery.TemplateParams{Selectivity: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	var wantKey string
	var wantFrom string
	for _, s := range All() {
		res, bd, err := s.Execute(context.Background(), ctx, q)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if bd.Total() <= 0 {
			t.Fatalf("%s: zero cost breakdown", s.Name())
		}
		key := resultKey(res)
		if wantFrom == "" {
			wantKey, wantFrom = key, s.Name()
			continue
		}
		if key != wantKey {
			t.Fatalf("%s result differs from %s on %v:\n--- %s ---\n%s\n--- %s ---\n%s",
				s.Name(), wantFrom, typ, wantFrom, wantKey, s.Name(), key)
		}
	}
}

func TestCostBucketsPopulated(t *testing.T) {
	ctx := testContext(t)
	q, err := colquery.GenerateAnalyzed(colquery.Type3, colquery.TemplateParams{Selectivity: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range All() {
		_, bd, err := s.Execute(context.Background(), ctx, q)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if bd.Loading < 0 || bd.Inference < 0 || bd.Relational < 0 {
			t.Fatalf("%s: negative bucket: %+v", s.Name(), bd)
		}
		if bd.Inference == 0 {
			t.Fatalf("%s: inference bucket empty", s.Name())
		}
	}
}

func TestOPPrunesInference(t *testing.T) {
	ctx := testContext(t)
	// Very selective relational predicates: OP must infer far fewer
	// keyframes than plain DL2SQL.
	q, err := colquery.GenerateAnalyzed(colquery.Type3, colquery.TemplateParams{Selectivity: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	plain := &DL2SQL{Optimized: false}
	op := &DL2SQL{Optimized: true}
	if _, _, err := plain.Execute(context.Background(), ctx, q); err != nil {
		t.Fatal(err)
	}
	if _, _, err := op.Execute(context.Background(), ctx, q); err != nil {
		t.Fatal(err)
	}
	plainInfers := 0
	for _, s := range plain.LastSteps {
		if s.Label == "Conv1" {
			plainInfers++
		}
	}
	opInfers := 0
	for _, s := range op.LastSteps {
		if s.Label == "Conv1" {
			opInfers++
		}
	}
	if opInfers >= plainInfers {
		t.Fatalf("OP ran %d inferences, plain %d — hints must prune", opInfers, plainInfers)
	}
}

func TestGPUProfileShiftsCosts(t *testing.T) {
	ctx := testContext(t)
	q, err := colquery.GenerateAnalyzed(colquery.Type3, colquery.TemplateParams{Selectivity: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	s := &DBPyTorch{}
	// Warm up once before measuring: Loading includes real wall time of the
	// serving pipe, and the first execution pays one-off costs (allocator
	// growth, goroutine start) that otherwise inflate whichever profile runs
	// first — flaky under -race on small machines.
	if _, _, err := s.Execute(context.Background(), ctx, q); err != nil {
		t.Fatal(err)
	}
	_, cpu, err := s.Execute(context.Background(), ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	ctx.Profile = hwprofile.ServerGPU
	_, gpu, err := s.Execute(context.Background(), ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if gpu.Inference >= cpu.Inference {
		t.Fatalf("GPU inference %v should beat CPU %v", gpu.Inference, cpu.Inference)
	}
	if gpu.Loading <= cpu.Loading {
		t.Fatalf("GPU loading %v should exceed CPU %v (device transfer)", gpu.Loading, cpu.Loading)
	}
}

func TestDBUDFBlackBoxCallsEveryWindowRow(t *testing.T) {
	ctx := testContext(t)
	q, err := colquery.GenerateAnalyzed(colquery.Type3, colquery.TemplateParams{Selectivity: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	db := ctx.Dataset.DB
	db.Profile = sqldb.NewProfile()
	s := &DBUDF{}
	if _, _, err := s.Execute(context.Background(), ctx, q); err != nil {
		t.Fatal(err)
	}
	calls := db.Profile.UDFCalls["nudf_detect"]
	// The black-box UDF is evaluated per date-window video row: its call
	// count must not shrink with the fabric-side selectivity.
	res, err := db.Query(`SELECT count(*) c FROM video V WHERE V.date > '2021-01-01' AND V.date < '2021-01-31'`)
	if err != nil {
		t.Fatal(err)
	}
	window := int(res.Cols[0].Get(0).I)
	if calls < window {
		t.Fatalf("UDF called %d times, expected at least the %d window rows", calls, window)
	}
}

func TestBindingsRequired(t *testing.T) {
	ds, err := iotdata.Generate(iotdata.Config{Scale: 1, KeyframeSide: 8, Seed: 7, PatternCount: 3})
	if err != nil {
		t.Fatal(err)
	}
	ctx := NewContext(ds) // no bindings
	q, err := colquery.GenerateAnalyzed(colquery.Type1, colquery.TemplateParams{})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range All() {
		if _, _, err := s.Execute(context.Background(), ctx, q); err == nil {
			t.Fatalf("%s must fail without bindings", s.Name())
		}
	}
}

func TestPredictionDatumKinds(t *testing.T) {
	ctx := testContext(t)
	b := ctx.Bindings["nudf_detect"]
	if d := b.predictionDatum(1); d.T != sqldb.TBool || d.I != 1 {
		t.Fatalf("bool kind: %v", d)
	}
	b2 := ctx.Bindings["nudf_classify"]
	if d := b2.predictionDatum(0); d.T != sqldb.TString {
		t.Fatalf("label kind: %v", d)
	}
	b3 := ctx.Bindings["nudf_recog"]
	if d := b3.predictionDatum(3); d.T != sqldb.TInt || d.I != 3 {
		t.Fatalf("index kind: %v", d)
	}
}

func TestRewriteWithPredictions(t *testing.T) {
	q, err := colquery.Analyze(`SELECT patternID FROM fabric F, video V
		WHERE F.transID = V.transID AND nUDF_detect(V.keyframe) = TRUE`)
	if err != nil {
		t.Fatal(err)
	}
	re := rewriteWithPredictions(q, "npred_x")
	s := re.String()
	if strings.Contains(strings.ToLower(s), "nudf_detect(") {
		t.Fatalf("rewrite left an nUDF call:\n%s", s)
	}
	if !strings.Contains(s, "NPRED.p_nudf_detect") {
		t.Fatalf("rewrite missing prediction column:\n%s", s)
	}
	if !strings.Contains(s, "npred_x") {
		t.Fatalf("rewrite missing prediction table:\n%s", s)
	}
}

func TestStripUDFConjuncts(t *testing.T) {
	q, err := colquery.Analyze(`SELECT patternID FROM fabric F, video V
		WHERE F.humidity > 80 AND F.transID = V.transID AND nUDF_detect(V.keyframe) = TRUE`)
	if err != nil {
		t.Fatal(err)
	}
	stripped := stripUDFConjuncts(q.Stmt)
	s := strings.ToLower(stripped.String())
	if strings.Contains(s, "nudf") {
		t.Fatalf("strip left an nUDF:\n%s", s)
	}
	if !strings.Contains(s, "humidity") || !strings.Contains(s, "transid") {
		t.Fatalf("strip dropped relational predicates:\n%s", s)
	}
}

func TestBatchedDL2SQLAgreesWithPerSample(t *testing.T) {
	ctx := testContext(t)
	q, err := colquery.GenerateAnalyzed(colquery.Type3, colquery.TemplateParams{Selectivity: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	per := &DL2SQL{Optimized: true}
	bat := &DL2SQL{Optimized: true, Batched: true}
	resP, _, err := per.Execute(context.Background(), ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	resB, bdB, err := bat.Execute(context.Background(), ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if resultKey(resP) != resultKey(resB) {
		t.Fatal("batched and per-sample DL2SQL must return identical results")
	}
	if bdB.Inference <= 0 {
		t.Fatal("batched inference must record cost")
	}
}

func TestBatchedDL2SQLIssuesFewerStatements(t *testing.T) {
	ctx := testContext(t)
	q, err := colquery.GenerateAnalyzed(colquery.Type3, colquery.TemplateParams{Selectivity: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	per := &DL2SQL{Optimized: false}
	bat := &DL2SQL{Optimized: false, Batched: true}
	if _, _, err := per.Execute(context.Background(), ctx, q); err != nil {
		t.Fatal(err)
	}
	if _, _, err := bat.Execute(context.Background(), ctx, q); err != nil {
		t.Fatal(err)
	}
	if len(bat.LastSteps)*2 > len(per.LastSteps) {
		t.Fatalf("batched pipeline should issue far fewer statements: %d vs %d",
			len(bat.LastSteps), len(per.LastSteps))
	}
}

func TestDeviceTableQueryAllStrategies(t *testing.T) {
	ctx := testContext(t)
	q, err := colquery.GenerateAnalyzed(colquery.Type3, colquery.TemplateParams{Selectivity: 0.2, UseDeviceTable: true})
	if err != nil {
		t.Fatal(err)
	}
	var wantKey, wantFrom string
	for _, s := range All() {
		res, _, err := s.Execute(context.Background(), ctx, q)
		if err != nil {
			t.Fatalf("%s on device-table query: %v", s.Name(), err)
		}
		key := resultKey(res)
		if wantFrom == "" {
			wantKey, wantFrom = key, s.Name()
			continue
		}
		if key != wantKey {
			t.Fatalf("%s disagrees with %s on the three-way device join", s.Name(), wantFrom)
		}
	}
}

func TestGPUTransferGranularity(t *testing.T) {
	// DB-UDF ships per-call (row-at-a-time UDF); DB-PyTorch ships one batch.
	// On the GPU profile the per-call path must pay more loading.
	ctx := testContext(t)
	ctx.Profile = hwprofile.ServerGPU
	q, err := colquery.GenerateAnalyzed(colquery.Type3, colquery.TemplateParams{Selectivity: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	_, udfBD, err := (&DBUDF{}).Execute(context.Background(), ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	_, ptBD, err := (&DBPyTorch{}).Execute(context.Background(), ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if udfBD.Loading <= ptBD.Loading {
		t.Fatalf("per-call GPU transfers must exceed batched: DB-UDF %v vs DB-PyTorch %v",
			udfBD.Loading, ptBD.Loading)
	}
}
