package strategies

// Inference memoization for the UDF-shaped strategies.
//
// DB-UDF and DB-PyTorch both end up running the same forward pass for the
// same (model, keyframe) pair whenever a collaborative query repeats —
// exactly the workload of a monitoring dashboard re-issuing Table I
// templates. An InferCache short-circuits those calls: keys combine the
// compiled artifact's hash with the raw keyframe blob's hash, so the two
// strategies share hits (the decoded tensor is a pure function of the
// blob, and predictions are deterministic).
//
// The DL2SQL strategies memoize one level lower, inside the SQL pipeline
// itself (see dl2sql.PipelineCache wired through Context.SQLCache),
// because their unit of reuse is a materialized intermediate relation
// rather than a class index.

import (
	"repro/internal/cache"
	"repro/internal/dl2sql"
	"repro/internal/obs"
	"repro/internal/schedule"
)

// InferKey identifies one memoizable inference: the hash of the compiled
// model artifact and the hash of the raw keyframe blob. It is an alias of
// the scheduler's single-flight key, so the same LRU serves both layers:
// EnableScheduler hands env.InferCache to the scheduler as its shared
// prediction cache and entries written by either are hits for both.
type InferKey = schedule.Key

// EnableInferCache switches on inference memoization for all four
// strategies: an LRU of class predictions for DB-UDF / DB-PyTorch
// (capacity entries) and a dl2sql PipelineCache for the DL2SQL pair
// (capacity memoized inferences + capacity materialized intermediates).
// capacity <= 0 disables both. When env.Metrics is set, hit/miss/eviction
// counters appear under "strategies.infercache.*" and "dl2sql.cache.*";
// set Metrics before calling EnableInferCache.
func (env *Context) EnableInferCache(capacity int) {
	if capacity <= 0 {
		env.InferCache = nil
		env.SQLCache = nil
		return
	}
	env.InferCache = cache.New[InferKey, int](capacity)
	env.InferCache.Instrument(env.Metrics, obs.CachePrefixInfer)
	env.SQLCache = dl2sql.NewPipelineCache(capacity, capacity)
	env.SQLCache.Instrument(env.Metrics)
}

// InferCacheStats reports the prediction-LRU counters (zero value when
// memoization is disabled).
func (env *Context) InferCacheStats() cache.Stats {
	return env.InferCache.Stats()
}
