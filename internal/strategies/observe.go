package strategies

// Strategy-layer self-observability.
//
// Two pieces live here. First, a per-execution accounting struct threaded
// through the context (mirroring the executor's queryAcct one layer down):
// the serving retry loop, the circuit breaker, and both native inference
// paths charge it, and ExecuteWithFallback folds the totals into one
// obs.QueryRecord per collaborative query — strategy name, fallback path,
// retries, and inference calls included, which the engine-level recorder
// cannot see. Second, AttachObservability, which projects strategy-owned
// state into the engine's sys.* catalog: the live sys.breaker table
// (replacing the engine's empty stub) and an "inference" row in sys.cache.

import (
	"context"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/qerr"
	"repro/internal/sqldb"
)

// stratAcct accumulates one collaborative-query execution's serving-side
// resource usage. Counters are atomics: UDF inference runs on morsel
// workers and the serving loop runs on its own goroutine.
type stratAcct struct {
	inferCalls      atomic.Int64
	retries         atomic.Int64
	breakerRejected atomic.Int64
}

type stratAcctKey struct{}

// withStratAcct attaches an accounting struct to the context.
func withStratAcct(ctx context.Context, a *stratAcct) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	return context.WithValue(ctx, stratAcctKey{}, a)
}

// stratAcctFrom recovers the execution's accounting struct, if any.
func stratAcctFrom(ctx context.Context) *stratAcct {
	if ctx == nil {
		return nil
	}
	a, _ := ctx.Value(stratAcctKey{}).(*stratAcct)
	return a
}

// noteInfer charges n forward passes (memoized hits are not inference).
func (a *stratAcct) noteInfer(n int64) {
	if a != nil {
		a.inferCalls.Add(n)
	}
}

// noteRetry charges one serving-batch retry attempt.
func (a *stratAcct) noteRetry() {
	if a != nil {
		a.retries.Add(1)
	}
}

// noteBreakerRejected charges one breaker fail-fast.
func (a *stratAcct) noteBreakerRejected() {
	if a != nil {
		a.breakerRejected.Add(1)
	}
}

// recordExecution appends one strategy-level QueryRecord to env.History.
func (env *Context) recordExecution(sql, strategy string, bd CostBreakdown, acct *stratAcct,
	start time.Time, res *sqldb.Result, err error, traceID string) {
	rec := obs.QueryRecord{
		SQL:        sql,
		Strategy:   strategy,
		Fallback:   strings.Join(bd.FallbackPath, "->"),
		Start:      start,
		Wall:       time.Since(start),
		Busy:       time.Duration(bd.Total() * float64(time.Second)),
		InferCalls: acct.inferCalls.Load(),
		Retries:    acct.retries.Load(),
		ErrClass:   qerr.Class(err),
		TraceID:    traceID,
	}
	if err != nil {
		rec.Err = err.Error()
	}
	if res != nil {
		rec.RowsOut = int64(res.NumRows())
		for _, c := range res.Cols {
			rec.BytesOut += c.ApproxBytes()
		}
	}
	env.History.Add(rec)
	if env.Metrics != nil {
		env.Metrics.Counter(obs.MetricQueries).Add(1)
		if err != nil {
			env.Metrics.Counter(obs.MetricQueryErrors).Add(1)
		}
		env.Metrics.Histogram(obs.MetricQueryWallSeconds).ObserveExemplar(rec.Wall.Seconds(), rec.TraceID)
		if rec.TraceID != "" {
			env.Metrics.Counter(obs.MetricTraceExemplars).Add(1)
		}
	}
}

// AttachObservability projects strategy-owned state into the engine's
// sys.* catalog: it replaces the engine's empty sys.breaker stub with live
// circuit-breaker rows and registers the inference cache as an extra
// sys.cache row. Call after the Context's Breaker and InferCache are
// configured (the scans read them through env at scan time, so later
// reconfiguration is picked up automatically).
func (env *Context) AttachObservability(db *sqldb.DB) {
	schema := sqldb.BreakerTableSchema()
	db.RegisterSysTable(&sqldb.SysTable{
		Name:        "sys.breaker",
		Description: "live circuit-breaker state for the serving pipe: state, trips, and the failure/cooldown policy",
		Schema:      schema,
		Scan: func(*sqldb.DB) (*sqldb.Result, error) {
			res := &sqldb.Result{Schema: schema}
			for _, c := range schema {
				res.Cols = append(res.Cols, sqldb.NewColumn(c.Type))
			}
			b := env.Breaker
			if b == nil {
				return res, nil
			}
			vals := []sqldb.Datum{
				sqldb.Str("serving-pipe"), sqldb.Str(b.State()),
				sqldb.Int(b.Trips()), sqldb.Int(int64(b.failThreshold())),
				sqldb.Float(float64(b.cooldown()) / float64(time.Millisecond)),
			}
			for i, v := range vals {
				if err := res.Cols[i].Append(v); err != nil {
					return nil, err
				}
			}
			return res, nil
		},
	})
	db.RegisterCacheStats(func() []sqldb.CacheStat {
		if env.InferCache == nil {
			return nil
		}
		return []sqldb.CacheStat{{Name: "inference", Stats: env.InferCache.Stats()}}
	})
}
