package strategies

import (
	"fmt"
	"strings"
	"sync/atomic"

	"repro/internal/colquery"
	"repro/internal/sqldb"
)

// This file contains the AST surgery shared by the strategies: stripping
// nUDF conjuncts to obtain Q_db, and rewriting the collaborative query so
// that nUDF calls read from a predictions table instead.

// whereConjuncts returns the WHERE clause (plus join ON conditions) split
// on AND.
func whereConjuncts(sel *sqldb.SelectStmt) []sqldb.Expr {
	var out []sqldb.Expr
	var fromConds func(ref *sqldb.TableRef)
	fromConds = func(ref *sqldb.TableRef) {
		if ref == nil || ref.Join == nil {
			return
		}
		fromConds(ref.Join.L)
		fromConds(ref.Join.R)
		if ref.Join.Cond != nil {
			out = append(out, splitAnd(ref.Join.Cond)...)
		}
	}
	fromConds(sel.From)
	out = append(out, splitAnd(sel.Where)...)
	return out
}

func splitAnd(e sqldb.Expr) []sqldb.Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(*sqldb.BinExpr); ok && b.Op == "and" {
		return append(splitAnd(b.L), splitAnd(b.R)...)
	}
	return []sqldb.Expr{e}
}

func andAll(conds []sqldb.Expr) sqldb.Expr {
	var out sqldb.Expr
	for _, c := range conds {
		if out == nil {
			out = c
		} else {
			out = &sqldb.BinExpr{Op: "and", L: out, R: c}
		}
	}
	return out
}

// findNUDFs lists nUDF calls in an expression.
func findNUDFs(e sqldb.Expr) []*sqldb.FuncCall {
	var out []*sqldb.FuncCall
	var walk func(sqldb.Expr)
	walk = func(x sqldb.Expr) {
		switch t := x.(type) {
		case *sqldb.FuncCall:
			if colquery.IsNUDF(t.Name) {
				out = append(out, t)
			}
			for _, a := range t.Args {
				walk(a)
			}
		case *sqldb.BinExpr:
			walk(t.L)
			walk(t.R)
		case *sqldb.UnaryExpr:
			walk(t.E)
		case *sqldb.CaseExpr:
			for _, w := range t.Whens {
				walk(w.Cond)
				walk(w.Then)
			}
			if t.Else != nil {
				walk(t.Else)
			}
		case *sqldb.InExpr:
			walk(t.E)
			for _, i := range t.List {
				walk(i)
			}
		case *sqldb.BetweenExpr:
			walk(t.E)
			walk(t.Lo)
			walk(t.Hi)
		case *sqldb.IsNullExpr:
			walk(t.E)
		}
	}
	walk(e)
	return out
}

// exprRelations lists qualified table aliases referenced by an expression.
func exprRelations(e sqldb.Expr) []string {
	seen := map[string]bool{}
	var out []string
	var walk func(sqldb.Expr)
	walk = func(x sqldb.Expr) {
		switch t := x.(type) {
		case *sqldb.ColRef:
			if t.Table != "" && !seen[strings.ToLower(t.Table)] {
				seen[strings.ToLower(t.Table)] = true
				out = append(out, strings.ToLower(t.Table))
			}
		case *sqldb.BinExpr:
			walk(t.L)
			walk(t.R)
		case *sqldb.UnaryExpr:
			walk(t.E)
		case *sqldb.FuncCall:
			for _, a := range t.Args {
				walk(a)
			}
		case *sqldb.InExpr:
			walk(t.E)
			for _, i := range t.List {
				walk(i)
			}
		case *sqldb.BetweenExpr:
			walk(t.E)
			walk(t.Lo)
			walk(t.Hi)
		case *sqldb.IsNullExpr:
			walk(t.E)
		}
	}
	walk(e)
	return out
}

// stripUDFConjuncts clones the statement without nUDF-containing WHERE
// conjuncts (Q_db). Join ON conditions are preserved unless they contain an
// nUDF.
func stripUDFConjuncts(sel *sqldb.SelectStmt) *sqldb.SelectStmt {
	out := *sel
	var keep []sqldb.Expr
	for _, c := range splitAnd(sel.Where) {
		if len(findNUDFs(c)) == 0 {
			keep = append(keep, c)
		}
	}
	out.Where = andAll(keep)
	out.From = stripFromUDFs(sel.From)
	return &out
}

func stripFromUDFs(ref *sqldb.TableRef) *sqldb.TableRef {
	if ref == nil || ref.Join == nil {
		return ref
	}
	join := &sqldb.JoinRef{
		L: stripFromUDFs(ref.Join.L),
		R: stripFromUDFs(ref.Join.R),
	}
	if ref.Join.Cond != nil {
		var keep []sqldb.Expr
		for _, c := range splitAnd(ref.Join.Cond) {
			if len(findNUDFs(c)) == 0 {
				keep = append(keep, c)
			}
		}
		join.Cond = andAll(keep)
	}
	return &sqldb.TableRef{Join: join}
}

// predTableName is the per-execution predictions table.
const predAlias = "NPRED"

// predTableSeq makes prediction-table names collision-free under
// concurrency: UnixNano alone can repeat when two sessions' executions
// land in the same tick (the scheduler makes that overlap routine).
var predTableSeq atomic.Int64

// buildPredictionsTable materializes predictions for the candidates into a
// fresh table {videoID, p_<udf>...} and returns its name.
func buildPredictionsTable(env *Context, q *colquery.Query, preds map[int64]map[string]sqldb.Datum, tag string) (string, error) {
	name := fmt.Sprintf("npred_%s_%d", tag, predTableSeq.Add(1))
	schema := sqldb.Schema{{Name: "videoID", Type: sqldb.TInt}}
	for _, u := range q.UDFNames {
		b := env.Bindings[u]
		if b == nil {
			return "", fmt.Errorf("strategies: no model bound for %s", u)
		}
		schema = append(schema, sqldb.ColumnDef{Name: predColName(u), Type: b.predictionType()})
	}
	tbl, err := env.Dataset.DB.CreateTable(name, schema)
	if err != nil {
		return "", err
	}
	for videoID, perUDF := range preds {
		row := make([]sqldb.Datum, 0, len(schema))
		row = append(row, sqldb.Int(videoID))
		for _, u := range q.UDFNames {
			row = append(row, perUDF[u])
		}
		if err := tbl.AppendRow(row); err != nil {
			return "", err
		}
	}
	return name, nil
}

func predColName(udf string) string {
	return "p_" + strings.ToLower(udf)
}

// rewriteWithPredictions clones the collaborative query replacing every
// nUDF call with a reference to the predictions table, which is added to
// the FROM list joined on videoID.
func rewriteWithPredictions(q *colquery.Query, predTable string) *sqldb.SelectStmt {
	alias := keyframeAlias(q)
	out := *q.Stmt
	out.Items = make([]sqldb.SelectItem, len(q.Stmt.Items))
	for i, it := range q.Stmt.Items {
		out.Items[i] = it
		if !it.Star {
			out.Items[i].Expr = replaceNUDFs(it.Expr)
		}
	}
	if q.Stmt.Where != nil {
		out.Where = replaceNUDFs(q.Stmt.Where)
	}
	out.GroupBy = make([]sqldb.Expr, len(q.Stmt.GroupBy))
	for i, g := range q.Stmt.GroupBy {
		out.GroupBy[i] = replaceNUDFs(g)
	}
	if q.Stmt.Having != nil {
		out.Having = replaceNUDFs(q.Stmt.Having)
	}
	// Join the predictions table on videoID.
	predRef := &sqldb.TableRef{Table: predTable, Alias: predAlias}
	out.From = &sqldb.TableRef{Join: &sqldb.JoinRef{L: q.Stmt.From, R: predRef}}
	joinCond := &sqldb.BinExpr{
		Op: "=",
		L:  &sqldb.ColRef{Table: predAlias, Name: "videoID"},
		R:  &sqldb.ColRef{Table: alias, Name: "videoID"},
	}
	if out.Where != nil {
		out.Where = &sqldb.BinExpr{Op: "and", L: out.Where, R: joinCond}
	} else {
		out.Where = joinCond
	}
	return &out
}

// replaceNUDFs substitutes prediction-column references for nUDF calls.
func replaceNUDFs(e sqldb.Expr) sqldb.Expr {
	switch t := e.(type) {
	case *sqldb.FuncCall:
		if colquery.IsNUDF(t.Name) {
			return &sqldb.ColRef{Table: predAlias, Name: predColName(t.Name)}
		}
		out := &sqldb.FuncCall{Name: t.Name, Distinct: t.Distinct, Star: t.Star}
		for _, a := range t.Args {
			out.Args = append(out.Args, replaceNUDFs(a))
		}
		return out
	case *sqldb.BinExpr:
		return &sqldb.BinExpr{Op: t.Op, L: replaceNUDFs(t.L), R: replaceNUDFs(t.R)}
	case *sqldb.UnaryExpr:
		return &sqldb.UnaryExpr{Op: t.Op, E: replaceNUDFs(t.E)}
	case *sqldb.CaseExpr:
		out := &sqldb.CaseExpr{}
		for _, w := range t.Whens {
			out.Whens = append(out.Whens, sqldb.WhenClause{Cond: replaceNUDFs(w.Cond), Then: replaceNUDFs(w.Then)})
		}
		if t.Else != nil {
			out.Else = replaceNUDFs(t.Else)
		}
		return out
	case *sqldb.InExpr:
		out := &sqldb.InExpr{E: replaceNUDFs(t.E), Not: t.Not}
		for _, x := range t.List {
			out.List = append(out.List, replaceNUDFs(x))
		}
		return out
	case *sqldb.BetweenExpr:
		return &sqldb.BetweenExpr{E: replaceNUDFs(t.E), Lo: replaceNUDFs(t.Lo), Hi: replaceNUDFs(t.Hi), Not: t.Not}
	case *sqldb.IsNullExpr:
		return &sqldb.IsNullExpr{E: replaceNUDFs(t.E), Not: t.Not}
	}
	return e
}
