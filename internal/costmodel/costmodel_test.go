package costmodel

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/modelrepo"
	"repro/internal/nn"
	"repro/internal/sqldb"
)

func TestOutDimsMatchEq3(t *testing.T) {
	d := ConvDims{HIn: 5, WIn: 5, NIn: 1, NOut: 2, K: 3, Stride: 2, Pad: 0}
	h, w := d.OutDims()
	if h != 2 || w != 2 {
		t.Fatalf("OutDims = %d,%d want 2,2", h, w)
	}
	d2 := ConvDims{HIn: 224, WIn: 224, NIn: 3, NOut: 64, K: 7, Stride: 2, Pad: 3}
	h2, _ := d2.OutDims()
	if h2 != 112 {
		t.Fatalf("OutDims = %d want 112", h2)
	}
}

func TestCardinalitiesPaperExample(t *testing.T) {
	// 5x5x1 input, two 3x3 kernels, stride 2: 4 output positions.
	d := ConvDims{HIn: 5, WIn: 5, NIn: 1, NOut: 2, K: 3, Stride: 2, Pad: 0}
	if d.KIn() != 9 {
		t.Fatalf("KIn = %v", d.KIn())
	}
	if d.KOut() != 18 {
		t.Fatalf("KOut = %v", d.KOut())
	}
	if d.TIn() != 36 { // 4 positions × 9 patch elements
		t.Fatalf("TIn = %v", d.TIn())
	}
	if d.JoinSelectivity() != 1.0/9.0 {
		t.Fatalf("S_J = %v", d.JoinSelectivity())
	}
	// Eq. 5 literally: T_out = 36 · (1/9) · 18 = 72 (patch-form output).
	if d.TOut() != 72 {
		t.Fatalf("TOut = %v, want 72", d.TOut())
	}
	if d.FlatOut() != 8 { // 4 positions × 2 kernels: exact element count
		t.Fatalf("FlatOut = %v, want 8", d.FlatOut())
	}
	if d.JoinCost() != 36+72*9 { // Eq. 6
		t.Fatalf("C_join = %v", d.JoinCost())
	}
	if d.TotalCost() != d.JoinCost()+72 { // Eq. 7
		t.Fatalf("C_out = %v", d.TotalCost())
	}
}

// Property: FlatOut always equals the true conv output element count
// (H_out·W_out·N_out) — the customized model is exact by construction — and
// Eq. 5's T_out relates to it by exactly the k_out/N_out duplication factor.
func TestFlatOutExactProperty(t *testing.T) {
	f := func(seed uint8) bool {
		k := int(seed%2)*2 + 1 // 1 or 3
		s := int(seed/2%2) + 1 // 1 or 2
		nIn := int(seed/4%3) + 1
		nOut := int(seed/12%3) + 1
		in := k + s + int(seed%5) // big enough
		d := ConvDims{HIn: in, WIn: in, NIn: nIn, NOut: nOut, K: k, Stride: s, Pad: 0}
		h, w := d.OutDims()
		if math.Abs(d.FlatOut()-float64(h*w*nOut)) > 1e-9 {
			return false
		}
		return math.Abs(d.TOut()-d.FlatOut()*float64(k*k)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEstimateModelStudent(t *testing.T) {
	m := modelrepo.NewStudentModel(modelrepo.TaskDefectDetection, 32, 1)
	mc, err := EstimateModel(m)
	if err != nil {
		t.Fatal(err)
	}
	if mc.Total <= 0 {
		t.Fatal("total cost must be positive")
	}
	if len(mc.PerLayer) != len(m.Layers) {
		t.Fatalf("per-layer entries = %d, want %d", len(mc.PerLayer), len(m.Layers))
	}
	// Convolutions must dominate the estimate (the paper's Fig. 9 finding).
	convCost, otherCost := 0.0, 0.0
	for _, lc := range mc.PerLayer {
		if lc.Kind == nn.KindConv2D {
			convCost += lc.Cost
		} else {
			otherCost += lc.Cost
		}
	}
	if convCost <= otherCost {
		t.Fatalf("conv cost %v should dominate other cost %v", convCost, otherCost)
	}
}

func TestDefaultModelOverestimates(t *testing.T) {
	m := modelrepo.NewStudentModel(modelrepo.TaskDefectDetection, 32, 1)
	custom, err := EstimateModel(m)
	if err != nil {
		t.Fatal(err)
	}
	def, err := DefaultEstimateModel(m)
	if err != nil {
		t.Fatal(err)
	}
	// The default estimator must overestimate by orders of magnitude
	// (Fig. 12's log-scale gap).
	if def.Total < custom.Total*100 {
		t.Fatalf("default %v should exceed customized %v by >=100x", def.Total, custom.Total)
	}
}

func TestDefaultModelCompoundsAcrossLayers(t *testing.T) {
	// Over-estimation "exaggerated exponentially after several iterations":
	// the ratio default/custom grows with depth.
	shallow := nn.NewModel("s", []int{3, 16, 16}, nil)
	shallow.Add(nn.NewConv2D("c1", 3, 8, 3, 1, 1, 1))
	deep := nn.NewModel("d", []int{3, 16, 16}, nil)
	deep.Add(
		nn.NewConv2D("c1", 3, 8, 3, 1, 1, 1),
		nn.NewConv2D("c2", 8, 8, 3, 1, 1, 2),
		nn.NewConv2D("c3", 8, 8, 3, 1, 1, 3),
	)
	ratio := func(m *nn.Model) float64 {
		c, _ := EstimateModel(m)
		d, _ := DefaultEstimateModel(m)
		return d.Total / c.Total
	}
	if ratio(deep) <= ratio(shallow)*10 {
		t.Fatalf("over-estimation should compound: shallow ratio %v, deep ratio %v", ratio(shallow), ratio(deep))
	}
}

func TestNextTIn(t *testing.T) {
	d := ConvDims{HIn: 8, WIn: 8, NIn: 2, NOut: 4, K: 3, Stride: 1, Pad: 1}
	// Output is 4x8x8; the next 3x3 stride-1 pad-1 conv over it has
	// T'_in = 8*8 * (3*3*4) = 2304.
	if got := d.NextTIn(3, 1, 1); got != 2304 {
		t.Fatalf("NextTIn = %v, want 2304", got)
	}
}

func TestNormalizationRatio(t *testing.T) {
	db := sqldb.New()
	db.Profile = sqldb.NewProfile()
	r, err := NormalizationRatio(db)
	if err != nil {
		t.Fatal(err)
	}
	if r <= 0 || r > 1e-3 {
		t.Fatalf("ratio %v out of plausible range", r)
	}
	if ToSeconds(1000, r) != 1000*r {
		t.Fatal("ToSeconds is a simple scale")
	}
	// The calibration table must not leak.
	if db.GetTable("costmodel_calib") != nil {
		t.Fatal("calibration table leaked")
	}
}

func TestEstimateModelResNet(t *testing.T) {
	m, err := modelrepo.NewResNet(10, modelrepo.TaskDefectDetection, 32, 1)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := EstimateModel(m)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := modelrepo.NewResNet(20, modelrepo.TaskDefectDetection, 32, 1)
	if err != nil {
		t.Fatal(err)
	}
	mc2, err := EstimateModel(m2)
	if err != nil {
		t.Fatal(err)
	}
	if mc2.Total <= mc.Total {
		t.Fatalf("deeper model must cost more: %v vs %v", mc2.Total, mc.Total)
	}
}
