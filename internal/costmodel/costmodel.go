// Package costmodel implements Section IV-A of the paper: the customized
// cost model for SQL-implemented neural operators (Eqs. 3–8), alongside the
// default-DBMS estimator it is compared against in Figs. 12–13.
//
// The customized model exploits that a conv layer's relational cardinalities
// are fully determined by the layer geometry: the feature-map table holds
// T_in = H_out·W_out·k_in rows, the join selectivity against the kernel
// table is exactly 1/k_in, and therefore T_out = T_in·S_J·k_out. The default
// model, lacking statistics on intermediate tables, falls back to a fixed
// equi-join selectivity — the estimate the paper observes being
// "exaggerated exponentially after several iterations".
package costmodel

import (
	"fmt"
	"time"

	"repro/internal/nn"
	"repro/internal/sqldb"
)

// ConvDims is the geometry of one convolutional layer, following the
// notation of Section IV-A.
type ConvDims struct {
	HIn, WIn int // input spatial dims
	NIn      int // input channels
	NOut     int // output channels
	K        int // square kernel side (k_h = k_w)
	Stride   int
	Pad      int
}

// OutDims applies Eq. (3): H_out = (H_in + 2p − k)/s + 1.
func (d ConvDims) OutDims() (hOut, wOut int) {
	hOut = convOut(d.HIn, d.K, d.Stride, d.Pad)
	wOut = convOut(d.WIn, d.K, d.Stride, d.Pad)
	return
}

// convOut guards Go's truncating division: spans below zero mean the kernel
// does not fit and the output dimension is 0.
func convOut(in, k, s, p int) int {
	span := in + 2*p - k
	if span < 0 {
		return 0
	}
	return span/s + 1
}

// KIn is the current layer's kernel-table size k_in = k_h·k_w·N_in.
func (d ConvDims) KIn() float64 { return float64(d.K * d.K * d.NIn) }

// KOut is the next layer's kernel-table size k_out = k_h·k_w·N_out.
func (d ConvDims) KOut() float64 { return float64(d.K * d.K * d.NOut) }

// TIn is the feature-map table cardinality T_in = H_out·W_out·k_in.
func (d ConvDims) TIn() float64 {
	h, w := d.OutDims()
	return float64(h*w) * d.KIn()
}

// JoinSelectivity is Eq. (4): S_J = 1/k_in.
func (d ConvDims) JoinSelectivity() float64 { return 1 / d.KIn() }

// TOut is Eq. (5): T_out = T_in·S_J·k_out — the cardinality of the output
// feature-map table once re-indexed into the next layer's patch layout
// (each output element appears k_out/N_out ≈ k² times across overlapping
// patches).
func (d ConvDims) TOut() float64 { return d.TIn() * d.JoinSelectivity() * d.KOut() }

// FlatOut is the exact flat output element count H_out·W_out·N_out — the
// cardinality of the Layer_Output table before the mapping pass.
func (d ConvDims) FlatOut() float64 {
	h, w := d.OutDims()
	return float64(h * w * d.NOut)
}

// JoinCost is Eq. (6): C_join = T_in + T_out·k_in (scan the feature map,
// probe the kernel table once per produced value).
func (d ConvDims) JoinCost() float64 { return d.TIn() + d.TOut()*d.KIn() }

// TotalCost is Eq. (7): C_out = C_join + T_out (the mapping pass is an
// output-table scan; the mapping table itself stays L2-resident).
func (d ConvDims) TotalCost() float64 { return d.JoinCost() + d.TOut() }

// NextTIn is Eq. (8): the feature-map cardinality feeding the next conv of
// kernel k, stride s, padding p, given this layer's output.
func (d ConvDims) NextTIn(k, stride, pad int) float64 {
	side := d.TOut() / d.KOut() // = H_out·W_out
	// Output spatial side (square inputs assumed, as in the paper).
	hOut, _ := d.OutDims()
	_ = side
	next := ConvDims{HIn: hOut, WIn: hOut, NIn: d.NOut, NOut: d.NOut, K: k, Stride: stride, Pad: pad}
	return next.TIn()
}

// LayerCost is the customized estimate for one layer.
type LayerCost struct {
	Name string
	Kind string
	Cost float64 // abstract cost units (row operations)
	TOut float64 // estimated output cardinality
}

// ModelCost aggregates the per-layer estimates over a model.
type ModelCost struct {
	PerLayer []LayerCost
	Total    float64
}

// convDimsOf extracts geometry from a Conv2D given its input shape.
func convDimsOf(c *nn.Conv2D, in []int) ConvDims {
	return ConvDims{HIn: in[1], WIn: in[2], NIn: c.InC, NOut: c.OutC, K: c.K, Stride: c.Stride, Pad: c.Pad}
}

// EstimateModel walks a model and produces the customized cost estimate for
// its SQL execution. Convolutions follow Eqs. 3–8; BN, ReLU, pooling and
// other elementwise operators are linear scans of their feature-map table,
// as Section IV-A prescribes; residual blocks sum their convolution blocks.
func EstimateModel(m *nn.Model) (*ModelCost, error) {
	shapes, err := m.LayerShapes()
	if err != nil {
		return nil, fmt.Errorf("costmodel: %w", err)
	}
	mc := &ModelCost{}
	var walk func(layers []nn.Layer, in []int) ([]int, error)
	walk = func(layers []nn.Layer, in []int) ([]int, error) {
		cur := in
		for _, l := range layers {
			out, err := l.OutShape(cur)
			if err != nil {
				return nil, err
			}
			lc := LayerCost{Name: l.Name(), Kind: l.Kind()}
			switch v := l.(type) {
			case *nn.Conv2D:
				d := convDimsOf(v, cur)
				lc.Cost = d.TotalCost()
				lc.TOut = d.TOut()
			case *nn.Deconv2D:
				// scatter join: every input row probes k² output slots per
				// output channel
				tin := float64(prod(cur))
				tout := float64(prod(out))
				lc.Cost = tin + tout*float64(v.K*v.K)
				lc.TOut = tout
			case *nn.Linear:
				d := ConvDims{HIn: 1, WIn: 1, NIn: v.In, NOut: v.Out, K: 1, Stride: 1}
				lc.Cost = d.TotalCost()
				lc.TOut = float64(v.Out)
			case *nn.ResidualBlock:
				sub := &ModelCost{}
				inShape := cur
				collectChain(sub, v.Main, inShape)
				collectChain(sub, v.Shortcut, inShape)
				lc.Cost = sub.Total + float64(prod(out))*2 // add + relu scans
				lc.TOut = float64(prod(out))
			case *nn.DenseBlock:
				sub := &ModelCost{}
				grow := cur
				for _, s := range v.Stages {
					collectChain(sub, []nn.Layer{s}, grow)
					grow = []int{grow[0] + v.Growth, grow[1], grow[2]}
				}
				lc.Cost = sub.Total + float64(prod(out)) // concat insert
				lc.TOut = float64(prod(out))
			case *nn.BasicAttention:
				d := ConvDims{HIn: 1, WIn: 1, NIn: v.Dim, NOut: v.Dim, K: 1, Stride: 1}
				lc.Cost = 2*d.TotalCost() + 3*float64(v.Dim)
				lc.TOut = float64(v.Dim)
			default:
				// BN, ReLU, pooling, softmax, flatten: linear in the input
				// feature-map size (single scan).
				lc.Cost = float64(prod(cur))
				lc.TOut = float64(prod(out))
			}
			mc.PerLayer = append(mc.PerLayer, lc)
			mc.Total += lc.Cost
			cur = out
		}
		return cur, nil
	}
	if _, err := walk(m.Layers, shapes[0]); err != nil {
		return nil, err
	}
	return mc, nil
}

// collectChain estimates a sub-chain into mc (used for residual/dense
// internals).
func collectChain(mc *ModelCost, layers []nn.Layer, in []int) {
	cur := in
	for _, l := range layers {
		out, err := l.OutShape(cur)
		if err != nil {
			return
		}
		switch v := l.(type) {
		case *nn.Conv2D:
			d := convDimsOf(v, cur)
			mc.Total += d.TotalCost()
		default:
			mc.Total += float64(prod(cur))
		}
		cur = out
	}
}

// DefaultJoinSelectivity is the fallback equi-join selectivity a stock
// optimizer assumes when the joined columns carry no statistics — which is
// always the case for the freshly-created intermediate tables of DL2SQL.
const DefaultJoinSelectivity = 0.1

// DefaultEstimateModel mimics the database's built-in estimator on the same
// pipeline: every conv join is estimated as |FeatureMap|·|Kernel|·0.1 with
// no grouping reduction, and the (wrong) output cardinality feeds the next
// layer — compounding exponentially, the pathology of Fig. 12.
func DefaultEstimateModel(m *nn.Model) (*ModelCost, error) {
	shapes, err := m.LayerShapes()
	if err != nil {
		return nil, fmt.Errorf("costmodel: %w", err)
	}
	mc := &ModelCost{}
	cur := shapes[0]
	rows := float64(prod(cur)) // believed cardinality of the current relation
	for _, l := range m.Layers {
		out, err := l.OutShape(cur)
		if err != nil {
			return nil, err
		}
		lc := LayerCost{Name: l.Name(), Kind: l.Kind()}
		switch v := l.(type) {
		case *nn.Conv2D:
			kernelRows := float64(v.OutC * v.InC * v.K * v.K)
			joined := rows * kernelRows * DefaultJoinSelectivity
			lc.Cost = rows + joined
			lc.TOut = joined // the default model does not understand the GROUP BY reduction
			rows = joined
		case *nn.Linear:
			kernelRows := float64(v.In * v.Out)
			joined := rows * kernelRows * DefaultJoinSelectivity
			lc.Cost = rows + joined
			lc.TOut = joined
			rows = joined
		case *nn.ResidualBlock, *nn.DenseBlock:
			joined := rows * rows * DefaultJoinSelectivity // self-join guess
			lc.Cost = rows + joined
			lc.TOut = joined
			rows = joined
		default:
			lc.Cost = rows
			lc.TOut = rows
		}
		mc.PerLayer = append(mc.PerLayer, lc)
		mc.Total += lc.Cost
		cur = out
	}
	return mc, nil
}

// NormalizationRatio measures r = seq_time/seq_scan_cost on the given
// database (Section V-C): the wall time of scanning one row, used to
// convert abstract cost units into seconds.
func NormalizationRatio(db *sqldb.DB) (float64, error) {
	const rows = 20000
	name := "costmodel_calib"
	db.DropTable(name)
	tbl, err := db.CreateTable(name, sqldb.Schema{
		{Name: "id", Type: sqldb.TInt},
		{Name: "v", Type: sqldb.TFloat},
	})
	if err != nil {
		return 0, err
	}
	for i := 0; i < rows; i++ {
		if err := tbl.AppendRow([]sqldb.Datum{sqldb.Int(int64(i)), sqldb.Float(float64(i))}); err != nil {
			return 0, err
		}
	}
	defer db.DropTable(name)
	// Scan several times and take the best to reduce noise.
	best := time.Duration(1<<62 - 1)
	for trial := 0; trial < 3; trial++ {
		start := time.Now()
		if _, err := db.Query("SELECT sum(v) s FROM costmodel_calib WHERE id >= 0"); err != nil {
			return 0, err
		}
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best.Seconds() / float64(rows), nil
}

// ToSeconds converts abstract cost units to seconds with ratio r.
func ToSeconds(cost, r float64) float64 { return cost * r }

func prod(dims []int) int {
	p := 1
	for _, d := range dims {
		p *= d
	}
	return p
}
