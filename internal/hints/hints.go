// Package hints implements Section IV-B: it derives optimizer hints for
// collaborative queries from the offline class-prediction histograms
// (Eqs. 9–10) and the customized cost model, and encodes the paper's three
// rules:
//
//  1. An nUDF predicate is either evaluated during the table scan or delayed
//     until after the cheap relational predicates, whichever the cost
//     comparison favours.
//  2. An nUDF in the SELECT clause is evaluated as the last operator.
//  3. An nUDF in a join condition switches the join to the symmetric hash
//     join algorithm.
package hints

import (
	"strings"

	"repro/internal/colquery"
	"repro/internal/costmodel"
	"repro/internal/modelrepo"
	"repro/internal/sqldb"
)

// Provider turns analyzed collaborative queries into sqldb.QueryHints.
type Provider struct {
	// Histograms maps a UDF name (lower-cased) to the class histogram of
	// its model, built during offline training.
	Histograms map[string]*modelrepo.ClassHistogram
	// UDFCosts maps a UDF name to its per-call cost in abstract units,
	// estimated by the customized cost model from the model geometry.
	UDFCosts map[string]float64
}

// NewProvider creates an empty provider.
func NewProvider() *Provider {
	return &Provider{
		Histograms: map[string]*modelrepo.ClassHistogram{},
		UDFCosts:   map[string]float64{},
	}
}

// RegisterModel wires a repository entry to a UDF name: its histogram
// supplies selectivities and its cost-model estimate supplies the per-call
// cost.
func (p *Provider) RegisterModel(udfName string, entry *modelrepo.Entry) error {
	key := strings.ToLower(udfName)
	if entry.Histogram != nil {
		p.Histograms[key] = entry.Histogram
	}
	mc, err := costmodel.EstimateModel(entry.Model)
	if err != nil {
		return err
	}
	p.UDFCosts[key] = mc.Total
	return nil
}

// Selectivity applies Eq. (10): for a predicate `udf(x) = lit`, the
// estimated fraction of rows satisfying it is Pr(class(lit)). Boolean
// literals map onto binary classifiers' class indices (FALSE=class 0,
// TRUE=class 1, matching the "Not Found"/"Defect" layout). Inequality
// usages and unknown classes fall back to the uniform prior.
func (p *Provider) Selectivity(udfName string, equalsTo *sqldb.Datum) float64 {
	h := p.Histograms[strings.ToLower(udfName)]
	if h == nil {
		return 0.5
	}
	if equalsTo == nil {
		return 0.5
	}
	switch equalsTo.T {
	case sqldb.TString:
		if pr := h.PrClass(equalsTo.S); pr > 0 {
			return pr
		}
		return 1.0 / float64(len(h.Classes))
	case sqldb.TBool, sqldb.TInt:
		idx := int(equalsTo.I)
		if idx >= 0 && idx < len(h.Classes) {
			return h.Pr(idx)
		}
	}
	return 0.5
}

// BuildHints assembles QueryHints for one collaborative query, applying the
// three rules. relRows is the estimated input cardinality and relSel the
// accumulated selectivity of the non-UDF relational predicates (used in the
// rule-1 cost comparison).
func (p *Provider) BuildHints(q *colquery.Query, relRows float64, relSel float64) *sqldb.QueryHints {
	h := &sqldb.QueryHints{
		UDFSelectivity: map[string]float64{},
		UDFCost:        map[string]float64{},
	}
	totalUDFCost := 0.0
	for _, u := range q.UDFs {
		sel := p.Selectivity(u.Name, u.EqualsLiteral)
		if prev, ok := h.UDFSelectivity[u.Name]; !ok || sel < prev {
			h.UDFSelectivity[u.Name] = sel
		}
		c := p.UDFCosts[u.Name]
		if c == 0 {
			c = 1e6 // neural UDFs are expensive by default
		}
		h.UDFCost[u.Name] = c
		totalUDFCost += c
		if u.InJoin {
			// Rule 3.
			h.SymmetricJoin = true
		}
		if u.InSelect {
			// Rule 2.
			h.SelectUDFLast = true
		}
	}
	// Rule 1: compare scan-time evaluation (full UDF cost on every input
	// row, then relational predicates see fewer rows) against delayed
	// evaluation (relational predicates first, UDF only on survivors).
	scanTimeCost := relRows*totalUDFCost + relRows*1 // full nUDF pass + cheap preds
	delayedCost := relRows*1 + relRows*relSel*totalUDFCost
	delay := delayedCost <= scanTimeCost
	h.DelayUDFs = &delay
	return h
}

// ShouldDelay exposes the rule-1 cost comparison directly (used by the
// strategies and Fig. 14's ablation): true when delaying the nUDF until
// after the relational predicates is estimated cheaper.
func ShouldDelay(relRows, relSel, udfCost float64) bool {
	scanTime := relRows * udfCost
	delayed := relRows + relRows*relSel*udfCost
	return delayed <= scanTime
}
