package hints

import (
	"testing"

	"repro/internal/colquery"
	"repro/internal/modelrepo"
	"repro/internal/sqldb"
)

func calibratedProvider(t *testing.T) (*Provider, *modelrepo.Entry) {
	t.Helper()
	repo := modelrepo.NewRepository(8, 42)
	entry := repo.ForTask(modelrepo.TaskDefectDetection)
	if err := entry.Calibrate(40, 8, 7); err != nil {
		t.Fatal(err)
	}
	p := NewProvider()
	if err := p.RegisterModel("nudf_detect", entry); err != nil {
		t.Fatal(err)
	}
	return p, entry
}

func TestSelectivityFromHistogram(t *testing.T) {
	p, entry := calibratedProvider(t)
	// Selectivity of `nUDF_detect(x) = TRUE` must equal Pr(class 1).
	tr := sqldb.Bool(true)
	got := p.Selectivity("nUDF_detect", &tr)
	want := entry.Histogram.Pr(1)
	if got != want {
		t.Fatalf("selectivity = %v, want histogram Pr(1) = %v", got, want)
	}
	fa := sqldb.Bool(false)
	if p.Selectivity("nUDF_detect", &fa) != entry.Histogram.Pr(0) {
		t.Fatal("FALSE must map to class 0")
	}
}

func TestSelectivityStringClass(t *testing.T) {
	repo := modelrepo.NewRepository(8, 42)
	entry := repo.ForTask(modelrepo.TaskPatternRecog)
	if err := entry.Calibrate(60, 8, 9); err != nil {
		t.Fatal(err)
	}
	p := NewProvider()
	if err := p.RegisterModel("nudf_classify", entry); err != nil {
		t.Fatal(err)
	}
	lit := sqldb.Str("Floral Pattern")
	got := p.Selectivity("nudf_classify", &lit)
	want := entry.Histogram.PrClass("Floral Pattern")
	if want > 0 && got != want {
		t.Fatalf("selectivity = %v, want %v", got, want)
	}
	// Unknown class falls back to uniform prior.
	unk := sqldb.Str("No Such Pattern")
	if p.Selectivity("nudf_classify", &unk) != 1.0/6.0 {
		t.Fatalf("unknown class fallback = %v", p.Selectivity("nudf_classify", &unk))
	}
}

func TestSelectivityUnknownUDF(t *testing.T) {
	p := NewProvider()
	if p.Selectivity("nudf_unknown", nil) != 0.5 {
		t.Fatal("unknown UDF must fall back to 0.5")
	}
}

func TestBuildHintsRules(t *testing.T) {
	p, _ := calibratedProvider(t)
	// Type 3: UDF in WHERE with selective relational predicates.
	q, err := colquery.GenerateAnalyzed(colquery.Type3, colquery.TemplateParams{Selectivity: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	h := p.BuildHints(q, 10000, 0.001)
	if h.DelayUDFs == nil || !*h.DelayUDFs {
		t.Fatal("rule 1: low relational selectivity must favour delaying the nUDF")
	}
	if h.UDFCost["nudf_detect"] <= 0 {
		t.Fatal("UDF cost must be positive")
	}
	if _, ok := h.UDFSelectivity["nudf_detect"]; !ok {
		t.Fatal("UDF selectivity missing")
	}
	if h.SymmetricJoin {
		t.Fatal("rule 3 must not fire for Type 3")
	}
}

func TestBuildHintsScanTimeWhenUDFFiltersEverything(t *testing.T) {
	p, _ := calibratedProvider(t)
	q, err := colquery.GenerateAnalyzed(colquery.Type3, colquery.TemplateParams{Selectivity: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	// With relSel ~1 the delayed plan saves nothing; both plans cost about
	// the same and the comparison may go either way — it must at least not
	// panic and produce a decision.
	h := p.BuildHints(q, 1000, 1.0)
	if h.DelayUDFs == nil {
		t.Fatal("rule 1 must always decide")
	}
}

func TestBuildHintsType4SymmetricJoin(t *testing.T) {
	p, _ := calibratedProvider(t)
	q, err := colquery.GenerateAnalyzed(colquery.Type4, colquery.TemplateParams{RecogUDF: "nUDF_detect"})
	if err != nil {
		t.Fatal(err)
	}
	h := p.BuildHints(q, 1000, 0.1)
	if !h.SymmetricJoin {
		t.Fatal("rule 3: Type 4 must request symmetric hash join")
	}
}

func TestBuildHintsType2SelectLast(t *testing.T) {
	p, _ := calibratedProvider(t)
	q, err := colquery.GenerateAnalyzed(colquery.Type2, colquery.TemplateParams{DetectUDF: "nUDF_detect"})
	if err != nil {
		t.Fatal(err)
	}
	h := p.BuildHints(q, 1000, 0.1)
	if !h.SelectUDFLast {
		t.Fatal("rule 2: Type 2 must mark select-clause UDFs last")
	}
}

func TestShouldDelay(t *testing.T) {
	// 10000 rows, relational predicates keep 0.1%: delaying saves 99.9% of
	// a 1e6-cost UDF.
	if !ShouldDelay(10000, 0.001, 1e6) {
		t.Fatal("must delay for selective relational predicates")
	}
	// Free UDF, unselective predicates: scan-time is fine.
	if ShouldDelay(10000, 1.0, 0.00001) {
		t.Fatal("must not delay when the UDF is free and predicates keep everything")
	}
}
