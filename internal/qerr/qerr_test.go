package qerr

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestFromContextClassification(t *testing.T) {
	if FromContext(nil) != nil {
		t.Fatal("nil must pass through")
	}
	plain := errors.New("disk on fire")
	if FromContext(plain) != plain {
		t.Fatal("non-context error must pass through unchanged")
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := FromContext(ctx.Err())
	if !errors.Is(err, ErrCancelled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled ctx classified as %v", err)
	}

	dctx, dcancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer dcancel()
	<-dctx.Done()
	err = FromContext(dctx.Err())
	if !errors.Is(err, ErrTimeout) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired ctx classified as %v", err)
	}
}

func TestLifecycle(t *testing.T) {
	for _, s := range []error{ErrCancelled, ErrTimeout, ErrMemoryBudget, ErrServingUnavailable, ErrAdmissionRejected, ErrInternal} {
		if !Lifecycle(s) {
			t.Errorf("Lifecycle(%v) = false", s)
		}
		if !Lifecycle(fmt.Errorf("outer: %w", s)) {
			t.Errorf("Lifecycle(wrapped %v) = false", s)
		}
	}
	if Lifecycle(nil) || Lifecycle(errors.New("syntax error")) {
		t.Fatal("Lifecycle matched a non-lifecycle error")
	}
}

func TestRecovered(t *testing.T) {
	err := Recovered("test boundary", "index out of range")
	if !errors.Is(err, ErrInternal) {
		t.Fatalf("plain panic value gave %v, want ErrInternal", err)
	}
	// A panic value that is already a lifecycle error passes through so the
	// original classification (e.g. a cancellation surfacing as a panic in
	// a worker) is not laundered into ErrInternal.
	inner := fmt.Errorf("%w: worker gave up", ErrTimeout)
	if got := Recovered("b", inner); got != inner {
		t.Fatalf("lifecycle panic value rewrapped: %v", got)
	}
	// Non-lifecycle error panic values become ErrInternal like any value.
	if got := Recovered("b", errors.New("nil map write")); !errors.Is(got, ErrInternal) {
		t.Fatalf("error panic value gave %v, want ErrInternal", got)
	}
}

func TestClass(t *testing.T) {
	cases := []struct {
		err  error
		want string
	}{
		{nil, ""},
		{ErrCancelled, "cancelled"},
		{ErrTimeout, "timeout"},
		{ErrMemoryBudget, "memory_budget"},
		{ErrServingUnavailable, "serving_unavailable"},
		{ErrAdmissionRejected, "admission_rejected"},
		{ErrInternal, "internal"},
		{fmt.Errorf("outer: %w", ErrTimeout), "timeout"},
		{Recovered("boundary", "boom"), "internal"},
		{FromContext(context.Canceled), "cancelled"},
		{FromContext(context.DeadlineExceeded), "timeout"},
		{errors.New("syntax error"), "error"},
	}
	for _, c := range cases {
		if got := Class(c.err); got != c.want {
			t.Errorf("Class(%v) = %q, want %q", c.err, got, c.want)
		}
	}
}
