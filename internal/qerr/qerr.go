// Package qerr defines the typed query-lifecycle errors shared by the SQL
// engine, the neural-network runtime, and the strategy layer.
//
// Every recoverable failure mode of a query maps onto one of a small set of
// sentinel errors so that callers can classify outcomes with errors.Is
// without string matching:
//
//   - ErrCancelled          — the caller cancelled the query's context;
//   - ErrTimeout            — the query's deadline expired;
//   - ErrMemoryBudget       — a per-query row/bytes materialization budget
//     was exceeded (the query fails cleanly instead of OOMing the process);
//   - ErrServingUnavailable — the DL serving backend (the DB↔PyTorch pipe,
//     or a model-decode step standing in for it) failed or its circuit
//     breaker is open;
//   - ErrAdmissionRejected  — the serving front end refused to start the
//     query (admission queue full, or the server is draining);
//   - ErrInternal           — a panic recovered at an execution boundary
//     (shape mismatches in tensor kernels, malformed model artifacts, ...).
//
// Wrapped errors produced by this package keep the original cause in the
// chain, so errors.Is works against both the sentinel and the underlying
// error (e.g. context.Canceled).
package qerr

import (
	"context"
	"errors"
	"fmt"
)

// Sentinel lifecycle errors. Match with errors.Is.
var (
	// ErrCancelled marks a query terminated by caller cancellation.
	ErrCancelled = errors.New("query cancelled")
	// ErrTimeout marks a query terminated by deadline expiry.
	ErrTimeout = errors.New("query timeout")
	// ErrMemoryBudget marks a query that exceeded its materialization
	// budget and was stopped before it could OOM the process.
	ErrMemoryBudget = errors.New("query memory budget exceeded")
	// ErrServingUnavailable marks a failure of the DL serving backend —
	// the cross-system pipe errored, hung past its per-attempt timeout, or
	// the circuit breaker is open.
	ErrServingUnavailable = errors.New("serving unavailable")
	// ErrAdmissionRejected marks a query the serving front end refused to
	// start: the admission queue was at capacity, or the server was
	// draining. The query never executed, so retrying against a less
	// loaded server is always safe.
	ErrAdmissionRejected = errors.New("admission rejected")
	// ErrInternal marks a panic converted to an error at an execution
	// boundary.
	ErrInternal = errors.New("internal query error")
)

// FromContext classifies a context error as ErrCancelled or ErrTimeout,
// keeping the original error in the wrap chain. Non-context errors and nil
// pass through unchanged.
func FromContext(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, context.DeadlineExceeded):
		return fmt.Errorf("%w: %w", ErrTimeout, err)
	case errors.Is(err, context.Canceled):
		return fmt.Errorf("%w: %w", ErrCancelled, err)
	default:
		return err
	}
}

// Lifecycle reports whether err is one of the lifecycle sentinels (directly
// or wrapped). Chaos tests use this as the "typed error" contract: under
// fault injection a query must either succeed or fail with a lifecycle
// error, never crash or return a wrong result.
func Lifecycle(err error) bool {
	return errors.Is(err, ErrCancelled) ||
		errors.Is(err, ErrTimeout) ||
		errors.Is(err, ErrMemoryBudget) ||
		errors.Is(err, ErrServingUnavailable) ||
		errors.Is(err, ErrAdmissionRejected) ||
		errors.Is(err, ErrInternal)
}

// Class maps an error onto its stable lifecycle class name, the label used
// by the query history (`sys.queries.err_class`), the slow-query log, and
// error-class metrics. nil maps to "", the five sentinels map to
// "cancelled", "timeout", "memory_budget", "serving_unavailable", and
// "internal", and any other error maps to "error".
func Class(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, ErrCancelled):
		return "cancelled"
	case errors.Is(err, ErrTimeout):
		return "timeout"
	case errors.Is(err, ErrMemoryBudget):
		return "memory_budget"
	case errors.Is(err, ErrServingUnavailable):
		return "serving_unavailable"
	case errors.Is(err, ErrAdmissionRejected):
		return "admission_rejected"
	case errors.Is(err, ErrInternal):
		return "internal"
	default:
		return "error"
	}
}

// Recovered converts a recovered panic value into an ErrInternal-wrapped
// error, tagged with the boundary that caught it. If the panic value is
// itself an error already carrying a lifecycle sentinel, it is preserved.
func Recovered(boundary string, r any) error {
	if err, ok := r.(error); ok && Lifecycle(err) {
		return err
	}
	return fmt.Errorf("%w: %s: panic: %v", ErrInternal, boundary, r)
}
