// Package cache provides the dependency-free caching primitives shared by
// the repository's hot paths: a thread-safe generic LRU with hit/miss/
// eviction statistics and optional wiring into the obs metrics registry.
//
// Three layers build on it (see ARCHITECTURE.md for the full contract):
//
//   - sqldb's prepared-statement + plan cache (keyed on normalized SQL
//     text, invalidated by per-table version counters on DDL and DML);
//   - the strategies layer's inference memoization (keyed on model id +
//     input tensor hash, short-circuiting repeated nUDF_* calls);
//   - dl2sql's materialized FeatureMap-intermediate cache (keyed on a
//     hash chain over model weights, input, and pipeline step).
//
// All methods are safe on a nil *LRU — a nil cache is simply always cold
// and drops every Put — so call sites need no "is caching on?" branches,
// mirroring the nil-receiver idiom of internal/obs.
package cache

import (
	"sync"

	"repro/internal/obs"
)

// Stats is a point-in-time snapshot of a cache's counters.
type Stats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Len       int
	Cap       int
}

// HitRate returns hits / (hits + misses), or 0 before any lookup.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// entry is one node of the intrusive recency list (front = most recent).
type entry[K comparable, V any] struct {
	key        K
	val        V
	prev, next *entry[K, V]
}

// LRU is a fixed-capacity least-recently-used cache. All operations are
// O(1) and safe for concurrent use; a nil *LRU is a valid always-miss
// cache.
type LRU[K comparable, V any] struct {
	mu       sync.Mutex
	capacity int
	items    map[K]*entry[K, V]
	front    *entry[K, V] // most recently used
	back     *entry[K, V] // least recently used

	hits, misses, evictions int64

	// optional obs instruments; nil counters are no-ops.
	onHit, onMiss, onEvict *obs.Counter
}

// New creates an LRU bounded to capacity entries. Capacity <= 0 returns a
// nil cache (caching disabled).
func New[K comparable, V any](capacity int) *LRU[K, V] {
	if capacity <= 0 {
		return nil
	}
	return &LRU[K, V]{capacity: capacity, items: make(map[K]*entry[K, V], capacity)}
}

// Instrument mirrors the cache's hit/miss/eviction counters into the
// registry under prefix (e.g. "sqldb.cache.plan" yields
// "sqldb.cache.plan.hits"). A nil registry leaves the cache uninstrumented.
func (c *LRU[K, V]) Instrument(reg *obs.Registry, prefix string) {
	if c == nil || reg == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.onHit = reg.Counter(prefix + ".hits")
	c.onMiss = reg.Counter(prefix + ".misses")
	c.onEvict = reg.Counter(prefix + ".evictions")
}

// Get returns the cached value and marks it most recently used.
func (c *LRU[K, V]) Get(key K) (V, bool) {
	var zero V
	if c == nil {
		return zero, false
	}
	c.mu.Lock()
	e, ok := c.items[key]
	if !ok {
		c.misses++
		miss := c.onMiss
		c.mu.Unlock()
		miss.Add(1)
		return zero, false
	}
	c.moveToFront(e)
	c.hits++
	hit := c.onHit
	v := e.val
	c.mu.Unlock()
	hit.Add(1)
	return v, true
}

// Contains reports whether the key is cached without touching recency or
// the hit/miss counters.
func (c *LRU[K, V]) Contains(key K) bool {
	if c == nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.items[key]
	return ok
}

// Put inserts or updates a value, evicting the least recently used entry
// when the cache is full.
func (c *LRU[K, V]) Put(key K, val V) {
	if c == nil {
		return
	}
	c.mu.Lock()
	if e, ok := c.items[key]; ok {
		e.val = val
		c.moveToFront(e)
		c.mu.Unlock()
		return
	}
	e := &entry[K, V]{key: key, val: val}
	c.items[key] = e
	c.pushFront(e)
	var evict *obs.Counter
	if len(c.items) > c.capacity {
		lru := c.back
		c.remove(lru)
		delete(c.items, lru.key)
		c.evictions++
		evict = c.onEvict
	}
	c.mu.Unlock()
	evict.Add(1)
}

// Delete removes a key if present.
func (c *LRU[K, V]) Delete(key K) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.items[key]; ok {
		c.remove(e)
		delete(c.items, key)
	}
}

// Purge empties the cache, keeping its statistics.
func (c *LRU[K, V]) Purge() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.items = make(map[K]*entry[K, V], c.capacity)
	c.front, c.back = nil, nil
}

// Len returns the number of cached entries.
func (c *LRU[K, V]) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}

// Stats snapshots the cache counters. Safe on nil (all zeros).
func (c *LRU[K, V]) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Len:       len(c.items),
		Cap:       c.capacity,
	}
}

// ---- intrusive list helpers (all called under mu) ----

func (c *LRU[K, V]) pushFront(e *entry[K, V]) {
	e.prev = nil
	e.next = c.front
	if c.front != nil {
		c.front.prev = e
	}
	c.front = e
	if c.back == nil {
		c.back = e
	}
}

func (c *LRU[K, V]) remove(e *entry[K, V]) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.front = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.back = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *LRU[K, V]) moveToFront(e *entry[K, V]) {
	if c.front == e {
		return
	}
	c.remove(e)
	c.pushFront(e)
}
