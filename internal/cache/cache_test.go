package cache

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/obs"
)

func TestNilCacheIsAlwaysCold(t *testing.T) {
	var c *LRU[string, int]
	if _, ok := c.Get("x"); ok {
		t.Fatal("nil cache must miss")
	}
	c.Put("x", 1) // must not panic
	c.Delete("x")
	c.Purge()
	c.Instrument(nil, "p")
	if c.Len() != 0 || c.Stats() != (Stats{}) {
		t.Fatal("nil cache must report zeros")
	}
	if New[string, int](0) != nil {
		t.Fatal("capacity 0 must disable caching")
	}
}

func TestGetPutAndRecency(t *testing.T) {
	c := New[string, int](2)
	c.Put("a", 1)
	c.Put("b", 2)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("a: got %v %v", v, ok)
	}
	// "b" is now LRU; inserting "c" must evict it, not "a".
	c.Put("c", 3)
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a should have survived (recently used)")
	}
	st := c.Stats()
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	if st.Hits != 2 || st.Misses != 1 {
		t.Fatalf("hits/misses = %d/%d, want 2/1", st.Hits, st.Misses)
	}
	if got := st.HitRate(); got < 0.66 || got > 0.67 {
		t.Fatalf("hit rate = %v", got)
	}
}

func TestUpdateExistingKeyDoesNotGrow(t *testing.T) {
	c := New[string, int](2)
	c.Put("a", 1)
	c.Put("a", 2)
	if c.Len() != 1 {
		t.Fatalf("len = %d, want 1", c.Len())
	}
	if v, _ := c.Get("a"); v != 2 {
		t.Fatalf("update lost: %d", v)
	}
}

// TestEvictionBound pins the LRU's memory contract: the entry count never
// exceeds capacity no matter how many distinct keys stream through.
func TestEvictionBound(t *testing.T) {
	const capacity = 16
	c := New[int, int](capacity)
	for i := 0; i < 10*capacity; i++ {
		c.Put(i, i)
		if c.Len() > capacity {
			t.Fatalf("cache grew to %d entries, cap %d", c.Len(), capacity)
		}
	}
	st := c.Stats()
	if st.Len != capacity || st.Cap != capacity {
		t.Fatalf("final len/cap = %d/%d", st.Len, st.Cap)
	}
	if st.Evictions != 9*capacity {
		t.Fatalf("evictions = %d, want %d", st.Evictions, 9*capacity)
	}
	// The survivors must be the most recently inserted keys.
	for i := 9 * capacity; i < 10*capacity; i++ {
		if !c.Contains(i) {
			t.Fatalf("recent key %d missing", i)
		}
	}
}

func TestDeleteAndPurge(t *testing.T) {
	c := New[string, int](4)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Delete("a")
	if c.Contains("a") || !c.Contains("b") {
		t.Fatal("delete removed the wrong entry")
	}
	c.Purge()
	if c.Len() != 0 {
		t.Fatal("purge left entries")
	}
	// The list must still be consistent after purge.
	c.Put("c", 3)
	if v, ok := c.Get("c"); !ok || v != 3 {
		t.Fatal("cache broken after purge")
	}
}

func TestInstrumentMirrorsCounters(t *testing.T) {
	reg := obs.NewRegistry()
	c := New[string, int](1)
	c.Instrument(reg, "test.cache")
	c.Put("a", 1)
	c.Get("a")
	c.Get("zzz")
	c.Put("b", 2) // evicts a
	if got := reg.Counter("test.cache.hits").Value(); got != 1 {
		t.Fatalf("hits counter = %d", got)
	}
	if got := reg.Counter("test.cache.misses").Value(); got != 1 {
		t.Fatalf("misses counter = %d", got)
	}
	if got := reg.Counter("test.cache.evictions").Value(); got != 1 {
		t.Fatalf("evictions counter = %d", got)
	}
}

// TestConcurrentAccess hammers one cache from many goroutines; run under
// -race this is the concurrent-safety test the caching layer relies on.
func TestConcurrentAccess(t *testing.T) {
	c := New[string, int](32)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("k%d", (g*31+i)%64)
				if i%3 == 0 {
					c.Put(k, i)
				} else if i%7 == 0 {
					c.Delete(k)
				} else {
					c.Get(k)
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 32 {
		t.Fatalf("cache exceeded capacity under concurrency: %d", c.Len())
	}
	st := c.Stats()
	if st.Hits+st.Misses == 0 {
		t.Fatal("no lookups recorded")
	}
}
