package dl2sql

import (
	"fmt"
	"time"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// Infer runs one inference entirely in SQL: it encodes the input into
// relational form, executes the translated query pipeline layer by layer,
// and returns the argmax class index and its score. Step costs are
// appended to t.Steps.
func (t *Translator) Infer(sm *StoredModel, input *tensor.Tensor) (int, float64, error) {
	var chainKey uint64
	if t.Cache != nil {
		start := time.Now()
		chainKey = tensor.HashMix(t.modelStamp(sm), input.Hash(), uint64(t.PreJoin))
		if r, ok := t.Cache.results.Get(chainKey); ok {
			t.record("Inference [cached]", 1, time.Since(start))
			return r.idx, r.score, nil
		}
	}

	var temps []string
	defer func() {
		for _, name := range temps {
			t.DB.DropTable(name)
		}
	}()

	cur, err := t.encodeForFirstLayer(sm, input, &temps)
	if err != nil {
		return 0, 0, err
	}
	lastConv := 0
	if t.Cache != nil {
		cur, err = t.runChainCached(sm.layers, cur, &temps, &lastConv, chainKey)
	} else {
		cur, err = t.runChain(sm.layers, cur, &temps, &lastConv)
	}
	if err != nil {
		return 0, 0, err
	}
	// Argmax over the final score table.
	res, err := t.exec("Classification", fmt.Sprintf(
		`SELECT TupleID, Value FROM %s ORDER BY Value DESC, TupleID LIMIT 1`, cur.table))
	if err != nil {
		return 0, 0, err
	}
	if res.NumRows() == 0 {
		return 0, 0, fmt.Errorf("dl2sql: empty final score table")
	}
	idx, _ := res.Cols[0].Get(0).AsInt()
	score, _ := res.Cols[1].Get(0).AsFloat()
	// A query on a dying context must not publish into the shared cache:
	// later queries would otherwise observe state from a run that was
	// abandoned partway through.
	if t.Cache != nil && t.ctx().Err() == nil {
		t.Cache.results.Put(chainKey, cachedResult{idx: int(idx), score: score})
	}
	return int(idx), score, nil
}

// InferTensor runs the SQL pipeline and materializes the final layer's
// output as a tensor (used by the equivalence tests).
func (t *Translator) InferTensor(sm *StoredModel, input *tensor.Tensor) (*tensor.Tensor, error) {
	var temps []string
	defer func() {
		for _, name := range temps {
			t.DB.DropTable(name)
		}
	}()
	cur, err := t.encodeForFirstLayer(sm, input, &temps)
	if err != nil {
		return nil, err
	}
	lastConv := 0
	if t.Cache != nil {
		key := tensor.HashMix(t.modelStamp(sm), input.Hash(), uint64(t.PreJoin))
		cur, err = t.runChainCached(sm.layers, cur, &temps, &lastConv, key)
	} else {
		cur, err = t.runChain(sm.layers, cur, &temps, &lastConv)
	}
	if err != nil {
		return nil, err
	}
	return t.tensorFromFlat(cur.table, cur.c, cur.h, cur.w)
}

// encodeForFirstLayer implements the loading step: Algorithm 1 (patch form)
// when the model starts with a convolution, flat form otherwise. Under
// PreJoinInput the encoding is pre-multiplied with the first kernel.
func (t *Translator) encodeForFirstLayer(sm *StoredModel, input *tensor.Tensor, temps *[]string) (relForm, error) {
	in := sm.Model.InputShape
	if len(sm.layers) > 0 && sm.layers[0].mappingTable == "" {
		if conv, ok := sm.layers[0].layer.(*nn.Conv2D); ok {
			name := t.nextTemp("fm0")
			*temps = append(*temps, name)
			if t.PreJoin == PreJoinInput {
				if err := t.encodeInputPreJoined(name, input, conv); err != nil {
					return relForm{}, err
				}
				return relForm{table: name, flat: false, c: in[0], h: in[1], w: in[2]}, nil
			}
			if _, err := t.EncodeInput(name, input, conv.K, conv.Stride, conv.Pad); err != nil {
				return relForm{}, err
			}
			return relForm{table: name, flat: false, c: in[0], h: in[1], w: in[2]}, nil
		}
	}
	name := t.nextTemp("flat0")
	*temps = append(*temps, name)
	if err := t.EncodeFlat(name, input); err != nil {
		return relForm{}, err
	}
	c, h, w := 1, 1, input.Len()
	if len(in) == 3 {
		c, h, w = in[0], in[1], in[2]
	}
	return relForm{table: name, flat: true, c: c, h: h, w: w}, nil
}

// runChain executes a compiled layer chain.
func (t *Translator) runChain(layers []storedLayer, cur relForm, temps *[]string, lastConv *int) (relForm, error) {
	var err error
	for i := range layers {
		cur, err = t.runLayer(&layers[i], cur, temps, lastConv)
		if err != nil {
			return cur, err
		}
	}
	return cur, nil
}

func (t *Translator) runLayer(sl *storedLayer, cur relForm, temps *[]string, lastConv *int) (relForm, error) {
	switch v := sl.layer.(type) {
	case *nn.Conv2D:
		*lastConv = sl.ordinal
		return t.runConv(sl, v, cur, temps)
	case *nn.Linear:
		return t.runLinear(sl, v, cur, temps)
	case *nn.BatchNorm, *nn.InstanceNorm:
		return t.runNorm(sl, cur, temps, *lastConv)
	case *nn.ReLU:
		return t.runReLU(cur, *lastConv)
	case *nn.Sigmoid:
		return t.runSigmoid(cur, temps)
	case *nn.MaxPool:
		return t.runPool(sl, cur, temps, "MAX")
	case *nn.AvgPool:
		return t.runPool(sl, cur, temps, "AVG")
	case *nn.GlobalAvgPool:
		return t.runGlobalAvg(sl, cur, temps)
	case *nn.Flatten:
		// Flat TupleIDs already enumerate features channel-major.
		return relForm{table: cur.table, flat: true, c: cur.size(), h: 1, w: 1}, nil
	case *nn.Softmax:
		return t.runSoftmax(cur, temps)
	case *nn.ResidualBlock:
		return t.runResidual(sl, cur, temps, lastConv)
	case *nn.DenseBlock:
		return t.runDense(sl, v, cur, temps, lastConv)
	case *nn.BasicAttention:
		return t.runAttention(sl, v, cur, temps)
	case *nn.Deconv2D:
		*lastConv = sl.ordinal
		return t.runDeconv(sl, v, cur, temps)
	}
	return cur, fmt.Errorf("%w: %s (%s)", ErrUnsupported, sl.layer.Name(), sl.layer.Kind())
}

// runConv emits Q2 (when the input is flat) and Q1, plus the bias join.
func (t *Translator) runConv(sl *storedLayer, conv *nn.Conv2D, cur relForm, temps *[]string) (relForm, error) {
	outC, outH, outW := sl.outShape[0], sl.outShape[1], sl.outShape[2]
	ohw := outH * outW
	label := fmt.Sprintf("Conv%d", sl.ordinal)
	var out string

	switch {
	case cur.flat && sl.mappingTable != "" && t.PreJoin != PreJoinNone:
		// Strategy 2/3: the mapping process (Q2) is fused into the
		// convolution statement as a subquery — the intermediate FeatureMap
		// table is never materialized.
		out = t.nextTemp("conv")
		*temps = append(*temps, out)
		sql := fmt.Sprintf(
			`CREATE TEMP TABLE %s AS SELECT K.KernelID * %d + X.MatrixID AS TupleID, K.KernelID AS KernelID, SUM(X.Value * K.Value) AS Value FROM (SELECT B.MatrixID AS MatrixID, B.OrderID AS OrderID, A.Value AS Value FROM %s A, %s B WHERE A.TupleID = B.TupleID) X INNER JOIN %s K ON X.OrderID = K.OrderID GROUP BY K.KernelID, X.MatrixID`,
			out, ohw, cur.table, sl.mappingTable, sl.kernelTable)
		if err := t.execToTable(label, out, sql); err != nil {
			return cur, err
		}
	case cur.flat:
		// Q2: reshape flat output into the next patch layout.
		fm := t.nextTemp("fm")
		*temps = append(*temps, fm)
		sqlQ2 := fmt.Sprintf(
			`CREATE TEMP TABLE %s AS SELECT B.MatrixID AS MatrixID, B.OrderID AS OrderID, A.Value AS Value FROM %s A, %s B WHERE A.TupleID = B.TupleID`,
			fm, cur.table, sl.mappingTable)
		if err := t.execToTable(fmt.Sprintf("Reshape%d", sl.ordinal-1), fm, sqlQ2); err != nil {
			return cur, err
		}
		cur = relForm{table: fm, flat: false, c: cur.c, h: cur.h, w: cur.w}
		fallthrough
	default:
		if cur.flat {
			return cur, fmt.Errorf("dl2sql: conv %s received flat input without a mapping table", conv.Name())
		}
		if t.PreJoin == PreJoinInput && sl.mappingTable == "" {
			// Strategy 3 on the first layer: input was encoded
			// pre-multiplied — only the aggregation remains.
			out = t.nextTemp("conv")
			*temps = append(*temps, out)
			sql := fmt.Sprintf(
				`CREATE TEMP TABLE %s AS SELECT KernelID * %d + MatrixID AS TupleID, KernelID AS KernelID, SUM(Value) AS Value FROM %s GROUP BY KernelID, MatrixID`,
				out, ohw, cur.table)
			if err := t.execToTable(label, out, sql); err != nil {
				return cur, err
			}
		} else {
			// Q1: the convolution join.
			out = t.nextTemp("conv")
			*temps = append(*temps, out)
			sql := fmt.Sprintf(
				`CREATE TEMP TABLE %s AS SELECT B.KernelID * %d + A.MatrixID AS TupleID, B.KernelID AS KernelID, SUM(A.Value * B.Value) AS Value FROM %s A INNER JOIN %s B ON A.OrderID = B.OrderID GROUP BY B.KernelID, A.MatrixID`,
				out, ohw, cur.table, sl.kernelTable)
			if err := t.execToTable(label, out, sql); err != nil {
				return cur, err
			}
		}
	}
	next := relForm{table: out, flat: true, c: outC, h: outH, w: outW}
	return t.applyBias(sl, next, temps, label)
}

// applyBias joins per-channel biases onto a flat relation.
func (t *Translator) applyBias(sl *storedLayer, cur relForm, temps *[]string, label string) (relForm, error) {
	if sl.biasTable == "" {
		return cur, nil
	}
	out := t.nextTemp("bias")
	*temps = append(*temps, out)
	sql := fmt.Sprintf(
		`CREATE TEMP TABLE %s AS SELECT A.TupleID AS TupleID, A.KernelID AS KernelID, A.Value + B.Value AS Value FROM %s A, %s B WHERE A.KernelID = B.KernelID`,
		out, cur.table, sl.biasTable)
	if err := t.execToTable(label, out, sql); err != nil {
		return cur, err
	}
	cur.table = out
	return cur, nil
}

// runLinear treats full connection as a kernel-size-1 convolution over the
// flattened input: a single join on the feature index.
func (t *Translator) runLinear(sl *storedLayer, lin *nn.Linear, cur relForm, temps *[]string) (relForm, error) {
	if !cur.flat {
		return cur, fmt.Errorf("dl2sql: linear %s needs flat input", lin.Name())
	}
	out := t.nextTemp("fc")
	*temps = append(*temps, out)
	sql := fmt.Sprintf(
		`CREATE TEMP TABLE %s AS SELECT B.KernelID AS TupleID, B.KernelID AS KernelID, SUM(A.Value * B.Value) AS Value FROM %s A, %s B WHERE A.TupleID = B.OrderID GROUP BY B.KernelID`,
		out, cur.table, sl.kernelTable)
	if err := t.execToTable("FC", out, sql); err != nil {
		return cur, err
	}
	next := relForm{table: out, flat: true, c: lin.Out, h: 1, w: 1}
	return t.applyBias(sl, next, temps, "FC")
}

// runNorm emits the paper's Q4 batch-normalization: per-channel
// (Value − AVG)/(stddevSamp + ε). Channels live in separate logical
// feature tables in the paper (footnote 4); here the KernelID column plays
// that role and the statistics come from a grouped subquery. Learned γ/β
// and frozen running statistics, when present, come from the layer's
// parameter table.
func (t *Translator) runNorm(sl *storedLayer, cur relForm, temps *[]string, lastConv int) (relForm, error) {
	if !cur.flat {
		return cur, fmt.Errorf("dl2sql: norm %s needs flat input", sl.layer.Name())
	}
	useBatchStats := true
	if bn, ok := sl.layer.(*nn.BatchNorm); ok {
		useBatchStats = bn.UseBatchStats
	}
	out := t.nextTemp("bn")
	*temps = append(*temps, out)
	var sql string
	switch {
	case sl.kernelTable == "":
		// Identity batch-stat norm: the paper's literal Q4.
		sql = fmt.Sprintf(
			`CREATE TEMP TABLE %s AS SELECT A.TupleID AS TupleID, A.KernelID AS KernelID, ((A.Value - S.mu) / (S.sd + %g)) AS Value FROM %s A, (SELECT KernelID, AVG(Value) AS mu, stddevSamp(Value) AS sd FROM %s GROUP BY KernelID) S WHERE A.KernelID = S.KernelID`,
			out, nn.BNEpsilon, cur.table, cur.table)
	case useBatchStats:
		// Learned γ/β over batch statistics.
		sql = fmt.Sprintf(
			`CREATE TEMP TABLE %s AS SELECT A.TupleID AS TupleID, A.KernelID AS KernelID, (P.Gamma * (A.Value - S.mu) / (S.sd + %g)) + P.Beta AS Value FROM %s A, (SELECT KernelID, AVG(Value) AS mu, stddevSamp(Value) AS sd FROM %s GROUP BY KernelID) S, %s P WHERE A.KernelID = S.KernelID AND A.KernelID = P.KernelID`,
			out, nn.BNEpsilon, cur.table, cur.table, sl.kernelTable)
	default:
		// Frozen running statistics: γ(x−μ)/√(σ²+ε) + β.
		sql = fmt.Sprintf(
			`CREATE TEMP TABLE %s AS SELECT A.TupleID AS TupleID, A.KernelID AS KernelID, (P.Gamma * (A.Value - P.Mean) / sqrt(P.Var + %g)) + P.Beta AS Value FROM %s A, %s P WHERE A.KernelID = P.KernelID`,
			out, nn.BNEpsilon, cur.table, sl.kernelTable)
	}
	if err := t.execToTable(fmt.Sprintf("BN%d", lastConv), out, sql); err != nil {
		return cur, err
	}
	cur.table = out
	return cur, nil
}

// runReLU applies the paper's UPDATE-based rectification in place.
func (t *Translator) runReLU(cur relForm, lastConv int) (relForm, error) {
	if !cur.flat {
		return cur, fmt.Errorf("dl2sql: relu needs flat input")
	}
	sql := fmt.Sprintf(`UPDATE %s SET Value = 0 WHERE Value < 0`, cur.table)
	if _, err := t.exec(fmt.Sprintf("ReLU%d", lastConv), sql); err != nil {
		return cur, err
	}
	return cur, nil
}

func (t *Translator) runSigmoid(cur relForm, temps *[]string) (relForm, error) {
	out := t.nextTemp("sig")
	*temps = append(*temps, out)
	sql := fmt.Sprintf(
		`CREATE TEMP TABLE %s AS SELECT TupleID, KernelID, 1 / (1 + exp(0 - Value)) AS Value FROM %s`,
		out, cur.table)
	if err := t.execToTable("Sigmoid", out, sql); err != nil {
		return cur, err
	}
	cur.table = out
	return cur, nil
}

// runPool emits Q3: the pooling mapping join plus a grouped MAX/AVG.
func (t *Translator) runPool(sl *storedLayer, cur relForm, temps *[]string, agg string) (relForm, error) {
	if !cur.flat {
		return cur, fmt.Errorf("dl2sql: pooling needs flat input")
	}
	outC, outH, outW := sl.outShape[0], sl.outShape[1], sl.outShape[2]
	ohw := outH * outW
	out := t.nextTemp("pool")
	*temps = append(*temps, out)
	sql := fmt.Sprintf(
		`CREATE TEMP TABLE %s AS SELECT B.KernelID * %d + B.MatrixID AS TupleID, B.KernelID AS KernelID, %s(A.Value) AS Value FROM %s A, %s B WHERE A.TupleID = B.TupleID GROUP BY B.KernelID, B.MatrixID`,
		out, ohw, agg, cur.table, sl.mappingTable)
	if err := t.execToTable("Pool", out, sql); err != nil {
		return cur, err
	}
	return relForm{table: out, flat: true, c: outC, h: outH, w: outW}, nil
}

func (t *Translator) runGlobalAvg(sl *storedLayer, cur relForm, temps *[]string) (relForm, error) {
	out := t.nextTemp("gap")
	*temps = append(*temps, out)
	sql := fmt.Sprintf(
		`CREATE TEMP TABLE %s AS SELECT KernelID AS TupleID, KernelID AS KernelID, AVG(Value) AS Value FROM %s GROUP BY KernelID`,
		out, cur.table)
	if err := t.execToTable("Pool", out, sql); err != nil {
		return cur, err
	}
	return relForm{table: out, flat: true, c: sl.outShape[0], h: 1, w: 1}, nil
}

// runSoftmax emits the classification head: a numerically-stabilized
// exp/SUM over the logit table.
func (t *Translator) runSoftmax(cur relForm, temps *[]string) (relForm, error) {
	out := t.nextTemp("sm")
	*temps = append(*temps, out)
	sql := fmt.Sprintf(
		`CREATE TEMP TABLE %s AS SELECT TupleID, KernelID, exp(Value - (SELECT MAX(Value) FROM %s)) / (SELECT SUM(exp(Value - (SELECT MAX(Value) FROM %s))) FROM %s) AS Value FROM %s`,
		out, cur.table, cur.table, cur.table, cur.table)
	if err := t.execToTable("Classification", out, sql); err != nil {
		return cur, err
	}
	cur.table = out
	return cur, nil
}

// runResidual executes the paper's Q5: both paths from the same input,
// elementwise sum, then the UPDATE-based ReLU.
func (t *Translator) runResidual(sl *storedLayer, cur relForm, temps *[]string, lastConv *int) (relForm, error) {
	mainOut, err := t.runChain(sl.main, cur, temps, lastConv)
	if err != nil {
		return cur, err
	}
	shortOut := cur
	if len(sl.shortcut) > 0 {
		shortOut, err = t.runChain(sl.shortcut, cur, temps, lastConv)
		if err != nil {
			return cur, err
		}
	}
	out := t.nextTemp("res")
	*temps = append(*temps, out)
	sql := fmt.Sprintf(
		`CREATE TEMP TABLE %s AS SELECT A.TupleID AS TupleID, A.KernelID AS KernelID, A.Value + B.Value AS Value FROM %s A, %s B WHERE A.TupleID = B.TupleID`,
		out, mainOut.table, shortOut.table)
	if err := t.execToTable(fmt.Sprintf("Residual%d", *lastConv), out, sql); err != nil {
		return cur, err
	}
	next := relForm{table: out, flat: true, c: mainOut.c, h: mainOut.h, w: mainOut.w}
	return t.runReLU(next, *lastConv)
}

// runDense executes a dense block: each stage convolves the accumulated
// concatenation, and the stage output is appended with shifted channel and
// tuple IDs.
func (t *Translator) runDense(sl *storedLayer, blk *nn.DenseBlock, cur relForm, temps *[]string, lastConv *int) (relForm, error) {
	acc := cur
	for i := range sl.main {
		stage := &sl.main[i]
		conv := stage.layer.(*nn.Conv2D)
		*lastConv = stage.ordinal
		stageOut, err := t.runConv(stage, conv, acc, temps)
		if err != nil {
			return cur, err
		}
		// Concatenate along channels.
		concat := t.nextTemp("cat")
		*temps = append(*temps, concat)
		hw := acc.h * acc.w
		sqls := fmt.Sprintf(
			`CREATE TEMP TABLE %s AS SELECT TupleID, KernelID, Value FROM %s;
			 INSERT INTO %s (SELECT TupleID + %d, KernelID + %d, Value FROM %s);`,
			concat, acc.table,
			concat, acc.c*hw, acc.c, stageOut.table)
		if err := t.execToTable(fmt.Sprintf("Dense%d", *lastConv), concat, sqls); err != nil {
			return cur, err
		}
		acc = relForm{table: concat, flat: true, c: acc.c + blk.Growth, h: acc.h, w: acc.w}
	}
	return acc, nil
}

// runAttention executes basic attention as two FC joins, a softmax, and an
// elementwise product — the derivation from full connection the paper
// describes.
func (t *Translator) runAttention(sl *storedLayer, att *nn.BasicAttention, cur relForm, temps *[]string) (relForm, error) {
	scoreLayer := &storedLayer{kernelTable: sl.kernelTable, outShape: []int{att.Dim, 1, 1}}
	scores, err := t.runLinear(scoreLayer, &nn.Linear{LayerName: att.Name() + "_score", In: att.Dim, Out: att.Dim}, cur, temps)
	if err != nil {
		return cur, err
	}
	scores, err = t.runSoftmax(scores, temps)
	if err != nil {
		return cur, err
	}
	valueLayer := &storedLayer{kernelTable: sl.biasTable, outShape: []int{att.Dim, 1, 1}}
	values, err := t.runLinear(valueLayer, &nn.Linear{LayerName: att.Name() + "_value", In: att.Dim, Out: att.Dim}, cur, temps)
	if err != nil {
		return cur, err
	}
	out := t.nextTemp("attn")
	*temps = append(*temps, out)
	sql := fmt.Sprintf(
		`CREATE TEMP TABLE %s AS SELECT A.TupleID AS TupleID, A.KernelID AS KernelID, A.Value * B.Value AS Value FROM %s A, %s B WHERE A.TupleID = B.TupleID`,
		out, scores.table, values.table)
	if err := t.execToTable("Attention", out, sql); err != nil {
		return cur, err
	}
	return relForm{table: out, flat: true, c: att.Dim, h: 1, w: 1}, nil
}

// runDeconv executes transposed convolution via the precomputed
// contribution table: one join + grouped SUM.
func (t *Translator) runDeconv(sl *storedLayer, d *nn.Deconv2D, cur relForm, temps *[]string) (relForm, error) {
	if !cur.flat {
		return cur, fmt.Errorf("dl2sql: deconv %s needs flat input", d.Name())
	}
	outC, outH, outW := sl.outShape[0], sl.outShape[1], sl.outShape[2]
	ohw := outH * outW
	out := t.nextTemp("deconv")
	*temps = append(*temps, out)
	sql := fmt.Sprintf(
		`CREATE TEMP TABLE %s AS SELECT C.KernelID * %d + C.OutID AS TupleID, C.KernelID AS KernelID, SUM(A.Value * C.Weight) AS Value FROM %s A, %s C WHERE A.TupleID = C.TupleID GROUP BY C.KernelID, C.OutID`,
		out, ohw, cur.table, sl.kernelTable)
	if err := t.execToTable(fmt.Sprintf("Deconv%d", sl.ordinal), out, sql); err != nil {
		return cur, err
	}
	next := relForm{table: out, flat: true, c: outC, h: outH, w: outW}
	return t.applyBias(sl, next, temps, fmt.Sprintf("Deconv%d", sl.ordinal))
}

// encodeInputPreJoined implements pre-join strategy 3: the input encoding
// is joined with the first kernel during data generation, storing
// pre-multiplied products {KernelID, MatrixID, Value}.
func (t *Translator) encodeInputPreJoined(name string, in *tensor.Tensor, conv *nn.Conv2D) error {
	t.dropIfExists(name)
	tbl, err := t.DB.CreateTable(name, preJoinedInputSchema())
	if err != nil {
		return err
	}
	cols, err := tensor.Im2Col(in, conv.K, conv.Stride, conv.Pad)
	if err != nil {
		return err
	}
	nm, no := cols.Dim(0), cols.Dim(1)
	for kID := 0; kID < conv.OutC; kID++ {
		w := conv.KernelRow(kID)
		for m := 0; m < nm; m++ {
			for o := 0; o < no; o++ {
				if err := appendPreJoined(tbl, kID, m, cols.At(m, o)*w[o]); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
