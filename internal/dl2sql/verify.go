package dl2sql

import (
	"fmt"
	"math"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// VerifyReport summarizes a translation-correctness check.
type VerifyReport struct {
	Trials        int
	MaxAbsError   float64
	Misclassified int
}

// Verify checks that a stored model's SQL pipeline reproduces the native
// engine on `trials` deterministic pseudo-random inputs: it compares the
// full output tensors elementwise and the argmax predictions. Downstream
// users should run this once after StoreModel before trusting a deployed
// translation (it is how this repository's own equivalence tests work).
func (t *Translator) Verify(sm *StoredModel, trials int, eps float64) (*VerifyReport, error) {
	if trials <= 0 {
		trials = 3
	}
	rep := &VerifyReport{Trials: trials}
	shape := sm.Model.InputShape
	for trial := 0; trial < trials; trial++ {
		in := verifyInput(shape, int64(trial)*7919+1)
		want, err := sm.Model.Forward(in)
		if err != nil {
			return nil, fmt.Errorf("dl2sql: verify trial %d native forward: %w", trial, err)
		}
		got, err := t.InferTensor(sm, in)
		if err != nil {
			return nil, fmt.Errorf("dl2sql: verify trial %d SQL forward: %w", trial, err)
		}
		if got.Len() != want.Len() {
			return nil, fmt.Errorf("dl2sql: verify trial %d: output sizes differ (%v vs %v)", trial, got.Shape(), want.Shape())
		}
		for i := range want.Data() {
			d := math.Abs(got.Data()[i] - want.Data()[i])
			if d > rep.MaxAbsError {
				rep.MaxAbsError = d
			}
		}
		if got.ArgMax() != want.ArgMax() {
			rep.Misclassified++
		}
	}
	if rep.MaxAbsError > eps {
		return rep, fmt.Errorf("dl2sql: verification failed: max abs error %g exceeds %g", rep.MaxAbsError, eps)
	}
	if rep.Misclassified > 0 {
		return rep, fmt.Errorf("dl2sql: verification failed: %d/%d trials misclassified", rep.Misclassified, trials)
	}
	return rep, nil
}

// verifyInput builds a deterministic input tensor.
func verifyInput(shape []int, seed int64) *tensor.Tensor {
	out := tensor.New(shape...)
	state := uint64(seed)*0x9E3779B97F4A7C15 + 1
	for i := range out.Data() {
		state += 0x9E3779B97F4A7C15
		z := state
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		z ^= z >> 31
		out.Data()[i] = float64(z>>11)/float64(1<<53)*2 - 1
	}
	return out
}

// MustSupport returns an error naming the first unsupported layer in a
// model, or nil when the whole model translates (the programmatic form of
// Table II's support matrix).
func MustSupport(m *nn.Model) error {
	var check func(layers []nn.Layer) error
	check = func(layers []nn.Layer) error {
		for _, l := range layers {
			if !Supported(l) {
				return fmt.Errorf("%w: %s (%s)", ErrUnsupported, l.Name(), l.Kind())
			}
			switch b := l.(type) {
			case *nn.ResidualBlock:
				if err := check(b.Main); err != nil {
					return err
				}
				if err := check(b.Shortcut); err != nil {
					return err
				}
			case *nn.DenseBlock:
				for _, s := range b.Stages {
					if err := check([]nn.Layer{s}); err != nil {
						return err
					}
				}
			}
		}
		return nil
	}
	return check(m.Layers)
}
