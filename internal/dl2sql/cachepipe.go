package dl2sql

// Pipeline-level caching for SQL inference.
//
// Every strategies.Execute stores the referenced models under a fresh,
// uniquely-prefixed set of tables, so table names are useless as cache
// keys. The cache therefore keys on *semantic* content:
//
//	modelStamp = hash(encoded weights) ⊕ current version of every stored
//	             table (catches direct mutation of kernel/bias tables)
//	result key = modelStamp ⊕ input tensor hash ⊕ pre-join strategy
//	step key   = running hash chained per executed layer
//
// Two LRUs hang off a PipelineCache:
//
//   - results: whole-Infer memoization — (class index, score) per
//     (model, input). A hit skips the entire SQL pipeline.
//   - steps: materialized intermediate relations (the FeatureMap /
//     Layer_Output tables) per layer. A hit rehydrates the stored columns
//     into a fresh temp table instead of re-running the layer's SQL, so
//     identical conv/bn/relu prefixes are reused even when the suffix of
//     the pipeline differs (e.g. two nUDFs backed by the same task model
//     within one query).
//
// Stored columns are deep-copied on both store and load: the paper's
// UPDATE-based ReLU mutates its input table in place, so shared backing
// arrays would corrupt the cache.
import (
	"time"

	"repro/internal/obs"
	"repro/internal/sqldb"
	"repro/internal/tensor"

	icache "repro/internal/cache"
)

// cachedRel is a materialized intermediate relation: the column data plus
// the relForm metadata needed to resume the pipeline from it.
type cachedRel struct {
	schema  sqldb.Schema
	cols    []*sqldb.Column // deep copies; cloned again on load
	flat    bool
	c, h, w int
}

// cachedResult is a memoized whole-inference outcome.
type cachedResult struct {
	idx   int
	score float64
}

// PipelineCache memoizes SQL inference across Infer calls and across
// translators (cache keys are semantic, so a model re-stored under a new
// prefix still hits). Attach one to Translator.Cache to enable; a nil
// PipelineCache disables caching at zero cost.
type PipelineCache struct {
	results *icache.LRU[uint64, cachedResult]
	steps   *icache.LRU[uint64, *cachedRel]
}

// NewPipelineCache builds a cache holding up to resultCap memoized
// inferences and stepCap materialized intermediates.
func NewPipelineCache(resultCap, stepCap int) *PipelineCache {
	return &PipelineCache{
		results: icache.New[uint64, cachedResult](resultCap),
		steps:   icache.New[uint64, *cachedRel](stepCap),
	}
}

// Instrument mirrors hit/miss/eviction counts into the registry under
// "dl2sql.cache.results.*" and "dl2sql.cache.steps.*".
func (pc *PipelineCache) Instrument(reg *obs.Registry) {
	if pc == nil {
		return
	}
	pc.results.Instrument(reg, "dl2sql.cache.results")
	pc.steps.Instrument(reg, "dl2sql.cache.steps")
}

// Stats reports both LRUs' counters.
func (pc *PipelineCache) Stats() (results, steps icache.Stats) {
	if pc == nil {
		return
	}
	return pc.results.Stats(), pc.steps.Stats()
}

// Purge empties both LRUs.
func (pc *PipelineCache) Purge() {
	if pc == nil {
		return
	}
	pc.results.Purge()
	pc.steps.Purge()
}

// modelStamp fingerprints the stored model's current state: the encoded
// weights plus the live version counter of every backing table, so a
// direct UPDATE/INSERT against a kernel table invalidates all keys
// derived from the stamp.
func (t *Translator) modelStamp(sm *StoredModel) uint64 {
	h := sm.weightsHash
	for _, name := range sm.tableNames {
		if tb := t.DB.GetTable(name); tb != nil {
			h = tensor.HashMix(h, uint64(tb.Version()))
		} else {
			h = tensor.HashMix(h, ^uint64(0))
		}
	}
	return h
}

// snapshotRel deep-copies the relation's backing table for caching.
// Returns nil when the table is missing (nothing cached).
func (t *Translator) snapshotRel(cur relForm) *cachedRel {
	tb := t.DB.GetTable(cur.table)
	if tb == nil {
		return nil
	}
	shallow := tb.SnapshotCols()
	cols := make([]*sqldb.Column, len(shallow))
	for i, c := range shallow {
		cols[i] = c.Clone()
	}
	return &cachedRel{
		schema: append(sqldb.Schema(nil), tb.Schema...),
		cols:   cols,
		flat:   cur.flat,
		c:      cur.c, h: cur.h, w: cur.w,
	}
}

// restoreRel rehydrates a cached relation into a fresh temp table and
// returns the relForm resuming the pipeline from it.
func (t *Translator) restoreRel(rel *cachedRel, temps *[]string) (relForm, error) {
	name := t.nextTemp("chit")
	t.dropIfExists(name)
	tb, err := t.DB.CreateTable(name, append(sqldb.Schema(nil), rel.schema...))
	if err != nil {
		return relForm{}, err
	}
	*temps = append(*temps, name)
	cols := make([]*sqldb.Column, len(rel.cols))
	for i, c := range rel.cols {
		cols[i] = c.Clone()
	}
	if err := tb.ReplaceData(cols); err != nil {
		return relForm{}, err
	}
	return relForm{table: name, flat: rel.flat, c: rel.c, h: rel.h, w: rel.w}, nil
}

// maxOrdinal finds the highest conv ordinal reachable from a stored layer
// (needed to keep BN/ReLU step labels correct when a conv layer is served
// from the cache and runLayer never sets lastConv).
func maxOrdinal(sl *storedLayer) int {
	best := sl.ordinal
	for i := range sl.main {
		if o := maxOrdinal(&sl.main[i]); o > best {
			best = o
		}
	}
	for i := range sl.shortcut {
		if o := maxOrdinal(&sl.shortcut[i]); o > best {
			best = o
		}
	}
	return best
}

// runChainCached executes the top-level layer chain with per-step
// memoization. key must already incorporate the model stamp, the input
// hash, and the pre-join strategy; it is chained per layer so a step's
// key pins its entire prefix.
func (t *Translator) runChainCached(layers []storedLayer, cur relForm, temps *[]string, lastConv *int, key uint64) (relForm, error) {
	for i := range layers {
		sl := &layers[i]
		key = tensor.HashString(tensor.HashMix(key, uint64(i)), sl.layer.Name())
		if rel, ok := t.Cache.steps.Get(key); ok {
			start := time.Now()
			restored, err := t.restoreRel(rel, temps)
			if err != nil {
				return cur, err
			}
			if o := maxOrdinal(sl); o > *lastConv {
				*lastConv = o
			}
			rows := 0
			if tb := t.DB.GetTable(restored.table); tb != nil {
				rows = tb.NumRows()
			}
			t.record(sl.layer.Name()+" [cached]", rows, time.Since(start))
			cur = restored
			continue
		}
		var err error
		cur, err = t.runLayer(sl, cur, temps, lastConv)
		if err != nil {
			return cur, err
		}
		// Skip the Put once the query's context is done — a cancelled run
		// must not leave per-layer snapshots behind for other queries.
		if snap := t.snapshotRel(cur); snap != nil && t.ctx().Err() == nil {
			t.Cache.steps.Put(key, snap)
		}
	}
	return cur, nil
}
