package dl2sql

import (
	"repro/internal/sqldb"
	"repro/internal/tensor"
)

// storeConvMapping implements (a multi-channel, padding-aware
// generalization of) Algorithm 2: it creates the Kernel_Mapping table
// {MatrixID, OrderID, TupleID} that re-indexes a layer's flat output into
// the next convolution's patch layout.
//
// TupleID is the flat channel-major index into the previous output tensor
// (shape inShape = [C, H, W]); MatrixID enumerates output positions of the
// next convolution row-major; OrderID = c*k*k + ky*k + kx matches the
// kernel table's serialization. Patch positions that fall into padding emit
// no row — the subsequent inner join then contributes nothing for them,
// which is exactly the zero-padding semantics under SUM aggregation.
//
// The mapping depends only on (inShape, k, stride, pad) — as the paper
// notes, it is generated offline once per layer geometry.
func (t *Translator) storeConvMapping(name string, inShape []int, k, stride, pad int) error {
	t.dropIfExists(name)
	tbl, err := t.DB.CreateTable(name, sqldb.Schema{
		{Name: "MatrixID", Type: sqldb.TInt},
		{Name: "OrderID", Type: sqldb.TInt},
		{Name: "TupleID", Type: sqldb.TInt},
	})
	if err != nil {
		return err
	}
	c, h, w := inShape[0], inShape[1], inShape[2]
	outH := tensor.ConvOutDim(h, k, stride, pad)
	outW := tensor.ConvOutDim(w, k, stride, pad)
	matrix := 0
	for oy := 0; oy < outH; oy++ {
		for ox := 0; ox < outW; ox++ {
			for ch := 0; ch < c; ch++ {
				for ky := 0; ky < k; ky++ {
					y := oy*stride + ky - pad
					if y < 0 || y >= h {
						continue
					}
					for kx := 0; kx < k; kx++ {
						x := ox*stride + kx - pad
						if x < 0 || x >= w {
							continue
						}
						order := ch*k*k + ky*k + kx
						tuple := ch*h*w + y*w + x
						if err := tbl.AppendRow([]sqldb.Datum{
							sqldb.Int(int64(matrix)), sqldb.Int(int64(order)), sqldb.Int(int64(tuple)),
						}); err != nil {
							return err
						}
					}
				}
			}
			matrix++
		}
	}
	return nil
}

// storePoolMapping creates the pooling window mapping
// {MatrixID, KernelID, TupleID}: output position MatrixID of channel
// KernelID aggregates the input elements TupleID. Q3 then reduces it with
// MAX or AVG grouped by (KernelID, MatrixID). Pooling never pads.
func (t *Translator) storePoolMapping(name string, inShape []int, k, stride int) error {
	t.dropIfExists(name)
	tbl, err := t.DB.CreateTable(name, sqldb.Schema{
		{Name: "MatrixID", Type: sqldb.TInt},
		{Name: "KernelID", Type: sqldb.TInt},
		{Name: "TupleID", Type: sqldb.TInt},
	})
	if err != nil {
		return err
	}
	c, h, w := inShape[0], inShape[1], inShape[2]
	outH := tensor.ConvOutDim(h, k, stride, 0)
	outW := tensor.ConvOutDim(w, k, stride, 0)
	for ch := 0; ch < c; ch++ {
		matrix := 0
		for oy := 0; oy < outH; oy++ {
			for ox := 0; ox < outW; ox++ {
				for ky := 0; ky < k; ky++ {
					for kx := 0; kx < k; kx++ {
						tuple := ch*h*w + (oy*stride+ky)*w + (ox*stride + kx)
						if err := tbl.AppendRow([]sqldb.Datum{
							sqldb.Int(int64(matrix)), sqldb.Int(int64(ch)), sqldb.Int(int64(tuple)),
						}); err != nil {
							return err
						}
					}
				}
				matrix++
			}
		}
	}
	return nil
}
