package dl2sql

import (
	"math"
	"testing"

	"repro/internal/modelrepo"
	"repro/internal/nn"
	"repro/internal/sqldb"
	"repro/internal/tensor"
)

func newTr(t *testing.T) *Translator {
	t.Helper()
	db := sqldb.New()
	db.Profile = sqldb.NewProfile()
	return NewTranslator(db, "m")
}

func randTensor(shape []int, seed int64) *tensor.Tensor {
	out := tensor.New(shape...)
	s := uint64(seed)*0x9E3779B97F4A7C15 + 1
	for i := range out.Data() {
		s += 0x9E3779B97F4A7C15
		z := s
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		z ^= z >> 31
		out.Data()[i] = float64(z>>11)/float64(1<<53)*2 - 1
	}
	return out
}

// checkEquivalence stores the model, runs both the native and the SQL
// pipeline on the same input, and compares outputs elementwise.
func checkEquivalence(t *testing.T, m *nn.Model, in *tensor.Tensor, eps float64) {
	t.Helper()
	tr := newTr(t)
	sm, err := tr.StoreModel(m)
	if err != nil {
		t.Fatalf("StoreModel: %v", err)
	}
	want, err := m.Forward(in)
	if err != nil {
		t.Fatalf("native forward: %v", err)
	}
	got, err := tr.InferTensor(sm, in)
	if err != nil {
		t.Fatalf("SQL forward: %v", err)
	}
	if got.Len() != want.Len() {
		t.Fatalf("size mismatch: sql %v vs native %v", got.Shape(), want.Shape())
	}
	for i := range want.Data() {
		if math.Abs(got.Data()[i]-want.Data()[i]) > eps {
			t.Fatalf("element %d: sql %v vs native %v", i, got.Data()[i], want.Data()[i])
		}
	}
}

func TestConvOnlyEquivalence(t *testing.T) {
	m := nn.NewModel("conv", []int{1, 5, 5}, nil)
	m.Add(nn.NewConv2D("c1", 1, 2, 3, 2, 0, 7))
	checkEquivalence(t, m, randTensor([]int{1, 5, 5}, 1), 1e-9)
}

func TestConvWithPaddingEquivalence(t *testing.T) {
	m := nn.NewModel("convp", []int{3, 6, 6}, nil)
	m.Add(nn.NewConv2D("c1", 3, 4, 3, 1, 1, 8))
	checkEquivalence(t, m, randTensor([]int{3, 6, 6}, 2), 1e-9)
}

func TestTwoConvsWithReshapeEquivalence(t *testing.T) {
	m := nn.NewModel("conv2", []int{1, 8, 8}, nil)
	m.Add(
		nn.NewConv2D("c1", 1, 3, 3, 1, 1, 9),
		nn.NewConv2D("c2", 3, 2, 3, 2, 1, 10),
	)
	checkEquivalence(t, m, randTensor([]int{1, 8, 8}, 3), 1e-9)
}

func TestConvBNReLUEquivalence(t *testing.T) {
	m := nn.NewModel("cbr", []int{2, 6, 6}, nil)
	m.Add(
		nn.NewConv2D("c1", 2, 4, 3, 1, 0, 11),
		nn.NewBatchNorm("bn1", 4),
		&nn.ReLU{LayerName: "r1"},
	)
	checkEquivalence(t, m, randTensor([]int{2, 6, 6}, 4), 1e-9)
}

func TestMaxPoolEquivalence(t *testing.T) {
	m := nn.NewModel("pool", []int{2, 6, 6}, nil)
	m.Add(
		nn.NewConv2D("c1", 2, 2, 3, 1, 1, 12),
		&nn.MaxPool{LayerName: "p1", K: 2, Stride: 2},
	)
	checkEquivalence(t, m, randTensor([]int{2, 6, 6}, 5), 1e-9)
}

func TestAvgPoolEquivalence(t *testing.T) {
	m := nn.NewModel("apool", []int{1, 4, 4}, nil)
	m.Add(
		nn.NewConv2D("c1", 1, 2, 1, 1, 0, 13),
		&nn.AvgPool{LayerName: "p1", K: 2, Stride: 2},
	)
	checkEquivalence(t, m, randTensor([]int{1, 4, 4}, 6), 1e-9)
}

func TestGlobalAvgAndLinearEquivalence(t *testing.T) {
	m := nn.NewModel("gfl", []int{1, 6, 6}, nil)
	m.Add(
		nn.NewConv2D("c1", 1, 4, 3, 1, 0, 14),
		&nn.GlobalAvgPool{LayerName: "gap"},
		nn.NewLinear("fc", 4, 3, 15),
	)
	checkEquivalence(t, m, randTensor([]int{1, 6, 6}, 7), 1e-9)
}

func TestSoftmaxEquivalence(t *testing.T) {
	m := nn.NewModel("sm", []int{1, 4, 4}, nil)
	m.Add(
		nn.NewConv2D("c1", 1, 2, 1, 1, 0, 16),
		&nn.GlobalAvgPool{LayerName: "gap"},
		nn.NewLinear("fc", 2, 3, 17),
		&nn.Softmax{LayerName: "sm"},
	)
	checkEquivalence(t, m, randTensor([]int{1, 4, 4}, 8), 1e-9)
}

func TestSigmoidEquivalence(t *testing.T) {
	m := nn.NewModel("sig", []int{1, 4, 4}, nil)
	m.Add(
		nn.NewConv2D("c1", 1, 2, 1, 1, 0, 18),
		&nn.Sigmoid{LayerName: "s"},
	)
	checkEquivalence(t, m, randTensor([]int{1, 4, 4}, 9), 1e-9)
}

func TestResidualBlockEquivalence(t *testing.T) {
	m := nn.NewModel("res", []int{2, 6, 6}, nil)
	m.Add(nn.NewResidualBlock("rb", 2, 4, 2, 19))
	checkEquivalence(t, m, randTensor([]int{2, 6, 6}, 10), 1e-9)
}

func TestIdentityBlockEquivalence(t *testing.T) {
	m := nn.NewModel("idb", []int{3, 5, 5}, nil)
	m.Add(nn.NewIdentityResidualBlock("ib", 3, 20))
	checkEquivalence(t, m, randTensor([]int{3, 5, 5}, 11), 1e-9)
}

func TestDenseBlockEquivalence(t *testing.T) {
	m := nn.NewModel("dense", []int{2, 4, 4}, nil)
	m.Add(nn.NewDenseBlock("db", 2, 3, 2, 21))
	checkEquivalence(t, m, randTensor([]int{2, 4, 4}, 12), 1e-9)
}

func TestDeconvEquivalence(t *testing.T) {
	m := nn.NewModel("deconv", []int{1, 3, 3}, nil)
	m.Add(&nn.Flatten{LayerName: "noop"}) // force flat encoding path
	m2 := nn.NewModel("deconv", []int{2, 3, 3}, nil)
	m2.Add(nn.NewDeconv2D("d1", 2, 3, 2, 2, 0, 22))
	checkEquivalence(t, m2, randTensor([]int{2, 3, 3}, 13), 1e-9)
	_ = m
}

func TestAttentionEquivalence(t *testing.T) {
	m := nn.NewModel("attn", []int{1, 2, 2}, nil)
	m.Add(
		&nn.Flatten{LayerName: "fl"},
		nn.NewBasicAttention("att", 4, 23),
	)
	checkEquivalence(t, m, randTensor([]int{1, 2, 2}, 14), 1e-9)
}

func TestInstanceNormEquivalence(t *testing.T) {
	m := nn.NewModel("in", []int{2, 4, 4}, nil)
	m.Add(
		nn.NewConv2D("c1", 2, 3, 1, 1, 0, 24),
		nn.NewInstanceNorm("in1", 3),
	)
	checkEquivalence(t, m, randTensor([]int{2, 4, 4}, 15), 1e-9)
}

func TestStudentModelEquivalence(t *testing.T) {
	m := modelrepo.NewStudentModel(modelrepo.TaskDefectDetection, 16, 99)
	checkEquivalence(t, m, randTensor([]int{3, 16, 16}, 16), 1e-9)
}

func TestStudentModelPredictionAgreement(t *testing.T) {
	m := modelrepo.NewStudentModel(modelrepo.TaskPatternRecog, 16, 100)
	tr := newTr(t)
	sm, err := tr.StoreModel(m)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 5; seed++ {
		in := randTensor([]int{3, 16, 16}, 50+seed)
		wantIdx, wantP, err := m.Predict(in)
		if err != nil {
			t.Fatal(err)
		}
		gotIdx, gotP, err := tr.Infer(sm, in)
		if err != nil {
			t.Fatal(err)
		}
		if gotIdx != wantIdx {
			t.Fatalf("seed %d: sql class %d vs native %d", seed, gotIdx, wantIdx)
		}
		if math.Abs(gotP-wantP) > 1e-9 {
			t.Fatalf("seed %d: sql prob %v vs native %v", seed, gotP, wantP)
		}
	}
}

func TestPreJoinStrategiesEquivalence(t *testing.T) {
	m := modelrepo.NewStudentModel(modelrepo.TaskDefectDetection, 8, 101)
	in := randTensor([]int{3, 8, 8}, 60)
	want, err := m.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	for _, strat := range []PreJoinStrategy{PreJoinNone, PreJoinMapping, PreJoinInput} {
		db := sqldb.New()
		db.Profile = sqldb.NewProfile()
		tr := NewTranslator(db, "m")
		tr.PreJoin = strat
		sm, err := tr.StoreModel(m)
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		got, err := tr.InferTensor(sm, in)
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		if !tensor.Equal(got, want.Reshape(got.Shape()...), 1e-9) {
			t.Fatalf("strategy %v diverges from native", strat)
		}
	}
}

func TestPreJoinReducesJoinSteps(t *testing.T) {
	m := modelrepo.NewStudentModel(modelrepo.TaskDefectDetection, 8, 102)
	in := randTensor([]int{3, 8, 8}, 61)
	countSteps := func(strat PreJoinStrategy, label string) int {
		db := sqldb.New()
		db.Profile = sqldb.NewProfile()
		tr := NewTranslator(db, "m")
		tr.PreJoin = strat
		sm, err := tr.StoreModel(m)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := tr.Infer(sm, in); err != nil {
			t.Fatal(err)
		}
		n := 0
		for _, s := range tr.Steps {
			if len(s.Label) >= len(label) && s.Label[:len(label)] == label {
				n++
			}
		}
		return n
	}
	// Strategy 2 eliminates the Reshape (Q2) steps entirely.
	if n := countSteps(PreJoinNone, "Reshape"); n == 0 {
		t.Fatal("default strategy should have reshape steps")
	}
	if n := countSteps(PreJoinMapping, "Reshape"); n != 0 {
		t.Fatalf("pre-join mapping should remove reshape steps, still have %d", n)
	}
}

func TestStorageBytesGrowsWithDepth(t *testing.T) {
	var prev int64
	for _, depth := range []int{5, 10, 15} {
		db := sqldb.New()
		db.Profile = sqldb.NewProfile()
		tr := NewTranslator(db, "m")
		m, err := modelrepo.NewResNet(depth, modelrepo.TaskDefectDetection, 16, 1)
		if err != nil {
			t.Fatal(err)
		}
		sm, err := tr.StoreModel(m)
		if err != nil {
			t.Fatal(err)
		}
		b := sm.StorageBytes(db)
		if b <= prev {
			t.Fatalf("storage must grow with depth: %d bytes at depth %d", b, depth)
		}
		prev = b
	}
}

func TestResNet5SQLInference(t *testing.T) {
	m, err := modelrepo.NewResNet(5, modelrepo.TaskDefectDetection, 16, 5)
	if err != nil {
		t.Fatal(err)
	}
	checkEquivalence(t, m, randTensor([]int{3, 16, 16}, 70), 1e-8)
}

func TestUnsupportedOperatorRejected(t *testing.T) {
	m := nn.NewModel("bad", []int{4}, nil)
	m.Add(&fakeLSTM{})
	tr := newTr(t)
	if _, err := tr.StoreModel(m); err == nil {
		t.Fatal("expected ErrUnsupported")
	}
}

// fakeLSTM stands in for the operators Table II marks unsupported.
type fakeLSTM struct{}

func (f *fakeLSTM) Name() string                                      { return "lstm1" }
func (f *fakeLSTM) Kind() string                                      { return "lstm" }
func (f *fakeLSTM) Forward(in *tensor.Tensor) (*tensor.Tensor, error) { return in, nil }
func (f *fakeLSTM) OutShape(in []int) ([]int, error)                  { return in, nil }
func (f *fakeLSTM) ParamCount() int64                                 { return 0 }
func (f *fakeLSTM) FLOPs(in []int) int64                              { return 0 }

// TestSupportedOperators is the executable form of Table II.
func TestSupportedOperators(t *testing.T) {
	supported := []nn.Layer{
		&nn.MaxPool{LayerName: "p", K: 2, Stride: 2},
		&nn.AvgPool{LayerName: "p", K: 2, Stride: 2},
		&nn.ReLU{LayerName: "r"},
		&nn.Sigmoid{LayerName: "s"},
		nn.NewBatchNorm("bn", 2),
		nn.NewInstanceNorm("in", 2),
		nn.NewLinear("fc", 2, 2, 1),
		nn.NewConv2D("c", 1, 1, 3, 1, 0, 1),
		nn.NewDeconv2D("d", 1, 1, 2, 2, 0, 1),
		nn.NewResidualBlock("rb", 2, 2, 1, 1),
		nn.NewIdentityResidualBlock("ib", 2, 1),
		nn.NewDenseBlock("db", 2, 2, 2, 1),
		nn.NewBasicAttention("at", 4, 1),
		&nn.Softmax{LayerName: "sm"},
		&nn.Flatten{LayerName: "fl"},
		&nn.GlobalAvgPool{LayerName: "gap"},
	}
	for _, l := range supported {
		if !Supported(l) {
			t.Fatalf("layer %s (%s) should be supported per Table II", l.Name(), l.Kind())
		}
	}
	if Supported(&fakeLSTM{}) {
		t.Fatal("LSTM must be unsupported per Table II")
	}
}

func TestStepsRecorded(t *testing.T) {
	m := modelrepo.NewStudentModel(modelrepo.TaskDefectDetection, 8, 103)
	tr := newTr(t)
	sm, err := tr.StoreModel(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := tr.Infer(sm, randTensor([]int{3, 8, 8}, 80)); err != nil {
		t.Fatal(err)
	}
	labels := map[string]bool{}
	for _, s := range tr.Steps {
		labels[s.Label] = true
	}
	for _, want := range []string{"Conv1", "Conv2", "Conv3", "Reshape1", "Reshape2", "BN1", "ReLU1", "Classification"} {
		if !labels[want] {
			t.Fatalf("missing step label %s; have %v", want, labels)
		}
	}
	if tr.StepTotal() <= 0 {
		t.Fatal("step total must be positive")
	}
	tr.ResetSteps()
	if len(tr.Steps) != 0 {
		t.Fatal("ResetSteps failed")
	}
}

func TestTempTablesCleanedUp(t *testing.T) {
	m := modelrepo.NewStudentModel(modelrepo.TaskDefectDetection, 8, 104)
	tr := newTr(t)
	sm, err := tr.StoreModel(m)
	if err != nil {
		t.Fatal(err)
	}
	before := len(tr.DB.TableNames())
	if _, _, err := tr.Infer(sm, randTensor([]int{3, 8, 8}, 81)); err != nil {
		t.Fatal(err)
	}
	after := len(tr.DB.TableNames())
	if after != before {
		t.Fatalf("temp tables leaked: %d before, %d after", before, after)
	}
}

func TestModelTablesExist(t *testing.T) {
	m := modelrepo.NewStudentModel(modelrepo.TaskDefectDetection, 8, 105)
	tr := newTr(t)
	sm, err := tr.StoreModel(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(sm.TableNames()) < 7 { // meta + 3 kernels + 3 biases at minimum
		t.Fatalf("too few model tables: %v", sm.TableNames())
	}
	for _, name := range sm.TableNames() {
		if tr.DB.GetTable(name) == nil {
			t.Fatalf("missing table %s", name)
		}
	}
	// Metadata table carries conv hyper-parameters.
	res, err := tr.DB.Query("SELECT count(*) c FROM m_meta")
	if err != nil {
		t.Fatal(err)
	}
	if res.Cols[0].Get(0).I != 3 {
		t.Fatalf("meta rows = %v, want 3 convs", res.Cols[0].Get(0))
	}
}

func TestBatchNormLearnedParamsEquivalence(t *testing.T) {
	m := nn.NewModel("bnp", []int{2, 5, 5}, nil)
	bn := nn.NewBatchNorm("bn1", 3)
	rng := int64(77)
	for i := range bn.Gamma {
		bn.Gamma[i] = 0.5 + float64(i)
		bn.Beta[i] = -0.25 * float64(i+1)
		_ = rng
	}
	m.Add(nn.NewConv2D("c1", 2, 3, 3, 1, 0, 30), bn)
	checkEquivalence(t, m, randTensor([]int{2, 5, 5}, 90), 1e-9)
}

func TestBatchNormRunningStatsEquivalence(t *testing.T) {
	m := nn.NewModel("bnr", []int{1, 4, 4}, nil)
	bn := nn.NewBatchNorm("bn1", 2)
	bn.UseBatchStats = false
	for i := range bn.Gamma {
		bn.Gamma[i] = 1.5
		bn.Beta[i] = 0.1 * float64(i)
		bn.Mean[i] = 0.2 * float64(i+1)
		bn.Var[i] = 0.8 + 0.3*float64(i)
	}
	m.Add(nn.NewConv2D("c1", 1, 2, 2, 1, 0, 31), bn)
	checkEquivalence(t, m, randTensor([]int{1, 4, 4}, 91), 1e-9)
}

func TestInstanceNormLearnedParamsEquivalence(t *testing.T) {
	m := nn.NewModel("inp", []int{1, 4, 4}, nil)
	in := nn.NewInstanceNorm("in1", 2)
	in.Gamma[0], in.Gamma[1] = 2, 0.5
	in.Beta[0], in.Beta[1] = 0.3, -0.7
	m.Add(nn.NewConv2D("c1", 1, 2, 2, 1, 0, 32), in)
	checkEquivalence(t, m, randTensor([]int{1, 4, 4}, 92), 1e-9)
}
