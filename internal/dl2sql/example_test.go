package dl2sql_test

import (
	"fmt"

	"repro/internal/dl2sql"
	"repro/internal/nn"
	"repro/internal/sqldb"
	"repro/internal/tensor"
)

// A model is compiled to relational tables once and then inferred as SQL.
func ExampleTranslator_Infer() {
	db := sqldb.New()
	db.Profile = sqldb.NewProfile()

	model := nn.NewModel("demo", []int{1, 4, 4}, []string{"no", "yes"})
	model.Add(
		nn.NewConv2D("c1", 1, 2, 3, 1, 0, 7),
		&nn.ReLU{LayerName: "r1"},
		&nn.GlobalAvgPool{LayerName: "gap"},
		nn.NewLinear("fc", 2, 2, 8),
		&nn.Softmax{LayerName: "sm"},
	)

	tr := dl2sql.NewTranslator(db, "demo")
	sm, err := tr.StoreModel(model)
	if err != nil {
		panic(err)
	}

	input := tensor.New(1, 4, 4).Fill(0.5)
	sqlClass, _, err := tr.Infer(sm, input)
	if err != nil {
		panic(err)
	}
	nativeClass, _, err := model.Predict(input)
	if err != nil {
		panic(err)
	}
	fmt.Println(sqlClass == nativeClass)
	// Output: true
}

// A whole batch runs through one SQL statement per neural operator.
func ExampleTranslator_InferBatch() {
	db := sqldb.New()
	db.Profile = sqldb.NewProfile()
	model := nn.NewModel("demo", []int{1, 4, 4}, []string{"a", "b"})
	model.Add(
		nn.NewConv2D("c1", 1, 2, 3, 1, 0, 9),
		&nn.GlobalAvgPool{LayerName: "gap"},
		nn.NewLinear("fc", 2, 2, 10),
	)
	tr := dl2sql.NewTranslator(db, "demo")
	sm, err := tr.StoreModel(model)
	if err != nil {
		panic(err)
	}
	batch := []*tensor.Tensor{
		tensor.New(1, 4, 4).Fill(0.1),
		tensor.New(1, 4, 4).Fill(0.9),
	}
	classes, err := tr.InferBatch(sm, batch)
	if err != nil {
		panic(err)
	}
	fmt.Println(len(classes))
	// Output: 2
}
