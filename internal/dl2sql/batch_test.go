package dl2sql

import (
	"testing"

	"repro/internal/modelrepo"
	"repro/internal/nn"
	"repro/internal/sqldb"
	"repro/internal/tensor"
)

// checkBatchAgreement verifies InferBatch matches per-sample native
// prediction for every sample.
func checkBatchAgreement(t *testing.T, m *nn.Model, inputs []*tensor.Tensor) {
	t.Helper()
	tr := newTr(t)
	sm, err := tr.StoreModel(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := tr.InferBatch(sm, inputs)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(inputs) {
		t.Fatalf("batch returned %d results for %d inputs", len(got), len(inputs))
	}
	for i, in := range inputs {
		want, _, err := m.Predict(in)
		if err != nil {
			t.Fatal(err)
		}
		if got[i] != want {
			t.Fatalf("sample %d: batch SQL class %d vs native %d", i, got[i], want)
		}
	}
}

func batchInputs(shape []int, n int, seed int64) []*tensor.Tensor {
	out := make([]*tensor.Tensor, n)
	for i := range out {
		out[i] = randTensor(shape, seed+int64(i)*17)
	}
	return out
}

func TestBatchStudentModelAgreement(t *testing.T) {
	m := modelrepo.NewStudentModel(modelrepo.TaskPatternRecog, 8, 200)
	checkBatchAgreement(t, m, batchInputs([]int{3, 8, 8}, 5, 300))
}

func TestBatchSingleSample(t *testing.T) {
	m := modelrepo.NewStudentModel(modelrepo.TaskDefectDetection, 8, 201)
	checkBatchAgreement(t, m, batchInputs([]int{3, 8, 8}, 1, 301))
}

func TestBatchEmpty(t *testing.T) {
	m := modelrepo.NewStudentModel(modelrepo.TaskDefectDetection, 8, 202)
	tr := newTr(t)
	sm, err := tr.StoreModel(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := tr.InferBatch(sm, nil)
	if err != nil || got != nil {
		t.Fatalf("empty batch: %v %v", got, err)
	}
}

func TestBatchResNetAgreement(t *testing.T) {
	m, err := modelrepo.NewResNet(5, modelrepo.TaskTextileType, 8, 203)
	if err != nil {
		t.Fatal(err)
	}
	checkBatchAgreement(t, m, batchInputs([]int{3, 8, 8}, 3, 302))
}

func TestBatchDenseAndDeconv(t *testing.T) {
	m := nn.NewModel("bd", []int{2, 4, 4}, nil)
	m.Add(
		nn.NewDenseBlock("db", 2, 2, 2, 204),
		nn.NewDeconv2D("dc", 6, 2, 2, 2, 0, 205),
		&nn.GlobalAvgPool{LayerName: "gap"},
		nn.NewLinear("fc", 2, 3, 206),
		&nn.Softmax{LayerName: "sm"},
	)
	if _, err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	checkBatchAgreement(t, m, batchInputs([]int{2, 4, 4}, 3, 303))
}

func TestBatchAttention(t *testing.T) {
	m := nn.NewModel("ba", []int{1, 2, 2}, nil)
	m.Add(
		&nn.Flatten{LayerName: "fl"},
		nn.NewBasicAttention("att", 4, 207),
		&nn.Softmax{LayerName: "sm"},
	)
	checkBatchAgreement(t, m, batchInputs([]int{1, 2, 2}, 4, 304))
}

func TestBatchWithBNParams(t *testing.T) {
	m := nn.NewModel("bbn", []int{1, 4, 4}, nil)
	bn := nn.NewBatchNorm("bn1", 2)
	bn.Gamma[0], bn.Gamma[1] = 2, 0.5
	bn.Beta[0], bn.Beta[1] = 0.1, -0.1
	m.Add(
		nn.NewConv2D("c1", 1, 2, 2, 1, 0, 208),
		bn,
		&nn.ReLU{LayerName: "r"},
		&nn.GlobalAvgPool{LayerName: "gap"},
		nn.NewLinear("fc", 2, 2, 209),
		&nn.Softmax{LayerName: "sm"},
	)
	checkBatchAgreement(t, m, batchInputs([]int{1, 4, 4}, 3, 305))
}

func TestBatchPreJoinStrategies(t *testing.T) {
	m := modelrepo.NewStudentModel(modelrepo.TaskDefectDetection, 8, 210)
	inputs := batchInputs([]int{3, 8, 8}, 3, 306)
	want := make([]int, len(inputs))
	for i, in := range inputs {
		want[i], _, _ = m.Predict(in)
	}
	for _, strat := range []PreJoinStrategy{PreJoinNone, PreJoinMapping} {
		db := sqldb.New()
		db.Profile = sqldb.NewProfile()
		tr := NewTranslator(db, "m")
		tr.PreJoin = strat
		sm, err := tr.StoreModel(m)
		if err != nil {
			t.Fatal(err)
		}
		got, err := tr.InferBatch(sm, inputs)
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%v sample %d: %d vs %d", strat, i, got[i], want[i])
			}
		}
	}
}

func TestBatchTempTablesCleanedUp(t *testing.T) {
	m := modelrepo.NewStudentModel(modelrepo.TaskDefectDetection, 8, 211)
	tr := newTr(t)
	sm, err := tr.StoreModel(m)
	if err != nil {
		t.Fatal(err)
	}
	before := len(tr.DB.TableNames())
	if _, err := tr.InferBatch(sm, batchInputs([]int{3, 8, 8}, 2, 307)); err != nil {
		t.Fatal(err)
	}
	if after := len(tr.DB.TableNames()); after != before {
		t.Fatalf("batch leaked tables: %d -> %d", before, after)
	}
}

// Batched inference must issue far fewer SQL statements than per-sample
// inference for the same work.
func TestBatchAmortizesStatements(t *testing.T) {
	m := modelrepo.NewStudentModel(modelrepo.TaskDefectDetection, 8, 212)
	inputs := batchInputs([]int{3, 8, 8}, 6, 308)

	perSample := newTr(t)
	sm1, err := perSample.StoreModel(m)
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range inputs {
		if _, _, err := perSample.Infer(sm1, in); err != nil {
			t.Fatal(err)
		}
	}
	batched := newTr(t)
	sm2, err := batched.StoreModel(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := batched.InferBatch(sm2, inputs); err != nil {
		t.Fatal(err)
	}
	if len(batched.Steps)*3 > len(perSample.Steps) {
		t.Fatalf("batch should amortize statements: %d batched vs %d per-sample",
			len(batched.Steps), len(perSample.Steps))
	}
}

func TestVerifyPasses(t *testing.T) {
	m := modelrepo.NewStudentModel(modelrepo.TaskDefectDetection, 8, 400)
	tr := newTr(t)
	sm, err := tr.StoreModel(m)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := tr.Verify(sm, 3, 1e-9)
	if err != nil {
		t.Fatalf("verify: %v (report %+v)", err, rep)
	}
	if rep.Trials != 3 || rep.Misclassified != 0 {
		t.Fatalf("report: %+v", rep)
	}
}

func TestVerifyCatchesCorruption(t *testing.T) {
	// A logit-output model (no softmax): saturated probabilities could mask
	// a corrupted weight below the epsilon, logits cannot.
	m := nn.NewModel("vc", []int{1, 6, 6}, nil)
	m.Add(
		nn.NewConv2D("c1", 1, 4, 3, 1, 0, 401),
		&nn.GlobalAvgPool{LayerName: "gap"},
		nn.NewLinear("fc", 4, 2, 402),
	)
	tr := newTr(t)
	sm, err := tr.StoreModel(m)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt a kernel table: flip one weight.
	for _, name := range sm.TableNames() {
		tbl := tr.DB.GetTable(name)
		if tbl == nil || tbl.Schema.ColIndex("OrderID") < 0 || tbl.Schema.ColIndex("KernelID") < 0 {
			continue
		}
		if _, err := tr.DB.Exec("UPDATE " + name + " SET Value = Value + 100 WHERE OrderID = 0 AND KernelID = 0"); err != nil {
			t.Fatal(err)
		}
		break
	}
	if _, err := tr.Verify(sm, 2, 1e-9); err == nil {
		t.Fatal("verify must detect corrupted kernel tables")
	}
}

func TestMustSupport(t *testing.T) {
	good := modelrepo.NewStudentModel(modelrepo.TaskDefectDetection, 8, 402)
	if err := MustSupport(good); err != nil {
		t.Fatalf("student model should be supported: %v", err)
	}
	bad := nn.NewModel("bad", []int{4}, nil)
	bad.Add(&fakeLSTM{})
	if err := MustSupport(bad); err == nil {
		t.Fatal("LSTM model must be rejected")
	}
}

func TestTraceRecordsPipelineSQL(t *testing.T) {
	m := modelrepo.NewStudentModel(modelrepo.TaskDefectDetection, 8, 403)
	tr := newTr(t)
	tr.Trace = true
	sm, err := tr.StoreModel(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := tr.Infer(sm, randTensor([]int{3, 8, 8}, 404)); err != nil {
		t.Fatal(err)
	}
	if len(tr.TraceSQL) == 0 {
		t.Fatal("trace empty")
	}
	joined := ""
	for _, q := range tr.TraceSQL {
		joined += q + "\n"
	}
	// The paper's query shapes must appear in the trace.
	for _, want := range []string{
		"INNER JOIN",     // Q1 conv join
		"GROUP BY",       // Q1 aggregation
		"stddevSamp",     // Q4 batch norm
		"UPDATE",         // ReLU rewrite
		"ORDER BY Value", // classification argmax
	} {
		if !containsStr(joined, want) {
			t.Fatalf("trace missing %q", want)
		}
	}
	tr.ResetSteps()
	if len(tr.TraceSQL) != 0 {
		t.Fatal("ResetSteps must clear the trace")
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
