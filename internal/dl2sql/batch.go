package dl2sql

import (
	"fmt"

	"repro/internal/nn"
	"repro/internal/sqldb"
	"repro/internal/tensor"
)

// Batched inference: the paper performs nUDFs "in a batch manner (a batch
// of feature maps are fed to the model together)". The batched pipeline
// threads a SampleID column through every relational form, so each layer
// executes as ONE SQL statement for the whole batch instead of one per
// sample — amortizing per-statement planning/materialization overhead the
// same way the paper's batching amortizes model invocation.
//
// Batched forms:
//
//	patch: {SampleID, MatrixID, OrderID, Value}
//	flat:  {SampleID, TupleID, KernelID, Value}

// InferBatch runs SQL inference for a batch of inputs, returning the
// argmax class index per sample (in input order).
func (t *Translator) InferBatch(sm *StoredModel, inputs []*tensor.Tensor) ([]int, error) {
	if len(inputs) == 0 {
		return nil, nil
	}
	var temps []string
	defer func() {
		for _, name := range temps {
			t.DB.DropTable(name)
		}
	}()
	cur, err := t.encodeBatchForFirstLayer(sm, inputs, &temps)
	if err != nil {
		return nil, err
	}
	lastConv := 0
	cur, err = t.runBatchChain(sm.layers, cur, &temps, &lastConv)
	if err != nil {
		return nil, err
	}
	// Per-sample argmax: join each sample's rows with its maximum score.
	res, err := t.exec("Classification", fmt.Sprintf(
		`SELECT A.SampleID AS SampleID, MIN(A.TupleID) AS TupleID FROM %s A, (SELECT SampleID, MAX(Value) AS mx FROM %s GROUP BY SampleID) S WHERE A.SampleID = S.SampleID AND A.Value = S.mx GROUP BY A.SampleID`,
		cur.table, cur.table))
	if err != nil {
		return nil, err
	}
	out := make([]int, len(inputs))
	for i := range out {
		out[i] = -1
	}
	n := res.NumRows()
	for i := 0; i < n; i++ {
		sid, _ := res.Cols[0].Get(i).AsInt()
		cls, _ := res.Cols[1].Get(i).AsInt()
		if sid >= 0 && int(sid) < len(out) {
			out[sid] = int(cls)
		}
	}
	for i, v := range out {
		if v < 0 {
			return nil, fmt.Errorf("dl2sql: batch inference lost sample %d", i)
		}
	}
	return out, nil
}

// encodeBatchForFirstLayer bulk-loads the whole batch into one relational
// table (Algorithm 1 per sample, sharing the table).
func (t *Translator) encodeBatchForFirstLayer(sm *StoredModel, inputs []*tensor.Tensor, temps *[]string) (relForm, error) {
	in := sm.Model.InputShape
	if len(sm.layers) > 0 && sm.layers[0].mappingTable == "" {
		if conv, ok := sm.layers[0].layer.(*nn.Conv2D); ok {
			name := t.nextTemp("bfm0")
			*temps = append(*temps, name)
			t.dropIfExists(name)
			tbl, err := t.DB.CreateTable(name, sqldb.Schema{
				{Name: "SampleID", Type: sqldb.TInt},
				{Name: "MatrixID", Type: sqldb.TInt},
				{Name: "OrderID", Type: sqldb.TInt},
				{Name: "Value", Type: sqldb.TFloat},
			})
			if err != nil {
				return relForm{}, err
			}
			for sid, input := range inputs {
				cols, err := tensor.Im2Col(input, conv.K, conv.Stride, conv.Pad)
				if err != nil {
					return relForm{}, err
				}
				nm, no := cols.Dim(0), cols.Dim(1)
				for m := 0; m < nm; m++ {
					for o := 0; o < no; o++ {
						if err := tbl.AppendRow([]sqldb.Datum{
							sqldb.Int(int64(sid)), sqldb.Int(int64(m)),
							sqldb.Int(int64(o)), sqldb.Float(cols.At(m, o)),
						}); err != nil {
							return relForm{}, err
						}
					}
				}
			}
			return relForm{table: name, flat: false, c: in[0], h: in[1], w: in[2]}, nil
		}
	}
	name := t.nextTemp("bflat0")
	*temps = append(*temps, name)
	t.dropIfExists(name)
	tbl, err := t.DB.CreateTable(name, sqldb.Schema{
		{Name: "SampleID", Type: sqldb.TInt},
		{Name: "TupleID", Type: sqldb.TInt},
		{Name: "KernelID", Type: sqldb.TInt},
		{Name: "Value", Type: sqldb.TFloat},
	})
	if err != nil {
		return relForm{}, err
	}
	c, h, w := 1, 1, inputs[0].Len()
	if len(in) == 3 {
		c, h, w = in[0], in[1], in[2]
	}
	per := inputs[0].Len() / c
	for sid, input := range inputs {
		for i, v := range input.Data() {
			if err := tbl.AppendRow([]sqldb.Datum{
				sqldb.Int(int64(sid)), sqldb.Int(int64(i)),
				sqldb.Int(int64(i / per)), sqldb.Float(v),
			}); err != nil {
				return relForm{}, err
			}
		}
	}
	return relForm{table: name, flat: true, c: c, h: h, w: w}, nil
}

func (t *Translator) runBatchChain(layers []storedLayer, cur relForm, temps *[]string, lastConv *int) (relForm, error) {
	var err error
	for i := range layers {
		cur, err = t.runBatchLayer(&layers[i], cur, temps, lastConv)
		if err != nil {
			return cur, err
		}
	}
	return cur, nil
}

func (t *Translator) runBatchLayer(sl *storedLayer, cur relForm, temps *[]string, lastConv *int) (relForm, error) {
	switch v := sl.layer.(type) {
	case *nn.Conv2D:
		*lastConv = sl.ordinal
		return t.runBatchConv(sl, v, cur, temps)
	case *nn.Linear:
		return t.runBatchLinear(sl, v, cur, temps)
	case *nn.BatchNorm, *nn.InstanceNorm:
		return t.runBatchNorm(sl, cur, temps, *lastConv)
	case *nn.ReLU:
		return t.runReLU(cur, *lastConv) // same UPDATE works batched
	case *nn.Sigmoid:
		return t.runBatchSigmoid(cur, temps)
	case *nn.MaxPool:
		return t.runBatchPool(sl, cur, temps, "MAX")
	case *nn.AvgPool:
		return t.runBatchPool(sl, cur, temps, "AVG")
	case *nn.GlobalAvgPool:
		return t.runBatchGlobalAvg(sl, cur, temps)
	case *nn.Flatten:
		return relForm{table: cur.table, flat: true, c: cur.size(), h: 1, w: 1}, nil
	case *nn.Softmax:
		return t.runBatchSoftmax(cur, temps)
	case *nn.ResidualBlock:
		return t.runBatchResidual(sl, cur, temps, lastConv)
	case *nn.DenseBlock:
		return t.runBatchDense(sl, v, cur, temps, lastConv)
	case *nn.Deconv2D:
		*lastConv = sl.ordinal
		return t.runBatchDeconv(sl, v, cur, temps)
	case *nn.BasicAttention:
		return t.runBatchAttention(sl, v, cur, temps)
	}
	return cur, fmt.Errorf("%w: %s (%s) in batch mode", ErrUnsupported, sl.layer.Name(), sl.layer.Kind())
}

func (t *Translator) runBatchConv(sl *storedLayer, conv *nn.Conv2D, cur relForm, temps *[]string) (relForm, error) {
	outC, outH, outW := sl.outShape[0], sl.outShape[1], sl.outShape[2]
	ohw := outH * outW
	label := fmt.Sprintf("Conv%d", sl.ordinal)
	var out string

	switch {
	case cur.flat && sl.mappingTable != "" && t.PreJoin != PreJoinNone:
		out = t.nextTemp("bconv")
		*temps = append(*temps, out)
		sql := fmt.Sprintf(
			`CREATE TEMP TABLE %s AS SELECT X.SampleID AS SampleID, K.KernelID * %d + X.MatrixID AS TupleID, K.KernelID AS KernelID, SUM(X.Value * K.Value) AS Value FROM (SELECT A.SampleID AS SampleID, B.MatrixID AS MatrixID, B.OrderID AS OrderID, A.Value AS Value FROM %s A, %s B WHERE A.TupleID = B.TupleID) X INNER JOIN %s K ON X.OrderID = K.OrderID GROUP BY X.SampleID, K.KernelID, X.MatrixID`,
			out, ohw, cur.table, sl.mappingTable, sl.kernelTable)
		if err := t.execToTable(label, out, sql); err != nil {
			return cur, err
		}
	case cur.flat:
		fm := t.nextTemp("bfm")
		*temps = append(*temps, fm)
		sqlQ2 := fmt.Sprintf(
			`CREATE TEMP TABLE %s AS SELECT A.SampleID AS SampleID, B.MatrixID AS MatrixID, B.OrderID AS OrderID, A.Value AS Value FROM %s A, %s B WHERE A.TupleID = B.TupleID`,
			fm, cur.table, sl.mappingTable)
		if err := t.execToTable(fmt.Sprintf("Reshape%d", sl.ordinal-1), fm, sqlQ2); err != nil {
			return cur, err
		}
		cur = relForm{table: fm, flat: false, c: cur.c, h: cur.h, w: cur.w}
		fallthrough
	default:
		if cur.flat {
			return cur, fmt.Errorf("dl2sql: batch conv %s received flat input without a mapping table", conv.Name())
		}
		out = t.nextTemp("bconv")
		*temps = append(*temps, out)
		sql := fmt.Sprintf(
			`CREATE TEMP TABLE %s AS SELECT A.SampleID AS SampleID, B.KernelID * %d + A.MatrixID AS TupleID, B.KernelID AS KernelID, SUM(A.Value * B.Value) AS Value FROM %s A INNER JOIN %s B ON A.OrderID = B.OrderID GROUP BY A.SampleID, B.KernelID, A.MatrixID`,
			out, ohw, cur.table, sl.kernelTable)
		if err := t.execToTable(label, out, sql); err != nil {
			return cur, err
		}
	}
	next := relForm{table: out, flat: true, c: outC, h: outH, w: outW}
	return t.applyBatchBias(sl, next, temps, label)
}

func (t *Translator) applyBatchBias(sl *storedLayer, cur relForm, temps *[]string, label string) (relForm, error) {
	if sl.biasTable == "" {
		return cur, nil
	}
	out := t.nextTemp("bbias")
	*temps = append(*temps, out)
	sql := fmt.Sprintf(
		`CREATE TEMP TABLE %s AS SELECT A.SampleID AS SampleID, A.TupleID AS TupleID, A.KernelID AS KernelID, A.Value + B.Value AS Value FROM %s A, %s B WHERE A.KernelID = B.KernelID`,
		out, cur.table, sl.biasTable)
	if err := t.execToTable(label, out, sql); err != nil {
		return cur, err
	}
	cur.table = out
	return cur, nil
}

func (t *Translator) runBatchLinear(sl *storedLayer, lin *nn.Linear, cur relForm, temps *[]string) (relForm, error) {
	if !cur.flat {
		return cur, fmt.Errorf("dl2sql: batch linear %s needs flat input", lin.Name())
	}
	out := t.nextTemp("bfc")
	*temps = append(*temps, out)
	sql := fmt.Sprintf(
		`CREATE TEMP TABLE %s AS SELECT A.SampleID AS SampleID, B.KernelID AS TupleID, B.KernelID AS KernelID, SUM(A.Value * B.Value) AS Value FROM %s A, %s B WHERE A.TupleID = B.OrderID GROUP BY A.SampleID, B.KernelID`,
		out, cur.table, sl.kernelTable)
	if err := t.execToTable("FC", out, sql); err != nil {
		return cur, err
	}
	next := relForm{table: out, flat: true, c: lin.Out, h: 1, w: 1}
	return t.applyBatchBias(sl, next, temps, "FC")
}

func (t *Translator) runBatchNorm(sl *storedLayer, cur relForm, temps *[]string, lastConv int) (relForm, error) {
	if !cur.flat {
		return cur, fmt.Errorf("dl2sql: batch norm %s needs flat input", sl.layer.Name())
	}
	useBatchStats := true
	if bn, ok := sl.layer.(*nn.BatchNorm); ok {
		useBatchStats = bn.UseBatchStats
	}
	out := t.nextTemp("bbn")
	*temps = append(*temps, out)
	var sql string
	switch {
	case sl.kernelTable == "":
		sql = fmt.Sprintf(
			`CREATE TEMP TABLE %s AS SELECT A.SampleID AS SampleID, A.TupleID AS TupleID, A.KernelID AS KernelID, ((A.Value - S.mu) / (S.sd + %g)) AS Value FROM %s A, (SELECT SampleID, KernelID, AVG(Value) AS mu, stddevSamp(Value) AS sd FROM %s GROUP BY SampleID, KernelID) S WHERE A.SampleID = S.SampleID AND A.KernelID = S.KernelID`,
			out, nn.BNEpsilon, cur.table, cur.table)
	case useBatchStats:
		sql = fmt.Sprintf(
			`CREATE TEMP TABLE %s AS SELECT A.SampleID AS SampleID, A.TupleID AS TupleID, A.KernelID AS KernelID, (P.Gamma * (A.Value - S.mu) / (S.sd + %g)) + P.Beta AS Value FROM %s A, (SELECT SampleID, KernelID, AVG(Value) AS mu, stddevSamp(Value) AS sd FROM %s GROUP BY SampleID, KernelID) S, %s P WHERE A.SampleID = S.SampleID AND A.KernelID = S.KernelID AND A.KernelID = P.KernelID`,
			out, nn.BNEpsilon, cur.table, cur.table, sl.kernelTable)
	default:
		sql = fmt.Sprintf(
			`CREATE TEMP TABLE %s AS SELECT A.SampleID AS SampleID, A.TupleID AS TupleID, A.KernelID AS KernelID, (P.Gamma * (A.Value - P.Mean) / sqrt(P.Var + %g)) + P.Beta AS Value FROM %s A, %s P WHERE A.KernelID = P.KernelID`,
			out, nn.BNEpsilon, cur.table, sl.kernelTable)
	}
	if err := t.execToTable(fmt.Sprintf("BN%d", lastConv), out, sql); err != nil {
		return cur, err
	}
	cur.table = out
	return cur, nil
}

func (t *Translator) runBatchSigmoid(cur relForm, temps *[]string) (relForm, error) {
	out := t.nextTemp("bsig")
	*temps = append(*temps, out)
	sql := fmt.Sprintf(
		`CREATE TEMP TABLE %s AS SELECT SampleID, TupleID, KernelID, 1 / (1 + exp(0 - Value)) AS Value FROM %s`,
		out, cur.table)
	if err := t.execToTable("Sigmoid", out, sql); err != nil {
		return cur, err
	}
	cur.table = out
	return cur, nil
}

func (t *Translator) runBatchPool(sl *storedLayer, cur relForm, temps *[]string, agg string) (relForm, error) {
	if !cur.flat {
		return cur, fmt.Errorf("dl2sql: batch pooling needs flat input")
	}
	outC, outH, outW := sl.outShape[0], sl.outShape[1], sl.outShape[2]
	ohw := outH * outW
	out := t.nextTemp("bpool")
	*temps = append(*temps, out)
	sql := fmt.Sprintf(
		`CREATE TEMP TABLE %s AS SELECT A.SampleID AS SampleID, B.KernelID * %d + B.MatrixID AS TupleID, B.KernelID AS KernelID, %s(A.Value) AS Value FROM %s A, %s B WHERE A.TupleID = B.TupleID GROUP BY A.SampleID, B.KernelID, B.MatrixID`,
		out, ohw, agg, cur.table, sl.mappingTable)
	if err := t.execToTable("Pool", out, sql); err != nil {
		return cur, err
	}
	return relForm{table: out, flat: true, c: outC, h: outH, w: outW}, nil
}

func (t *Translator) runBatchGlobalAvg(sl *storedLayer, cur relForm, temps *[]string) (relForm, error) {
	out := t.nextTemp("bgap")
	*temps = append(*temps, out)
	sql := fmt.Sprintf(
		`CREATE TEMP TABLE %s AS SELECT SampleID, KernelID AS TupleID, KernelID AS KernelID, AVG(Value) AS Value FROM %s GROUP BY SampleID, KernelID`,
		out, cur.table)
	if err := t.execToTable("Pool", out, sql); err != nil {
		return cur, err
	}
	return relForm{table: out, flat: true, c: sl.outShape[0], h: 1, w: 1}, nil
}

func (t *Translator) runBatchSoftmax(cur relForm, temps *[]string) (relForm, error) {
	shifted := t.nextTemp("bsm1")
	*temps = append(*temps, shifted)
	sql := fmt.Sprintf(
		`CREATE TEMP TABLE %s AS SELECT A.SampleID AS SampleID, A.TupleID AS TupleID, A.KernelID AS KernelID, exp(A.Value - S.mx) AS Value FROM %s A, (SELECT SampleID, MAX(Value) AS mx FROM %s GROUP BY SampleID) S WHERE A.SampleID = S.SampleID`,
		shifted, cur.table, cur.table)
	if err := t.execToTable("Classification", shifted, sql); err != nil {
		return cur, err
	}
	out := t.nextTemp("bsm2")
	*temps = append(*temps, out)
	sql = fmt.Sprintf(
		`CREATE TEMP TABLE %s AS SELECT A.SampleID AS SampleID, A.TupleID AS TupleID, A.KernelID AS KernelID, A.Value / S.sm AS Value FROM %s A, (SELECT SampleID, SUM(Value) AS sm FROM %s GROUP BY SampleID) S WHERE A.SampleID = S.SampleID`,
		out, shifted, shifted)
	if err := t.execToTable("Classification", out, sql); err != nil {
		return cur, err
	}
	cur.table = out
	return cur, nil
}

func (t *Translator) runBatchResidual(sl *storedLayer, cur relForm, temps *[]string, lastConv *int) (relForm, error) {
	mainOut, err := t.runBatchChain(sl.main, cur, temps, lastConv)
	if err != nil {
		return cur, err
	}
	shortOut := cur
	if len(sl.shortcut) > 0 {
		shortOut, err = t.runBatchChain(sl.shortcut, cur, temps, lastConv)
		if err != nil {
			return cur, err
		}
	}
	out := t.nextTemp("bres")
	*temps = append(*temps, out)
	sql := fmt.Sprintf(
		`CREATE TEMP TABLE %s AS SELECT A.SampleID AS SampleID, A.TupleID AS TupleID, A.KernelID AS KernelID, A.Value + B.Value AS Value FROM %s A, %s B WHERE A.SampleID = B.SampleID AND A.TupleID = B.TupleID`,
		out, mainOut.table, shortOut.table)
	if err := t.execToTable(fmt.Sprintf("Residual%d", *lastConv), out, sql); err != nil {
		return cur, err
	}
	next := relForm{table: out, flat: true, c: mainOut.c, h: mainOut.h, w: mainOut.w}
	return t.runReLU(next, *lastConv)
}

func (t *Translator) runBatchDense(sl *storedLayer, blk *nn.DenseBlock, cur relForm, temps *[]string, lastConv *int) (relForm, error) {
	acc := cur
	for i := range sl.main {
		stage := &sl.main[i]
		conv := stage.layer.(*nn.Conv2D)
		*lastConv = stage.ordinal
		stageOut, err := t.runBatchConv(stage, conv, acc, temps)
		if err != nil {
			return cur, err
		}
		concat := t.nextTemp("bcat")
		*temps = append(*temps, concat)
		hw := acc.h * acc.w
		sqls := fmt.Sprintf(
			`CREATE TEMP TABLE %s AS SELECT SampleID, TupleID, KernelID, Value FROM %s;
			 INSERT INTO %s (SELECT SampleID, TupleID + %d, KernelID + %d, Value FROM %s);`,
			concat, acc.table,
			concat, acc.c*hw, acc.c, stageOut.table)
		if err := t.execToTable(fmt.Sprintf("Dense%d", *lastConv), concat, sqls); err != nil {
			return cur, err
		}
		acc = relForm{table: concat, flat: true, c: acc.c + blk.Growth, h: acc.h, w: acc.w}
	}
	return acc, nil
}

func (t *Translator) runBatchDeconv(sl *storedLayer, d *nn.Deconv2D, cur relForm, temps *[]string) (relForm, error) {
	if !cur.flat {
		return cur, fmt.Errorf("dl2sql: batch deconv %s needs flat input", d.Name())
	}
	outC, outH, outW := sl.outShape[0], sl.outShape[1], sl.outShape[2]
	ohw := outH * outW
	out := t.nextTemp("bdeconv")
	*temps = append(*temps, out)
	sql := fmt.Sprintf(
		`CREATE TEMP TABLE %s AS SELECT A.SampleID AS SampleID, C.KernelID * %d + C.OutID AS TupleID, C.KernelID AS KernelID, SUM(A.Value * C.Weight) AS Value FROM %s A, %s C WHERE A.TupleID = C.TupleID GROUP BY A.SampleID, C.KernelID, C.OutID`,
		out, ohw, cur.table, sl.kernelTable)
	if err := t.execToTable(fmt.Sprintf("Deconv%d", sl.ordinal), out, sql); err != nil {
		return cur, err
	}
	next := relForm{table: out, flat: true, c: outC, h: outH, w: outW}
	return t.applyBatchBias(sl, next, temps, fmt.Sprintf("Deconv%d", sl.ordinal))
}

func (t *Translator) runBatchAttention(sl *storedLayer, att *nn.BasicAttention, cur relForm, temps *[]string) (relForm, error) {
	scoreLayer := &storedLayer{kernelTable: sl.kernelTable, outShape: []int{att.Dim, 1, 1}}
	scores, err := t.runBatchLinear(scoreLayer, &nn.Linear{LayerName: att.Name() + "_score", In: att.Dim, Out: att.Dim}, cur, temps)
	if err != nil {
		return cur, err
	}
	scores, err = t.runBatchSoftmax(scores, temps)
	if err != nil {
		return cur, err
	}
	valueLayer := &storedLayer{kernelTable: sl.biasTable, outShape: []int{att.Dim, 1, 1}}
	values, err := t.runBatchLinear(valueLayer, &nn.Linear{LayerName: att.Name() + "_value", In: att.Dim, Out: att.Dim}, cur, temps)
	if err != nil {
		return cur, err
	}
	out := t.nextTemp("battn")
	*temps = append(*temps, out)
	sql := fmt.Sprintf(
		`CREATE TEMP TABLE %s AS SELECT A.SampleID AS SampleID, A.TupleID AS TupleID, A.KernelID AS KernelID, A.Value * B.Value AS Value FROM %s A, %s B WHERE A.SampleID = B.SampleID AND A.TupleID = B.TupleID`,
		out, scores.table, values.table)
	if err := t.execToTable("Attention", out, sql); err != nil {
		return cur, err
	}
	return relForm{table: out, flat: true, c: att.Dim, h: 1, w: 1}, nil
}
