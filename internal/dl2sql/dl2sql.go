// Package dl2sql is the paper's primary contribution: a translator that
// rewrites neural-network inference into native SQL over relational tables.
//
// A model is stored as relational data — one Kernel table per convolution /
// fully-connected layer ({KernelID, OrderID, Value}), a bias table per
// layer, a hyper-parameter metadata table, and precomputed Kernel_Mapping
// tables (Algorithm 2) that re-index a layer's flat output into the next
// layer's patch layout. Inference then executes the paper's query shapes:
//
//	Q1: conv = FeatureMap ⋈ Kernel ON OrderID, GROUP BY KernelID, MatrixID, SUM(products)
//	Q2: reshape = Layer_Output ⋈ Kernel_Mapping ON TupleID
//	Q3: pooling = GROUP BY MatrixID with MAX/AVG
//	Q4: batch norm = (Value - AVG)/(stddevSamp + ε) per channel
//	Q5: residual = elementwise add of two block outputs + UPDATE-based ReLU
//
// Intermediate results flow through two relational forms:
//
//   - patch form ("FeatureMap"): {MatrixID, OrderID, Value} — one row per
//     (output position, receptive-field element); element order matches
//     tensor.Im2Col (channel-major, then row-major), so the SQL pipeline and
//     the native nn engine are numerically identical.
//   - flat form ("Layer_Output"): {TupleID, KernelID, Value} — one row per
//     output element; TupleID = channel*H*W + y*W + x.
//
// IDs are zero-based (the paper's figures are one-based; the arithmetic is
// otherwise identical).
package dl2sql

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/sqldb"
	"repro/internal/tensor"
)

// ErrUnsupported is returned for operators outside Table II's supported set
// (self-attention, LSTM, GRU, graph convolution).
var ErrUnsupported = errors.New("dl2sql: operator not supported by the SQL translator")

// PreJoinStrategy selects the pre-join optimization of Fig. 11.
type PreJoinStrategy int

const (
	// PreJoinNone is the default pipeline: mapping join (Q2) + kernel join
	// (Q1) per convolution.
	PreJoinNone PreJoinStrategy = iota
	// PreJoinMapping merges the mapping process into the convolution
	// statement: Q2 becomes a subquery of Q1, so the intermediate
	// FeatureMap table is never materialized (the paper's second strategy,
	// "avoid the join in the mapping process").
	PreJoinMapping
	// PreJoinInput additionally pre-multiplies the input encoding with the
	// first layer's kernel during data generation, removing the first
	// FeatureMap ⋈ Kernel join entirely (the paper's third strategy).
	PreJoinInput
)

// String names the strategy as reported in benchmarks and EXPERIMENTS.md.
func (s PreJoinStrategy) String() string {
	switch s {
	case PreJoinNone:
		return "none"
	case PreJoinMapping:
		return "prejoin-mapping"
	case PreJoinInput:
		return "prejoin-input"
	}
	return fmt.Sprintf("PreJoinStrategy(%d)", int(s))
}

// StepCost records the wall time of one executed pipeline step; the Fig. 9
// breakdown aggregates these by label.
type StepCost struct {
	Label string // e.g. "Conv1", "Reshape1", "BN1", "Classification"
	Rows  int
	Time  time.Duration
}

// Translator compiles nn models into relational storage and executes their
// inference as SQL against an embedded database.
type Translator struct {
	DB      *sqldb.DB
	Prefix  string // namespace for all generated tables
	PreJoin PreJoinStrategy
	// Hints, when set, are passed to every generated query (the DL2SQL-OP
	// configuration).
	Hints *sqldb.QueryHints
	// Steps accumulates per-step costs across Infer calls; reset with
	// ResetSteps.
	Steps []StepCost
	// Trace, when true, records every generated SQL statement into TraceSQL
	// (in execution order) so the translated pipeline can be inspected or
	// exported — the textual form of the paper's Q1–Q5.
	Trace    bool
	TraceSQL []string
	// Span, when non-nil, receives one child span per executed pipeline
	// step (Conv1, Reshape1, BN1, Classification, ...), nesting the SQL
	// inference pipeline under the caller's trace.
	Span *obs.Span
	// Cache, when non-nil, memoizes whole inferences and materialized
	// per-layer intermediates across Infer calls (see PipelineCache).
	// Cached steps are recorded with a " [cached]" label suffix. Batch
	// inference (InferBatch) is never cached.
	Cache *PipelineCache
	// Ctx, when non-nil, is threaded to every generated SQL statement, so
	// a caller's cancellation or deadline aborts the pipeline between (and,
	// at morsel granularity, inside) steps.
	Ctx context.Context

	seq int // temp-table sequence number
}

// ctx resolves the translator's context for generated statements.
func (t *Translator) ctx() context.Context {
	if t.Ctx != nil {
		return t.Ctx
	}
	return context.Background()
}

// NewTranslator creates a translator writing tables under the given prefix.
func NewTranslator(db *sqldb.DB, prefix string) *Translator {
	return &Translator{DB: db, Prefix: prefix}
}

// ResetSteps clears the recorded step costs and SQL trace.
func (t *Translator) ResetSteps() {
	t.Steps = nil
	t.TraceSQL = nil
}

// StepTotal sums recorded step durations.
func (t *Translator) StepTotal() time.Duration {
	var d time.Duration
	for _, s := range t.Steps {
		d += s.Time
	}
	return d
}

func (t *Translator) record(label string, rows int, d time.Duration) {
	t.Steps = append(t.Steps, StepCost{Label: label, Rows: rows, Time: d})
	if t.Span != nil {
		sp := t.Span.StartChild(label)
		sp.Start = sp.Start.Add(-d) // backdate: the step already ran
		sp.SetAttr("rows", rows)
		sp.Finish()
	}
}

// tname builds a namespaced table name.
func (t *Translator) tname(parts ...string) string {
	name := t.Prefix
	for _, p := range parts {
		name += "_" + p
	}
	return name
}

// nextTemp returns a fresh temp-table name.
func (t *Translator) nextTemp(tag string) string {
	t.seq++
	return fmt.Sprintf("%s_tmp_%s_%d", t.Prefix, tag, t.seq)
}

// exec runs SQL with the translator's hints, timing it under the label.
func (t *Translator) exec(label, sql string) (*sqldb.Result, error) {
	if t.Trace {
		t.TraceSQL = append(t.TraceSQL, sql)
	}
	start := time.Now()
	res, err := t.DB.ExecHintedContext(t.ctx(), sql, t.Hints)
	if err != nil {
		return nil, fmt.Errorf("dl2sql: step %s: %w\nSQL: %s", label, err, sql)
	}
	rows := 0
	if res != nil {
		rows = res.NumRows()
	}
	t.record(label, rows, time.Since(start))
	return res, nil
}

// execCountTarget runs DDL/DML producing a table and records the created
// table's row count.
func (t *Translator) execToTable(label, table, sql string) error {
	if t.Trace {
		t.TraceSQL = append(t.TraceSQL, sql)
	}
	start := time.Now()
	if _, err := t.DB.ExecHintedContext(t.ctx(), sql, t.Hints); err != nil {
		return fmt.Errorf("dl2sql: step %s: %w\nSQL: %s", label, err, sql)
	}
	rows := 0
	if tb := t.DB.GetTable(table); tb != nil {
		rows = tb.NumRows()
	}
	t.record(label, rows, time.Since(start))
	return nil
}

// relForm describes the current intermediate relation during inference.
type relForm struct {
	table string
	// flat=true → {TupleID, KernelID, Value}; false → patch form
	// {MatrixID, OrderID, Value} ready for a kernel join.
	flat    bool
	c, h, w int // logical tensor shape of the data the relation represents
}

func (r relForm) size() int { return r.c * r.h * r.w }

// dropIfExists removes a table silently.
func (t *Translator) dropIfExists(name string) {
	t.DB.DropTable(name)
}

// Supported reports whether the translator can compile the given layer
// (Table II's support matrix).
func Supported(l nn.Layer) bool {
	switch l.Kind() {
	case nn.KindConv2D, nn.KindDeconv2D, nn.KindBatchNorm, nn.KindInstanceNorm,
		nn.KindReLU, nn.KindSigmoid, nn.KindMaxPool, nn.KindAvgPool,
		nn.KindGlobalAvg, nn.KindLinear, nn.KindSoftmax, nn.KindFlatten,
		nn.KindAttention, nn.KindResidual, nn.KindIdentity, nn.KindDense:
		return true
	}
	return false
}

// tensorFromFlat reads a flat-form table back into a tensor (used by tests
// to verify numerical equivalence and by Infer for final extraction).
func (t *Translator) tensorFromFlat(table string, c, h, w int) (*tensor.Tensor, error) {
	res, err := t.DB.QueryContext(t.ctx(), fmt.Sprintf(`SELECT TupleID, Value FROM %s ORDER BY TupleID`, table))
	if err != nil {
		return nil, err
	}
	out := tensor.New(c, h, w)
	n := res.NumRows()
	for i := 0; i < n; i++ {
		id, _ := res.Cols[0].Get(i).AsInt()
		v, _ := res.Cols[1].Get(i).AsFloat()
		if id < 0 || int(id) >= out.Len() {
			return nil, fmt.Errorf("dl2sql: TupleID %d out of range for shape [%d %d %d]", id, c, h, w)
		}
		out.Data()[id] = v
	}
	return out, nil
}
