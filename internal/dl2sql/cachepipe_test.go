package dl2sql

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/modelrepo"
)

func TestPipelineCacheResultMemo(t *testing.T) {
	m := modelrepo.NewStudentModel(modelrepo.TaskPatternRecog, 8, 400)
	tr := newTr(t)
	tr.Cache = NewPipelineCache(32, 256)
	sm, err := tr.StoreModel(m)
	if err != nil {
		t.Fatal(err)
	}
	in := randTensor([]int{3, 8, 8}, 500)
	idx1, score1, err := tr.Infer(sm, in)
	if err != nil {
		t.Fatal(err)
	}
	results, steps := tr.Cache.Stats()
	if results.Len != 1 {
		t.Fatalf("result memo not populated: %+v", results)
	}
	if steps.Len == 0 {
		t.Fatalf("step cache not populated: %+v", steps)
	}
	idx2, score2, err := tr.Infer(sm, in)
	if err != nil {
		t.Fatal(err)
	}
	if idx1 != idx2 || score1 != score2 {
		t.Fatalf("memoized inference diverged: (%d,%v) vs (%d,%v)", idx1, score1, idx2, score2)
	}
	results, _ = tr.Cache.Stats()
	if results.Hits != 1 {
		t.Fatalf("second Infer should hit the result memo: %+v", results)
	}
	// Against the native engine: still the correct class.
	want, _, err := m.Predict(in)
	if err != nil {
		t.Fatal(err)
	}
	if idx2 != want {
		t.Fatalf("cached class %d, native %d", idx2, want)
	}
}

// TestPipelineCacheSharedAcrossTranslators pins the semantic-key design:
// the same model stored under a different prefix (a fresh translator, as
// every strategies.Execute creates) must reuse the cache.
func TestPipelineCacheSharedAcrossTranslators(t *testing.T) {
	m := modelrepo.NewStudentModel(modelrepo.TaskPatternRecog, 8, 401)
	pc := NewPipelineCache(32, 256)
	in := randTensor([]int{3, 8, 8}, 501)

	tr1 := newTr(t)
	tr1.Cache = pc
	sm1, err := tr1.StoreModel(m)
	if err != nil {
		t.Fatal(err)
	}
	idx1, _, err := tr1.Infer(sm1, in)
	if err != nil {
		t.Fatal(err)
	}

	tr2 := NewTranslator(tr1.DB, "other_prefix")
	tr2.Cache = pc
	sm2, err := tr2.StoreModel(m)
	if err != nil {
		t.Fatal(err)
	}
	idx2, _, err := tr2.Infer(sm2, in)
	if err != nil {
		t.Fatal(err)
	}
	if idx1 != idx2 {
		t.Fatalf("cross-translator memo diverged: %d vs %d", idx1, idx2)
	}
	results, _ := pc.Stats()
	if results.Hits == 0 {
		t.Fatalf("second translator should hit the shared memo: %+v", results)
	}
	for _, sm := range []*StoredModel{sm1, sm2} {
		for _, name := range sm.TableNames() {
			tr1.DB.DropTable(name)
		}
	}
}

// TestPipelineCacheInvalidatedByKernelMutation: the model stamp mixes the
// backing tables' live versions, so mutating a kernel table directly must
// invalidate every derived key and force a recompute.
func TestPipelineCacheInvalidatedByKernelMutation(t *testing.T) {
	m := modelrepo.NewStudentModel(modelrepo.TaskDefectDetection, 8, 402)
	tr := newTr(t)
	tr.Cache = NewPipelineCache(32, 256)
	sm, err := tr.StoreModel(m)
	if err != nil {
		t.Fatal(err)
	}
	in := randTensor([]int{3, 8, 8}, 502)
	if _, _, err := tr.Infer(sm, in); err != nil {
		t.Fatal(err)
	}
	stampBefore := tr.modelStamp(sm)

	// Zero out a kernel table: the stored model now computes something else.
	var kernel string
	for _, name := range sm.TableNames() {
		if strings.Contains(name, "kernel") {
			kernel = name
			break
		}
	}
	if kernel == "" {
		t.Fatalf("no kernel table among %v", sm.TableNames())
	}
	if _, err := tr.DB.Exec(fmt.Sprintf("UPDATE %s SET Value = 0", kernel)); err != nil {
		t.Fatal(err)
	}
	if tr.modelStamp(sm) == stampBefore {
		t.Fatal("model stamp unchanged after kernel mutation")
	}
	results, _ := tr.Cache.Stats()
	hitsBefore := results.Hits
	if _, _, err := tr.Infer(sm, in); err != nil {
		t.Fatal(err)
	}
	results, _ = tr.Cache.Stats()
	if results.Hits != hitsBefore {
		t.Fatal("mutated model served a stale memoized result")
	}
}

// TestPipelineCacheStepReuseSameModelDifferentStore: a second store of
// the same weights misses the result memo only if the input differs, but
// identical inputs reuse materialized steps even mid-pipeline. Here we
// purge the result memo to force the chain to run and verify step hits.
func TestPipelineCacheStepReuse(t *testing.T) {
	m := modelrepo.NewStudentModel(modelrepo.TaskPatternRecog, 8, 403)
	tr := newTr(t)
	tr.Cache = NewPipelineCache(32, 256)
	sm, err := tr.StoreModel(m)
	if err != nil {
		t.Fatal(err)
	}
	in := randTensor([]int{3, 8, 8}, 503)
	want, _, err := tr.Infer(sm, in)
	if err != nil {
		t.Fatal(err)
	}
	// Drop only the result memo; the materialized steps remain.
	tr.Cache.results.Purge()
	tr.ResetSteps()
	got, _, err := tr.Infer(sm, in)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("step-cached rerun diverged: %d vs %d", got, want)
	}
	_, steps := tr.Cache.Stats()
	if steps.Hits == 0 {
		t.Fatalf("rerun should hit materialized steps: %+v", steps)
	}
	var cachedSteps int
	for _, s := range tr.Steps {
		if strings.HasSuffix(s.Label, " [cached]") {
			cachedSteps++
		}
	}
	if cachedSteps == 0 {
		t.Fatal("no step recorded as [cached]")
	}
}

// TestPipelineCacheTempTablesCleanedUp: rehydrated cache-hit tables are
// temps and must not leak.
func TestPipelineCacheTempTablesCleanedUp(t *testing.T) {
	m := modelrepo.NewStudentModel(modelrepo.TaskDefectDetection, 8, 404)
	tr := newTr(t)
	tr.Cache = NewPipelineCache(32, 256)
	sm, err := tr.StoreModel(m)
	if err != nil {
		t.Fatal(err)
	}
	in := randTensor([]int{3, 8, 8}, 504)
	if _, _, err := tr.Infer(sm, in); err != nil {
		t.Fatal(err)
	}
	tr.Cache.results.Purge()
	if _, _, err := tr.Infer(sm, in); err != nil {
		t.Fatal(err)
	}
	for _, name := range tr.DB.TableNames() {
		if strings.Contains(name, "_tmp_") {
			t.Fatalf("leaked temp table %s", name)
		}
	}
}
