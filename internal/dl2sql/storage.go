package dl2sql

import (
	"fmt"

	"repro/internal/nn"
	"repro/internal/sqldb"
	"repro/internal/tensor"
)

// StoredModel is a model compiled into relational tables: the DL2SQL
// equivalent of a deployed artifact. It records, per layer, the tables the
// inference pipeline will touch.
type StoredModel struct {
	Model      *nn.Model
	Prefix     string
	layers     []storedLayer
	tableNames []string
	// weightsHash fingerprints the encoded weights at store time; the
	// pipeline cache mixes it with live table versions (see modelStamp).
	weightsHash uint64
}

// storedLayer carries the compile-time info for one executable layer.
type storedLayer struct {
	layer nn.Layer
	// inShape is the layer's input tensor shape during a forward pass.
	inShape  []int
	outShape []int
	// kernelTable / biasTable for conv/linear/deconv/attention layers.
	kernelTable string
	biasTable   string
	// mappingTable re-indexes the previous flat output into this layer's
	// patch layout (conv beyond the first, pooling).
	mappingTable string
	// sub-blocks for residual / dense blocks.
	main     []storedLayer
	shortcut []storedLayer
	// index of this conv/pool among convs for step labels (Conv1, Conv2...).
	ordinal int
}

// StoreModel compiles a model into relational tables (kernel, bias,
// metadata, and mapping tables). This is the offline step of DL2SQL; its
// cost is part of the paper's "loading" bucket and its footprint is what
// Table IV measures.
func (t *Translator) StoreModel(m *nn.Model) (*StoredModel, error) {
	shapes, err := m.LayerShapes()
	if err != nil {
		return nil, fmt.Errorf("dl2sql: model %s does not validate: %w", m.ModelName, err)
	}
	sm := &StoredModel{Model: m, Prefix: t.Prefix}
	if blob, err := nn.EncodeBytes(m); err == nil {
		sm.weightsHash = tensor.HashBytes(blob)
	}
	// Metadata table: one row of hyper-parameters per stored layer.
	metaName := t.tname("meta")
	t.dropIfExists(metaName)
	meta, err := t.DB.CreateTable(metaName, sqldb.Schema{
		{Name: "LayerName", Type: sqldb.TString},
		{Name: "Kind", Type: sqldb.TString},
		{Name: "InC", Type: sqldb.TInt},
		{Name: "OutC", Type: sqldb.TInt},
		{Name: "K", Type: sqldb.TInt},
		{Name: "Stride", Type: sqldb.TInt},
		{Name: "Pad", Type: sqldb.TInt},
	})
	if err != nil {
		return nil, err
	}
	sm.tableNames = append(sm.tableNames, metaName)

	convOrdinal := 0
	var compile func(layers []nn.Layer, inShape []int, tag string) ([]storedLayer, []int, error)
	compile = func(layers []nn.Layer, inShape []int, tag string) ([]storedLayer, []int, error) {
		var out []storedLayer
		cur := inShape
		for li, l := range layers {
			if !Supported(l) {
				return nil, nil, fmt.Errorf("%w: %s (%s)", ErrUnsupported, l.Name(), l.Kind())
			}
			next, err := l.OutShape(cur)
			if err != nil {
				return nil, nil, err
			}
			sl := storedLayer{layer: l, inShape: cur, outShape: next}
			switch v := l.(type) {
			case *nn.Conv2D:
				convOrdinal++
				sl.ordinal = convOrdinal
				name := t.tname(tag, fmt.Sprintf("kernel%d", convOrdinal))
				if err := t.storeKernel(name, v); err != nil {
					return nil, nil, err
				}
				sl.kernelTable = name
				sm.tableNames = append(sm.tableNames, name)
				if v.Bias != nil {
					bn := name + "_bias"
					if err := t.storeBias(bn, v.Bias); err != nil {
						return nil, nil, err
					}
					sl.biasTable = bn
					sm.tableNames = append(sm.tableNames, bn)
				}
				if err := meta.AppendRow([]sqldb.Datum{
					sqldb.Str(v.Name()), sqldb.Str(v.Kind()),
					sqldb.Int(int64(v.InC)), sqldb.Int(int64(v.OutC)),
					sqldb.Int(int64(v.K)), sqldb.Int(int64(v.Stride)), sqldb.Int(int64(v.Pad)),
				}); err != nil {
					return nil, nil, err
				}
				// Mapping table for every conv except the very first layer
				// of the model (the input is encoded directly into patch
				// form by Algorithm 1).
				if !(tag == "m" && li == 0 && len(out) == 0 && isModelStart(cur, inShape)) {
					mt := name + "_map"
					if err := t.storeConvMapping(mt, cur, v.K, v.Stride, v.Pad); err != nil {
						return nil, nil, err
					}
					sl.mappingTable = mt
					sm.tableNames = append(sm.tableNames, mt)
				}
			case *nn.Deconv2D:
				convOrdinal++
				sl.ordinal = convOrdinal
				name := t.tname(tag, fmt.Sprintf("deconv%d", convOrdinal))
				if err := t.storeDeconvContrib(name, v, cur); err != nil {
					return nil, nil, err
				}
				sl.kernelTable = name
				sm.tableNames = append(sm.tableNames, name)
				if v.Bias != nil {
					bn := name + "_bias"
					if err := t.storeBias(bn, v.Bias); err != nil {
						return nil, nil, err
					}
					sl.biasTable = bn
					sm.tableNames = append(sm.tableNames, bn)
				}
			case *nn.Linear:
				convOrdinal++
				sl.ordinal = convOrdinal
				name := t.tname(tag, fmt.Sprintf("fc%d", convOrdinal))
				if err := t.storeLinearKernel(name, v); err != nil {
					return nil, nil, err
				}
				sl.kernelTable = name
				sm.tableNames = append(sm.tableNames, name)
				if v.Bias != nil {
					bn := name + "_bias"
					if err := t.storeBias(bn, v.Bias); err != nil {
						return nil, nil, err
					}
					sl.biasTable = bn
					sm.tableNames = append(sm.tableNames, bn)
				}
			case *nn.BasicAttention:
				convOrdinal++
				sl.ordinal = convOrdinal
				score := t.tname(tag, fmt.Sprintf("attn%d_score", convOrdinal))
				value := t.tname(tag, fmt.Sprintf("attn%d_value", convOrdinal))
				ls := &nn.Linear{LayerName: v.Name() + "_score", In: v.Dim, Out: v.Dim, Weight: v.WScore}
				lv := &nn.Linear{LayerName: v.Name() + "_value", In: v.Dim, Out: v.Dim, Weight: v.WValue}
				if err := t.storeLinearKernel(score, ls); err != nil {
					return nil, nil, err
				}
				if err := t.storeLinearKernel(value, lv); err != nil {
					return nil, nil, err
				}
				sl.kernelTable = score
				sl.biasTable = value // reused as the second weight table
				sm.tableNames = append(sm.tableNames, score, value)
			case *nn.BatchNorm:
				// Identity batch-stat norms need no parameters; anything
				// else (learned γ/β or frozen running statistics) is stored
				// in a per-channel parameter table joined at inference.
				if !bnIsIdentity(v) {
					name := t.tname(tag, fmt.Sprintf("bnparams%d", len(sm.tableNames)))
					if err := t.storeBNParams(name, v.Gamma, v.Beta, v.Mean, v.Var); err != nil {
						return nil, nil, err
					}
					sl.kernelTable = name
					sm.tableNames = append(sm.tableNames, name)
				}
			case *nn.InstanceNorm:
				if !instanceNormIsIdentity(v) {
					name := t.tname(tag, fmt.Sprintf("bnparams%d", len(sm.tableNames)))
					if err := t.storeBNParams(name, v.Gamma, v.Beta, nil, nil); err != nil {
						return nil, nil, err
					}
					sl.kernelTable = name
					sm.tableNames = append(sm.tableNames, name)
				}
			case *nn.MaxPool:
				mt := t.tname(tag, fmt.Sprintf("poolmap%d", len(sm.tableNames)))
				if err := t.storePoolMapping(mt, cur, v.K, v.Stride); err != nil {
					return nil, nil, err
				}
				sl.mappingTable = mt
				sm.tableNames = append(sm.tableNames, mt)
			case *nn.AvgPool:
				mt := t.tname(tag, fmt.Sprintf("poolmap%d", len(sm.tableNames)))
				if err := t.storePoolMapping(mt, cur, v.K, v.Stride); err != nil {
					return nil, nil, err
				}
				sl.mappingTable = mt
				sm.tableNames = append(sm.tableNames, mt)
			case *nn.ResidualBlock:
				mainLayers, mainOut, err := compile(v.Main, cur, tag+"rm")
				if err != nil {
					return nil, nil, err
				}
				scLayers, scOut, err := compile(v.Shortcut, cur, tag+"rs")
				if err != nil {
					return nil, nil, err
				}
				_ = mainOut
				_ = scOut
				sl.main = mainLayers
				sl.shortcut = scLayers
			case *nn.DenseBlock:
				var stages []nn.Layer
				for _, s := range v.Stages {
					stages = append(stages, s)
				}
				// compile each stage against its growing input channel count
				growIn := cur
				var stageStored []storedLayer
				for si, s := range stages {
					one, _, err := compile([]nn.Layer{s}, growIn, fmt.Sprintf("%sd%d", tag, si))
					if err != nil {
						return nil, nil, err
					}
					stageStored = append(stageStored, one[0])
					growIn = []int{growIn[0] + v.Growth, growIn[1], growIn[2]}
				}
				sl.main = stageStored
			}
			out = append(out, sl)
			cur = next
		}
		return out, cur, nil
	}

	layers, _, err := compile(m.Layers, shapes[0], "m")
	if err != nil {
		return nil, err
	}
	sm.layers = layers
	return sm, nil
}

// isModelStart reports whether this compile position is the true model
// input (so Algorithm 1 can encode the input directly in patch form).
func isModelStart(cur, inShape []int) bool {
	if len(cur) != len(inShape) {
		return false
	}
	for i := range cur {
		if cur[i] != inShape[i] {
			return false
		}
	}
	return true
}

// storeKernel vectorizes a convolution's kernels into the Kernel table
// {KernelID, OrderID, Value}, OrderID following the Im2Col element order.
func (t *Translator) storeKernel(name string, c *nn.Conv2D) error {
	t.dropIfExists(name)
	tbl, err := t.DB.CreateTable(name, sqldb.Schema{
		{Name: "KernelID", Type: sqldb.TInt},
		{Name: "OrderID", Type: sqldb.TInt},
		{Name: "Value", Type: sqldb.TFloat},
	})
	if err != nil {
		return err
	}
	n := c.InC * c.K * c.K
	for ch := 0; ch < c.OutC; ch++ {
		row := c.KernelRow(ch)
		for o := 0; o < n; o++ {
			if err := tbl.AppendRow([]sqldb.Datum{
				sqldb.Int(int64(ch)), sqldb.Int(int64(o)), sqldb.Float(row[o]),
			}); err != nil {
				return err
			}
		}
	}
	return nil
}

// storeLinearKernel stores a fully-connected weight matrix in kernel form:
// the paper treats FC as a conv with kernel size 1 over the flattened
// input, so OrderID is simply the input feature index.
func (t *Translator) storeLinearKernel(name string, l *nn.Linear) error {
	t.dropIfExists(name)
	tbl, err := t.DB.CreateTable(name, sqldb.Schema{
		{Name: "KernelID", Type: sqldb.TInt},
		{Name: "OrderID", Type: sqldb.TInt},
		{Name: "Value", Type: sqldb.TFloat},
	})
	if err != nil {
		return err
	}
	w := l.Weight.Data()
	for o := 0; o < l.Out; o++ {
		for i := 0; i < l.In; i++ {
			if err := tbl.AppendRow([]sqldb.Datum{
				sqldb.Int(int64(o)), sqldb.Int(int64(i)), sqldb.Float(w[o*l.In+i]),
			}); err != nil {
				return err
			}
		}
	}
	return nil
}

// bnIsIdentity reports whether a batch norm has no learned parameters to
// store (γ=1, β=0, batch statistics).
func bnIsIdentity(bn *nn.BatchNorm) bool {
	if !bn.UseBatchStats {
		return false
	}
	for i := range bn.Gamma {
		if bn.Gamma[i] != 1 || bn.Beta[i] != 0 {
			return false
		}
	}
	return true
}

func instanceNormIsIdentity(in *nn.InstanceNorm) bool {
	for i := range in.Gamma {
		if in.Gamma[i] != 1 || in.Beta[i] != 0 {
			return false
		}
	}
	return true
}

// storeBNParams stores per-channel normalization parameters
// {KernelID, Gamma, Beta, Mean, Var}. Mean/Var are zero/one when the layer
// normalizes with batch statistics.
func (t *Translator) storeBNParams(name string, gamma, beta, mean, variance []float64) error {
	t.dropIfExists(name)
	tbl, err := t.DB.CreateTable(name, sqldb.Schema{
		{Name: "KernelID", Type: sqldb.TInt},
		{Name: "Gamma", Type: sqldb.TFloat},
		{Name: "Beta", Type: sqldb.TFloat},
		{Name: "Mean", Type: sqldb.TFloat},
		{Name: "Var", Type: sqldb.TFloat},
	})
	if err != nil {
		return err
	}
	for i := range gamma {
		m, v := 0.0, 1.0
		if mean != nil {
			m = mean[i]
		}
		if variance != nil {
			v = variance[i]
		}
		if err := tbl.AppendRow([]sqldb.Datum{
			sqldb.Int(int64(i)), sqldb.Float(gamma[i]), sqldb.Float(beta[i]),
			sqldb.Float(m), sqldb.Float(v),
		}); err != nil {
			return err
		}
	}
	return nil
}

// storeBias stores per-output-channel biases.
func (t *Translator) storeBias(name string, bias []float64) error {
	t.dropIfExists(name)
	tbl, err := t.DB.CreateTable(name, sqldb.Schema{
		{Name: "KernelID", Type: sqldb.TInt},
		{Name: "Value", Type: sqldb.TFloat},
	})
	if err != nil {
		return err
	}
	for i, b := range bias {
		if err := tbl.AppendRow([]sqldb.Datum{sqldb.Int(int64(i)), sqldb.Float(b)}); err != nil {
			return err
		}
	}
	return nil
}

// storeDeconvContrib precomputes the transposed convolution's contribution
// table {TupleID, KernelID, OutID, Weight}: input element TupleID
// contributes Weight to output element (KernelID, OutID). Inference is then
// one join + group-by, the natural SQL form of a scatter.
func (t *Translator) storeDeconvContrib(name string, d *nn.Deconv2D, inShape []int) error {
	t.dropIfExists(name)
	tbl, err := t.DB.CreateTable(name, sqldb.Schema{
		{Name: "TupleID", Type: sqldb.TInt},
		{Name: "KernelID", Type: sqldb.TInt},
		{Name: "OutID", Type: sqldb.TInt},
		{Name: "Weight", Type: sqldb.TFloat},
	})
	if err != nil {
		return err
	}
	h, w := inShape[1], inShape[2]
	oh := (h-1)*d.Stride - 2*d.Pad + d.K
	ow := (w-1)*d.Stride - 2*d.Pad + d.K
	wd := d.Weight.Data()
	for ic := 0; ic < d.InC; ic++ {
		wrow := wd[ic*d.OutC*d.K*d.K : (ic+1)*d.OutC*d.K*d.K]
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				in := ic*h*w + y*w + x
				for oc := 0; oc < d.OutC; oc++ {
					for ky := 0; ky < d.K; ky++ {
						oy := y*d.Stride + ky - d.Pad
						if oy < 0 || oy >= oh {
							continue
						}
						for kx := 0; kx < d.K; kx++ {
							ox := x*d.Stride + kx - d.Pad
							if ox < 0 || ox >= ow {
								continue
							}
							wt := wrow[oc*d.K*d.K+ky*d.K+kx]
							out := oy*ow + ox
							if err := tbl.AppendRow([]sqldb.Datum{
								sqldb.Int(int64(in)), sqldb.Int(int64(oc)),
								sqldb.Int(int64(out)), sqldb.Float(wt),
							}); err != nil {
								return err
							}
						}
					}
				}
			}
		}
	}
	return nil
}

// StorageBytes estimates the relational footprint of the stored model —
// the DL2SQL column of Table IV. Each Int64/Float64 cell is 8 bytes.
func (sm *StoredModel) StorageBytes(db *sqldb.DB) int64 {
	var total int64
	for _, name := range sm.tableNames {
		t := db.GetTable(name)
		if t == nil {
			continue
		}
		rows := int64(t.NumRows())
		var rowBytes int64
		for _, c := range t.Schema {
			switch c.Type {
			case sqldb.TString:
				rowBytes += 16 // string header estimate
			default:
				rowBytes += 8
			}
		}
		total += rows * rowBytes
	}
	return total
}

// TableNames lists every relational table backing the stored model.
func (sm *StoredModel) TableNames() []string {
	return append([]string(nil), sm.tableNames...)
}

// EncodeInput implements Algorithm 1: it turns an input tensor into the
// patch-form FeatureMap table for the model's first convolution (kernel k,
// stride s, padding p). Rows are {MatrixID, OrderID, Value}; overlapping
// receptive fields duplicate elements, exactly as the paper notes.
func (t *Translator) EncodeInput(name string, in *tensor.Tensor, k, stride, pad int) (rows int, err error) {
	t.dropIfExists(name)
	tbl, err := t.DB.CreateTable(name, sqldb.Schema{
		{Name: "MatrixID", Type: sqldb.TInt},
		{Name: "OrderID", Type: sqldb.TInt},
		{Name: "Value", Type: sqldb.TFloat},
	})
	if err != nil {
		return 0, err
	}
	cols, err := tensor.Im2Col(in, k, stride, pad)
	if err != nil {
		return 0, err
	}
	nm, no := cols.Dim(0), cols.Dim(1)
	for m := 0; m < nm; m++ {
		for o := 0; o < no; o++ {
			if err := tbl.AppendRow([]sqldb.Datum{
				sqldb.Int(int64(m)), sqldb.Int(int64(o)), sqldb.Float(cols.At(m, o)),
			}); err != nil {
				return 0, err
			}
		}
	}
	return nm * no, nil
}

// EncodeFlat stores a tensor in flat form {TupleID, KernelID, Value} with
// TupleID the channel-major flat index.
func (t *Translator) EncodeFlat(name string, in *tensor.Tensor) error {
	t.dropIfExists(name)
	tbl, err := t.DB.CreateTable(name, sqldb.Schema{
		{Name: "TupleID", Type: sqldb.TInt},
		{Name: "KernelID", Type: sqldb.TInt},
		{Name: "Value", Type: sqldb.TFloat},
	})
	if err != nil {
		return err
	}
	shape := in.Shape()
	c := shape[0]
	per := in.Len() / c
	for i, v := range in.Data() {
		if err := tbl.AppendRow([]sqldb.Datum{
			sqldb.Int(int64(i)), sqldb.Int(int64(i / per)), sqldb.Float(v),
		}); err != nil {
			return err
		}
	}
	return nil
}
