package dl2sql

import "repro/internal/sqldb"

// preJoinedInputSchema is the layout of the strategy-3 pre-multiplied input
// encoding: {KernelID, MatrixID, Value=feature*weight}. Only the grouped SUM
// of Q1 remains at inference time.
func preJoinedInputSchema() sqldb.Schema {
	return sqldb.Schema{
		{Name: "KernelID", Type: sqldb.TInt},
		{Name: "MatrixID", Type: sqldb.TInt},
		{Name: "Value", Type: sqldb.TFloat},
	}
}

func appendPreJoined(tbl *sqldb.Table, kernelID, matrixID int, product float64) error {
	return tbl.AppendRow([]sqldb.Datum{
		sqldb.Int(int64(kernelID)), sqldb.Int(int64(matrixID)), sqldb.Float(product),
	})
}
