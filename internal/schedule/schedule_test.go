package schedule

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/faults"
	"repro/internal/iotdata"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/qerr"
	"repro/internal/tensor"
)

// countingBackend predicts blob[0] as the class and records every blob it
// physically sees, plus a per-call gate for chaos tests.
type countingBackend struct {
	mu      sync.Mutex
	blobs   [][]byte
	calls   int
	block   chan struct{} // when non-nil, Run parks here first
	failErr error         // when non-nil, Run fails with it
}

func (cb *countingBackend) backend() *Backend {
	return &Backend{
		ID: "counting",
		Run: func(ctx context.Context, artifact []byte, blobs [][]byte) ([]int, BackendStats, error) {
			cb.mu.Lock()
			cb.calls++
			cb.blobs = append(cb.blobs, blobs...)
			block, failErr := cb.block, cb.failErr
			cb.mu.Unlock()
			if block != nil {
				select {
				case <-block:
				case <-ctx.Done():
					return nil, BackendStats{}, qerr.FromContext(ctx.Err())
				}
			}
			if failErr != nil {
				return nil, BackendStats{}, failErr
			}
			out := make([]int, len(blobs))
			for i, b := range blobs {
				out[i] = int(b[0])
			}
			return out, BackendStats{InferSeconds: 0.001 * float64(len(blobs))}, nil
		},
	}
}

func (cb *countingBackend) seen() int {
	cb.mu.Lock()
	defer cb.mu.Unlock()
	return len(cb.blobs)
}

func blobN(n int) []byte { return []byte{byte(n), 0xAB} }

func TestCoalescesConcurrentSubmissions(t *testing.T) {
	s := New(Config{MaxBatch: 64, Window: 20 * time.Millisecond})
	defer s.Drain()
	cb := &countingBackend{}
	be := cb.backend()
	art := []byte("artifact-A")
	const n = 24
	var wg sync.WaitGroup
	errs := make([]error, n)
	res := make([]Result, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res[i], errs[i] = s.Infer(context.Background(), be, 1, art, blobN(i))
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("submission %d: %v", i, errs[i])
		}
		if res[i].Class != i {
			t.Fatalf("submission %d: class %d", i, res[i].Class)
		}
	}
	st := s.Stats()
	if st.Batches >= n {
		t.Fatalf("no coalescing: %d batches for %d submissions", st.Batches, n)
	}
	if st.MaxBatch < 2 {
		t.Fatalf("max batch %d, want >= 2", st.MaxBatch)
	}
	if st.Executed != n {
		t.Fatalf("executed %d, want %d", st.Executed, n)
	}
}

func TestMaxBatchFlushesWithoutWindow(t *testing.T) {
	// With a near-infinite window, hitting MaxBatch must flush immediately.
	s := New(Config{MaxBatch: 4, Window: time.Hour})
	defer s.Drain()
	cb := &countingBackend{}
	be := cb.backend()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := s.Infer(context.Background(), be, 1, []byte("a"), blobN(i)); err != nil {
				t.Error(err)
			}
		}(i)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("full batch never flushed")
	}
	if st := s.Stats(); st.Batches != 1 || st.MaxBatch != 4 {
		t.Fatalf("stats %+v, want one batch of 4", st)
	}
}

func TestSingleFlightDedup(t *testing.T) {
	s := New(Config{MaxBatch: 64, Window: 20 * time.Millisecond})
	defer s.Drain()
	cb := &countingBackend{block: make(chan struct{})}
	be := cb.backend()
	art := []byte("artifact-A")
	blob := blobN(7)
	const n = 16
	var wg sync.WaitGroup
	results := make([]Result, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := s.Infer(context.Background(), be, 1, art, blob)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = r
		}(i)
	}
	// Let every submission park, then release the backend.
	for s.Stats().DedupHits < n-1 {
		time.Sleep(time.Millisecond)
	}
	close(cb.block)
	wg.Wait()
	if got := cb.seen(); got != 1 {
		t.Fatalf("backend saw %d blobs, want 1 (single-flight)", got)
	}
	leaders, followers := 0, 0
	for _, r := range results {
		if r.Class != 7 {
			t.Fatalf("wrong class %d", r.Class)
		}
		switch r.Source {
		case SourceBatch:
			leaders++
		case SourceDedup:
			followers++
			if r.InferSeconds != 0 || r.WallSeconds != 0 {
				t.Fatal("dedup follower charged compute time")
			}
		}
	}
	if leaders != 1 || followers != n-1 {
		t.Fatalf("leaders=%d followers=%d, want 1/%d", leaders, followers, n-1)
	}
}

func TestSharedCacheHit(t *testing.T) {
	lru := cache.New[Key, int](8)
	s := New(Config{Cache: lru, Window: time.Millisecond})
	defer s.Drain()
	cb := &countingBackend{}
	be := cb.backend()
	blob := blobN(3)
	if _, err := s.Infer(context.Background(), be, 1, []byte("a"), blob); err != nil {
		t.Fatal(err)
	}
	r, err := s.Infer(context.Background(), be, 1, []byte("a"), blob)
	if err != nil {
		t.Fatal(err)
	}
	if r.Source != SourceCache || r.Class != 3 {
		t.Fatalf("second submission: %+v, want cache hit class 3", r)
	}
	if cb.seen() != 1 {
		t.Fatalf("backend saw %d blobs, want 1", cb.seen())
	}
	// The cache was populated with the scheduler's Key, so external users
	// of the same LRU (the strategies' InferCache) see the entry too.
	if _, ok := lru.Get(Key{Model: 1, Input: tensor.HashBytes(blob)}); !ok {
		t.Fatal("batch result not visible in the shared cache")
	}
}

func TestCancelledWaiterDoesNotPoisonBatch(t *testing.T) {
	s := New(Config{MaxBatch: 64, Window: 10 * time.Millisecond})
	defer s.Drain()
	cb := &countingBackend{block: make(chan struct{})}
	be := cb.backend()
	art := []byte("artifact-A")

	cancelCtx, cancel := context.WithCancel(context.Background())
	victimErr := make(chan error, 1)
	go func() {
		_, err := s.Infer(cancelCtx, be, 1, art, blobN(0))
		victimErr <- err
	}()
	const mates = 6
	var wg sync.WaitGroup
	mateRes := make([]Result, mates)
	mateErr := make([]error, mates)
	for i := 0; i < mates; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			mateRes[i], mateErr[i] = s.Infer(context.Background(), be, 1, art, blobN(i+1))
		}(i)
	}
	// Wait until all 7 are parked in one in-flight batch, then cancel the
	// victim mid-flight.
	for s.Stats().InflightKeys < mates+1 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err := <-victimErr:
		if !errors.Is(err, qerr.ErrCancelled) {
			t.Fatalf("victim error %v, want ErrCancelled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled waiter did not return while its batch was blocked")
	}
	// The batch is still blocked; releasing it must complete the mates.
	close(cb.block)
	wg.Wait()
	for i := 0; i < mates; i++ {
		if mateErr[i] != nil {
			t.Fatalf("batchmate %d poisoned by cancelled waiter: %v", i, mateErr[i])
		}
		if mateRes[i].Class != i+1 {
			t.Fatalf("batchmate %d: class %d", i, mateRes[i].Class)
		}
	}
	// The victim's own forward pass still ran and populated nothing wrong:
	// the batch executed under the scheduler's context, all blobs included.
	if st := s.Stats(); st.Executed != mates+1 {
		t.Fatalf("executed %d, want %d (cancelled waiter's pass still runs)", st.Executed, mates+1)
	}
}

func TestBatchErrorSharedByAllWaiters(t *testing.T) {
	s := New(Config{Window: 5 * time.Millisecond})
	defer s.Drain()
	sentinel := fmt.Errorf("%w: backend melted", qerr.ErrServingUnavailable)
	cb := &countingBackend{failErr: sentinel}
	be := cb.backend()
	const n = 5
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = s.Infer(context.Background(), be, 1, []byte("a"), blobN(i))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, qerr.ErrServingUnavailable) {
			t.Fatalf("waiter %d: %v, want ErrServingUnavailable", i, err)
		}
	}
	// A failed batch must clear its single-flight entries so retries
	// re-submit instead of parking on a dead flight.
	if st := s.Stats(); st.InflightKeys != 0 {
		t.Fatalf("%d in-flight keys leaked after batch failure", st.InflightKeys)
	}
}

func TestBackendCountMismatchIsAvailabilityError(t *testing.T) {
	s := New(Config{Window: time.Millisecond})
	defer s.Drain()
	be := &Backend{ID: "short", Run: func(context.Context, []byte, [][]byte) ([]int, BackendStats, error) {
		return []int{1}, BackendStats{}, nil // always one result, even for n>1
	}}
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = s.Infer(context.Background(), be, 1, []byte("a"), blobN(i))
		}(i)
	}
	wg.Wait()
	mismatched := 0
	for _, err := range errs {
		if err != nil {
			if !errors.Is(err, qerr.ErrServingUnavailable) {
				t.Fatalf("count mismatch surfaced as %v", err)
			}
			mismatched++
		}
	}
	if mismatched == 0 {
		t.Fatal("short backend response went unnoticed")
	}
}

func TestDrainFlushesPendingAndRejectsNew(t *testing.T) {
	s := New(Config{MaxBatch: 64, Window: time.Hour}) // nothing flushes by timer
	cb := &countingBackend{}
	be := cb.backend()
	const n = 3
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = s.Infer(context.Background(), be, 1, []byte("a"), blobN(i))
		}(i)
	}
	for s.Stats().QueueDepth < n {
		time.Sleep(time.Millisecond)
	}
	s.Drain() // must flush the parked batch, not strand its waiters
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("pre-drain waiter %d stranded: %v", i, err)
		}
	}
	_, err := s.Infer(context.Background(), be, 1, []byte("a"), blobN(9))
	if !errors.Is(err, qerr.ErrServingUnavailable) {
		t.Fatalf("post-drain submission: %v, want ErrServingUnavailable", err)
	}
	if st := s.Stats(); !st.Draining || st.Rejected != 1 {
		t.Fatalf("post-drain stats %+v", st)
	}
}

func TestSubmitFaultInjection(t *testing.T) {
	inj := faults.New(1, faults.Rule{Point: faults.PointSchedSubmit})
	s := New(Config{Faults: inj, Window: time.Millisecond})
	defer s.Drain()
	cb := &countingBackend{}
	_, err := s.Infer(context.Background(), cb.backend(), 1, []byte("a"), blobN(1))
	if !errors.Is(err, qerr.ErrServingUnavailable) {
		t.Fatalf("submit fault: %v", err)
	}
	if cb.seen() != 0 {
		t.Fatal("faulted submission reached the backend")
	}
}

func TestBatchFaultInjection(t *testing.T) {
	inj := faults.New(1, faults.Rule{Point: faults.PointSchedBatch})
	s := New(Config{Faults: inj, Window: time.Millisecond})
	defer s.Drain()
	cb := &countingBackend{}
	_, err := s.Infer(context.Background(), cb.backend(), 1, []byte("a"), blobN(1))
	if !errors.Is(err, qerr.ErrServingUnavailable) {
		t.Fatalf("batch fault: %v", err)
	}
	if cb.calls != 0 {
		t.Fatal("faulted batch still ran the backend")
	}
}

func TestMetricsWired(t *testing.T) {
	reg := obs.NewRegistry()
	s := New(Config{Metrics: reg, Window: time.Millisecond})
	defer s.Drain()
	cb := &countingBackend{}
	if _, err := s.Infer(context.Background(), cb.backend(), 1, []byte("a"), blobN(1)); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter(obs.MetricSchedSubmitted).Value(); got != 1 {
		t.Fatalf("%s = %v", obs.MetricSchedSubmitted, got)
	}
	if got := reg.Counter(obs.MetricSchedBatches).Value(); got != 1 {
		t.Fatalf("%s = %v", obs.MetricSchedBatches, got)
	}
	if err := reg.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestNativeBackendEndToEnd(t *testing.T) {
	m := nn.NewModel("t", []int{1, 8, 8}, []string{"a", "b"})
	m.Add(
		nn.NewConv2D("c", 1, 2, 3, 1, 1, 3),
		&nn.Flatten{LayerName: "f"},
		nn.NewLinear("fc", 2*8*8, 2, 4),
	)
	art, err := nn.EncodeBytes(m)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	blobs := make([][]byte, 6)
	want := make([]int, 6)
	for i := range blobs {
		kf := tensor.New(1, 8, 8)
		d := kf.Data()
		for j := range d {
			d[j] = rng.Float64()
		}
		blobs[i] = iotdata.KeyframeBytes(kf)
		dec, err := iotdata.KeyframeTensor(blobs[i])
		if err != nil {
			t.Fatal(err)
		}
		want[i], _, err = m.Predict(dec)
		if err != nil {
			t.Fatal(err)
		}
	}
	s := New(Config{MaxBatch: 64, Window: 10 * time.Millisecond})
	defer s.Drain()
	be := NewNativeBackend(4)
	var wg sync.WaitGroup
	got := make([]int, len(blobs))
	for i, b := range blobs {
		wg.Add(1)
		go func(i int, b []byte) {
			defer wg.Done()
			r, err := s.Infer(context.Background(), be, tensor.HashBytes(art), art, b)
			if err != nil {
				t.Error(err)
				return
			}
			got[i] = r.Class
		}(i, b)
	}
	wg.Wait()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("blob %d: scheduled class %d, per-sample class %d", i, got[i], want[i])
		}
	}
	// Corrupt artifact → availability error (fallback-ladder class).
	_, err = s.Infer(context.Background(), be, 99, []byte("not a model"), blobs[0])
	if !errors.Is(err, qerr.ErrServingUnavailable) {
		t.Fatalf("corrupt artifact: %v, want ErrServingUnavailable", err)
	}
	// Corrupt blob → plain data error, not availability.
	_, err = s.Infer(context.Background(), be, tensor.HashBytes(art), art, []byte{1, 2, 3})
	if err == nil || errors.Is(err, qerr.ErrServingUnavailable) {
		t.Fatalf("corrupt blob: %v, want a non-availability data error", err)
	}
}

func TestConcurrentSoak(t *testing.T) {
	// Hammer one scheduler from many goroutines over a small key space so
	// every path (batch, dedup, cache) races; -race is the real assertion.
	lru := cache.New[Key, int](32)
	s := New(Config{MaxBatch: 8, Window: 500 * time.Microsecond, Cache: lru})
	defer s.Drain()
	cb := &countingBackend{}
	be := cb.backend()
	var wg sync.WaitGroup
	var failures atomic.Int64
	for w := 0; w < 12; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 50; i++ {
				n := rng.Intn(10)
				r, err := s.Infer(context.Background(), be, uint64(1+n%2), []byte{byte(n % 2)}, blobN(n))
				if err != nil || r.Class != n {
					failures.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	if failures.Load() != 0 {
		t.Fatalf("%d soak submissions failed or mispredicted", failures.Load())
	}
	st := s.Stats()
	if st.CacheHits+st.DedupHits == 0 {
		t.Fatal("soak never hit cache or dedup despite tiny key space")
	}
}

func TestNilSchedulerSafe(t *testing.T) {
	var s *Scheduler
	s.Drain()
	if st := s.Stats(); st.Submitted != 0 {
		t.Fatal("nil scheduler stats")
	}
	if _, err := s.Infer(context.Background(), &Backend{}, 1, nil, nil); err == nil {
		t.Fatal("nil scheduler must reject submissions")
	}
}
