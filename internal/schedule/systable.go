package schedule

import (
	"repro/internal/sqldb"
)

// SysTableSchema is the sys.scheduler output schema: live counters plus
// the scheduler's knob settings, one row per registered scheduler.
func SysTableSchema() []sqldb.OutCol {
	return []sqldb.OutCol{
		{Name: "queue_depth", Type: sqldb.TInt},
		{Name: "inflight_keys", Type: sqldb.TInt},
		{Name: "submitted", Type: sqldb.TInt},
		{Name: "cache_hits", Type: sqldb.TInt},
		{Name: "dedup_hits", Type: sqldb.TInt},
		{Name: "executed", Type: sqldb.TInt},
		{Name: "batches", Type: sqldb.TInt},
		{Name: "avg_batch", Type: sqldb.TFloat},
		{Name: "max_batch", Type: sqldb.TInt},
		{Name: "rejected", Type: sqldb.TInt},
		{Name: "draining", Type: sqldb.TBool},
		{Name: "max_batch_knob", Type: sqldb.TInt},
		{Name: "window_us", Type: sqldb.TFloat},
	}
}

// RegisterSysTable projects the scheduler into the database's sys.*
// catalog as the single-row sys.scheduler table. The scan reads live
// counters at query time, so repeated SELECTs watch the scheduler work.
// Like every sys.* relation, queries over it bypass the plan cache.
func RegisterSysTable(db *sqldb.DB, s *Scheduler) {
	schema := SysTableSchema()
	db.RegisterSysTable(&sqldb.SysTable{
		Name:        "sys.scheduler",
		Description: "cross-query inference scheduler: queue depth, coalesced-batch and single-flight counters, and knob settings",
		Schema:      schema,
		Scan: func(*sqldb.DB) (*sqldb.Result, error) {
			res := &sqldb.Result{Schema: schema}
			for _, c := range schema {
				res.Cols = append(res.Cols, sqldb.NewColumn(c.Type))
			}
			if s == nil {
				return res, nil
			}
			st := s.Stats()
			avg := 0.0
			if st.Batches > 0 {
				avg = float64(st.Executed) / float64(st.Batches)
			}
			vals := []sqldb.Datum{
				sqldb.Int(int64(st.QueueDepth)), sqldb.Int(int64(st.InflightKeys)),
				sqldb.Int(st.Submitted), sqldb.Int(st.CacheHits),
				sqldb.Int(st.DedupHits), sqldb.Int(st.Executed),
				sqldb.Int(st.Batches), sqldb.Float(avg), sqldb.Int(st.MaxBatch),
				sqldb.Int(st.Rejected), sqldb.Bool(st.Draining),
				sqldb.Int(int64(s.cfg.maxBatch())),
				sqldb.Float(float64(s.cfg.window().Microseconds())),
			}
			for i, v := range vals {
				if err := res.Cols[i].Append(v); err != nil {
					return nil, err
				}
			}
			return res, nil
		},
	})
}
