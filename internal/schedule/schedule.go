// Package schedule is the cross-query inference scheduler: a shared layer
// between the strategies and the model backends that coalesces pending
// forward passes from concurrent queries and sessions into large batched
// MatMuls, and single-flights identical (artifact, blob) requests so
// duplicates park on the leader's result instead of recomputing.
//
// Placement (see ARCHITECTURE.md "Inference scheduling"):
//
//	server sessions ──▶ strategies (DB-UDF / DB-PyTorch)
//	                         │ Infer(artifact, blob)
//	                         ▼
//	                  schedule.Scheduler ── per-(backend, artifact) queues,
//	                         │              batch window + max-batch flush,
//	                         │              single-flight dedup, shared cache
//	                         ▼
//	                  Backend.Run(artifact, blobs) — native nn.PredictBatch
//	                  or the DB-PyTorch serving pipe, one call per batch
//
// Contracts:
//
//   - Coalescing: a submission parks in the queue for its (backend,
//     artifact) pair; the queue flushes as one batch when it reaches
//     MaxBatch or when the oldest submission has waited Window. One
//     backend call serves the whole batch.
//   - Single-flight: submissions whose (artifact-hash, blob-hash) key
//     matches a request already queued or executing do not re-enter the
//     queue; they wait on the in-flight request's result. Predictions are
//     deterministic functions of the pair, so sharing is exact.
//   - Cancellation at batch boundaries: a waiter whose context dies
//     returns its lifecycle error immediately, but the batch it joined
//     still executes to completion under the scheduler's own context —
//     a cancelled waiter never poisons its batchmates, and completed work
//     still populates the shared cache.
//   - Determinism: batching changes throughput, never results. The native
//     backend's batched kernels are bit-identical to per-sample forwards
//     (see nn.BatchLayer); the scheduler-on vs scheduler-off differential
//     suite in internal/bench pins this across all four strategies.
//   - Failure domains: a batch execution failure is delivered to every
//     waiter of that batch as the same typed error; lifecycle errors pass
//     through and backend availability failures keep their
//     qerr.ErrServingUnavailable class so the strategies' fallback ladder
//     and circuit breaker behave exactly as they do without the scheduler.
package schedule

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cache"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/qerr"
	"repro/internal/tensor"
)

// Key identifies one memoizable inference: the hash of the compiled model
// artifact and the hash of the raw input blob. It is the single-flight
// identity and the shared prediction-cache key (strategies.InferKey is an
// alias of this type, so the scheduler and the strategies' InferCache
// share entries).
type Key struct {
	Model uint64
	Input uint64
}

// Source says how a submission was answered.
type Source int

const (
	// SourceBatch: a forward pass physically ran for this blob inside a
	// coalesced batch.
	SourceBatch Source = iota
	// SourceDedup: the submission single-flighted onto an identical
	// in-flight request and shared its result.
	SourceDedup
	// SourceCache: the shared prediction cache answered without queueing.
	SourceCache
)

// String renders the source for spans and sys.scheduler.
func (s Source) String() string {
	switch s {
	case SourceDedup:
		return "dedup"
	case SourceCache:
		return "cache"
	}
	return "batch"
}

// Result is one answered submission plus its cost attribution. Timing
// shares are the batch totals divided by batch size; dedup followers and
// cache hits paid no compute, so their shares are zero.
type Result struct {
	// Class is the predicted class index.
	Class int
	// Source says whether this answer came from a batch execution, an
	// in-flight dedup, or the cache.
	Source Source
	// BatchSize is the size of the coalesced batch (0 for cache hits).
	BatchSize int
	// WallSeconds is this request's share of the batch's wall time.
	WallSeconds float64
	// InferSeconds is this request's share of the backend-reported
	// forward-pass time.
	InferSeconds float64
	// DecodeSeconds is this request's share of the backend-reported model
	// decode/load time.
	DecodeSeconds float64
}

// Config sizes a Scheduler. The zero value uses the defaults noted per
// field.
type Config struct {
	// MaxBatch flushes a queue as soon as it holds this many pending
	// requests (default 32).
	MaxBatch int
	// Window is how long the oldest pending request waits before its
	// queue flushes anyway (default 500µs). Smaller windows favour
	// latency; larger ones coalesce more aggressively.
	Window time.Duration
	// DrainGrace bounds how long Drain waits for in-flight batches before
	// cancelling their context (default 5s; negative = cancel
	// immediately).
	DrainGrace time.Duration
	// Cache, when non-nil, is the shared (Key → class) prediction LRU.
	// Hits answer without queueing; completed batches populate it. Share
	// the strategies' InferCache here so both layers memoize together.
	Cache *cache.LRU[Key, int]
	// Metrics, when non-nil, receives the sched.* counters, gauges, and
	// histograms (see internal/obs names).
	Metrics *obs.Registry
	// Faults, when non-nil, arms the sched.submit and sched.batch
	// injection points. Nil in production.
	Faults *faults.Injector
}

func (c Config) maxBatch() int {
	if c.MaxBatch <= 0 {
		return 32
	}
	return c.MaxBatch
}

func (c Config) window() time.Duration {
	if c.Window <= 0 {
		return 500 * time.Microsecond
	}
	return c.Window
}

func (c Config) drainGrace() time.Duration {
	if c.DrainGrace == 0 {
		return 5 * time.Second
	}
	return c.DrainGrace
}

// Scheduler coalesces and deduplicates inference requests across
// concurrent queries. All methods are safe for concurrent use; a nil
// *Scheduler rejects submissions (callers gate on non-nil, the way the
// strategies gate on Context.Scheduler).
type Scheduler struct {
	cfg Config

	mu       sync.Mutex
	queues   map[qkey]*queue
	inflight map[Key]*flight
	draining bool

	// wg tracks batch-execution goroutines; Drain waits on it.
	wg sync.WaitGroup
	// baseCtx is the context batches execute under — detached from any
	// single waiter, cancelled only when Drain gives up waiting.
	baseCtx    context.Context
	baseCancel context.CancelFunc

	// Counters mirrored into cfg.Metrics and surfaced by sys.scheduler.
	submitted atomic.Int64
	cacheHits atomic.Int64
	dedupHits atomic.Int64
	batches   atomic.Int64
	executed  atomic.Int64 // forward passes physically run
	rejected  atomic.Int64
	maxSeen   atomic.Int64 // largest batch observed
}

// qkey separates batch queues: requests coalesce only within the same
// backend and the same model artifact.
type qkey struct {
	backend string
	model   uint64
}

// queue is the pending batch for one (backend, artifact) pair.
type queue struct {
	be       *Backend
	artifact []byte
	items    []*item
	timer    *time.Timer
}

// item is one queued submission. traceID and span link the batch back to
// the submitting query's trace: runBatch stamps every item's span with the
// batch size and the distinct trace IDs of all its waiters, so a retained
// trace shows exactly which other queries shared its forward pass.
type item struct {
	key     Key
	blob    []byte
	fl      *flight
	traceID string
	span    *obs.Span
}

// flight is the single-flight rendezvous: followers with the same key and
// the submitting waiter itself all park on done.
type flight struct {
	done chan struct{}
	res  Result
	err  error
}

// New builds a scheduler from the config.
func New(cfg Config) *Scheduler {
	ctx, cancel := context.WithCancel(context.Background())
	return &Scheduler{
		cfg:        cfg,
		queues:     map[qkey]*queue{},
		inflight:   map[Key]*flight{},
		baseCtx:    ctx,
		baseCancel: cancel,
	}
}

// Stats is a point-in-time snapshot for sys.scheduler and tests.
type Stats struct {
	// Submitted counts all Infer calls; CacheHits and DedupHits the ones
	// answered without a fresh forward pass; Executed the forward passes
	// physically run; Batches the backend calls that ran them.
	Submitted, CacheHits, DedupHits, Executed, Batches int64
	// MaxBatch is the largest coalesced batch observed.
	MaxBatch int64
	// Rejected counts submissions refused while draining.
	Rejected int64
	// QueueDepth is the number of requests currently parked in batch
	// queues; InflightKeys the single-flight entries currently live.
	QueueDepth, InflightKeys int
	// Draining reports whether Drain has started.
	Draining bool
}

// Stats snapshots the scheduler's counters.
func (s *Scheduler) Stats() Stats {
	if s == nil {
		return Stats{}
	}
	s.mu.Lock()
	depth := 0
	for _, q := range s.queues {
		depth += len(q.items)
	}
	st := Stats{
		Submitted: s.submitted.Load(), CacheHits: s.cacheHits.Load(),
		DedupHits: s.dedupHits.Load(), Executed: s.executed.Load(),
		Batches: s.batches.Load(), MaxBatch: s.maxSeen.Load(),
		Rejected: s.rejected.Load(), QueueDepth: depth,
		InflightKeys: len(s.inflight), Draining: s.draining,
	}
	s.mu.Unlock()
	return st
}

// count bumps a metrics counter when a registry is attached.
func (s *Scheduler) count(name string) {
	if s.cfg.Metrics != nil {
		s.cfg.Metrics.Counter(name).Add(1)
	}
}

// Infer submits one (artifact, blob) inference request. The call blocks
// until the shared cache answers, an identical in-flight request
// completes, or the coalesced batch containing this request executes —
// whichever happens first — or until ctx dies, in which case the typed
// lifecycle error returns immediately and the batch (if any) completes
// without this waiter. model must be the artifact's stable hash (the
// strategies use UDFBinding's artifact hash).
func (s *Scheduler) Infer(ctx context.Context, be *Backend, model uint64, artifact, blob []byte) (Result, error) {
	if s == nil {
		return Result{}, errors.New("schedule: nil scheduler")
	}
	if be == nil || be.Run == nil {
		return Result{}, errors.New("schedule: nil backend")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := qerr.FromContext(ctx.Err()); err != nil {
		return Result{}, err
	}
	if err := s.cfg.Faults.Hit(ctx, faults.PointSchedSubmit); err != nil {
		return Result{}, fmt.Errorf("schedule: submit: %w", err)
	}
	s.submitted.Add(1)
	s.count(obs.MetricSchedSubmitted)
	// Child span under the submitting query's active span (nil and free
	// when the query is untraced). Finished on every return path; batch
	// items additionally get batch_size/batch_waiters attrs from runBatch.
	span := obs.SpanFromContext(ctx).StartChild("sched:infer")
	defer span.Finish()
	key := Key{Model: model, Input: tensor.HashBytes(blob)}
	if s.cfg.Cache != nil {
		if idx, ok := s.cfg.Cache.Get(key); ok {
			s.cacheHits.Add(1)
			s.count(obs.MetricSchedCacheHits)
			span.SetAttr("source", "cache")
			return Result{Class: idx, Source: SourceCache}, nil
		}
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.rejected.Add(1)
		s.count(obs.MetricSchedRejected)
		span.SetAttr("err", "draining")
		return Result{}, fmt.Errorf("%w: inference scheduler is draining", qerr.ErrServingUnavailable)
	}
	if fl, ok := s.inflight[key]; ok {
		// Single-flight: park on the leader's result.
		s.mu.Unlock()
		s.dedupHits.Add(1)
		s.count(obs.MetricSchedDedupHits)
		span.SetAttr("source", "dedup")
		return s.wait(ctx, fl, true)
	}
	fl := &flight{done: make(chan struct{})}
	s.inflight[key] = fl
	qk := qkey{backend: be.ID, model: model}
	q := s.queues[qk]
	if q == nil {
		q = &queue{be: be, artifact: artifact}
		s.queues[qk] = q
	}
	span.SetAttr("source", "batch")
	q.items = append(q.items, &item{key: key, blob: blob, fl: fl,
		traceID: obs.TraceIDFromContext(ctx), span: span})
	s.noteDepthLocked()
	var full *queue
	if len(q.items) >= s.cfg.maxBatch() {
		full = s.takeLocked(qk)
	} else if len(q.items) == 1 {
		q.timer = time.AfterFunc(s.cfg.window(), func() { s.flushTimed(qk) })
	}
	s.mu.Unlock()
	if full != nil {
		s.launch(full)
	}
	return s.wait(ctx, fl, false)
}

// wait parks on a flight until it completes or ctx dies. Dedup followers
// report SourceDedup with zero timing shares — they paid no compute.
func (s *Scheduler) wait(ctx context.Context, fl *flight, dedup bool) (Result, error) {
	select {
	case <-fl.done:
	case <-ctx.Done():
		return Result{}, qerr.FromContext(ctx.Err())
	}
	if fl.err != nil {
		return Result{}, fl.err
	}
	r := fl.res
	if dedup {
		r.Source = SourceDedup
		r.WallSeconds, r.InferSeconds, r.DecodeSeconds = 0, 0, 0
	}
	return r, nil
}

// takeLocked detaches a queue's pending batch (stopping its flush timer)
// and removes the queue. Caller holds s.mu.
func (s *Scheduler) takeLocked(qk qkey) *queue {
	q := s.queues[qk]
	if q == nil {
		return nil
	}
	if q.timer != nil {
		q.timer.Stop()
	}
	delete(s.queues, qk)
	return q
}

// flushTimed is the Window expiry path.
func (s *Scheduler) flushTimed(qk qkey) {
	s.mu.Lock()
	q := s.takeLocked(qk)
	s.mu.Unlock()
	if q != nil {
		s.launch(q)
	}
}

// launch executes a detached batch on its own goroutine, tracked by the
// drain WaitGroup.
func (s *Scheduler) launch(q *queue) {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.runBatch(q)
	}()
}

// runBatch executes one coalesced batch under the scheduler's base
// context and publishes per-item results (or one shared error) to every
// flight, then removes the keys from the single-flight index. Completed
// predictions populate the shared cache even if some waiters have already
// gone away — the compute happened, and the next identical request should
// not repeat it.
func (s *Scheduler) runBatch(q *queue) {
	n := len(q.items)
	start := time.Now()
	idxs, stats, err := func() ([]int, BackendStats, error) {
		if ferr := s.cfg.Faults.Hit(s.baseCtx, faults.PointSchedBatch); ferr != nil {
			return nil, BackendStats{}, fmt.Errorf("schedule: batch: %w", ferr)
		}
		blobs := make([][]byte, n)
		for i, it := range q.items {
			blobs[i] = it.blob
		}
		return q.be.Run(s.baseCtx, q.artifact, blobs)
	}()
	wall := time.Since(start).Seconds()
	if err == nil && len(idxs) != n {
		err = fmt.Errorf("%w: backend %s returned %d predictions for a batch of %d",
			qerr.ErrServingUnavailable, q.be.ID, len(idxs), n)
	}
	s.batches.Add(1)
	s.count(obs.MetricSchedBatches)
	if err == nil {
		s.executed.Add(int64(n))
	}
	for {
		cur := s.maxSeen.Load()
		if int64(n) <= cur || s.maxSeen.CompareAndSwap(cur, int64(n)) {
			break
		}
	}
	if s.cfg.Metrics != nil {
		s.cfg.Metrics.Histogram(obs.MetricSchedBatchSize).Observe(float64(n))
		s.cfg.Metrics.Histogram(obs.MetricSchedBatchSeconds).Observe(wall)
	}
	// Stamp every waiter's span with the batch it rode in: its size and
	// the distinct trace IDs of all traced waiters, so any one retained
	// trace names the queries that shared this forward pass.
	var waiters []string
	seen := map[string]bool{}
	for _, it := range q.items {
		if it.traceID != "" && !seen[it.traceID] {
			seen[it.traceID] = true
			waiters = append(waiters, it.traceID)
		}
	}
	waiterList := strings.Join(waiters, ",")
	for _, it := range q.items {
		if it.span == nil {
			continue
		}
		it.span.SetAttr("batch_size", n)
		if waiterList != "" {
			it.span.SetAttr("batch_waiters", waiterList)
		}
	}
	s.mu.Lock()
	for i, it := range q.items {
		delete(s.inflight, it.key)
		if err != nil {
			it.fl.err = err
		} else {
			it.fl.res = Result{
				Class: idxs[i], Source: SourceBatch, BatchSize: n,
				WallSeconds:   wall / float64(n),
				InferSeconds:  stats.InferSeconds / float64(n),
				DecodeSeconds: stats.DecodeSeconds / float64(n),
			}
			if s.cfg.Cache != nil {
				s.cfg.Cache.Put(it.key, idxs[i])
			}
		}
		close(it.fl.done)
	}
	s.noteDepthLocked()
	s.mu.Unlock()
}

// noteDepthLocked mirrors the current queue depth into the gauge. Caller
// holds s.mu.
func (s *Scheduler) noteDepthLocked() {
	if s.cfg.Metrics == nil {
		return
	}
	depth := 0
	for _, q := range s.queues {
		depth += len(q.items)
	}
	s.cfg.Metrics.Gauge(obs.MetricSchedQueueDepth).Set(float64(depth))
}

// Drain shuts the scheduler down gracefully: stop accepting submissions,
// flush every pending queue immediately (their waiters are in-flight
// queries that deserve answers), give running batches DrainGrace to
// finish, then cancel their context and wait them out. Idempotent and
// safe to call concurrently; the server calls it after its own in-flight
// queries are gone so batch results are never yanked from live waiters.
func (s *Scheduler) Drain() {
	if s == nil {
		return
	}
	s.mu.Lock()
	already := s.draining
	s.draining = true
	var flush []*queue
	if !already {
		for qk := range s.queues {
			if q := s.takeLocked(qk); q != nil {
				flush = append(flush, q)
			}
		}
	}
	s.mu.Unlock()
	for _, q := range flush {
		s.launch(q)
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	if g := s.cfg.drainGrace(); g > 0 {
		select {
		case <-done:
		case <-time.After(g):
		}
	}
	s.baseCancel()
	<-done
}
