package schedule

import (
	"context"
	"fmt"
	"time"

	"repro/internal/cache"
	"repro/internal/iotdata"
	"repro/internal/nn"
	"repro/internal/qerr"
	"repro/internal/tensor"
)

// BackendStats is the backend's self-reported cost split for one batch:
// how long model decode/loading took versus the forward passes themselves.
// The scheduler divides both across the batch's waiters so the strategies'
// CostBreakdown buckets stay meaningful under coalescing.
type BackendStats struct {
	DecodeSeconds float64
	InferSeconds  float64
}

// Backend executes one coalesced batch. Run receives the model artifact
// shared by the whole batch and the raw input blobs in queue order, and
// must return one predicted class index per blob, in the same order.
// Backends must honour ctx (the scheduler's base context — cancelled only
// on forced drain, never by an individual waiter) and must wrap
// availability failures in qerr.ErrServingUnavailable so the strategies'
// fallback ladder sees the same error classes it would without the
// scheduler. ID namespaces the batch queues: requests coalesce only within
// one backend.
type Backend struct {
	ID  string
	Run func(ctx context.Context, artifact []byte, blobs [][]byte) ([]int, BackendStats, error)
}

// NewNativeBackend builds the in-process backend used by the DB-UDF path:
// artifacts decode through an LRU keyed on the artifact hash (so a hot
// model decodes once, not once per batch), blobs decode via
// iotdata.KeyframeTensor, and the whole batch runs through
// nn.PredictBatch — one stacked MatMul per batch-aware layer,
// bit-identical to per-sample forwards. modelCacheCap bounds the decoded-
// model LRU (<= 0 disables it and every batch re-decodes).
func NewNativeBackend(modelCacheCap int) *Backend {
	models := cache.New[uint64, *nn.Model](modelCacheCap)
	return &Backend{
		ID: "native",
		Run: func(ctx context.Context, artifact []byte, blobs [][]byte) ([]int, BackendStats, error) {
			var stats BackendStats
			if err := qerr.FromContext(ctx.Err()); err != nil {
				return nil, stats, err
			}
			hash := tensor.HashBytes(artifact)
			m, ok := models.Get(hash)
			if !ok {
				start := time.Now()
				var err error
				m, err = nn.DecodeBytes(artifact)
				stats.DecodeSeconds = time.Since(start).Seconds()
				if err != nil {
					// A model that fails to decode is a serving-availability
					// problem: the fallback ladder should degrade the query,
					// exactly as a per-query decode failure would.
					return nil, stats, fmt.Errorf("%w: native backend: decode model: %v", qerr.ErrServingUnavailable, err)
				}
				models.Put(hash, m)
			}
			ins := make([]*tensor.Tensor, len(blobs))
			for i, b := range blobs {
				in, err := iotdata.KeyframeTensor(b)
				if err != nil {
					// A malformed input blob is a data error, not an
					// availability one — it must not trip the breaker or the
					// fallback ladder.
					return nil, stats, fmt.Errorf("native backend: keyframe %d: %w", i, err)
				}
				ins[i] = in
			}
			start := time.Now()
			idxs, err := m.PredictBatch(ins)
			stats.InferSeconds = time.Since(start).Seconds()
			if err != nil {
				return nil, stats, fmt.Errorf("native backend: %w", err)
			}
			return idxs, stats, nil
		},
	}
}
