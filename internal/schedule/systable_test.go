package schedule

import (
	"context"
	"testing"
	"time"

	"repro/internal/sqldb"
)

func TestSysSchedulerTable(t *testing.T) {
	db := sqldb.New()
	db.EnableSysCatalog()
	s := New(Config{Window: time.Millisecond})
	defer s.Drain()
	RegisterSysTable(db, s)

	cb := &countingBackend{}
	be := cb.backend()
	for i := 0; i < 3; i++ {
		if _, err := s.Infer(context.Background(), be, 1, []byte("a"), blobN(i)); err != nil {
			t.Fatal(err)
		}
	}
	res, err := db.Exec("SELECT submitted, executed, batches, max_batch_knob FROM sys.scheduler")
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 1 {
		t.Fatalf("sys.scheduler rows = %d, want 1", res.NumRows())
	}
	submitted, _ := res.Cols[0].Get(0).AsInt()
	executed, _ := res.Cols[1].Get(0).AsInt()
	batches, _ := res.Cols[2].Get(0).AsInt()
	knob, _ := res.Cols[3].Get(0).AsInt()
	if submitted != 3 || executed != 3 {
		t.Fatalf("submitted=%d executed=%d, want 3/3", submitted, executed)
	}
	if batches < 1 || batches > 3 {
		t.Fatalf("batches=%d", batches)
	}
	if knob != 32 {
		t.Fatalf("max_batch_knob=%d, want default 32", knob)
	}
	// sys.* relations bypass the plan cache; the scan must not be served
	// stale counters through a cached plan.
	db.EnableCache(16)
	exp, err := db.Exec("EXPLAIN SELECT submitted FROM sys.scheduler")
	if err != nil {
		t.Fatal(err)
	}
	if got := exp.Cols[0].Get(0).String(); got != "cache: bypass" {
		t.Fatalf("EXPLAIN first line %q, want %q", got, "cache: bypass")
	}
}
