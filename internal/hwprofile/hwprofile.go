// Package hwprofile models the two hardware settings of the paper's
// evaluation: the ARM edge device (no accelerator) and the Alibaba Cloud
// server (Xeon CPU + Quadro P6000 GPU). The repository always executes on
// the host CPU; a profile rescales the measured native-inference time by
// the target's relative throughput and adds the host↔device transfer cost
// that makes the paper's GPU loading bars grow (Fig. 8).
//
// The scale factors are calibrated to the relative magnitudes visible in
// Fig. 8, not to absolute hardware specs — the experiments compare
// strategies under a profile, never profiles against each other in absolute
// terms.
package hwprofile

// Profile describes one hardware setting.
type Profile struct {
	Name string
	// InferenceSpeedup divides native-engine inference time (1.0 = this
	// host ≈ the edge CPU).
	InferenceSpeedup float64
	// RelationalSpeedup divides relational-operator time.
	RelationalSpeedup float64
	// TransferSecPerMB is the host↔device copy cost per megabyte moved
	// (model weights + input batches), charged to the loading bucket. Zero
	// for CPU-only settings.
	TransferSecPerMB float64
	// TransferBaseSec is the fixed per-query device-launch overhead.
	TransferBaseSec float64
	// UsesGPU marks settings where inference runs on a device with its own
	// memory.
	UsesGPU bool
	// DLPerCallOverheadSec is the fixed per-inference-call overhead of the
	// DL-framework serving pathway (operator dispatch, tensor marshalling,
	// thread-pool wakeup — substantial for LibTorch on the paper's ARM edge
	// device, where the distilled student model is small enough that fixed
	// overheads dominate). The in-process Go engine used here has no such
	// overhead, so the profile re-adds it to the DB-UDF and DB-PyTorch
	// pathways; this is the calibration that restores the paper's measured
	// native-vs-SQL cost ratio (see DESIGN.md, substitutions).
	DLPerCallOverheadSec float64
	// DLModelLoadFactor multiplies the measured model-artifact decode time:
	// LibTorch deserialization + kernel initialisation is far heavier than
	// this repo's flat binary read.
	DLModelLoadFactor float64
}

// The paper's hardware settings.
var (
	// EdgeCPU is the ARM v8 edge device: the baseline (scale 1).
	EdgeCPU = Profile{
		Name:                 "edge-cpu",
		InferenceSpeedup:     1,
		RelationalSpeedup:    1,
		DLPerCallOverheadSec: 0.012,
		DLModelLoadFactor:    8,
	}
	// ServerCPU is the Xeon server in CPU mode: faster across the board.
	ServerCPU = Profile{
		Name:                 "server-cpu",
		InferenceSpeedup:     3,
		RelationalSpeedup:    2,
		DLPerCallOverheadSec: 0.012,
		DLModelLoadFactor:    8,
	}
	// ServerGPU adds a Quadro P6000: inference accelerates dramatically but
	// every query pays PCIe transfer for weights and batches.
	ServerGPU = Profile{
		Name:                 "server-gpu",
		InferenceSpeedup:     25,
		RelationalSpeedup:    2,
		TransferSecPerMB:     0.012,
		TransferBaseSec:      0.004,
		UsesGPU:              true,
		DLPerCallOverheadSec: 0.012,
		DLModelLoadFactor:    8,
	}
)

// All lists the selectable profiles.
func All() []Profile { return []Profile{EdgeCPU, ServerCPU, ServerGPU} }

// ByName resolves a profile; ok=false for unknown names.
func ByName(name string) (Profile, bool) {
	for _, p := range All() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// ScaleInference converts measured host inference seconds to the profile.
func (p Profile) ScaleInference(sec float64) float64 {
	if p.InferenceSpeedup <= 0 {
		return sec
	}
	return sec / p.InferenceSpeedup
}

// ScaleRelational converts measured host relational seconds to the profile.
func (p Profile) ScaleRelational(sec float64) float64 {
	if p.RelationalSpeedup <= 0 {
		return sec
	}
	return sec / p.RelationalSpeedup
}

// TransferCost returns the device-copy time for the given number of bytes,
// zero on CPU-only profiles.
func (p Profile) TransferCost(bytes int64) float64 {
	if !p.UsesGPU {
		return 0
	}
	return p.TransferBaseSec + float64(bytes)/1e6*p.TransferSecPerMB
}

// DLCallOverhead returns the framework dispatch overhead for n inference
// calls, already adjusted by the profile's inference speedup.
func (p Profile) DLCallOverhead(n int) float64 {
	return p.ScaleInference(p.DLPerCallOverheadSec * float64(n))
}

// DLLoadCost converts a measured artifact-decode duration into the
// profile's DL-framework model-load time.
func (p Profile) DLLoadCost(decodeSec float64) float64 {
	f := p.DLModelLoadFactor
	if f < 1 {
		f = 1
	}
	return decodeSec * f
}
