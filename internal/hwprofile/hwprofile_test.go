package hwprofile

import "testing"

func TestByName(t *testing.T) {
	for _, name := range []string{"edge-cpu", "server-cpu", "server-gpu"} {
		p, ok := ByName(name)
		if !ok || p.Name != name {
			t.Fatalf("ByName(%s) failed", name)
		}
	}
	if _, ok := ByName("tpu"); ok {
		t.Fatal("unknown profile must not resolve")
	}
}

func TestAllHasThreeProfiles(t *testing.T) {
	if len(All()) != 3 {
		t.Fatalf("profiles = %d", len(All()))
	}
}

func TestScaleInference(t *testing.T) {
	if EdgeCPU.ScaleInference(3) != 3 {
		t.Fatal("edge is the 1x baseline")
	}
	if ServerCPU.ScaleInference(3) != 1 {
		t.Fatalf("server-cpu 3x speedup: %v", ServerCPU.ScaleInference(3))
	}
	zero := Profile{}
	if zero.ScaleInference(5) != 5 {
		t.Fatal("zero speedup must be identity")
	}
}

func TestScaleRelational(t *testing.T) {
	if ServerGPU.ScaleRelational(4) != 2 {
		t.Fatalf("server relational 2x: %v", ServerGPU.ScaleRelational(4))
	}
	zero := Profile{}
	if zero.ScaleRelational(5) != 5 {
		t.Fatal("zero speedup must be identity")
	}
}

func TestTransferCostOnlyOnGPU(t *testing.T) {
	if EdgeCPU.TransferCost(1<<20) != 0 {
		t.Fatal("CPU profiles transfer nothing")
	}
	c := ServerGPU.TransferCost(2_000_000)
	want := ServerGPU.TransferBaseSec + 2*ServerGPU.TransferSecPerMB
	if c != want {
		t.Fatalf("transfer = %v, want %v", c, want)
	}
}

func TestDLCallOverheadScales(t *testing.T) {
	edge := EdgeCPU.DLCallOverhead(10)
	server := ServerCPU.DLCallOverhead(10)
	if edge <= 0 || server <= 0 {
		t.Fatal("overheads must be positive")
	}
	if server >= edge {
		t.Fatalf("server overhead %v must be below edge %v", server, edge)
	}
}

func TestDLLoadCost(t *testing.T) {
	if got := EdgeCPU.DLLoadCost(0.01); got != 0.01*EdgeCPU.DLModelLoadFactor {
		t.Fatalf("load cost = %v", got)
	}
	// A zero-factor profile degrades to identity, never shrinking.
	zero := Profile{}
	if zero.DLLoadCost(0.5) != 0.5 {
		t.Fatal("zero factor must clamp to 1")
	}
}

func TestGPUIsConfiguredForTheFig8Story(t *testing.T) {
	// Fig. 8's mechanism: the GPU dramatically accelerates inference but
	// charges transfer on loading.
	if ServerGPU.InferenceSpeedup <= ServerCPU.InferenceSpeedup {
		t.Fatal("GPU must accelerate inference beyond the CPU server")
	}
	if !ServerGPU.UsesGPU || ServerGPU.TransferSecPerMB <= 0 {
		t.Fatal("GPU must charge transfer cost")
	}
}
