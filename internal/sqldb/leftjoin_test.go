package sqldb

import (
	"strings"
	"testing"
)

func TestLeftJoinBasic(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, `CREATE TABLE badge (emp_id Int64, badge String)`)
	mustExec(t, db, `INSERT INTO badge VALUES (1, 'gold'), (3, 'silver')`)
	res := mustExec(t, db, `SELECT e.name, b.badge FROM emp e LEFT JOIN badge b ON e.id = b.emp_id ORDER BY e.id`)
	if res.NumRows() != 5 {
		t.Fatalf("left join rows = %d, want 5", res.NumRows())
	}
	if res.Cols[1].Get(0).S != "gold" {
		t.Fatalf("row 0 badge = %v", res.Cols[1].Get(0))
	}
	if !res.Cols[1].Get(1).IsNull() {
		t.Fatalf("row 1 badge should be NULL, got %v", res.Cols[1].Get(1))
	}
	if res.Cols[1].Get(2).S != "silver" {
		t.Fatalf("row 2 badge = %v", res.Cols[1].Get(2))
	}
}

func TestLeftJoinOuterKeyword(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, `CREATE TABLE badge (emp_id Int64, badge String)`)
	res := mustExec(t, db, `SELECT e.id FROM emp e LEFT OUTER JOIN badge b ON e.id = b.emp_id`)
	if res.NumRows() != 5 {
		t.Fatalf("left outer rows = %d", res.NumRows())
	}
}

func TestLeftJoinWhereOnRightSide(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, `CREATE TABLE badge (emp_id Int64, badge String)`)
	mustExec(t, db, `INSERT INTO badge VALUES (1, 'gold'), (3, 'silver')`)
	// WHERE applies after the join: IS NULL finds the unmatched rows.
	res := mustExec(t, db, `SELECT count(*) c FROM emp e LEFT JOIN badge b ON e.id = b.emp_id WHERE b.badge IS NULL`)
	if res.Cols[0].Get(0).I != 3 {
		t.Fatalf("anti-join count = %v, want 3", res.Cols[0].Get(0))
	}
}

func TestLeftJoinDuplicateMatches(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, `CREATE TABLE badge (emp_id Int64, badge String)`)
	mustExec(t, db, `INSERT INTO badge VALUES (1, 'gold'), (1, 'platinum')`)
	res := mustExec(t, db, `SELECT count(*) c FROM emp e LEFT JOIN badge b ON e.id = b.emp_id`)
	// 2 matches for alice + 4 unmatched singles = 6.
	if res.Cols[0].Get(0).I != 6 {
		t.Fatalf("rows = %v, want 6", res.Cols[0].Get(0))
	}
}

func TestLeftJoinWithExtraRelation(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, `CREATE TABLE badge (emp_id Int64, badge String)`)
	mustExec(t, db, `INSERT INTO badge VALUES (2, 'gold')`)
	mustExec(t, db, `CREATE TABLE dept2 (name String, floor Int64)`)
	mustExec(t, db, `INSERT INTO dept2 VALUES ('eng', 3), ('sales', 1), ('hr', 2)`)
	// Composite left-join relation inner-joined with another table.
	res := mustExec(t, db, `SELECT e.name, d.floor, b.badge FROM emp e LEFT JOIN badge b ON e.id = b.emp_id, dept2 d WHERE e.dept = d.name ORDER BY e.id`)
	if res.NumRows() != 5 {
		t.Fatalf("rows = %d", res.NumRows())
	}
	if !res.Cols[2].Get(0).IsNull() || res.Cols[2].Get(1).S != "gold" {
		t.Fatalf("badges: %v %v", res.Cols[2].Get(0), res.Cols[2].Get(1))
	}
}

func TestLeftJoinAggregation(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, `CREATE TABLE badge (emp_id Int64, badge String)`)
	mustExec(t, db, `INSERT INTO badge VALUES (1, 'gold'), (2, 'gold')`)
	// count(col) skips the NULL-padded rows, count(*) does not.
	res := mustExec(t, db, `SELECT count(*) a, count(b.badge) m FROM emp e LEFT JOIN badge b ON e.id = b.emp_id`)
	if res.Cols[0].Get(0).I != 5 || res.Cols[1].Get(0).I != 2 {
		t.Fatalf("counts: %v", res.GetRow(0))
	}
}

func TestLeftJoinRequiresEquiOn(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, `CREATE TABLE badge (emp_id Int64, badge String)`)
	if _, err := db.Exec(`SELECT e.id FROM emp e LEFT JOIN badge b ON e.id > b.emp_id`); err == nil {
		t.Fatal("non-equi LEFT JOIN must be rejected")
	}
	if _, err := db.Exec(`SELECT e.id FROM emp e LEFT JOIN badge b`); err == nil {
		t.Fatal("LEFT JOIN without ON must be rejected")
	}
}

func TestLeftJoinExplain(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, `CREATE TABLE badge (emp_id Int64, badge String)`)
	res := mustExec(t, db, `EXPLAIN SELECT e.id FROM emp e LEFT JOIN badge b ON e.id = b.emp_id`)
	joined := ""
	for i := 0; i < res.NumRows(); i++ {
		joined += res.Cols[0].Get(i).S + "\n"
	}
	if !strings.Contains(joined, "LeftOuterHashJoin") {
		t.Fatalf("explain missing LeftOuterHashJoin:\n%s", joined)
	}
}

func TestInSubquery(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, `CREATE TABLE vip (emp_id Int64)`)
	mustExec(t, db, `INSERT INTO vip VALUES (1), (4)`)
	res := mustExec(t, db, `SELECT name FROM emp WHERE id IN (SELECT emp_id FROM vip) ORDER BY id`)
	if res.NumRows() != 2 || res.Cols[0].Get(0).S != "alice" || res.Cols[0].Get(1).S != "dave" {
		t.Fatalf("IN subquery: %v", res.Cols[0])
	}
	res = mustExec(t, db, `SELECT count(*) c FROM emp WHERE id NOT IN (SELECT emp_id FROM vip)`)
	if res.Cols[0].Get(0).I != 3 {
		t.Fatalf("NOT IN subquery: %v", res.Cols[0].Get(0))
	}
}

func TestInSubqueryEmpty(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, `CREATE TABLE vip (emp_id Int64)`)
	res := mustExec(t, db, `SELECT count(*) c FROM emp WHERE id IN (SELECT emp_id FROM vip)`)
	if res.Cols[0].Get(0).I != 0 {
		t.Fatalf("empty IN subquery: %v", res.Cols[0].Get(0))
	}
}

func TestInSubqueryMultiColumnRejected(t *testing.T) {
	db := newTestDB(t)
	if _, err := db.Exec(`SELECT name FROM emp WHERE id IN (SELECT id, name FROM emp)`); err == nil {
		t.Fatal("multi-column IN subquery must fail")
	}
}

func TestInSubqueryAggregated(t *testing.T) {
	db := newTestDB(t)
	// Employees in departments with more than one member.
	res := mustExec(t, db, `SELECT count(*) c FROM emp WHERE dept IN (SELECT dept FROM emp GROUP BY dept HAVING count(*) > 1)`)
	if res.Cols[0].Get(0).I != 4 {
		t.Fatalf("aggregated IN subquery: %v", res.Cols[0].Get(0))
	}
}

func TestUnionAll(t *testing.T) {
	db := newTestDB(t)
	res := mustExec(t, db, `SELECT name, salary FROM emp WHERE dept = 'eng'
		UNION ALL SELECT name, salary FROM emp WHERE dept = 'hr'`)
	if res.NumRows() != 3 {
		t.Fatalf("union rows = %d, want 3", res.NumRows())
	}
	// Duplicates are preserved.
	res = mustExec(t, db, `SELECT id FROM emp UNION ALL SELECT id FROM emp`)
	if res.NumRows() != 10 {
		t.Fatalf("dup union rows = %d, want 10", res.NumRows())
	}
}

func TestUnionAllThreeBranches(t *testing.T) {
	db := newTestDB(t)
	res := mustExec(t, db, `SELECT 1 AS x UNION ALL SELECT 2 UNION ALL SELECT 3`)
	if res.NumRows() != 3 {
		t.Fatalf("3-branch union rows = %d", res.NumRows())
	}
	sum := int64(0)
	for i := 0; i < 3; i++ {
		v, _ := res.Cols[0].Get(i).AsInt()
		sum += v
	}
	if sum != 6 {
		t.Fatalf("union values sum = %d", sum)
	}
}

func TestUnionAllColumnMismatch(t *testing.T) {
	db := newTestDB(t)
	if _, err := db.Exec(`SELECT id FROM emp UNION ALL SELECT id, name FROM emp`); err == nil {
		t.Fatal("column-count mismatch must fail")
	}
}

func TestUnionRequiresAll(t *testing.T) {
	db := newTestDB(t)
	if _, err := db.Exec(`SELECT id FROM emp UNION SELECT id FROM emp`); err == nil {
		t.Fatal("bare UNION must be rejected (only UNION ALL)")
	}
}

func TestUnionAllInsideCreateAndFromSubquery(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, `CREATE TABLE u AS SELECT id FROM emp WHERE id <= 2 UNION ALL SELECT id FROM emp WHERE id >= 4`)
	res := mustExec(t, db, `SELECT count(*) c FROM u`)
	if res.Cols[0].Get(0).I != 4 {
		t.Fatalf("create-from-union rows = %v", res.Cols[0].Get(0))
	}
}

func TestOrderByOrdinal(t *testing.T) {
	db := newTestDB(t)
	res := mustExec(t, db, `SELECT name, salary FROM emp ORDER BY 2 DESC LIMIT 1`)
	if res.Cols[0].Get(0).S != "alice" {
		t.Fatalf("ORDER BY 2: %v", res.Cols[0].Get(0))
	}
	if _, err := db.Exec(`SELECT name FROM emp ORDER BY 5`); err == nil {
		t.Fatal("out-of-range ordinal must fail")
	}
}
