package sqldb

import (
	"context"
	"fmt"
	"strings"
)

// Logical plan nodes. The engine executes plans by full materialization —
// each operator drains its child and produces a Result — which mirrors a
// block-at-a-time columnar pipeline that has been fully consumed and keeps
// per-operator profiling (Fig. 10) exact.

// Plan is a logical/physical query plan node.
type Plan interface {
	planNode()
	// OutSchema is the statically-known schema of this node's output.
	OutSchema() []OutCol
}

// LScan reads a base table or view, applying pushed-down filters.
type LScan struct {
	Table   string
	Alias   string
	Filters []Expr // conjuncts evaluated during the scan
	schema  []OutCol
	// EstRows is the optimizer's cardinality estimate, kept for EXPLAIN and
	// tests.
	EstRows float64
}

// LFilter applies residual conjuncts.
type LFilter struct {
	Child Plan
	Conds []Expr
}

// LJoin is a binary join. EquiL/EquiR are matching key expressions (over
// the left/right child schemas respectively); when empty the join degrades
// to a nested-loop cross join filtered by Residual.
type LJoin struct {
	L, R      Plan
	EquiL     []Expr
	EquiR     []Expr
	Residual  []Expr
	Symmetric bool // use the symmetric hash join algorithm (hint rule 3)
	// LeftOuter preserves unmatched left rows, padding the right side with
	// NULLs (LEFT OUTER JOIN).
	LeftOuter bool
	EstRows   float64
}

// LProject computes the SELECT items.
type LProject struct {
	Child  Plan
	Items  []SelectItem
	schema []OutCol
}

// LAgg performs (optionally grouped) aggregation and computes the SELECT
// items over the aggregated values.
type LAgg struct {
	Child   Plan
	GroupBy []Expr
	Items   []SelectItem
	Having  Expr
	schema  []OutCol
}

// LDistinct removes duplicate rows.
type LDistinct struct{ Child Plan }

// LSort orders rows.
type LSort struct {
	Child Plan
	Keys  []OrderItem
}

// LLimit truncates rows.
type LLimit struct {
	Child  Plan
	N      int
	Offset int
}

func (*LScan) planNode()     {}
func (*LFilter) planNode()   {}
func (*LJoin) planNode()     {}
func (*LProject) planNode()  {}
func (*LAgg) planNode()      {}
func (*LDistinct) planNode() {}
func (*LSort) planNode()     {}
func (*LLimit) planNode()    {}

// OutSchema implementations: each node's statically-known output columns.
func (p *LScan) OutSchema() []OutCol     { return p.schema }
func (p *LFilter) OutSchema() []OutCol   { return p.Child.OutSchema() }
func (p *LProject) OutSchema() []OutCol  { return p.schema }
func (p *LAgg) OutSchema() []OutCol      { return p.schema }
func (p *LDistinct) OutSchema() []OutCol { return p.Child.OutSchema() }
func (p *LSort) OutSchema() []OutCol     { return p.Child.OutSchema() }
func (p *LLimit) OutSchema() []OutCol    { return p.Child.OutSchema() }

func (p *LJoin) OutSchema() []OutCol {
	l := p.L.OutSchema()
	r := p.R.OutSchema()
	out := make([]OutCol, 0, len(l)+len(r))
	out = append(out, l...)
	out = append(out, r...)
	return out
}

// planRel is one relation in the FROM list during planning.
type planRel struct {
	alias string
	plan  Plan
}

// planSelect builds a plan for a SELECT statement.
func (db *DB) planSelect(st *SelectStmt, hints *QueryHints) (Plan, error) {
	// Resolve scalar subqueries first: execute each uncorrelated subquery
	// once and replace it with a literal (covers the paper's Q4 AVG/stddev
	// pattern).
	st, err := db.resolveSubqueries(st, hints)
	if err != nil {
		return nil, err
	}

	if st.From == nil {
		// FROM-less SELECT: single-row projection.
		return &LProject{
			Child:  nil,
			Items:  st.Items,
			schema: db.projectSchema(st.Items, nil),
		}, nil
	}

	rels, onConds, err := db.flattenFrom(st.From, hints)
	if err != nil {
		return nil, err
	}
	conds := append(onConds, conjuncts(st.Where)...)

	plan, residual, err := db.buildJoinTree(rels, conds, hints)
	if err != nil {
		return nil, err
	}
	if len(residual) > 0 {
		plan = &LFilter{Child: plan, Conds: db.orderPredicates(residual, hints)}
	}

	// ORDER BY ordinals: an integer literal key selects the Nth item.
	for i, k := range st.OrderBy {
		lit, ok := k.Expr.(*Lit)
		if !ok || lit.Val.T != TInt {
			continue
		}
		n := int(lit.Val.I)
		if n < 1 || n > len(st.Items) || st.Items[n-1].Star {
			return nil, fmt.Errorf("sqldb: ORDER BY position %d out of range", n)
		}
		st.OrderBy[i].Expr = st.Items[n-1].Expr
	}

	// Aggregation?
	hasAgg := len(st.GroupBy) > 0 || st.Having != nil
	for _, it := range st.Items {
		if !it.Star && exprHasAggregate(it.Expr) {
			hasAgg = true
		}
	}
	if hasAgg {
		agg := &LAgg{Child: plan, GroupBy: st.GroupBy, Items: st.Items, Having: st.Having}
		agg.schema = db.projectSchema(st.Items, plan.OutSchema())
		plan = agg
		if st.Distinct {
			plan = &LDistinct{Child: plan}
		}
		if len(st.OrderBy) > 0 {
			plan = &LSort{Child: plan, Keys: st.OrderBy}
		}
	} else {
		star := len(st.Items) == 1 && st.Items[0].Star
		if len(st.OrderBy) > 0 && !st.Distinct {
			// Sort below the projection so ORDER BY can reference source
			// columns that are not projected; output-alias references are
			// rewritten to the underlying item expressions first.
			keys := make([]OrderItem, len(st.OrderBy))
			for i, k := range st.OrderBy {
				keys[i] = k
				if cr, ok := k.Expr.(*ColRef); ok && cr.Table == "" {
					for _, it := range st.Items {
						if !it.Star && it.Alias != "" && strings.EqualFold(it.Alias, cr.Name) {
							keys[i].Expr = it.Expr
							break
						}
					}
				}
			}
			plan = &LSort{Child: plan, Keys: keys}
		}
		if !star {
			plan = &LProject{Child: plan, Items: st.Items, schema: db.projectSchema(st.Items, plan.OutSchema())}
		}
		if st.Distinct {
			plan = &LDistinct{Child: plan}
			if len(st.OrderBy) > 0 {
				plan = &LSort{Child: plan, Keys: st.OrderBy}
			}
		}
	}
	if st.Limit >= 0 || st.Offset > 0 {
		n := st.Limit
		if n < 0 {
			n = 1<<62 - 1
		}
		plan = &LLimit{Child: plan, N: n, Offset: st.Offset}
	}
	return plan, nil
}

// projectSchema derives output column names for SELECT items.
func (db *DB) projectSchema(items []SelectItem, child []OutCol) []OutCol {
	var out []OutCol
	for _, it := range items {
		if it.Star {
			out = append(out, child...)
			continue
		}
		name := it.Alias
		if name == "" {
			if cr, ok := it.Expr.(*ColRef); ok {
				name = cr.Name
			} else {
				name = it.Expr.String()
			}
		}
		out = append(out, OutCol{Name: name})
	}
	return out
}

// flattenFrom walks the FROM tree collecting base relations and ON
// conditions. LEFT JOIN subtrees are planned structurally (they cannot be
// reordered) and returned as one composite relation.
func (db *DB) flattenFrom(ref *TableRef, hints *QueryHints) ([]planRel, []Expr, error) {
	switch {
	case ref.Join != nil && ref.Join.Left:
		return db.planLeftJoin(ref.Join, hints)
	case ref.Join != nil:
		lRels, lConds, err := db.flattenFrom(ref.Join.L, hints)
		if err != nil {
			return nil, nil, err
		}
		rRels, rConds, err := db.flattenFrom(ref.Join.R, hints)
		if err != nil {
			return nil, nil, err
		}
		rels := append(lRels, rRels...)
		conds := append(lConds, rConds...)
		if ref.Join.Cond != nil {
			conds = append(conds, conjuncts(ref.Join.Cond)...)
		}
		return rels, conds, nil
	case ref.Sub != nil:
		sub, err := db.planSelect(ref.Sub, hints)
		if err != nil {
			return nil, nil, err
		}
		alias := ref.Alias
		// Requalify the subquery's output columns under the alias.
		schema := make([]OutCol, len(sub.OutSchema()))
		for i, c := range sub.OutSchema() {
			schema[i] = OutCol{Table: alias, Name: c.Name, Type: c.Type}
		}
		sub = &aliasPlan{Child: sub, schema: schema}
		return []planRel{{alias: alias, plan: sub}}, nil, nil
	default:
		scan, err := db.newScan(ref.Table, ref.Alias)
		if err != nil {
			return nil, nil, err
		}
		return []planRel{{alias: ref.Alias, plan: scan}}, nil, nil
	}
}

// planLeftJoin plans `L LEFT JOIN R ON cond` as a composite relation. The
// ON condition must be a conjunction of equi-predicates between the two
// sides (the paper's workloads never need outer non-equi joins).
func (db *DB) planLeftJoin(j *JoinRef, hints *QueryHints) ([]planRel, []Expr, error) {
	buildSide := func(ref *TableRef) (Plan, error) {
		rels, conds, err := db.flattenFrom(ref, hints)
		if err != nil {
			return nil, err
		}
		plan, residual, err := db.buildJoinTree(rels, conds, hints)
		if err != nil {
			return nil, err
		}
		if len(residual) > 0 {
			plan = &LFilter{Child: plan, Conds: residual}
		}
		return plan, nil
	}
	lPlan, err := buildSide(j.L)
	if err != nil {
		return nil, nil, err
	}
	rPlan, err := buildSide(j.R)
	if err != nil {
		return nil, nil, err
	}
	join := &LJoin{L: lPlan, R: rPlan, LeftOuter: true}
	for _, c := range conjuncts(j.Cond) {
		b, ok := c.(*BinExpr)
		if !ok || b.Op != "=" {
			return nil, nil, fmt.Errorf("sqldb: LEFT JOIN requires equi ON conditions, got %s", c)
		}
		lSide := exprResolvesIn(b.L, lPlan.OutSchema()) && !exprResolvesIn(b.L, rPlan.OutSchema())
		rSide := exprResolvesIn(b.R, rPlan.OutSchema()) && !exprResolvesIn(b.R, lPlan.OutSchema())
		switch {
		case lSide && rSide:
			join.EquiL = append(join.EquiL, b.L)
			join.EquiR = append(join.EquiR, b.R)
		case exprResolvesIn(b.R, lPlan.OutSchema()) && exprResolvesIn(b.L, rPlan.OutSchema()):
			join.EquiL = append(join.EquiL, b.R)
			join.EquiR = append(join.EquiR, b.L)
		default:
			return nil, nil, fmt.Errorf("sqldb: cannot attribute LEFT JOIN condition %s to one side each", c)
		}
	}
	if len(join.EquiL) == 0 {
		return nil, nil, fmt.Errorf("sqldb: LEFT JOIN requires an ON condition")
	}
	db.mu.Lock()
	db.leftJoinSeq++
	alias := fmt.Sprintf("_lj%d", db.leftJoinSeq)
	db.mu.Unlock()
	return []planRel{{alias: alias, plan: join}}, nil, nil
}

// exprResolvesIn reports whether every column reference in e resolves
// against the schema.
func exprResolvesIn(e Expr, schema []OutCol) bool {
	var refs []*ColRef
	collectColRefs(e, &refs)
	if len(refs) == 0 {
		return false
	}
	for _, ref := range refs {
		found := false
		for _, c := range schema {
			if strings.EqualFold(c.Name, ref.Name) &&
				(ref.Table == "" || strings.EqualFold(c.Table, ref.Table)) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// aliasPlan renames its child's output columns (for FROM subqueries).
type aliasPlan struct {
	Child  Plan
	schema []OutCol
}

func (*aliasPlan) planNode()             {}
func (p *aliasPlan) OutSchema() []OutCol { return p.schema }

// newScan plans a base-table, view, or virtual-table access.
func (db *DB) newScan(table, alias string) (Plan, error) {
	if st := db.lookupSysTable(table); st != nil {
		return db.newSysScan(st, alias), nil
	}
	if v := db.lookupView(table); v != nil {
		sub, err := db.planSelect(v.Query, nil)
		if err != nil {
			return nil, fmt.Errorf("sqldb: expanding view %s: %w", table, err)
		}
		schema := make([]OutCol, len(sub.OutSchema()))
		for i, c := range sub.OutSchema() {
			schema[i] = OutCol{Table: alias, Name: c.Name, Type: c.Type}
		}
		return &aliasPlan{Child: sub, schema: schema}, nil
	}
	t := db.lookupTable(table)
	if t == nil {
		return nil, fmt.Errorf("sqldb: no table or view named %q", table)
	}
	schema := make([]OutCol, len(t.Schema))
	for i, c := range t.Schema {
		schema[i] = OutCol{Table: alias, Name: c.Name, Type: c.Type}
	}
	return &LScan{Table: t.Name, Alias: alias, schema: schema, EstRows: float64(t.NumRows())}, nil
}

// conjuncts splits an expression on AND.
func conjuncts(e Expr) []Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(*BinExpr); ok && b.Op == "and" {
		return append(conjuncts(b.L), conjuncts(b.R)...)
	}
	return []Expr{e}
}

// collectColRefs gathers every column reference in an expression.
func collectColRefs(e Expr, out *[]*ColRef) {
	switch t := e.(type) {
	case *ColRef:
		*out = append(*out, t)
	case *BinExpr:
		collectColRefs(t.L, out)
		collectColRefs(t.R, out)
	case *UnaryExpr:
		collectColRefs(t.E, out)
	case *FuncCall:
		for _, a := range t.Args {
			collectColRefs(a, out)
		}
	case *CaseExpr:
		for _, w := range t.Whens {
			collectColRefs(w.Cond, out)
			collectColRefs(w.Then, out)
		}
		if t.Else != nil {
			collectColRefs(t.Else, out)
		}
	case *InExpr:
		collectColRefs(t.E, out)
		for _, x := range t.List {
			collectColRefs(x, out)
		}
	case *BetweenExpr:
		collectColRefs(t.E, out)
		collectColRefs(t.Lo, out)
		collectColRefs(t.Hi, out)
	case *IsNullExpr:
		collectColRefs(t.E, out)
	}
}

// relsOf returns the set of relation aliases an expression touches, given
// the per-relation schemas. Unqualified names resolve to whichever relation
// has the column; ambiguity across relations is an error.
func relsOf(e Expr, rels []planRel) (map[string]bool, error) {
	var refs []*ColRef
	collectColRefs(e, &refs)
	out := map[string]bool{}
	for _, ref := range refs {
		matched := ""
		for _, rel := range rels {
			for _, c := range rel.plan.OutSchema() {
				if !strings.EqualFold(c.Name, ref.Name) {
					continue
				}
				// A qualifier must match either the relation's alias or the
				// schema column's own qualifier (composite relations such as
				// LEFT JOIN subtrees carry their members' qualifiers).
				if ref.Table != "" && !strings.EqualFold(ref.Table, rel.alias) &&
					!strings.EqualFold(ref.Table, c.Table) {
					continue
				}
				if matched != "" && !strings.EqualFold(matched, rel.alias) {
					return nil, fmt.Errorf("sqldb: ambiguous column %q", ref.String())
				}
				matched = rel.alias
			}
		}
		if matched == "" {
			return nil, fmt.Errorf("sqldb: unknown column %q", ref.String())
		}
		out[strings.ToLower(matched)] = true
	}
	return out, nil
}

// exprUDFs returns the registered UDF names appearing in the expression.
func (db *DB) exprUDFs(e Expr) []string {
	var out []string
	var walk func(Expr)
	walk = func(x Expr) {
		switch t := x.(type) {
		case *FuncCall:
			if db.lookupUDF(strings.ToLower(t.Name)) != nil {
				out = append(out, strings.ToLower(t.Name))
			}
			for _, a := range t.Args {
				walk(a)
			}
		case *BinExpr:
			walk(t.L)
			walk(t.R)
		case *UnaryExpr:
			walk(t.E)
		case *CaseExpr:
			for _, w := range t.Whens {
				walk(w.Cond)
				walk(w.Then)
			}
			if t.Else != nil {
				walk(t.Else)
			}
		case *InExpr:
			walk(t.E)
			for _, i := range t.List {
				walk(i)
			}
		case *BetweenExpr:
			walk(t.E)
			walk(t.Lo)
			walk(t.Hi)
		case *IsNullExpr:
			walk(t.E)
		}
	}
	walk(e)
	return out
}

// resolveSubqueries executes uncorrelated scalar subqueries and substitutes
// their values as literals, returning a rewritten statement.
func (db *DB) resolveSubqueries(st *SelectStmt, hints *QueryHints) (*SelectStmt, error) {
	rewrite := func(e Expr) (Expr, error) { return db.rewriteSubqueries(e, hints) }
	out := *st
	out.Items = append([]SelectItem(nil), st.Items...)
	// Copy OrderBy too: planSelect rewrites ordinal keys in place, and with
	// cached statements the original AST is shared across executions — the
	// rewrite must land on this private copy, not the shared backing array.
	out.OrderBy = append([]OrderItem(nil), st.OrderBy...)
	for i := range out.Items {
		if out.Items[i].Star {
			continue
		}
		e, err := rewrite(out.Items[i].Expr)
		if err != nil {
			return nil, err
		}
		out.Items[i].Expr = e
	}
	var err error
	if st.Where != nil {
		if out.Where, err = rewrite(st.Where); err != nil {
			return nil, err
		}
	}
	if st.Having != nil {
		if out.Having, err = rewrite(st.Having); err != nil {
			return nil, err
		}
	}
	return &out, nil
}

func (db *DB) rewriteSubqueries(e Expr, hints *QueryHints) (Expr, error) {
	switch t := e.(type) {
	case *SubqueryExpr:
		res, err := db.runSelect(context.Background(), t.Query, hints)
		if err != nil {
			return nil, fmt.Errorf("sqldb: scalar subquery: %w", err)
		}
		if len(res.Cols) != 1 {
			return nil, fmt.Errorf("sqldb: scalar subquery returns %d columns", len(res.Cols))
		}
		if res.NumRows() == 0 {
			return &Lit{Val: Null()}, nil
		}
		if res.NumRows() > 1 {
			return nil, fmt.Errorf("sqldb: scalar subquery returns %d rows", res.NumRows())
		}
		return &Lit{Val: res.Cols[0].Get(0)}, nil
	case *BinExpr:
		l, err := db.rewriteSubqueries(t.L, hints)
		if err != nil {
			return nil, err
		}
		r, err := db.rewriteSubqueries(t.R, hints)
		if err != nil {
			return nil, err
		}
		return &BinExpr{Op: t.Op, L: l, R: r}, nil
	case *UnaryExpr:
		sub, err := db.rewriteSubqueries(t.E, hints)
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: t.Op, E: sub}, nil
	case *FuncCall:
		out := &FuncCall{Name: t.Name, Distinct: t.Distinct, Star: t.Star}
		for _, a := range t.Args {
			ra, err := db.rewriteSubqueries(a, hints)
			if err != nil {
				return nil, err
			}
			out.Args = append(out.Args, ra)
		}
		return out, nil
	case *CaseExpr:
		out := &CaseExpr{}
		for _, w := range t.Whens {
			c, err := db.rewriteSubqueries(w.Cond, hints)
			if err != nil {
				return nil, err
			}
			th, err := db.rewriteSubqueries(w.Then, hints)
			if err != nil {
				return nil, err
			}
			out.Whens = append(out.Whens, WhenClause{Cond: c, Then: th})
		}
		if t.Else != nil {
			e2, err := db.rewriteSubqueries(t.Else, hints)
			if err != nil {
				return nil, err
			}
			out.Else = e2
		}
		return out, nil
	case *InExpr:
		sub, err := db.rewriteSubqueries(t.E, hints)
		if err != nil {
			return nil, err
		}
		out := &InExpr{E: sub, Not: t.Not}
		if t.Sub != nil {
			// Materialize the (uncorrelated) IN-subquery into a literal
			// list; the expression evaluator then probes it like any IN.
			res, err := db.runSelect(context.Background(), t.Sub, hints)
			if err != nil {
				return nil, fmt.Errorf("sqldb: IN subquery: %w", err)
			}
			if len(res.Cols) != 1 {
				return nil, fmt.Errorf("sqldb: IN subquery returns %d columns, want 1", len(res.Cols))
			}
			n := res.NumRows()
			for i := 0; i < n; i++ {
				out.List = append(out.List, &Lit{Val: res.Cols[0].Get(i)})
			}
			return out, nil
		}
		for _, x := range t.List {
			rx, err := db.rewriteSubqueries(x, hints)
			if err != nil {
				return nil, err
			}
			out.List = append(out.List, rx)
		}
		return out, nil
	case *BetweenExpr:
		sub, err := db.rewriteSubqueries(t.E, hints)
		if err != nil {
			return nil, err
		}
		lo, err := db.rewriteSubqueries(t.Lo, hints)
		if err != nil {
			return nil, err
		}
		hi, err := db.rewriteSubqueries(t.Hi, hints)
		if err != nil {
			return nil, err
		}
		return &BetweenExpr{E: sub, Lo: lo, Hi: hi, Not: t.Not}, nil
	case *IsNullExpr:
		sub, err := db.rewriteSubqueries(t.E, hints)
		if err != nil {
			return nil, err
		}
		return &IsNullExpr{E: sub, Not: t.Not}, nil
	default:
		return e, nil
	}
}
