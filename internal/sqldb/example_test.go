package sqldb_test

import (
	"fmt"

	"repro/internal/sqldb"
)

// The engine executes standard SQL against in-memory columnar tables.
func Example() {
	db := sqldb.New()
	db.Profile = sqldb.NewProfile()
	_, err := db.Exec(`
		CREATE TABLE sensor (device Int64, temp Float64);
		INSERT INTO sensor VALUES (1, 21.5), (1, 22.5), (2, 30.0);
	`)
	if err != nil {
		panic(err)
	}
	res, err := db.Query(`SELECT device, avg(temp) AS t FROM sensor GROUP BY device ORDER BY device`)
	if err != nil {
		panic(err)
	}
	for i := 0; i < res.NumRows(); i++ {
		fmt.Printf("device %s: %s\n", res.Cols[0].Get(i), res.Cols[1].Get(i))
	}
	// Output:
	// device 1: 22
	// device 2: 30
}

// Scalar UDFs extend the engine — the paper's nUDF mechanism.
func ExampleDB_RegisterUDF() {
	db := sqldb.New()
	db.Profile = sqldb.NewProfile()
	if _, err := db.Exec(`CREATE TABLE t (x Int64); INSERT INTO t VALUES (1), (2), (3)`); err != nil {
		panic(err)
	}
	db.RegisterUDF(&sqldb.ScalarUDF{
		Name:  "square",
		Arity: 1,
		Fn: func(args []sqldb.Datum) (sqldb.Datum, error) {
			v, _ := args[0].AsInt()
			return sqldb.Int(v * v), nil
		},
	})
	res, err := db.Query(`SELECT sum(square(x)) AS s FROM t`)
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Cols[0].Get(0))
	// Output: 14
}

// EXPLAIN returns the optimized plan as rows.
func ExampleDB_Exec_explain() {
	db := sqldb.New()
	db.Profile = sqldb.NewProfile()
	if _, err := db.Exec(`CREATE TABLE t (x Int64)`); err != nil {
		panic(err)
	}
	res, err := db.Exec(`EXPLAIN SELECT x FROM t WHERE x > 1`)
	if err != nil {
		panic(err)
	}
	for i := 0; i < res.NumRows(); i++ {
		fmt.Println(res.Cols[0].Get(i))
	}
	// Output:
	// Project 1 items
	//   Scan t as t (est 1 rows) filters=1: [(x > 1)]
}
