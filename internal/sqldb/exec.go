package sqldb

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faults"
	"repro/internal/obs"
)

// Profile accumulates per-operator execution statistics for one query (or a
// whole session when shared across queries). Fig. 10 of the paper is
// produced from these counters.
type Profile struct {
	mu       sync.Mutex
	Ops      map[string]*OpStats
	UDFCalls map[string]int
}

// OpStats is the time and row count attributed to one operator kind.
type OpStats struct {
	Calls int
	Rows  int
	Nanos int64
}

// NewProfile allocates an empty profile.
func NewProfile() *Profile {
	return &Profile{Ops: map[string]*OpStats{}, UDFCalls: map[string]int{}}
}

func (p *Profile) add(op string, rows int, d time.Duration) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	s := p.Ops[op]
	if s == nil {
		s = &OpStats{}
		p.Ops[op] = s
	}
	s.Calls++
	s.Rows += rows
	s.Nanos += d.Nanoseconds()
}

// Merge folds another profile into p.
func (p *Profile) Merge(o *Profile) {
	if p == nil || o == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	o.mu.Lock()
	defer o.mu.Unlock()
	for k, v := range o.Ops {
		s := p.Ops[k]
		if s == nil {
			s = &OpStats{}
			p.Ops[k] = s
		}
		s.Calls += v.Calls
		s.Rows += v.Rows
		s.Nanos += v.Nanos
	}
	for k, v := range o.UDFCalls {
		p.UDFCalls[k] += v
	}
}

// Reset clears all accumulated operator statistics and UDF call counts, so
// a long-lived session profile can be zeroed between queries.
func (p *Profile) Reset() {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.Ops = map[string]*OpStats{}
	p.UDFCalls = map[string]int{}
}

// String renders the profile sorted by time descending.
func (p *Profile) String() string {
	type row struct {
		op string
		s  *OpStats
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	rows := make([]row, 0, len(p.Ops))
	for k, v := range p.Ops {
		rows = append(rows, row{k, v})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].s.Nanos > rows[j].s.Nanos })
	var sb strings.Builder
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-12s calls=%-6d rows=%-10d time=%s\n",
			r.op, r.s.Calls, r.s.Rows, time.Duration(r.s.Nanos))
	}
	return sb.String()
}

// noteUDF records one UDF invocation.
func (p *Profile) noteUDF(name string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.UDFCalls[name]++
	p.mu.Unlock()
}

// Operator names used in profiles.
const (
	OpScan     = "Scan"
	OpFilter   = "Filter"
	OpJoin     = "Join"
	OpGroupBy  = "GroupBy"
	OpProject  = "Project"
	OpSort     = "Sort"
	OpDistinct = "Distinct"
	OpLimit    = "Limit"
	OpInsert   = "Insert"
	OpUpdate   = "Update"
	OpDelete   = "Delete"
)

// NodeStats is the per-plan-node actual-execution record EXPLAIN ANALYZE
// reports. Times are inclusive of children (Postgres-style actuals).
// Workers/Morsels/WorkerRows describe the node's morsel-driven fan-out;
// they stay zero when every operator of the node executed serially.
type NodeStats struct {
	Calls int
	Rows  int
	Nanos int64

	Workers    int
	Morsels    int
	WorkerRows []int
}

// ParSkew is the ratio of the busiest worker's row count to the ideal even
// share (1.0 = perfectly balanced), or 0 when the node ran serially.
func (ns *NodeStats) ParSkew() float64 {
	total, max := 0, 0
	for _, v := range ns.WorkerRows {
		total += v
		if v > max {
			max = v
		}
	}
	if total == 0 || ns.Workers == 0 {
		return 0
	}
	return float64(max) / (float64(total) / float64(ns.Workers))
}

// execCtx threads the per-query execution context through the plan tree:
// the session profile, the per-node stats collector (non-nil only under
// EXPLAIN ANALYZE), the parent trace span (non-nil only when the DB has a
// tracer attached), the query's parallelism degree, and the plan node
// being executed (set only while collecting per-node stats, so parallel
// operators can attribute their morsel counts). The common case — nodes
// and span both nil — costs a single branch per plan node on top of the
// uninstrumented executor.
//
// The lifecycle fields follow the same zero-cost discipline: ctx is nil
// unless the caller passed a cancellable context (checked once per plan
// node and at every morsel boundary), memUsed is nil unless a memory
// budget is armed, and faults is nil outside chaos tests.
type execCtx struct {
	prof  *Profile
	nodes map[Plan]*NodeStats
	span  *obs.Span
	par   int
	node  Plan

	ctx       context.Context
	memBudget int64
	memUsed   *atomic.Int64
	faults    *faults.Injector

	// acct is the statement's resource accounting, non-nil only when the
	// DB has a query history armed (see accounting.go).
	acct *queryAcct

	// stamp is the most recent clock reading taken at an operator boundary
	// (profAdd stores its end read here). The traced execPlan path opens and
	// closes operator spans from the stamp, so always-on tracing adds no
	// clock reads beyond the ones the baseline accounting already pays.
	// Written only on the statement's own goroutine.
	stamp time.Time
}

// execPlan evaluates a plan tree to a materialized result, recording
// per-node actuals and emitting operator spans when the context asks for
// them. It is also the executor's per-node lifecycle gate: the query
// context is checked before the node runs, and the node's materialized
// output is charged against the memory budget after it.
func (db *DB) execPlan(p Plan, ec *execCtx) (*Result, error) {
	if err := ec.check(); err != nil {
		return nil, err
	}
	if ec.nodes == nil && ec.span == nil {
		res, err := db.execPlanNode(p, ec)
		if err != nil {
			return nil, err
		}
		if err := ec.charge(res); err != nil {
			return nil, err
		}
		return res, nil
	}
	// Span timestamps chain through ec.stamp: every operator's profAdd
	// accounting already reads the clock at its node boundary, so the traced
	// path opens and closes spans from those readings instead of paying two
	// more reads per node. The stamp can trail the true node start by the
	// parent's inter-child bookkeeping — microseconds, acceptable for
	// operator spans.
	spStart := ec.stamp
	if spStart.IsZero() {
		spStart = time.Now()
		ec.stamp = spStart
	}
	sp := ec.span.StartChildAt(planNodeName(p), spStart)
	// Plan children evaluate sequentially (operator-internal parallelism
	// never re-enters execPlan), so the span/node fields can be swapped in
	// place instead of heap-copying the execCtx for every node.
	prevSpan, prevNode := ec.span, ec.node
	ec.span, ec.node = sp, p
	// Only the node-stats path pays for its own clock reads; a span-only
	// run (always-on tracing) reuses the chained stamps.
	var start time.Time
	if ec.nodes != nil {
		start = time.Now()
	}
	res, err := db.execPlanNode(p, ec)
	ec.span, ec.node = prevSpan, prevNode
	if err == nil {
		err = ec.charge(res)
	}
	if err == nil {
		sp.SetAttr("rows", res.NumRows())
		if ec.nodes != nil {
			ns := ec.nodes[p]
			if ns == nil {
				ns = &NodeStats{}
				ec.nodes[p] = ns
			}
			ns.Calls++
			ns.Rows += res.NumRows()
			ns.Nanos += time.Since(start).Nanoseconds()
		}
	}
	if !ec.stamp.After(spStart) {
		// The node had no accounting site (and no child that ran one): one
		// fresh read closes its span.
		ec.stamp = time.Now()
	}
	sp.FinishAt(ec.stamp)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// scanLabels caches "Scan <table>" / "SysScan <name>" strings: the label
// is rebuilt for every traced execution of every scan node, and the
// distinct-table population is small. A plain map beats sync.Map here —
// the m[a+b] read avoids materializing the key, while sync.Map would box
// the key string on every lookup.
var (
	scanLabelMu sync.RWMutex
	scanLabels  = map[string]string{}
)

func scanLabel(prefix, table string) string {
	scanLabelMu.RLock()
	l, ok := scanLabels[prefix+table]
	scanLabelMu.RUnlock()
	if ok {
		return l
	}
	l = prefix + table
	scanLabelMu.Lock()
	scanLabels[l] = l
	scanLabelMu.Unlock()
	return l
}

// planNodeName labels a plan node for trace spans.
func planNodeName(p Plan) string {
	switch t := p.(type) {
	case *LScan:
		return scanLabel("Scan ", t.Table)
	case *LSysScan:
		return scanLabel("SysScan ", t.SysTable.Name)
	case *LFilter:
		return "Filter"
	case *LJoin:
		return joinKind(t)
	case *LProject:
		return "Project"
	case *LAgg:
		return "Aggregate"
	case *LDistinct:
		return "Distinct"
	case *LSort:
		return "Sort"
	case *LLimit:
		return "Limit"
	case *aliasPlan:
		return "Alias"
	}
	return fmt.Sprintf("%T", p)
}

// execPlanNode dispatches one plan node.
func (db *DB) execPlanNode(p Plan, ec *execCtx) (*Result, error) {
	switch t := p.(type) {
	case *LScan:
		return db.execScan(t, ec)
	case *LSysScan:
		return db.execSysScan(t, ec)
	case *LFilter:
		child, err := db.execPlan(t.Child, ec)
		if err != nil {
			return nil, err
		}
		return db.execFilter(child, t.Conds, ec, OpFilter)
	case *LJoin:
		return db.execJoin(t, ec)
	case *LProject:
		return db.execProject(t, ec)
	case *LAgg:
		return db.execAgg(t, ec)
	case *LDistinct:
		child, err := db.execPlan(t.Child, ec)
		if err != nil {
			return nil, err
		}
		return db.execDistinct(child, ec)
	case *LSort:
		child, err := db.execPlan(t.Child, ec)
		if err != nil {
			return nil, err
		}
		return db.execSort(child, t.Keys, ec)
	case *LLimit:
		child, err := db.execPlan(t.Child, ec)
		if err != nil {
			return nil, err
		}
		return db.execLimit(child, t.N, t.Offset, ec)
	case *aliasPlan:
		child, err := db.execPlan(t.Child, ec)
		if err != nil {
			return nil, err
		}
		return &Result{Schema: t.schema, Cols: child.Cols}, nil
	}
	return nil, fmt.Errorf("sqldb: cannot execute plan node %T", p)
}

func (db *DB) execScan(s *LScan, ec *execCtx) (*Result, error) {
	t := db.lookupTable(s.Table)
	if t == nil {
		return nil, fmt.Errorf("sqldb: table %q disappeared during execution", s.Table)
	}
	start := time.Now()
	// Snapshot the column headers under the read lock: concurrent appends
	// then extend the table without the escaping Result observing torn
	// lengths (appends write at indices beyond every snapshot's length;
	// in-place UPDATEs still require external coordination).
	res := &Result{Schema: s.schema, Cols: t.SnapshotCols()}
	ec.profAdd(OpScan, res.NumRows(), start)
	if len(s.Filters) > 0 {
		return db.execFilter(res, s.Filters, ec, OpFilter)
	}
	return res, nil
}

// execFilter applies conjuncts, producing a compacted result. Conjuncts of
// the shape `column op literal` run through vectorized kernels streaming
// over the column vectors (their results intersected); remaining conjuncts
// — UDF calls, multi-column predicates — fall back to row-at-a-time
// evaluation over the surviving rows only, preserving the optimizer's
// expensive-predicate ordering among them.
func (db *DB) execFilter(in *Result, conds []Expr, ec *execCtx, opName string) (*Result, error) {
	start := time.Now()
	var vecs []vectorPred
	var generic []Expr
	for _, c := range conds {
		if vp := compileVectorPred(c, in.Schema); vp != nil {
			vecs = append(vecs, vp)
		} else {
			generic = append(generic, c)
		}
	}
	preds := make([]evalFn, len(generic))
	for i, c := range generic {
		f, err := db.compileExpr(c, in.Schema)
		if err != nil {
			return nil, err
		}
		preds[i] = ec.countUDFs(len(db.exprUDFs(c)), f)
	}
	n := in.NumRows()

	deg := ec.parDegreeFor(n)
	if deg > 1 && !db.exprsParallelSafe(generic) {
		deg = 1
	}
	// Fan the row range out as morsels; each morsel produces its
	// qualifying indices in ascending order, and concatenating the
	// per-morsel slices in morsel order reproduces the serial keep list
	// exactly. The serial case (deg 1) takes the same path: runMorsels
	// collapses to a single full-range call when no context is attached,
	// and to a morsel-by-morsel loop (one-morsel cancellation latency)
	// when one is.
	keeps := make([][]int, (n+morselRows-1)/morselRows)
	stats, err := db.runMorsels(ec, deg, n, func(_, lo, hi int) error {
		k, err := filterRange(in, vecs, preds, lo, hi)
		keeps[lo/morselRows] = k
		return err
	})
	if err != nil {
		return nil, err
	}
	db.notePar(ec, stats)
	total := 0
	for _, k := range keeps {
		total += len(k)
	}
	keep := make([]int, 0, total)
	for _, k := range keeps {
		keep = append(keep, k...)
	}
	out := &Result{Schema: in.Schema, Cols: make([]*Column, len(in.Cols))}
	for i, c := range in.Cols {
		out.Cols[i] = c.Gather(keep)
	}
	ec.profAdd(opName, n, start)
	return out, nil
}

// filterRange evaluates the compiled vectorized and generic predicates
// over rows [lo, hi), returning the qualifying indices in ascending order.
func filterRange(in *Result, vecs []vectorPred, preds []evalFn, lo, hi int) ([]int, error) {
	var keep []int
	if len(vecs) > 0 {
		keep = vecs[0](in, lo, hi, make([]int, 0, (hi-lo)/4+1))
		for _, vp := range vecs[1:] {
			if len(keep) == 0 {
				break
			}
			other := vp(in, lo, hi, make([]int, 0, len(keep)))
			keep = intersectSorted(keep, other)
		}
	} else {
		keep = make([]int, hi-lo)
		for i := range keep {
			keep[i] = lo + i
		}
	}
	if len(preds) > 0 {
		filtered := keep[:0]
	rows:
		for _, i := range keep {
			for _, pred := range preds {
				v, err := pred(in, i)
				if err != nil {
					return nil, err
				}
				b, ok := v.AsBool()
				if !ok || !b {
					continue rows
				}
			}
			filtered = append(filtered, i)
		}
		keep = filtered
	}
	return keep, nil
}

func (db *DB) execProject(p *LProject, ec *execCtx) (*Result, error) {
	var child *Result
	if p.Child != nil {
		var err error
		child, err = db.execPlan(p.Child, ec)
		if err != nil {
			return nil, err
		}
	} else {
		child = &Result{} // FROM-less: single conceptual row
	}
	start := time.Now()
	n := 1
	if p.Child != nil {
		n = child.NumRows()
	}
	out := &Result{}
	// Expand stars and compile items.
	type proj struct {
		fn   evalFn
		col  int  // >=0 for direct column pass-through
		expr Expr // source expression for computed items
	}
	var projs []proj
	for _, it := range p.Items {
		if it.Star {
			for ci := range child.Schema {
				out.Schema = append(out.Schema, child.Schema[ci])
				projs = append(projs, proj{col: ci})
			}
			continue
		}
		name := it.Alias
		if name == "" {
			if cr, ok := it.Expr.(*ColRef); ok {
				name = cr.Name
			} else {
				name = it.Expr.String()
			}
		}
		out.Schema = append(out.Schema, OutCol{Name: name})
		if cr, ok := it.Expr.(*ColRef); ok && p.Child != nil {
			if ci, err := child.ColIndex(cr.Table, cr.Name); err == nil {
				projs = append(projs, proj{col: ci})
				continue
			}
		}
		fn, err := db.compileExpr(it.Expr, child.Schema)
		if err != nil {
			return nil, err
		}
		fn = ec.countUDFs(len(db.exprUDFs(it.Expr)), fn)
		projs = append(projs, proj{fn: fn, col: -1, expr: it.Expr})
	}
	// Computed items are evaluated column-at-a-time into datum slices —
	// fanned out as row-range morsels when the input is large and every
	// referenced UDF is parallel-safe (this is where nUDF inference calls
	// spread across cores) — then appended through the serial
	// type-inference path so parallel and serial projections build
	// identical columns.
	deg := ec.parDegreeFor(n)
	if deg > 1 {
		var exprs []Expr
		for _, pr := range projs {
			if pr.col < 0 {
				exprs = append(exprs, pr.expr)
			}
		}
		if !db.exprsParallelSafe(exprs) {
			deg = 1
		}
	}
	for pi, pr := range projs {
		if pr.col >= 0 {
			// Zero-copy column pass-through.
			out.Cols = append(out.Cols, child.Cols[pr.col])
			out.Schema[pi].Type = child.Schema[pr.col].Type
			continue
		}
		data := make([]Datum, n)
		stats, err := db.runMorsels(ec, deg, n, func(_, lo, hi int) error {
			for i := lo; i < hi; i++ {
				v, err := pr.fn(child, i)
				if err != nil {
					return err
				}
				data[i] = v
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		db.notePar(ec, stats)
		col := &Column{Type: TNull}
		first := true
		for i := 0; i < n; i++ {
			v := data[i]
			if first && !v.IsNull() {
				col.Type = v.T
				first = false
				// backfill earlier nulls
				col2 := NewColumn(v.T)
				for j := 0; j < i; j++ {
					if err := col2.Append(Null()); err != nil {
						return nil, err
					}
				}
				col = col2
			}
			if err := col.Append(v); err != nil {
				return nil, err
			}
		}
		out.Cols = append(out.Cols, col)
		out.Schema[pi].Type = col.Type
	}
	ec.profAdd(OpProject, n, start)
	return out, nil
}

// execDistinct keeps the FIRST occurrence of each duplicate row, in input
// order. This is a documented contract (pinned by TestOrderingContracts):
// DISTINCT output order is the input order of first occurrences, so
// upstream operators must produce deterministic row order — which the
// parallel operators guarantee by concatenating morsel outputs in morsel
// order.
func (db *DB) execDistinct(in *Result, ec *execCtx) (*Result, error) {
	start := time.Now()
	n := in.NumRows()
	seen := make(map[string]struct{}, n)
	keep := make([]int, 0, n)
	buf := make([]byte, 0, 64)
	for i := 0; i < n; i++ {
		buf = buf[:0]
		for _, c := range in.Cols {
			buf = c.Get(i).AppendKey(buf)
		}
		if _, dup := seen[string(buf)]; dup {
			continue
		}
		seen[string(buf)] = struct{}{}
		keep = append(keep, i)
	}
	out := &Result{Schema: in.Schema, Cols: make([]*Column, len(in.Cols))}
	for i, c := range in.Cols {
		out.Cols[i] = c.Gather(keep)
	}
	ec.profAdd(OpDistinct, n, start)
	return out, nil
}

// execSort is a STABLE sort: rows comparing equal on every key keep their
// input order. Combined with the parallel operators' morsel-order output
// this makes ORDER BY (and any LIMIT above it) fully deterministic at any
// parallelism degree (pinned by TestOrderingContracts). The comparison
// loop itself stays serial; only key pre-evaluation fans out.
func (db *DB) execSort(in *Result, keys []OrderItem, ec *execCtx) (*Result, error) {
	start := time.Now()
	fns := make([]evalFn, len(keys))
	keyExprs := make([]Expr, len(keys))
	for i, k := range keys {
		f, err := db.compileExpr(k.Expr, in.Schema)
		if err != nil {
			return nil, err
		}
		fns[i] = ec.countUDFs(len(db.exprUDFs(k.Expr)), f)
		keyExprs[i] = k.Expr
	}
	n := in.NumRows()
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	deg := ec.parDegreeFor(n)
	if deg > 1 && !db.exprsParallelSafe(keyExprs) {
		deg = 1
	}
	// Pre-evaluate keys to avoid O(n log n) expression evaluations.
	keyVals := make([][]Datum, len(keys))
	for ki, f := range fns {
		f := f
		vals := make([]Datum, n)
		stats, err := db.runMorsels(ec, deg, n, func(_, lo, hi int) error {
			for i := lo; i < hi; i++ {
				v, err := f(in, i)
				if err != nil {
					return err
				}
				vals[i] = v
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		db.notePar(ec, stats)
		keyVals[ki] = vals
	}
	var sortErr error
	sort.SliceStable(idx, func(a, b int) bool {
		for ki := range keys {
			c, err := Compare(keyVals[ki][idx[a]], keyVals[ki][idx[b]])
			if err != nil {
				sortErr = err
				return false
			}
			if c != 0 {
				if keys[ki].Desc {
					return c > 0
				}
				return c < 0
			}
		}
		return false
	})
	if sortErr != nil {
		return nil, sortErr
	}
	out := &Result{Schema: in.Schema, Cols: make([]*Column, len(in.Cols))}
	for i, c := range in.Cols {
		out.Cols[i] = c.Gather(idx)
	}
	ec.profAdd(OpSort, n, start)
	return out, nil
}

// execLimit slices rows [offset, offset+limit) of the input IN INPUT
// ORDER. Like Distinct it relies on deterministic upstream order (pinned
// by TestOrderingContracts); the parallel operators provide it by
// concatenating morsel outputs in morsel order.
func (db *DB) execLimit(in *Result, limit, offset int, ec *execCtx) (*Result, error) {
	start := time.Now()
	n := in.NumRows()
	lo := offset
	if lo > n {
		lo = n
	}
	hi := lo + limit
	if hi > n || hi < 0 {
		hi = n
	}
	idx := make([]int, 0, hi-lo)
	for i := lo; i < hi; i++ {
		idx = append(idx, i)
	}
	out := &Result{Schema: in.Schema, Cols: make([]*Column, len(in.Cols))}
	for i, c := range in.Cols {
		out.Cols[i] = c.Gather(idx)
	}
	ec.profAdd(OpLimit, n, start)
	return out, nil
}
