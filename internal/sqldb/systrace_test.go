package sqldb

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// tracedDB builds a small DB with history + a keep-everything trace store
// armed, so every statement leaves a retained span tree.
func tracedDB(t *testing.T) *DB {
	t.Helper()
	db := New()
	db.History = obs.NewQueryHistory(64)
	db.Traces = obs.NewTraceStore(obs.TraceStoreConfig{Seed: 1, SlowThreshold: -1, SampleEvery: 1})
	db.EnableSysCatalog()
	mustExecSQL(t, db, `CREATE TABLE kv (k INT, v TEXT)`)
	mustExecSQL(t, db, `INSERT INTO kv VALUES (1, 'a'), (2, 'b'), (3, 'c')`)
	return db
}

func mustExecSQL(t *testing.T, db *DB, sql string) *Result {
	t.Helper()
	res, err := db.Exec(sql)
	if err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	return res
}

func TestSysTracesAndSpansAnswerSQL(t *testing.T) {
	db := tracedDB(t)
	mustExecSQL(t, db, `SELECT k, v FROM kv WHERE k > 1`)

	tr := mustExecSQL(t, db, `SELECT trace_id, reason, spans FROM sys.traces`)
	if tr.NumRows() < 3 {
		t.Fatalf("sys.traces rows = %d, want >= 3 (DDL + insert + select)", tr.NumRows())
	}
	for i := 0; i < tr.NumRows(); i++ {
		if tr.Cols[1].Get(i).S != "sampled" {
			t.Fatalf("reason = %q, want sampled with SampleEvery=1", tr.Cols[1].Get(i).S)
		}
		if n, _ := tr.Cols[2].Get(i).AsInt(); n < 1 {
			t.Fatal("retained trace with no spans")
		}
	}

	// The SELECT's trace must carry the statement span plus per-operator
	// children (the executor hangs Scan/Filter/Project spans under it).
	sp := mustExecSQL(t, db, `SELECT s.name, s.parent_id
FROM sys.spans s, sys.traces t
WHERE s.trace_id = t.trace_id AND t.trace_id <> ''
ORDER BY s.span_id`)
	names := map[string]bool{}
	for i := 0; i < sp.NumRows(); i++ {
		names[sp.Cols[0].Get(i).S] = true
	}
	for _, want := range []string{"query", "Scan kv", "Project"} {
		if !names[want] {
			t.Fatalf("span %q missing; got %v", want, names)
		}
	}
}

func TestTraceIDJoinsQueriesToSpans(t *testing.T) {
	db := tracedDB(t)
	mustExecSQL(t, db, `SELECT count(*) c FROM kv`)

	// Every history record's trace_id must resolve to a retained trace,
	// and the join must reach that trace's span rows. History stores the
	// re-rendered statement, so match its canonical form.
	j := mustExecSQL(t, db, `SELECT q.sql, s.name
FROM sys.queries q, sys.spans s
WHERE q.trace_id = s.trace_id AND s.span_id = 1 AND q.sql = 'SELECT count(*) AS c FROM kv'`)
	if j.NumRows() != 1 {
		t.Fatalf("join rows = %d, want exactly 1 root span for the count query", j.NumRows())
	}
	if root := j.Cols[1].Get(0).S; root != "query" {
		t.Fatalf("root span name = %q, want query", root)
	}

	// sys.queries must expose a non-empty trace_id for every statement
	// (SampleEvery=1 keeps them all).
	q := mustExecSQL(t, db, `SELECT count(*) c FROM sys.queries WHERE trace_id = ''`)
	if n, _ := q.Cols[0].Get(0).AsInt(); n != 0 {
		t.Fatalf("%d history records without a trace_id under keep-all sampling", n)
	}
}

func TestDroppedTraceLeavesNoRecordID(t *testing.T) {
	db := New()
	db.History = obs.NewQueryHistory(64)
	// Sampling off, slow criterion off: every clean statement's trace is
	// dropped, so history records must not carry dangling IDs.
	db.Traces = obs.NewTraceStore(obs.TraceStoreConfig{Seed: 1, SlowThreshold: -1, SampleEvery: -1})
	db.EnableSysCatalog()
	mustExecSQL(t, db, `CREATE TABLE t1 (a INT)`)
	mustExecSQL(t, db, `SELECT a FROM t1`)
	q := mustExecSQL(t, db, `SELECT count(*) c FROM sys.queries WHERE trace_id <> ''`)
	if n, _ := q.Cols[0].Get(0).AsInt(); n != 0 {
		t.Fatalf("%d history records carry IDs of dropped traces", n)
	}
	if db.Traces.Len() != 0 {
		t.Fatalf("store retained %d traces with sampling fully off", db.Traces.Len())
	}
}

func TestSlowLogCarriesTraceID(t *testing.T) {
	db := tracedDB(t)
	var slow bytes.Buffer
	db.History.SetSlowThreshold(time.Nanosecond)
	db.History.SetSlowLog(&slow)
	mustExecSQL(t, db, `SELECT v FROM kv WHERE k = 2`)
	line := strings.TrimSpace(strings.Split(slow.String(), "\n")[0])
	var rec map[string]any
	if err := json.Unmarshal([]byte(line), &rec); err != nil {
		t.Fatalf("slow-log line is not JSON: %v (%q)", err, line)
	}
	id, _ := rec["trace_id"].(string)
	if id == "" {
		t.Fatalf("slow-log record has no trace_id: %q", line)
	}
	if _, ok := db.Traces.Get(id); !ok {
		t.Fatalf("slow-log trace_id %q is not retrievable from the store", id)
	}
}

func TestTracedErrorStatementRetainedWithErrorReason(t *testing.T) {
	db := tracedDB(t)
	// Force drops of clean traces so only the error criterion can retain.
	db.Traces = obs.NewTraceStore(obs.TraceStoreConfig{Seed: 1, SlowThreshold: -1, SampleEvery: -1})
	if _, err := db.Exec(`SELECT nope FROM kv`); err == nil {
		t.Fatal("expected an error for an unknown column")
	}
	if db.Traces.Len() != 1 {
		t.Fatalf("store retained %d traces, want 1 (the failed statement)", db.Traces.Len())
	}
	st := db.Traces.Snapshot()[0]
	if st.Reason != "error" {
		t.Fatalf("reason = %q, want error", st.Reason)
	}
	if !strings.Contains(st.Spans[0].Attrs, "err=") {
		t.Fatalf("root span attrs %q lack the error class", st.Spans[0].Attrs)
	}
}

// TestSysSpansScanRacesQueryWriters runs sys.spans scans through SQL while
// other goroutines execute traced statements — the frozen-row contract
// must hold under -race.
func TestSysSpansScanRacesQueryWriters(t *testing.T) {
	db := tracedDB(t)
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if _, err := db.ExecContext(context.Background(), `SELECT k, v FROM kv WHERE k <= 2`); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	for scans := 0; scans < 30; scans++ {
		res, err := db.ExecContext(context.Background(), `SELECT count(*) c FROM sys.spans WHERE name <> ''`)
		if err != nil {
			t.Fatal(err)
		}
		if n, _ := res.Cols[0].Get(0).AsInt(); n < 0 {
			t.Fatal("negative span count")
		}
	}
	wg.Wait()
}
