package sqldb

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"strings"
)

// Snapshot persistence: the paper deploys the database on edge devices that
// collect real-time sensor data; a production embedded engine needs a way
// to persist and restore its state across restarts. The snapshot format is
// a simple column-serialized binary image of all base tables and view
// definitions (UDFs, being native code, re-register at startup).

const snapshotMagic = "SQLDBSN1"

type snapWriter struct {
	w   *bufio.Writer
	err error
}

func (sw *snapWriter) u8(v uint8) {
	if sw.err == nil {
		sw.err = sw.w.WriteByte(v)
	}
}

func (sw *snapWriter) u64(v uint64) {
	if sw.err != nil {
		return
	}
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	_, sw.err = sw.w.Write(b[:])
}

func (sw *snapWriter) str(s string) {
	sw.u64(uint64(len(s)))
	if sw.err == nil {
		_, sw.err = sw.w.WriteString(s)
	}
}

func (sw *snapWriter) bytes(b []byte) {
	sw.u64(uint64(len(b)))
	if sw.err == nil {
		_, sw.err = sw.w.Write(b)
	}
}

type snapReader struct {
	r   *bufio.Reader
	err error
}

func (sr *snapReader) u8() uint8 {
	if sr.err != nil {
		return 0
	}
	b, err := sr.r.ReadByte()
	sr.err = err
	return b
}

func (sr *snapReader) u64() uint64 {
	if sr.err != nil {
		return 0
	}
	var b [8]byte
	_, sr.err = io.ReadFull(sr.r, b[:])
	return binary.LittleEndian.Uint64(b[:])
}

func (sr *snapReader) str() string {
	n := sr.u64()
	if sr.err != nil {
		return ""
	}
	b := make([]byte, n)
	_, sr.err = io.ReadFull(sr.r, b)
	return string(b)
}

func (sr *snapReader) bytes() []byte {
	n := sr.u64()
	if sr.err != nil {
		return nil
	}
	b := make([]byte, n)
	_, sr.err = io.ReadFull(sr.r, b)
	return b
}

// Snapshot writes the full database state (tables + views) to w.
func (db *DB) Snapshot(w io.Writer) error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	sw := &snapWriter{w: bufio.NewWriter(w)}
	if _, err := sw.w.WriteString(snapshotMagic); err != nil {
		return err
	}
	sw.u64(uint64(len(db.tables)))
	for _, t := range db.tables {
		snapshotTable(sw, t)
	}
	sw.u64(uint64(len(db.views)))
	for _, v := range db.views {
		sw.str(v.Name)
		sw.str(v.Query.String())
	}
	if sw.err != nil {
		return sw.err
	}
	return sw.w.Flush()
}

func snapshotTable(sw *snapWriter, t *Table) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	sw.str(t.Name)
	sw.u64(uint64(len(t.Schema)))
	for _, c := range t.Schema {
		sw.str(c.Name)
		sw.u8(uint8(c.Type))
	}
	rows := 0
	if len(t.Cols) > 0 {
		rows = t.Cols[0].Len()
	}
	sw.u64(uint64(rows))
	for _, col := range t.Cols {
		snapshotColumn(sw, col, rows)
	}
}

func snapshotColumn(sw *snapWriter, c *Column, rows int) {
	// null bitmap flag
	if c.Nulls != nil {
		sw.u8(1)
		for i := 0; i < rows; i++ {
			if c.Nulls[i] {
				sw.u8(1)
			} else {
				sw.u8(0)
			}
		}
	} else {
		sw.u8(0)
	}
	switch c.Type {
	case TInt:
		for _, v := range c.Ints {
			sw.u64(uint64(v))
		}
	case TFloat:
		for _, v := range c.Floats {
			sw.u64(math.Float64bits(v))
		}
	case TString:
		for _, v := range c.Strs {
			sw.str(v)
		}
	case TBool:
		for _, v := range c.Bools {
			if v {
				sw.u8(1)
			} else {
				sw.u8(0)
			}
		}
	case TBlob:
		for _, v := range c.Blobs {
			sw.bytes(v)
		}
	}
}

// Restore reads a snapshot previously written by Snapshot into an empty
// database; it fails if the database already contains tables.
func (db *DB) Restore(r io.Reader) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if len(db.tables) > 0 || len(db.views) > 0 {
		return fmt.Errorf("sqldb: Restore requires an empty database")
	}
	sr := &snapReader{r: bufio.NewReader(r)}
	magic := make([]byte, len(snapshotMagic))
	if _, err := io.ReadFull(sr.r, magic); err != nil {
		return fmt.Errorf("sqldb: reading snapshot magic: %w", err)
	}
	if string(magic) != snapshotMagic {
		return fmt.Errorf("sqldb: bad snapshot magic %q", magic)
	}
	nTables := sr.u64()
	for i := uint64(0); i < nTables && sr.err == nil; i++ {
		t, err := restoreTable(sr)
		if err != nil {
			return err
		}
		db.tables[strings.ToLower(t.Name)] = t
	}
	nViews := sr.u64()
	for i := uint64(0); i < nViews && sr.err == nil; i++ {
		name := sr.str()
		sql := sr.str()
		if sr.err != nil {
			break
		}
		st, err := Parse(sql)
		if err != nil {
			return fmt.Errorf("sqldb: restoring view %s: %w", name, err)
		}
		sel, ok := st.(*SelectStmt)
		if !ok {
			return fmt.Errorf("sqldb: view %s snapshot is not a SELECT", name)
		}
		db.views[strings.ToLower(name)] = &View{Name: name, Query: sel}
	}
	return sr.err
}

func restoreTable(sr *snapReader) (*Table, error) {
	name := sr.str()
	nCols := sr.u64()
	schema := make(Schema, 0, nCols)
	for i := uint64(0); i < nCols && sr.err == nil; i++ {
		cn := sr.str()
		ct := Type(sr.u8())
		schema = append(schema, ColumnDef{Name: cn, Type: ct})
	}
	if sr.err != nil {
		return nil, sr.err
	}
	t := NewTable(name, schema)
	rows := int(sr.u64())
	for ci := range schema {
		col := t.Cols[ci]
		hasNulls := sr.u8() == 1
		if hasNulls {
			col.Nulls = make([]bool, rows)
			for i := 0; i < rows; i++ {
				col.Nulls[i] = sr.u8() == 1
			}
		}
		switch col.Type {
		case TInt:
			col.Ints = make([]int64, rows)
			for i := 0; i < rows; i++ {
				col.Ints[i] = int64(sr.u64())
			}
		case TFloat:
			col.Floats = make([]float64, rows)
			for i := 0; i < rows; i++ {
				col.Floats[i] = math.Float64frombits(sr.u64())
			}
		case TString:
			col.Strs = make([]string, rows)
			for i := 0; i < rows; i++ {
				col.Strs[i] = sr.str()
			}
		case TBool:
			col.Bools = make([]bool, rows)
			for i := 0; i < rows; i++ {
				col.Bools[i] = sr.u8() == 1
			}
		case TBlob:
			col.Blobs = make([][]byte, rows)
			for i := 0; i < rows; i++ {
				col.Blobs[i] = sr.bytes()
			}
		default:
			return nil, fmt.Errorf("sqldb: snapshot column %s has unknown type %d", schema[ci].Name, col.Type)
		}
		if sr.err != nil {
			return nil, sr.err
		}
	}
	return t, nil
}

// SaveFile snapshots the database to a file.
func (db *DB) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := db.Snapshot(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile restores a database from a snapshot file.
func LoadFile(path string) (*DB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	db := New()
	db.Profile = NewProfile()
	if err := db.Restore(f); err != nil {
		return nil, err
	}
	return db, nil
}
