package sqldb

import (
	"bytes"
	"path/filepath"
	"testing"
)

func TestSnapshotRoundTrip(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, `CREATE VIEW engs AS SELECT id, name FROM emp WHERE dept = 'eng'`)
	blob := NewColumn(TBlob)
	tbl, err := db.CreateTable("media", Schema{{Name: "id", Type: TInt}, {Name: "data", Type: TBlob}})
	if err != nil {
		t.Fatal(err)
	}
	_ = blob
	if err := tbl.AppendRow([]Datum{Int(1), Blob([]byte{9, 8, 7})}); err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, `INSERT INTO emp (id, name) VALUES (42, 'nullish')`) // NULL columns

	var buf bytes.Buffer
	if err := db.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	db2 := New()
	db2.Profile = NewProfile()
	if err := db2.Restore(&buf); err != nil {
		t.Fatal(err)
	}
	// Same data.
	a := mustExec(t, db, `SELECT count(*) c, sum(salary) s FROM emp`)
	b := mustExec(t, db2, `SELECT count(*) c, sum(salary) s FROM emp`)
	if a.Cols[0].Get(0).I != b.Cols[0].Get(0).I || a.Cols[1].Get(0).F != b.Cols[1].Get(0).F {
		t.Fatalf("restored emp differs: %v vs %v", a.GetRow(0), b.GetRow(0))
	}
	// NULLs preserved.
	r := mustExec(t, db2, `SELECT count(*) c FROM emp WHERE salary IS NULL`)
	if r.Cols[0].Get(0).I != 1 {
		t.Fatalf("restored NULLs: %v", r.Cols[0].Get(0))
	}
	// Blobs preserved.
	r = mustExec(t, db2, `SELECT length(data) n FROM media`)
	if r.Cols[0].Get(0).I != 3 {
		t.Fatalf("restored blob: %v", r.Cols[0].Get(0))
	}
	// Views preserved and functional.
	r = mustExec(t, db2, `SELECT count(*) c FROM engs`)
	if r.Cols[0].Get(0).I != 2 {
		t.Fatalf("restored view: %v", r.Cols[0].Get(0))
	}
}

func TestRestoreRequiresEmptyDB(t *testing.T) {
	db := newTestDB(t)
	var buf bytes.Buffer
	if err := db.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if err := db.Restore(&buf); err == nil {
		t.Fatal("restore into non-empty DB must fail")
	}
}

func TestRestoreBadMagic(t *testing.T) {
	db := New()
	if err := db.Restore(bytes.NewReader([]byte("NOTASNAP"))); err == nil {
		t.Fatal("bad magic must fail")
	}
}

func TestRestoreTruncated(t *testing.T) {
	db := newTestDB(t)
	var buf bytes.Buffer
	if err := db.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	half := buf.Bytes()[:buf.Len()/2]
	db2 := New()
	if err := db2.Restore(bytes.NewReader(half)); err == nil {
		t.Fatal("truncated snapshot must fail")
	}
}

func TestSaveLoadFile(t *testing.T) {
	db := newTestDB(t)
	path := filepath.Join(t.TempDir(), "snap.db")
	if err := db.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	db2, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	r := mustExec(t, db2, `SELECT count(*) c FROM emp`)
	if r.Cols[0].Get(0).I != 5 {
		t.Fatalf("loaded rows: %v", r.Cols[0].Get(0))
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.db")); err == nil {
		t.Fatal("missing file must fail")
	}
}

func TestExplainStatement(t *testing.T) {
	db := newTestDB(t)
	res := mustExec(t, db, `EXPLAIN SELECT name FROM emp WHERE salary > 50 ORDER BY name`)
	if res.NumRows() < 2 {
		t.Fatalf("explain rows = %d", res.NumRows())
	}
	joined := ""
	for i := 0; i < res.NumRows(); i++ {
		joined += res.Cols[0].Get(i).S + "\n"
	}
	for _, want := range []string{"Scan emp", "Sort", "Project"} {
		if !containsSub(joined, want) {
			t.Fatalf("explain missing %q:\n%s", want, joined)
		}
	}
}

func containsSub(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
