package sqldb

import (
	"fmt"
	"testing"
	"testing/quick"
)

// randDB builds a table of pseudo-random rows for equivalence properties.
func randDB(t *testing.T, seed uint8, rows int) *DB {
	t.Helper()
	db := New()
	db.Profile = NewProfile()
	mustExec(t, db, `CREATE TABLE r (k Int64, g Int64, v Float64, s String)`)
	tbl := db.GetTable("r")
	state := uint64(seed)*2654435761 + 1
	next := func(n int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int(state>>33) % n
	}
	for i := 0; i < rows; i++ {
		if err := tbl.AppendRow([]Datum{
			Int(int64(next(8))),
			Int(int64(next(4))),
			Float(float64(next(100)) / 10),
			Str(fmt.Sprintf("s%d", next(5))),
		}); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// Property: conjunct order does not change WHERE results.
func TestAndCommutativityProperty(t *testing.T) {
	f := func(seed uint8) bool {
		db := randDB(t, seed, 60)
		a, err := db.Query(`SELECT count(*) c FROM r WHERE k > 2 AND v < 7 AND g = 1`)
		if err != nil {
			return false
		}
		b, err := db.Query(`SELECT count(*) c FROM r WHERE g = 1 AND k > 2 AND v < 7`)
		if err != nil {
			return false
		}
		return a.Cols[0].Get(0).I == b.Cols[0].Get(0).I
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: symmetric hash join and standard hash join return the same
// multiset of rows.
func TestSymmetricJoinEquivalenceProperty(t *testing.T) {
	f := func(seed uint8) bool {
		db := randDB(t, seed, 40)
		mustExec(t, db, `CREATE TABLE l (k Int64, w Float64)`)
		tbl := db.GetTable("l")
		for i := 0; i < 25; i++ {
			if err := tbl.AppendRow([]Datum{Int(int64((i + int(seed)) % 8)), Float(float64(i))}); err != nil {
				return false
			}
		}
		// A dummy UDF makes the join condition eligible for rule 3.
		db.RegisterUDF(&ScalarUDF{
			Name: "nudf_id", Arity: 1,
			Fn:   func(args []Datum) (Datum, error) { return args[0], nil },
			Cost: 1,
		})
		q := `SELECT sum(r.v) sv, sum(l.w) sw, count(*) c FROM r, l WHERE nudf_id(r.k) = l.k`
		std, err := db.ExecHinted(q, nil)
		if err != nil {
			return false
		}
		sym, err := db.ExecHinted(q, &QueryHints{SymmetricJoin: true})
		if err != nil {
			return false
		}
		// Row multiset equality: exact count, sums within float-summation
		// reordering tolerance.
		for i := range std.Cols {
			a, _ := std.Cols[i].Get(0).AsFloat()
			b, _ := sym.Cols[i].Get(0).AsFloat()
			diff := a - b
			if diff < 0 {
				diff = -diff
			}
			if diff > 1e-6 {
				return false
			}
		}
		c1, _ := std.Cols[2].Get(0).AsInt()
		c2, _ := sym.Cols[2].Get(0).AsInt()
		return c1 == c2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// Property: DISTINCT is idempotent and never increases cardinality.
func TestDistinctIdempotentProperty(t *testing.T) {
	f := func(seed uint8) bool {
		db := randDB(t, seed, 50)
		all, err := db.Query(`SELECT g, s FROM r`)
		if err != nil {
			return false
		}
		d1, err := db.Query(`SELECT DISTINCT g, s FROM r`)
		if err != nil {
			return false
		}
		if d1.NumRows() > all.NumRows() {
			return false
		}
		// Distinct over an already-distinct projection must be stable.
		mustExec(t, db, `CREATE TABLE d AS SELECT DISTINCT g, s FROM r`)
		d2, err := db.Query(`SELECT DISTINCT g, s FROM d`)
		if err != nil {
			return false
		}
		return d1.NumRows() == d2.NumRows()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// Property: grouped sums equal the global sum (aggregation partition law).
func TestGroupPartitionProperty(t *testing.T) {
	f := func(seed uint8) bool {
		db := randDB(t, seed, 70)
		grouped, err := db.Query(`SELECT sum(v) s FROM (SELECT g, sum(v) AS v FROM r GROUP BY g) sub`)
		if err != nil {
			return false
		}
		global, err := db.Query(`SELECT sum(v) s FROM r`)
		if err != nil {
			return false
		}
		gv, _ := grouped.Cols[0].Get(0).AsFloat()
		tv, _ := global.Cols[0].Get(0).AsFloat()
		diff := gv - tv
		if diff < 0 {
			diff = -diff
		}
		return diff < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: a filter then count equals counting with the predicate inline.
func TestFilterCountEquivalenceProperty(t *testing.T) {
	f := func(seed uint8, th uint8) bool {
		db := randDB(t, seed, 50)
		threshold := float64(th%100) / 10
		lit := Float(threshold).String()
		a, err := db.Query(`SELECT count(*) c FROM r WHERE v > ` + lit)
		if err != nil {
			return false
		}
		b, err := db.Query(`SELECT sum(if(v > ` + lit + `, 1, 0)) c FROM r`)
		if err != nil {
			return false
		}
		av, _ := a.Cols[0].Get(0).AsInt()
		bv, _ := b.Cols[0].Get(0).AsInt()
		return av == bv
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: join-order hints never change the result of an inner join.
func TestJoinOrderInvarianceProperty(t *testing.T) {
	f := func(seed uint8) bool {
		db := randDB(t, seed, 40)
		mustExec(t, db, `CREATE TABLE m (g Int64, label String)`)
		tbl := db.GetTable("m")
		for i := 0; i < 4; i++ {
			if err := tbl.AppendRow([]Datum{Int(int64(i)), Str(fmt.Sprintf("L%d", i))}); err != nil {
				return false
			}
		}
		q := `SELECT count(*) c, sum(r.v) s FROM r, m WHERE r.g = m.g`
		a, err := db.ExecHinted(q, nil)
		if err != nil {
			return false
		}
		b, err := db.ExecHinted(q, &QueryHints{JoinOrder: []string{"m", "r"}})
		if err != nil {
			return false
		}
		if !Equal(a.Cols[0].Get(0), b.Cols[0].Get(0)) {
			return false
		}
		// Sum compared with reordering tolerance (join order permutes the
		// float summation sequence).
		av, _ := a.Cols[1].Get(0).AsFloat()
		bv, _ := b.Cols[1].Get(0).AsFloat()
		diff := av - bv
		if diff < 0 {
			diff = -diff
		}
		return diff < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
