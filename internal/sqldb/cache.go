package sqldb

// Statement + plan caching.
//
// Two LRUs sit in front of the lex/parse/optimize pipeline:
//
//   - the statement cache maps normalized raw SQL text to its parsed AST,
//     so a repeated query skips the lexer and parser entirely;
//   - the plan cache maps the canonical rendering of a SELECT
//     (SelectStmt.String(), so textually-different but semantically
//     identical queries share an entry) to an optimized plan plus the
//     dependency set it was planned against.
//
// Invalidation contract: every cached plan records, for each table or view
// the statement references (including inside scalar/IN subqueries and view
// definitions), the object's identity and — for tables — its write-version
// counter. A hit is only served when every dependency still resolves to
// the same object at the same version; DDL (DROP/CREATE), INSERT, UPDATE,
// DELETE, and TRUNCATE all advance a table's version, so any of them
// invalidates dependent plans on their next lookup. This is required for
// correctness (the planner folds uncorrelated subqueries into literals at
// plan time) and keeps cardinality estimates fresh for free.
//
// Plans are cached only for hint-free, single-branch SELECTs: DL2SQL-OP
// passes per-query optimizer hints, and a hinted plan must not be served
// to an unhinted query (or vice versa). Cached plans are immutable —
// execution compiles expressions per run and keeps all per-run state in
// execCtx — so one plan can serve concurrent executions; `?` parameters
// are bound by copy-on-write substitution into a private copy of the plan
// (see Prepared).

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/cache"
	"repro/internal/obs"
	"repro/internal/qerr"
)

// planEntry is one plan-cache value: the optimized plan and the catalog
// state it assumed.
type planEntry struct {
	plan Plan
	deps []planDep
}

// planDep pins one referenced relation: a base table at a specific write
// version, or a view by identity (views are replaced wholesale, so pointer
// equality suffices; the tables under the view are tracked as their own
// deps).
type planDep struct {
	name    string
	table   *Table
	view    *View
	version int64
}

// EnableCache activates the prepared-statement and plan caches, each
// bounded to capacity entries. capacity <= 0 disables caching (the
// default). When DB.Metrics is set, hit/miss/eviction counters appear
// under "sqldb.cache.stmt.*" and "sqldb.cache.plan.*", plus
// "sqldb.cache.plan.invalidations" for version-mismatch discards; set
// Metrics before calling EnableCache.
func (db *DB) EnableCache(capacity int) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if capacity <= 0 {
		db.stmtCache, db.planCache, db.planInvalidCtr = nil, nil, nil
		return
	}
	db.stmtCache = cache.New[string, Stmt](capacity)
	db.planCache = cache.New[string, *planEntry](capacity)
	db.stmtCache.Instrument(db.Metrics, obs.CachePrefixStmt)
	db.planCache.Instrument(db.Metrics, obs.CachePrefixPlan)
	db.planInvalidCtr = db.Metrics.Counter(obs.MetricPlanInvalidations)
}

// CacheEnabled reports whether EnableCache is active.
func (db *DB) CacheEnabled() bool {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.planCache != nil
}

// CacheStats reports the statement- and plan-cache counters.
// PlanInvalidations counts cached plans discarded because a dependency
// changed; such lookups first count as plan hits in Plan.Hits.
type CacheStats struct {
	Stmt              cache.Stats
	Plan              cache.Stats
	PlanInvalidations int64
}

// CacheStats snapshots the cache counters (all zeros when disabled).
func (db *DB) CacheStats() CacheStats {
	db.mu.RLock()
	sc, pc := db.stmtCache, db.planCache
	db.mu.RUnlock()
	return CacheStats{
		Stmt:              sc.Stats(),
		Plan:              pc.Stats(),
		PlanInvalidations: db.planInvalidations.Load(),
	}
}

// String renders the cache counters in the metrics-snapshot style.
func (s CacheStats) String() string {
	return fmt.Sprintf(
		"stmt  hits=%d misses=%d evictions=%d len=%d/%d\nplan  hits=%d misses=%d evictions=%d invalidations=%d len=%d/%d",
		s.Stmt.Hits, s.Stmt.Misses, s.Stmt.Evictions, s.Stmt.Len, s.Stmt.Cap,
		s.Plan.Hits, s.Plan.Misses, s.Plan.Evictions, s.PlanInvalidations, s.Plan.Len, s.Plan.Cap)
}

// normalizeSQL is the statement-cache key function: it collapses runs of
// whitespace outside string literals to one space and strips the trailing
// semicolon, so formatting differences share an entry while literal
// contents stay significant.
func normalizeSQL(s string) string {
	var sb strings.Builder
	sb.Grow(len(s))
	inStr := false
	space := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		if inStr {
			sb.WriteByte(c)
			if c == '\\' && i+1 < len(s) {
				i++
				sb.WriteByte(s[i])
				continue
			}
			if c == '\'' {
				inStr = false
			}
			continue
		}
		switch c {
		case '\'':
			if space && sb.Len() > 0 {
				sb.WriteByte(' ')
			}
			space = false
			inStr = true
			sb.WriteByte(c)
		case ' ', '\t', '\n', '\r':
			space = true
		default:
			if space && sb.Len() > 0 {
				sb.WriteByte(' ')
			}
			space = false
			sb.WriteByte(c)
		}
	}
	return strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(sb.String()), ";"))
}

// parseOne parses a single statement, consulting the statement cache.
// Cached ASTs are shared across executions; every post-parse transform in
// the engine is copy-on-write, so they stay immutable.
func (db *DB) parseOne(sql string) (Stmt, error) {
	db.mu.RLock()
	sc := db.stmtCache
	db.mu.RUnlock()
	if sc == nil {
		return Parse(sql)
	}
	key := normalizeSQL(sql)
	if st, ok := sc.Get(key); ok {
		return st, nil
	}
	st, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	if _, ok := st.(*SelectStmt); ok {
		// Only SELECTs are worth keeping: DDL/DML texts (e.g. dl2sql's
		// uniquely-named temp-table scripts) would churn the LRU.
		sc.Put(key, st)
	}
	return st, nil
}

// planSelectCached plans a SELECT, consulting the plan cache when the
// query is eligible (cache enabled, no hints, single branch). hit reports
// whether a validated cached plan was served; cacheable reports whether
// the cache was consulted at all (EXPLAIN renders this distinction).
//
// A fresh plan is NOT inserted into the cache here: the returned commit
// closure performs the insertion, and callers invoke it only after the
// plan executed successfully — so a query that is cancelled, times out,
// or fails mid-execution never populates the cache (commit is a no-op for
// hits and uncacheable statements).
func (db *DB) planSelectCached(sel *SelectStmt, hints *QueryHints) (plan Plan, hit, cacheable bool, commit func(), err error) {
	noCommit := func() {}
	db.mu.RLock()
	pc := db.planCache
	db.mu.RUnlock()
	if pc == nil || hints != nil || len(sel.UnionAll) > 0 {
		p, err := db.planSelect(sel, hints)
		return p, false, false, noCommit, err
	}
	key := sel.String()
	if e, ok := pc.Get(key); ok {
		if db.depsValid(e.deps) {
			return e.plan, true, true, noCommit, nil
		}
		pc.Delete(key)
		db.planInvalidations.Add(1)
		db.planInvalidCtr.Add(1)
	}
	// Collect dependencies from the original AST (before subquery
	// resolution rewrites them away). An unresolvable relation makes the
	// statement uncacheable rather than an error here — planning itself
	// reports the real failure.
	deps, depsOK := db.collectSelectDeps(sel)
	p, err := db.planSelect(sel, hints)
	if err != nil {
		return nil, false, true, noCommit, err
	}
	if !depsOK {
		// Unresolvable relations include sys.* virtual tables, whose rows
		// are volatile by design — the cache never serves these plans, so
		// they surface as "bypass" in EXPLAIN and the query history.
		return p, false, false, noCommit, nil
	}
	return p, false, true, func() { pc.Put(key, &planEntry{plan: p, deps: deps}) }, nil
}

// depsValid reports whether every recorded dependency still resolves to
// the same catalog object at the same version.
func (db *DB) depsValid(deps []planDep) bool {
	for _, d := range deps {
		if d.table != nil {
			t := db.lookupTable(d.name)
			if t != d.table || t.Version() != d.version {
				return false
			}
			continue
		}
		if db.lookupView(d.name) != d.view {
			return false
		}
	}
	return true
}

// collectSelectDeps walks a SELECT (FROM tree, all expressions, subqueries,
// view definitions, UNION ALL branches) and records every referenced table
// and view. ok is false when a relation cannot be resolved — such
// statements are not cached.
func (db *DB) collectSelectDeps(sel *SelectStmt) (deps []planDep, ok bool) {
	seen := map[string]bool{}
	ok = true
	var addRel func(name string)
	var walkSel func(s *SelectStmt)
	var walkExpr func(e Expr)
	var walkFrom func(r *TableRef)

	addRel = func(name string) {
		key := strings.ToLower(name)
		if seen[key] {
			return
		}
		seen[key] = true
		if v := db.lookupView(name); v != nil {
			deps = append(deps, planDep{name: name, view: v})
			walkSel(v.Query)
			return
		}
		if t := db.lookupTable(name); t != nil {
			deps = append(deps, planDep{name: name, table: t, version: t.Version()})
			return
		}
		ok = false
	}
	walkFrom = func(r *TableRef) {
		if r == nil {
			return
		}
		switch {
		case r.Join != nil:
			walkFrom(r.Join.L)
			walkFrom(r.Join.R)
			walkExpr(r.Join.Cond)
		case r.Sub != nil:
			walkSel(r.Sub)
		default:
			addRel(r.Table)
		}
	}
	walkExpr = func(e Expr) {
		switch t := e.(type) {
		case nil:
		case *BinExpr:
			walkExpr(t.L)
			walkExpr(t.R)
		case *UnaryExpr:
			walkExpr(t.E)
		case *FuncCall:
			for _, a := range t.Args {
				walkExpr(a)
			}
		case *CaseExpr:
			for _, w := range t.Whens {
				walkExpr(w.Cond)
				walkExpr(w.Then)
			}
			walkExpr(t.Else)
		case *InExpr:
			walkExpr(t.E)
			for _, x := range t.List {
				walkExpr(x)
			}
			if t.Sub != nil {
				walkSel(t.Sub)
			}
		case *BetweenExpr:
			walkExpr(t.E)
			walkExpr(t.Lo)
			walkExpr(t.Hi)
		case *IsNullExpr:
			walkExpr(t.E)
		case *SubqueryExpr:
			walkSel(t.Query)
		}
	}
	walkSel = func(s *SelectStmt) {
		if s == nil {
			return
		}
		for _, it := range s.Items {
			if !it.Star {
				walkExpr(it.Expr)
			}
		}
		walkFrom(s.From)
		walkExpr(s.Where)
		for _, g := range s.GroupBy {
			walkExpr(g)
		}
		walkExpr(s.Having)
		for _, o := range s.OrderBy {
			walkExpr(o.Expr)
		}
		for _, u := range s.UnionAll {
			walkSel(u)
		}
	}
	walkSel(sel)
	return deps, ok
}

// ---- Prepared statements ----

// Prepared is a pre-parsed statement with `?` placeholders. Executing it
// binds arguments positionally; for hint-free single-branch SELECTs whose
// parameters sit outside subqueries, the optimized plan is fetched from
// the plan cache (keyed with the placeholders intact, so one plan serves
// every binding) and the arguments are substituted into a copy-on-write
// clone of the plan — repeated executions skip lex, parse, and optimize.
type Prepared struct {
	db   *DB
	stmt Stmt
	// n is the number of `?` placeholders; paramsInSub marks placeholders
	// inside scalar/IN subqueries, which the planner folds at plan time and
	// must therefore be bound before planning.
	n           int
	paramsInSub bool
}

// Prepare parses a single statement for repeated execution with bound
// parameters. Works with or without EnableCache; with it, the parse and
// plan are shared through the caches.
func (db *DB) Prepare(sql string) (*Prepared, error) {
	st, err := db.parseOne(sql)
	if err != nil {
		return nil, err
	}
	p := &Prepared{db: db, stmt: st}
	p.n, p.paramsInSub = countStmtParams(st)
	return p, nil
}

// NumParams returns the number of `?` placeholders.
func (p *Prepared) NumParams() int { return p.n }

// Query executes the prepared statement with the given arguments bound to
// its `?` placeholders, in order.
func (p *Prepared) Query(args ...Datum) (*Result, error) {
	return p.QueryContext(context.Background(), args...)
}

// QueryContext is Query with cancellation and deadline support.
func (p *Prepared) QueryContext(ctx context.Context, args ...Datum) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, qerr.Recovered("sqldb prepared query", r)
		}
	}()
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	if len(args) != p.n {
		return nil, fmt.Errorf("sqldb: prepared statement wants %d arguments, got %d", p.n, len(args))
	}
	if sel, isSel := p.stmt.(*SelectStmt); isSel && !p.paramsInSub && len(sel.UnionAll) == 0 {
		run := func(ctx context.Context) (*Result, error) {
			plan, hit, cacheable, commit, err := p.db.planSelectCached(sel, nil)
			if err != nil {
				return nil, err
			}
			acctFrom(ctx).noteCacheState(p.db.cacheStateOf(hit, cacheable))
			bound, _ := bindPlanParams(plan, args)
			res, err := p.db.execPlanTraced(ctx, bound)
			if err != nil {
				return nil, err
			}
			commit()
			return res, nil
		}
		if p.db.History != nil || p.db.Traces != nil {
			return p.db.recordQuery(ctx, sel.String(), run)
		}
		return run(ctx)
	}
	// Parameters inside subqueries (or non-SELECT statements): substitute
	// into a copy of the AST and run the normal path.
	st, err := bindStmtParams(p.stmt, args)
	if err != nil {
		return nil, err
	}
	return p.db.execStmtRecorded(ctx, st, st.String(), nil)
}

// Exec is Query for statements that may not return rows (INSERT, UPDATE,
// DELETE, ...).
func (p *Prepared) Exec(args ...Datum) (*Result, error) {
	return p.ExecContext(context.Background(), args...)
}

// ExecContext is Exec with cancellation and deadline support.
func (p *Prepared) ExecContext(ctx context.Context, args ...Datum) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, qerr.Recovered("sqldb prepared exec", r)
		}
	}()
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	if len(args) != p.n {
		return nil, fmt.Errorf("sqldb: prepared statement wants %d arguments, got %d", p.n, len(args))
	}
	if _, isSel := p.stmt.(*SelectStmt); isSel {
		return p.QueryContext(ctx, args...)
	}
	st, err := bindStmtParams(p.stmt, args)
	if err != nil {
		return nil, err
	}
	return p.db.execStmtRecorded(ctx, st, st.String(), nil)
}

// countStmtParams counts `?` placeholders and reports whether any sit
// inside a scalar or IN subquery (those are folded to literals at plan
// time, forcing AST-level binding).
func countStmtParams(st Stmt) (n int, inSub bool) {
	var walkExpr func(e Expr, sub bool)
	var walkSel func(s *SelectStmt, sub bool)
	walkExpr = func(e Expr, sub bool) {
		switch t := e.(type) {
		case nil:
		case *Param:
			n++
			if sub {
				inSub = true
			}
		case *BinExpr:
			walkExpr(t.L, sub)
			walkExpr(t.R, sub)
		case *UnaryExpr:
			walkExpr(t.E, sub)
		case *FuncCall:
			for _, a := range t.Args {
				walkExpr(a, sub)
			}
		case *CaseExpr:
			for _, w := range t.Whens {
				walkExpr(w.Cond, sub)
				walkExpr(w.Then, sub)
			}
			walkExpr(t.Else, sub)
		case *InExpr:
			walkExpr(t.E, sub)
			for _, x := range t.List {
				walkExpr(x, sub)
			}
			if t.Sub != nil {
				walkSel(t.Sub, true)
			}
		case *BetweenExpr:
			walkExpr(t.E, sub)
			walkExpr(t.Lo, sub)
			walkExpr(t.Hi, sub)
		case *IsNullExpr:
			walkExpr(t.E, sub)
		case *SubqueryExpr:
			walkSel(t.Query, true)
		}
	}
	var walkFrom func(r *TableRef, sub bool)
	walkFrom = func(r *TableRef, sub bool) {
		if r == nil {
			return
		}
		switch {
		case r.Join != nil:
			walkFrom(r.Join.L, sub)
			walkFrom(r.Join.R, sub)
			walkExpr(r.Join.Cond, sub)
		case r.Sub != nil:
			walkSel(r.Sub, sub)
		}
	}
	walkSel = func(s *SelectStmt, sub bool) {
		if s == nil {
			return
		}
		for _, it := range s.Items {
			if !it.Star {
				walkExpr(it.Expr, sub)
			}
		}
		walkFrom(s.From, sub)
		walkExpr(s.Where, sub)
		for _, g := range s.GroupBy {
			walkExpr(g, sub)
		}
		walkExpr(s.Having, sub)
		for _, o := range s.OrderBy {
			walkExpr(o.Expr, sub)
		}
		for _, u := range s.UnionAll {
			walkSel(u, sub)
		}
	}
	switch t := st.(type) {
	case *SelectStmt:
		walkSel(t, false)
	case *InsertStmt:
		for _, row := range t.Values {
			for _, e := range row {
				walkExpr(e, false)
			}
		}
		walkSel(t.Query, false)
	case *UpdateStmt:
		for _, e := range t.Set {
			walkExpr(e, false)
		}
		walkExpr(t.Where, false)
	case *DeleteStmt:
		walkExpr(t.Where, false)
	case *ExplainStmt:
		walkSel(t.Query, false)
	}
	return n, inSub
}

// ---- plan-level parameter binding (copy-on-write) ----

// bindPlanParams returns a plan with every Param replaced by the matching
// argument literal. Nodes without parameters are shared with the input, so
// the cached plan stays immutable.
func bindPlanParams(p Plan, args []Datum) (Plan, bool) {
	switch t := p.(type) {
	case nil:
		return nil, false
	case *LScan:
		fs, ch := bindExprSlice(t.Filters, args)
		if !ch {
			return t, false
		}
		c := *t
		c.Filters = fs
		return &c, true
	case *LFilter:
		child, c1 := bindPlanParams(t.Child, args)
		conds, c2 := bindExprSlice(t.Conds, args)
		if !c1 && !c2 {
			return t, false
		}
		c := *t
		c.Child, c.Conds = child, conds
		return &c, true
	case *LJoin:
		l, c1 := bindPlanParams(t.L, args)
		r, c2 := bindPlanParams(t.R, args)
		el, c3 := bindExprSlice(t.EquiL, args)
		er, c4 := bindExprSlice(t.EquiR, args)
		res, c5 := bindExprSlice(t.Residual, args)
		if !(c1 || c2 || c3 || c4 || c5) {
			return t, false
		}
		c := *t
		c.L, c.R, c.EquiL, c.EquiR, c.Residual = l, r, el, er, res
		return &c, true
	case *LProject:
		child, c1 := bindPlanParams(t.Child, args)
		items, c2 := bindItems(t.Items, args)
		if !c1 && !c2 {
			return t, false
		}
		c := *t
		c.Child, c.Items = child, items
		return &c, true
	case *LAgg:
		child, c1 := bindPlanParams(t.Child, args)
		gb, c2 := bindExprSlice(t.GroupBy, args)
		items, c3 := bindItems(t.Items, args)
		having, c4 := bindExpr(t.Having, args)
		if !(c1 || c2 || c3 || c4) {
			return t, false
		}
		c := *t
		c.Child, c.GroupBy, c.Items, c.Having = child, gb, items, having
		return &c, true
	case *LDistinct:
		child, ch := bindPlanParams(t.Child, args)
		if !ch {
			return t, false
		}
		return &LDistinct{Child: child}, true
	case *LSort:
		child, c1 := bindPlanParams(t.Child, args)
		keys := t.Keys
		c2 := false
		for i, k := range t.Keys {
			e, ch := bindExpr(k.Expr, args)
			if ch && !c2 {
				keys = append([]OrderItem(nil), t.Keys...)
				c2 = true
			}
			if ch {
				keys[i].Expr = e
			}
		}
		if !c1 && !c2 {
			return t, false
		}
		c := *t
		c.Child, c.Keys = child, keys
		return &c, true
	case *LLimit:
		child, ch := bindPlanParams(t.Child, args)
		if !ch {
			return t, false
		}
		c := *t
		c.Child = child
		return &c, true
	case *aliasPlan:
		child, ch := bindPlanParams(t.Child, args)
		if !ch {
			return t, false
		}
		c := *t
		c.Child = child
		return &c, true
	}
	return p, false
}

func bindItems(items []SelectItem, args []Datum) ([]SelectItem, bool) {
	out := items
	changed := false
	for i, it := range items {
		if it.Star {
			continue
		}
		e, ch := bindExpr(it.Expr, args)
		if ch && !changed {
			out = append([]SelectItem(nil), items...)
			changed = true
		}
		if ch {
			out[i].Expr = e
		}
	}
	return out, changed
}

func bindExprSlice(es []Expr, args []Datum) ([]Expr, bool) {
	out := es
	changed := false
	for i, e := range es {
		b, ch := bindExpr(e, args)
		if ch && !changed {
			out = append([]Expr(nil), es...)
			changed = true
		}
		if ch {
			out[i] = b
		}
	}
	return out, changed
}

// bindExpr substitutes Params with literals, sharing unchanged subtrees.
func bindExpr(e Expr, args []Datum) (Expr, bool) {
	switch t := e.(type) {
	case nil:
		return nil, false
	case *Param:
		return &Lit{Val: args[t.Idx]}, true
	case *BinExpr:
		l, c1 := bindExpr(t.L, args)
		r, c2 := bindExpr(t.R, args)
		if !c1 && !c2 {
			return t, false
		}
		return &BinExpr{Op: t.Op, L: l, R: r}, true
	case *UnaryExpr:
		sub, ch := bindExpr(t.E, args)
		if !ch {
			return t, false
		}
		return &UnaryExpr{Op: t.Op, E: sub}, true
	case *FuncCall:
		as, ch := bindExprSlice(t.Args, args)
		if !ch {
			return t, false
		}
		return &FuncCall{Name: t.Name, Args: as, Distinct: t.Distinct, Star: t.Star}, true
	case *CaseExpr:
		changed := false
		whens := t.Whens
		for i, w := range t.Whens {
			c, c1 := bindExpr(w.Cond, args)
			th, c2 := bindExpr(w.Then, args)
			if (c1 || c2) && !changed {
				whens = append([]WhenClause(nil), t.Whens...)
				changed = true
			}
			if c1 || c2 {
				whens[i] = WhenClause{Cond: c, Then: th}
			}
		}
		els, c3 := bindExpr(t.Else, args)
		if !changed && !c3 {
			return t, false
		}
		return &CaseExpr{Whens: whens, Else: els}, true
	case *InExpr:
		sub, c1 := bindExpr(t.E, args)
		list, c2 := bindExprSlice(t.List, args)
		q, c3 := bindSelParams(t.Sub, args)
		if !(c1 || c2 || c3) {
			return t, false
		}
		return &InExpr{E: sub, List: list, Sub: q, Not: t.Not}, true
	case *BetweenExpr:
		sub, c1 := bindExpr(t.E, args)
		lo, c2 := bindExpr(t.Lo, args)
		hi, c3 := bindExpr(t.Hi, args)
		if !(c1 || c2 || c3) {
			return t, false
		}
		return &BetweenExpr{E: sub, Lo: lo, Hi: hi, Not: t.Not}, true
	case *IsNullExpr:
		sub, ch := bindExpr(t.E, args)
		if !ch {
			return t, false
		}
		return &IsNullExpr{E: sub, Not: t.Not}, true
	case *SubqueryExpr:
		q, ch := bindSelParams(t.Query, args)
		if !ch {
			return t, false
		}
		return &SubqueryExpr{Query: q}, true
	}
	return e, false
}

// bindSelParams rewrites a SELECT subtree copy-on-write.
func bindSelParams(s *SelectStmt, args []Datum) (*SelectStmt, bool) {
	if s == nil {
		return nil, false
	}
	changed := false
	out := *s
	items, ch := bindItems(s.Items, args)
	changed = changed || ch
	out.Items = items
	from, ch := bindFromParams(s.From, args)
	changed = changed || ch
	out.From = from
	w, ch := bindExpr(s.Where, args)
	changed = changed || ch
	out.Where = w
	gb, ch := bindExprSlice(s.GroupBy, args)
	changed = changed || ch
	out.GroupBy = gb
	h, ch := bindExpr(s.Having, args)
	changed = changed || ch
	out.Having = h
	ob := s.OrderBy
	obChanged := false
	for i, o := range s.OrderBy {
		e, ch := bindExpr(o.Expr, args)
		if ch && !obChanged {
			ob = append([]OrderItem(nil), s.OrderBy...)
			obChanged = true
		}
		if ch {
			ob[i].Expr = e
		}
	}
	changed = changed || obChanged
	out.OrderBy = ob
	ua := s.UnionAll
	uaChanged := false
	for i, u := range s.UnionAll {
		b, ch := bindSelParams(u, args)
		if ch && !uaChanged {
			ua = append([]*SelectStmt(nil), s.UnionAll...)
			uaChanged = true
		}
		if ch {
			ua[i] = b
		}
	}
	changed = changed || uaChanged
	out.UnionAll = ua
	if !changed {
		return s, false
	}
	return &out, true
}

func bindFromParams(r *TableRef, args []Datum) (*TableRef, bool) {
	if r == nil {
		return nil, false
	}
	switch {
	case r.Join != nil:
		l, c1 := bindFromParams(r.Join.L, args)
		rr, c2 := bindFromParams(r.Join.R, args)
		cond, c3 := bindExpr(r.Join.Cond, args)
		if !(c1 || c2 || c3) {
			return r, false
		}
		out := *r
		out.Join = &JoinRef{L: l, R: rr, Cond: cond, Left: r.Join.Left}
		return &out, true
	case r.Sub != nil:
		sub, ch := bindSelParams(r.Sub, args)
		if !ch {
			return r, false
		}
		out := *r
		out.Sub = sub
		return &out, true
	default:
		return r, false
	}
}

// bindStmtParams substitutes arguments into a full statement (the fallback
// path for DML and for parameters inside plan-time-folded subqueries).
func bindStmtParams(st Stmt, args []Datum) (Stmt, error) {
	switch t := st.(type) {
	case *SelectStmt:
		out, _ := bindSelParams(t, args)
		return out, nil
	case *InsertStmt:
		out := *t
		changed := false
		if len(t.Values) > 0 {
			vals := make([][]Expr, len(t.Values))
			for i, row := range t.Values {
				r, ch := bindExprSlice(row, args)
				vals[i] = r
				changed = changed || ch
			}
			out.Values = vals
		}
		q, ch := bindSelParams(t.Query, args)
		out.Query = q
		changed = changed || ch
		if !changed {
			return t, nil
		}
		return &out, nil
	case *UpdateStmt:
		out := *t
		set := make(map[string]Expr, len(t.Set))
		for k, e := range t.Set {
			b, _ := bindExpr(e, args)
			set[k] = b
		}
		out.Set = set
		w, _ := bindExpr(t.Where, args)
		out.Where = w
		return &out, nil
	case *DeleteStmt:
		out := *t
		w, _ := bindExpr(t.Where, args)
		out.Where = w
		return &out, nil
	case *ExplainStmt:
		out := *t
		q, _ := bindSelParams(t.Query, args)
		out.Query = q
		return &out, nil
	default:
		return st, nil
	}
}
