package sqldb

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

// tokKind enumerates lexical token kinds.
type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokOp    // operators and punctuation
	tokParam // ? placeholder
)

type token struct {
	kind tokKind
	text string
	pos  int
}

// String renders the token for error messages.
func (t token) String() string {
	if t.kind == tokEOF {
		return "<eof>"
	}
	return t.text
}

// lexer tokenizes a SQL string.
type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex tokenizes the whole input up front; SQL statements here are small
// relative to the data they touch, so a two-pass scanner keeps the parser
// simple.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		l.toks = append(l.toks, t)
		if t.kind == tokEOF {
			return l.toks, nil
		}
	}
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			// line comment
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			end := strings.Index(l.src[l.pos+2:], "*/")
			if end < 0 {
				return token{}, fmt.Errorf("sqldb: unterminated block comment at %d", l.pos)
			}
			l.pos += end + 4
		default:
			goto scan
		}
	}
	return token{kind: tokEOF, pos: l.pos}, nil

scan:
	start := l.pos
	c := l.src[l.pos]
	// Identifiers may contain multi-byte letters, so decode a full rune
	// here rather than treating each byte as a Latin-1 character (found by
	// FuzzParse: the byte 0xC9 would lex as the letter 'É' and survive into
	// an identifier that is not valid UTF-8, which ToLower then mangles).
	// Invalid UTF-8 is rejected outright.
	r, rsize := rune(c), 1
	if c >= utf8.RuneSelf {
		r, rsize = utf8.DecodeRuneInString(l.src[l.pos:])
		if r == utf8.RuneError && rsize == 1 {
			return token{}, fmt.Errorf("sqldb: invalid UTF-8 byte 0x%02x at %d", c, l.pos)
		}
	}
	switch {
	case c == '\'' || c == '"':
		quote := c
		l.pos++
		var sb strings.Builder
		for l.pos < len(l.src) {
			ch := l.src[l.pos]
			if ch == quote {
				if l.pos+1 < len(l.src) && l.src[l.pos+1] == quote {
					sb.WriteByte(quote) // doubled quote escape
					l.pos += 2
					continue
				}
				l.pos++
				return token{kind: tokString, text: sb.String(), pos: start}, nil
			}
			if ch == '\\' && l.pos+1 < len(l.src) {
				l.pos++
				switch l.src[l.pos] {
				case 'n':
					sb.WriteByte('\n')
				case 't':
					sb.WriteByte('\t')
				default:
					sb.WriteByte(l.src[l.pos])
				}
				l.pos++
				continue
			}
			sb.WriteByte(ch)
			l.pos++
		}
		return token{}, fmt.Errorf("sqldb: unterminated string literal at %d", start)
	case c >= '0' && c <= '9' || c == '.' && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9':
		seenDot, seenExp := false, false
		for l.pos < len(l.src) {
			ch := l.src[l.pos]
			if ch >= '0' && ch <= '9' {
				l.pos++
			} else if ch == '.' && !seenDot && !seenExp {
				seenDot = true
				l.pos++
			} else if (ch == 'e' || ch == 'E') && !seenExp && l.pos+1 < len(l.src) &&
				(isDigit(l.src[l.pos+1]) || l.src[l.pos+1] == '+' || l.src[l.pos+1] == '-') {
				seenExp = true
				l.pos += 2
			} else {
				break
			}
		}
		return token{kind: tokNumber, text: l.src[start:l.pos], pos: start}, nil
	case isIdentStart(r):
		l.pos += rsize
		for l.pos < len(l.src) {
			pr, psize := utf8.DecodeRuneInString(l.src[l.pos:])
			if (pr == utf8.RuneError && psize == 1) || !isIdentPart(pr) {
				break // an invalid byte errors on the next scan
			}
			l.pos += psize
		}
		return token{kind: tokIdent, text: l.src[start:l.pos], pos: start}, nil
	case c == '?':
		l.pos++
		return token{kind: tokParam, text: "?", pos: start}, nil
	default:
		// multi-char operators first
		two := ""
		if l.pos+1 < len(l.src) {
			two = l.src[l.pos : l.pos+2]
		}
		switch two {
		case "!=", "<>", "<=", ">=", "||":
			l.pos += 2
			return token{kind: tokOp, text: two, pos: start}, nil
		}
		switch c {
		case '=', '<', '>', '+', '-', '*', '/', '%', '(', ')', ',', ';', '.':
			l.pos++
			return token{kind: tokOp, text: string(c), pos: start}, nil
		}
		return token{}, fmt.Errorf("sqldb: unexpected character %q at %d", c, start)
	}
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
