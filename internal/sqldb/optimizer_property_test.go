package sqldb

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
)

// TestOptimizerHintsPreserveResults is a property test over the planner:
// optimizer hints (Section IV-B of the paper) may change the plan — join
// order, predicate placement, join algorithm — but never the result. For a
// seeded stream of generated queries against randomly filled tables, every
// hint configuration must return the same multiset of rows as the unhinted
// plan (compared as sorted canonical rows, since the queries carry no
// ORDER BY and row order is plan-dependent).
func TestOptimizerHintsPreserveResults(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	db := New()
	mustExec(t, db, "CREATE TABLE t1 (a Int64, b Float64, c String)")
	mustExec(t, db, "CREATE TABLE t2 (a Int64, d Int64)")
	mustExec(t, db, "CREATE TABLE t3 (a Int64, e String)")
	t1 := db.GetTable("t1")
	for i := 0; i < 600; i++ {
		row := []Datum{
			Int(int64(rng.Intn(80))),
			Float(float64(rng.Intn(10000)) / 100.0),
			Str(fmt.Sprintf("c%02d", rng.Intn(26))),
		}
		if err := t1.AppendRow(row); err != nil {
			t.Fatal(err)
		}
	}
	t2 := db.GetTable("t2")
	for i := 0; i < 400; i++ {
		row := []Datum{Int(int64(rng.Intn(80))), Int(int64(rng.Intn(300)))}
		if err := t2.AppendRow(row); err != nil {
			t.Fatal(err)
		}
	}
	t3 := db.GetTable("t3")
	for i := 0; i < 50; i++ {
		row := []Datum{Int(int64(rng.Intn(80))), Str(fmt.Sprintf("e%d", rng.Intn(7)))}
		if err := t3.AppendRow(row); err != nil {
			t.Fatal(err)
		}
	}
	db.RegisterUDF(&ScalarUDF{
		Name:         "is_mod3",
		Arity:        1,
		Fn:           func(args []Datum) (Datum, error) { return Bool(args[0].I%3 == 0), nil },
		Cost:         40,
		ParallelSafe: true,
	})

	xPreds := []string{"x.a < 60", "x.b > 25.0", "x.c < 'm'", "x.a % 7 < 5", "x.b < 90.0"}
	yPreds := []string{"y.d < 250", "y.a > 3", "is_mod3(y.d) = TRUE", "y.d % 2 = 0"}
	zPreds := []string{"z.e < 'e5'", "z.a < 70"}

	type genQuery struct {
		sql     string
		aliases []string // join-tree aliases, for the JoinOrder hint
	}
	generate := func() genQuery {
		threeWay := rng.Intn(2) == 1
		var sb strings.Builder
		var groupBy bool
		if rng.Intn(3) == 0 {
			groupBy = true
			sb.WriteString("SELECT x.a AS a, count(*) AS c, sum(y.d) AS s FROM t1 x INNER JOIN t2 y ON x.a = y.a")
		} else {
			sb.WriteString("SELECT x.a, x.b, y.d")
			if threeWay {
				sb.WriteString(", z.e")
			}
			sb.WriteString(" FROM t1 x INNER JOIN t2 y ON x.a = y.a")
		}
		aliases := []string{"x", "y"}
		if threeWay && !groupBy {
			sb.WriteString(" INNER JOIN t3 z ON y.a = z.a")
			aliases = append(aliases, "z")
		}
		var preds []string
		preds = append(preds, xPreds[rng.Intn(len(xPreds))])
		if rng.Intn(2) == 0 {
			preds = append(preds, yPreds[rng.Intn(len(yPreds))])
		}
		if len(aliases) == 3 && rng.Intn(2) == 0 {
			preds = append(preds, zPreds[rng.Intn(len(zPreds))])
		}
		sb.WriteString(" WHERE " + strings.Join(preds, " AND "))
		if groupBy {
			sb.WriteString(" GROUP BY x.a")
		}
		return genQuery{sql: sb.String(), aliases: aliases}
	}

	sortedRows := func(sql string, hints *QueryHints) []string {
		t.Helper()
		res, err := db.ExecHinted(sql, hints)
		if err != nil {
			t.Fatalf("hints=%+v query %q: %v", hints, sql, err)
		}
		rows := canonRows(res, false)
		sort.Strings(rows)
		return rows
	}

	tru, fls := true, false
	for iter := 0; iter < 25; iter++ {
		q := generate()
		reversed := make([]string, len(q.aliases))
		for i, a := range q.aliases {
			reversed[len(q.aliases)-1-i] = a
		}
		hintSets := []*QueryHints{
			{DelayUDFs: &tru, UDFCost: map[string]float64{"is_mod3": 80}, UDFSelectivity: map[string]float64{"is_mod3": 0.33}},
			{DelayUDFs: &fls, UDFSelectivity: map[string]float64{"is_mod3": 0.9}},
			{SymmetricJoin: true},
			{CardOverrides: map[string]float64{"t1": float64(1 + rng.Intn(100000)), "t2": float64(1 + rng.Intn(100000)), "t3": 2}},
			{JoinOrder: reversed},
			{SelectUDFLast: true, SymmetricJoin: true, CardOverrides: map[string]float64{"t2": 5}},
		}
		want := sortedRows(q.sql, nil)
		for hi, h := range hintSets {
			got := sortedRows(q.sql, h)
			if len(got) != len(want) {
				t.Fatalf("query %q hint set %d (%+v): %d rows, want %d", q.sql, hi, h, len(got), len(want))
			}
			for r := range want {
				if got[r] != want[r] {
					t.Fatalf("query %q hint set %d (%+v): canonical row %d = %s, want %s",
						q.sql, hi, h, r, got[r], want[r])
				}
			}
		}
	}
}
