package sqldb

import (
	"fmt"
	"strconv"
	"strings"
)

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks    []token
	pos     int
	src     string
	nparams int // `?` placeholders seen so far, in statement order
}

// Parse parses a single SQL statement.
func Parse(src string) (Stmt, error) {
	stmts, err := ParseMulti(src)
	if err != nil {
		return nil, err
	}
	if len(stmts) != 1 {
		return nil, fmt.Errorf("sqldb: expected one statement, got %d", len(stmts))
	}
	return stmts[0], nil
}

// ParseMulti parses a semicolon-separated statement list.
func ParseMulti(src string) ([]Stmt, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: src}
	var out []Stmt
	for {
		for p.isOp(";") {
			p.pos++
		}
		if p.cur().kind == tokEOF {
			break
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
		if !p.isOp(";") && p.cur().kind != tokEOF {
			return nil, p.errf("expected ';' or end of input, got %q", p.cur())
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("sqldb: empty statement")
	}
	return out, nil
}

func (p *parser) cur() token { return p.toks[p.pos] }
func (p *parser) peek() token {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return token{kind: tokEOF}
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("sqldb: parse error near position %d: %s", p.cur().pos, fmt.Sprintf(format, args...))
}

// isKw reports whether the current token is the given keyword
// (case-insensitive), without consuming it.
func (p *parser) isKw(kw string) bool {
	t := p.cur()
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}

func (p *parser) eatKw(kw string) bool {
	if p.isKw(kw) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectKw(kw string) error {
	if !p.eatKw(kw) {
		return p.errf("expected %s, got %q", strings.ToUpper(kw), p.cur())
	}
	return nil
}

func (p *parser) isOp(op string) bool {
	t := p.cur()
	return t.kind == tokOp && t.text == op
}

func (p *parser) eatOp(op string) bool {
	if p.isOp(op) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectOp(op string) error {
	if !p.eatOp(op) {
		return p.errf("expected %q, got %q", op, p.cur())
	}
	return nil
}

func (p *parser) ident() (string, error) {
	t := p.cur()
	if t.kind != tokIdent {
		return "", p.errf("expected identifier, got %q", t)
	}
	p.pos++
	return t.text, nil
}

func (p *parser) parseStmt() (Stmt, error) {
	switch {
	case p.isKw("select"):
		return p.parseSelect()
	case p.isKw("create"):
		return p.parseCreate()
	case p.isKw("insert"):
		return p.parseInsert()
	case p.isKw("update"):
		return p.parseUpdate()
	case p.isKw("delete"):
		return p.parseDelete()
	case p.isKw("drop"):
		return p.parseDrop()
	case p.isKw("explain"):
		p.pos++
		analyze := p.eatKw("analyze")
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		return &ExplainStmt{Query: sel, Analyze: analyze}, nil
	}
	return nil, p.errf("unexpected statement start %q", p.cur())
}

func (p *parser) parseCreate() (Stmt, error) {
	p.pos++ // CREATE
	orReplace := false
	if p.eatKw("or") {
		if err := p.expectKw("replace"); err != nil {
			return nil, err
		}
		orReplace = true
	}
	temp := p.eatKw("temp") || p.eatKw("temporary")
	switch {
	case p.eatKw("table"):
		st := &CreateTableStmt{Temp: temp}
		if p.eatKw("if") {
			if err := p.expectKw("not"); err != nil {
				return nil, err
			}
			if err := p.expectKw("exists"); err != nil {
				return nil, err
			}
			st.IfNotExists = true
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		st.Name = name
		switch {
		case p.eatKw("as"):
			sel, err := p.parseSelectMaybeParen()
			if err != nil {
				return nil, err
			}
			st.As = sel
		case p.isOp("("):
			// Either a column list or the paper's `CREATE TEMP TABLE t(SELECT ...)`.
			p.pos++
			if p.isKw("select") {
				sel, err := p.parseSelect()
				if err != nil {
					return nil, err
				}
				st.As = sel
				if err := p.expectOp(")"); err != nil {
					return nil, err
				}
			} else {
				for {
					cn, err := p.ident()
					if err != nil {
						return nil, err
					}
					tn, err := p.ident()
					if err != nil {
						return nil, err
					}
					ct, err := ParseType(tn)
					if err != nil {
						return nil, err
					}
					st.Cols = append(st.Cols, ColumnDef{Name: cn, Type: ct})
					if !p.eatOp(",") {
						break
					}
				}
				if err := p.expectOp(")"); err != nil {
					return nil, err
				}
				// Optional trailing AS SELECT even with explicit columns.
				if p.eatKw("as") {
					sel, err := p.parseSelectMaybeParen()
					if err != nil {
						return nil, err
					}
					st.As = sel
				}
			}
		default:
			return nil, p.errf("expected column list or AS SELECT after table name")
		}
		return st, nil
	case p.eatKw("view"):
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		st := &CreateViewStmt{Name: name, OrReplace: orReplace}
		switch {
		case p.eatKw("as"):
			sel, err := p.parseSelectMaybeParen()
			if err != nil {
				return nil, err
			}
			st.As = sel
		case p.isOp("("):
			p.pos++
			sel, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			st.As = sel
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
		default:
			return nil, p.errf("expected AS SELECT after view name")
		}
		return st, nil
	}
	return nil, p.errf("expected TABLE or VIEW after CREATE")
}

// parseSelectMaybeParen parses `SELECT ...` or `(SELECT ...)`.
func (p *parser) parseSelectMaybeParen() (*SelectStmt, error) {
	if p.eatOp("(") {
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return sel, nil
	}
	return p.parseSelect()
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if err := p.expectKw("select"); err != nil {
		return nil, err
	}
	st := &SelectStmt{Limit: -1}
	st.Distinct = p.eatKw("distinct")
	for {
		if p.isOp("*") {
			p.pos++
			st.Items = append(st.Items, SelectItem{Star: true})
		} else {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := SelectItem{Expr: e}
			if p.eatKw("as") {
				a, err := p.ident()
				if err != nil {
					return nil, err
				}
				item.Alias = a
			} else if p.cur().kind == tokIdent && !p.isSelectTerminator() {
				// bare alias
				item.Alias = p.cur().text
				p.pos++
			}
			st.Items = append(st.Items, item)
		}
		if !p.eatOp(",") {
			break
		}
	}
	if p.eatKw("from") {
		from, err := p.parseFrom()
		if err != nil {
			return nil, err
		}
		st.From = from
	}
	if p.eatKw("where") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Where = w
	}
	if p.eatKw("group") {
		if err := p.expectKw("by"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			st.GroupBy = append(st.GroupBy, e)
			if !p.eatOp(",") {
				break
			}
		}
	}
	if p.eatKw("having") {
		h, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Having = h
	}
	if p.eatKw("order") {
		if err := p.expectKw("by"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.eatKw("desc") {
				item.Desc = true
			} else {
				p.eatKw("asc")
			}
			st.OrderBy = append(st.OrderBy, item)
			if !p.eatOp(",") {
				break
			}
		}
	}
	if p.eatKw("limit") {
		n, err := p.intLit()
		if err != nil {
			return nil, err
		}
		st.Limit = n
	}
	if p.eatKw("offset") {
		n, err := p.intLit()
		if err != nil {
			return nil, err
		}
		st.Offset = n
	}
	for p.isKw("union") {
		p.pos++
		if err := p.expectKw("all"); err != nil {
			return nil, fmt.Errorf("%w (only UNION ALL is supported)", err)
		}
		next, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		// Flatten right-nested unions onto this statement.
		st.UnionAll = append(st.UnionAll, next)
		st.UnionAll = append(st.UnionAll, next.UnionAll...)
		next.UnionAll = nil
	}
	return st, nil
}

// isSelectTerminator reports whether the current identifier is a clause
// keyword rather than a bare alias.
func (p *parser) isSelectTerminator() bool {
	for _, kw := range []string{"from", "where", "group", "having", "order", "limit", "offset", "as", "inner", "left", "outer", "join", "on", "union"} {
		if p.isKw(kw) {
			return true
		}
	}
	return false
}

func (p *parser) intLit() (int, error) {
	t := p.cur()
	if t.kind != tokNumber {
		return 0, p.errf("expected integer, got %q", t)
	}
	n, err := strconv.Atoi(t.text)
	if err != nil {
		return 0, p.errf("bad integer %q", t.text)
	}
	p.pos++
	return n, nil
}

func (p *parser) parseFrom() (*TableRef, error) {
	left, err := p.parseTableAtom()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.eatOp(","):
			right, err := p.parseTableAtom()
			if err != nil {
				return nil, err
			}
			left = &TableRef{Join: &JoinRef{L: left, R: right}}
		case p.isKw("inner") || p.isKw("join") || p.isKw("left"):
			isLeft := p.eatKw("left")
			if isLeft {
				p.eatKw("outer")
			} else {
				p.eatKw("inner")
			}
			if err := p.expectKw("join"); err != nil {
				return nil, err
			}
			right, err := p.parseTableAtom()
			if err != nil {
				return nil, err
			}
			var cond Expr
			if p.eatKw("on") {
				cond, err = p.parseExpr()
				if err != nil {
					return nil, err
				}
			}
			left = &TableRef{Join: &JoinRef{L: left, R: right, Cond: cond, Left: isLeft}}
		default:
			return left, nil
		}
	}
}

func (p *parser) parseTableAtom() (*TableRef, error) {
	if p.eatOp("(") {
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		ref := &TableRef{Sub: sel}
		p.eatKw("as")
		if p.cur().kind == tokIdent && !p.isFromTerminator() {
			ref.Alias = p.cur().text
			p.pos++
		}
		return ref, nil
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	alias := name
	if p.eatOp(".") {
		// Dotted table name (catalog-qualified, e.g. sys.queries). The full
		// dotted string is the table name; the default alias is the last
		// segment so `SELECT queries.sql FROM sys.queries` resolves.
		part, err := p.ident()
		if err != nil {
			return nil, err
		}
		name = name + "." + part
		alias = part
	}
	ref := &TableRef{Table: name, Alias: alias}
	if p.eatKw("as") {
		a, err := p.ident()
		if err != nil {
			return nil, err
		}
		ref.Alias = a
	} else if p.cur().kind == tokIdent && !p.isFromTerminator() {
		ref.Alias = p.cur().text
		p.pos++
	}
	return ref, nil
}

func (p *parser) isFromTerminator() bool {
	for _, kw := range []string{"where", "group", "having", "order", "limit", "offset", "inner", "left", "outer", "join", "on", "union"} {
		if p.isKw(kw) {
			return true
		}
	}
	return false
}

func (p *parser) parseInsert() (Stmt, error) {
	p.pos++ // INSERT
	if err := p.expectKw("into"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	st := &InsertStmt{Table: name}
	if p.isOp("(") {
		// Could be a column list or `INSERT INTO t (SELECT ...)`.
		save := p.pos
		p.pos++
		if p.isKw("select") {
			sel, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			st.Query = sel
			return st, nil
		}
		p.pos = save
		p.pos++ // consume '('
		for {
			c, err := p.ident()
			if err != nil {
				return nil, err
			}
			st.Cols = append(st.Cols, c)
			if !p.eatOp(",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
	}
	switch {
	case p.eatKw("values"):
		for {
			if err := p.expectOp("("); err != nil {
				return nil, err
			}
			var row []Expr
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				row = append(row, e)
				if !p.eatOp(",") {
					break
				}
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			st.Values = append(st.Values, row)
			if !p.eatOp(",") {
				break
			}
		}
	case p.isKw("select"):
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		st.Query = sel
	default:
		return nil, p.errf("expected VALUES or SELECT in INSERT")
	}
	return st, nil
}

func (p *parser) parseUpdate() (Stmt, error) {
	p.pos++ // UPDATE
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("set"); err != nil {
		return nil, err
	}
	st := &UpdateStmt{Table: name, Set: map[string]Expr{}}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp("="); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Set[strings.ToLower(col)] = e
		if !p.eatOp(",") {
			break
		}
	}
	if p.eatKw("where") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Where = w
	}
	return st, nil
}

func (p *parser) parseDelete() (Stmt, error) {
	p.pos++ // DELETE
	if err := p.expectKw("from"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	st := &DeleteStmt{Table: name}
	if p.eatKw("where") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Where = w
	}
	return st, nil
}

func (p *parser) parseDrop() (Stmt, error) {
	p.pos++ // DROP
	st := &DropStmt{}
	switch {
	case p.eatKw("table"):
	case p.eatKw("view"):
		st.View = true
	default:
		return nil, p.errf("expected TABLE or VIEW after DROP")
	}
	if p.eatKw("if") {
		if err := p.expectKw("exists"); err != nil {
			return nil, err
		}
		st.IfExists = true
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	st.Name = name
	return st, nil
}

// ---- Expression parsing (precedence climbing) ----

func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.eatKw("or") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: "or", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.eatKw("and") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: "and", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.eatKw("not") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "not", E: e}, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	// IS [NOT] NULL
	if p.eatKw("is") {
		not := p.eatKw("not")
		if err := p.expectKw("null"); err != nil {
			return nil, err
		}
		return &IsNullExpr{E: l, Not: not}, nil
	}
	// [NOT] IN / BETWEEN
	not := false
	if p.isKw("not") && (strings.EqualFold(p.peek().text, "in") || strings.EqualFold(p.peek().text, "between")) {
		p.pos++
		not = true
	}
	if p.eatKw("in") {
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		if p.isKw("select") {
			sub, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return &InExpr{E: l, Sub: sub, Not: not}, nil
		}
		var list []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
			if !p.eatOp(",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return &InExpr{E: l, List: list, Not: not}, nil
	}
	if p.eatKw("between") {
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("and"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &BetweenExpr{E: l, Lo: lo, Hi: hi, Not: not}, nil
	}
	for _, op := range []string{"=", "!=", "<>", "<=", ">=", "<", ">"} {
		if p.isOp(op) {
			p.pos++
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			canon := op
			if canon == "<>" {
				canon = "!="
			}
			return &BinExpr{Op: canon, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.isOp("+"):
			op = "+"
		case p.isOp("-"):
			op = "-"
		case p.isOp("||"):
			op = "||"
		default:
			return l, nil
		}
		p.pos++
		r, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: op, L: l, R: r}
	}
}

func (p *parser) parseMultiplicative() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.isOp("*"):
			op = "*"
		case p.isOp("/"):
			op = "/"
		case p.isOp("%"):
			op = "%"
		default:
			return l, nil
		}
		p.pos++
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: op, L: l, R: r}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.eatOp("-") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if lit, ok := e.(*Lit); ok {
			switch lit.Val.T {
			case TInt:
				return &Lit{Val: Int(-lit.Val.I)}, nil
			case TFloat:
				return &Lit{Val: Float(-lit.Val.F)}, nil
			}
		}
		return &UnaryExpr{Op: "-", E: e}, nil
	}
	if p.eatOp("+") {
		return p.parseUnary()
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.kind {
	case tokNumber:
		p.pos++
		if strings.ContainsAny(t.text, ".eE") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, p.errf("bad number %q", t.text)
			}
			return &Lit{Val: Float(f)}, nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			f, ferr := strconv.ParseFloat(t.text, 64)
			if ferr != nil {
				return nil, p.errf("bad number %q", t.text)
			}
			return &Lit{Val: Float(f)}, nil
		}
		return &Lit{Val: Int(n)}, nil
	case tokString:
		p.pos++
		return &Lit{Val: Str(t.text)}, nil
	case tokParam:
		p.pos++
		e := &Param{Idx: p.nparams}
		p.nparams++
		return e, nil
	case tokOp:
		if t.text == "(" {
			p.pos++
			if p.isKw("select") {
				sel, err := p.parseSelect()
				if err != nil {
					return nil, err
				}
				if err := p.expectOp(")"); err != nil {
					return nil, err
				}
				return &SubqueryExpr{Query: sel}, nil
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
		return nil, p.errf("unexpected token %q", t)
	case tokIdent:
		// SELECT cannot serve as a column, table, or function name: after
		// "(" the parser dispatches on the keyword to the subquery path, so
		// an identifier "select" would render to SQL that re-parses
		// differently (found by FuzzParse).
		if strings.EqualFold(t.text, "select") {
			return nil, p.errf("unexpected keyword %q in expression", t.text)
		}
		switch {
		case strings.EqualFold(t.text, "true"):
			p.pos++
			return &Lit{Val: Bool(true)}, nil
		case strings.EqualFold(t.text, "false"):
			p.pos++
			return &Lit{Val: Bool(false)}, nil
		case strings.EqualFold(t.text, "null"):
			p.pos++
			return &Lit{Val: Null()}, nil
		case strings.EqualFold(t.text, "case"):
			return p.parseCase()
		}
		// function call?
		if p.peek().kind == tokOp && p.peek().text == "(" {
			name := t.text
			p.pos += 2 // ident + '('
			fc := &FuncCall{Name: strings.ToLower(name)}
			if p.isOp("*") {
				p.pos++
				fc.Star = true
			} else if !p.isOp(")") {
				fc.Distinct = p.eatKw("distinct")
				for {
					e, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					fc.Args = append(fc.Args, e)
					if !p.eatOp(",") {
						break
					}
				}
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return fc, nil
		}
		// column ref, possibly qualified
		p.pos++
		if p.isOp(".") {
			p.pos++
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			return &ColRef{Table: t.text, Name: col}, nil
		}
		return &ColRef{Name: t.text}, nil
	}
	return nil, p.errf("unexpected token %q", t)
}

func (p *parser) parseCase() (Expr, error) {
	p.pos++ // CASE
	ce := &CaseExpr{}
	for p.eatKw("when") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("then"); err != nil {
			return nil, err
		}
		then, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		ce.Whens = append(ce.Whens, WhenClause{Cond: cond, Then: then})
	}
	if len(ce.Whens) == 0 {
		return nil, p.errf("CASE requires at least one WHEN")
	}
	if p.eatKw("else") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		ce.Else = e
	}
	if err := p.expectKw("end"); err != nil {
		return nil, err
	}
	return ce, nil
}
