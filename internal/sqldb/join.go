package sqldb

import (
	"context"
	"time"

	"repro/internal/par"
)

// execJoin dispatches to the hash, symmetric-hash, or nested-loop join.
func (db *DB) execJoin(j *LJoin, ec *execCtx) (*Result, error) {
	left, err := db.execPlan(j.L, ec)
	if err != nil {
		return nil, err
	}
	right, err := db.execPlan(j.R, ec)
	if err != nil {
		return nil, err
	}
	switch {
	case j.LeftOuter:
		return db.leftOuterHashJoin(left, right, j, ec)
	case len(j.EquiL) == 0:
		return db.nestedLoopJoin(left, right, j.Residual, ec)
	case j.Symmetric:
		return db.symmetricHashJoin(left, right, j, ec)
	default:
		return db.hashJoin(left, right, j, ec)
	}
}

// joinKeys evaluates the key expressions for every row of a side,
// concatenating multi-key values into one string key. Rows are fanned out
// as morsels when the side is large; each worker writes disjoint slots of
// the keys slice.
func (db *DB) joinKeys(in *Result, exprs []Expr, ec *execCtx) ([]string, error) {
	fns := make([]evalFn, len(exprs))
	for i, e := range exprs {
		f, err := db.compileExpr(e, in.Schema)
		if err != nil {
			return nil, err
		}
		fns[i] = f
	}
	n := in.NumRows()
	keys := make([]string, n)
	deg := ec.parDegreeFor(n)
	if deg > 1 && !db.exprsParallelSafe(exprs) {
		deg = 1
	}
	_, err := db.runMorsels(ec, deg, n, func(_, lo, hi int) error {
		buf := make([]byte, 0, 64)
		for i := lo; i < hi; i++ {
			buf = buf[:0]
			null := false
			for _, f := range fns {
				v, err := f(in, i)
				if err != nil {
					return err
				}
				if v.IsNull() {
					null = true
					break
				}
				buf = v.AppendKey(buf)
			}
			if null {
				keys[i] = "" // NULL keys never match
			} else {
				keys[i] = string(buf)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return keys, nil
}

// hashKey is FNV-1a over the string key, used to partition the build side
// so workers can populate disjoint hash maps without locks.
func hashKey(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// joinTable is the build side of a hash join. With one partition it is the
// classic single map; with P partitions each key lives in partition
// hash(key) % P, so a parallel build assigns each worker a set of whole
// partitions and never takes a lock. Per-key index slices are ascending in
// either layout (partition builds scan the key slice in row order), which
// keeps probe output identical to the serial join.
type joinTable struct {
	parts []map[string][]int32
}

// buildJoinTable hashes the build side. A done ctx stops the partition
// workers early and leaves the table incomplete — callers must check the
// query context (ec.check) before trusting the result.
func buildJoinTable(ctx context.Context, keys []string, degree int) *joinTable {
	if degree <= 1 {
		m := make(map[string][]int32, len(keys))
		for i, k := range keys {
			if k == "" {
				continue
			}
			m[k] = append(m[k], int32(i))
		}
		return &joinTable{parts: []map[string][]int32{m}}
	}
	p := degree
	hs := make([]uint32, len(keys))
	par.RunCtx(ctx, degree, len(keys), morselRows, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			if keys[i] != "" {
				hs[i] = hashKey(keys[i])
			}
		}
	})
	parts := make([]map[string][]int32, p)
	par.RunCtx(ctx, degree, p, 1, func(_, lo, hi int) {
		for pi := lo; pi < hi; pi++ {
			m := make(map[string][]int32, len(keys)/p+1)
			for i, k := range keys {
				if k == "" || int(hs[i]%uint32(p)) != pi {
					continue
				}
				m[k] = append(m[k], int32(i))
			}
			parts[pi] = m
		}
	})
	return &joinTable{parts: parts}
}

func (t *joinTable) lookup(k string) []int32 {
	if len(t.parts) == 1 {
		return t.parts[0][k]
	}
	return t.parts[hashKey(k)%uint32(len(t.parts))][k]
}

// probeJoin probes pKeys against the build table, morsel by morsel. Each
// morsel collects its matched (probe, build) index pairs locally; the
// per-morsel buffers are concatenated in morsel order, reproducing the
// serial probe loop's output order exactly. With outer=true, probe rows
// with no match emit one pair with build index -1 (NULL padding). A done
// ctx stops the probe early; callers discard the partial result via their
// query-context check.
func probeJoin(ctx context.Context, ht *joinTable, pKeys []string, deg int, outer bool) ([]int, []int, par.Stats) {
	n := len(pKeys)
	type pairs struct{ p, b []int }
	morsels := (n + morselRows - 1) / morselRows
	out := make([]pairs, morsels)
	stats := par.RunCtx(ctx, deg, n, morselRows, func(_, lo, hi int) {
		var pr pairs
		for pi := lo; pi < hi; pi++ {
			k := pKeys[pi]
			if k == "" {
				if outer {
					pr.p = append(pr.p, pi)
					pr.b = append(pr.b, -1)
				}
				continue
			}
			matches := ht.lookup(k)
			if len(matches) == 0 {
				if outer {
					pr.p = append(pr.p, pi)
					pr.b = append(pr.b, -1)
				}
				continue
			}
			for _, bi := range matches {
				pr.p = append(pr.p, pi)
				pr.b = append(pr.b, int(bi))
			}
		}
		out[lo/morselRows] = pr
	})
	total := 0
	for _, pr := range out {
		total += len(pr.p)
	}
	pIdx := make([]int, 0, total)
	bIdx := make([]int, 0, total)
	for _, pr := range out {
		pIdx = append(pIdx, pr.p...)
		bIdx = append(bIdx, pr.b...)
	}
	return pIdx, bIdx, stats
}

// hashJoin is the classic build/probe equi-join: build on the smaller side,
// probe from the larger. Both phases are morsel-parallel — the build via
// hash-partitioned sub-tables, the probe via per-morsel match buffers
// concatenated in morsel order — and produce the same match list as the
// serial loops.
func (db *DB) hashJoin(left, right *Result, j *LJoin, ec *execCtx) (*Result, error) {
	start := time.Now()
	lKeys, err := db.joinKeys(left, j.EquiL, ec)
	if err != nil {
		return nil, err
	}
	rKeys, err := db.joinKeys(right, j.EquiR, ec)
	if err != nil {
		return nil, err
	}
	buildLeft := left.NumRows() <= right.NumRows()
	var bKeys, pKeys []string
	if buildLeft {
		bKeys, pKeys = lKeys, rKeys
	} else {
		bKeys, pKeys = rKeys, lKeys
	}
	ht := buildJoinTable(ec.ctx, bKeys, ec.parDegreeFor(len(bKeys)))
	pIdx, bIdx, stats := probeJoin(ec.ctx, ht, pKeys, ec.parDegreeFor(len(pKeys)), false)
	db.notePar(ec, stats)
	if err := ec.check(); err != nil {
		return nil, err // build/probe may be partial after cancellation
	}
	var lIdx, rIdx []int
	if buildLeft {
		lIdx, rIdx = bIdx, pIdx
	} else {
		lIdx, rIdx = pIdx, bIdx
	}
	out := gatherJoin(left, right, lIdx, rIdx)
	ec.profAdd(OpJoin, out.NumRows(), start)
	if len(j.Residual) > 0 {
		return db.execFilter(out, j.Residual, ec, OpFilter)
	}
	return out, nil
}

// leftOuterHashJoin builds on the right side and probes from the left;
// unmatched left rows are emitted once with NULL-padded right columns.
func (db *DB) leftOuterHashJoin(left, right *Result, j *LJoin, ec *execCtx) (*Result, error) {
	start := time.Now()
	lKeys, err := db.joinKeys(left, j.EquiL, ec)
	if err != nil {
		return nil, err
	}
	rKeys, err := db.joinKeys(right, j.EquiR, ec)
	if err != nil {
		return nil, err
	}
	ht := buildJoinTable(ec.ctx, rKeys, ec.parDegreeFor(len(rKeys)))
	lIdx, rIdx, stats := probeJoin(ec.ctx, ht, lKeys, ec.parDegreeFor(len(lKeys)), true)
	db.notePar(ec, stats)
	if err := ec.check(); err != nil {
		return nil, err // build/probe may be partial after cancellation
	}
	out := gatherJoin(left, right, lIdx, rIdx)
	ec.profAdd(OpJoin, out.NumRows(), start)
	if len(j.Residual) > 0 {
		return db.execFilter(out, j.Residual, ec, OpFilter)
	}
	return out, nil
}

// symmetricHashJoin implements the paper's hint rule 3: both inputs are
// consumed incrementally (block-at-a-time here), each row is inserted into
// its side's hash table and immediately probed against the other side's
// table. With one side being nUDF outputs arriving in batches, this starts
// producing joined tuples before either side is complete. The LRU bucket
// behaviour of the paper is modelled by processing in bucket-grouped order.
// The alternating insert/probe schedule is inherently sequential, so this
// join always runs serially (its key evaluation still parallelizes).
func (db *DB) symmetricHashJoin(left, right *Result, j *LJoin, ec *execCtx) (*Result, error) {
	start := time.Now()
	lKeys, err := db.joinKeys(left, j.EquiL, ec)
	if err != nil {
		return nil, err
	}
	rKeys, err := db.joinKeys(right, j.EquiR, ec)
	if err != nil {
		return nil, err
	}
	lHT := make(map[string][]int32)
	rHT := make(map[string][]int32)
	var lIdx, rIdx []int
	ln, rn := left.NumRows(), right.NumRows()
	max := ln
	if rn > max {
		max = rn
	}
	// Alternate consuming one row from each side (the streaming schedule).
	// The schedule is inherently serial, so the cancellation point is a
	// ctx check every morselRows iterations.
	for i := 0; i < max; i++ {
		if i%morselRows == 0 {
			if err := ec.check(); err != nil {
				return nil, err
			}
		}
		if i < ln && lKeys[i] != "" {
			k := lKeys[i]
			for _, ri := range rHT[k] {
				lIdx = append(lIdx, i)
				rIdx = append(rIdx, int(ri))
			}
			lHT[k] = append(lHT[k], int32(i))
		}
		if i < rn && rKeys[i] != "" {
			k := rKeys[i]
			for _, li := range lHT[k] {
				lIdx = append(lIdx, int(li))
				rIdx = append(rIdx, i)
			}
			rHT[k] = append(rHT[k], int32(i))
		}
	}
	out := gatherJoin(left, right, lIdx, rIdx)
	ec.profAdd(OpJoin, out.NumRows(), start)
	if len(j.Residual) > 0 {
		return db.execFilter(out, j.Residual, ec, OpFilter)
	}
	return out, nil
}

// nestedLoopJoin handles joins without equi conditions (cross joins and
// non-equi predicates such as the paper's Type 4
// `F.patternID != nUDF_recog(V.keyframe)`). The cross product is fanned
// out over left-row morsels; each morsel's pair block is a contiguous,
// position-computable slice of the full product, so workers write disjoint
// regions of the final index slices directly.
func (db *DB) nestedLoopJoin(left, right *Result, residual []Expr, ec *execCtx) (*Result, error) {
	start := time.Now()
	ln, rn := left.NumRows(), right.NumRows()
	lIdx := make([]int, ln*rn)
	rIdx := make([]int, ln*rn)
	deg := 1
	if rn > 0 {
		deg = ec.parDegreeFor(ln * rn)
	}
	morsel := morselRows / (rn + 1)
	if morsel < 1 {
		morsel = 1
	}
	stats := par.RunCtx(ec.ctx, deg, ln, morsel, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			base := i * rn
			for k := 0; k < rn; k++ {
				lIdx[base+k] = i
				rIdx[base+k] = k
			}
		}
	})
	db.notePar(ec, stats)
	if err := ec.check(); err != nil {
		return nil, err // the cross-product fill may be partial
	}
	out := gatherJoin(left, right, lIdx, rIdx)
	ec.profAdd(OpJoin, out.NumRows(), start)
	if len(residual) > 0 {
		return db.execFilter(out, residual, ec, OpFilter)
	}
	return out, nil
}

// gatherJoin materializes the joined result from matched index pairs.
func gatherJoin(left, right *Result, lIdx, rIdx []int) *Result {
	out := &Result{
		Schema: make([]OutCol, 0, len(left.Schema)+len(right.Schema)),
		Cols:   make([]*Column, 0, len(left.Cols)+len(right.Cols)),
	}
	out.Schema = append(out.Schema, left.Schema...)
	out.Schema = append(out.Schema, right.Schema...)
	for _, c := range left.Cols {
		out.Cols = append(out.Cols, c.Gather(lIdx))
	}
	for _, c := range right.Cols {
		out.Cols = append(out.Cols, c.Gather(rIdx))
	}
	return out
}
