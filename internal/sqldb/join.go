package sqldb

import (
	"time"
)

// execJoin dispatches to the hash, symmetric-hash, or nested-loop join.
func (db *DB) execJoin(j *LJoin, ec *execCtx) (*Result, error) {
	prof := ec.prof
	left, err := db.execPlan(j.L, ec)
	if err != nil {
		return nil, err
	}
	right, err := db.execPlan(j.R, ec)
	if err != nil {
		return nil, err
	}
	switch {
	case j.LeftOuter:
		return db.leftOuterHashJoin(left, right, j, prof)
	case len(j.EquiL) == 0:
		return db.nestedLoopJoin(left, right, j.Residual, prof)
	case j.Symmetric:
		return db.symmetricHashJoin(left, right, j, prof)
	default:
		return db.hashJoin(left, right, j, prof)
	}
}

// joinKeys evaluates the key expressions for every row of a side,
// concatenating multi-key values into one string key.
func (db *DB) joinKeys(in *Result, exprs []Expr) ([]string, error) {
	fns := make([]evalFn, len(exprs))
	for i, e := range exprs {
		f, err := db.compileExpr(e, in.Schema)
		if err != nil {
			return nil, err
		}
		fns[i] = f
	}
	n := in.NumRows()
	keys := make([]string, n)
	buf := make([]byte, 0, 64)
	for i := 0; i < n; i++ {
		buf = buf[:0]
		null := false
		for _, f := range fns {
			v, err := f(in, i)
			if err != nil {
				return nil, err
			}
			if v.IsNull() {
				null = true
				break
			}
			buf = v.AppendKey(buf)
		}
		if null {
			keys[i] = "" // NULL keys never match
		} else {
			keys[i] = string(buf)
		}
	}
	return keys, nil
}

// hashJoin is the classic build/probe equi-join: build on the smaller side,
// probe from the larger.
func (db *DB) hashJoin(left, right *Result, j *LJoin, prof *Profile) (*Result, error) {
	start := time.Now()
	lKeys, err := db.joinKeys(left, j.EquiL)
	if err != nil {
		return nil, err
	}
	rKeys, err := db.joinKeys(right, j.EquiR)
	if err != nil {
		return nil, err
	}
	buildLeft := left.NumRows() <= right.NumRows()
	var bKeys, pKeys []string
	if buildLeft {
		bKeys, pKeys = lKeys, rKeys
	} else {
		bKeys, pKeys = rKeys, lKeys
	}
	ht := make(map[string][]int32, len(bKeys))
	for i, k := range bKeys {
		if k == "" {
			continue
		}
		ht[k] = append(ht[k], int32(i))
	}
	var lIdx, rIdx []int
	for pi, k := range pKeys {
		if k == "" {
			continue
		}
		for _, bi := range ht[k] {
			if buildLeft {
				lIdx = append(lIdx, int(bi))
				rIdx = append(rIdx, pi)
			} else {
				lIdx = append(lIdx, pi)
				rIdx = append(rIdx, int(bi))
			}
		}
	}
	out := gatherJoin(left, right, lIdx, rIdx)
	prof.add(OpJoin, out.NumRows(), time.Since(start))
	if len(j.Residual) > 0 {
		return db.execFilter(out, j.Residual, prof, OpFilter)
	}
	return out, nil
}

// leftOuterHashJoin builds on the right side and probes from the left;
// unmatched left rows are emitted once with NULL-padded right columns.
func (db *DB) leftOuterHashJoin(left, right *Result, j *LJoin, prof *Profile) (*Result, error) {
	start := time.Now()
	lKeys, err := db.joinKeys(left, j.EquiL)
	if err != nil {
		return nil, err
	}
	rKeys, err := db.joinKeys(right, j.EquiR)
	if err != nil {
		return nil, err
	}
	ht := make(map[string][]int32, len(rKeys))
	for i, k := range rKeys {
		if k == "" {
			continue
		}
		ht[k] = append(ht[k], int32(i))
	}
	var lIdx, rIdx []int
	for li, k := range lKeys {
		matches := ht[k]
		if k == "" || len(matches) == 0 {
			lIdx = append(lIdx, li)
			rIdx = append(rIdx, -1)
			continue
		}
		for _, ri := range matches {
			lIdx = append(lIdx, li)
			rIdx = append(rIdx, int(ri))
		}
	}
	out := gatherJoin(left, right, lIdx, rIdx)
	prof.add(OpJoin, out.NumRows(), time.Since(start))
	if len(j.Residual) > 0 {
		return db.execFilter(out, j.Residual, prof, OpFilter)
	}
	return out, nil
}

// symmetricHashJoin implements the paper's hint rule 3: both inputs are
// consumed incrementally (block-at-a-time here), each row is inserted into
// its side's hash table and immediately probed against the other side's
// table. With one side being nUDF outputs arriving in batches, this starts
// producing joined tuples before either side is complete. The LRU bucket
// behaviour of the paper is modelled by processing in bucket-grouped order.
func (db *DB) symmetricHashJoin(left, right *Result, j *LJoin, prof *Profile) (*Result, error) {
	start := time.Now()
	lKeys, err := db.joinKeys(left, j.EquiL)
	if err != nil {
		return nil, err
	}
	rKeys, err := db.joinKeys(right, j.EquiR)
	if err != nil {
		return nil, err
	}
	lHT := make(map[string][]int32)
	rHT := make(map[string][]int32)
	var lIdx, rIdx []int
	ln, rn := left.NumRows(), right.NumRows()
	max := ln
	if rn > max {
		max = rn
	}
	// Alternate consuming one row from each side (the streaming schedule).
	for i := 0; i < max; i++ {
		if i < ln && lKeys[i] != "" {
			k := lKeys[i]
			for _, ri := range rHT[k] {
				lIdx = append(lIdx, i)
				rIdx = append(rIdx, int(ri))
			}
			lHT[k] = append(lHT[k], int32(i))
		}
		if i < rn && rKeys[i] != "" {
			k := rKeys[i]
			for _, li := range lHT[k] {
				lIdx = append(lIdx, int(li))
				rIdx = append(rIdx, i)
			}
			rHT[k] = append(rHT[k], int32(i))
		}
	}
	out := gatherJoin(left, right, lIdx, rIdx)
	prof.add(OpJoin, out.NumRows(), time.Since(start))
	if len(j.Residual) > 0 {
		return db.execFilter(out, j.Residual, prof, OpFilter)
	}
	return out, nil
}

// nestedLoopJoin handles joins without equi conditions (cross joins and
// non-equi predicates such as the paper's Type 4
// `F.patternID != nUDF_recog(V.keyframe)`).
func (db *DB) nestedLoopJoin(left, right *Result, residual []Expr, prof *Profile) (*Result, error) {
	start := time.Now()
	ln, rn := left.NumRows(), right.NumRows()
	var lIdx, rIdx []int
	for i := 0; i < ln; i++ {
		for k := 0; k < rn; k++ {
			lIdx = append(lIdx, i)
			rIdx = append(rIdx, k)
		}
	}
	out := gatherJoin(left, right, lIdx, rIdx)
	prof.add(OpJoin, out.NumRows(), time.Since(start))
	if len(residual) > 0 {
		return db.execFilter(out, residual, prof, OpFilter)
	}
	return out, nil
}

// gatherJoin materializes the joined result from matched index pairs.
func gatherJoin(left, right *Result, lIdx, rIdx []int) *Result {
	out := &Result{
		Schema: make([]OutCol, 0, len(left.Schema)+len(right.Schema)),
		Cols:   make([]*Column, 0, len(left.Cols)+len(right.Cols)),
	}
	out.Schema = append(out.Schema, left.Schema...)
	out.Schema = append(out.Schema, right.Schema...)
	for _, c := range left.Cols {
		out.Cols = append(out.Cols, c.Gather(lIdx))
	}
	for _, c := range right.Cols {
		out.Cols = append(out.Cols, c.Gather(rIdx))
	}
	return out
}
