package sqldb

import (
	"math"
	"strings"
	"testing"
)

// mustExec runs SQL and fails the test on error.
func mustExec(t *testing.T, db *DB, sql string) *Result {
	t.Helper()
	res, err := db.Exec(sql)
	if err != nil {
		t.Fatalf("Exec(%q): %v", sql, err)
	}
	return res
}

func newTestDB(t *testing.T) *DB {
	t.Helper()
	db := New()
	db.Profile = NewProfile()
	mustExec(t, db, `CREATE TABLE emp (id Int64, name String, dept String, salary Float64, active Bool)`)
	mustExec(t, db, `INSERT INTO emp VALUES
		(1, 'alice', 'eng', 100.0, TRUE),
		(2, 'bob', 'eng', 90.0, TRUE),
		(3, 'carol', 'sales', 80.0, FALSE),
		(4, 'dave', 'sales', 70.0, TRUE),
		(5, 'eve', 'hr', 60.0, TRUE)`)
	return db
}

func TestCreateInsertSelect(t *testing.T) {
	db := newTestDB(t)
	res := mustExec(t, db, `SELECT id, name FROM emp WHERE salary > 75 ORDER BY id`)
	if res.NumRows() != 3 {
		t.Fatalf("rows = %d, want 3", res.NumRows())
	}
	if res.Cols[1].Get(0).S != "alice" || res.Cols[1].Get(2).S != "carol" {
		t.Fatalf("unexpected rows: %v %v", res.Cols[1].Get(0), res.Cols[1].Get(2))
	}
}

func TestSelectStar(t *testing.T) {
	db := newTestDB(t)
	res := mustExec(t, db, `SELECT * FROM emp`)
	if len(res.Schema) != 5 || res.NumRows() != 5 {
		t.Fatalf("star select: %d cols %d rows", len(res.Schema), res.NumRows())
	}
}

func TestWhereBoolLiterals(t *testing.T) {
	db := newTestDB(t)
	res := mustExec(t, db, `SELECT count(*) AS n FROM emp WHERE active = TRUE`)
	if res.Cols[0].Get(0).I != 4 {
		t.Fatalf("active count = %v", res.Cols[0].Get(0))
	}
	res = mustExec(t, db, `SELECT count(*) AS n FROM emp WHERE active = FALSE`)
	if res.Cols[0].Get(0).I != 1 {
		t.Fatalf("inactive count = %v", res.Cols[0].Get(0))
	}
}

func TestArithmeticAndAliases(t *testing.T) {
	db := newTestDB(t)
	res := mustExec(t, db, `SELECT salary * 2 AS double_pay, salary + 1 bump FROM emp WHERE id = 1`)
	if res.Cols[0].Get(0).F != 200 || res.Cols[1].Get(0).F != 101 {
		t.Fatalf("arith: %v %v", res.Cols[0].Get(0), res.Cols[1].Get(0))
	}
	if res.Schema[0].Name != "double_pay" || res.Schema[1].Name != "bump" {
		t.Fatalf("aliases: %+v", res.Schema)
	}
}

func TestIntegerDivisionYieldsFloat(t *testing.T) {
	db := newTestDB(t)
	res := mustExec(t, db, `SELECT 7 / 2 AS q`)
	if res.Cols[0].Get(0).F != 3.5 {
		t.Fatalf("7/2 = %v, want 3.5", res.Cols[0].Get(0))
	}
}

func TestDivisionByZeroIsNull(t *testing.T) {
	db := newTestDB(t)
	res := mustExec(t, db, `SELECT 1 / 0 AS q`)
	if !res.Cols[0].Get(0).IsNull() {
		t.Fatalf("1/0 = %v, want NULL", res.Cols[0].Get(0))
	}
}

func TestAggregates(t *testing.T) {
	db := newTestDB(t)
	res := mustExec(t, db, `SELECT count(*) c, sum(salary) s, avg(salary) a, min(salary) lo, max(salary) hi FROM emp`)
	row := res.GetRow(0)
	if row[0].I != 5 || row[1].F != 400 || row[2].F != 80 || row[3].F != 60 || row[4].F != 100 {
		t.Fatalf("aggregates: %v", row)
	}
}

func TestGroupBy(t *testing.T) {
	db := newTestDB(t)
	res := mustExec(t, db, `SELECT dept, count(*) n, avg(salary) a FROM emp GROUP BY dept ORDER BY dept`)
	if res.NumRows() != 3 {
		t.Fatalf("groups = %d", res.NumRows())
	}
	// eng, hr, sales alphabetical
	if res.Cols[0].Get(0).S != "eng" || res.Cols[1].Get(0).I != 2 || res.Cols[2].Get(0).F != 95 {
		t.Fatalf("eng group: %v", res.GetRow(0))
	}
	if res.Cols[0].Get(2).S != "sales" || res.Cols[2].Get(2).F != 75 {
		t.Fatalf("sales group: %v", res.GetRow(2))
	}
}

func TestGroupByExpressionArithmetic(t *testing.T) {
	db := newTestDB(t)
	// count()/sum() mixing two aggregates in one item, like the paper's
	// Type 2 query.
	res := mustExec(t, db, `SELECT dept, count(*) / sum(salary) AS ratio FROM emp GROUP BY dept ORDER BY dept`)
	if res.NumRows() != 3 {
		t.Fatalf("groups = %d", res.NumRows())
	}
	if math.Abs(res.Cols[1].Get(0).F-2.0/190.0) > 1e-12 {
		t.Fatalf("ratio = %v", res.Cols[1].Get(0))
	}
}

func TestHaving(t *testing.T) {
	db := newTestDB(t)
	res := mustExec(t, db, `SELECT dept, count(*) n FROM emp GROUP BY dept HAVING count(*) > 1 ORDER BY dept`)
	if res.NumRows() != 2 {
		t.Fatalf("having rows = %d", res.NumRows())
	}
}

func TestStddevSamp(t *testing.T) {
	db := newTestDB(t)
	res := mustExec(t, db, `SELECT stddevSamp(salary) s FROM emp`)
	// salaries 100,90,80,70,60: sample stddev = sqrt(250)
	want := math.Sqrt(250)
	if math.Abs(res.Cols[0].Get(0).F-want) > 1e-9 {
		t.Fatalf("stddevSamp = %v, want %v", res.Cols[0].Get(0).F, want)
	}
}

func TestCountDistinct(t *testing.T) {
	db := newTestDB(t)
	res := mustExec(t, db, `SELECT count(DISTINCT dept) d FROM emp`)
	if res.Cols[0].Get(0).I != 3 {
		t.Fatalf("count distinct = %v", res.Cols[0].Get(0))
	}
}

func TestEmptyAggregate(t *testing.T) {
	db := newTestDB(t)
	res := mustExec(t, db, `SELECT count(*) c, sum(salary) s FROM emp WHERE salary > 1000`)
	if res.NumRows() != 1 || res.Cols[0].Get(0).I != 0 || !res.Cols[1].Get(0).IsNull() {
		t.Fatalf("empty agg: %v", res.GetRow(0))
	}
}

func TestJoinTwoTables(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, `CREATE TABLE dept (name String, floor Int64)`)
	mustExec(t, db, `INSERT INTO dept VALUES ('eng', 3), ('sales', 1), ('hr', 2)`)
	res := mustExec(t, db, `SELECT e.name, d.floor FROM emp e, dept d WHERE e.dept = d.name AND e.salary >= 90 ORDER BY e.name`)
	if res.NumRows() != 2 {
		t.Fatalf("join rows = %d", res.NumRows())
	}
	if res.Cols[0].Get(0).S != "alice" || res.Cols[1].Get(0).I != 3 {
		t.Fatalf("join row 0: %v", res.GetRow(0))
	}
}

func TestInnerJoinOnSyntax(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, `CREATE TABLE dept (name String, floor Int64)`)
	mustExec(t, db, `INSERT INTO dept VALUES ('eng', 3), ('hr', 2)`)
	res := mustExec(t, db, `SELECT e.name FROM emp e INNER JOIN dept d ON e.dept = d.name ORDER BY e.name`)
	if res.NumRows() != 3 { // alice, bob, eve
		t.Fatalf("inner join rows = %d", res.NumRows())
	}
}

func TestThreeWayJoin(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, `CREATE TABLE dept (name String, bldg Int64)`)
	mustExec(t, db, `CREATE TABLE bldg (id Int64, city String)`)
	mustExec(t, db, `INSERT INTO dept VALUES ('eng', 1), ('sales', 2)`)
	mustExec(t, db, `INSERT INTO bldg VALUES (1, 'hz'), (2, 'sh')`)
	res := mustExec(t, db, `SELECT e.name, b.city FROM emp e, dept d, bldg b
		WHERE e.dept = d.name AND d.bldg = b.id ORDER BY e.id`)
	if res.NumRows() != 4 {
		t.Fatalf("3-way join rows = %d", res.NumRows())
	}
	if res.Cols[1].Get(0).S != "hz" || res.Cols[1].Get(3).S != "sh" {
		t.Fatalf("3-way join cities: %v %v", res.Cols[1].Get(0), res.Cols[1].Get(3))
	}
}

func TestNonEquiJoin(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, `CREATE TABLE grade (lo Float64, hi Float64, label String)`)
	mustExec(t, db, `INSERT INTO grade VALUES (0, 75, 'junior'), (75, 200, 'senior')`)
	res := mustExec(t, db, `SELECT e.name, g.label FROM emp e, grade g
		WHERE e.salary > g.lo AND e.salary <= g.hi ORDER BY e.id`)
	if res.NumRows() != 5 {
		t.Fatalf("non-equi join rows = %d", res.NumRows())
	}
	if res.Cols[1].Get(0).S != "senior" || res.Cols[1].Get(4).S != "junior" {
		t.Fatalf("labels: %v %v", res.Cols[1].Get(0), res.Cols[1].Get(4))
	}
}

func TestSubqueryInFrom(t *testing.T) {
	db := newTestDB(t)
	res := mustExec(t, db, `SELECT dept, n FROM (SELECT dept, count(*) AS n FROM emp GROUP BY dept) sub WHERE n > 1 ORDER BY dept`)
	if res.NumRows() != 2 {
		t.Fatalf("from-subquery rows = %d", res.NumRows())
	}
}

func TestScalarSubquery(t *testing.T) {
	db := newTestDB(t)
	res := mustExec(t, db, `SELECT name FROM emp WHERE salary > (SELECT avg(salary) FROM emp) ORDER BY name`)
	if res.NumRows() != 2 { // alice (100), bob (90) > 80
		t.Fatalf("scalar subquery rows = %d", res.NumRows())
	}
}

func TestBatchNormStyleQuery(t *testing.T) {
	// The paper's Q4 shape: (Value - AVG(...)) / (stddevSamp(...) + eps).
	db := New()
	db.Profile = NewProfile()
	mustExec(t, db, `CREATE TABLE fm (MatrixID Int64, OrderID Int64, Value Float64)`)
	mustExec(t, db, `INSERT INTO fm VALUES (1, 1, 1.0), (1, 2, 2.0), (1, 3, 3.0), (1, 4, 4.0)`)
	mustExec(t, db, `CREATE TEMP TABLE fm_bn AS
		SELECT MatrixID, OrderID,
			((Value - (SELECT AVG(Value) FROM fm)) / ((SELECT stddevSamp(Value) FROM fm) + 0.00005)) AS Value
		FROM fm`)
	res := mustExec(t, db, `SELECT Value FROM fm_bn ORDER BY OrderID`)
	std := math.Sqrt(5.0 / 3.0)
	want := (1.0 - 2.5) / (std + 0.00005)
	if math.Abs(res.Cols[0].Get(0).F-want) > 1e-12 {
		t.Fatalf("bn value = %v, want %v", res.Cols[0].Get(0).F, want)
	}
}

func TestCreateTempTableParenSelect(t *testing.T) {
	// Paper syntax: CREATE TEMP TABLE t(SELECT ...).
	db := newTestDB(t)
	mustExec(t, db, `CREATE TEMP TABLE rich(SELECT id, salary FROM emp WHERE salary >= 90)`)
	res := mustExec(t, db, `SELECT count(*) c FROM rich`)
	if res.Cols[0].Get(0).I != 2 {
		t.Fatalf("temp table rows = %v", res.Cols[0].Get(0))
	}
}

func TestCreateView(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, `CREATE VIEW engs AS SELECT id, name FROM emp WHERE dept = 'eng'`)
	res := mustExec(t, db, `SELECT count(*) c FROM engs`)
	if res.Cols[0].Get(0).I != 2 {
		t.Fatalf("view rows = %v", res.Cols[0].Get(0))
	}
	// Views track base-table changes.
	mustExec(t, db, `INSERT INTO emp VALUES (6, 'frank', 'eng', 85.0, TRUE)`)
	res = mustExec(t, db, `SELECT count(*) c FROM engs`)
	if res.Cols[0].Get(0).I != 3 {
		t.Fatalf("view rows after insert = %v", res.Cols[0].Get(0))
	}
}

func TestCreateViewParenSelect(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, `CREATE VIEW v(SELECT id FROM emp)`)
	res := mustExec(t, db, `SELECT count(*) c FROM v`)
	if res.Cols[0].Get(0).I != 5 {
		t.Fatalf("paren view rows = %v", res.Cols[0].Get(0))
	}
}

func TestUpdateReLUStyle(t *testing.T) {
	// The paper's ReLU: UPDATE cb_output SET Value = 0 WHERE Value < 0.
	db := New()
	db.Profile = NewProfile()
	mustExec(t, db, `CREATE TABLE cb_output (MatrixID Int64, Value Float64)`)
	mustExec(t, db, `INSERT INTO cb_output VALUES (1, -3.5), (2, 2.0), (3, -0.1), (4, 0.0)`)
	mustExec(t, db, `UPDATE cb_output SET Value = 0 WHERE Value < 0`)
	res := mustExec(t, db, `SELECT sum(Value) s, min(Value) m FROM cb_output`)
	if res.Cols[0].Get(0).F != 2.0 || res.Cols[1].Get(0).F != 0 {
		t.Fatalf("relu update: %v", res.GetRow(0))
	}
}

func TestDelete(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, `DELETE FROM emp WHERE dept = 'sales'`)
	res := mustExec(t, db, `SELECT count(*) c FROM emp`)
	if res.Cols[0].Get(0).I != 3 {
		t.Fatalf("after delete: %v", res.Cols[0].Get(0))
	}
}

func TestDropTable(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, `DROP TABLE emp`)
	if _, err := db.Exec(`SELECT * FROM emp`); err == nil {
		t.Fatal("expected error after drop")
	}
	mustExec(t, db, `DROP TABLE IF EXISTS emp`) // no error
	if _, err := db.Exec(`DROP TABLE emp`); err == nil {
		t.Fatal("expected error dropping missing table")
	}
}

func TestDistinct(t *testing.T) {
	db := newTestDB(t)
	res := mustExec(t, db, `SELECT DISTINCT dept FROM emp ORDER BY dept`)
	if res.NumRows() != 3 {
		t.Fatalf("distinct rows = %d", res.NumRows())
	}
}

func TestLimitOffset(t *testing.T) {
	db := newTestDB(t)
	res := mustExec(t, db, `SELECT id FROM emp ORDER BY id LIMIT 2 OFFSET 1`)
	if res.NumRows() != 2 || res.Cols[0].Get(0).I != 2 || res.Cols[0].Get(1).I != 3 {
		t.Fatalf("limit/offset: %v", res.Cols[0])
	}
}

func TestOrderByDesc(t *testing.T) {
	db := newTestDB(t)
	res := mustExec(t, db, `SELECT id FROM emp ORDER BY salary DESC LIMIT 1`)
	if res.Cols[0].Get(0).I != 1 {
		t.Fatalf("top salary id = %v", res.Cols[0].Get(0))
	}
}

func TestInBetweenCase(t *testing.T) {
	db := newTestDB(t)
	res := mustExec(t, db, `SELECT count(*) c FROM emp WHERE dept IN ('eng', 'hr')`)
	if res.Cols[0].Get(0).I != 3 {
		t.Fatalf("IN count = %v", res.Cols[0].Get(0))
	}
	res = mustExec(t, db, `SELECT count(*) c FROM emp WHERE salary BETWEEN 70 AND 90`)
	if res.Cols[0].Get(0).I != 3 {
		t.Fatalf("BETWEEN count = %v", res.Cols[0].Get(0))
	}
	res = mustExec(t, db, `SELECT CASE WHEN salary >= 90 THEN 'high' ELSE 'low' END AS band FROM emp ORDER BY id LIMIT 1`)
	if res.Cols[0].Get(0).S != "high" {
		t.Fatalf("CASE = %v", res.Cols[0].Get(0))
	}
}

func TestStringDateComparison(t *testing.T) {
	// Dates as ISO strings compare correctly, as the paper's queries assume.
	db := New()
	db.Profile = NewProfile()
	mustExec(t, db, `CREATE TABLE ev (d String)`)
	mustExec(t, db, `INSERT INTO ev VALUES ('2021-01-05'), ('2021-01-20'), ('2021-02-01')`)
	res := mustExec(t, db, `SELECT count(*) c FROM ev WHERE d > '2021-01-01' AND d < '2021-01-31'`)
	if res.Cols[0].Get(0).I != 2 {
		t.Fatalf("date range count = %v", res.Cols[0].Get(0))
	}
}

func TestBuiltinScalars(t *testing.T) {
	db := newTestDB(t)
	res := mustExec(t, db, `SELECT abs(-3.5) a, sqrt(16) b, greatest(1, 5, 3) c, least(2, -1) d, if(1 > 0, 'y', 'n') e, exp(0) f`)
	row := res.GetRow(0)
	if row[0].F != 3.5 || row[1].F != 4 || row[2].I != 5 || row[3].I != -1 || row[4].S != "y" || row[5].F != 1 {
		t.Fatalf("builtins: %v", row)
	}
}

func TestUDFRegistrationAndCall(t *testing.T) {
	db := newTestDB(t)
	db.RegisterUDF(&ScalarUDF{
		Name:  "doubler",
		Arity: 1,
		Fn: func(args []Datum) (Datum, error) {
			f, _ := args[0].AsFloat()
			return Float(f * 2), nil
		},
		Cost: 10,
	})
	res := mustExec(t, db, `SELECT doubler(salary) ds FROM emp WHERE id = 3`)
	if res.Cols[0].Get(0).F != 160 {
		t.Fatalf("udf = %v", res.Cols[0].Get(0))
	}
	if db.Profile.UDFCalls["doubler"] != 1 {
		t.Fatalf("udf call count = %d", db.Profile.UDFCalls["doubler"])
	}
}

func TestUDFInPredicate(t *testing.T) {
	db := newTestDB(t)
	calls := 0
	db.RegisterUDF(&ScalarUDF{
		Name:  "is_even",
		Arity: 1,
		Fn: func(args []Datum) (Datum, error) {
			calls++
			v, _ := args[0].AsInt()
			return Bool(v%2 == 0), nil
		},
		Cost: 1000,
	})
	res := mustExec(t, db, `SELECT count(*) c FROM emp WHERE is_even(id) AND salary > 0`)
	if res.Cols[0].Get(0).I != 2 {
		t.Fatalf("udf predicate count = %v", res.Cols[0].Get(0))
	}
	// The expensive UDF must be ordered after the cheap predicate; with
	// salary > 0 keeping everything, calls = 5 either way here, but the
	// predicate order is observable through the plan.
	if calls == 0 {
		t.Fatal("udf never called")
	}
}

func TestExpensiveUDFOrderedLast(t *testing.T) {
	db := newTestDB(t)
	calls := 0
	db.RegisterUDF(&ScalarUDF{
		Name:  "slow_check",
		Arity: 1,
		Fn: func(args []Datum) (Datum, error) {
			calls++
			return Bool(true), nil
		},
		Cost: 1e6,
	})
	// salary > 95 keeps only alice; the UDF should then run once, not 5x.
	res := mustExec(t, db, `SELECT count(*) c FROM emp WHERE slow_check(id) AND salary > 95`)
	if res.Cols[0].Get(0).I != 1 {
		t.Fatalf("count = %v", res.Cols[0].Get(0))
	}
	if calls != 1 {
		t.Fatalf("expensive UDF evaluated %d times, want 1 (should run after cheap filter)", calls)
	}
}

func TestDelayUDFsHint(t *testing.T) {
	db := newTestDB(t)
	calls := 0
	db.RegisterUDF(&ScalarUDF{
		Name:  "cheap_udf",
		Arity: 1,
		Fn: func(args []Datum) (Datum, error) {
			calls++
			return Bool(true), nil
		},
		Cost: 0.001, // so cheap the rank order would put it first
	})
	delay := true
	hints := &QueryHints{DelayUDFs: &delay, UDFCost: map[string]float64{"cheap_udf": 0.001}}
	res, err := db.ExecHinted(`SELECT count(*) c FROM emp WHERE cheap_udf(id) AND salary > 95`, hints)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cols[0].Get(0).I != 1 {
		t.Fatalf("count = %v", res.Cols[0].Get(0))
	}
	if calls != 1 {
		t.Fatalf("delayed UDF evaluated %d times, want 1", calls)
	}
}

func TestSymmetricJoinHint(t *testing.T) {
	db := newTestDB(t)
	db.RegisterUDF(&ScalarUDF{
		Name:  "ident",
		Arity: 1,
		Fn:    func(args []Datum) (Datum, error) { return args[0], nil },
		Cost:  100,
	})
	mustExec(t, db, `CREATE TABLE pat (pid Int64, label String)`)
	mustExec(t, db, `INSERT INTO pat VALUES (1, 'a'), (2, 'b'), (3, 'c')`)
	hints := &QueryHints{SymmetricJoin: true}
	res, err := db.ExecHinted(`SELECT e.name, p.label FROM emp e, pat p WHERE ident(e.id) = p.pid ORDER BY e.id`, hints)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 3 {
		t.Fatalf("symmetric join rows = %d", res.NumRows())
	}
	// Verify the plan actually chose the symmetric algorithm.
	plan, err := db.PlanSelect(`SELECT e.name FROM emp e, pat p WHERE ident(e.id) = p.pid`, hints)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(Explain(plan), "SymmetricHashJoin") {
		t.Fatalf("plan does not use symmetric join:\n%s", Explain(plan))
	}
}

func TestJoinOrderHint(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, `CREATE TABLE tiny (k Int64)`)
	mustExec(t, db, `INSERT INTO tiny VALUES (1)`)
	hints := &QueryHints{JoinOrder: []string{"e", "t"}}
	plan, err := db.PlanSelect(`SELECT e.name FROM emp e, tiny t WHERE e.id = t.k`, hints)
	if err != nil {
		t.Fatal(err)
	}
	// Forced order starts from emp despite tiny being smaller.
	exp := Explain(plan)
	engFirst := strings.Index(exp, "Scan emp")
	tinyAt := strings.Index(exp, "Scan tiny")
	if engFirst < 0 || tinyAt < 0 || engFirst > tinyAt {
		t.Fatalf("join order hint ignored:\n%s", exp)
	}
}

func TestProfileCollectsOperators(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, `SELECT dept, count(*) FROM emp WHERE salary > 0 GROUP BY dept`)
	if db.Profile.Ops[OpScan] == nil || db.Profile.Ops[OpGroupBy] == nil || db.Profile.Ops[OpFilter] == nil {
		t.Fatalf("profile missing operators: %v", db.Profile.String())
	}
}

func TestInsertSelect(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, `CREATE TABLE backup (id Int64, name String)`)
	mustExec(t, db, `INSERT INTO backup SELECT id, name FROM emp WHERE dept = 'eng'`)
	res := mustExec(t, db, `SELECT count(*) c FROM backup`)
	if res.Cols[0].Get(0).I != 2 {
		t.Fatalf("insert-select rows = %v", res.Cols[0].Get(0))
	}
}

func TestInsertColumnList(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, `INSERT INTO emp (id, name) VALUES (99, 'zed')`)
	res := mustExec(t, db, `SELECT dept FROM emp WHERE id = 99`)
	if !res.Cols[0].Get(0).IsNull() {
		t.Fatalf("unlisted column should be NULL, got %v", res.Cols[0].Get(0))
	}
}

func TestNullComparisons(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, `INSERT INTO emp (id, name) VALUES (100, 'nullguy')`)
	res := mustExec(t, db, `SELECT count(*) c FROM emp WHERE salary > 0`)
	if res.Cols[0].Get(0).I != 5 { // NULL salary row filtered out
		t.Fatalf("null filter count = %v", res.Cols[0].Get(0))
	}
	res = mustExec(t, db, `SELECT count(*) c FROM emp WHERE salary IS NULL`)
	if res.Cols[0].Get(0).I != 1 {
		t.Fatalf("IS NULL count = %v", res.Cols[0].Get(0))
	}
	res = mustExec(t, db, `SELECT count(salary) c FROM emp`)
	if res.Cols[0].Get(0).I != 5 { // count(col) skips NULLs
		t.Fatalf("count(col) = %v", res.Cols[0].Get(0))
	}
}

func TestParseErrors(t *testing.T) {
	db := newTestDB(t)
	for _, bad := range []string{
		`SELEC x FROM emp`,
		`SELECT FROM emp`,
		`SELECT * FROM`,
		`SELECT * FROM emp WHERE`,
		`CREATE TABLE`,
		`INSERT INTO emp VALUES (1`,
		`SELECT 'unterminated FROM emp`,
	} {
		if _, err := db.Exec(bad); err == nil {
			t.Fatalf("expected parse error for %q", bad)
		}
	}
}

func TestUnknownColumnAndTableErrors(t *testing.T) {
	db := newTestDB(t)
	if _, err := db.Exec(`SELECT nosuch FROM emp`); err == nil {
		t.Fatal("expected unknown column error")
	}
	if _, err := db.Exec(`SELECT * FROM nosuch`); err == nil {
		t.Fatal("expected unknown table error")
	}
	if _, err := db.Exec(`SELECT nosuchfn(1) FROM emp`); err == nil {
		t.Fatal("expected unknown function error")
	}
}

func TestAmbiguousColumnError(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, `CREATE TABLE emp2 (id Int64)`)
	mustExec(t, db, `INSERT INTO emp2 VALUES (1)`)
	if _, err := db.Exec(`SELECT id FROM emp, emp2 WHERE emp.id = emp2.id`); err == nil {
		t.Fatal("expected ambiguous column error")
	}
}

func TestMultiStatementExec(t *testing.T) {
	db := New()
	db.Profile = NewProfile()
	res := mustExec(t, db, `
		CREATE TABLE t (x Int64);
		INSERT INTO t VALUES (1), (2), (3);
		SELECT sum(x) s FROM t;
	`)
	if res.Cols[0].Get(0).I != 6 {
		t.Fatalf("multi-stmt result = %v", res.Cols[0].Get(0))
	}
}

func TestBlobStorage(t *testing.T) {
	db := New()
	db.Profile = NewProfile()
	tbl, err := db.CreateTable("media", Schema{{Name: "id", Type: TInt}, {Name: "frame", Type: TBlob}})
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.AppendRow([]Datum{Int(1), Blob([]byte{1, 2, 3})}); err != nil {
		t.Fatal(err)
	}
	res := mustExec(t, db, `SELECT length(frame) n FROM media`)
	if res.Cols[0].Get(0).I != 3 {
		t.Fatalf("blob length = %v", res.Cols[0].Get(0))
	}
}

func TestTableStatsDistinct(t *testing.T) {
	db := newTestDB(t)
	st := db.GetTable("emp").Stats()
	if st.Rows != 5 {
		t.Fatalf("stats rows = %d", st.Rows)
	}
	if st.Distinct["dept"] != 3 {
		t.Fatalf("dept distinct = %d", st.Distinct["dept"])
	}
	if st.Distinct["id"] != 5 {
		t.Fatalf("id distinct = %d", st.Distinct["id"])
	}
}

func TestEnsureIndex(t *testing.T) {
	db := newTestDB(t)
	idx, err := db.GetTable("emp").EnsureIndex("dept")
	if err != nil {
		t.Fatal(err)
	}
	if len(idx.Rows[Str("eng").GroupKey()]) != 2 {
		t.Fatalf("index eng rows = %v", idx.Rows[Str("eng").GroupKey()])
	}
	if _, err := db.GetTable("emp").EnsureIndex("nosuch"); err == nil {
		t.Fatal("expected error for missing column")
	}
}

func TestQueryRejectsNonSelect(t *testing.T) {
	db := newTestDB(t)
	if _, err := db.Query(`INSERT INTO emp VALUES (7, 'x', 'y', 1.0, TRUE)`); err == nil {
		t.Fatal("Query must reject non-SELECT")
	}
}

func TestCardOverrideChangesJoinOrder(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, `CREATE TABLE big (k Int64)`)
	for i := 0; i < 3; i++ {
		mustExec(t, db, `INSERT INTO big VALUES (1), (2), (3)`)
	}
	// Pretend emp is tiny and big is huge — override flips the greedy order.
	hints := &QueryHints{CardOverrides: map[string]float64{"emp": 1, "big": 1e9}}
	plan, err := db.PlanSelect(`SELECT e.name FROM emp e, big b WHERE e.id = b.k`, hints)
	if err != nil {
		t.Fatal(err)
	}
	exp := Explain(plan)
	if strings.Index(exp, "Scan emp") > strings.Index(exp, "Scan big") {
		t.Fatalf("card override not honored:\n%s", exp)
	}
}

func TestCaseInsensitiveIdentifiers(t *testing.T) {
	db := newTestDB(t)
	res := mustExec(t, db, `SELECT NAME FROM EMP WHERE ID = 1`)
	if res.Cols[0].Get(0).S != "alice" {
		t.Fatalf("case-insensitive lookup failed: %v", res.Cols[0].Get(0))
	}
}

func TestStringConcatOperator(t *testing.T) {
	db := newTestDB(t)
	res := mustExec(t, db, `SELECT name || '@co' em FROM emp WHERE id = 1`)
	if res.Cols[0].Get(0).S != "alice@co" {
		t.Fatalf("concat = %v", res.Cols[0].Get(0))
	}
}

func TestNotAndParens(t *testing.T) {
	db := newTestDB(t)
	res := mustExec(t, db, `SELECT count(*) c FROM emp WHERE NOT (dept = 'eng' OR dept = 'hr')`)
	if res.Cols[0].Get(0).I != 2 {
		t.Fatalf("NOT count = %v", res.Cols[0].Get(0))
	}
}

func TestArgMaxArgMin(t *testing.T) {
	db := newTestDB(t)
	res := mustExec(t, db, `SELECT argMax(name, salary) top, argMin(name, salary) bottom FROM emp`)
	if res.Cols[0].Get(0).S != "alice" || res.Cols[1].Get(0).S != "eve" {
		t.Fatalf("argMax/argMin: %v", res.GetRow(0))
	}
}

func TestArgMaxGrouped(t *testing.T) {
	db := newTestDB(t)
	res := mustExec(t, db, `SELECT dept, argMax(name, salary) best FROM emp GROUP BY dept ORDER BY dept`)
	if res.NumRows() != 3 {
		t.Fatalf("groups = %d", res.NumRows())
	}
	if res.Cols[1].Get(0).S != "alice" { // eng
		t.Fatalf("eng best = %v", res.Cols[1].Get(0))
	}
	if res.Cols[1].Get(2).S != "carol" { // sales
		t.Fatalf("sales best = %v", res.Cols[1].Get(2))
	}
}

func TestArgMaxWrongArity(t *testing.T) {
	db := newTestDB(t)
	if _, err := db.Exec(`SELECT argMax(name) FROM emp`); err == nil {
		t.Fatal("argMax with one argument must fail")
	}
}

func TestArgMaxEmptyIsNull(t *testing.T) {
	db := newTestDB(t)
	res := mustExec(t, db, `SELECT argMax(name, salary) m FROM emp WHERE salary > 1e9`)
	if !res.Cols[0].Get(0).IsNull() {
		t.Fatalf("empty argMax = %v", res.Cols[0].Get(0))
	}
}
