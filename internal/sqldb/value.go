// Package sqldb is an embedded, in-memory, column-oriented SQL engine — the
// repository's stand-in for the in-memory ClickHouse deployment the paper
// modifies. It provides columnar storage, a SQL dialect covering the paper's
// generated queries (CREATE TEMP TABLE ... AS SELECT, views, inner joins,
// grouped aggregation with stddevSamp, scalar subqueries, UPDATE), a
// cost-based optimizer with pluggable cardinality estimation and hint
// support, scalar UDF registration (the nUDF extension point), and
// per-operator execution profiling used by the paper's Fig. 10 experiment.
package sqldb

import (
	"encoding/binary"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Type is a column type.
type Type uint8

// Column types. Dates are carried as ISO-8601 strings, which preserve
// ordering under string comparison (the paper's queries only ever compare
// date literals).
const (
	TNull Type = iota
	TInt
	TFloat
	TString
	TBool
	TBlob
)

// String names the type as it appears in CREATE TABLE.
func (t Type) String() string {
	switch t {
	case TNull:
		return "NULL"
	case TInt:
		return "Int64"
	case TFloat:
		return "Float64"
	case TString:
		return "String"
	case TBool:
		return "Bool"
	case TBlob:
		return "Blob"
	}
	return fmt.Sprintf("Type(%d)", uint8(t))
}

// ParseType maps SQL type names (a ClickHouse-flavoured set plus common
// aliases) to engine types.
func ParseType(s string) (Type, error) {
	switch strings.ToLower(s) {
	case "int", "int8", "int16", "int32", "int64", "uint8", "uint16", "uint32", "uint64", "integer", "bigint":
		return TInt, nil
	case "float", "float32", "float64", "double", "real", "decimal":
		return TFloat, nil
	case "string", "text", "varchar", "date", "datetime":
		return TString, nil
	case "bool", "boolean":
		return TBool, nil
	case "blob", "bytes", "binary":
		return TBlob, nil
	}
	return TNull, fmt.Errorf("sqldb: unknown type %q", s)
}

// Datum is a single SQL value: a tagged union over the engine types.
type Datum struct {
	T Type
	I int64
	F float64
	S string
	B []byte
}

// Null returns the SQL NULL datum.
func Null() Datum { return Datum{T: TNull} }

// Int wraps an int64 as an Int64 datum.
func Int(v int64) Datum { return Datum{T: TInt, I: v} }

// Float wraps a float64 as a Float64 datum.
func Float(v float64) Datum { return Datum{T: TFloat, F: v} }

// Str wraps a string as a String datum.
func Str(v string) Datum { return Datum{T: TString, S: v} }

// Blob wraps a byte slice as a Blob datum (the slice is not copied).
func Blob(v []byte) Datum { return Datum{T: TBlob, B: v} }

// Bool wraps a bool as a Bool datum.
func Bool(v bool) Datum {
	if v {
		return Datum{T: TBool, I: 1}
	}
	return Datum{T: TBool}
}

// IsNull reports whether the datum is SQL NULL.
func (d Datum) IsNull() bool { return d.T == TNull }

// AsFloat coerces numeric and boolean data to float64.
func (d Datum) AsFloat() (float64, bool) {
	switch d.T {
	case TInt:
		return float64(d.I), true
	case TFloat:
		return d.F, true
	case TBool:
		return float64(d.I), true
	}
	return 0, false
}

// AsInt coerces numeric and boolean data to int64 (floats truncate).
func (d Datum) AsInt() (int64, bool) {
	switch d.T {
	case TInt, TBool:
		return d.I, true
	case TFloat:
		return int64(d.F), true
	}
	return 0, false
}

// AsBool interprets the datum as a SQL boolean.
func (d Datum) AsBool() (bool, bool) {
	switch d.T {
	case TBool, TInt:
		return d.I != 0, true
	case TFloat:
		return d.F != 0, true
	}
	return false, false
}

// Compare orders two data. NULL sorts first. Numeric types compare
// numerically across int/float/bool; otherwise types must match.
func Compare(a, b Datum) (int, error) {
	if a.IsNull() || b.IsNull() {
		switch {
		case a.IsNull() && b.IsNull():
			return 0, nil
		case a.IsNull():
			return -1, nil
		default:
			return 1, nil
		}
	}
	af, aNum := a.AsFloat()
	bf, bNum := b.AsFloat()
	if aNum && bNum {
		switch {
		case af < bf:
			return -1, nil
		case af > bf:
			return 1, nil
		default:
			return 0, nil
		}
	}
	if a.T == TString && b.T == TString {
		return strings.Compare(a.S, b.S), nil
	}
	if a.T == TBlob && b.T == TBlob {
		return strings.Compare(string(a.B), string(b.B)), nil
	}
	return 0, fmt.Errorf("sqldb: cannot compare %s with %s", a.T, b.T)
}

// Equal reports SQL equality (NULL equals nothing, including NULL).
func Equal(a, b Datum) bool {
	if a.IsNull() || b.IsNull() {
		return false
	}
	c, err := Compare(a, b)
	return err == nil && c == 0
}

// AppendKey appends a binary hash key for the datum to b and returns the
// extended slice. Distinct values map to distinct keys within a type class;
// ints and equal-valued floats intentionally collide so numeric equality
// works across the int/float boundary. The encoding is self-delimiting, so
// multi-column keys can be appended back to back. This is the hot path of
// hash joins and hash aggregation — no formatting, just fixed-width bytes.
func (d Datum) AppendKey(b []byte) []byte {
	switch d.T {
	case TNull:
		return append(b, 0)
	case TInt, TBool:
		return appendIntKey(b, d.I)
	case TFloat:
		if d.F == float64(int64(d.F)) {
			return appendIntKey(b, int64(d.F))
		}
		var buf [9]byte
		buf[0] = 2
		binary.LittleEndian.PutUint64(buf[1:], math.Float64bits(d.F))
		return append(b, buf[:]...)
	case TString:
		b = append(b, 3)
		var l [4]byte
		binary.LittleEndian.PutUint32(l[:], uint32(len(d.S)))
		b = append(b, l[:]...)
		return append(b, d.S...)
	case TBlob:
		b = append(b, 4)
		var l [4]byte
		binary.LittleEndian.PutUint32(l[:], uint32(len(d.B)))
		b = append(b, l[:]...)
		return append(b, d.B...)
	}
	return append(b, 5)
}

func appendIntKey(b []byte, v int64) []byte {
	var buf [9]byte
	buf[0] = 1
	binary.LittleEndian.PutUint64(buf[1:], uint64(v))
	return append(b, buf[:]...)
}

// GroupKey renders the datum's hash key as a string (convenience wrapper
// over AppendKey for index structures).
func (d Datum) GroupKey() string {
	return string(d.AppendKey(nil))
}

// String renders the datum for result display.
func (d Datum) String() string {
	switch d.T {
	case TNull:
		return "NULL"
	case TInt:
		return strconv.FormatInt(d.I, 10)
	case TFloat:
		return strconv.FormatFloat(d.F, 'g', -1, 64)
	case TString:
		return d.S
	case TBool:
		if d.I != 0 {
			return "true"
		}
		return "false"
	case TBlob:
		return fmt.Sprintf("<blob %dB>", len(d.B))
	}
	return "?"
}
