package sqldb

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestProfileConcurrentAddMerge hammers add/noteUDF/Merge/String from many
// goroutines; run with -race to verify the locking discipline.
func TestProfileConcurrentAddMerge(t *testing.T) {
	p := NewProfile()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			o := NewProfile()
			for i := 0; i < 200; i++ {
				p.add(OpScan, 1, time.Microsecond)
				p.noteUDF("nudf_detect")
				o.add(OpJoin, 2, time.Microsecond)
				if i%50 == 0 {
					p.Merge(o)
					_ = p.String()
				}
			}
			p.Merge(o)
		}()
	}
	wg.Wait()
	if got := p.Ops[OpScan].Calls; got != 8*200 {
		t.Fatalf("scan calls = %d, want %d", got, 8*200)
	}
	if got := p.UDFCalls["nudf_detect"]; got != 8*200 {
		t.Fatalf("udf calls = %d, want %d", got, 8*200)
	}
}

// TestProfileReset verifies a session profile can be zeroed between
// queries without replacing the *Profile pointer other code holds.
func TestProfileReset(t *testing.T) {
	db := New()
	db.Profile = NewProfile()
	if _, err := db.Exec("CREATE TABLE t (x Int64)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO t VALUES (1),(2),(3)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("SELECT * FROM t"); err != nil {
		t.Fatal(err)
	}
	if len(db.Profile.Ops) == 0 {
		t.Fatal("profile recorded nothing")
	}
	db.Profile.Reset()
	if len(db.Profile.Ops) != 0 || len(db.Profile.UDFCalls) != 0 {
		t.Fatalf("reset left state behind: %+v", db.Profile.Ops)
	}
	// The same pointer keeps accumulating after a reset.
	if _, err := db.Exec("SELECT * FROM t WHERE x > 1"); err != nil {
		t.Fatal(err)
	}
	if db.Profile.Ops[OpScan] == nil {
		t.Fatal("profile dead after reset")
	}
	var nilProf *Profile
	nilProf.Reset() // must not panic
}

// TestQueryOperatorSpans checks that attaching a tracer to the DB produces
// one query root span with nested per-operator children, and that the
// export is Chrome-loadable JSON.
func TestQueryOperatorSpans(t *testing.T) {
	db := New()
	for _, sql := range []string{
		"CREATE TABLE a (id Int64, v Float64)",
		"CREATE TABLE b (id Int64, w Float64)",
		"INSERT INTO a VALUES (1, 1.5), (2, 2.5), (3, 3.5)",
		"INSERT INTO b VALUES (1, 9.0), (2, 8.0)",
	} {
		if _, err := db.Exec(sql); err != nil {
			t.Fatal(err)
		}
	}
	db.Tracer = obs.New()
	if _, err := db.Exec("SELECT a.v, b.w FROM a, b WHERE a.id = b.id AND a.v > 1"); err != nil {
		t.Fatal(err)
	}
	roots := db.Tracer.Roots()
	if len(roots) != 1 || roots[0].Name != "query" {
		t.Fatalf("roots = %+v, want one query span", roots)
	}
	for _, name := range []string{"Scan a", "Scan b", "HashJoin", "Project"} {
		if db.Tracer.FindSpan(name) == nil {
			t.Fatalf("missing operator span %q in:\n%s", name, db.Tracer.Tree())
		}
	}
	join := db.Tracer.FindSpan("HashJoin")
	if len(join.Children()) != 2 {
		t.Fatalf("join span has %d children, want its two scans:\n%s",
			len(join.Children()), db.Tracer.Tree())
	}
	var buf bytes.Buffer
	if err := db.Tracer.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("trace export not valid JSON: %v", err)
	}
	if len(events) < 5 {
		t.Fatalf("trace export has %d events, want >=5", len(events))
	}
	// Row counts ride along as span attributes.
	found := false
	for _, a := range join.Attrs() {
		if a.Key == "rows" {
			found = true
		}
	}
	if !found {
		t.Fatal("join span missing rows attribute")
	}
	// Detaching the tracer restores the silent fast path.
	db.Tracer = nil
	if _, err := db.Exec("SELECT * FROM a"); err != nil {
		t.Fatal(err)
	}
}

// TestExplainAnalyzeTreeMatchesProfile sanity-checks that per-node actuals
// agree with the result cardinality.
func TestExplainAnalyzeTreeMatchesProfile(t *testing.T) {
	db := New()
	if _, err := db.Exec("CREATE TABLE n (x Int64)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := db.Exec("INSERT INTO n VALUES (1)"); err != nil {
			t.Fatal(err)
		}
	}
	res, err := db.Exec("EXPLAIN ANALYZE SELECT x FROM n WHERE x = 1")
	if err != nil {
		t.Fatal(err)
	}
	out := ""
	for i := 0; i < res.NumRows(); i++ {
		out += res.Cols[0].Get(i).String() + "\n"
	}
	if !strings.Contains(out, "actual rows=20") {
		t.Fatalf("actual row count not reported:\n%s", out)
	}
}
