package sqldb

import (
	"fmt"
	"strconv"
	"strings"
)

// ---- Expressions ----

// Expr is a parsed SQL expression node.
type Expr interface {
	exprNode()
	String() string
}

// ColRef references a column, optionally qualified by a table alias.
type ColRef struct {
	Table string // optional qualifier
	Name  string
}

// Lit is a literal constant.
type Lit struct{ Val Datum }

// Param is a positional `?` placeholder. Idx is the zero-based position in
// statement order; values are bound at execution time through a Prepared
// statement, so one cached plan serves every binding.
type Param struct{ Idx int }

// BinExpr is a binary operation: arithmetic, comparison, AND/OR, string ||.
type BinExpr struct {
	Op   string
	L, R Expr
}

// UnaryExpr is NOT or unary minus.
type UnaryExpr struct {
	Op string
	E  Expr
}

// FuncCall is a scalar or aggregate function invocation; Distinct is set for
// COUNT(DISTINCT x). Star marks COUNT(*).
type FuncCall struct {
	Name     string
	Args     []Expr
	Distinct bool
	Star     bool
}

// CaseExpr is CASE WHEN ... THEN ... [ELSE ...] END.
type CaseExpr struct {
	Whens []WhenClause
	Else  Expr
}

// WhenClause is one WHEN/THEN branch of a CASE.
type WhenClause struct {
	Cond Expr
	Then Expr
}

// InExpr is `x IN (a, b, c)`, `x NOT IN (...)`, or `x IN (SELECT ...)`
// (Sub set, List nil; the planner materializes the uncorrelated subquery).
type InExpr struct {
	E    Expr
	List []Expr
	Sub  *SelectStmt
	Not  bool
}

// BetweenExpr is `x BETWEEN lo AND hi`.
type BetweenExpr struct {
	E, Lo, Hi Expr
	Not       bool
}

// SubqueryExpr is a scalar subquery used as a value.
type SubqueryExpr struct{ Query *SelectStmt }

// IsNullExpr is `x IS [NOT] NULL`.
type IsNullExpr struct {
	E   Expr
	Not bool
}

func (*ColRef) exprNode()       {}
func (*Lit) exprNode()          {}
func (*Param) exprNode()        {}
func (*BinExpr) exprNode()      {}
func (*UnaryExpr) exprNode()    {}
func (*FuncCall) exprNode()     {}
func (*CaseExpr) exprNode()     {}
func (*InExpr) exprNode()       {}
func (*BetweenExpr) exprNode()  {}
func (*SubqueryExpr) exprNode() {}
func (*IsNullExpr) exprNode()   {}

// String renders the ColRef as SQL text (the parser round-trips it).
func (e *ColRef) String() string {
	if e.Table != "" {
		return e.Table + "." + e.Name
	}
	return e.Name
}

// String renders the Lit as SQL text (the parser round-trips it).
func (e *Lit) String() string {
	if e.Val.T == TString {
		// Escape backslashes before doubling quotes: the lexer treats \ as
		// an escape inside string literals, so a bare \ in the value would
		// swallow the closing quote on re-parse (found by FuzzParse).
		s := strings.ReplaceAll(e.Val.S, `\`, `\\`)
		return "'" + strings.ReplaceAll(s, "'", "''") + "'"
	}
	if e.Val.T == TFloat {
		// Keep float syntax visible: -0E0 folds to the float -0.0, whose
		// shortest rendering "-0" would re-parse as the integer 0 (found by
		// FuzzParse). Integral-looking floats get an explicit ".0".
		s := strconv.FormatFloat(e.Val.F, 'g', -1, 64)
		if !strings.ContainsAny(s, ".eE") {
			s += ".0"
		}
		return s
	}
	return e.Val.String()
}

// String renders the Param as SQL text (the parser round-trips it).
func (e *Param) String() string { return "?" }

// String renders the BinExpr as SQL text (the parser round-trips it).
func (e *BinExpr) String() string {
	return "(" + e.L.String() + " " + e.Op + " " + e.R.String() + ")"
}

// String renders the UnaryExpr as SQL text (the parser round-trips it).
func (e *UnaryExpr) String() string { return e.Op + " " + e.E.String() }

// String renders the FuncCall as SQL text (the parser round-trips it).
func (e *FuncCall) String() string {
	if e.Star {
		return e.Name + "(*)"
	}
	args := make([]string, len(e.Args))
	for i, a := range e.Args {
		args[i] = a.String()
	}
	d := ""
	if e.Distinct {
		d = "DISTINCT "
	}
	return e.Name + "(" + d + strings.Join(args, ", ") + ")"
}

// String renders the CaseExpr as SQL text (the parser round-trips it).
func (e *CaseExpr) String() string {
	var sb strings.Builder
	sb.WriteString("CASE")
	for _, w := range e.Whens {
		fmt.Fprintf(&sb, " WHEN %s THEN %s", w.Cond, w.Then)
	}
	if e.Else != nil {
		fmt.Fprintf(&sb, " ELSE %s", e.Else)
	}
	sb.WriteString(" END")
	return sb.String()
}

// String renders the InExpr as SQL text (the parser round-trips it).
func (e *InExpr) String() string {
	not := ""
	if e.Not {
		not = " NOT"
	}
	if e.Sub != nil {
		return e.E.String() + not + " IN (" + e.Sub.String() + ")"
	}
	items := make([]string, len(e.List))
	for i, x := range e.List {
		items[i] = x.String()
	}
	return e.E.String() + not + " IN (" + strings.Join(items, ", ") + ")"
}

// String renders the BetweenExpr as SQL text (the parser round-trips it).
func (e *BetweenExpr) String() string {
	not := ""
	if e.Not {
		not = " NOT"
	}
	return e.E.String() + not + " BETWEEN " + e.Lo.String() + " AND " + e.Hi.String()
}

// String renders the SubqueryExpr as SQL text (the parser round-trips it).
func (e *SubqueryExpr) String() string { return "(" + e.Query.String() + ")" }

// String renders the IsNullExpr as SQL text (the parser round-trips it).
func (e *IsNullExpr) String() string {
	if e.Not {
		return e.E.String() + " IS NOT NULL"
	}
	return e.E.String() + " IS NULL"
}

// ---- Statements ----

// Stmt is any parsed SQL statement.
type Stmt interface {
	stmtNode()
	String() string
}

// SelectItem is one projection, optionally aliased.
type SelectItem struct {
	Expr  Expr
	Alias string
	Star  bool // SELECT *
}

// TableRef is one FROM item: a base table, a subquery, or a join tree built
// by the parser from comma-joins and INNER JOIN ... ON.
type TableRef struct {
	// Base table
	Table string
	Alias string
	// Subquery in FROM
	Sub *SelectStmt
	// Join node
	Join *JoinRef
}

// JoinRef is a binary join of two table refs with an optional ON condition
// (comma joins have Cond == nil; their predicate arrives via WHERE). Left
// marks a LEFT OUTER JOIN.
type JoinRef struct {
	L, R *TableRef
	Cond Expr
	Left bool
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// SelectStmt is a parsed SELECT.
type SelectStmt struct {
	Distinct bool
	Items    []SelectItem
	From     *TableRef // nil for FROM-less selects
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
	Limit    int // -1 when absent
	Offset   int
	// UnionAll chains additional SELECTs whose rows are appended to this
	// one's (schemas matched by position).
	UnionAll []*SelectStmt
}

// CreateTableStmt covers CREATE [TEMP] TABLE, with either an explicit
// column list or an AS SELECT source (the paper's Q1/Q4/Q5 use the latter).
type CreateTableStmt struct {
	Name        string
	Temp        bool
	IfNotExists bool
	Cols        []ColumnDef
	As          *SelectStmt
}

// CreateViewStmt is CREATE VIEW name AS SELECT (the paper's Q2).
type CreateViewStmt struct {
	Name      string
	As        *SelectStmt
	OrReplace bool
}

// InsertStmt is INSERT INTO t [(cols)] VALUES (...) | SELECT ...
type InsertStmt struct {
	Table  string
	Cols   []string
	Values [][]Expr
	Query  *SelectStmt
}

// UpdateStmt is UPDATE t SET col = expr, ... [WHERE ...] — the paper's ReLU.
type UpdateStmt struct {
	Table string
	Set   map[string]Expr
	Where Expr
}

// DeleteStmt is DELETE FROM t [WHERE ...].
type DeleteStmt struct {
	Table string
	Where Expr
}

// ExplainStmt is EXPLAIN [ANALYZE] SELECT ...: it returns the optimized
// plan tree as a one-column result. With Analyze set the plan is also
// executed and every node is annotated with its actual row count, call
// count, and (inclusive) wall time next to the optimizer's estimates.
type ExplainStmt struct {
	Query   *SelectStmt
	Analyze bool
}

// DropStmt is DROP TABLE|VIEW [IF EXISTS] name.
type DropStmt struct {
	Name     string
	View     bool
	IfExists bool
}

func (*SelectStmt) stmtNode()      {}
func (*CreateTableStmt) stmtNode() {}
func (*CreateViewStmt) stmtNode()  {}
func (*InsertStmt) stmtNode()      {}
func (*UpdateStmt) stmtNode()      {}
func (*DeleteStmt) stmtNode()      {}
func (*DropStmt) stmtNode()        {}
func (*ExplainStmt) stmtNode()     {}

// String renders the ExplainStmt as SQL text (the parser round-trips it).
func (s *ExplainStmt) String() string {
	if s.Analyze {
		return "EXPLAIN ANALYZE " + s.Query.String()
	}
	return "EXPLAIN " + s.Query.String()
}

// String renders the SelectStmt as SQL text (the parser round-trips it).
func (s *SelectStmt) String() string {
	var sb strings.Builder
	sb.WriteString("SELECT ")
	if s.Distinct {
		sb.WriteString("DISTINCT ")
	}
	for i, it := range s.Items {
		if i > 0 {
			sb.WriteString(", ")
		}
		if it.Star {
			sb.WriteString("*")
			continue
		}
		sb.WriteString(it.Expr.String())
		if it.Alias != "" {
			sb.WriteString(" AS " + it.Alias)
		}
	}
	if s.From != nil {
		sb.WriteString(" FROM " + s.From.String())
	}
	if s.Where != nil {
		sb.WriteString(" WHERE " + s.Where.String())
	}
	if len(s.GroupBy) > 0 {
		sb.WriteString(" GROUP BY ")
		for i, g := range s.GroupBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(g.String())
		}
	}
	if s.Having != nil {
		sb.WriteString(" HAVING " + s.Having.String())
	}
	if len(s.OrderBy) > 0 {
		sb.WriteString(" ORDER BY ")
		for i, o := range s.OrderBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(o.Expr.String())
			if o.Desc {
				sb.WriteString(" DESC")
			}
		}
	}
	if s.Limit >= 0 {
		fmt.Fprintf(&sb, " LIMIT %d", s.Limit)
	}
	if s.Offset > 0 {
		fmt.Fprintf(&sb, " OFFSET %d", s.Offset)
	}
	for _, u := range s.UnionAll {
		sb.WriteString(" UNION ALL " + u.String())
	}
	return sb.String()
}

// String renders the TableRef as SQL text (the parser round-trips it).
func (t *TableRef) String() string {
	switch {
	case t.Join != nil:
		if t.Join.Cond != nil {
			kw := " INNER JOIN "
			if t.Join.Left {
				kw = " LEFT JOIN "
			}
			return t.Join.L.String() + kw + t.Join.R.String() + " ON " + t.Join.Cond.String()
		}
		return t.Join.L.String() + ", " + t.Join.R.String()
	case t.Sub != nil:
		s := "(" + t.Sub.String() + ")"
		if t.Alias != "" {
			s += " " + t.Alias
		}
		return s
	default:
		if t.Alias != "" && !strings.EqualFold(t.Alias, t.Table) {
			return t.Table + " " + t.Alias
		}
		return t.Table
	}
}

// String renders the CreateTableStmt as SQL text (the parser round-trips it).
func (s *CreateTableStmt) String() string {
	var sb strings.Builder
	sb.WriteString("CREATE ")
	if s.Temp {
		sb.WriteString("TEMP ")
	}
	sb.WriteString("TABLE ")
	if s.IfNotExists {
		sb.WriteString("IF NOT EXISTS ")
	}
	sb.WriteString(s.Name)
	if s.As != nil {
		sb.WriteString(" AS " + s.As.String())
		return sb.String()
	}
	sb.WriteString(" (")
	for i, c := range s.Cols {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(c.Name + " " + c.Type.String())
	}
	sb.WriteString(")")
	return sb.String()
}

// String renders the CreateViewStmt as SQL text (the parser round-trips it).
func (s *CreateViewStmt) String() string {
	return "CREATE VIEW " + s.Name + " AS " + s.As.String()
}

// String renders the InsertStmt as SQL text (the parser round-trips it).
func (s *InsertStmt) String() string {
	var sb strings.Builder
	sb.WriteString("INSERT INTO " + s.Table)
	if len(s.Cols) > 0 {
		sb.WriteString(" (" + strings.Join(s.Cols, ", ") + ")")
	}
	if s.Query != nil {
		sb.WriteString(" " + s.Query.String())
		return sb.String()
	}
	sb.WriteString(" VALUES ")
	for i, row := range s.Values {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString("(")
		for j, e := range row {
			if j > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(e.String())
		}
		sb.WriteString(")")
	}
	return sb.String()
}

// String renders the UpdateStmt as SQL text (the parser round-trips it).
func (s *UpdateStmt) String() string {
	var sb strings.Builder
	sb.WriteString("UPDATE " + s.Table + " SET ")
	first := true
	for _, col := range sortedKeys(s.Set) {
		if !first {
			sb.WriteString(", ")
		}
		first = false
		sb.WriteString(col + " = " + s.Set[col].String())
	}
	if s.Where != nil {
		sb.WriteString(" WHERE " + s.Where.String())
	}
	return sb.String()
}

// String renders the DeleteStmt as SQL text (the parser round-trips it).
func (s *DeleteStmt) String() string {
	out := "DELETE FROM " + s.Table
	if s.Where != nil {
		out += " WHERE " + s.Where.String()
	}
	return out
}

// String renders the DropStmt as SQL text (the parser round-trips it).
func (s *DropStmt) String() string {
	kind := "TABLE"
	if s.View {
		kind = "VIEW"
	}
	ex := ""
	if s.IfExists {
		ex = "IF EXISTS "
	}
	return "DROP " + kind + " " + ex + s.Name
}

func sortedKeys(m map[string]Expr) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	// insertion sort; SET lists are tiny
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}
