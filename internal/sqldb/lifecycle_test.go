package sqldb

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/qerr"
)

// checkGoroutines asserts that the goroutine count settles back to the
// pre-test baseline, i.e. a cancelled query did not strand workers.
func checkGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d before, %d after\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestCancelMidQueryParallelNoLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	db := parFixture(t, 30000)
	db.Parallelism = 4
	// Every morsel sleeps 20ms, so a 30k-row scan (≈15 morsels) cannot
	// finish before the 5ms cancellation below — the query is guaranteed
	// to be in flight when the context fires.
	db.Faults = faults.New(1, faults.Rule{Point: faults.PointMorselDelay, Delay: 20 * time.Millisecond})

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	res, err := db.QueryContext(ctx, "SELECT g, count(*) c, sum(v) s FROM pt WHERE v > 1 GROUP BY g ORDER BY g")
	elapsed := time.Since(start)
	if res != nil || err == nil {
		t.Fatalf("cancelled query returned res=%v err=%v", res != nil, err)
	}
	if !errors.Is(err, qerr.ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
	// Cooperative cancellation must take effect at a morsel boundary, not
	// after the full scan: well under the ≈300ms a serial fault-delayed run
	// would need.
	if elapsed > time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
	checkGoroutines(t, before)

	// The engine must stay usable after a cancelled query.
	db.Faults = nil
	res2, err := db.QueryContext(context.Background(), "SELECT count(*) c FROM pt")
	if err != nil || res2.NumRows() != 1 {
		t.Fatalf("post-cancel query: %v", err)
	}
}

func TestTimeoutReturnsErrTimeout(t *testing.T) {
	db := parFixture(t, 30000)
	db.Parallelism = 2
	db.Faults = faults.New(1, faults.Rule{Point: faults.PointMorselDelay, Delay: 20 * time.Millisecond})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	_, err := db.QueryContext(ctx, "SELECT id, v FROM pt WHERE v > 50 ORDER BY v DESC LIMIT 10")
	if !errors.Is(err, qerr.ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

func TestPreCancelledContextShortCircuits(t *testing.T) {
	db := parFixture(t, 100)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := db.QueryContext(ctx, "SELECT count(*) c FROM pt"); !errors.Is(err, qerr.ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
	if _, err := db.ExecContext(ctx, "INSERT INTO ptd VALUES (99, 'x')"); !errors.Is(err, qerr.ErrCancelled) {
		t.Fatalf("DML err = %v, want ErrCancelled", err)
	}
	if n := db.GetTable("ptd").NumRows(); n != 49 {
		t.Fatalf("cancelled INSERT mutated the table: %d rows", n)
	}
}

func TestCancelledQueryDoesNotPopulatePlanCache(t *testing.T) {
	db := parFixture(t, 30000)
	db.EnableCache(16)
	db.Parallelism = 2
	db.Faults = faults.New(1, faults.Rule{Point: faults.PointMorselDelay, Delay: 20 * time.Millisecond})

	const sql = "SELECT g, count(*) c FROM pt WHERE v > 2 GROUP BY g ORDER BY g"
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if _, err := db.QueryContext(ctx, sql); !qerr.Lifecycle(err) {
		t.Fatalf("err = %v, want lifecycle error", err)
	}
	if st := db.CacheStats(); st.Plan.Len != 0 {
		t.Fatalf("cancelled query left %d plan cache entries", st.Plan.Len)
	}

	// The same statement succeeds afterwards and only then lands in the
	// cache — the aborted run must not have poisoned or pre-seeded it.
	db.Faults = nil
	res, err := db.QueryContext(context.Background(), sql)
	if err != nil {
		t.Fatal(err)
	}
	want := queryString(t, db, sql)
	if got := resultString(res); got != want {
		t.Fatalf("post-cancel result differs:\n%s\nvs\n%s", got, want)
	}
	if st := db.CacheStats(); st.Plan.Len != 1 {
		t.Fatalf("successful query cached %d plans, want 1", st.Plan.Len)
	}
}

// resultString renders a result in the same shape as cache_test.go's
// queryString (pipe after every column) so the two are comparable.
func resultString(res *Result) string {
	var sb strings.Builder
	for i := 0; i < res.NumRows(); i++ {
		for _, c := range res.Cols {
			sb.WriteString(c.Get(i).String())
			sb.WriteByte('|')
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

func TestMemoryBudgetFailsCleanly(t *testing.T) {
	db := parFixture(t, 20000)
	db.MemoryBudget = 64 * 1024 // far below the ~20k-row join materialization
	_, err := db.QueryContext(context.Background(),
		"SELECT P.id, P.v, D.name FROM pt P, ptd D WHERE P.g = D.g")
	if !errors.Is(err, qerr.ErrMemoryBudget) {
		t.Fatalf("err = %v, want ErrMemoryBudget", err)
	}

	// A generous budget lets the same query through.
	db.MemoryBudget = 1 << 30
	if _, err := db.QueryContext(context.Background(),
		"SELECT P.id, P.v, D.name FROM pt P, ptd D WHERE P.g = D.g"); err != nil {
		t.Fatalf("budgeted query failed: %v", err)
	}
}

func TestMemPressureFaultImposesBudget(t *testing.T) {
	db := parFixture(t, 20000)
	db.Faults = faults.New(1, faults.Rule{Point: faults.PointMemPressure, Bytes: 64 * 1024})
	_, err := db.QueryContext(context.Background(), "SELECT id, v, s, g FROM pt WHERE v >= 0")
	if !errors.Is(err, qerr.ErrMemoryBudget) {
		t.Fatalf("err = %v, want ErrMemoryBudget", err)
	}
	db.Faults = nil
	if _, err := db.QueryContext(context.Background(), "SELECT id, v, s, g FROM pt WHERE v >= 0"); err != nil {
		t.Fatalf("after removing injector: %v", err)
	}
}

func TestUDFPanicBecomesTypedError(t *testing.T) {
	for _, deg := range []int{1, 4} {
		db := parFixture(t, 20000)
		db.Parallelism = deg
		db.RegisterUDF(&ScalarUDF{
			Name:         "boom",
			Arity:        1,
			ParallelSafe: true,
			Fn: func(args []Datum) (Datum, error) {
				id, _ := args[0].AsInt()
				if id == 17777 {
					panic("kernel shape mismatch")
				}
				return Int(id), nil
			},
		})
		_, err := db.QueryContext(context.Background(), "SELECT boom(id) b FROM pt")
		if !errors.Is(err, qerr.ErrInternal) {
			t.Fatalf("deg=%d: err = %v, want ErrInternal", deg, err)
		}
		// The worker pool survives the panic: the next query runs normally.
		if _, err := db.QueryContext(context.Background(), "SELECT count(*) c FROM pt"); err != nil {
			t.Fatalf("deg=%d post-panic query: %v", deg, err)
		}
	}
}

func TestMalformedQueriesReturnErrorsNotPanics(t *testing.T) {
	db := parFixture(t, 100)
	for _, sql := range []string{
		"SELECT",
		"SELECT FROM pt",
		"SELECT * FROM",
		"SELECT id FROM pt WHERE",
		"SELECT id FROM pt GROUP BY",
		"SELECT id FROM pt ORDER BY 99",
		"SELECT nosuch(id) x FROM pt",
		"SELECT id FROM nosuchtable",
		"SELECT id FROM pt WHERE id = 'a' +",
		"INSERT INTO pt VALUES (1)",
		"SELECT id, FROM pt",
		"SELECT (SELECT id FROM pt) x FROM pt",
		"\x00\xff garbage",
		strings.Repeat("(", 500) + "SELECT 1" + strings.Repeat(")", 500),
	} {
		if _, err := db.ExecContext(context.Background(), sql); err == nil {
			t.Errorf("malformed query %q succeeded", sql)
		}
	}
}

func TestMemoryBudgetContextOverride(t *testing.T) {
	db := parFixture(t, 20000)
	join := "SELECT P.id, P.v, D.name FROM pt P, ptd D WHERE P.g = D.g"

	// A tight per-query override fails the query even with no DB knob set.
	ctx := WithMemoryBudget(context.Background(), 64*1024)
	if _, err := db.QueryContext(ctx, join); !errors.Is(err, qerr.ErrMemoryBudget) {
		t.Fatalf("override err = %v, want ErrMemoryBudget", err)
	}
	// The same query with no override succeeds (no global cap is armed).
	if _, err := db.QueryContext(context.Background(), join); err != nil {
		t.Fatalf("uncapped query failed: %v", err)
	}
	// An override can only tighten a global cap, never loosen it.
	db.MemoryBudget = 64 * 1024
	loose := WithMemoryBudget(context.Background(), 1<<30)
	if _, err := db.QueryContext(loose, join); !errors.Is(err, qerr.ErrMemoryBudget) {
		t.Fatalf("loosened err = %v, want ErrMemoryBudget (DB knob must win)", err)
	}
}

func TestParallelismContextOverride(t *testing.T) {
	// The override wins over the DB knob in both directions; results stay
	// bit-identical to serial execution (the morsel-order contract).
	db := parFixture(t, 20000)
	db.Parallelism = 1
	q := "SELECT g, count(*) AS n FROM pt WHERE v >= 0 GROUP BY g ORDER BY g"
	serial, err := db.QueryContext(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	par4, err := db.QueryContext(WithParallelism(context.Background(), 4), q)
	if err != nil {
		t.Fatal(err)
	}
	if serial.NumRows() != par4.NumRows() {
		t.Fatalf("row count changed under parallelism override: %d vs %d",
			serial.NumRows(), par4.NumRows())
	}
	for i := 0; i < serial.NumRows(); i++ {
		for j := range serial.Cols {
			if serial.Cols[j].Get(i).String() != par4.Cols[j].Get(i).String() {
				t.Fatalf("row %d col %d differs under parallelism override", i, j)
			}
		}
	}
}
