package sqldb

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// QueryHints carries the paper's optimizer hints (Section IV-B) into the
// planner. The DL2SQL-OP configuration fills these from the customized cost
// model and the per-class nUDF selectivity histograms; plain DL2SQL leaves
// them nil and gets the default behaviour.
type QueryHints struct {
	// UDFSelectivity maps a UDF name to the estimated fraction of rows
	// satisfying a predicate on that UDF (Eq. 10). Without an entry, the
	// default model assumes 1.0 — i.e. the UDF filter prunes nothing, which
	// is how a black-box UDF looks to a stock optimizer.
	UDFSelectivity map[string]float64
	// UDFCost maps a UDF name to its per-call cost (abstract units). The
	// predicate orderer uses it to decide scan-time vs delayed evaluation
	// (hint rule 1).
	UDFCost map[string]float64
	// DelayUDFs forces UDF predicates to be evaluated after all non-UDF
	// predicates and joins (rule 1, strategy 2) when the cost comparison
	// favours it. When nil the planner decides per-predicate.
	DelayUDFs *bool
	// SymmetricJoin requests the symmetric hash join algorithm for joins
	// whose condition contains a UDF call (rule 3).
	SymmetricJoin bool
	// CardOverrides maps lower-cased table names to cardinality estimates
	// supplied by the customized cost model (Eqs. 3–8), replacing the
	// catalog statistics during join ordering.
	CardOverrides map[string]float64
	// JoinOrder, when non-empty, pins the join order to the given relation
	// aliases (left-deep, in order).
	JoinOrder []string
	// SelectUDFLast applies hint rule 2: nUDFs in the SELECT clause are
	// evaluated as the final operator. (Projection already runs last in
	// this engine; the flag is tracked for plan introspection.)
	SelectUDFLast bool
}

// defaultUDFSelectivity is what the stock optimizer assumes for a black-box
// UDF predicate: no pruning.
const defaultUDFSelectivity = 1.0

// defaultPredicateSelectivity estimates how much of the input a non-UDF
// predicate keeps, using the textbook heuristics.
func (db *DB) predicateSelectivity(e Expr, hints *QueryHints) float64 {
	udfs := db.exprUDFs(e)
	if len(udfs) > 0 {
		sel := 1.0
		for _, u := range udfs {
			s := defaultUDFSelectivity
			if hints != nil {
				if v, ok := hints.UDFSelectivity[u]; ok {
					s = v
				}
			} else if udf := db.lookupUDF(u); udf != nil && udf.EstimateSelectivity != nil {
				s = udf.EstimateSelectivity(Null())
			}
			sel *= s
		}
		return sel
	}
	switch t := e.(type) {
	case *BinExpr:
		switch t.Op {
		case "=":
			return 0.1
		case "!=":
			return 0.9
		case "<", "<=", ">", ">=":
			return 1.0 / 3.0
		case "and":
			return db.predicateSelectivity(t.L, hints) * db.predicateSelectivity(t.R, hints)
		case "or":
			l := db.predicateSelectivity(t.L, hints)
			r := db.predicateSelectivity(t.R, hints)
			return l + r - l*r
		}
	case *InExpr:
		return math.Min(1, 0.1*float64(len(t.List)))
	case *BetweenExpr:
		return 0.25
	case *IsNullExpr:
		return 0.1
	case *UnaryExpr:
		if t.Op == "not" {
			return 1 - db.predicateSelectivity(t.E, hints)
		}
	}
	return 0.5
}

// predicateCost estimates the per-row evaluation cost of a predicate.
// Plain comparisons cost 1; each UDF call adds its registered cost (large
// for neural UDFs).
func (db *DB) predicateCost(e Expr, hints *QueryHints) float64 {
	cost := 1.0
	for _, u := range db.exprUDFs(e) {
		c := 1000.0
		if hints != nil {
			if v, ok := hints.UDFCost[u]; ok {
				c = v
			}
		}
		if udf := db.lookupUDF(u); udf != nil && udf.Cost > 0 {
			if hints == nil || hints.UDFCost[u] == 0 {
				c = udf.Cost
			}
		}
		cost += c
	}
	return cost
}

// orderPredicates sorts filter conjuncts by rank = (selectivity-1)/cost, the
// classic optimal ordering for expensive predicates: cheap, highly-selective
// predicates run first; expensive neural UDFs run last unless their
// selectivity justifies earlier evaluation (hint rule 1).
func (db *DB) orderPredicates(conds []Expr, hints *QueryHints) []Expr {
	if len(conds) <= 1 {
		return conds
	}
	type ranked struct {
		e    Expr
		rank float64
		udf  bool
	}
	rs := make([]ranked, len(conds))
	for i, c := range conds {
		sel := db.predicateSelectivity(c, hints)
		cost := db.predicateCost(c, hints)
		rs[i] = ranked{e: c, rank: (sel - 1) / cost, udf: len(db.exprUDFs(c)) > 0}
	}
	if hints != nil && hints.DelayUDFs != nil && *hints.DelayUDFs {
		// Rule 1 strategy 2 pinned: all UDF predicates strictly after
		// non-UDF predicates, each group rank-ordered.
		sort.SliceStable(rs, func(i, j int) bool {
			if rs[i].udf != rs[j].udf {
				return !rs[i].udf
			}
			return rs[i].rank < rs[j].rank
		})
	} else {
		sort.SliceStable(rs, func(i, j int) bool { return rs[i].rank < rs[j].rank })
	}
	out := make([]Expr, len(rs))
	for i, r := range rs {
		out[i] = r.e
	}
	return out
}

// relEstimate estimates a relation's cardinality after pushed filters.
func (db *DB) relEstimate(rel planRel, pushed []Expr, hints *QueryHints) float64 {
	base := 1000.0
	if s, ok := rel.plan.(*LScan); ok {
		if hints != nil {
			if v, ok := hints.CardOverrides[strings.ToLower(s.Table)]; ok {
				base = v
				goto filters
			}
		}
		if t := db.lookupTable(s.Table); t != nil {
			base = float64(t.NumRows())
		}
	} else if hints != nil {
		if v, ok := hints.CardOverrides[strings.ToLower(rel.alias)]; ok {
			base = v
		}
	}
filters:
	for _, f := range pushed {
		base *= db.predicateSelectivity(f, hints)
	}
	if base < 1 {
		base = 1
	}
	return base
}

// joinSelectivity estimates equi-join selectivity as 1/max(ndv_l, ndv_r),
// the System-R default. This is the component the paper observes
// "over-estimates the number of join results ... exaggerated exponentially"
// on neural-operator queries; the customized cost model bypasses it via
// CardOverrides.
func (db *DB) joinSelectivity(lRel, rRel planRel, cond *equiCond) float64 {
	ndv := func(rel planRel, col *ColRef) float64 {
		s, ok := rel.plan.(*LScan)
		if !ok {
			return 100
		}
		t := db.lookupTable(s.Table)
		if t == nil {
			return 100
		}
		st := t.Stats()
		if d, ok := st.Distinct[strings.ToLower(col.Name)]; ok {
			return float64(d)
		}
		return 100
	}
	lN, rN := 100.0, 100.0
	if lc, ok := cond.lExpr.(*ColRef); ok {
		lN = ndv(lRel, lc)
	}
	if rc, ok := cond.rExpr.(*ColRef); ok {
		rN = ndv(rRel, rc)
	}
	return 1.0 / math.Max(1, math.Max(lN, rN))
}

// equiCond is a normalized equi-join predicate between two relations.
type equiCond struct {
	lAlias, rAlias string
	lExpr, rExpr   Expr
	orig           Expr
	hasUDF         bool
}

// buildJoinTree classifies conditions, pushes single-relation filters into
// scans, picks a greedy join order, and returns the join plan plus residual
// (multi-relation non-equi) conditions.
func (db *DB) buildJoinTree(rels []planRel, conds []Expr, hints *QueryHints) (Plan, []Expr, error) {
	pushed := map[string][]Expr{}
	var equis []*equiCond
	var residual []Expr

	for _, c := range conds {
		touching, err := relsOf(c, rels)
		if err != nil {
			return nil, nil, err
		}
		switch len(touching) {
		case 0:
			residual = append(residual, c) // constant condition
		case 1:
			for a := range touching {
				pushed[a] = append(pushed[a], c)
			}
		case 2:
			if eq := db.asEquiCond(c, rels); eq != nil {
				equis = append(equis, eq)
			} else {
				residual = append(residual, c)
			}
		default:
			residual = append(residual, c)
		}
	}

	// Attach pushed filters to scans (ordered by rank).
	for i := range rels {
		fs := pushed[strings.ToLower(rels[i].alias)]
		if len(fs) == 0 {
			continue
		}
		fs = db.orderPredicates(fs, hints)
		if scan, ok := rels[i].plan.(*LScan); ok {
			scan.Filters = fs
			scan.EstRows = db.relEstimate(rels[i], fs, hints)
		} else {
			rels[i].plan = &LFilter{Child: rels[i].plan, Conds: fs}
		}
	}

	if len(rels) == 1 {
		return rels[0].plan, residual, nil
	}

	// Join ordering.
	order := db.chooseJoinOrder(rels, pushed, equis, hints)

	type joined struct {
		plan    Plan
		aliases map[string]bool
		rows    float64
	}
	first := rels[order[0]]
	cur := &joined{
		plan:    first.plan,
		aliases: map[string]bool{strings.ToLower(first.alias): true},
		rows:    db.relEstimate(first, pushed[strings.ToLower(first.alias)], hints),
	}
	used := make([]bool, len(equis))
	for _, idx := range order[1:] {
		rel := rels[idx]
		ra := strings.ToLower(rel.alias)
		var eqL, eqR []Expr
		symmetric := false
		joinSel := 1.0
		for i, eq := range equis {
			if used[i] {
				continue
			}
			var myExpr, otherExpr Expr
			var otherAlias string
			switch {
			case strings.EqualFold(eq.lAlias, rel.alias):
				myExpr, otherExpr, otherAlias = eq.lExpr, eq.rExpr, eq.rAlias
			case strings.EqualFold(eq.rAlias, rel.alias):
				myExpr, otherExpr, otherAlias = eq.rExpr, eq.lExpr, eq.lAlias
			default:
				continue
			}
			if !cur.aliases[strings.ToLower(otherAlias)] {
				continue
			}
			used[i] = true
			eqL = append(eqL, otherExpr)
			eqR = append(eqR, myExpr)
			if eq.hasUDF && hints != nil && hints.SymmetricJoin {
				symmetric = true
			}
			// find rel structs for selectivity
			var lRel, rRel planRel
			for _, r2 := range rels {
				if strings.EqualFold(r2.alias, otherAlias) {
					lRel = r2
				}
				if strings.EqualFold(r2.alias, rel.alias) {
					rRel = r2
				}
			}
			joinSel *= db.joinSelectivity(lRel, rRel, eq)
		}
		relRows := db.relEstimate(rel, pushed[ra], hints)
		join := &LJoin{L: cur.plan, R: rel.plan, EquiL: eqL, EquiR: eqR, Symmetric: symmetric}
		if len(eqL) == 0 {
			join.EstRows = cur.rows * relRows
		} else {
			join.EstRows = cur.rows * relRows * joinSel
		}
		cur.plan = join
		cur.aliases[ra] = true
		cur.rows = math.Max(1, join.EstRows)
	}

	// Any unused equi conditions (e.g. both sides landed in the same
	// subtree via transitivity) become residual filters.
	for i, eq := range equis {
		if !used[i] {
			residual = append(residual, eq.orig)
		}
	}
	return cur.plan, residual, nil
}

// asEquiCond recognizes `exprOverRelA = exprOverRelB`.
func (db *DB) asEquiCond(c Expr, rels []planRel) *equiCond {
	b, ok := c.(*BinExpr)
	if !ok || b.Op != "=" {
		return nil
	}
	lRels, err := relsOf(b.L, rels)
	if err != nil || len(lRels) != 1 {
		return nil
	}
	rRels, err := relsOf(b.R, rels)
	if err != nil || len(rRels) != 1 {
		return nil
	}
	var lA, rA string
	for a := range lRels {
		lA = a
	}
	for a := range rRels {
		rA = a
	}
	if lA == rA {
		return nil
	}
	return &equiCond{
		lAlias: lA, rAlias: rA,
		lExpr: b.L, rExpr: b.R,
		orig:   c,
		hasUDF: len(db.exprUDFs(c)) > 0,
	}
}

// chooseJoinOrder returns relation indices in join order: pinned by hints
// when provided, otherwise greedy smallest-first.
func (db *DB) chooseJoinOrder(rels []planRel, pushed map[string][]Expr, equis []*equiCond, hints *QueryHints) []int {
	if hints != nil && len(hints.JoinOrder) == len(rels) {
		order := make([]int, 0, len(rels))
		seen := map[int]bool{}
		for _, a := range hints.JoinOrder {
			for i, r := range rels {
				if strings.EqualFold(r.alias, a) && !seen[i] {
					order = append(order, i)
					seen[i] = true
					break
				}
			}
		}
		if len(order) == len(rels) {
			return order
		}
	}
	est := make([]float64, len(rels))
	for i, r := range rels {
		est[i] = db.relEstimate(r, pushed[strings.ToLower(r.alias)], hints)
	}
	order := make([]int, len(rels))
	for i := range order {
		order[i] = i
	}
	// Greedy: smallest first; prefer relations connected by an equi edge to
	// the already-joined set to avoid cross products.
	sort.SliceStable(order, func(i, j int) bool { return est[order[i]] < est[order[j]] })
	result := []int{order[0]}
	placed := map[string]bool{strings.ToLower(rels[order[0]].alias): true}
	remaining := append([]int(nil), order[1:]...)
	for len(remaining) > 0 {
		bestIdx := -1
		bestConnected := false
		bestEst := math.Inf(1)
		for pos, idx := range remaining {
			connected := false
			for _, eq := range equis {
				la, ra := strings.ToLower(eq.lAlias), strings.ToLower(eq.rAlias)
				myA := strings.ToLower(rels[idx].alias)
				if (la == myA && placed[ra]) || (ra == myA && placed[la]) {
					connected = true
					break
				}
			}
			if connected && !bestConnected || (connected == bestConnected && est[idx] < bestEst) {
				bestIdx, bestConnected, bestEst = pos, connected, est[idx]
			}
		}
		idx := remaining[bestIdx]
		result = append(result, idx)
		placed[strings.ToLower(rels[idx].alias)] = true
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
	}
	return result
}

// Explain renders a plan tree for debugging and tests.
func Explain(p Plan) string {
	var sb strings.Builder
	explainNode(&sb, p, 0, nil)
	return sb.String()
}

// ExplainAnalyze renders a plan tree annotated with the actual per-node
// rows, calls, and inclusive wall time collected during execution, next to
// the optimizer's estimates — making estimate-vs-actual skew visible.
func ExplainAnalyze(p Plan, stats map[Plan]*NodeStats) string {
	var sb strings.Builder
	explainNode(&sb, p, 0, stats)
	return sb.String()
}

// joinKind labels a join node with every algorithm property it carries:
// outer-ness and symmetry compose rather than overwrite each other, so a
// symmetric left-outer join renders as LeftOuterSymmetricHashJoin.
func joinKind(t *LJoin) string {
	kind := "HashJoin"
	if len(t.EquiL) == 0 {
		kind = "NestedLoopJoin"
	}
	if t.Symmetric {
		kind = "Symmetric" + kind
	}
	if t.LeftOuter {
		kind = "LeftOuter" + kind
	}
	return kind
}

func explainNode(sb *strings.Builder, p Plan, depth int, stats map[Plan]*NodeStats) {
	indent := strings.Repeat("  ", depth)
	// actuals appends the node's EXPLAIN ANALYZE annotation (when stats
	// were collected) and terminates the line.
	actuals := func() {
		if stats != nil {
			if ns := stats[p]; ns != nil {
				fmt.Fprintf(sb, " (actual rows=%d calls=%d time=%s)",
					ns.Rows, ns.Calls, time.Duration(ns.Nanos).Round(time.Microsecond))
				if ns.Workers > 1 {
					fmt.Fprintf(sb, " (parallel workers=%d morsels=%d skew=%.2f)",
						ns.Workers, ns.Morsels, ns.ParSkew())
				}
			} else {
				sb.WriteString(" (never executed)")
			}
		}
		sb.WriteString("\n")
	}
	switch t := p.(type) {
	case *LScan:
		fmt.Fprintf(sb, "%sScan %s as %s (est %.0f rows)", indent, t.Table, t.Alias, t.EstRows)
		if len(t.Filters) > 0 {
			fmt.Fprintf(sb, " filters=%d:", len(t.Filters))
			for _, f := range t.Filters {
				fmt.Fprintf(sb, " [%s]", f)
			}
		}
		actuals()
	case *LSysScan:
		fmt.Fprintf(sb, "%sSysScan %s as %s (est %.0f rows)", indent, t.SysTable.Name, t.Alias, t.EstRows)
		actuals()
	case *LFilter:
		fmt.Fprintf(sb, "%sFilter", indent)
		for _, f := range t.Conds {
			fmt.Fprintf(sb, " [%s]", f)
		}
		actuals()
		explainNode(sb, t.Child, depth+1, stats)
	case *LJoin:
		fmt.Fprintf(sb, "%s%s (est %.0f rows)", indent, joinKind(t), t.EstRows)
		actuals()
		explainNode(sb, t.L, depth+1, stats)
		explainNode(sb, t.R, depth+1, stats)
	case *LProject:
		fmt.Fprintf(sb, "%sProject %d items", indent, len(t.Items))
		actuals()
		if t.Child != nil {
			explainNode(sb, t.Child, depth+1, stats)
		}
	case *LAgg:
		fmt.Fprintf(sb, "%sAggregate groupby=%d items=%d", indent, len(t.GroupBy), len(t.Items))
		actuals()
		explainNode(sb, t.Child, depth+1, stats)
	case *LDistinct:
		fmt.Fprintf(sb, "%sDistinct", indent)
		actuals()
		explainNode(sb, t.Child, depth+1, stats)
	case *LSort:
		fmt.Fprintf(sb, "%sSort keys=%d", indent, len(t.Keys))
		actuals()
		explainNode(sb, t.Child, depth+1, stats)
	case *LLimit:
		fmt.Fprintf(sb, "%sLimit %d offset %d", indent, t.N, t.Offset)
		actuals()
		explainNode(sb, t.Child, depth+1, stats)
	case *aliasPlan:
		fmt.Fprintf(sb, "%sAlias", indent)
		actuals()
		explainNode(sb, t.Child, depth+1, stats)
	default:
		fmt.Fprintf(sb, "%s%T", indent, p)
		actuals()
	}
}
