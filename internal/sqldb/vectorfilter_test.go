package sqldb

import (
	"testing"
	"testing/quick"
)

func TestVectorFilterMatchesGeneric(t *testing.T) {
	db := newTestDB(t)
	// Same predicate in vectorizable and non-vectorizable (arith) forms
	// must agree for every operator.
	for _, op := range []string{"=", "!=", "<", "<=", ">", ">="} {
		fast := mustExec(t, db, `SELECT count(*) c FROM emp WHERE salary `+op+` 80`)
		slow := mustExec(t, db, `SELECT count(*) c FROM emp WHERE salary `+op+` 80 + 0`)
		if fast.Cols[0].Get(0).I != slow.Cols[0].Get(0).I {
			t.Fatalf("op %s: vectorized %v vs generic %v", op, fast.Cols[0].Get(0), slow.Cols[0].Get(0))
		}
	}
}

func TestVectorFilterMirroredLiteral(t *testing.T) {
	db := newTestDB(t)
	a := mustExec(t, db, `SELECT count(*) c FROM emp WHERE 80 < salary`)
	b := mustExec(t, db, `SELECT count(*) c FROM emp WHERE salary > 80`)
	if a.Cols[0].Get(0).I != b.Cols[0].Get(0).I {
		t.Fatalf("mirrored literal: %v vs %v", a.Cols[0].Get(0), b.Cols[0].Get(0))
	}
}

func TestVectorFilterStringAndBool(t *testing.T) {
	db := newTestDB(t)
	r := mustExec(t, db, `SELECT count(*) c FROM emp WHERE dept = 'eng' AND active = TRUE`)
	if r.Cols[0].Get(0).I != 2 {
		t.Fatalf("string+bool vector filter: %v", r.Cols[0].Get(0))
	}
	r = mustExec(t, db, `SELECT count(*) c FROM emp WHERE name >= 'c' AND name < 'e'`)
	if r.Cols[0].Get(0).I != 2 { // carol, dave
		t.Fatalf("string range: %v", r.Cols[0].Get(0))
	}
}

func TestVectorFilterSkipsNulls(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, `INSERT INTO emp (id, name) VALUES (9, 'ghost')`)
	r := mustExec(t, db, `SELECT count(*) c FROM emp WHERE salary < 1e9`)
	if r.Cols[0].Get(0).I != 5 {
		t.Fatalf("null row leaked through vector filter: %v", r.Cols[0].Get(0))
	}
}

func TestVectorFilterCombinesWithUDF(t *testing.T) {
	db := newTestDB(t)
	calls := 0
	db.RegisterUDF(&ScalarUDF{
		Name: "probe", Arity: 1,
		Fn: func(args []Datum) (Datum, error) {
			calls++
			return Bool(true), nil
		},
		Cost: 1e6,
	})
	r := mustExec(t, db, `SELECT count(*) c FROM emp WHERE probe(id) AND salary > 95`)
	if r.Cols[0].Get(0).I != 1 {
		t.Fatalf("combined filter: %v", r.Cols[0].Get(0))
	}
	if calls != 1 {
		t.Fatalf("UDF must only see rows surviving the vector kernel, called %d times", calls)
	}
}

func TestIntersectSorted(t *testing.T) {
	got := intersectSorted([]int{1, 3, 5, 7}, []int{2, 3, 4, 5, 8})
	if len(got) != 2 || got[0] != 3 || got[1] != 5 {
		t.Fatalf("intersect: %v", got)
	}
	if len(intersectSorted(nil, []int{1})) != 0 {
		t.Fatal("empty intersect")
	}
}

// Property: for random thresholds, the vectorized float filter agrees with
// a hand-computed count.
func TestVectorFloatFilterProperty(t *testing.T) {
	db := New()
	db.Profile = NewProfile()
	mustExec(t, db, `CREATE TABLE v (x Float64)`)
	vals := []float64{-3, -1.5, 0, 0.25, 1, 2.5, 2.5, 9}
	for _, v := range vals {
		mustExec(t, db, `INSERT INTO v VALUES (`+Float(v).String()+`)`)
	}
	f := func(th int8) bool {
		threshold := float64(th) / 4
		want := 0
		for _, v := range vals {
			if v > threshold {
				want++
			}
		}
		res, err := db.Query(`SELECT count(*) c FROM v WHERE x > ` + Float(threshold).String())
		if err != nil {
			return false
		}
		return res.Cols[0].Get(0).I == int64(want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
