package sqldb

import (
	"fmt"
	"regexp"
	"strings"
	"testing"
)

// analyzeTimeRe scrubs wall-clock values so the golden comparison pins only
// the shape of the output, not machine-dependent timings.
var analyzeTimeRe = regexp.MustCompile(`time=[^)]+`)

func explainAnalyzeFixture(t *testing.T) *DB {
	t.Helper()
	db := New()
	mustExec := func(sql string) {
		t.Helper()
		if _, err := db.Exec(sql); err != nil {
			t.Fatalf("fixture %q: %v", sql, err)
		}
	}
	mustExec("CREATE TABLE dept (id Int64, name String)")
	mustExec("INSERT INTO dept VALUES (1,'eng'),(2,'ops'),(3,'empty')")
	mustExec("CREATE TABLE emp (id Int64, deptID Int64, salary Float64)")
	for i := 0; i < 10; i++ {
		mustExec(fmt.Sprintf("INSERT INTO emp VALUES (%d, %d, %d)", i, i%2+1, 1000+i*10))
	}
	return db
}

// TestExplainAnalyzeGolden pins the EXPLAIN ANALYZE output shape: every
// plan node annotated with actual rows, calls, and a time field, alongside
// the optimizer estimates.
func TestExplainAnalyzeGolden(t *testing.T) {
	db := explainAnalyzeFixture(t)
	res, err := db.Exec(
		"EXPLAIN ANALYZE SELECT d.name, count(*) c FROM emp E, dept D " +
			"WHERE E.deptID = D.id AND E.salary > 1000 " +
			"GROUP BY D.name ORDER BY c DESC LIMIT 5")
	if err != nil {
		t.Fatal(err)
	}
	var lines []string
	for i := 0; i < res.NumRows(); i++ {
		lines = append(lines, analyzeTimeRe.ReplaceAllString(res.Cols[0].Get(i).String(), "time=T"))
	}
	got := strings.Join(lines, "\n")
	want := strings.TrimSpace(`
Limit 5 offset 0 (actual rows=2 calls=1 time=T)
  Sort keys=1 (actual rows=2 calls=1 time=T)
    Aggregate groupby=1 items=2 (actual rows=2 calls=1 time=T)
      HashJoin (est 0 rows) (actual rows=9 calls=1 time=T)
        Scan dept as D (est 3 rows) (actual rows=3 calls=1 time=T)
        Scan emp as E (est 3 rows) filters=1: [(E.salary > 1000)] (actual rows=9 calls=1 time=T)
`)
	if got != want {
		t.Fatalf("EXPLAIN ANALYZE output drifted:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestExplainAnalyzeSimpleScan covers the single-node case and checks the
// plain EXPLAIN stays annotation-free.
func TestExplainAnalyzeSimpleScan(t *testing.T) {
	db := explainAnalyzeFixture(t)
	res, err := db.Exec("EXPLAIN ANALYZE SELECT * FROM emp")
	if err != nil {
		t.Fatal(err)
	}
	line := res.Cols[0].Get(0).String()
	if !strings.Contains(line, "actual rows=10") || !strings.Contains(line, "calls=1") ||
		!strings.Contains(line, "time=") {
		t.Fatalf("scan line missing actuals: %q", line)
	}
	if !strings.Contains(line, "est 10 rows") {
		t.Fatalf("scan line lost its estimate: %q", line)
	}
	plain, err := db.Exec("EXPLAIN SELECT * FROM emp")
	if err != nil {
		t.Fatal(err)
	}
	if l := plain.Cols[0].Get(0).String(); strings.Contains(l, "actual") {
		t.Fatalf("plain EXPLAIN gained actuals: %q", l)
	}
}

// TestExplainAnalyzeParseRoundTrip checks the statement parses and prints.
func TestExplainAnalyzeParseRoundTrip(t *testing.T) {
	st, err := Parse("EXPLAIN ANALYZE SELECT 1 AS x")
	if err != nil {
		t.Fatal(err)
	}
	ex, ok := st.(*ExplainStmt)
	if !ok || !ex.Analyze {
		t.Fatalf("parsed %T analyze=%v, want ExplainStmt analyze=true", st, ok && ex.Analyze)
	}
	if !strings.HasPrefix(ex.String(), "EXPLAIN ANALYZE SELECT") {
		t.Fatalf("String() = %q", ex.String())
	}
}

// TestExplainSymmetricLeftOuterJoin pins the satellite fix: a join that is
// both symmetric and left-outer renders both properties instead of
// last-writer-wins.
func TestExplainSymmetricLeftOuterJoin(t *testing.T) {
	j := &LJoin{
		L:         &LScan{Table: "a", Alias: "A"},
		R:         &LScan{Table: "b", Alias: "B"},
		EquiL:     []Expr{&ColRef{Name: "x"}},
		EquiR:     []Expr{&ColRef{Name: "x"}},
		Symmetric: true,
		LeftOuter: true,
	}
	out := Explain(j)
	if !strings.Contains(out, "LeftOuterSymmetricHashJoin") {
		t.Fatalf("symmetric left-outer join drops a property:\n%s", out)
	}
	// The plain variants keep their historical labels.
	j.Symmetric = false
	if !strings.Contains(Explain(j), "LeftOuterHashJoin") {
		t.Fatalf("left-outer label drifted:\n%s", Explain(j))
	}
	j.LeftOuter = false
	j.Symmetric = true
	if !strings.Contains(Explain(j), "SymmetricHashJoin") {
		t.Fatalf("symmetric label drifted:\n%s", Explain(j))
	}
}
