package sqldb

import (
	"strings"

	"repro/internal/obs"
	"repro/internal/par"
)

// Morsel-driven parallelism knobs. Operators split their input into
// fixed-size row-range morsels and fan them across a worker pool (see
// internal/par); below parallelRowThreshold rows the fan-out overhead
// exceeds the work and operators stay on the serial path.
const (
	parallelRowThreshold = 4096
	morselRows           = 2048
)

// parDegree resolves the DB's Parallelism knob to an effective worker
// count: 0 means the process default (par.DefaultDegree(), i.e.
// runtime.NumCPU()), 1 forces serial execution, N > 1 caps workers at N.
func (db *DB) parDegree() int {
	if db.Parallelism > 0 {
		return db.Parallelism
	}
	return par.DefaultDegree()
}

// parDegreeFor returns the worker count an operator should use over n
// input rows: 1 (serial) when the query runs serially or the input is
// below the fan-out threshold, the query degree otherwise.
func (ec *execCtx) parDegreeFor(n int) int {
	if ec.par <= 1 || n < parallelRowThreshold {
		return 1
	}
	return ec.par
}

// exprsParallelSafe reports whether every expression in every list can be
// evaluated concurrently from multiple workers. Built-in functions and the
// expression interpreter itself are stateless; the only hazard is a
// registered UDF whose closure mutates shared state, so an expression
// tree is unsafe iff it calls a UDF not marked ParallelSafe.
func (db *DB) exprsParallelSafe(lists ...[]Expr) bool {
	for _, list := range lists {
		for _, e := range list {
			if !db.exprParallelSafe(e) {
				return false
			}
		}
	}
	return true
}

func (db *DB) exprParallelSafe(e Expr) bool {
	safe := true
	walkExpr(e, func(x Expr) {
		fc, ok := x.(*FuncCall)
		if !ok {
			return
		}
		if udf := db.lookupUDF(strings.ToLower(fc.Name)); udf != nil && !udf.ParallelSafe {
			safe = false
		}
	})
	return safe
}

// walkExpr invokes fn on e and every sub-expression of e.
func walkExpr(e Expr, fn func(Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch t := e.(type) {
	case *UnaryExpr:
		walkExpr(t.E, fn)
	case *BinExpr:
		walkExpr(t.L, fn)
		walkExpr(t.R, fn)
	case *FuncCall:
		for _, a := range t.Args {
			walkExpr(a, fn)
		}
	case *CaseExpr:
		for _, w := range t.Whens {
			walkExpr(w.Cond, fn)
			walkExpr(w.Then, fn)
		}
		walkExpr(t.Else, fn)
	case *InExpr:
		walkExpr(t.E, fn)
		for _, x := range t.List {
			walkExpr(x, fn)
		}
	case *BetweenExpr:
		walkExpr(t.E, fn)
		walkExpr(t.Lo, fn)
		walkExpr(t.Hi, fn)
	case *IsNullExpr:
		walkExpr(t.E, fn)
	}
}

// notePar records a parallel operator run: per-plan-node worker/morsel
// actuals when EXPLAIN ANALYZE is collecting, and executor-wide counters
// when a metrics registry is attached. Serial runs (one worker) are not
// recorded — the annotation marks genuine fan-out.
func (db *DB) notePar(ec *execCtx, s par.Stats) {
	if a := ec.acct; a != nil {
		a.morsels.Add(int64(s.Morsels))
		if s.Workers > 1 {
			a.parallelOps.Add(1)
		}
	}
	if s.Workers <= 1 {
		return
	}
	if m := db.Metrics; m != nil {
		m.Counter(obs.MetricParallelOps).Add(1)
		m.Counter(obs.MetricParallelMorsels).Add(int64(s.Morsels))
	}
	if ec.nodes == nil || ec.node == nil {
		return
	}
	ns := ec.nodes[ec.node]
	if ns == nil {
		ns = &NodeStats{}
		ec.nodes[ec.node] = ns
	}
	if s.Workers > ns.Workers {
		ns.Workers = s.Workers
	}
	ns.Morsels += s.Morsels
	for w, items := range s.WorkerItems {
		if w >= len(ns.WorkerRows) {
			ns.WorkerRows = append(ns.WorkerRows, make([]int, w+1-len(ns.WorkerRows))...)
		}
		ns.WorkerRows[w] += items
	}
}
