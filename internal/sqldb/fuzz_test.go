package sqldb

import "testing"

// FuzzParse asserts two properties over arbitrary input:
//
//  1. the lexer/parser never panic — they either produce a statement or
//     return an error;
//  2. parse→String→parse round-trips: every statement the parser accepts
//     renders (via String()) to SQL the parser accepts again, and the
//     second rendering is identical to the first, i.e. rendering reaches a
//     fixpoint after one trip.
//
// Run the corpus with `go test`, or explore with
// `go test -fuzz=FuzzParse ./internal/sqldb`. Beyond the inline seeds, a
// checked-in corpus generated from the paper's collaborative-query
// templates lives in testdata/fuzz/FuzzParse (see cmd/genfuzzcorpus).
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT 1",
		"SELECT a, b FROM t WHERE x = 1 AND y < 'z' GROUP BY a HAVING count(*) > 0 ORDER BY b DESC LIMIT 5",
		"CREATE TEMP TABLE t(SELECT MatrixID, SUM(A.Value * B.Value) FROM fm A INNER JOIN k B ON A.OrderID = B.OrderID GROUP BY KernelID, MatrixID)",
		"UPDATE cb_output SET Value = 0 WHERE Value < 0",
		"INSERT INTO t VALUES (1, 'a'), (2, 'b')",
		"SELECT CASE WHEN a THEN 1 ELSE 2 END FROM t",
		"SELECT * FROM (SELECT 1 AS x) s WHERE x BETWEEN 0 AND 2",
		"EXPLAIN SELECT 1",
		"SELECT '''; DROP TABLE t; --'",
		"SELECT 1e309, -0.0, .5",
		"((((",
		"SELECT \xff\xfe",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, sql string) {
		// Must never panic.
		stmts, err := ParseMulti(sql)
		if err != nil {
			return
		}
		for _, st := range stmts {
			if st == nil {
				continue
			}
			first := st.String()
			re, err := Parse(first)
			if err != nil {
				t.Fatalf("re-parse failed: %v\n  input:    %q\n  rendered: %q", err, sql, first)
			}
			if second := re.String(); second != first {
				t.Fatalf("String() not a fixpoint:\n  input:  %q\n  first:  %q\n  second: %q", sql, first, second)
			}
		}
	})
}

// FuzzExec runs arbitrary statements against a small database: any outcome
// except a panic is acceptable.
func FuzzExec(f *testing.F) {
	f.Add("SELECT id FROM emp WHERE salary > 50")
	f.Add("SELECT count(*) FROM emp GROUP BY dept")
	f.Add("UPDATE emp SET salary = salary * 2 WHERE id = 1")
	f.Add("SELECT 1/0, abs('x')")
	f.Fuzz(func(t *testing.T, sql string) {
		db := New()
		db.Profile = NewProfile()
		if _, err := db.Exec(`CREATE TABLE emp (id Int64, name String, dept String, salary Float64)`); err != nil {
			t.Fatal(err)
		}
		if _, err := db.Exec(`INSERT INTO emp VALUES (1, 'a', 'x', 10.0), (2, 'b', 'y', 20.0)`); err != nil {
			t.Fatal(err)
		}
		_, _ = db.Exec(sql)
	})
}
