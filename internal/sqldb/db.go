package sqldb

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cache"
	"repro/internal/faults"
	"repro/internal/obs"
)

// DB is an embedded in-memory database instance.
type DB struct {
	mu     sync.RWMutex
	tables map[string]*Table
	views  map[string]*View
	udfs   map[string]*ScalarUDF

	// Profile, when non-nil, accumulates operator statistics across every
	// statement executed on this DB (Fig. 10 uses this).
	Profile *Profile

	// Tracer, when non-nil, receives one hierarchical span per executed
	// SELECT with nested per-operator child spans. A nil tracer keeps the
	// executor on its uninstrumented fast path.
	Tracer *obs.Tracer

	// Parallelism caps the morsel-driven executor's per-operator worker
	// count: 0 means the process default (runtime.NumCPU(), adjustable via
	// par.SetDefaultDegree), 1 forces serial execution, N > 1 uses up to N
	// workers. Parallel execution preserves serial result order and, except
	// for the usual floating-point summation reordering in parallel
	// aggregates, serial results exactly.
	Parallelism int

	// Metrics, when non-nil, receives executor counters (parallel operator
	// and morsel totals). A nil registry costs nothing.
	Metrics *obs.Registry

	// History, when non-nil, receives one QueryRecord per statement
	// executed through the public entry points: normalized SQL, cache
	// state, per-query resource accounting (rows, bytes, morsels, UDF
	// calls), wall/busy time, and error class. The sys.queries and
	// sys.slow_queries virtual tables render it relationally. A nil
	// history keeps execution on the unrecorded fast path.
	History *obs.QueryHistory

	// Traces, when non-nil, arms request-scoped tracing: every statement
	// executed through the public entry points gets (or joins) a trace
	// whose span tree the store tail-samples into sys.traces / sys.spans.
	// A nil store keeps execution on the untraced fast path.
	Traces *obs.TraceStore

	// MemoryBudget caps the approximate bytes one query may materialize
	// across operator outputs; a query exceeding it fails with an error
	// matching qerr.ErrMemoryBudget instead of OOMing the process. 0 (the
	// default) disables the guard at the cost of one branch per plan node.
	MemoryBudget int64

	// Faults, when non-nil, is the fault-injection hook for chaos testing:
	// the executor consults it at morsel boundaries ("morsel.delay") and
	// for budget pressure ("mem.pressure"). Nil in production; see
	// internal/faults.
	Faults *faults.Injector

	// stmtCache maps normalized SQL text to its parsed statement and
	// planCache maps canonical SELECT text to an optimized plan plus the
	// table/view dependencies it was planned against. Both are nil until
	// EnableCache; see cache.go for the invalidation contract.
	stmtCache *cache.LRU[string, Stmt]
	planCache *cache.LRU[string, *planEntry]
	// planInvalidations counts cached plans discarded because a dependency's
	// version moved (DDL or DML on a referenced table, or a replaced view).
	planInvalidations atomic.Int64
	planInvalidCtr    *obs.Counter

	// sysTables is the virtual-table catalog (see systable.go); nil until
	// EnableSysCatalog or RegisterSysTable. sysCacheFns are extra
	// sys.cache row providers from higher layers.
	sysTables   map[string]*SysTable
	sysCacheFns []func() []CacheStat

	leftJoinSeq int // composite-relation alias counter
}

// View is a named stored SELECT.
type View struct {
	Name  string
	Query *SelectStmt
}

// New creates an empty database.
func New() *DB {
	return &DB{
		tables: map[string]*Table{},
		views:  map[string]*View{},
		udfs:   map[string]*ScalarUDF{},
	}
}

func (db *DB) lookupTable(name string) *Table {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.tables[strings.ToLower(name)]
}

func (db *DB) lookupView(name string) *View {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.views[strings.ToLower(name)]
}

func (db *DB) lookupUDF(name string) *ScalarUDF {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.udfs[strings.ToLower(name)]
}

func (db *DB) noteUDFCall(name string) {
	db.Profile.noteUDF(name)
}

// RegisterUDF installs (or replaces) a scalar UDF. This is the engine's
// loose-integration extension point: the DB-UDF strategy registers its
// compiled neural models here.
func (db *DB) RegisterUDF(udf *ScalarUDF) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.udfs[strings.ToLower(udf.Name)] = udf
}

// UnregisterUDF removes a UDF.
func (db *DB) UnregisterUDF(name string) {
	db.mu.Lock()
	defer db.mu.Unlock()
	delete(db.udfs, strings.ToLower(name))
}

// CreateTable registers a new table; it fails if the name is taken.
func (db *DB) CreateTable(name string, schema Schema) (*Table, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	key := strings.ToLower(name)
	if _, exists := db.tables[key]; exists {
		return nil, fmt.Errorf("sqldb: table %q already exists", name)
	}
	if _, exists := db.views[key]; exists {
		return nil, fmt.Errorf("sqldb: a view named %q already exists", name)
	}
	t := NewTable(name, schema)
	db.tables[key] = t
	return t, nil
}

// GetTable returns a table by name, or nil.
func (db *DB) GetTable(name string) *Table { return db.lookupTable(name) }

// DropTable removes a table or view by name.
func (db *DB) DropTable(name string) bool {
	db.mu.Lock()
	defer db.mu.Unlock()
	key := strings.ToLower(name)
	if _, ok := db.tables[key]; ok {
		delete(db.tables, key)
		return true
	}
	if _, ok := db.views[key]; ok {
		delete(db.views, key)
		return true
	}
	return false
}

// TableNames lists all base tables.
func (db *DB) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.tables))
	for _, t := range db.tables {
		out = append(out, t.Name)
	}
	return out
}

// Exec parses and executes one or more semicolon-separated SQL statements,
// returning the result of the last one (nil for DDL/DML statements).
func (db *DB) Exec(sql string) (*Result, error) {
	return db.ExecHintedContext(context.Background(), sql, nil)
}

// Query is Exec restricted to a single SELECT.
func (db *DB) Query(sql string) (*Result, error) {
	return db.QueryContext(context.Background(), sql)
}

// ExecHinted executes statements with optimizer hints applied (the
// DL2SQL-OP pathway).
func (db *DB) ExecHinted(sql string, hints *QueryHints) (*Result, error) {
	return db.ExecHintedContext(context.Background(), sql, hints)
}

// ExecStmt runs one pre-parsed statement.
func (db *DB) ExecStmt(st Stmt, hints *QueryHints) (*Result, error) {
	return db.ExecStmtContext(context.Background(), st, hints)
}

// PlanSelect exposes planning without execution (for EXPLAIN-style tests
// and the hint experiments).
func (db *DB) PlanSelect(sql string, hints *QueryHints) (Plan, error) {
	stmt, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*SelectStmt)
	if !ok {
		return nil, fmt.Errorf("sqldb: PlanSelect expects a SELECT, got %T", stmt)
	}
	return db.planSelect(sel, hints)
}

func (db *DB) execStmt(ctx context.Context, st Stmt, hints *QueryHints) (*Result, error) {
	switch t := st.(type) {
	case *SelectStmt:
		return db.runSelect(ctx, t, hints)
	case *CreateTableStmt:
		return nil, db.runCreateTable(ctx, t, hints)
	case *CreateViewStmt:
		return nil, db.runCreateView(t)
	case *InsertStmt:
		return nil, db.runInsert(ctx, t, hints)
	case *UpdateStmt:
		return nil, db.runUpdate(ctx, t, hints)
	case *DeleteStmt:
		return nil, db.runDelete(ctx, t, hints)
	case *DropStmt:
		if !db.DropTable(t.Name) && !t.IfExists {
			return nil, fmt.Errorf("sqldb: cannot drop %q: does not exist", t.Name)
		}
		return nil, nil
	case *ExplainStmt:
		plan, hit, cacheable, commit, err := db.planSelectCached(t.Query, hints)
		if err != nil {
			return nil, err
		}
		text := Explain(plan)
		if t.Analyze {
			// EXPLAIN ANALYZE executes the plan with a per-node stats
			// collector and renders actual rows/calls/time next to the
			// optimizer's estimates.
			ec := db.newExecCtx(ctx)
			ec.nodes = map[Plan]*NodeStats{}
			if _, err := db.execPlan(plan, ec); err != nil {
				return nil, err
			}
			text = ExplainAnalyze(plan, ec.nodes)
		}
		commit()
		if db.CacheEnabled() {
			// With caching on, the first line reports whether the plan came
			// from the cache. "bypass" marks plans the cache never serves:
			// hinted queries, UNION ALL queries, and queries over sys.*
			// virtual tables (their dependency versions cannot be tracked,
			// so a cached plan could go stale invisibly — see
			// collectSelectDeps).
			state := "miss"
			switch {
			case hit:
				state = "hit"
			case !cacheable:
				state = "bypass"
			}
			text = "cache: " + state + "\n" + text
		}
		out := &Result{Schema: []OutCol{{Name: "plan", Type: TString}}, Cols: []*Column{NewColumn(TString)}}
		for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
			if err := out.Cols[0].Append(Str(line)); err != nil {
				return nil, err
			}
		}
		return out, nil
	}
	return nil, fmt.Errorf("sqldb: cannot execute statement %T", st)
}

func (db *DB) runSelect(ctx context.Context, sel *SelectStmt, hints *QueryHints) (*Result, error) {
	plan, hit, cacheable, commit, err := db.planSelectCached(sel, hints)
	if err != nil {
		return nil, err
	}
	acctFrom(ctx).noteCacheState(db.cacheStateOf(hit, cacheable))
	res, err := db.execPlanTraced(ctx, plan)
	if err != nil {
		return res, err
	}
	// The plan enters the cache only after a successful execution, so a
	// cancelled or failed query never leaves an entry behind.
	commit()
	if len(sel.UnionAll) == 0 {
		return res, nil
	}
	// UNION ALL: append each branch's rows, matching columns by position.
	for _, branch := range sel.UnionAll {
		branch := *branch
		branch.UnionAll = nil
		br, err := db.runSelect(ctx, &branch, hints)
		if err != nil {
			return nil, err
		}
		if len(br.Cols) != len(res.Cols) {
			return nil, fmt.Errorf("sqldb: UNION ALL branch yields %d columns, want %d", len(br.Cols), len(res.Cols))
		}
		for ci := range res.Cols {
			appended, err := appendColumn(res.Cols[ci], br.Cols[ci])
			if err != nil {
				return nil, fmt.Errorf("sqldb: UNION ALL column %d: %w", ci+1, err)
			}
			res.Cols[ci] = appended
		}
	}
	return res, nil
}

// execPlanTraced executes a plan with a fresh execution context and, when
// tracing is on, a query span carrying the per-operator children (the exec
// half of runSelect; Prepared statements call it directly with a
// parameter-bound plan). A request-scoped span already in the context (the
// statement span recordQuery opened) takes precedence over opening a fresh
// tracer root, so per-operator spans land inside the query's trace tree.
func (db *DB) execPlanTraced(ctx context.Context, plan Plan) (*Result, error) {
	ec := db.newExecCtx(ctx)
	if sp := obs.SpanFromContext(ctx); sp != nil {
		ec.span = sp
	} else if db.Tracer.Enabled() {
		root := db.Tracer.StartSpan("query")
		defer root.Finish()
		ec.span = root
	}
	return db.execPlan(plan, ec)
}

// appendColumn concatenates b's rows onto a copy of a (type-coerced).
func appendColumn(a, b *Column) (*Column, error) {
	t := a.Type
	if t == TNull {
		t = b.Type
	}
	out := NewColumn(t)
	for i, n := 0, a.Len(); i < n; i++ {
		if err := out.Append(a.Get(i)); err != nil {
			return nil, err
		}
	}
	for i, n := 0, b.Len(); i < n; i++ {
		if err := out.Append(b.Get(i)); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func (db *DB) runCreateTable(ctx context.Context, st *CreateTableStmt, hints *QueryHints) error {
	if st.IfNotExists && db.lookupTable(st.Name) != nil {
		return nil
	}
	if st.As == nil {
		_, err := db.CreateTable(st.Name, Schema(st.Cols))
		return err
	}
	res, err := db.runSelect(ctx, st.As, hints)
	if err != nil {
		return err
	}
	schema := make(Schema, len(res.Schema))
	for i, c := range res.Schema {
		typ := c.Type
		if typ == TNull {
			typ = res.Cols[i].Type
		}
		if typ == TNull {
			typ = TFloat // empty untyped columns default to Float64
		}
		name := c.Name
		if name == "" {
			name = fmt.Sprintf("col%d", i+1)
		}
		schema[i] = ColumnDef{Name: name, Type: typ}
	}
	if len(st.Cols) > 0 {
		if len(st.Cols) != len(schema) {
			return fmt.Errorf("sqldb: CREATE TABLE %s declares %d columns but SELECT yields %d", st.Name, len(st.Cols), len(schema))
		}
		schema = Schema(st.Cols)
	}
	t, err := db.CreateTable(st.Name, schema)
	if err != nil {
		return err
	}
	start := time.Now()
	n := res.NumRows()
	row := make([]Datum, len(res.Cols))
	for i := 0; i < n; i++ {
		for j, c := range res.Cols {
			row[j] = c.Get(i)
		}
		if err := t.AppendRow(row); err != nil {
			return err
		}
	}
	db.Profile.add(OpInsert, n, time.Since(start))
	return nil
}

func (db *DB) runCreateView(st *CreateViewStmt) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	key := strings.ToLower(st.Name)
	if _, exists := db.tables[key]; exists {
		return fmt.Errorf("sqldb: a table named %q already exists", st.Name)
	}
	if _, exists := db.views[key]; exists && !st.OrReplace {
		return fmt.Errorf("sqldb: view %q already exists", st.Name)
	}
	db.views[key] = &View{Name: st.Name, Query: st.As}
	return nil
}

func (db *DB) runInsert(ctx context.Context, st *InsertStmt, hints *QueryHints) error {
	t := db.lookupTable(st.Table)
	if t == nil {
		return fmt.Errorf("sqldb: no table named %q", st.Table)
	}
	// Column mapping: position i of the provided row maps to table column
	// mapping[i].
	mapping := make([]int, 0, len(t.Schema))
	if len(st.Cols) == 0 {
		for i := range t.Schema {
			mapping = append(mapping, i)
		}
	} else {
		for _, c := range st.Cols {
			idx := t.Schema.ColIndex(c)
			if idx < 0 {
				return fmt.Errorf("sqldb: table %s has no column %q", st.Table, c)
			}
			mapping = append(mapping, idx)
		}
	}
	start := time.Now()
	count := 0
	appendMapped := func(vals []Datum) error {
		if len(vals) != len(mapping) {
			return fmt.Errorf("sqldb: INSERT into %s expects %d values, got %d", st.Table, len(mapping), len(vals))
		}
		row := make([]Datum, len(t.Schema))
		for i := range row {
			row[i] = Null()
		}
		for i, v := range vals {
			row[mapping[i]] = v
		}
		count++
		return t.AppendRow(row)
	}
	if st.Query != nil {
		res, err := db.runSelect(ctx, st.Query, hints)
		if err != nil {
			return err
		}
		n := res.NumRows()
		for i := 0; i < n; i++ {
			if err := appendMapped(res.GetRow(i)); err != nil {
				return err
			}
		}
		db.Profile.add(OpInsert, count, time.Since(start))
		return nil
	}
	empty := &Result{}
	for _, rowExprs := range st.Values {
		vals := make([]Datum, len(rowExprs))
		for i, e := range rowExprs {
			fn, err := db.compileExpr(e, nil)
			if err != nil {
				return err
			}
			v, err := fn(empty, 0)
			if err != nil {
				return err
			}
			vals[i] = v
		}
		if err := appendMapped(vals); err != nil {
			return err
		}
	}
	db.Profile.add(OpInsert, count, time.Since(start))
	return nil
}

func (db *DB) runUpdate(ctx context.Context, st *UpdateStmt, hints *QueryHints) error {
	t := db.lookupTable(st.Table)
	if t == nil {
		return fmt.Errorf("sqldb: no table named %q", st.Table)
	}
	schema := make([]OutCol, len(t.Schema))
	for i, c := range t.Schema {
		schema[i] = OutCol{Table: st.Table, Name: c.Name, Type: c.Type}
	}
	var where evalFn
	var err error
	if st.Where != nil {
		rewritten, rerr := db.rewriteSubqueries(st.Where, hints)
		if rerr != nil {
			return rerr
		}
		where, err = db.compileExpr(rewritten, schema)
		if err != nil {
			return err
		}
	}
	type setter struct {
		col int
		fn  evalFn
	}
	setters := make([]setter, 0, len(st.Set))
	for col, e := range st.Set {
		idx := t.Schema.ColIndex(col)
		if idx < 0 {
			return fmt.Errorf("sqldb: table %s has no column %q", st.Table, col)
		}
		rewritten, rerr := db.rewriteSubqueries(e, hints)
		if rerr != nil {
			return rerr
		}
		fn, err := db.compileExpr(rewritten, schema)
		if err != nil {
			return err
		}
		setters = append(setters, setter{col: idx, fn: fn})
	}
	start := time.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	view := &Result{Schema: schema, Cols: t.Cols}
	n := view.NumRows()
	updated := 0
	for i := 0; i < n; i++ {
		if where != nil {
			v, err := where(view, i)
			if err != nil {
				return err
			}
			if b, ok := v.AsBool(); !ok || !b {
				continue
			}
		}
		for _, s := range setters {
			v, err := s.fn(view, i)
			if err != nil {
				return err
			}
			if err := setColumnValue(t.Cols[s.col], i, v); err != nil {
				return fmt.Errorf("sqldb: UPDATE %s.%s: %w", st.Table, t.Schema[s.col].Name, err)
			}
		}
		updated++
	}
	t.invalidateDerivedLocked()
	db.Profile.add(OpUpdate, updated, time.Since(start))
	return nil
}

// setColumnValue overwrites row i of a column in place.
func setColumnValue(c *Column, i int, v Datum) error {
	if v.IsNull() {
		c.ensureNulls()
		c.Nulls[i] = true
		return nil
	}
	if c.Nulls != nil {
		c.Nulls[i] = false
	}
	switch c.Type {
	case TInt:
		x, ok := v.AsInt()
		if !ok {
			return fmt.Errorf("cannot assign %s to Int64", v.T)
		}
		c.Ints[i] = x
	case TFloat:
		x, ok := v.AsFloat()
		if !ok {
			return fmt.Errorf("cannot assign %s to Float64", v.T)
		}
		c.Floats[i] = x
	case TString:
		if v.T != TString {
			return fmt.Errorf("cannot assign %s to String", v.T)
		}
		c.Strs[i] = v.S
	case TBool:
		x, ok := v.AsBool()
		if !ok {
			return fmt.Errorf("cannot assign %s to Bool", v.T)
		}
		c.Bools[i] = x
	case TBlob:
		if v.T != TBlob {
			return fmt.Errorf("cannot assign %s to Blob", v.T)
		}
		c.Blobs[i] = v.B
	}
	return nil
}

func (db *DB) runDelete(ctx context.Context, st *DeleteStmt, hints *QueryHints) error {
	t := db.lookupTable(st.Table)
	if t == nil {
		return fmt.Errorf("sqldb: no table named %q", st.Table)
	}
	if st.Where == nil {
		start := time.Now()
		n := t.NumRows()
		t.Truncate()
		db.Profile.add(OpDelete, n, time.Since(start))
		return nil
	}
	schema := make([]OutCol, len(t.Schema))
	for i, c := range t.Schema {
		schema[i] = OutCol{Table: st.Table, Name: c.Name, Type: c.Type}
	}
	rewritten, err := db.rewriteSubqueries(st.Where, hints)
	if err != nil {
		return err
	}
	where, err := db.compileExpr(rewritten, schema)
	if err != nil {
		return err
	}
	start := time.Now()
	t.mu.RLock()
	view := &Result{Schema: schema, Cols: t.Cols}
	n := view.NumRows()
	var dead []int
	for i := 0; i < n; i++ {
		v, err := where(view, i)
		if err != nil {
			t.mu.RUnlock()
			return err
		}
		if b, ok := v.AsBool(); ok && b {
			dead = append(dead, i)
		}
	}
	t.mu.RUnlock()
	t.DeleteRows(dead)
	db.Profile.add(OpDelete, len(dead), time.Since(start))
	return nil
}
