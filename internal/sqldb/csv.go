package sqldb

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// CSV interchange: embedded deployments load reference data from flat files
// and export query results for downstream tooling. Blob columns are
// excluded (keyframes travel through the binary snapshot format instead).

// ExportCSV writes a query result as CSV with a header row. Blob cells are
// rendered as their length placeholder.
func ExportCSV(res *Result, w io.Writer) error {
	cw := csv.NewWriter(w)
	header := make([]string, len(res.Schema))
	for i, c := range res.Schema {
		header[i] = c.Name
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	n := res.NumRows()
	row := make([]string, len(res.Cols))
	for i := 0; i < n; i++ {
		for j, c := range res.Cols {
			d := c.Get(i)
			if d.IsNull() {
				row[j] = ""
			} else {
				row[j] = d.String()
			}
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ImportCSV loads CSV rows (with a header line naming columns) into an
// existing table. Header names are matched case-insensitively against the
// table schema; empty cells become NULL. It returns the number of rows
// loaded.
func (db *DB) ImportCSV(table string, r io.Reader) (int, error) {
	t := db.lookupTable(table)
	if t == nil {
		return 0, fmt.Errorf("sqldb: no table named %q", table)
	}
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return 0, fmt.Errorf("sqldb: reading CSV header: %w", err)
	}
	mapping := make([]int, len(header))
	for i, h := range header {
		idx := t.Schema.ColIndex(strings.TrimSpace(h))
		if idx < 0 {
			return 0, fmt.Errorf("sqldb: table %s has no column %q", table, h)
		}
		if t.Schema[idx].Type == TBlob {
			return 0, fmt.Errorf("sqldb: blob column %q cannot be CSV-imported", h)
		}
		mapping[i] = idx
	}
	count := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return count, fmt.Errorf("sqldb: reading CSV row %d: %w", count+1, err)
		}
		if len(rec) != len(mapping) {
			return count, fmt.Errorf("sqldb: CSV row %d has %d fields, want %d", count+1, len(rec), len(mapping))
		}
		row := make([]Datum, len(t.Schema))
		for i := range row {
			row[i] = Null()
		}
		for i, cell := range rec {
			d, err := parseCSVCell(cell, t.Schema[mapping[i]].Type)
			if err != nil {
				return count, fmt.Errorf("sqldb: CSV row %d column %s: %w", count+1, t.Schema[mapping[i]].Name, err)
			}
			row[mapping[i]] = d
		}
		if err := t.AppendRow(row); err != nil {
			return count, err
		}
		count++
	}
	return count, nil
}

func parseCSVCell(cell string, typ Type) (Datum, error) {
	if cell == "" {
		return Null(), nil
	}
	switch typ {
	case TInt:
		v, err := strconv.ParseInt(strings.TrimSpace(cell), 10, 64)
		if err != nil {
			return Null(), fmt.Errorf("bad integer %q", cell)
		}
		return Int(v), nil
	case TFloat:
		v, err := strconv.ParseFloat(strings.TrimSpace(cell), 64)
		if err != nil {
			return Null(), fmt.Errorf("bad float %q", cell)
		}
		return Float(v), nil
	case TBool:
		switch strings.ToLower(strings.TrimSpace(cell)) {
		case "true", "1", "t", "yes":
			return Bool(true), nil
		case "false", "0", "f", "no":
			return Bool(false), nil
		}
		return Null(), fmt.Errorf("bad boolean %q", cell)
	case TString:
		return Str(cell), nil
	}
	return Null(), fmt.Errorf("unsupported CSV type %s", typ)
}
