//go:build !race

package sqldb

// raceEnabled reports whether the race detector is active. Wall-clock
// speedup-shape tests compare real execution times at different
// parallelism degrees; race instrumentation distorts the per-worker cost
// balance, so those tests skip under -race (the correctness tests still
// run, which is where -race earns its keep).
const raceEnabled = false
