package sqldb

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/obs"
)

func cacheFixture(t *testing.T) *DB {
	t.Helper()
	db := New()
	mustExec := func(sql string) {
		t.Helper()
		if _, err := db.Exec(sql); err != nil {
			t.Fatalf("fixture %q: %v", sql, err)
		}
	}
	mustExec("CREATE TABLE t (a Int64, b Float64, s String)")
	for i := 0; i < 20; i++ {
		mustExec(fmt.Sprintf("INSERT INTO t VALUES (%d, %d.5, 'r%d')", i, i, i%3))
	}
	mustExec("CREATE TABLE u (a Int64, name String)")
	mustExec("INSERT INTO u VALUES (1,'one'),(2,'two'),(3,'three')")
	return db
}

func queryString(t *testing.T, db *DB, sql string) string {
	t.Helper()
	res, err := db.Query(sql)
	if err != nil {
		t.Fatalf("%q: %v", sql, err)
	}
	var sb strings.Builder
	for i := 0; i < res.NumRows(); i++ {
		for _, c := range res.Cols {
			sb.WriteString(c.Get(i).String())
			sb.WriteByte('|')
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

func TestPlanCacheHitsOnRepeat(t *testing.T) {
	db := cacheFixture(t)
	db.Metrics = obs.NewRegistry()
	db.EnableCache(64)
	const q = "SELECT s, count(*) c FROM t WHERE a > 3 GROUP BY s ORDER BY s"
	first := queryString(t, db, q)
	// Second run: same text (different whitespace) must hit both caches and
	// return identical rows.
	second := queryString(t, db, "SELECT s,   count(*) c FROM t\nWHERE a > 3 GROUP BY s ORDER BY s")
	if first != second {
		t.Fatalf("cached result differs:\n%s\nvs\n%s", first, second)
	}
	st := db.CacheStats()
	if st.Plan.Hits < 1 {
		t.Fatalf("expected a plan-cache hit, stats: %+v", st)
	}
	if st.Stmt.Hits < 1 {
		t.Fatalf("expected a statement-cache hit, stats: %+v", st)
	}
	// Counters must also surface in the metrics registry.
	if got := db.Metrics.Counter("sqldb.cache.plan.hits").Value(); got < 1 {
		t.Fatalf("metrics plan hits = %d", got)
	}
}

func TestCacheDisabledByDefault(t *testing.T) {
	db := cacheFixture(t)
	q := "SELECT count(*) FROM t"
	queryString(t, db, q)
	queryString(t, db, q)
	if st := db.CacheStats(); st.Plan.Hits+st.Plan.Misses+st.Stmt.Hits+st.Stmt.Misses != 0 {
		t.Fatalf("caches active without EnableCache: %+v", st)
	}
}

// TestInsertInvalidatesPlan pins the correctness-critical half of the
// invalidation contract: the planner folds uncorrelated subqueries into
// literals at plan time, so serving a stale plan after an INSERT would
// return rows filtered against an outdated aggregate.
func TestInsertInvalidatesPlan(t *testing.T) {
	db := cacheFixture(t)
	db.EnableCache(64)
	const q = "SELECT count(*) c FROM t WHERE a > (SELECT avg(a) FROM t)"
	cached := queryString(t, db, q)

	fresh := New()
	freshFixtureCopy(t, db, fresh)
	if want := queryString(t, fresh, q); cached != want {
		t.Fatalf("warm-up differs from uncached: %q vs %q", cached, want)
	}

	// Shift the average: rows 0..19 (avg 9.5) plus five rows of 1000.
	for i := 0; i < 5; i++ {
		if _, err := db.Exec("INSERT INTO t VALUES (1000, 0.0, 'x')"); err != nil {
			t.Fatal(err)
		}
		if _, err := fresh.Exec("INSERT INTO t VALUES (1000, 0.0, 'x')"); err != nil {
			t.Fatal(err)
		}
	}
	got := queryString(t, db, q)
	want := queryString(t, fresh, q)
	if got != want {
		t.Fatalf("stale plan served after INSERT: cached %q, uncached %q", got, want)
	}
	if st := db.CacheStats(); st.PlanInvalidations < 1 {
		t.Fatalf("expected a plan invalidation, stats: %+v", st)
	}
}

// freshFixtureCopy replays db's table t and u contents into dst.
func freshFixtureCopy(t *testing.T, src, dst *DB) {
	t.Helper()
	for _, name := range []string{"t", "u"} {
		srcT := src.GetTable(name)
		schema := append(Schema(nil), srcT.Schema...)
		dstT, err := dst.CreateTable(name, schema)
		if err != nil {
			t.Fatal(err)
		}
		n := srcT.NumRows()
		for i := 0; i < n; i++ {
			if err := dstT.AppendRow(srcT.GetRow(i)); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestDDLInvalidatesPlan(t *testing.T) {
	db := cacheFixture(t)
	db.EnableCache(64)
	const q = "SELECT count(*) c FROM u"
	if got := queryString(t, db, q); got != "3|\n" {
		t.Fatalf("warm-up: %q", got)
	}
	// Drop and recreate the table with different contents: the cached plan
	// must not survive the identity change.
	if _, err := db.Exec("DROP TABLE u"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("CREATE TABLE u (a Int64, name String)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO u VALUES (9,'nine')"); err != nil {
		t.Fatal(err)
	}
	if got := queryString(t, db, q); got != "1|\n" {
		t.Fatalf("after DDL: %q", got)
	}
}

func TestViewReplacementInvalidatesPlan(t *testing.T) {
	db := cacheFixture(t)
	db.EnableCache(64)
	if _, err := db.Exec("CREATE VIEW v AS SELECT a FROM t WHERE a < 5"); err != nil {
		t.Fatal(err)
	}
	const q = "SELECT count(*) c FROM v"
	if got := queryString(t, db, q); got != "5|\n" {
		t.Fatalf("warm-up: %q", got)
	}
	if _, err := db.Exec("CREATE OR REPLACE VIEW v AS SELECT a FROM t WHERE a < 2"); err != nil {
		t.Fatal(err)
	}
	if got := queryString(t, db, q); got != "2|\n" {
		t.Fatalf("replaced view served stale plan: %q", got)
	}
}

func TestUpdateDeleteInvalidate(t *testing.T) {
	db := cacheFixture(t)
	db.EnableCache(64)
	const q = "SELECT count(*) c FROM t WHERE b > (SELECT avg(b) FROM t)"
	queryString(t, db, q)
	if _, err := db.Exec("UPDATE t SET b = 0.0 WHERE a < 10"); err != nil {
		t.Fatal(err)
	}
	afterUpdate := queryString(t, db, q)
	// Rows 10..19 have b in 10.5..19.5, rest 0 → avg 7.5 → 10 rows above.
	if afterUpdate != "10|\n" {
		t.Fatalf("after UPDATE: %q", afterUpdate)
	}
	if _, err := db.Exec("DELETE FROM t WHERE a >= 15"); err != nil {
		t.Fatal(err)
	}
	afterDelete := queryString(t, db, q)
	if afterDelete != "5|\n" {
		t.Fatalf("after DELETE: %q", afterDelete)
	}
}

func TestHintedQueriesBypassCache(t *testing.T) {
	db := cacheFixture(t)
	db.EnableCache(64)
	const q = "SELECT count(*) c FROM t WHERE a > 3"
	queryString(t, db, q) // populate
	hits := db.CacheStats().Plan.Hits
	if _, err := db.ExecHinted(q, &QueryHints{}); err != nil {
		t.Fatal(err)
	}
	if db.CacheStats().Plan.Hits != hits {
		t.Fatal("hinted execution must not be served from the plan cache")
	}
}

func TestExplainAnnotatesCacheState(t *testing.T) {
	db := cacheFixture(t)
	db.EnableCache(64)
	firstLine := func(sql string) string {
		res, err := db.Exec(sql)
		if err != nil {
			t.Fatalf("%q: %v", sql, err)
		}
		return res.Cols[0].Get(0).String()
	}
	const q = "EXPLAIN ANALYZE SELECT count(*) c FROM t WHERE a > 3"
	if got := firstLine(q); got != "cache: miss" {
		t.Fatalf("first EXPLAIN ANALYZE: %q, want cache: miss", got)
	}
	if got := firstLine(q); got != "cache: hit" {
		t.Fatalf("second EXPLAIN ANALYZE: %q, want cache: hit", got)
	}
	// The executed query itself now also hits.
	if got := firstLine("EXPLAIN SELECT count(*) c FROM t WHERE a > 3"); got != "cache: hit" {
		t.Fatalf("EXPLAIN after ANALYZE: %q, want cache: hit", got)
	}
}

func TestExplainSysTableReportsBypass(t *testing.T) {
	// sys.* virtual tables have no trackable dependency versions, so their
	// plans are never cached — EXPLAIN must say so on the first line, and
	// repeating the query must not turn the bypass into a hit.
	db := cacheFixture(t)
	db.EnableCache(64)
	db.EnableSysCatalog()
	firstLine := func() string {
		res, err := db.Exec("EXPLAIN SELECT name FROM sys.metrics")
		if err != nil {
			t.Fatal(err)
		}
		return res.Cols[0].Get(0).String()
	}
	for i := 0; i < 2; i++ {
		if got := firstLine(); got != "cache: bypass" {
			t.Fatalf("EXPLAIN over sys.metrics, attempt %d: first line %q, want %q", i+1, got, "cache: bypass")
		}
	}
}

func TestExplainWithoutCacheHasNoAnnotation(t *testing.T) {
	db := cacheFixture(t)
	res, err := db.Exec("EXPLAIN ANALYZE SELECT count(*) c FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if line := res.Cols[0].Get(0).String(); strings.HasPrefix(line, "cache:") {
		t.Fatalf("cache annotation leaked into uncached EXPLAIN: %q", line)
	}
}

func TestPreparedStatementBindsParams(t *testing.T) {
	db := cacheFixture(t)
	db.EnableCache(64)
	ps, err := db.Prepare("SELECT a, s FROM t WHERE a > ? AND s = ? ORDER BY a")
	if err != nil {
		t.Fatal(err)
	}
	if ps.NumParams() != 2 {
		t.Fatalf("NumParams = %d", ps.NumParams())
	}
	res, err := ps.Query(Int(10), Str("r0"))
	if err != nil {
		t.Fatal(err)
	}
	// rows with a in {12, 15, 18} have s = 'r0' and a > 10
	if res.NumRows() != 3 {
		t.Fatalf("rows = %d, want 3", res.NumRows())
	}
	// Different binding, same cached plan.
	res2, err := ps.Query(Int(0), Str("r1"))
	if err != nil {
		t.Fatal(err)
	}
	if res2.NumRows() != 7 {
		t.Fatalf("rebound rows = %d, want 7", res2.NumRows())
	}
	st := db.CacheStats()
	if st.Plan.Hits < 1 {
		t.Fatalf("rebound execution should reuse the cached plan: %+v", st)
	}
	// Binding must not leak into later executions of the shared plan.
	res3, err := ps.Query(Int(10), Str("r0"))
	if err != nil {
		t.Fatal(err)
	}
	if res3.NumRows() != 3 {
		t.Fatalf("third binding rows = %d, want 3", res3.NumRows())
	}
}

func TestPreparedWorksWithoutCache(t *testing.T) {
	db := cacheFixture(t)
	ps, err := db.Prepare("SELECT count(*) c FROM t WHERE a > ?")
	if err != nil {
		t.Fatal(err)
	}
	res, err := ps.Query(Int(15))
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Cols[0].Get(0).I; got != 4 {
		t.Fatalf("count = %d, want 4", got)
	}
}

func TestPreparedParamInSubquery(t *testing.T) {
	db := cacheFixture(t)
	db.EnableCache(64)
	ps, err := db.Prepare("SELECT count(*) c FROM t WHERE a > (SELECT avg(a) FROM t WHERE a < ?)")
	if err != nil {
		t.Fatal(err)
	}
	res, err := ps.Query(Int(20))
	if err != nil {
		t.Fatal(err)
	}
	// avg(a) over a<20 is 9.5 → 10 rows above.
	if got := res.Cols[0].Get(0).I; got != 10 {
		t.Fatalf("count = %d, want 10", got)
	}
	res2, err := ps.Query(Int(11))
	if err != nil {
		t.Fatal(err)
	}
	// avg over a<11 is 5 → 14 rows above.
	if got := res2.Cols[0].Get(0).I; got != 14 {
		t.Fatalf("count = %d, want 14", got)
	}
}

func TestPreparedDML(t *testing.T) {
	db := cacheFixture(t)
	db.EnableCache(64)
	ins, err := db.Prepare("INSERT INTO u VALUES (?, ?)")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ins.Exec(Int(4), Str("four")); err != nil {
		t.Fatal(err)
	}
	if got := queryString(t, db, "SELECT name FROM u WHERE a = 4"); got != "four|\n" {
		t.Fatalf("insert missing: %q", got)
	}
	del, err := db.Prepare("DELETE FROM u WHERE a = ?")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := del.Exec(Int(4)); err != nil {
		t.Fatal(err)
	}
	if got := queryString(t, db, "SELECT count(*) c FROM u"); got != "3|\n" {
		t.Fatalf("delete missing: %q", got)
	}
}

func TestUnboundParamErrors(t *testing.T) {
	db := cacheFixture(t)
	if _, err := db.Query("SELECT a FROM t WHERE a > ?"); err == nil ||
		!strings.Contains(err.Error(), "unbound parameter") {
		t.Fatalf("want unbound-parameter error, got %v", err)
	}
	ps, err := db.Prepare("SELECT a FROM t WHERE a > ?")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ps.Query(); err == nil {
		t.Fatal("want arity error for missing bindings")
	}
}

// TestOrdinalOrderByStableUnderCache guards the OrderBy copy-on-write fix:
// planSelect rewrites ordinal sort keys in place, so replanning from a
// cached AST (statement-cache hit, plan invalidated in between) must see
// the pristine ordinal, not the previous plan's substituted expression.
func TestOrdinalOrderByStableUnderCache(t *testing.T) {
	db := cacheFixture(t)
	db.EnableCache(64)
	const q = "SELECT s, a FROM t WHERE a < 6 ORDER BY 1 DESC, 2"
	first := queryString(t, db, q)
	second := queryString(t, db, q)
	// Invalidate the plan so the next run replans from the cached statement.
	if _, err := db.Exec("INSERT INTO t VALUES (500, 0.0, 'zz')"); err != nil {
		t.Fatal(err)
	}
	third := queryString(t, db, q)
	if first != second || second != third {
		t.Fatalf("ordinal ORDER BY drifted across cached runs:\n%s\n%s\n%s", first, second, third)
	}
	if st := db.CacheStats(); st.Stmt.Hits < 2 {
		t.Fatalf("expected statement-cache hits, stats: %+v", st)
	}
}

func TestCachedResultsMatchUncachedDifferential(t *testing.T) {
	queries := []string{
		"SELECT a, b FROM t WHERE a > 4 ORDER BY a",
		"SELECT s, sum(b) x FROM t GROUP BY s ORDER BY s",
		"SELECT t.a, u.name FROM t, u WHERE t.a = u.a ORDER BY t.a",
		"SELECT a FROM t WHERE a IN (SELECT a FROM u) ORDER BY a",
		"SELECT count(*) c FROM t WHERE b > (SELECT avg(b) FROM t)",
		"SELECT DISTINCT s FROM t ORDER BY s",
	}
	cached := cacheFixture(t)
	cached.EnableCache(64)
	uncached := cacheFixture(t)
	for _, q := range queries {
		// Run twice on the cached DB so the second pass is served hot.
		queryString(t, cached, q)
		got := queryString(t, cached, q)
		want := queryString(t, uncached, q)
		if got != want {
			t.Fatalf("query %q: cached %q, uncached %q", q, got, want)
		}
	}
	if st := cached.CacheStats(); st.Plan.Hits < int64(len(queries)) {
		t.Fatalf("expected ≥%d plan hits, stats: %+v", len(queries), st)
	}
}

// TestConcurrentCachedQueries runs the same cached plan from many
// goroutines while a writer invalidates it; meaningful under -race.
func TestConcurrentCachedQueries(t *testing.T) {
	db := cacheFixture(t)
	db.EnableCache(64)
	const q = "SELECT s, count(*) c FROM t WHERE a >= 0 GROUP BY s ORDER BY s"
	queryString(t, db, q) // warm
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				if _, err := db.Query(q); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			if _, err := db.Exec(fmt.Sprintf("INSERT INTO t VALUES (%d, 1.0, 'w')", 100+i)); err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestNormalizeSQL(t *testing.T) {
	cases := map[string]string{
		"SELECT  1":                        "SELECT 1",
		"\n\tSELECT\n1 ;":                  "SELECT 1",
		"SELECT ' a  b '":                  "SELECT ' a  b '",
		"SELECT 'it''s  ok',  2":           "SELECT 'it''s  ok', 2",
		`SELECT 'esc\' x  ', 1`:            `SELECT 'esc\' x  ', 1`,
		"SELECT a FROM t WHERE s = 'x;y';": "SELECT a FROM t WHERE s = 'x;y'",
	}
	for in, want := range cases {
		if got := normalizeSQL(in); got != want {
			t.Fatalf("normalizeSQL(%q) = %q, want %q", in, got, want)
		}
	}
}
