package sqldb

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"repro/internal/par"
)

// aggState accumulates one aggregate function over one group.
type aggState struct {
	kind     string
	count    int64
	sum      float64
	sumSq    float64
	min, max Datum
	// argVal/argBest back argMax/argMin: argVal is the tracked argument,
	// argBest the current extreme of the ordering value; argRow is the
	// input row index that set them, used as the tie-breaker when merging
	// parallel partials so the merged winner is the first row achieving
	// the extreme — exactly what the serial scan picks.
	argVal   Datum
	argBest  Datum
	argRow   int
	distinct map[string]struct{}
	sawFloat bool
	intSum   int64
}

func newAggState(kind string, distinct bool) *aggState {
	s := &aggState{kind: kind}
	if distinct {
		s.distinct = map[string]struct{}{}
	}
	return s
}

// add folds one row's values into the state; row is the input row index
// (only argmax/argmin record it, for deterministic parallel merges).
func (s *aggState) add(vals []Datum, row int) error {
	if len(vals) == 0 {
		return fmt.Errorf("sqldb: aggregate %s got no arguments", s.kind)
	}
	v := vals[0]
	if v.IsNull() {
		return nil // SQL aggregates skip NULLs
	}
	if s.distinct != nil {
		k := v.GroupKey()
		if _, dup := s.distinct[k]; dup {
			return nil
		}
		s.distinct[k] = struct{}{}
	}
	switch s.kind {
	case "argmax", "argmin":
		if len(vals) != 2 {
			return fmt.Errorf("sqldb: %s expects 2 arguments", s.kind)
		}
		ord := vals[1]
		if ord.IsNull() {
			return nil
		}
		if s.count == 0 {
			s.argVal, s.argBest, s.argRow = v, ord, row
		} else {
			c, err := Compare(ord, s.argBest)
			if err != nil {
				return err
			}
			if (s.kind == "argmax" && c > 0) || (s.kind == "argmin" && c < 0) {
				s.argVal, s.argBest, s.argRow = v, ord, row
			}
		}
		s.count++
	case "count":
		s.count++
	case "sum", "avg", "stddevsamp", "stddevpop", "varsamp", "varpop":
		f, ok := v.AsFloat()
		if !ok {
			return fmt.Errorf("sqldb: %s of non-numeric %s", s.kind, v.T)
		}
		if v.T == TFloat {
			s.sawFloat = true
		} else {
			s.intSum += v.I
		}
		s.count++
		s.sum += f
		s.sumSq += f * f
	case "min":
		if s.count == 0 {
			s.min = v
		} else if c, err := Compare(v, s.min); err != nil {
			return err
		} else if c < 0 {
			s.min = v
		}
		s.count++
	case "max":
		if s.count == 0 {
			s.max = v
		} else if c, err := Compare(v, s.max); err != nil {
			return err
		} else if c > 0 {
			s.max = v
		}
		s.count++
	default:
		return fmt.Errorf("sqldb: unknown aggregate %q", s.kind)
	}
	return nil
}

// merge folds another partial state for the same group into s. Partials
// are merged in ascending chunk order (see execAgg), so float partial sums
// accumulate deterministically and argmax/argmin ties resolve to the
// lowest contributing row via argRow — matching the serial scan. DISTINCT
// aggregates never reach merge: per-partial distinct sets would double
// count, so they force the serial path.
func (s *aggState) merge(o *aggState) error {
	switch s.kind {
	case "argmax", "argmin":
		if o.count > 0 {
			if s.count == 0 {
				s.argVal, s.argBest, s.argRow = o.argVal, o.argBest, o.argRow
			} else {
				c, err := Compare(o.argBest, s.argBest)
				if err != nil {
					return err
				}
				if (s.kind == "argmax" && c > 0) || (s.kind == "argmin" && c < 0) ||
					(c == 0 && o.argRow < s.argRow) {
					s.argVal, s.argBest, s.argRow = o.argVal, o.argBest, o.argRow
				}
			}
		}
	case "min":
		if o.count > 0 {
			if s.count == 0 {
				s.min = o.min
			} else if c, err := Compare(o.min, s.min); err != nil {
				return err
			} else if c < 0 {
				s.min = o.min
			}
		}
	case "max":
		if o.count > 0 {
			if s.count == 0 {
				s.max = o.max
			} else if c, err := Compare(o.max, s.max); err != nil {
				return err
			} else if c > 0 {
				s.max = o.max
			}
		}
	}
	s.count += o.count
	s.sum += o.sum
	s.sumSq += o.sumSq
	s.intSum += o.intSum
	s.sawFloat = s.sawFloat || o.sawFloat
	return nil
}

func (s *aggState) result() Datum {
	switch s.kind {
	case "argmax", "argmin":
		if s.count == 0 {
			return Null()
		}
		return s.argVal
	case "count":
		return Int(s.count)
	case "sum":
		if s.count == 0 {
			return Null()
		}
		if !s.sawFloat {
			return Int(s.intSum)
		}
		return Float(s.sum)
	case "avg":
		if s.count == 0 {
			return Null()
		}
		return Float(s.sum / float64(s.count))
	case "min":
		if s.count == 0 {
			return Null()
		}
		return s.min
	case "max":
		if s.count == 0 {
			return Null()
		}
		return s.max
	case "varsamp", "stddevsamp":
		if s.count < 2 {
			return Float(0)
		}
		n := float64(s.count)
		v := (s.sumSq - s.sum*s.sum/n) / (n - 1)
		if v < 0 {
			v = 0 // guard numeric noise
		}
		if s.kind == "stddevsamp" {
			return Float(math.Sqrt(v))
		}
		return Float(v)
	case "varpop", "stddevpop":
		if s.count == 0 {
			return Null()
		}
		n := float64(s.count)
		v := (s.sumSq - s.sum*s.sum/n) / n
		if v < 0 {
			v = 0
		}
		if s.kind == "stddevpop" {
			return Float(math.Sqrt(v))
		}
		return Float(v)
	}
	return Null()
}

// aggCall is one distinct aggregate invocation found in the SELECT items /
// HAVING clause.
type aggCall struct {
	repr     string
	kind     string
	distinct bool
	star     bool
	args     []Expr
}

// collectAggCalls walks an expression collecting aggregate invocations,
// deduplicated by textual representation.
func collectAggCalls(e Expr, seen map[string]*aggCall, out *[]*aggCall) {
	switch t := e.(type) {
	case *FuncCall:
		name := strings.ToLower(t.Name)
		if isAggregateName(name) {
			repr := t.String()
			if _, dup := seen[repr]; !dup {
				call := &aggCall{repr: repr, kind: name, distinct: t.Distinct, star: t.Star, args: t.Args}
				seen[repr] = call
				*out = append(*out, call)
			}
			return // don't descend into aggregate args
		}
		for _, a := range t.Args {
			collectAggCalls(a, seen, out)
		}
	case *BinExpr:
		collectAggCalls(t.L, seen, out)
		collectAggCalls(t.R, seen, out)
	case *UnaryExpr:
		collectAggCalls(t.E, seen, out)
	case *CaseExpr:
		for _, w := range t.Whens {
			collectAggCalls(w.Cond, seen, out)
			collectAggCalls(w.Then, seen, out)
		}
		if t.Else != nil {
			collectAggCalls(t.Else, seen, out)
		}
	case *InExpr:
		collectAggCalls(t.E, seen, out)
		for _, x := range t.List {
			collectAggCalls(x, seen, out)
		}
	case *BetweenExpr:
		collectAggCalls(t.E, seen, out)
		collectAggCalls(t.Lo, seen, out)
		collectAggCalls(t.Hi, seen, out)
	case *IsNullExpr:
		collectAggCalls(t.E, seen, out)
	}
}

// rewriteAggRefs replaces aggregate calls with references to the synthetic
// columns "$aggN" and group-by expressions with "$grpN" references, so item
// expressions can be evaluated over the aggregated intermediate result.
func rewriteAggRefs(e Expr, aggCols map[string]string, grpCols map[string]string) Expr {
	if name, ok := grpCols[e.String()]; ok {
		return &ColRef{Name: name}
	}
	switch t := e.(type) {
	case *FuncCall:
		if isAggregateName(strings.ToLower(t.Name)) {
			if name, ok := aggCols[t.String()]; ok {
				return &ColRef{Name: name}
			}
			return e
		}
		out := &FuncCall{Name: t.Name, Distinct: t.Distinct, Star: t.Star}
		for _, a := range t.Args {
			out.Args = append(out.Args, rewriteAggRefs(a, aggCols, grpCols))
		}
		return out
	case *BinExpr:
		return &BinExpr{Op: t.Op, L: rewriteAggRefs(t.L, aggCols, grpCols), R: rewriteAggRefs(t.R, aggCols, grpCols)}
	case *UnaryExpr:
		return &UnaryExpr{Op: t.Op, E: rewriteAggRefs(t.E, aggCols, grpCols)}
	case *CaseExpr:
		out := &CaseExpr{}
		for _, w := range t.Whens {
			out.Whens = append(out.Whens, WhenClause{
				Cond: rewriteAggRefs(w.Cond, aggCols, grpCols),
				Then: rewriteAggRefs(w.Then, aggCols, grpCols),
			})
		}
		if t.Else != nil {
			out.Else = rewriteAggRefs(t.Else, aggCols, grpCols)
		}
		return out
	case *InExpr:
		out := &InExpr{E: rewriteAggRefs(t.E, aggCols, grpCols), Not: t.Not}
		for _, x := range t.List {
			out.List = append(out.List, rewriteAggRefs(x, aggCols, grpCols))
		}
		return out
	case *BetweenExpr:
		return &BetweenExpr{
			E:   rewriteAggRefs(t.E, aggCols, grpCols),
			Lo:  rewriteAggRefs(t.Lo, aggCols, grpCols),
			Hi:  rewriteAggRefs(t.Hi, aggCols, grpCols),
			Not: t.Not,
		}
	case *IsNullExpr:
		return &IsNullExpr{E: rewriteAggRefs(t.E, aggCols, grpCols), Not: t.Not}
	}
	return e
}

// execAgg performs hash aggregation and evaluates the SELECT items over the
// per-group aggregate values.
func (db *DB) execAgg(a *LAgg, ec *execCtx) (*Result, error) {
	child, err := db.execPlan(a.Child, ec)
	if err != nil {
		return nil, err
	}
	start := time.Now()

	// Compile group-by keys against the child schema.
	grpFns := make([]evalFn, len(a.GroupBy))
	for i, g := range a.GroupBy {
		f, err := db.compileExpr(g, child.Schema)
		if err != nil {
			return nil, err
		}
		grpFns[i] = f
	}

	// Collect distinct aggregate calls.
	seen := map[string]*aggCall{}
	var calls []*aggCall
	for _, it := range a.Items {
		if !it.Star {
			collectAggCalls(it.Expr, seen, &calls)
		}
	}
	if a.Having != nil {
		collectAggCalls(a.Having, seen, &calls)
	}
	argFns := make([][]evalFn, len(calls))
	for i, c := range calls {
		if c.star {
			continue
		}
		if len(c.args) == 0 {
			return nil, fmt.Errorf("sqldb: aggregate %s needs an argument", c.kind)
		}
		want := 1
		if c.kind == "argmax" || c.kind == "argmin" {
			want = 2
		}
		if len(c.args) != want {
			return nil, fmt.Errorf("sqldb: aggregate %s expects %d arguments, got %d", c.kind, want, len(c.args))
		}
		for _, a := range c.args {
			f, err := db.compileExpr(a, child.Schema)
			if err != nil {
				return nil, err
			}
			argFns[i] = append(argFns[i], f)
		}
	}

	// Group rows. The serial path scans rows in order; the parallel path
	// splits the input into at most `deg` contiguous chunks that each
	// build an independent partial-group map (the per-worker partial
	// aggregates of morsel-driven engines), merged at the barrier in
	// ascending chunk order so float partial sums accumulate
	// deterministically. Each group records the first input row that
	// created it; sorting merged groups by that row reproduces the serial
	// first-seen group order exactly.
	type group struct {
		keys   []Datum
		states []*aggState
		first  int
	}
	n := child.NumRows()
	aggregateRange := func(lo, hi int) (map[string]*group, error) {
		groups := map[string]*group{}
		buf := make([]byte, 0, 64)
		keyBuf := make([]Datum, len(grpFns))
		valBuf := make([]Datum, 0, 4)
		for row := lo; row < hi; row++ {
			if (row-lo)%morselRows == 0 {
				// Cancellation point: chunks can exceed morselRows (and the
				// serial path is one full-range chunk), so the row loop
				// checks the query context every morsel's worth of rows.
				if err := ec.check(); err != nil {
					return nil, err
				}
			}
			buf = buf[:0]
			for i, f := range grpFns {
				v, err := f(child, row)
				if err != nil {
					return nil, err
				}
				keyBuf[i] = v
				buf = v.AppendKey(buf)
			}
			g := groups[string(buf)]
			if g == nil {
				gk := string(buf)
				g = &group{keys: append([]Datum(nil), keyBuf...), states: make([]*aggState, len(calls)), first: row}
				for i, c := range calls {
					g.states[i] = newAggState(c.kind, c.distinct)
				}
				groups[gk] = g
			}
			for i, c := range calls {
				if c.star {
					g.states[i].count++
					continue
				}
				valBuf = valBuf[:0]
				for _, f := range argFns[i] {
					v, err := f(child, row)
					if err != nil {
						return nil, err
					}
					valBuf = append(valBuf, v)
				}
				if err := g.states[i].add(valBuf, row); err != nil {
					return nil, err
				}
			}
		}
		return groups, nil
	}

	deg := ec.parDegreeFor(n)
	if deg > 1 {
		var argExprs []Expr
		for _, c := range calls {
			if c.distinct {
				deg = 1 // per-partial distinct sets would double count
				break
			}
			argExprs = append(argExprs, c.args...)
		}
		if deg > 1 && !db.exprsParallelSafe(a.GroupBy, argExprs) {
			deg = 1
		}
	}
	var groups map[string]*group
	if deg <= 1 {
		var err error
		groups, err = aggregateRange(0, n)
		if err != nil {
			return nil, err
		}
	} else {
		chunk := (n + deg - 1) / deg
		if chunk < morselRows {
			chunk = morselRows
		}
		partials := make([]map[string]*group, (n+chunk-1)/chunk)
		stats, err := par.RunErrCtx(ec.ctx, deg, n, chunk, func(_, lo, hi int) error {
			p, err := aggregateRange(lo, hi)
			partials[lo/chunk] = p
			return err
		})
		if err != nil {
			return nil, err
		}
		db.notePar(ec, stats)
		groups = map[string]*group{}
		for _, p := range partials {
			for gk, g := range p {
				mg := groups[gk]
				if mg == nil {
					groups[gk] = g
					continue
				}
				if g.first < mg.first {
					mg.first = g.first
				}
				for i := range mg.states {
					if err := mg.states[i].merge(g.states[i]); err != nil {
						return nil, err
					}
				}
			}
		}
	}
	order := make([]string, 0, len(groups))
	for gk := range groups {
		order = append(order, gk)
	}
	sort.Slice(order, func(i, j int) bool { return groups[order[i]].first < groups[order[j]].first })
	// Global aggregation over empty input still yields one group.
	if len(grpFns) == 0 && len(groups) == 0 {
		g := &group{states: make([]*aggState, len(calls))}
		for i, c := range calls {
			g.states[i] = newAggState(c.kind, c.distinct)
		}
		groups[""] = g
		order = append(order, "")
	}

	// Build intermediate result: $grpN columns then $aggN columns.
	grpCols := map[string]string{}
	aggCols := map[string]string{}
	inter := &Result{}
	for i, g := range a.GroupBy {
		name := fmt.Sprintf("$grp%d", i)
		grpCols[g.String()] = name
		inter.Schema = append(inter.Schema, OutCol{Name: name})
	}
	for i, c := range calls {
		name := fmt.Sprintf("$agg%d", i)
		aggCols[c.repr] = name
		inter.Schema = append(inter.Schema, OutCol{Name: name})
	}
	nCols := len(a.GroupBy) + len(calls)
	cells := make([][]Datum, nCols)
	for gi, gk := range order {
		g := groups[gk]
		for i := range a.GroupBy {
			cells[i] = append(cells[i], g.keys[i])
		}
		for i := range calls {
			cells[len(a.GroupBy)+i] = append(cells[len(a.GroupBy)+i], g.states[i].result())
		}
		_ = gi
	}
	for i := 0; i < nCols; i++ {
		col := columnFromData(cells[i])
		inter.Cols = append(inter.Cols, col)
		inter.Schema[i].Type = col.Type
	}

	// Evaluate HAVING over the intermediate result.
	if a.Having != nil {
		hav := rewriteAggRefs(a.Having, aggCols, grpCols)
		filtered, err := db.execFilter(inter, []Expr{hav}, ec, OpFilter)
		if err != nil {
			return nil, err
		}
		inter = filtered
	}

	// Evaluate SELECT items.
	out := &Result{}
	rows := inter.NumRows()
	for _, it := range a.Items {
		if it.Star {
			return nil, fmt.Errorf("sqldb: SELECT * is not valid with GROUP BY")
		}
		name := it.Alias
		if name == "" {
			if cr, ok := it.Expr.(*ColRef); ok {
				name = cr.Name
			} else {
				name = it.Expr.String()
			}
		}
		rewritten := rewriteAggRefs(it.Expr, aggCols, grpCols)
		// A bare column that isn't a group key or aggregate is invalid SQL;
		// we resolve it against the group keys by name as a convenience
		// (matches ClickHouse's leniency for functionally-dependent keys).
		fn, err := db.compileExpr(rewritten, inter.Schema)
		if err != nil {
			if cr, ok := it.Expr.(*ColRef); ok {
				// try matching a group-by expression that is a ColRef with
				// the same name
				matched := false
				for gi, g := range a.GroupBy {
					if gcr, ok := g.(*ColRef); ok && strings.EqualFold(gcr.Name, cr.Name) {
						rewritten = &ColRef{Name: fmt.Sprintf("$grp%d", gi)}
						matched = true
						break
					}
				}
				if matched {
					fn, err = db.compileExpr(rewritten, inter.Schema)
				}
			}
			if err != nil {
				return nil, err
			}
		}
		data := make([]Datum, rows)
		for i := 0; i < rows; i++ {
			v, err := fn(inter, i)
			if err != nil {
				return nil, err
			}
			data[i] = v
		}
		col := columnFromData(data)
		out.Cols = append(out.Cols, col)
		out.Schema = append(out.Schema, OutCol{Name: name, Type: col.Type})
	}
	ec.profAdd(OpGroupBy, n, start)
	return out, nil
}

// columnFromData builds a column from a datum slice, inferring the type
// from the first non-null value.
func columnFromData(data []Datum) *Column {
	t := TNull
	for _, d := range data {
		if !d.IsNull() {
			t = d.T
			break
		}
	}
	// Promote mixed int/float to float.
	if t == TInt {
		for _, d := range data {
			if d.T == TFloat {
				t = TFloat
				break
			}
		}
	}
	col := NewColumn(t)
	for _, d := range data {
		_ = col.Append(d)
	}
	return col
}
