package sqldb

// Query lifecycle control: context threading, typed lifecycle errors,
// per-query memory budgets, and recover-at-boundary panic conversion.
//
// Every public execution entry point has a *Context variant that threads a
// context.Context to the executor. Cancellation and deadlines are observed
// cooperatively at morsel boundaries: parallel operators pass the context
// to par.RunErrCtx (workers stop pulling morsels once it is done and drain
// cleanly), the plan walker checks it once per plan node, and serial
// operator loops iterate morsel-sized chunks. A cancelled query returns an
// error matching qerr.ErrCancelled; an expired deadline returns one
// matching qerr.ErrTimeout.
//
// The memory budget (DB.MemoryBudget, or the faults "mem.pressure" point)
// bounds the bytes a query may materialize across operator outputs; when
// the running total exceeds the budget the query fails with
// qerr.ErrMemoryBudget instead of OOMing the process. Column byte sizes
// are only computed while a budget is armed, so the disabled path costs a
// single branch per plan node.
//
// Panics escaping the executor or a scalar UDF (shape mismatches in tensor
// kernels, malformed artifacts, engine bugs) are recovered at the public
// entry points — and re-raised onto the calling goroutine by par.Run when
// they happen on a worker — then converted to qerr.ErrInternal-wrapped
// errors, so a malformed query can no longer crash the process.

import (
	"context"
	"fmt"
	"sync/atomic"

	"repro/internal/faults"
	"repro/internal/par"
	"repro/internal/qerr"
)

// ctxErr returns the classified context error (qerr.ErrCancelled /
// qerr.ErrTimeout) when ctx is done, nil otherwise.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return qerr.FromContext(ctx.Err())
}

// normCtx maps context.Background() (and nil) to nil so the executor's
// per-node and per-morsel checks stay on their zero-cost path for callers
// that do not use cancellation.
func normCtx(ctx context.Context) context.Context {
	if ctx == context.Background() {
		return nil
	}
	return ctx
}

// check is the executor's cancellation point: one branch when the query
// carries no context.
func (ec *execCtx) check() error {
	if ec.ctx == nil {
		return nil
	}
	return qerr.FromContext(ec.ctx.Err())
}

// charge adds a node output's approximate materialized size to the query's
// running total and fails the query once the budget is exceeded. A zero
// budget (the default) is one branch.
func (ec *execCtx) charge(res *Result) error {
	if ec.memBudget <= 0 || res == nil {
		return nil
	}
	var bytes int64
	for _, c := range res.Cols {
		bytes += c.ApproxBytes()
	}
	if used := ec.memUsed.Add(bytes); used > ec.memBudget {
		return fmt.Errorf("%w: materialized ~%d bytes across operators, budget %d",
			qerr.ErrMemoryBudget, used, ec.memBudget)
	}
	return nil
}

// ---- per-query context overrides ----
//
// The multi-session server shares one DB across many tenants, so the
// DB-level MemoryBudget and Parallelism knobs are not enough: each query
// needs its own limits. These overrides ride the query's context and are
// consulted once per statement when the execution context is assembled.

type memBudgetKey struct{}
type parallelismKey struct{}

// WithMemoryBudget returns a context carrying a per-query materialization
// budget in bytes. The executor applies the tightest of the DB-level
// MemoryBudget knob, this override, and any armed "mem.pressure" fault —
// an override can tighten a global cap but never loosen it. bytes <= 0
// returns ctx unchanged.
func WithMemoryBudget(ctx context.Context, bytes int64) context.Context {
	if bytes <= 0 {
		return ctx
	}
	if ctx == nil {
		ctx = context.Background()
	}
	return context.WithValue(ctx, memBudgetKey{}, bytes)
}

// WithParallelism returns a context carrying a per-query worker-degree
// override: 1 forces serial execution, N > 1 caps operators at N workers.
// It takes precedence over the DB.Parallelism knob (the serving layer's
// per-session \parallel equivalent). n <= 0 returns ctx unchanged.
func WithParallelism(ctx context.Context, n int) context.Context {
	if n <= 0 {
		return ctx
	}
	if ctx == nil {
		ctx = context.Background()
	}
	return context.WithValue(ctx, parallelismKey{}, n)
}

func memBudgetFrom(ctx context.Context) int64 {
	if ctx == nil {
		return 0
	}
	b, _ := ctx.Value(memBudgetKey{}).(int64)
	return b
}

func parallelismFrom(ctx context.Context) int {
	if ctx == nil {
		return 0
	}
	n, _ := ctx.Value(parallelismKey{}).(int)
	return n
}

// effectiveBudget resolves the query's byte budget: the DB knob, tightened
// by a context override and by an armed "mem.pressure" fault.
func (db *DB) effectiveBudget(ctx context.Context) int64 {
	budget := db.MemoryBudget
	if o := memBudgetFrom(ctx); o > 0 && (budget <= 0 || o < budget) {
		budget = o
	}
	if p := db.Faults.Bytes(faults.PointMemPressure); p > 0 && (budget <= 0 || p < budget) {
		budget = p
	}
	return budget
}

// newExecCtx assembles the per-query execution context.
func (db *DB) newExecCtx(ctx context.Context) *execCtx {
	deg := db.parDegree()
	if o := parallelismFrom(ctx); o > 0 {
		deg = o
	}
	ec := &execCtx{prof: db.Profile, par: deg, ctx: normCtx(ctx), faults: db.Faults, acct: acctFrom(ctx)}
	if b := db.effectiveBudget(ctx); b > 0 {
		ec.memBudget = b
		ec.memUsed = new(atomic.Int64)
	}
	return ec
}

// runMorsels fans a morsel loop out through par.RunErrCtx with the query's
// context, applying the slow-morsel fault point when armed.
func (db *DB) runMorsels(ec *execCtx, deg, n int, fn func(w, lo, hi int) error) (par.Stats, error) {
	if ec.faults.Active(faults.PointMorselDelay) {
		inner := fn
		fn = func(w, lo, hi int) error {
			if err := ec.faults.Hit(ec.ctx, faults.PointMorselDelay); err != nil {
				return err
			}
			return inner(w, lo, hi)
		}
	}
	return par.RunErrCtx(ec.ctx, deg, n, morselRows, fn)
}

// ---- context-threading public API ----

// ExecContext is Exec with cancellation and deadline support: the query
// observes ctx at morsel boundaries and returns an error matching
// qerr.ErrCancelled / qerr.ErrTimeout when it fires mid-flight.
func (db *DB) ExecContext(ctx context.Context, sql string) (*Result, error) {
	return db.ExecHintedContext(ctx, sql, nil)
}

// QueryContext is Query with cancellation and deadline support.
func (db *DB) QueryContext(ctx context.Context, sql string) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, qerr.Recovered("sqldb query", r)
		}
	}()
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	stmt, err := db.parseOne(sql)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*SelectStmt)
	if !ok {
		return nil, fmt.Errorf("sqldb: Query expects a SELECT, got %T", stmt)
	}
	return db.execStmtRecorded(ctx, sel, sel.String(), nil)
}

// ExecHintedContext is ExecHinted with cancellation and deadline support.
func (db *DB) ExecHintedContext(ctx context.Context, sql string, hints *QueryHints) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, qerr.Recovered("sqldb exec", r)
		}
	}()
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	db.mu.RLock()
	sc := db.stmtCache
	db.mu.RUnlock()
	if sc != nil {
		// Single cached statements skip the lexer and parser entirely;
		// multi-statement scripts fall through to ParseMulti.
		if st, ok := sc.Get(normalizeSQL(sql)); ok {
			return db.execStmtRecorded(ctx, st, st.String(), hints)
		}
	}
	stmts, err := ParseMulti(sql)
	if err != nil {
		return nil, err
	}
	if sc != nil && len(stmts) == 1 {
		if _, isSel := stmts[0].(*SelectStmt); isSel {
			sc.Put(normalizeSQL(sql), stmts[0])
		}
	}
	var last *Result
	for _, st := range stmts {
		last, err = db.execStmtRecorded(ctx, st, st.String(), hints)
		if err != nil {
			return nil, err
		}
	}
	return last, nil
}

// ExecStmtContext is ExecStmt with cancellation and deadline support.
func (db *DB) ExecStmtContext(ctx context.Context, st Stmt, hints *QueryHints) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, qerr.Recovered("sqldb exec", r)
		}
	}()
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	return db.execStmtRecorded(ctx, st, st.String(), hints)
}
