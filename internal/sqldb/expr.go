package sqldb

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/qerr"
)

// safeUDFCall invokes a user-defined scalar function with a panic fence: a
// UDF that panics (shape mismatch in a tensor kernel, malformed artifact,
// out-of-range index) fails just the query with a typed qerr.ErrInternal
// instead of killing the worker goroutine — and with it, the process.
func safeUDFCall(name string, fn func([]Datum) (Datum, error), vals []Datum) (d Datum, err error) {
	defer func() {
		if r := recover(); r != nil {
			d, err = Null(), qerr.Recovered("udf "+name, r)
		}
	}()
	return fn(vals)
}

// OutCol names one column of an intermediate result: the producing
// relation's alias (possibly empty) plus the column name.
type OutCol struct {
	Table string
	Name  string
	Type  Type
}

// Result is a materialized relation: the unit of data flow between physical
// operators (analogous to a ClickHouse block pipeline that has been fully
// drained).
type Result struct {
	Schema []OutCol
	Cols   []*Column
}

// NumRows returns the row count of the result.
func (r *Result) NumRows() int {
	if len(r.Cols) == 0 {
		return 0
	}
	return r.Cols[0].Len()
}

// ColIndex resolves a possibly-qualified column name against the result
// schema. It returns an error if the name is missing or ambiguous.
func (r *Result) ColIndex(table, name string) (int, error) {
	found := -1
	for i, c := range r.Schema {
		if !strings.EqualFold(c.Name, name) {
			continue
		}
		if table != "" && !strings.EqualFold(c.Table, table) {
			continue
		}
		if found >= 0 {
			if table == "" {
				return 0, fmt.Errorf("sqldb: ambiguous column %q", name)
			}
			return 0, fmt.Errorf("sqldb: ambiguous column %s.%s", table, name)
		}
		found = i
	}
	if found < 0 {
		qual := name
		if table != "" {
			qual = table + "." + name
		}
		return 0, fmt.Errorf("sqldb: unknown column %q", qual)
	}
	return found, nil
}

// GetRow materializes row i of the result.
func (r *Result) GetRow(i int) []Datum {
	row := make([]Datum, len(r.Cols))
	for j, c := range r.Cols {
		row[j] = c.Get(i)
	}
	return row
}

// evalFn evaluates an expression against one row of a result.
type evalFn func(r *Result, row int) (Datum, error)

// ScalarUDF is a user-registered scalar function — the engine's nUDF
// extension point. Cost is the optimizer's per-call cost estimate in
// abstract cost units; EstimateSelectivity (optional) reports the fraction
// of rows expected to satisfy `udf(x) = value` predicates, per Eq. (10).
type ScalarUDF struct {
	Name                string
	Arity               int
	Fn                  func(args []Datum) (Datum, error)
	Cost                float64
	EstimateSelectivity func(equalsTo Datum) float64

	// ParallelSafe declares that Fn may be invoked concurrently from
	// multiple executor workers. It defaults to false: expressions calling
	// a non-parallel-safe UDF are evaluated serially even when the rest of
	// the query runs parallel, so closures with unsynchronized state stay
	// correct by default.
	ParallelSafe bool
}

// compileExpr binds an AST expression to a result schema, producing an
// evaluator closure. Scalar subqueries must already have been replaced by
// literals (the planner executes them up front — only uncorrelated
// subqueries are supported, which covers the paper's Q4 batch-norm pattern).
func (db *DB) compileExpr(e Expr, schema []OutCol) (evalFn, error) {
	switch t := e.(type) {
	case *Lit:
		v := t.Val
		return func(*Result, int) (Datum, error) { return v, nil }, nil
	case *Param:
		return nil, fmt.Errorf("sqldb: unbound parameter ?%d — execute through Prepare and bind arguments", t.Idx+1)
	case *ColRef:
		idx := -1
		for i, c := range schema {
			if !strings.EqualFold(c.Name, t.Name) {
				continue
			}
			if t.Table != "" && !strings.EqualFold(c.Table, t.Table) {
				continue
			}
			if idx >= 0 {
				return nil, fmt.Errorf("sqldb: ambiguous column %q", t.String())
			}
			idx = i
		}
		if idx < 0 {
			return nil, fmt.Errorf("sqldb: unknown column %q", t.String())
		}
		i := idx
		return func(r *Result, row int) (Datum, error) { return r.Cols[i].Get(row), nil }, nil
	case *UnaryExpr:
		sub, err := db.compileExpr(t.E, schema)
		if err != nil {
			return nil, err
		}
		switch t.Op {
		case "not":
			return func(r *Result, row int) (Datum, error) {
				v, err := sub(r, row)
				if err != nil {
					return Null(), err
				}
				if v.IsNull() {
					return Null(), nil
				}
				b, ok := v.AsBool()
				if !ok {
					return Null(), fmt.Errorf("sqldb: NOT applied to %s", v.T)
				}
				return Bool(!b), nil
			}, nil
		case "-":
			return func(r *Result, row int) (Datum, error) {
				v, err := sub(r, row)
				if err != nil || v.IsNull() {
					return v, err
				}
				switch v.T {
				case TInt:
					return Int(-v.I), nil
				case TFloat:
					return Float(-v.F), nil
				}
				return Null(), fmt.Errorf("sqldb: unary minus applied to %s", v.T)
			}, nil
		}
		return nil, fmt.Errorf("sqldb: unknown unary op %q", t.Op)
	case *BinExpr:
		return db.compileBin(t, schema)
	case *FuncCall:
		return db.compileFunc(t, schema)
	case *CaseExpr:
		whens := make([]struct{ cond, then evalFn }, len(t.Whens))
		for i, w := range t.Whens {
			c, err := db.compileExpr(w.Cond, schema)
			if err != nil {
				return nil, err
			}
			th, err := db.compileExpr(w.Then, schema)
			if err != nil {
				return nil, err
			}
			whens[i] = struct{ cond, then evalFn }{c, th}
		}
		var els evalFn
		if t.Else != nil {
			var err error
			if els, err = db.compileExpr(t.Else, schema); err != nil {
				return nil, err
			}
		}
		return func(r *Result, row int) (Datum, error) {
			for _, w := range whens {
				c, err := w.cond(r, row)
				if err != nil {
					return Null(), err
				}
				if b, ok := c.AsBool(); ok && b {
					return w.then(r, row)
				}
			}
			if els != nil {
				return els(r, row)
			}
			return Null(), nil
		}, nil
	case *InExpr:
		sub, err := db.compileExpr(t.E, schema)
		if err != nil {
			return nil, err
		}
		items := make([]evalFn, len(t.List))
		for i, x := range t.List {
			if items[i], err = db.compileExpr(x, schema); err != nil {
				return nil, err
			}
		}
		not := t.Not
		return func(r *Result, row int) (Datum, error) {
			v, err := sub(r, row)
			if err != nil {
				return Null(), err
			}
			if v.IsNull() {
				return Null(), nil
			}
			for _, item := range items {
				iv, err := item(r, row)
				if err != nil {
					return Null(), err
				}
				if Equal(v, iv) {
					return Bool(!not), nil
				}
			}
			return Bool(not), nil
		}, nil
	case *BetweenExpr:
		sub, err := db.compileExpr(t.E, schema)
		if err != nil {
			return nil, err
		}
		lo, err := db.compileExpr(t.Lo, schema)
		if err != nil {
			return nil, err
		}
		hi, err := db.compileExpr(t.Hi, schema)
		if err != nil {
			return nil, err
		}
		not := t.Not
		return func(r *Result, row int) (Datum, error) {
			v, err := sub(r, row)
			if err != nil || v.IsNull() {
				return Null(), err
			}
			lv, err := lo(r, row)
			if err != nil {
				return Null(), err
			}
			hv, err := hi(r, row)
			if err != nil {
				return Null(), err
			}
			c1, err := Compare(v, lv)
			if err != nil {
				return Null(), err
			}
			c2, err := Compare(v, hv)
			if err != nil {
				return Null(), err
			}
			in := c1 >= 0 && c2 <= 0
			return Bool(in != not), nil
		}, nil
	case *IsNullExpr:
		sub, err := db.compileExpr(t.E, schema)
		if err != nil {
			return nil, err
		}
		not := t.Not
		return func(r *Result, row int) (Datum, error) {
			v, err := sub(r, row)
			if err != nil {
				return Null(), err
			}
			return Bool(v.IsNull() != not), nil
		}, nil
	case *SubqueryExpr:
		return nil, fmt.Errorf("sqldb: internal: scalar subquery not resolved before compilation")
	}
	return nil, fmt.Errorf("sqldb: cannot compile expression %T", e)
}

func (db *DB) compileBin(t *BinExpr, schema []OutCol) (evalFn, error) {
	l, err := db.compileExpr(t.L, schema)
	if err != nil {
		return nil, err
	}
	r, err := db.compileExpr(t.R, schema)
	if err != nil {
		return nil, err
	}
	op := t.Op
	switch op {
	case "and":
		return func(res *Result, row int) (Datum, error) {
			lv, err := l(res, row)
			if err != nil {
				return Null(), err
			}
			if b, ok := lv.AsBool(); ok && !b {
				return Bool(false), nil
			}
			rv, err := r(res, row)
			if err != nil {
				return Null(), err
			}
			lb, lok := lv.AsBool()
			rb, rok := rv.AsBool()
			if lok && rok {
				return Bool(lb && rb), nil
			}
			return Null(), nil
		}, nil
	case "or":
		return func(res *Result, row int) (Datum, error) {
			lv, err := l(res, row)
			if err != nil {
				return Null(), err
			}
			if b, ok := lv.AsBool(); ok && b {
				return Bool(true), nil
			}
			rv, err := r(res, row)
			if err != nil {
				return Null(), err
			}
			lb, lok := lv.AsBool()
			rb, rok := rv.AsBool()
			if lok && rok {
				return Bool(lb || rb), nil
			}
			return Null(), nil
		}, nil
	case "=", "!=", "<", "<=", ">", ">=":
		return func(res *Result, row int) (Datum, error) {
			lv, err := l(res, row)
			if err != nil {
				return Null(), err
			}
			rv, err := r(res, row)
			if err != nil {
				return Null(), err
			}
			if lv.IsNull() || rv.IsNull() {
				return Null(), nil
			}
			c, err := Compare(lv, rv)
			if err != nil {
				return Null(), err
			}
			switch op {
			case "=":
				return Bool(c == 0), nil
			case "!=":
				return Bool(c != 0), nil
			case "<":
				return Bool(c < 0), nil
			case "<=":
				return Bool(c <= 0), nil
			case ">":
				return Bool(c > 0), nil
			default:
				return Bool(c >= 0), nil
			}
		}, nil
	case "+", "-", "*", "/", "%":
		return func(res *Result, row int) (Datum, error) {
			lv, err := l(res, row)
			if err != nil {
				return Null(), err
			}
			rv, err := r(res, row)
			if err != nil {
				return Null(), err
			}
			return arith(op, lv, rv)
		}, nil
	case "||":
		return func(res *Result, row int) (Datum, error) {
			lv, err := l(res, row)
			if err != nil {
				return Null(), err
			}
			rv, err := r(res, row)
			if err != nil {
				return Null(), err
			}
			if lv.IsNull() || rv.IsNull() {
				return Null(), nil
			}
			return Str(lv.String() + rv.String()), nil
		}, nil
	}
	return nil, fmt.Errorf("sqldb: unknown binary op %q", op)
}

// arith applies a numeric binary operator with int/float promotion.
func arith(op string, a, b Datum) (Datum, error) {
	if a.IsNull() || b.IsNull() {
		return Null(), nil
	}
	if a.T == TInt && b.T == TInt && op != "/" {
		switch op {
		case "+":
			return Int(a.I + b.I), nil
		case "-":
			return Int(a.I - b.I), nil
		case "*":
			return Int(a.I * b.I), nil
		case "%":
			if b.I == 0 {
				return Null(), fmt.Errorf("sqldb: modulo by zero")
			}
			return Int(a.I % b.I), nil
		}
	}
	af, aok := a.AsFloat()
	bf, bok := b.AsFloat()
	if !aok || !bok {
		return Null(), fmt.Errorf("sqldb: arithmetic on %s and %s", a.T, b.T)
	}
	switch op {
	case "+":
		return Float(af + bf), nil
	case "-":
		return Float(af - bf), nil
	case "*":
		return Float(af * bf), nil
	case "/":
		if bf == 0 {
			return Null(), nil // SQL semantics: x/0 yields NULL rather than aborting
		}
		return Float(af / bf), nil
	case "%":
		if bf == 0 {
			return Null(), fmt.Errorf("sqldb: modulo by zero")
		}
		return Float(math.Mod(af, bf)), nil
	}
	return Null(), fmt.Errorf("sqldb: unknown arithmetic op %q", op)
}

func (db *DB) compileFunc(t *FuncCall, schema []OutCol) (evalFn, error) {
	name := strings.ToLower(t.Name)
	if isAggregateName(name) {
		return nil, fmt.Errorf("sqldb: aggregate %s used outside aggregation context", name)
	}
	args := make([]evalFn, len(t.Args))
	for i, a := range t.Args {
		f, err := db.compileExpr(a, schema)
		if err != nil {
			return nil, err
		}
		args[i] = f
	}
	evalArgs := func(r *Result, row int) ([]Datum, error) {
		vals := make([]Datum, len(args))
		for i, f := range args {
			v, err := f(r, row)
			if err != nil {
				return nil, err
			}
			vals[i] = v
		}
		return vals, nil
	}
	if udf := db.lookupUDF(name); udf != nil {
		if udf.Arity >= 0 && len(args) != udf.Arity {
			return nil, fmt.Errorf("sqldb: %s expects %d arguments, got %d", name, udf.Arity, len(args))
		}
		return func(r *Result, row int) (Datum, error) {
			vals, err := evalArgs(r, row)
			if err != nil {
				return Null(), err
			}
			db.noteUDFCall(name)
			return safeUDFCall(name, udf.Fn, vals)
		}, nil
	}
	fn, ok := builtinScalars[name]
	if !ok {
		return nil, fmt.Errorf("sqldb: unknown function %q", name)
	}
	return func(r *Result, row int) (Datum, error) {
		vals, err := evalArgs(r, row)
		if err != nil {
			return Null(), err
		}
		return fn(vals)
	}, nil
}

// builtinScalars is the scalar function library (ClickHouse-flavoured
// names).
var builtinScalars = map[string]func([]Datum) (Datum, error){
	"abs":   numUnary("abs", math.Abs),
	"sqrt":  numUnary("sqrt", math.Sqrt),
	"exp":   numUnary("exp", math.Exp),
	"ln":    numUnary("ln", math.Log),
	"log":   numUnary("log", math.Log),
	"floor": numUnary("floor", math.Floor),
	"ceil":  numUnary("ceil", math.Ceil),
	"round": numUnary("round", math.Round),
	"sign": numUnary("sign", func(x float64) float64 {
		switch {
		case x > 0:
			return 1
		case x < 0:
			return -1
		}
		return 0
	}),
	"pow":   numBinary("pow", math.Pow),
	"power": numBinary("power", math.Pow),
	"greatest": func(args []Datum) (Datum, error) {
		return extreme("greatest", args, func(c int) bool { return c > 0 })
	},
	"least": func(args []Datum) (Datum, error) {
		return extreme("least", args, func(c int) bool { return c < 0 })
	},
	"if": func(args []Datum) (Datum, error) {
		if len(args) != 3 {
			return Null(), fmt.Errorf("sqldb: if expects 3 arguments")
		}
		b, _ := args[0].AsBool()
		if b {
			return args[1], nil
		}
		return args[2], nil
	},
	"coalesce": func(args []Datum) (Datum, error) {
		for _, a := range args {
			if !a.IsNull() {
				return a, nil
			}
		}
		return Null(), nil
	},
	"tofloat64": func(args []Datum) (Datum, error) {
		if len(args) != 1 {
			return Null(), fmt.Errorf("sqldb: toFloat64 expects 1 argument")
		}
		if args[0].IsNull() {
			return Null(), nil
		}
		if f, ok := args[0].AsFloat(); ok {
			return Float(f), nil
		}
		return Null(), fmt.Errorf("sqldb: cannot convert %s to Float64", args[0].T)
	},
	"toint64": func(args []Datum) (Datum, error) {
		if len(args) != 1 {
			return Null(), fmt.Errorf("sqldb: toInt64 expects 1 argument")
		}
		if args[0].IsNull() {
			return Null(), nil
		}
		if v, ok := args[0].AsInt(); ok {
			return Int(v), nil
		}
		return Null(), fmt.Errorf("sqldb: cannot convert %s to Int64", args[0].T)
	},
	"tostring": func(args []Datum) (Datum, error) {
		if len(args) != 1 {
			return Null(), fmt.Errorf("sqldb: toString expects 1 argument")
		}
		if args[0].IsNull() {
			return Null(), nil
		}
		return Str(args[0].String()), nil
	},
	"length": func(args []Datum) (Datum, error) {
		if len(args) != 1 {
			return Null(), fmt.Errorf("sqldb: length expects 1 argument")
		}
		switch args[0].T {
		case TString:
			return Int(int64(len(args[0].S))), nil
		case TBlob:
			return Int(int64(len(args[0].B))), nil
		}
		return Null(), fmt.Errorf("sqldb: length of %s", args[0].T)
	},
	"concat": func(args []Datum) (Datum, error) {
		var sb strings.Builder
		for _, a := range args {
			if a.IsNull() {
				return Null(), nil
			}
			sb.WriteString(a.String())
		}
		return Str(sb.String()), nil
	},
	"lower": strUnary("lower", strings.ToLower),
	"upper": strUnary("upper", strings.ToUpper),
}

func numUnary(name string, f func(float64) float64) func([]Datum) (Datum, error) {
	return func(args []Datum) (Datum, error) {
		if len(args) != 1 {
			return Null(), fmt.Errorf("sqldb: %s expects 1 argument", name)
		}
		if args[0].IsNull() {
			return Null(), nil
		}
		v, ok := args[0].AsFloat()
		if !ok {
			return Null(), fmt.Errorf("sqldb: %s of %s", name, args[0].T)
		}
		return Float(f(v)), nil
	}
}

func numBinary(name string, f func(a, b float64) float64) func([]Datum) (Datum, error) {
	return func(args []Datum) (Datum, error) {
		if len(args) != 2 {
			return Null(), fmt.Errorf("sqldb: %s expects 2 arguments", name)
		}
		if args[0].IsNull() || args[1].IsNull() {
			return Null(), nil
		}
		a, aok := args[0].AsFloat()
		b, bok := args[1].AsFloat()
		if !aok || !bok {
			return Null(), fmt.Errorf("sqldb: %s of %s, %s", name, args[0].T, args[1].T)
		}
		return Float(f(a, b)), nil
	}
}

func strUnary(name string, f func(string) string) func([]Datum) (Datum, error) {
	return func(args []Datum) (Datum, error) {
		if len(args) != 1 {
			return Null(), fmt.Errorf("sqldb: %s expects 1 argument", name)
		}
		if args[0].IsNull() {
			return Null(), nil
		}
		if args[0].T != TString {
			return Null(), fmt.Errorf("sqldb: %s of %s", name, args[0].T)
		}
		return Str(f(args[0].S)), nil
	}
}

func extreme(name string, args []Datum, pick func(int) bool) (Datum, error) {
	if len(args) == 0 {
		return Null(), fmt.Errorf("sqldb: %s expects at least 1 argument", name)
	}
	best := args[0]
	for _, a := range args[1:] {
		if a.IsNull() {
			return Null(), nil
		}
		c, err := Compare(a, best)
		if err != nil {
			return Null(), err
		}
		if pick(c) {
			best = a
		}
	}
	return best, nil
}

// isAggregateName reports whether a function name denotes an aggregate.
func isAggregateName(name string) bool {
	switch name {
	case "count", "sum", "avg", "min", "max", "stddevsamp", "stddevpop", "varsamp", "varpop", "argmax", "argmin":
		return true
	}
	return false
}

// exprHasAggregate walks an expression tree looking for aggregate calls.
func exprHasAggregate(e Expr) bool {
	switch t := e.(type) {
	case *FuncCall:
		if isAggregateName(strings.ToLower(t.Name)) {
			return true
		}
		for _, a := range t.Args {
			if exprHasAggregate(a) {
				return true
			}
		}
	case *BinExpr:
		return exprHasAggregate(t.L) || exprHasAggregate(t.R)
	case *UnaryExpr:
		return exprHasAggregate(t.E)
	case *CaseExpr:
		for _, w := range t.Whens {
			if exprHasAggregate(w.Cond) || exprHasAggregate(w.Then) {
				return true
			}
		}
		if t.Else != nil {
			return exprHasAggregate(t.Else)
		}
	case *InExpr:
		if exprHasAggregate(t.E) {
			return true
		}
		for _, x := range t.List {
			if exprHasAggregate(x) {
				return true
			}
		}
	case *BetweenExpr:
		return exprHasAggregate(t.E) || exprHasAggregate(t.Lo) || exprHasAggregate(t.Hi)
	case *IsNullExpr:
		return exprHasAggregate(t.E)
	}
	return false
}
