package sqldb

// sys.traces and sys.spans: the trace store rendered relationally.
//
// Both tables read immutable snapshots out of DB.Traces (span trees are
// flattened into frozen rows when the tail sampler retains a trace), so
// scans never race concurrent queries writing new spans. Like the other
// sys tables they are volatile — every scan re-reads the store — and the
// plan cache refuses to cache plans over them.
//
//	SELECT t.trace_id, t.reason, s.name, s.dur_ms
//	FROM sys.traces t JOIN sys.spans s ON t.trace_id = s.trace_id
//	WHERE t.wall_ms > 100 ORDER BY s.span_id
//
// trace_id joins against sys.queries / sys.slow_queries, linking a
// history record to its full span tree.

import "time"

func sysTracesTable() *SysTable {
	schema := []OutCol{
		{Name: "trace_id", Type: TString}, {Name: "start", Type: TString},
		{Name: "wall_ms", Type: TFloat}, {Name: "reason", Type: TString},
		{Name: "spans", Type: TInt}, {Name: "span_total", Type: TInt},
		{Name: "truncated", Type: TInt},
	}
	return &SysTable{
		Name:        "sys.traces",
		Description: "traces the tail sampler retained: identity, wall time, retention reason, span counts (joinable with sys.queries/sys.spans on trace_id)",
		Schema:      schema,
		Scan: func(db *DB) (*Result, error) {
			res, cols := sysResult(schema)
			for _, st := range db.Traces.Snapshot() {
				trunc := int64(0)
				if st.Truncated() {
					trunc = 1
				}
				err := sysRow(cols,
					Str(st.ID), Str(st.Start.Format(time.RFC3339Nano)),
					Float(float64(st.Wall)/1e6), Str(st.Reason),
					Int(int64(len(st.Spans))), Int(int64(st.SpanTotal)), Int(trunc))
				if err != nil {
					return nil, err
				}
			}
			return res, nil
		},
	}
}

func sysSpansTable() *SysTable {
	schema := []OutCol{
		{Name: "trace_id", Type: TString}, {Name: "span_id", Type: TInt},
		{Name: "parent_id", Type: TInt}, {Name: "name", Type: TString},
		{Name: "start", Type: TString}, {Name: "dur_ms", Type: TFloat},
		{Name: "attrs", Type: TString},
	}
	return &SysTable{
		Name:        "sys.spans",
		Description: "every span of every retained trace, depth-first (span_id 1 is the root, parent_id 0 means none)",
		Schema:      schema,
		Scan: func(db *DB) (*Result, error) {
			res, cols := sysResult(schema)
			for _, st := range db.Traces.Snapshot() {
				for _, sp := range st.Spans {
					err := sysRow(cols,
						Str(st.ID), Int(int64(sp.SpanID)), Int(int64(sp.ParentID)),
						Str(sp.Name), Str(sp.Start.Format(time.RFC3339Nano)),
						Float(float64(sp.Dur)/1e6), Str(sp.Attrs))
					if err != nil {
						return nil, err
					}
				}
			}
			return res, nil
		},
	}
}
