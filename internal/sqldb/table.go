package sqldb

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// ColumnDef describes one column of a table schema.
type ColumnDef struct {
	Name string
	Type Type
}

// Schema is an ordered list of column definitions.
type Schema []ColumnDef

// ColIndex returns the index of the named column (case-insensitive), or -1.
func (s Schema) ColIndex(name string) int {
	for i, c := range s {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// Column is a typed columnar vector. Exactly one of the typed slices is in
// use, chosen by Type; Nulls (when non-nil) flags NULL rows.
type Column struct {
	Type   Type
	Ints   []int64
	Floats []float64
	Strs   []string
	Bools  []bool
	Blobs  [][]byte
	Nulls  []bool
}

// NewColumn allocates an empty column of the given type.
func NewColumn(t Type) *Column { return &Column{Type: t} }

// Len returns the number of rows in the column.
func (c *Column) Len() int {
	switch c.Type {
	case TInt:
		return len(c.Ints)
	case TFloat:
		return len(c.Floats)
	case TString:
		return len(c.Strs)
	case TBool:
		return len(c.Bools)
	case TBlob:
		return len(c.Blobs)
	case TNull:
		return len(c.Nulls)
	}
	return 0
}

// Get returns row i as a Datum.
func (c *Column) Get(i int) Datum {
	if c.Nulls != nil && c.Nulls[i] {
		return Null()
	}
	switch c.Type {
	case TInt:
		return Int(c.Ints[i])
	case TFloat:
		return Float(c.Floats[i])
	case TString:
		return Str(c.Strs[i])
	case TBool:
		return Bool(c.Bools[i])
	case TBlob:
		return Blob(c.Blobs[i])
	}
	return Null()
}

// Append adds a datum to the column, coercing numerics as needed.
func (c *Column) Append(d Datum) error {
	isNull := d.IsNull()
	switch c.Type {
	case TInt:
		v, ok := d.AsInt()
		if !ok && !isNull {
			return fmt.Errorf("sqldb: cannot store %s in Int64 column", d.T)
		}
		c.Ints = append(c.Ints, v)
	case TFloat:
		v, ok := d.AsFloat()
		if !ok && !isNull {
			return fmt.Errorf("sqldb: cannot store %s in Float64 column", d.T)
		}
		c.Floats = append(c.Floats, v)
	case TString:
		if d.T != TString && !isNull {
			return fmt.Errorf("sqldb: cannot store %s in String column", d.T)
		}
		c.Strs = append(c.Strs, d.S)
	case TBool:
		v, ok := d.AsBool()
		if !ok && !isNull {
			return fmt.Errorf("sqldb: cannot store %s in Bool column", d.T)
		}
		c.Bools = append(c.Bools, v)
	case TBlob:
		if d.T != TBlob && !isNull {
			return fmt.Errorf("sqldb: cannot store %s in Blob column", d.T)
		}
		c.Blobs = append(c.Blobs, d.B)
	case TNull:
		c.Nulls = append(c.Nulls, true)
		return nil
	}
	if isNull {
		c.ensureNulls()
		c.Nulls[c.Len()-1] = true
	} else if c.Nulls != nil {
		c.Nulls = append(c.Nulls, false)
	}
	return nil
}

// ApproxBytes estimates the column's materialized size for the per-query
// memory budget: fixed-width slots at their machine width, strings and
// blobs at header plus payload. It walks the string/blob payloads, so the
// executor only calls it while a budget is armed.
func (c *Column) ApproxBytes() int64 {
	var b int64
	b += int64(len(c.Ints)) * 8
	b += int64(len(c.Floats)) * 8
	b += int64(len(c.Bools))
	b += int64(len(c.Nulls))
	for _, s := range c.Strs {
		b += 16 + int64(len(s))
	}
	for _, bl := range c.Blobs {
		b += 24 + int64(len(bl))
	}
	return b
}

func (c *Column) ensureNulls() {
	if c.Nulls == nil {
		c.Nulls = make([]bool, c.Len())
	}
	for len(c.Nulls) < c.Len() {
		c.Nulls = append(c.Nulls, false)
	}
}

// Clone deep-copies the column: the result shares no backing arrays with
// the receiver, so in-place writes (UPDATE, e.g. DL2SQL's ReLU) to either
// side cannot be observed through the other. The cache layers use it to
// materialize and rehydrate intermediate results safely.
func (c *Column) Clone() *Column {
	out := &Column{Type: c.Type}
	if c.Ints != nil {
		out.Ints = append([]int64(nil), c.Ints...)
	}
	if c.Floats != nil {
		out.Floats = append([]float64(nil), c.Floats...)
	}
	if c.Strs != nil {
		out.Strs = append([]string(nil), c.Strs...)
	}
	if c.Bools != nil {
		out.Bools = append([]bool(nil), c.Bools...)
	}
	if c.Blobs != nil {
		out.Blobs = make([][]byte, len(c.Blobs))
		for i, b := range c.Blobs {
			out.Blobs[i] = append([]byte(nil), b...)
		}
	}
	if c.Nulls != nil {
		out.Nulls = append([]bool(nil), c.Nulls...)
	}
	return out
}

// Gather builds a new column holding rows[i] = c[idx[i]]. A negative index
// produces a NULL row (used by outer joins to pad unmatched sides).
func (c *Column) Gather(idx []int) *Column {
	out := NewColumn(c.Type)
	hasNeg := false
	for _, j := range idx {
		if j < 0 {
			hasNeg = true
			break
		}
	}
	switch c.Type {
	case TInt:
		out.Ints = make([]int64, len(idx))
		for i, j := range idx {
			if j >= 0 {
				out.Ints[i] = c.Ints[j]
			}
		}
	case TFloat:
		out.Floats = make([]float64, len(idx))
		for i, j := range idx {
			if j >= 0 {
				out.Floats[i] = c.Floats[j]
			}
		}
	case TString:
		out.Strs = make([]string, len(idx))
		for i, j := range idx {
			if j >= 0 {
				out.Strs[i] = c.Strs[j]
			}
		}
	case TBool:
		out.Bools = make([]bool, len(idx))
		for i, j := range idx {
			if j >= 0 {
				out.Bools[i] = c.Bools[j]
			}
		}
	case TBlob:
		out.Blobs = make([][]byte, len(idx))
		for i, j := range idx {
			if j >= 0 {
				out.Blobs[i] = c.Blobs[j]
			}
		}
	case TNull:
		out.Nulls = make([]bool, len(idx))
		for i := range idx {
			out.Nulls[i] = true
		}
		return out
	}
	if c.Nulls != nil || hasNeg {
		out.Nulls = make([]bool, len(idx))
		for i, j := range idx {
			if j < 0 {
				out.Nulls[i] = true
			} else if c.Nulls != nil {
				out.Nulls[i] = c.Nulls[j]
			}
		}
	}
	return out
}

// SnapshotCols returns stable shallow copies of the table's column headers:
// the returned columns share backing arrays with the table but keep their
// lengths fixed, so concurrent appends (which only write beyond these
// lengths) cannot be observed through them.
func (t *Table) SnapshotCols() []*Column {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]*Column, len(t.Cols))
	for i, c := range t.Cols {
		cc := *c
		out[i] = &cc
	}
	return out
}

// Table is an in-memory columnar table.
type Table struct {
	Name    string
	Schema  Schema
	Cols    []*Column
	mu      sync.RWMutex
	stats   *TableStats
	indexes map[string]*HashIndex
	// version counts writes (append/update/delete/truncate). The plan cache
	// records it per dependency and replans when it moves — the
	// "invalidated on DDL/INSERT" half of the cache contract.
	version atomic.Int64
}

// Version returns the table's write-version counter. It increases on every
// mutation (row appends, UPDATE, DELETE, TRUNCATE); cached plans record the
// versions of every table they depend on and are invalidated when any
// recorded version moves.
func (t *Table) Version() int64 { return t.version.Load() }

// NewTable creates an empty table with the given schema.
func NewTable(name string, schema Schema) *Table {
	t := &Table{Name: name, Schema: schema, indexes: map[string]*HashIndex{}}
	for _, c := range schema {
		t.Cols = append(t.Cols, NewColumn(c.Type))
	}
	return t
}

// NumRows returns the current row count.
func (t *Table) NumRows() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if len(t.Cols) == 0 {
		return 0
	}
	return t.Cols[0].Len()
}

// AppendRow adds one row; the row length must match the schema.
func (t *Table) AppendRow(row []Datum) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.appendRowLocked(row)
}

func (t *Table) appendRowLocked(row []Datum) error {
	if len(row) != len(t.Schema) {
		return fmt.Errorf("sqldb: table %s expects %d values, got %d", t.Name, len(t.Schema), len(row))
	}
	for i, d := range row {
		if err := t.Cols[i].Append(d); err != nil {
			return fmt.Errorf("sqldb: table %s column %s: %w", t.Name, t.Schema[i].Name, err)
		}
	}
	t.invalidateDerivedLocked()
	return nil
}

// AppendRows bulk-appends rows.
func (t *Table) AppendRows(rows [][]Datum) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, r := range rows {
		if err := t.appendRowLocked(r); err != nil {
			return err
		}
	}
	return nil
}

// GetRow materializes row i as a slice of data.
func (t *Table) GetRow(i int) []Datum {
	t.mu.RLock()
	defer t.mu.RUnlock()
	row := make([]Datum, len(t.Cols))
	for j, c := range t.Cols {
		row[j] = c.Get(i)
	}
	return row
}

// invalidateDerivedLocked drops cached statistics and indexes after a write
// and advances the version counter the plan cache validates against.
func (t *Table) invalidateDerivedLocked() {
	t.stats = nil
	for k := range t.indexes {
		delete(t.indexes, k)
	}
	t.version.Add(1)
}

// ReplaceData swaps in fully-built columns wholesale (a bulk load). The
// column count and types must match the schema. Like any other write it
// bumps the version and drops derived statistics and indexes; dl2sql's
// intermediate cache uses it to rehydrate a materialized FeatureMap table
// without row-at-a-time SQL.
func (t *Table) ReplaceData(cols []*Column) error {
	if len(cols) != len(t.Schema) {
		return fmt.Errorf("sqldb: ReplaceData on %s: %d columns, schema has %d", t.Name, len(cols), len(t.Schema))
	}
	for i, c := range cols {
		if c.Type != t.Schema[i].Type {
			return fmt.Errorf("sqldb: ReplaceData on %s: column %s is %s, schema wants %s",
				t.Name, t.Schema[i].Name, c.Type, t.Schema[i].Type)
		}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.Cols = cols
	t.invalidateDerivedLocked()
	return nil
}

// Truncate removes all rows, keeping the schema.
func (t *Table) Truncate() {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i, c := range t.Schema {
		t.Cols[i] = NewColumn(c.Type)
	}
	t.invalidateDerivedLocked()
}

// DeleteRows removes the given row indices (sorted or not).
func (t *Table) DeleteRows(idx []int) {
	if len(idx) == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	dead := make(map[int]bool, len(idx))
	for _, i := range idx {
		dead[i] = true
	}
	n := t.Cols[0].Len()
	keep := make([]int, 0, n-len(dead))
	for i := 0; i < n; i++ {
		if !dead[i] {
			keep = append(keep, i)
		}
	}
	for i, c := range t.Cols {
		t.Cols[i] = c.Gather(keep)
	}
	t.invalidateDerivedLocked()
}

// TableStats carries optimizer statistics: row count and per-column
// distinct-value estimates (exact when computed; the engine recomputes them
// lazily after writes).
type TableStats struct {
	Rows     int
	Distinct map[string]int
}

// Stats computes (or returns cached) statistics for the table.
func (t *Table) Stats() *TableStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.stats != nil {
		return t.stats
	}
	s := &TableStats{Distinct: map[string]int{}}
	if len(t.Cols) > 0 {
		s.Rows = t.Cols[0].Len()
	}
	// Exact distinct counts; for blob columns we skip (never join keys).
	for i, def := range t.Schema {
		if def.Type == TBlob {
			continue
		}
		col := t.Cols[i]
		seen := make(map[string]struct{}, 64)
		n := col.Len()
		// Cap the scan for very large columns: sample the first 64k rows and
		// extrapolate, which is how production engines keep stats cheap.
		limit := n
		const sampleCap = 65536
		if limit > sampleCap {
			limit = sampleCap
		}
		for r := 0; r < limit; r++ {
			seen[col.Get(r).GroupKey()] = struct{}{}
		}
		d := len(seen)
		if n > limit && d > limit/2 {
			// Looks near-unique in the sample; assume it scales.
			d = d * n / limit
		}
		if d == 0 {
			d = 1
		}
		s.Distinct[strings.ToLower(def.Name)] = d
	}
	t.stats = s
	return s
}

// HashIndex maps a column's group keys to row indices, standing in for the
// paper's indices on MatrixID/OrderID/KernelID.
type HashIndex struct {
	Col  string
	Rows map[string][]int
}

// EnsureIndex builds (or returns) a hash index on the named column.
func (t *Table) EnsureIndex(col string) (*HashIndex, error) {
	key := strings.ToLower(col)
	t.mu.Lock()
	defer t.mu.Unlock()
	if idx, ok := t.indexes[key]; ok {
		return idx, nil
	}
	ci := t.Schema.ColIndex(col)
	if ci < 0 {
		return nil, fmt.Errorf("sqldb: no column %s in table %s", col, t.Name)
	}
	idx := &HashIndex{Col: key, Rows: map[string][]int{}}
	c := t.Cols[ci]
	for i, n := 0, c.Len(); i < n; i++ {
		k := c.Get(i).GroupKey()
		idx.Rows[k] = append(idx.Rows[k], i)
	}
	t.indexes[key] = idx
	return idx, nil
}

// SortedColumnNames lists schema columns alphabetically (used in error text
// and introspection commands).
func (t *Table) SortedColumnNames() []string {
	names := make([]string, len(t.Schema))
	for i, c := range t.Schema {
		names[i] = c.Name
	}
	sort.Strings(names)
	return names
}
