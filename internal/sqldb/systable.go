package sqldb

// In-database self-observability: the sys.* virtual-table catalog.
//
// A SysTable is a named virtual table whose rows are produced at scan time
// from live engine state instead of stored columns. Registered sys tables
// resolve through the normal name-resolution path (newScan consults the
// catalog before tables and views), plan as an LSysScan leaf, and execute
// through the standard executor — so the full relational surface (WHERE,
// ORDER BY, joins, aggregates, EXPLAIN, EXPLAIN ANALYZE, cancellation,
// memory budgets) works over engine state for free:
//
//	SELECT sql, wall_ms FROM sys.queries WHERE wall_ms > 100 ORDER BY wall_ms DESC
//
// Sys tables are volatile — every scan re-reads live state — so the plan
// cache automatically refuses to cache plans over them (their names do not
// resolve as cacheable dependencies), and each execution sees fresh rows.
//
// EnableSysCatalog installs the built-in catalog: sys.metrics, sys.queries,
// sys.slow_queries, sys.cache, sys.breaker, and sys.runtime. Higher layers
// extend it with RegisterSysTable (the strategy layer replaces the
// sys.breaker stub with live circuit-breaker state) and RegisterCacheStats
// (extra rows for sys.cache, e.g. the inference cache).

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"time"

	"repro/internal/cache"
	"repro/internal/par"
)

// SysTable is one virtual table: a fixed schema plus a scan function that
// materializes the current rows from live engine state.
type SysTable struct {
	// Name is the dotted catalog name, e.g. "sys.queries".
	Name string
	// Description is the one-line summary surfaced by SysTables (and the
	// sqlsh \sys meta-command).
	Description string
	// Schema is the table's output schema (OutCol.Table left blank; the
	// planner stamps the query's alias on it).
	Schema []OutCol
	// Scan materializes the table's current rows.
	Scan func(db *DB) (*Result, error)
}

// LSysScan is the leaf plan node reading a virtual system table.
type LSysScan struct {
	SysTable *SysTable
	Alias    string
	schema   []OutCol
	EstRows  float64
}

func (*LSysScan) planNode()             {}
func (s *LSysScan) OutSchema() []OutCol { return s.schema }

// RegisterSysTable installs (or replaces, by name) a virtual table.
func (db *DB) RegisterSysTable(st *SysTable) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.sysTables == nil {
		db.sysTables = map[string]*SysTable{}
	}
	db.sysTables[strings.ToLower(st.Name)] = st
}

// CacheStat is one named sys.cache row.
type CacheStat struct {
	Name string
	cache.Stats
}

// RegisterCacheStats adds a provider of extra sys.cache rows (the strategy
// layer registers its inference-cache stats here).
func (db *DB) RegisterCacheStats(fn func() []CacheStat) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.sysCacheFns = append(db.sysCacheFns, fn)
}

// lookupSysTable resolves a registered sys table by (case-insensitive) name.
func (db *DB) lookupSysTable(name string) *SysTable {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.sysTables[strings.ToLower(name)]
}

// SysTables lists the registered virtual tables sorted by name.
func (db *DB) SysTables() []*SysTable {
	db.mu.RLock()
	out := make([]*SysTable, 0, len(db.sysTables))
	for _, st := range db.sysTables {
		out = append(out, st)
	}
	db.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// newSysScan plans access to a virtual table under the given alias.
func (db *DB) newSysScan(st *SysTable, alias string) Plan {
	schema := make([]OutCol, len(st.Schema))
	for i, c := range st.Schema {
		schema[i] = OutCol{Table: alias, Name: c.Name, Type: c.Type}
	}
	// Estimated cardinality: sys tables are small; history-backed ones are
	// bounded by the ring capacity.
	est := 64.0
	if db.History != nil && (st.Name == "sys.queries" || st.Name == "sys.slow_queries") {
		est = float64(db.History.Cap())
	}
	return &LSysScan{SysTable: st, Alias: alias, schema: schema, EstRows: est}
}

// execSysScan materializes a virtual table scan.
func (db *DB) execSysScan(s *LSysScan, ec *execCtx) (*Result, error) {
	start := time.Now()
	res, err := s.SysTable.Scan(db)
	if err != nil {
		return nil, fmt.Errorf("sqldb: scanning %s: %w", s.SysTable.Name, err)
	}
	res.Schema = s.schema
	ec.profAdd(OpScan, res.NumRows(), start)
	return res, nil
}

// sysRow appends one row of datums to parallel columns.
func sysRow(cols []*Column, vals ...Datum) error {
	for i, v := range vals {
		if err := cols[i].Append(v); err != nil {
			return err
		}
	}
	return nil
}

// sysResult allocates result columns matching a schema.
func sysResult(schema []OutCol) (*Result, []*Column) {
	cols := make([]*Column, len(schema))
	for i, c := range schema {
		cols[i] = NewColumn(c.Type)
	}
	return &Result{Schema: schema, Cols: cols}, cols
}

// EnableSysCatalog registers the built-in sys.* virtual tables. Idempotent;
// call after wiring Metrics and History so the catalog reflects them.
// sys.breaker starts as an empty placeholder — the strategy layer replaces
// it with live circuit-breaker state when observability is attached there.
func (db *DB) EnableSysCatalog() {
	db.RegisterSysTable(sysMetricsTable())
	db.RegisterSysTable(sysQueriesTable("sys.queries",
		"recent statements from the query-history ring: normalized SQL, strategy, cache state, per-query resource accounting, timing, and error class",
		func(db *DB) []queryHistRow { return historyRows(db, false) }))
	db.RegisterSysTable(sysQueriesTable("sys.slow_queries",
		"statements that crossed the slow-query threshold (survive main-ring churn)",
		func(db *DB) []queryHistRow { return historyRows(db, true) }))
	db.RegisterSysTable(sysCacheTable())
	db.RegisterSysTable(sysBreakerStub())
	db.RegisterSysTable(sysRuntimeTable())
	db.RegisterSysTable(sysTracesTable())
	db.RegisterSysTable(sysSpansTable())
}

// ---- sys.metrics ----

func sysMetricsTable() *SysTable {
	schema := []OutCol{
		{Name: "name", Type: TString}, {Name: "kind", Type: TString},
		{Name: "value", Type: TFloat}, {Name: "count", Type: TInt},
		{Name: "min", Type: TFloat}, {Name: "max", Type: TFloat},
		{Name: "mean", Type: TFloat}, {Name: "p50", Type: TFloat},
		{Name: "p95", Type: TFloat}, {Name: "p99", Type: TFloat},
	}
	return &SysTable{
		Name:        "sys.metrics",
		Description: "every registered counter, gauge, and histogram; histograms carry count/min/max/mean and interpolated p50/p95/p99",
		Schema:      schema,
		Scan: func(db *DB) (*Result, error) {
			res, cols := sysResult(schema)
			if db.Metrics == nil {
				return res, nil
			}
			snap := db.Metrics.Snapshot()
			type row struct {
				name string
				vals []Datum
			}
			var rows []row
			for name, v := range snap.Counters {
				rows = append(rows, row{name, []Datum{Str("counter"), Float(float64(v)), Int(v),
					Null(), Null(), Null(), Null(), Null(), Null()}})
			}
			for name, v := range snap.Gauges {
				rows = append(rows, row{name, []Datum{Str("gauge"), Float(v), Null(),
					Null(), Null(), Null(), Null(), Null(), Null()}})
			}
			for name, s := range snap.Histograms {
				rows = append(rows, row{name, []Datum{Str("histogram"), Float(s.Sum), Int(int64(s.Count)),
					Float(s.Min), Float(s.Max), Float(s.Mean), Float(s.P50), Float(s.P95), Float(s.P99)}})
			}
			sort.Slice(rows, func(i, j int) bool { return rows[i].name < rows[j].name })
			for _, r := range rows {
				if err := sysRow(cols, append([]Datum{Str(r.name)}, r.vals...)...); err != nil {
					return nil, err
				}
			}
			return res, nil
		},
	}
}

// ---- sys.queries / sys.slow_queries ----

// queryHistRow adapts obs.QueryRecord for relational rendering.
type queryHistRow struct {
	id                                  int64
	sql, strategy, fallback, cacheState string
	start                               time.Time
	wallMs, busyMs                      float64
	rowsOut, rowsScanned, bytesOut      int64
	morsels, parallelOps                int64
	udfCalls, inferCalls, retries       int64
	errClass, errText                   string
	traceID                             string
}

func historyRows(db *DB, slow bool) []queryHistRow {
	if db.History == nil {
		return nil
	}
	recs := db.History.Snapshot()
	if slow {
		recs = db.History.SlowSnapshot()
	}
	rows := make([]queryHistRow, len(recs))
	for i, r := range recs {
		rows[i] = queryHistRow{
			id: r.ID, sql: r.SQL, strategy: r.Strategy, fallback: r.Fallback,
			cacheState: r.CacheState, start: r.Start,
			wallMs: float64(r.Wall) / 1e6, busyMs: float64(r.Busy) / 1e6,
			rowsOut: r.RowsOut, rowsScanned: r.RowsScanned, bytesOut: r.BytesOut,
			morsels: r.Morsels, parallelOps: r.ParallelOps,
			udfCalls: r.UDFCalls, inferCalls: r.InferCalls, retries: r.Retries,
			errClass: r.ErrClass, errText: r.Err, traceID: r.TraceID,
		}
	}
	return rows
}

func sysQueriesTable(name, desc string, rowsOf func(db *DB) []queryHistRow) *SysTable {
	schema := []OutCol{
		{Name: "id", Type: TInt}, {Name: "sql", Type: TString},
		{Name: "strategy", Type: TString}, {Name: "fallback", Type: TString},
		{Name: "cache", Type: TString}, {Name: "start", Type: TString},
		{Name: "wall_ms", Type: TFloat}, {Name: "busy_ms", Type: TFloat},
		{Name: "rows_out", Type: TInt}, {Name: "rows_scanned", Type: TInt},
		{Name: "bytes_out", Type: TInt}, {Name: "morsels", Type: TInt},
		{Name: "parallel_ops", Type: TInt}, {Name: "udf_calls", Type: TInt},
		{Name: "infer_calls", Type: TInt}, {Name: "retries", Type: TInt},
		{Name: "err_class", Type: TString}, {Name: "err", Type: TString},
		{Name: "trace_id", Type: TString},
	}
	return &SysTable{
		Name:        name,
		Description: desc,
		Schema:      schema,
		Scan: func(db *DB) (*Result, error) {
			res, cols := sysResult(schema)
			for _, r := range rowsOf(db) {
				err := sysRow(cols,
					Int(r.id), Str(r.sql), Str(r.strategy), Str(r.fallback),
					Str(r.cacheState), Str(r.start.Format(time.RFC3339Nano)),
					Float(r.wallMs), Float(r.busyMs),
					Int(r.rowsOut), Int(r.rowsScanned), Int(r.bytesOut),
					Int(r.morsels), Int(r.parallelOps), Int(r.udfCalls),
					Int(r.inferCalls), Int(r.retries),
					Str(r.errClass), Str(r.errText), Str(r.traceID))
				if err != nil {
					return nil, err
				}
			}
			return res, nil
		},
	}
}

// ---- sys.cache ----

func sysCacheTable() *SysTable {
	schema := []OutCol{
		{Name: "cache", Type: TString}, {Name: "len", Type: TInt},
		{Name: "cap", Type: TInt}, {Name: "hits", Type: TInt},
		{Name: "misses", Type: TInt}, {Name: "evictions", Type: TInt},
		{Name: "hit_rate", Type: TFloat},
	}
	return &SysTable{
		Name:        "sys.cache",
		Description: "statement/plan cache occupancy and hit statistics (plus any registered higher-layer caches)",
		Schema:      schema,
		Scan: func(db *DB) (*Result, error) {
			res, cols := sysResult(schema)
			db.mu.RLock()
			sc, pc := db.stmtCache, db.planCache
			fns := append([]func() []CacheStat(nil), db.sysCacheFns...)
			db.mu.RUnlock()
			var rows []CacheStat
			if sc != nil {
				rows = append(rows, CacheStat{Name: "statement", Stats: sc.Stats()})
			}
			if pc != nil {
				rows = append(rows, CacheStat{Name: "plan", Stats: pc.Stats()})
			}
			for _, fn := range fns {
				rows = append(rows, fn()...)
			}
			for _, r := range rows {
				err := sysRow(cols, Str(r.Name), Int(int64(r.Len)), Int(int64(r.Cap)),
					Int(r.Hits), Int(r.Misses), Int(r.Evictions), Float(r.HitRate()))
				if err != nil {
					return nil, err
				}
			}
			return res, nil
		},
	}
}

// ---- sys.breaker ----

// sysBreakerStub is the default (empty) breaker table; the strategy layer,
// which owns the circuit breakers, re-registers sys.breaker with live rows.
func sysBreakerStub() *SysTable {
	schema := BreakerTableSchema()
	return &SysTable{
		Name:        "sys.breaker",
		Description: "circuit-breaker state per serving component (populated when the strategy layer attaches observability)",
		Schema:      schema,
		Scan: func(db *DB) (*Result, error) {
			res, _ := sysResult(schema)
			return res, nil
		},
	}
}

// BreakerTableSchema is the canonical sys.breaker schema, shared between
// the stub registered here and the live table the strategy layer installs.
func BreakerTableSchema() []OutCol {
	return []OutCol{
		{Name: "component", Type: TString}, {Name: "state", Type: TString},
		{Name: "trips", Type: TInt}, {Name: "fail_threshold", Type: TInt},
		{Name: "cooldown_ms", Type: TFloat},
	}
}

// ---- sys.runtime ----

var processStart = time.Now()

func sysRuntimeTable() *SysTable {
	schema := []OutCol{{Name: "key", Type: TString}, {Name: "value", Type: TFloat}}
	return &SysTable{
		Name:        "sys.runtime",
		Description: "process runtime: goroutines, heap, GC, parallel-pool occupancy, history occupancy",
		Schema:      schema,
		Scan: func(db *DB) (*Result, error) {
			res, cols := sysResult(schema)
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			occ := par.Occupancy()
			kv := []struct {
				k string
				v float64
			}{
				{"uptime_s", time.Since(processStart).Seconds()},
				{"goroutines", float64(runtime.NumGoroutine())},
				{"num_cpu", float64(runtime.NumCPU())},
				{"heap_alloc_bytes", float64(ms.HeapAlloc)},
				{"heap_sys_bytes", float64(ms.HeapSys)},
				{"total_alloc_bytes", float64(ms.TotalAlloc)},
				{"gc_cycles", float64(ms.NumGC)},
				{"gc_pause_total_ms", float64(ms.PauseTotalNs) / 1e6},
				{"parallelism", float64(db.parDegree())},
				{"par_default_degree", float64(occ.DefaultDegree)},
				{"par_active_workers", float64(occ.ActiveWorkers)},
				{"par_runs", float64(occ.Runs)},
				{"par_morsels", float64(occ.Morsels)},
				{"history_len", float64(db.History.Len())},
				{"history_cap", float64(db.History.Cap())},
				{"slow_threshold_ms", float64(db.History.SlowThreshold()) / 1e6},
			}
			for _, e := range kv {
				if err := sysRow(cols, Str(e.k), Float(e.v)); err != nil {
					return nil, err
				}
			}
			return res, nil
		},
	}
}
