package sqldb

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/obs"
	"repro/internal/qerr"
)

// newObsDB builds a DB with the full observability stack armed: metrics
// registry, query-history ring, and the built-in sys.* catalog.
func newObsDB(t *testing.T, histCap int) *DB {
	t.Helper()
	db := newTestDB(t)
	db.Metrics = obs.NewRegistry()
	db.History = obs.NewQueryHistory(histCap)
	db.EnableSysCatalog()
	return db
}

// colIndex resolves a column by name in a result schema.
func colIndex(t *testing.T, res *Result, name string) int {
	t.Helper()
	for i, c := range res.Schema {
		if c.Name == name {
			return i
		}
	}
	t.Fatalf("column %q not in schema %v", name, res.Schema)
	return -1
}

func TestSysCatalogScansAllTables(t *testing.T) {
	db := newObsDB(t, 32)
	mustExec(t, db, `SELECT count(*) c FROM emp`)

	tables := db.SysTables()
	if len(tables) != 8 {
		t.Fatalf("SysTables() = %d tables, want 8", len(tables))
	}
	for _, st := range tables {
		if st.Description == "" {
			t.Errorf("%s: empty description", st.Name)
		}
		res := mustExec(t, db, "SELECT * FROM "+st.Name)
		if len(res.Schema) != len(st.Schema) {
			t.Errorf("%s: %d result cols, want %d", st.Name, len(res.Schema), len(st.Schema))
		}
	}

	// sys.metrics reflects the registry: the engine query counter must be
	// present once at least one recorded statement ran.
	res := mustExec(t, db, `SELECT value FROM sys.metrics WHERE name = 'sqldb.queries'`)
	if res.NumRows() != 1 || res.Cols[0].Get(0).F < 1 {
		t.Fatalf("sys.metrics sqldb.queries: %d rows, value %v", res.NumRows(), res.Cols[0].Get(0))
	}
	// sys.runtime always has the process keys.
	res = mustExec(t, db, `SELECT value FROM sys.runtime WHERE key = 'num_cpu'`)
	if res.NumRows() != 1 || res.Cols[0].Get(0).F < 1 {
		t.Fatalf("sys.runtime num_cpu: %d rows", res.NumRows())
	}
}

func TestSysQueriesRelationalSurface(t *testing.T) {
	db := newObsDB(t, 32)
	mustExec(t, db, `SELECT count(*) a FROM emp`)
	mustExec(t, db, `SELECT name FROM emp ORDER BY salary DESC`)

	// The acceptance-shaped query: filter and order over accounting columns.
	res := mustExec(t, db,
		`SELECT sql, wall_ms FROM sys.queries WHERE wall_ms >= 0 AND err_class = '' ORDER BY wall_ms DESC`)
	if res.NumRows() < 2 {
		t.Fatalf("sys.queries rows = %d, want >= 2", res.NumRows())
	}
	prev := res.Cols[1].Get(0).F
	for i := 0; i < res.NumRows(); i++ {
		if sql := res.Cols[0].Get(i).S; !strings.HasPrefix(sql, "SELECT") {
			t.Fatalf("row %d: sql %q does not look normalized", i, sql)
		}
		if w := res.Cols[1].Get(i).F; w > prev {
			t.Fatalf("row %d: wall_ms %v not descending (prev %v)", i, w, prev)
		} else {
			prev = w
		}
	}

	// Aggregation over the history works like any table.
	res = mustExec(t, db, `SELECT count(*) c, max(rows_out) m FROM sys.queries`)
	if res.Cols[0].Get(0).I < 2 || res.Cols[1].Get(0).I < 1 {
		t.Fatalf("aggregate over sys.queries: count=%v max=%v", res.Cols[0].Get(0), res.Cols[1].Get(0))
	}
}

func TestSysQueriesCacheStates(t *testing.T) {
	db := newObsDB(t, 32)
	db.EnableCache(16)
	const q = `SELECT count(*) c FROM emp WHERE salary > 75`
	mustExec(t, db, q)
	mustExec(t, db, q)

	res := mustExec(t, db, `SELECT cache FROM sys.queries ORDER BY id`)
	var states []string
	for i := 0; i < res.NumRows(); i++ {
		states = append(states, res.Cols[0].Get(i).S)
	}
	if len(states) < 2 || states[0] != "miss" || states[1] != "hit" {
		t.Fatalf("cache states = %v, want [miss hit ...]", states)
	}
	// sys.* plans are never cached, so scans over sys.queries report bypass.
	res = mustExec(t, db, `SELECT cache FROM sys.queries ORDER BY id DESC LIMIT 1`)
	if got := res.Cols[0].Get(0).S; got != "bypass" {
		t.Fatalf("sys scan cache state = %q, want bypass", got)
	}
}

func TestSysQueriesCacheDisabledState(t *testing.T) {
	db := newObsDB(t, 8)
	mustExec(t, db, `SELECT count(*) c FROM emp`)
	recs := db.History.Snapshot()
	if len(recs) == 0 || recs[len(recs)-1].CacheState != "disabled" {
		t.Fatalf("cache state without cache = %+v, want disabled", recs)
	}
}

func TestSysQueriesResourceAccounting(t *testing.T) {
	db := New()
	db.Profile = NewProfile()
	db.Parallelism = 4
	db.Metrics = obs.NewRegistry()
	db.History = obs.NewQueryHistory(16)
	db.EnableSysCatalog()
	db.RegisterUDF(&ScalarUDF{
		Name: "bump", Arity: 1,
		Fn:           func(args []Datum) (Datum, error) { return Float(args[0].F + 1), nil },
		Cost:         1,
		ParallelSafe: true,
	})
	mustExec(t, db, `CREATE TABLE big (x Int64, v Float64)`)
	tbl := db.GetTable("big")
	for i := 0; i < 8192; i++ {
		if err := tbl.AppendRow([]Datum{Int(int64(i)), Float(float64(i))}); err != nil {
			t.Fatal(err)
		}
	}

	mustExec(t, db, `SELECT sum(bump(v)) s FROM big WHERE bump(v) > 1`)
	recs := db.History.Snapshot()
	rec := recs[len(recs)-1]
	if rec.RowsScanned < 8192 {
		t.Errorf("rows_scanned = %d, want >= 8192", rec.RowsScanned)
	}
	if rec.UDFCalls == 0 {
		t.Errorf("udf_calls = 0, want > 0")
	}
	if rec.Morsels == 0 || rec.ParallelOps == 0 {
		t.Errorf("morsels = %d parallel_ops = %d, want both > 0", rec.Morsels, rec.ParallelOps)
	}
	if rec.Busy <= 0 || rec.Wall <= 0 {
		t.Errorf("busy = %v wall = %v, want both > 0", rec.Busy, rec.Wall)
	}
	if rec.RowsOut != 1 || rec.BytesOut <= 0 {
		t.Errorf("rows_out = %d bytes_out = %d", rec.RowsOut, rec.BytesOut)
	}
	if rec.ErrClass != "" {
		t.Errorf("err_class = %q, want empty", rec.ErrClass)
	}

	// The same numbers are visible relationally.
	res := mustExec(t, db,
		`SELECT udf_calls, morsels, parallel_ops FROM sys.queries WHERE udf_calls > 0`)
	if res.NumRows() != 1 {
		t.Fatalf("sys.queries udf rows = %d, want 1", res.NumRows())
	}
}

func TestSysQueriesErrorClass(t *testing.T) {
	db := newObsDB(t, 8)
	if _, err := db.Exec(`SELECT nosuch FROM emp`); err == nil {
		t.Fatal("expected error for unknown column")
	}
	recs := db.History.Snapshot()
	rec := recs[len(recs)-1]
	if rec.ErrClass != "error" || rec.Err == "" {
		t.Fatalf("error record = %+v, want err_class=error with message", rec)
	}
	res := mustExec(t, db, `SELECT count(*) c FROM sys.queries WHERE err_class = 'error'`)
	if res.Cols[0].Get(0).I != 1 {
		t.Fatalf("error rows in sys.queries = %v, want 1", res.Cols[0].Get(0))
	}
}

func TestSysQueriesSlowRing(t *testing.T) {
	db := newObsDB(t, 16)
	db.History.SetSlowThreshold(1) // 1ns: everything is slow
	mustExec(t, db, `SELECT count(*) c FROM emp`)
	res := mustExec(t, db, `SELECT sql FROM sys.slow_queries`)
	if res.NumRows() < 1 {
		t.Fatalf("sys.slow_queries empty with 1ns threshold")
	}
	if got := db.Metrics.Counter(obs.MetricSlowQueries).Value(); got < 1 {
		t.Fatalf("slow-query counter = %d, want >= 1", got)
	}
}

func TestSysScanExplain(t *testing.T) {
	db := newObsDB(t, 8)
	mustExec(t, db, `SELECT count(*) c FROM emp`)

	res := mustExec(t, db, `EXPLAIN SELECT sql FROM sys.queries WHERE wall_ms > 100`)
	plan := resultText(res)
	if !strings.Contains(plan, "SysScan sys.queries as queries") {
		t.Fatalf("EXPLAIN missing SysScan line:\n%s", plan)
	}

	res = mustExec(t, db, `EXPLAIN ANALYZE SELECT sql FROM sys.queries ORDER BY wall_ms DESC`)
	plan = resultText(res)
	if !strings.Contains(plan, "SysScan sys.queries") || !strings.Contains(plan, "actual rows=") {
		t.Fatalf("EXPLAIN ANALYZE missing SysScan actuals:\n%s", plan)
	}
}

// resultText joins a single-column textual result into one string.
func resultText(res *Result) string {
	var sb strings.Builder
	for i := 0; i < res.NumRows(); i++ {
		sb.WriteString(res.Cols[0].Get(i).S)
		sb.WriteString("\n")
	}
	return sb.String()
}

func TestSysTableJoinsWithBaseTables(t *testing.T) {
	db := newObsDB(t, 16)
	mustExec(t, db, `SELECT count(*) c FROM emp`)
	// A sys table participates in joins like any relation.
	res := mustExec(t, db, `
		SELECT q.sql, m.value
		FROM sys.queries q, sys.metrics m
		WHERE m.name = 'sqldb.queries' AND q.err_class = ''`)
	if res.NumRows() < 1 {
		t.Fatalf("join over sys tables returned %d rows", res.NumRows())
	}
}

func TestDottedNameRoundTrip(t *testing.T) {
	for _, sql := range []string{
		`SELECT * FROM sys.queries`,
		`SELECT q.sql FROM sys.queries q WHERE q.wall_ms > 100 ORDER BY q.wall_ms DESC`,
		`SELECT count(*) c FROM sys.metrics`,
	} {
		st, err := ParseMulti(sql)
		if err != nil {
			t.Fatalf("parse %q: %v", sql, err)
		}
		rendered := st[0].String()
		st2, err := ParseMulti(rendered)
		if err != nil {
			t.Fatalf("re-parse %q: %v", rendered, err)
		}
		if got := st2[0].String(); got != rendered {
			t.Fatalf("round trip diverged:\n  first:  %s\n  second: %s", rendered, got)
		}
	}
	// The default alias of a dotted name is its last segment.
	st, err := ParseMulti(`SELECT queries.sql FROM sys.queries`)
	if err != nil {
		t.Fatalf("last-segment alias: %v", err)
	}
	sel := st[0].(*SelectStmt)
	if ref := sel.From; ref.Table != "sys.queries" || ref.Alias != "queries" {
		t.Fatalf("ref = %q alias %q, want sys.queries / queries", ref.Table, ref.Alias)
	}
}

func TestSysScanCancellation(t *testing.T) {
	db := newObsDB(t, 8)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := db.QueryContext(ctx, `SELECT * FROM sys.queries`)
	if !errors.Is(err, qerr.ErrCancelled) {
		t.Fatalf("cancelled sys scan: %v, want ErrCancelled", err)
	}

	ctx, cancel = context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond)
	_, err = db.QueryContext(ctx, `SELECT * FROM sys.runtime`)
	if !errors.Is(err, qerr.ErrTimeout) {
		t.Fatalf("timed-out sys scan: %v, want ErrTimeout", err)
	}
}

func TestSysCacheRegisteredProviders(t *testing.T) {
	db := newObsDB(t, 8)
	db.EnableCache(16)
	db.RegisterCacheStats(func() []CacheStat {
		return []CacheStat{{Name: "inference", Stats: cache.Stats{Hits: 7, Misses: 3, Len: 2, Cap: 8}}}
	})
	mustExec(t, db, `SELECT count(*) c FROM emp`)

	res := mustExec(t, db, `SELECT cache, hits FROM sys.cache ORDER BY cache`)
	got := map[string]int64{}
	for i := 0; i < res.NumRows(); i++ {
		got[res.Cols[0].Get(i).S] = res.Cols[1].Get(i).I
	}
	for _, want := range []string{"statement", "plan", "inference"} {
		if _, ok := got[want]; !ok {
			t.Errorf("sys.cache missing row %q (got %v)", want, got)
		}
	}
	if got["inference"] != 7 {
		t.Errorf("inference hits = %d, want 7", got["inference"])
	}
}

func TestPreparedFastPathRecorded(t *testing.T) {
	db := newObsDB(t, 16)
	db.EnableCache(16)
	p, err := db.Prepare(`SELECT count(*) c FROM emp WHERE salary > ?`)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := p.Query(Float(50)); err != nil {
			t.Fatal(err)
		}
	}
	recs := db.History.Snapshot()
	if len(recs) != 3 {
		t.Fatalf("prepared executions recorded = %d, want 3", len(recs))
	}
	last := recs[len(recs)-1]
	if last.CacheState != "hit" {
		t.Fatalf("warm prepared cache state = %q, want hit", last.CacheState)
	}
	if last.RowsOut != 1 || last.Wall <= 0 {
		t.Fatalf("prepared record = %+v", last)
	}
}

func TestSysQueriesConcurrentReadersWriters(t *testing.T) {
	db := newObsDB(t, 64)
	db.Parallelism = 2

	const writers, readers, iters = 4, 3, 50
	var wg sync.WaitGroup
	errc := make(chan error, writers+readers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if _, err := db.Query(`SELECT count(*) c FROM emp WHERE salary > 50`); err != nil {
					errc <- err
					return
				}
			}
		}()
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if _, err := db.Query(`SELECT count(*) c, max(wall_ms) m FROM sys.queries`); err != nil {
					errc <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	if got := db.History.Len(); got != 64 {
		t.Fatalf("history len after churn = %d, want full ring 64", got)
	}
	// IDs in the ring stay strictly increasing under concurrency.
	recs := db.History.Snapshot()
	for i := 1; i < len(recs); i++ {
		if recs[i].ID <= recs[i-1].ID {
			t.Fatalf("history IDs not increasing: %d then %d", recs[i-1].ID, recs[i].ID)
		}
	}
}

func TestRegisterSysTableReplaces(t *testing.T) {
	db := newObsDB(t, 8)
	schema := BreakerTableSchema()
	db.RegisterSysTable(&SysTable{
		Name:        "sys.breaker",
		Description: "live breaker state",
		Schema:      schema,
		Scan: func(db *DB) (*Result, error) {
			res, cols := sysResult(schema)
			err := sysRow(cols, Str("point-serving"), Str("open"), Int(3), Int(5), Float(100))
			return res, err
		},
	})
	res := mustExec(t, db, `SELECT component, state, trips FROM sys.breaker WHERE state = 'open'`)
	if res.NumRows() != 1 || res.Cols[0].Get(0).S != "point-serving" || res.Cols[2].Get(0).I != 3 {
		t.Fatalf("replaced sys.breaker scan wrong: %d rows", res.NumRows())
	}
	if n := len(db.SysTables()); n != 8 {
		t.Fatalf("replacement grew catalog to %d tables", n)
	}
}

func TestSysRuntimeWithoutHistory(t *testing.T) {
	// The runtime table tolerates a DB without history (nil-safe methods).
	db := newTestDB(t)
	db.EnableSysCatalog()
	res := mustExec(t, db, `SELECT value FROM sys.runtime WHERE key = 'history_cap'`)
	if res.NumRows() != 1 || res.Cols[0].Get(0).F != 0 {
		t.Fatalf("history_cap without history = %v", res.Cols[0].Get(0))
	}
}
