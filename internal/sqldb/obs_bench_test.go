package sqldb

import (
	"fmt"
	"testing"

	"repro/internal/obs"
)

// benchFilterJoinDB builds the hot-path fixture: a selective vectorized
// filter feeding a hash join, the inner loop of every collaborative query.
func benchFilterJoinDB(b *testing.B) *DB {
	b.Helper()
	db := New()
	mustExec := func(sql string) {
		b.Helper()
		if _, err := db.Exec(sql); err != nil {
			b.Fatal(err)
		}
	}
	mustExec("CREATE TABLE video (videoID Int64, fabricID Int64, score Float64)")
	mustExec("CREATE TABLE fabric (fabricID Int64, grade Int64)")
	for i := 0; i < 2000; i++ {
		mustExec(fmt.Sprintf("INSERT INTO video VALUES (%d, %d, %d.5)", i, i%50, i%100))
	}
	for i := 0; i < 50; i++ {
		mustExec(fmt.Sprintf("INSERT INTO fabric VALUES (%d, %d)", i, i%5))
	}
	return db
}

const benchFilterJoinSQL = "SELECT V.videoID, F.grade FROM video V, fabric F " +
	"WHERE V.fabricID = F.fabricID AND V.score > 50 AND F.grade < 3"

// BenchmarkFilterJoinTracingDisabled measures the hot filter/join path with
// no tracer attached — the default production configuration. Compare
// against BenchmarkFilterJoinTracingEnabled to bound the cost of the
// instrumentation hooks; the disabled delta versus the pre-instrumentation
// executor is one nil check per plan node (see BENCH_obs.json for a pinned
// baseline).
func BenchmarkFilterJoinTracingDisabled(b *testing.B) {
	db := benchFilterJoinDB(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query(benchFilterJoinSQL); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFilterJoinTracingEnabled measures the same path with a live
// tracer collecting per-operator spans.
func BenchmarkFilterJoinTracingEnabled(b *testing.B) {
	db := benchFilterJoinDB(b)
	db.Tracer = obs.New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query(benchFilterJoinSQL); err != nil {
			b.Fatal(err)
		}
		if i%100 == 99 {
			db.Tracer.Reset() // keep the span tree bounded
		}
	}
}

// BenchmarkFilterJoinExplainAnalyze measures the per-node stats collector.
func BenchmarkFilterJoinExplainAnalyze(b *testing.B) {
	db := benchFilterJoinDB(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Exec("EXPLAIN ANALYZE " + benchFilterJoinSQL); err != nil {
			b.Fatal(err)
		}
	}
}
