package sqldb

import (
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/par"
)

// parFixture builds a DB with a fact table pt (rows large enough to cross
// parallelRowThreshold) and a small dimension table ptd, both filled with
// deterministic xorshift data so every test run sees identical inputs.
func parFixture(t *testing.T, rows int) *DB {
	t.Helper()
	db := New()
	mustExec(t, db, "CREATE TABLE pt (id Int64, v Float64, s String, g Int64)")
	mustExec(t, db, "CREATE TABLE ptd (g Int64, name String)")
	pt := db.GetTable("pt")
	state := uint64(99)
	next := func() uint64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return state
	}
	for i := 0; i < rows; i++ {
		v := float64(next()%100000) / 1000.0
		g := int64(next() % 97)
		row := []Datum{Int(int64(i)), Float(v), Str(fmt.Sprintf("s%03d", next()%211)), Int(g)}
		if err := pt.AppendRow(row); err != nil {
			t.Fatal(err)
		}
	}
	ptd := db.GetTable("ptd")
	// Only even group ids exist in the dimension, so LEFT JOIN probes have
	// genuine misses.
	for g := 0; g < 97; g += 2 {
		if err := ptd.AppendRow([]Datum{Int(int64(g)), Str(fmt.Sprintf("grp_%02d", g))}); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// canonRows renders a result as one string per row. With exact=true floats
// keep full round-trip precision (bit-identical comparison); otherwise they
// are rounded to 9 significant digits, absorbing the ulp-level differences
// chunked float summation is allowed to introduce in aggregates.
func canonRows(res *Result, exact bool) []string {
	out := make([]string, res.NumRows())
	var sb strings.Builder
	for i := range out {
		sb.Reset()
		for j, c := range res.Cols {
			if j > 0 {
				sb.WriteByte('|')
			}
			d := c.Get(i)
			switch d.T {
			case TFloat:
				prec := -1
				if !exact {
					prec = 9
				}
				sb.WriteString(strconv.FormatFloat(d.F, 'g', prec, 64))
			case TInt, TBool:
				sb.WriteString(strconv.FormatInt(d.I, 10))
			case TNull:
				sb.WriteString("NULL")
			default:
				sb.WriteString(d.String())
			}
		}
		out[i] = sb.String()
	}
	return out
}

func diffRows(t *testing.T, label string, serial, parallel []string) {
	t.Helper()
	if len(serial) != len(parallel) {
		t.Fatalf("%s: serial returned %d rows, parallel %d", label, len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("%s: row %d differs\n  serial:   %s\n  parallel: %s", label, i, serial[i], parallel[i])
		}
	}
}

// TestParallelMatchesSerial is the in-package differential test: every
// operator family runs the same query at parallelism 1 and 4 and must
// produce the same rows in the same order. Filter, project, join, sort,
// distinct, and limit concatenate morsel outputs in morsel order, so they
// are compared bit-identically; grouped aggregates merge per-chunk float
// partials and are compared after rounding to 9 significant digits.
func TestParallelMatchesSerial(t *testing.T) {
	db := parFixture(t, 12000)
	exactQueries := []string{
		"SELECT id, v, s FROM pt WHERE g < 30 AND v > 10.0",
		"SELECT id, v * 2.0 + 1.0 AS w, id % 7 AS r FROM pt WHERE g < 50",
		"SELECT p.id, d.name FROM pt p INNER JOIN ptd d ON p.g = d.g WHERE p.v < 50.0",
		"SELECT p.id, d.name FROM pt p LEFT JOIN ptd d ON p.g = d.g WHERE p.id < 9000",
		"SELECT id, g FROM pt ORDER BY g, id DESC",
		"SELECT DISTINCT g FROM pt",
		"SELECT DISTINCT s FROM pt WHERE g % 2 = 0",
		"SELECT id, s FROM pt ORDER BY s LIMIT 100 OFFSET 57",
	}
	aggQueries := []string{
		"SELECT g, count(*) AS c, sum(v) AS s, avg(v) AS m, min(id) AS lo, max(id) AS hi FROM pt GROUP BY g ORDER BY g",
		"SELECT count(*) AS c, sum(v) AS s, avg(v) AS m FROM pt WHERE g < 80",
		"SELECT d.name, count(*) AS c, sum(p.v) AS s FROM pt p INNER JOIN ptd d ON p.g = d.g GROUP BY d.name",
	}
	run := func(sql string, deg int) *Result {
		t.Helper()
		db.Parallelism = deg
		res, err := db.Query(sql)
		if err != nil {
			t.Fatalf("parallelism %d, query %q: %v", deg, sql, err)
		}
		return res
	}
	for _, q := range exactQueries {
		serial := canonRows(run(q, 1), true)
		parallel := canonRows(run(q, 4), true)
		diffRows(t, q, serial, parallel)
	}
	for _, q := range aggQueries {
		serial := canonRows(run(q, 1), false)
		parallel := canonRows(run(q, 4), false)
		diffRows(t, q, serial, parallel)
	}
}

// TestParallelSelfDeterminism pins that a parallel run is deterministic
// against itself, bit-for-bit, floats included: chunk boundaries are a pure
// function of the input size and degree, so repeated runs must not wander
// even where parallel results may differ from serial in the last ulp.
func TestParallelSelfDeterminism(t *testing.T) {
	db := parFixture(t, 12000)
	db.Parallelism = 4
	const q = "SELECT g, sum(v) AS s, avg(v) AS m FROM pt GROUP BY g ORDER BY g"
	first, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		again, err := db.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		diffRows(t, "repeat run", canonRows(first, true), canonRows(again, true))
	}
}

// TestParallelUDFGating proves the safety contract of ScalarUDF.ParallelSafe:
// a UDF left at the default (false) must never be invoked from more than one
// worker at a time, even when the surrounding query runs at parallelism 4.
func TestParallelUDFGating(t *testing.T) {
	db := parFixture(t, 12000)
	db.Parallelism = 4
	var inFlight, maxSeen int64
	db.RegisterUDF(&ScalarUDF{
		Name:  "unsafe_probe",
		Arity: 1,
		Fn: func(args []Datum) (Datum, error) {
			cur := atomic.AddInt64(&inFlight, 1)
			for {
				prev := atomic.LoadInt64(&maxSeen)
				if cur <= prev || atomic.CompareAndSwapInt64(&maxSeen, prev, cur) {
					break
				}
			}
			d := args[0]
			atomic.AddInt64(&inFlight, -1)
			return Int(d.I * 2), nil
		},
		// ParallelSafe deliberately left false.
	})
	res, err := db.Query("SELECT id, unsafe_probe(id) AS p FROM pt WHERE unsafe_probe(g) > 40")
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() == 0 {
		t.Fatal("probe query returned no rows; fixture drifted")
	}
	if got := atomic.LoadInt64(&maxSeen); got > 1 {
		t.Fatalf("non-ParallelSafe UDF observed %d concurrent invocations, want at most 1", got)
	}

	// A ParallelSafe UDF must still compute the same rows as a serial run.
	db.RegisterUDF(&ScalarUDF{
		Name:         "safe_probe",
		Arity:        1,
		Fn:           func(args []Datum) (Datum, error) { return Int(args[0].I % 13), nil },
		ParallelSafe: true,
	})
	const q = "SELECT id, safe_probe(id) AS p FROM pt WHERE safe_probe(g) < 7"
	db.Parallelism = 1
	serial, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	db.Parallelism = 4
	parallel, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	diffRows(t, q, canonRows(serial, true), canonRows(parallel, true))
}

// TestExplainAnalyzeParallelAnnotation checks that a genuinely fanned-out
// operator surfaces its worker/morsel/skew actuals in EXPLAIN ANALYZE, and
// that a serial run stays annotation-free.
func TestExplainAnalyzeParallelAnnotation(t *testing.T) {
	db := parFixture(t, 12000)
	db.Parallelism = 4
	res, err := db.Exec("EXPLAIN ANALYZE SELECT id FROM pt WHERE v > 10.0 AND g < 90")
	if err != nil {
		t.Fatal(err)
	}
	var lines []string
	for i := 0; i < res.NumRows(); i++ {
		lines = append(lines, res.Cols[0].Get(i).String())
	}
	joined := strings.Join(lines, "\n")
	if !strings.Contains(joined, "parallel workers=") ||
		!strings.Contains(joined, "morsels=") || !strings.Contains(joined, "skew=") {
		t.Fatalf("EXPLAIN ANALYZE lost the parallel annotation:\n%s", joined)
	}
	db.Parallelism = 1
	res, err = db.Exec("EXPLAIN ANALYZE SELECT id FROM pt WHERE v > 10.0 AND g < 90")
	if err != nil {
		t.Fatal(err)
	}
	lines = lines[:0]
	for i := 0; i < res.NumRows(); i++ {
		lines = append(lines, res.Cols[0].Get(i).String())
	}
	if joined := strings.Join(lines, "\n"); strings.Contains(joined, "parallel workers=") {
		t.Fatalf("serial run gained a parallel annotation:\n%s", joined)
	}
}

// TestParallelStatsSkew exercises the par.Stats skew computation the
// annotation reports: a perfectly balanced run has skew 1.0 and a
// single-worker run reports no skew.
func TestParallelStatsSkew(t *testing.T) {
	s := par.Stats{Workers: 2, Morsels: 4, WorkerItems: []int{100, 100}}
	if got := s.Skew(); got != 1.0 {
		t.Fatalf("balanced skew = %v, want 1.0", got)
	}
	s = par.Stats{Workers: 2, Morsels: 4, WorkerItems: []int{150, 50}}
	if got := s.Skew(); got <= 1.0 {
		t.Fatalf("imbalanced skew = %v, want > 1.0", got)
	}
}

// TestConcurrentParallelQueries runs many queries against one DB from separate
// goroutines while each query itself fans out internally. Under -race this
// is the executor's inter- and intra-query safety net.
func TestConcurrentParallelQueries(t *testing.T) {
	db := parFixture(t, 8000)
	db.Parallelism = 4
	queries := []string{
		"SELECT count(*) AS c FROM pt WHERE v > 50.0",
		"SELECT g, count(*) AS c FROM pt GROUP BY g ORDER BY g",
		"SELECT p.id FROM pt p INNER JOIN ptd d ON p.g = d.g WHERE p.v < 20.0",
		"SELECT DISTINCT s FROM pt",
		"SELECT id FROM pt ORDER BY v LIMIT 25",
	}
	want := make([][]string, len(queries))
	for i, q := range queries {
		res, err := db.Query(q)
		if err != nil {
			t.Fatalf("%q: %v", q, err)
		}
		want[i] = canonRows(res, false)
	}
	var wg sync.WaitGroup
	errCh := make(chan error, 40)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for k := 0; k < 5; k++ {
				qi := (seed + k) % len(queries)
				res, err := db.Query(queries[qi])
				if err != nil {
					errCh <- fmt.Errorf("%q: %w", queries[qi], err)
					return
				}
				got := canonRows(res, false)
				if len(got) != len(want[qi]) {
					errCh <- fmt.Errorf("%q: got %d rows, want %d", queries[qi], len(got), len(want[qi]))
					return
				}
				for r := range got {
					if got[r] != want[qi][r] {
						errCh <- fmt.Errorf("%q: row %d = %s, want %s", queries[qi], r, got[r], want[qi][r])
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}

// TestOrderingContracts pins the row-ordering guarantees documented on
// execDistinct, execSort, and execLimit, at both parallelism settings:
//
//   - DISTINCT keeps the FIRST occurrence of each distinct row, in input
//     order;
//   - ORDER BY is a STABLE sort — rows comparing equal on every key keep
//     their input order;
//   - LIMIT/OFFSET slice rows in input order.
func TestOrderingContracts(t *testing.T) {
	for _, deg := range []int{1, 4} {
		t.Run(fmt.Sprintf("parallelism=%d", deg), func(t *testing.T) {
			db := New()
			db.Parallelism = deg
			mustExec(t, db, "CREATE TABLE ord (id Int64, k Int64, tag String)")
			// Insert rows whose k values collide so stability is observable,
			// crossing the parallel threshold to exercise both paths.
			tbl := db.GetTable("ord")
			for i := 0; i < 6000; i++ {
				row := []Datum{Int(int64(i)), Int(int64(i % 5)), Str(fmt.Sprintf("t%d", i%3))}
				if err := tbl.AppendRow(row); err != nil {
					t.Fatal(err)
				}
			}

			// DISTINCT: first occurrence wins, output in first-seen order.
			res := mustExec(t, db, "SELECT DISTINCT tag FROM ord")
			wantTags := []string{"t0", "t1", "t2"}
			if res.NumRows() != len(wantTags) {
				t.Fatalf("DISTINCT returned %d rows, want %d", res.NumRows(), len(wantTags))
			}
			for i, w := range wantTags {
				if got := res.Cols[0].Get(i).S; got != w {
					t.Fatalf("DISTINCT row %d = %q, want %q (first-occurrence order)", i, got, w)
				}
			}

			// Stable sort: for equal k the id column must stay ascending
			// (its input order).
			res = mustExec(t, db, "SELECT id, k FROM ord ORDER BY k")
			prevK, prevID := int64(-1), int64(-1)
			for i := 0; i < res.NumRows(); i++ {
				k, id := res.Cols[1].Get(i).I, res.Cols[0].Get(i).I
				if k < prevK {
					t.Fatalf("ORDER BY k broken at row %d: k=%d after %d", i, k, prevK)
				}
				if k == prevK && id < prevID {
					t.Fatalf("sort not stable: row %d id=%d after id=%d within k=%d", i, id, prevID, k)
				}
				prevK, prevID = k, id
			}

			// LIMIT/OFFSET: rows come from the input slice [offset, offset+limit).
			res = mustExec(t, db, "SELECT id FROM ord LIMIT 10 OFFSET 20")
			if res.NumRows() != 10 {
				t.Fatalf("LIMIT returned %d rows, want 10", res.NumRows())
			}
			for i := 0; i < 10; i++ {
				if got := res.Cols[0].Get(i).I; got != int64(20+i) {
					t.Fatalf("LIMIT/OFFSET row %d = %d, want %d (input order)", i, got, 20+i)
				}
			}
		})
	}
}

// TestParallelSpeedupShape checks that fanning out actually speeds up a
// scan-heavy query when real hardware parallelism exists. It self-gates:
// wall-clock ratios are meaningless under the race detector's
// instrumentation or on machines without at least 4 CPUs (the benchmark
// container for BENCH_parallel.json exposes a single core, where
// parallelism 4 can only hope for parity with serial — see that file's
// summary for the honest numbers).
func TestParallelSpeedupShape(t *testing.T) {
	if raceEnabled {
		t.Skip("wall-clock shape test: skipped under -race")
	}
	if n := runtime.NumCPU(); n < 4 {
		t.Skipf("wall-clock shape test: need >= 4 CPUs, have %d", n)
	}
	if testing.Short() {
		t.Skip("short mode")
	}
	db := parFixture(t, 200000)
	const q = "SELECT g, count(*) AS c, sum(v) AS s FROM pt WHERE v > 10.0 GROUP BY g ORDER BY g"
	measure := func(deg int) time.Duration {
		db.Parallelism = deg
		if _, err := db.Query(q); err != nil { // warmup
			t.Fatal(err)
		}
		best := time.Duration(0)
		for i := 0; i < 3; i++ {
			start := time.Now()
			if _, err := db.Query(q); err != nil {
				t.Fatal(err)
			}
			if el := time.Since(start); best == 0 || el < best {
				best = el
			}
		}
		return best
	}
	serial := measure(1)
	parallel := measure(4)
	// 1.3x is a deliberately loose floor: the point is the shape (parallel
	// beats serial at all), not a precise scaling factor, so the test stays
	// robust on loaded CI machines.
	if float64(serial) < 1.3*float64(parallel) {
		t.Errorf("parallelism 4 (best %v) not meaningfully faster than serial (best %v) on %d CPUs",
			parallel, serial, runtime.NumCPU())
	}
}
