package sqldb

import (
	"strings"
	"testing"
	"testing/quick"
)

func parseSelect(t *testing.T, sql string) *SelectStmt {
	t.Helper()
	st, err := Parse(sql)
	if err != nil {
		t.Fatalf("Parse(%q): %v", sql, err)
	}
	sel, ok := st.(*SelectStmt)
	if !ok {
		t.Fatalf("Parse(%q) = %T, want SELECT", sql, st)
	}
	return sel
}

func TestLexerTokens(t *testing.T) {
	toks, err := lex(`SELECT a, 'str''ing', 1.5e3, "dq" FROM t -- comment
		WHERE x >= 2 /* block */ AND y != 3`)
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	for _, tok := range toks {
		if tok.kind == tokEOF {
			break
		}
		texts = append(texts, tok.text)
	}
	joined := strings.Join(texts, " ")
	if !strings.Contains(joined, "str'ing") {
		t.Fatalf("doubled-quote escape failed: %s", joined)
	}
	if !strings.Contains(joined, "1.5e3") {
		t.Fatalf("scientific literal failed: %s", joined)
	}
	if !strings.Contains(joined, ">=") || !strings.Contains(joined, "!=") {
		t.Fatalf("two-char operators failed: %s", joined)
	}
}

func TestLexerErrors(t *testing.T) {
	if _, err := lex("'unterminated"); err == nil {
		t.Fatal("unterminated string must fail")
	}
	if _, err := lex("/* unterminated"); err == nil {
		t.Fatal("unterminated comment must fail")
	}
	if _, err := lex("a # b"); err == nil {
		t.Fatal("unknown character must fail")
	}
}

func TestParsePrecedence(t *testing.T) {
	sel := parseSelect(t, "SELECT 1 + 2 * 3 AS v")
	if sel.Items[0].Expr.String() != "(1 + (2 * 3))" {
		t.Fatalf("precedence wrong: %s", sel.Items[0].Expr)
	}
	sel = parseSelect(t, "SELECT a FROM t WHERE x = 1 OR y = 2 AND z = 3")
	// AND binds tighter than OR.
	want := "((x = 1) or ((y = 2) and (z = 3)))"
	if sel.Where.String() != want {
		t.Fatalf("bool precedence: %s", sel.Where)
	}
}

func TestParseUnaryMinusFoldsLiterals(t *testing.T) {
	sel := parseSelect(t, "SELECT -5 a, -2.5 b, -x c")
	if lit, ok := sel.Items[0].Expr.(*Lit); !ok || lit.Val.I != -5 {
		t.Fatalf("folded int: %v", sel.Items[0].Expr)
	}
	if lit, ok := sel.Items[1].Expr.(*Lit); !ok || lit.Val.F != -2.5 {
		t.Fatalf("folded float: %v", sel.Items[1].Expr)
	}
	if _, ok := sel.Items[2].Expr.(*UnaryExpr); !ok {
		t.Fatalf("column negation: %v", sel.Items[2].Expr)
	}
}

func TestParseJoinTree(t *testing.T) {
	sel := parseSelect(t, "SELECT a.x FROM a INNER JOIN b ON a.id = b.id, c")
	if sel.From.Join == nil {
		t.Fatal("expected join tree")
	}
	// The comma join wraps the inner join.
	if sel.From.Join.L.Join == nil || sel.From.Join.L.Join.Cond == nil {
		t.Fatalf("inner join lost: %s", sel.From)
	}
	if sel.From.Join.R.Table != "c" {
		t.Fatalf("comma join right: %s", sel.From.Join.R.Table)
	}
}

func TestParseFromSubqueryAlias(t *testing.T) {
	sel := parseSelect(t, "SELECT n FROM (SELECT count(*) AS n FROM t) AS sub")
	if sel.From.Sub == nil || sel.From.Alias != "sub" {
		t.Fatalf("from-subquery: %+v", sel.From)
	}
	sel = parseSelect(t, "SELECT n FROM (SELECT 1 AS n) bare")
	if sel.From.Alias != "bare" {
		t.Fatalf("bare alias: %+v", sel.From)
	}
}

func TestParseCreateVariants(t *testing.T) {
	cases := []string{
		"CREATE TABLE t (a Int64, b Float64)",
		"CREATE TEMP TABLE t (a Int64)",
		"CREATE TABLE IF NOT EXISTS t (a Int64)",
		"CREATE TABLE t AS SELECT 1 AS x",
		"CREATE TEMP TABLE t(SELECT 1 AS x)",
		"CREATE TABLE t (a Int64) AS SELECT 1",
		"CREATE VIEW v AS SELECT 1 AS x",
		"CREATE View v(SELECT 1 AS x)",
		"CREATE OR REPLACE VIEW v AS SELECT 2 AS x",
	}
	for _, sql := range cases {
		if _, err := Parse(sql); err != nil {
			t.Fatalf("Parse(%q): %v", sql, err)
		}
	}
}

func TestParseInsertVariants(t *testing.T) {
	cases := []string{
		"INSERT INTO t VALUES (1, 'a'), (2, 'b')",
		"INSERT INTO t (a, b) VALUES (1, 2)",
		"INSERT INTO t SELECT a, b FROM s",
		"INSERT INTO t (SELECT a FROM s)",
	}
	for _, sql := range cases {
		if _, err := Parse(sql); err != nil {
			t.Fatalf("Parse(%q): %v", sql, err)
		}
	}
}

func TestParseUpdateDeleteDrop(t *testing.T) {
	st, err := Parse("UPDATE t SET a = 1, b = b + 1 WHERE c < 0")
	if err != nil {
		t.Fatal(err)
	}
	up := st.(*UpdateStmt)
	if len(up.Set) != 2 || up.Where == nil {
		t.Fatalf("update: %+v", up)
	}
	if _, err := Parse("DELETE FROM t WHERE x = 1"); err != nil {
		t.Fatal(err)
	}
	st, err = Parse("DROP VIEW IF EXISTS v")
	if err != nil {
		t.Fatal(err)
	}
	dr := st.(*DropStmt)
	if !dr.View || !dr.IfExists {
		t.Fatalf("drop: %+v", dr)
	}
}

func TestParseCaseInOrderLimit(t *testing.T) {
	sel := parseSelect(t, `SELECT CASE WHEN a > 0 THEN 'p' WHEN a < 0 THEN 'n' ELSE 'z' END v
		FROM t WHERE b IN (1, 2, 3) AND c NOT IN (4) AND d BETWEEN 0 AND 9 AND e NOT BETWEEN 1 AND 2
		ORDER BY v DESC, a LIMIT 7 OFFSET 3`)
	ce := sel.Items[0].Expr.(*CaseExpr)
	if len(ce.Whens) != 2 || ce.Else == nil {
		t.Fatalf("case: %+v", ce)
	}
	if sel.Limit != 7 || sel.Offset != 3 {
		t.Fatalf("limit/offset: %d %d", sel.Limit, sel.Offset)
	}
	if len(sel.OrderBy) != 2 || !sel.OrderBy[0].Desc || sel.OrderBy[1].Desc {
		t.Fatalf("order: %+v", sel.OrderBy)
	}
}

func TestParseIsNull(t *testing.T) {
	sel := parseSelect(t, "SELECT a FROM t WHERE a IS NULL AND b IS NOT NULL")
	conds := conjuncts(sel.Where)
	if len(conds) != 2 {
		t.Fatalf("conds: %v", conds)
	}
	if conds[0].(*IsNullExpr).Not || !conds[1].(*IsNullExpr).Not {
		t.Fatalf("is-null flags: %v %v", conds[0], conds[1])
	}
}

func TestParseCountStarAndDistinct(t *testing.T) {
	sel := parseSelect(t, "SELECT count(*), count(DISTINCT x), sum(y) FROM t")
	fc := sel.Items[0].Expr.(*FuncCall)
	if !fc.Star {
		t.Fatal("count(*) star flag missing")
	}
	fc = sel.Items[1].Expr.(*FuncCall)
	if !fc.Distinct {
		t.Fatal("distinct flag missing")
	}
}

func TestStatementStringRoundTrip(t *testing.T) {
	// String() output must itself parse (idempotence of the SQL renderer).
	cases := []string{
		`SELECT a, b + 1 AS c FROM t x WHERE a > 5 AND b IN (1, 2) GROUP BY a HAVING count(*) > 1 ORDER BY a DESC LIMIT 3`,
		`SELECT sum(v) FROM t1, t2 WHERE t1.id = t2.id`,
		`SELECT CASE WHEN x = 1 THEN 'a' ELSE 'b' END FROM t`,
		`INSERT INTO t (a) VALUES (1), (2)`,
		`UPDATE t SET a = 0 WHERE a < 0`,
		`DELETE FROM t WHERE x IS NOT NULL`,
		`CREATE TABLE t (a Int64, b String)`,
		`DROP TABLE IF EXISTS t`,
	}
	for _, sql := range cases {
		st, err := Parse(sql)
		if err != nil {
			t.Fatalf("Parse(%q): %v", sql, err)
		}
		st2, err := Parse(st.String())
		if err != nil {
			t.Fatalf("re-Parse(%q): %v", st.String(), err)
		}
		if st.String() != st2.String() {
			t.Fatalf("String not stable:\n1: %s\n2: %s", st.String(), st2.String())
		}
	}
}

// Property: integer literals survive a parse → String → parse round trip.
func TestIntLiteralRoundTripProperty(t *testing.T) {
	f := func(n int32) bool {
		sel, err := Parse("SELECT " + (&Lit{Val: Int(int64(n))}).String() + " AS v")
		if err != nil {
			return false
		}
		item := sel.(*SelectStmt).Items[0].Expr
		lit, ok := item.(*Lit)
		return ok && lit.Val.I == int64(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: string literals with arbitrary content round trip through the
// renderer's quoting.
func TestStringLiteralRoundTripProperty(t *testing.T) {
	f := func(s string) bool {
		// The lexer treats backslash as an escape; the renderer only
		// doubles quotes, so skip inputs containing backslashes.
		if strings.ContainsAny(s, "\\") {
			return true
		}
		rendered := (&Lit{Val: Str(s)}).String()
		sel, err := Parse("SELECT " + rendered + " AS v")
		if err != nil {
			return false
		}
		lit, ok := sel.(*SelectStmt).Items[0].Expr.(*Lit)
		return ok && lit.Val.S == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
