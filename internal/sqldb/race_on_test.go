//go:build race

package sqldb

// raceEnabled mirrors race_off_test.go with the race detector active.
const raceEnabled = true
