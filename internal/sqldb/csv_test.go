package sqldb

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestCSVExportImportRoundTrip(t *testing.T) {
	db := newTestDB(t)
	res := mustExec(t, db, `SELECT id, name, dept, salary, active FROM emp ORDER BY id`)
	var buf bytes.Buffer
	if err := ExportCSV(res, &buf); err != nil {
		t.Fatal(err)
	}
	db2 := New()
	db2.Profile = NewProfile()
	mustExec(t, db2, `CREATE TABLE emp (id Int64, name String, dept String, salary Float64, active Bool)`)
	n, err := db2.ImportCSV("emp", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("imported %d rows", n)
	}
	a := mustExec(t, db, `SELECT sum(salary) s, count(*) c FROM emp WHERE active = TRUE`)
	b := mustExec(t, db2, `SELECT sum(salary) s, count(*) c FROM emp WHERE active = TRUE`)
	if a.Cols[0].Get(0).F != b.Cols[0].Get(0).F || a.Cols[1].Get(0).I != b.Cols[1].Get(0).I {
		t.Fatalf("round trip differs: %v vs %v", a.GetRow(0), b.GetRow(0))
	}
}

func TestCSVImportNulls(t *testing.T) {
	db := New()
	db.Profile = NewProfile()
	mustExec(t, db, `CREATE TABLE t (a Int64, b String)`)
	n, err := db.ImportCSV("t", strings.NewReader("a,b\n1,x\n,y\n3,\n"))
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("rows = %d", n)
	}
	r := mustExec(t, db, `SELECT count(*) c FROM t WHERE a IS NULL`)
	if r.Cols[0].Get(0).I != 1 {
		t.Fatalf("null ints: %v", r.Cols[0].Get(0))
	}
	r = mustExec(t, db, `SELECT count(*) c FROM t WHERE b IS NULL`)
	if r.Cols[0].Get(0).I != 1 {
		t.Fatalf("null strings: %v", r.Cols[0].Get(0))
	}
}

func TestCSVImportErrors(t *testing.T) {
	db := newTestDB(t)
	if _, err := db.ImportCSV("nosuch", strings.NewReader("a\n1\n")); err == nil {
		t.Fatal("missing table must fail")
	}
	if _, err := db.ImportCSV("emp", strings.NewReader("nocol\n1\n")); err == nil {
		t.Fatal("unknown column must fail")
	}
	if _, err := db.ImportCSV("emp", strings.NewReader("id\nnotanumber\n")); err == nil {
		t.Fatal("bad integer must fail")
	}
	mustExec(t, db, `CREATE TABLE m (b Blob)`)
	if _, err := db.ImportCSV("m", strings.NewReader("b\nxx\n")); err == nil {
		t.Fatal("blob column must be rejected")
	}
}

func TestCSVBoolParsing(t *testing.T) {
	db := New()
	db.Profile = NewProfile()
	mustExec(t, db, `CREATE TABLE t (f Bool)`)
	n, err := db.ImportCSV("t", strings.NewReader("f\ntrue\n0\nYES\nf\n"))
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("rows = %d", n)
	}
	r := mustExec(t, db, `SELECT count(*) c FROM t WHERE f = TRUE`)
	if r.Cols[0].Get(0).I != 2 {
		t.Fatalf("bool parsing: %v", r.Cols[0].Get(0))
	}
}

// Concurrent read queries against a shared database must be safe.
func TestConcurrentQueries(t *testing.T) {
	db := newTestDB(t)
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				res, err := db.Query(`SELECT dept, count(*) c FROM emp GROUP BY dept`)
				if err != nil {
					errs <- err
					return
				}
				if res.NumRows() != 3 {
					errs <- nil
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent query failed: %v", err)
	}
}

// Concurrent appends during reads must be safe (snapshot-isolated scans).
func TestConcurrentAppendAndQuery(t *testing.T) {
	db := newTestDB(t)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		tbl := db.GetTable("emp")
		for i := 0; i < 300; i++ {
			_ = tbl.AppendRow([]Datum{Int(int64(1000 + i)), Str("w"), Str("ops"), Float(1), Bool(true)})
		}
		close(stop)
	}()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := db.Query(`SELECT count(*) c, sum(salary) s FROM emp WHERE salary > 0`)
				if err != nil {
					t.Error(err)
					return
				}
				if res.Cols[0].Get(0).I < 5 {
					t.Error("snapshot lost base rows")
					return
				}
			}
		}()
	}
	wg.Wait()
}
