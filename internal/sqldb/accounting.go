package sqldb

// Per-query resource accounting.
//
// When DB.History is armed, every statement executed through a public
// entry point runs with a queryAcct attached to its context. The executor
// feeds it from the same instrumentation points that already feed the
// session profile — ec.profAdd at every operator accounting site, notePar
// at every morsel fan-out — so the accounting's always-on cost is a nil
// check plus a handful of atomic adds per operator, not per row. At
// statement end the accumulated numbers become one obs.QueryRecord in the
// history ring (and, over the slow threshold, one structured slow-log
// line), plus the engine-level counters/histogram in DB.Metrics.
//
// Counter fields are atomics because operator accounting can run on morsel
// workers; cacheState is only written by the statement's own goroutine
// during planning, before any worker exists, and read after execution
// completes, so it needs no synchronization.

import (
	"context"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/qerr"
)

// queryAcct accumulates one statement's resource usage.
type queryAcct struct {
	busyNanos   atomic.Int64
	rowsScanned atomic.Int64
	morsels     atomic.Int64
	parallelOps atomic.Int64
	udfCalls    atomic.Int64

	cacheState string
}

// acctKey carries the statement's queryAcct through the context.
type acctKey struct{}

// withAcct attaches an accounting struct to the context.
func withAcct(ctx context.Context, a *queryAcct) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	return context.WithValue(ctx, acctKey{}, a)
}

// acctFrom recovers the statement's accounting struct, if any.
func acctFrom(ctx context.Context) *queryAcct {
	if ctx == nil {
		return nil
	}
	a, _ := ctx.Value(acctKey{}).(*queryAcct)
	return a
}

// profAdd is the executor's operator accounting point: it feeds the
// session profile exactly like Profile.add always has, and additionally
// charges the statement's accounting when one is attached. Scan-shaped
// operators also advance the rows-scanned tally.
//
// It takes the operator's start time (not a duration) and performs the end
// read itself, leaving that reading in ec.stamp — the traced executor path
// closes operator spans from the stamp instead of reading the clock again
// (see execPlan). All accounting sites run on the statement's own goroutine
// after any morsel fan-in, so the plain stamp field needs no locking.
func (ec *execCtx) profAdd(op string, rows int, start time.Time) {
	end := time.Now()
	ec.stamp = end
	ec.prof.add(op, rows, end.Sub(start))
	if a := ec.acct; a != nil {
		a.busyNanos.Add(end.Sub(start).Nanoseconds())
		if op == OpScan {
			a.rowsScanned.Add(int64(rows))
		}
	}
}

// countUDFs wraps a compiled expression evaluator so each evaluation
// charges the statement's UDF-call tally. n is the number of UDF
// references in the source expression (each is invoked once per row
// evaluation). Returns fn unchanged when no accounting is attached or the
// expression calls no UDFs, so the common path allocates nothing.
func (ec *execCtx) countUDFs(n int, fn evalFn) evalFn {
	a := ec.acct
	if a == nil || n == 0 {
		return fn
	}
	nn := int64(n)
	return func(r *Result, row int) (Datum, error) {
		a.udfCalls.Add(nn)
		return fn(r, row)
	}
}

// execStmtRecorded is execStmt plus history recording. With no history or
// trace store armed it is a plain passthrough; otherwise the statement
// runs with an accounting context and leaves one QueryRecord behind —
// including on error and on recovered panic.
func (db *DB) execStmtRecorded(ctx context.Context, st Stmt, sql string, hints *QueryHints) (*Result, error) {
	if db.History == nil && db.Traces == nil {
		return db.execStmt(ctx, st, hints)
	}
	return db.recordQuery(ctx, sql, func(ctx context.Context) (*Result, error) {
		return db.execStmt(ctx, st, hints)
	})
}

// recordQuery runs fn with a fresh accounting context and records the
// outcome into the history ring and the engine metrics. Callers must have
// checked that db.History or db.Traces is armed (execStmtRecorded and the
// prepared-statement fast path do).
//
// Trace ownership: when the context already carries a trace (a served
// request or an enclosing strategy execution), this statement contributes
// a child span and leaves the tail-sampling decision to the creator. When
// it does not, this is the outermost traced layer — recordQuery creates
// the trace and decides retention when the statement finishes.
func (db *DB) recordQuery(ctx context.Context, sql string, fn func(ctx context.Context) (*Result, error)) (res *Result, err error) {
	hist := db.History
	acct := &queryAcct{}
	// The wall-clock start doubles as the trace/root-span start below, so
	// arming tracing adds no statement-level clock reads over the
	// history-only baseline.
	start := time.Now()
	tr := obs.TraceFromContext(ctx)
	created := false
	var span *obs.Span
	if db.Traces != nil || tr != nil {
		if tr == nil {
			tr = db.Traces.StartTraceAt(ctx, "query", start)
			created = true
			span = tr.Root()
			// Adopt the root into the session tracer so tracer-based views
			// (sqlsh \trace, EXPLAIN-style dumps) keep rendering it.
			db.Tracer.Adopt(span)
		} else if parent := obs.SpanFromContext(ctx); parent != nil {
			span = parent.StartChildAt("sql", start)
		} else {
			span = tr.Root().StartChildAt("sql", start)
		}
		span.SetAttr("sql", sql)
		ctx = obs.ContextWithTraceSpan(ctx, tr, span)
	}
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, qerr.Recovered("sqldb exec", r)
		}
		wall := time.Since(start)
		if err != nil {
			span.SetAttr("err", qerr.Class(err))
			tr.MarkError()
		}
		span.FinishAt(start.Add(wall))
		if created {
			db.Traces.Finish(tr)
		}
		rec := obs.QueryRecord{
			SQL:         sql,
			Strategy:    "sql",
			CacheState:  acct.cacheState,
			Start:       start,
			Wall:        wall,
			Busy:        time.Duration(acct.busyNanos.Load()),
			RowsScanned: acct.rowsScanned.Load(),
			Morsels:     acct.morsels.Load(),
			ParallelOps: acct.parallelOps.Load(),
			UDFCalls:    acct.udfCalls.Load(),
			ErrClass:    qerr.Class(err),
			TraceID:     tr.RecordID(),
		}
		if err != nil {
			rec.Err = err.Error()
		}
		if res != nil {
			rec.RowsOut = int64(res.NumRows())
			for _, c := range res.Cols {
				rec.BytesOut += c.ApproxBytes()
			}
		}
		hist.Add(rec)
		if m := db.Metrics; m != nil {
			m.Counter(obs.MetricQueries).Add(1)
			if err != nil {
				m.Counter(obs.MetricQueryErrors).Add(1)
			}
			if thr := hist.SlowThreshold(); thr > 0 && wall >= thr {
				m.Counter(obs.MetricSlowQueries).Add(1)
			}
			m.Histogram(obs.MetricQueryWallSeconds).ObserveExemplar(wall.Seconds(), rec.TraceID)
			if rec.TraceID != "" {
				m.Counter(obs.MetricTraceExemplars).Add(1)
			}
		}
	}()
	return fn(withAcct(ctx, acct))
}

// noteCacheState records the statement-level plan-cache outcome once (the
// first planned SELECT wins; UNION ALL branches and subqueries do not
// overwrite it).
func (a *queryAcct) noteCacheState(state string) {
	if a != nil && a.cacheState == "" {
		a.cacheState = state
	}
}

// cacheStateOf labels a planSelectCached outcome for the query history.
func (db *DB) cacheStateOf(hit, cacheable bool) string {
	switch {
	case !db.CacheEnabled():
		return "disabled"
	case hit:
		return "hit"
	case !cacheable:
		return "bypass"
	default:
		return "miss"
	}
}
