package sqldb

import "strings"

// Vectorized filter fast paths. The generic filter evaluates a compiled
// expression tree per row; for the overwhelmingly common shape
// `column <op> literal` on a typed column this file provides specialized
// kernels that stream directly over the column vector — the columnar
// engine's analogue of ClickHouse's compiled filter primitives. The
// planner-visible semantics are identical; only the inner loop changes.

// vectorPred appends the indices of qualifying rows in [lo, hi) to keep,
// in ascending order. The row range makes the kernels morsel-addressable:
// the parallel filter hands each worker a disjoint range of the same
// column vectors.
type vectorPred func(in *Result, lo, hi int, keep []int) []int

// compileVectorPred recognizes `ColRef op Lit` (or the mirrored
// literal-first form) over a concretely-typed column and returns a
// vectorized kernel, or nil when the shape doesn't match — the generic
// row-at-a-time path then handles it.
func compileVectorPred(e Expr, schema []OutCol) vectorPred {
	b, ok := e.(*BinExpr)
	if !ok {
		return nil
	}
	op := b.Op
	col, lit := b.L, b.R
	if _, isLit := col.(*Lit); isLit {
		col, lit = b.R, b.L
		op = mirrorOp(op)
	}
	cr, ok := col.(*ColRef)
	if !ok {
		return nil
	}
	lv, ok := lit.(*Lit)
	if !ok || lv.Val.IsNull() {
		return nil
	}
	switch op {
	case "=", "!=", "<", "<=", ">", ">=":
	default:
		return nil
	}
	idx := -1
	for i, c := range schema {
		if !strings.EqualFold(c.Name, cr.Name) {
			continue
		}
		if cr.Table != "" && !strings.EqualFold(c.Table, cr.Table) {
			continue
		}
		if idx >= 0 {
			return nil // ambiguous: let the generic path raise the error
		}
		idx = i
	}
	if idx < 0 {
		return nil
	}
	ci := idx
	val := lv.Val
	switch schema[ci].Type {
	case TInt:
		want, ok := val.AsFloat()
		if !ok {
			return nil
		}
		return func(in *Result, lo, hi int, keep []int) []int {
			c := in.Cols[ci]
			nulls := c.Nulls
			for i := lo; i < hi; i++ {
				if nulls != nil && nulls[i] {
					continue
				}
				if cmpFloat(op, float64(c.Ints[i]), want) {
					keep = append(keep, i)
				}
			}
			return keep
		}
	case TFloat:
		want, ok := val.AsFloat()
		if !ok {
			return nil
		}
		return func(in *Result, lo, hi int, keep []int) []int {
			c := in.Cols[ci]
			nulls := c.Nulls
			for i := lo; i < hi; i++ {
				if nulls != nil && nulls[i] {
					continue
				}
				if cmpFloat(op, c.Floats[i], want) {
					keep = append(keep, i)
				}
			}
			return keep
		}
	case TString:
		if val.T != TString {
			return nil
		}
		want := val.S
		return func(in *Result, lo, hi int, keep []int) []int {
			c := in.Cols[ci]
			nulls := c.Nulls
			for i := lo; i < hi; i++ {
				if nulls != nil && nulls[i] {
					continue
				}
				if cmpString(op, c.Strs[i], want) {
					keep = append(keep, i)
				}
			}
			return keep
		}
	case TBool:
		want, ok := val.AsBool()
		if !ok {
			return nil
		}
		wf := 0.0
		if want {
			wf = 1
		}
		return func(in *Result, lo, hi int, keep []int) []int {
			c := in.Cols[ci]
			nulls := c.Nulls
			for i := lo; i < hi; i++ {
				if nulls != nil && nulls[i] {
					continue
				}
				vf := 0.0
				if c.Bools[i] {
					vf = 1
				}
				if cmpFloat(op, vf, wf) {
					keep = append(keep, i)
				}
			}
			return keep
		}
	}
	return nil
}

func mirrorOp(op string) string {
	switch op {
	case "<":
		return ">"
	case "<=":
		return ">="
	case ">":
		return "<"
	case ">=":
		return "<="
	}
	return op // = and != are symmetric
}

func cmpFloat(op string, a, b float64) bool {
	switch op {
	case "=":
		return a == b
	case "!=":
		return a != b
	case "<":
		return a < b
	case "<=":
		return a <= b
	case ">":
		return a > b
	case ">=":
		return a >= b
	}
	return false
}

func cmpString(op, a, b string) bool {
	switch op {
	case "=":
		return a == b
	case "!=":
		return a != b
	case "<":
		return a < b
	case "<=":
		return a <= b
	case ">":
		return a > b
	case ">=":
		return a >= b
	}
	return false
}

// intersectSorted keeps the values present in both ascending-sorted slices,
// writing into a's backing array.
func intersectSorted(a, b []int) []int {
	out := a[:0]
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}
