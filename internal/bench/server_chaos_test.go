package bench

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/colquery"
	"repro/internal/faults"
	"repro/internal/qerr"
	"repro/internal/strategies"
)

// TestServerChaosFaultMatrix pushes the PR-5 fault matrix through the
// serving path: every fault class crossed with every strategy, executed
// via /v1/colquery. The contract is the same result-or-typed-error rule
// the embedded matrix enforces — and the wire must carry the typed class
// faithfully, so errors.Is against the qerr sentinels still works on the
// client side of an HTTP hop.
func TestServerChaosFaultMatrix(t *testing.T) {
	env, ds, _, cli := serverFixture(t)
	env.Retry = strategies.RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond,
		MaxDelay: 4 * time.Millisecond, AttemptTimeout: 2 * time.Second, JitterSeed: 3}

	q, err := colquery.GenerateAnalyzed(colquery.Type3, colquery.TemplateParams{Selectivity: 0.05})
	if err != nil {
		t.Fatal(err)
	}

	// No-fault baselines per strategy, computed through the server so both
	// sides of every comparison crossed the same wire.
	baseline := map[string]string{}
	for _, s := range strategies.All() {
		res, err := cli.ColQuery(context.Background(), q.SQL, s.Name(), false)
		if err != nil {
			t.Fatalf("baseline %s: %v", s.Name(), err)
		}
		baseline[s.Name()] = diffCanonKey(res.Result)
	}

	classes := []struct {
		name string
		spec string
	}{
		{"serving error", "serving.error:p=1"},
		{"serving error intermittent", "serving.error:every=2;seed=5"},
		{"serving hang", "serving.hang:p=1"},
		{"serving partial response", "serving.partial:p=1"},
		{"udf decode failure", "udf.decode:p=1"},
		{"dl2sql translate failure", "dl2sql.translate:p=1"},
		{"slow morsels", "morsel.delay:d=200us,every=7"},
		{"memory pressure", "mem.pressure:bytes=32768"},
		{"combined flaky", "serving.error:p=0.5;udf.decode:p=0.3;morsel.delay:d=100us,every=11;seed=9"},
	}
	if testing.Short() {
		classes = classes[:4]
	}

	for _, c := range classes {
		for _, s := range strategies.All() {
			inj, err := faults.Parse(c.spec)
			if err != nil {
				t.Fatalf("%s: %v", c.name, err)
			}
			env.Faults = inj
			ds.DB.Faults = inj
			res, qerrr := cli.ColQuery(context.Background(), q.SQL, s.Name(), false)
			env.Faults = nil
			ds.DB.Faults = nil
			label := fmt.Sprintf("%s under %q via server", s.Name(), c.name)
			if qerrr != nil {
				if !qerr.Lifecycle(qerrr) {
					t.Errorf("%s: untyped error %v", label, qerrr)
				}
				continue
			}
			if got := diffCanonKey(res.Result); got != baseline[s.Name()] {
				t.Errorf("%s: wrong result under fault injection", label)
			}
		}
	}
}

// TestServerChaosFallbackLadder forces a dead serving pipe and runs
// DB-PyTorch with fallback=true through /v1/colquery: the server must
// degrade to DB-UDF, answer correctly, and report the full ladder in the
// response. The circuit breaker the failures tripped — and the session
// that carried the queries — must both be visible with plain SQL through
// the same server.
func TestServerChaosFallbackLadder(t *testing.T) {
	env, ds, _, cli := serverFixture(t)
	env.Retry = strategies.RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, JitterSeed: 3}
	env.Breaker = &strategies.Breaker{FailThreshold: 2, Cooldown: time.Minute}
	env.AttachObservability(ds.DB)

	q, err := colquery.GenerateAnalyzed(colquery.Type3, colquery.TemplateParams{Selectivity: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	want, err := cli.ColQuery(context.Background(), q.SQL, "DB-UDF", false)
	if err != nil {
		t.Fatal(err)
	}

	env.Faults = faults.New(1, faults.Rule{Point: faults.PointServingError})
	ds.DB.Faults = env.Faults
	got, err := cli.ColQuery(context.Background(), q.SQL, "DB-PyTorch", true)
	env.Faults = nil
	ds.DB.Faults = nil
	if err != nil {
		t.Fatalf("fallback colquery: %v", err)
	}
	if diffCanonKey(got.Result) != diffCanonKey(want.Result) {
		t.Fatal("fallback result differs from direct DB-UDF result via server")
	}
	if len(got.FallbackPath) != 2 || got.FallbackPath[0] != "DB-PyTorch" || got.FallbackPath[1] != "DB-UDF" {
		t.Fatalf("FallbackPath = %v, want [DB-PyTorch DB-UDF]", got.FallbackPath)
	}
	if got.Strategy != "DB-UDF" {
		t.Fatalf("reported strategy = %q, want the strategy that answered (DB-UDF)", got.Strategy)
	}

	// The serving failures tripped the breaker; its state is queryable over
	// the same HTTP surface.
	br, err := cli.Query(context.Background(), `SELECT component, state, trips FROM sys.breaker`)
	if err != nil {
		t.Fatalf("sys.breaker via server: %v", err)
	}
	if br.NumRows() != 1 {
		t.Fatalf("sys.breaker rows = %d, want 1", br.NumRows())
	}
	if comp := br.Cols[0].Get(0).S; comp != "serving-pipe" {
		t.Fatalf("breaker component = %q", comp)
	}
	if state := br.Cols[1].Get(0).S; state != "open" {
		t.Fatalf("breaker state = %q, want open after a dead serving pipe", state)
	}
	if trips, _ := br.Cols[2].Get(0).AsInt(); trips < 1 {
		t.Fatalf("breaker trips = %d, want >= 1", trips)
	}

	// And the session that carried this chaos is visible in sys.sessions.
	ss, err := cli.Query(context.Background(),
		`SELECT id, tenant, queries FROM sys.sessions ORDER BY id`)
	if err != nil {
		t.Fatalf("sys.sessions via server: %v", err)
	}
	found := false
	for i := 0; i < ss.NumRows(); i++ {
		if ss.Cols[0].Get(i).S == cli.Session() {
			found = true
			if tenant := ss.Cols[1].Get(i).S; tenant != "diff" {
				t.Fatalf("session tenant = %q, want diff", tenant)
			}
			if n, _ := ss.Cols[2].Get(i).AsInt(); n < 3 {
				t.Fatalf("session query count = %d, want >= 3", n)
			}
		}
	}
	if !found {
		t.Fatalf("session %s not visible in sys.sessions", cli.Session())
	}

	// With the pipe healthy again the breaker recovers after cooldown; we
	// don't wait a minute here, but a direct DB-UDF query (which never
	// touches the pipe) must still work while the breaker is open.
	if _, err := cli.ColQuery(context.Background(), q.SQL, "DB-UDF", false); err != nil {
		t.Fatalf("DB-UDF while breaker open: %v", err)
	}
}
