package bench

import (
	"strconv"
	"strings"
	"testing"
)

// smallSuite builds the cheapest viable suite for unit tests.
func smallSuite(t *testing.T) *Suite {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Scale = 1
	cfg.QueriesPerType = 1
	cfg.CalibrationSamples = 10
	cfg.Depths = []int{5, 10}
	s, err := NewSuite(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func cell(t *testing.T, tab *Table, row, col int) string {
	t.Helper()
	if row >= len(tab.Rows) || col >= len(tab.Rows[row]) {
		t.Fatalf("table %s has no cell (%d,%d):\n%s", tab.ID, row, col, tab.Render())
	}
	return tab.Rows[row][col]
}

func cellF(t *testing.T, tab *Table, row, col int) float64 {
	t.Helper()
	s := strings.TrimSuffix(strings.TrimSuffix(cell(t, tab, row, col), "x"), "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q not numeric", row, col, s)
	}
	return v
}

func TestTable4Shape(t *testing.T) {
	s := smallSuite(t)
	tab, err := s.Table4StorageOverheads()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for i := range tab.Rows {
		dl2sql := cellF(t, tab, i, 2)
		pytorch := cellF(t, tab, i, 3)
		udf := cellF(t, tab, i, 4)
		if !(dl2sql > pytorch && pytorch > udf) {
			t.Fatalf("row %d: storage order violated: DL2SQL=%v PyTorch=%v UDF=%v", i, dl2sql, pytorch, udf)
		}
	}
	// Growth with depth.
	if cellF(t, tab, 1, 2) <= cellF(t, tab, 0, 2) {
		t.Fatal("DL2SQL storage must grow with depth")
	}
}

func TestFig9Shape(t *testing.T) {
	s := smallSuite(t)
	tab, err := s.Fig9CNNBlocks()
	if err != nil {
		t.Fatal(err)
	}
	var convSecs, otherSecs float64
	seen := map[string]bool{}
	for i, row := range tab.Rows {
		seen[row[0]] = true
		v := cellF(t, tab, i, 1)
		if strings.HasPrefix(row[0], "Conv") {
			convSecs += v
		} else {
			otherSecs += v
		}
	}
	for _, want := range []string{"Conv1", "Conv2", "Conv3", "Reshape1", "Classification"} {
		if !seen[want] {
			t.Fatalf("missing step %s:\n%s", want, tab.Render())
		}
	}
	if convSecs <= otherSecs {
		t.Fatalf("convolutions must dominate: conv %v vs other %v", convSecs, otherSecs)
	}
}

func TestFig10Shape(t *testing.T) {
	s := smallSuite(t)
	tab, err := s.Fig10RelOps()
	if err != nil {
		t.Fatal(err)
	}
	// Join or GroupBy must be the top operator (the paper's finding).
	top := tab.Rows[0][0]
	if top != "Join" && top != "GroupBy" {
		t.Fatalf("top operator is %s:\n%s", top, tab.Render())
	}
}

func TestFig11Shape(t *testing.T) {
	if raceEnabled {
		t.Skip("wall-clock shape comparison is skewed by race instrumentation")
	}
	s := smallSuite(t)
	tab, err := s.Fig11PreJoin()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	none := cellF(t, tab, 0, 3)
	input := cellF(t, tab, 2, 3)
	if input >= none {
		t.Fatalf("pre-join must improve totals: none=%v prejoin-input=%v\n%s", none, input, tab.Render())
	}
}

func TestFig12Shape(t *testing.T) {
	s := smallSuite(t)
	tab, err := s.Fig12CostModel()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 8 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for i := range tab.Rows {
		def := cellF(t, tab, i, 2)
		custom := cellF(t, tab, i, 3)
		actual := cellF(t, tab, i, 4)
		if def <= custom {
			t.Fatalf("row %d: default %v must overestimate customized %v", i, def, custom)
		}
		// The customized estimate must be within ~two orders of magnitude
		// of actual; the default misses by much more on multi-layer sweeps.
		ratio := custom / actual
		if ratio > 100 || ratio < 0.01 {
			t.Fatalf("row %d: customized estimate %v vs actual %v off by >100x", i, custom, actual)
		}
	}
}

func TestFig13Shape(t *testing.T) {
	s := smallSuite(t)
	tab, err := s.Fig13PerOp()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) < 5 {
		t.Fatalf("rows = %d:\n%s", len(tab.Rows), tab.Render())
	}
	// Conv must be the most expensive operator in both columns.
	convEst, convAct := cellF(t, tab, 0, 1), cellF(t, tab, 0, 2)
	if tab.Rows[0][0] != "conv" {
		t.Fatalf("first row should be conv:\n%s", tab.Render())
	}
	for i := 1; i < len(tab.Rows); i++ {
		if cellF(t, tab, i, 1) > convEst {
			t.Fatalf("conv must dominate estimates:\n%s", tab.Render())
		}
		if cellF(t, tab, i, 2) > convAct {
			t.Fatalf("conv must dominate actuals:\n%s", tab.Render())
		}
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{ID: "X", Title: "demo", Columns: []string{"a", "bb"}}
	tab.AddRow("1", "2")
	tab.Notes = append(tab.Notes, "hello")
	out := tab.Render()
	if !strings.Contains(out, "X: demo") || !strings.Contains(out, "note: hello") {
		t.Fatalf("render:\n%s", out)
	}
}
