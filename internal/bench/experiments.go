package bench

import (
	"bytes"
	"compress/flate"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/dl2sql"
	"repro/internal/hwprofile"
	"repro/internal/modelrepo"
	"repro/internal/nn"
	"repro/internal/sqldb"
	"repro/internal/strategies"
	"repro/internal/tensor"
)

// Table4StorageOverheads reproduces Table IV: the model storage footprint
// of each approach across ResNet depths. DL2SQL stores the model as
// relational tables (kernel + bias + metadata + mapping tables); DB-PyTorch
// ships the serialized artifact; DB-UDF links a compressed binary into the
// kernel.
func (s *Suite) Table4StorageOverheads() (*Table, error) {
	t := &Table{
		ID:      "Table IV",
		Title:   "Storage Overheads with Different Model Depths (KB)",
		Columns: []string{"Depth", "Params", "DL2SQL(KB)", "DB-PyTorch(KB)", "DB-UDF(KB)"},
		Notes: []string{
			"shape check: DL2SQL > DB-PyTorch > DB-UDF at every depth, all growing with depth",
		},
	}
	for _, depth := range s.Cfg.Depths {
		m, err := modelrepo.NewResNet(depth, modelrepo.TaskDefectDetection, s.Cfg.KeyframeSide, s.Cfg.Seed)
		if err != nil {
			return nil, err
		}
		artifact, err := nn.EncodeBytes(m)
		if err != nil {
			return nil, err
		}
		var comp bytes.Buffer
		fw, err := flate.NewWriter(&comp, flate.BestSpeed)
		if err != nil {
			return nil, err
		}
		if _, err := fw.Write(artifact); err != nil {
			return nil, err
		}
		if err := fw.Close(); err != nil {
			return nil, err
		}
		db := sqldb.New()
		db.Profile = sqldb.NewProfile()
		tr := dl2sql.NewTranslator(db, "t4")
		sm, err := tr.StoreModel(m)
		if err != nil {
			return nil, err
		}
		t.AddRow(
			fmt.Sprintf("%d", depth),
			fmt.Sprintf("%d", m.ParamCount()),
			fmt.Sprintf("%d", sm.StorageBytes(db)/1024),
			fmt.Sprintf("%d", len(artifact)/1024),
			fmt.Sprintf("%d", comp.Len()/1024),
		)
	}
	return t, nil
}

// Fig8Overall reproduces Fig. 8: the loading/inference/relational breakdown
// of all four approaches across the edge CPU, server CPU, and server GPU
// settings, on the mixed student-model workload.
func (s *Suite) Fig8Overall() (*Table, error) {
	t := &Table{
		ID:      "Fig. 8",
		Title:   "Overall Cost of Collaborative Queries (avg seconds/query)",
		Columns: []string{"Setting", "Approach", "Loading(s)", "Inference(s)", "Relational(s)", "All(s)"},
		Notes: []string{
			"shape check: DL2SQL-OP lowest total on edge-cpu; GPU cuts DB-PyTorch inference but grows loading; DB-UDF gains least from the GPU",
		},
	}
	for _, prof := range hwprofile.All() {
		for _, strat := range strategies.All() {
			bd, err := s.runMix(strat, prof, s.Cfg.QueriesPerType, s.Cfg.Selectivity)
			if err != nil {
				return nil, err
			}
			t.AddRow(prof.Name, strat.Name(), f4(bd.Loading), f4(bd.Inference), f4(bd.Relational), f4(bd.Total()))
		}
	}
	return t, nil
}

// Fig9CNNBlocks reproduces Fig. 9: the per-step cost of the student model's
// SQL pipeline (Conv1..3, Reshape1..2, BN/ReLU per block, Classification),
// averaged over several inferences.
func (s *Suite) Fig9CNNBlocks() (*Table, error) {
	const runs = 3
	db := sqldb.New()
	db.Profile = sqldb.NewProfile()
	tr := dl2sql.NewTranslator(db, "fig9")
	model := s.Ctx.Bindings["nudf_detect"].Entry.Model
	sm, err := tr.StoreModel(model)
	if err != nil {
		return nil, err
	}
	for i := 0; i < runs; i++ {
		in := randomInput(model.InputShape, s.Cfg.Seed+int64(i))
		if _, _, err := tr.Infer(sm, in); err != nil {
			return nil, err
		}
	}
	agg := map[string]time.Duration{}
	var order []string
	for _, step := range tr.Steps {
		if _, ok := agg[step.Label]; !ok {
			order = append(order, step.Label)
		}
		agg[step.Label] += step.Time
	}
	t := &Table{
		ID:      "Fig. 9",
		Title:   "Costs of CNN Blocks in DL2SQL (avg seconds/inference)",
		Columns: []string{"Step", "Time(s)"},
		Notes: []string{
			"shape check: convolution steps dominate; deeper convs cost more than reshapes and elementwise steps",
		},
	}
	for _, label := range order {
		t.AddRow(label, f6(agg[label].Seconds()/runs))
	}
	return t, nil
}

// Fig10RelOps reproduces Fig. 10: the running-time distribution across
// relational operators while DL2SQL executes inference SQL.
func (s *Suite) Fig10RelOps() (*Table, error) {
	db := sqldb.New()
	db.Profile = sqldb.NewProfile()
	tr := dl2sql.NewTranslator(db, "fig10")
	model := s.Ctx.Bindings["nudf_detect"].Entry.Model
	sm, err := tr.StoreModel(model)
	if err != nil {
		return nil, err
	}
	db.Profile = sqldb.NewProfile() // exclude the StoreModel inserts
	for i := 0; i < 3; i++ {
		in := randomInput(model.InputShape, s.Cfg.Seed+int64(i))
		if _, _, err := tr.Infer(sm, in); err != nil {
			return nil, err
		}
	}
	type opRow struct {
		op    string
		nanos int64
		rows  int
	}
	var rows []opRow
	var total int64
	for op, st := range db.Profile.Ops {
		rows = append(rows, opRow{op, st.Nanos, st.Rows})
		total += st.Nanos
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].nanos > rows[j].nanos })
	t := &Table{
		ID:      "Fig. 10",
		Title:   "Costs of Relational Operations in Generated Queries",
		Columns: []string{"Operator", "Time(s)", "Share(%)", "Rows"},
		Notes: []string{
			"shape check: Join and GroupBy are the most expensive operators",
		},
	}
	for _, r := range rows {
		t.AddRow(r.op,
			f6(float64(r.nanos)/1e9),
			fmt.Sprintf("%.1f", 100*float64(r.nanos)/float64(total)),
			fmt.Sprintf("%d", r.rows))
	}
	return t, nil
}

// Fig11PreJoin reproduces Fig. 11: the cost of the CNN blocks under the
// three pre-join strategies.
func (s *Suite) Fig11PreJoin() (*Table, error) {
	t := &Table{
		ID:      "Fig. 11",
		Title:   "Performance of CNN Blocks with Pre-Join Strategies (seconds/inference)",
		Columns: []string{"Strategy", "Conv+Reshape(s)", "Other(s)", "Total(s)"},
		Notes: []string{
			"shape check: each pre-join level reduces the conv+reshape cost: none > prejoin-mapping > prejoin-input",
		},
	}
	model := s.Ctx.Bindings["nudf_detect"].Entry.Model
	for _, strat := range []dl2sql.PreJoinStrategy{dl2sql.PreJoinNone, dl2sql.PreJoinMapping, dl2sql.PreJoinInput} {
		db := sqldb.New()
		db.Profile = sqldb.NewProfile()
		tr := dl2sql.NewTranslator(db, "fig11")
		tr.PreJoin = strat
		sm, err := tr.StoreModel(model)
		if err != nil {
			return nil, err
		}
		const runs = 3
		for i := 0; i < runs; i++ {
			in := randomInput(model.InputShape, s.Cfg.Seed+int64(i))
			if _, _, err := tr.Infer(sm, in); err != nil {
				return nil, err
			}
		}
		var convSecs, otherSecs float64
		for _, step := range tr.Steps {
			sec := step.Time.Seconds() / runs
			if strings.HasPrefix(step.Label, "Conv") || strings.HasPrefix(step.Label, "Reshape") {
				convSecs += sec
			} else {
				otherSecs += sec
			}
		}
		t.AddRow(strat.String(), f6(convSecs), f6(otherSecs), f6(convSecs+otherSecs))
	}
	return t, nil
}

// randomInput builds a deterministic input tensor for a model.
func randomInput(shape []int, seed int64) *tensor.Tensor {
	out := tensor.New(shape...)
	state := uint64(seed)*0x9E3779B97F4A7C15 + 1
	for i := range out.Data() {
		state += 0x9E3779B97F4A7C15
		z := state
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		z ^= z >> 31
		out.Data()[i] = float64(z>>11) / float64(1<<53)
	}
	return out
}
