package bench

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/colquery"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/strategies"
)

// TestServerChaosTraceIDPropagation runs the fallback ladder under a dead
// serving pipe with tail sampling in its strictest mode (hash sampling
// off): the degraded request's trace must be retained for the fallback,
// keep one ID across the serving hop, the history record, the span rows,
// and the post-hoc HTTP export — while clean requests leave nothing.
func TestServerChaosTraceIDPropagation(t *testing.T) {
	env, ds, _, cli := serverFixture(t)
	db := ds.DB
	db.Metrics = obs.NewRegistry()
	db.History = obs.NewQueryHistory(64)
	ts := obs.NewTraceStore(obs.TraceStoreConfig{Seed: 1, SlowThreshold: -1, SampleEvery: -1, Metrics: db.Metrics})
	db.Traces, env.Traces = ts, ts
	env.Metrics, env.History = db.Metrics, db.History
	db.EnableSysCatalog()
	env.AttachObservability(db)
	env.Retry = strategies.RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, JitterSeed: 3}

	ctx := context.Background()
	q, err := colquery.GenerateAnalyzed(colquery.Type3, colquery.TemplateParams{Selectivity: 0.05})
	if err != nil {
		t.Fatal(err)
	}

	// Clean request, sampling off: the trace is dropped and no ID may leak
	// over the wire or into history.
	clean, err := cli.ColQuery(ctx, q.SQL, "DB-UDF", false)
	if err != nil {
		t.Fatal(err)
	}
	if clean.TraceID != "" {
		t.Fatalf("clean request leaked trace ID %q with sampling off", clean.TraceID)
	}
	if ts.Len() != 0 {
		t.Fatalf("store retained %d traces for clean requests", ts.Len())
	}

	// Dead serving pipe: DB-PyTorch degrades to DB-UDF; the fallback is a
	// tail criterion, so this trace must survive.
	env.Faults = faults.New(1, faults.Rule{Point: faults.PointServingError})
	db.Faults = env.Faults
	got, err := cli.ColQuery(ctx, q.SQL, "DB-PyTorch", true)
	env.Faults, db.Faults = nil, nil
	if err != nil {
		t.Fatalf("fallback colquery: %v", err)
	}
	if len(got.FallbackPath) != 2 {
		t.Fatalf("FallbackPath = %v, want the two-rung ladder", got.FallbackPath)
	}
	if got.TraceID == "" {
		t.Fatal("degraded request carried no trace ID")
	}
	if got.TraceID != cli.LastTraceID() {
		t.Fatalf("envelope ID %q != header ID %q", got.TraceID, cli.LastTraceID())
	}
	st, ok := ts.Get(got.TraceID)
	if !ok {
		t.Fatalf("trace %q not retained", got.TraceID)
	}
	if st.Reason != "fallback" && st.Reason != "error" {
		t.Fatalf("retained reason = %q, want fallback (or error from the dead pipe)", st.Reason)
	}
	if st.Spans[0].Name != "request" {
		t.Fatalf("root span = %q, want the serving hop's request span", st.Spans[0].Name)
	}

	// The same ID answers SQL through the same server: span rows and the
	// history record agree on it.
	sp, err := cli.Query(ctx, fmt.Sprintf(
		`SELECT count(*) c FROM sys.spans WHERE trace_id = '%s'`, got.TraceID))
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := sp.Cols[0].Get(0).AsInt(); n < 2 {
		t.Fatalf("sys.spans rows for the trace = %d, want the request root plus strategy spans", n)
	}
	qs, err := cli.Query(ctx, fmt.Sprintf(
		`SELECT count(*) c FROM sys.queries WHERE trace_id = '%s'`, got.TraceID))
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := qs.Cols[0].Get(0).AsInt(); n < 1 {
		t.Fatal("no history record carries the degraded request's trace ID")
	}

	// Post-hoc retrieval over HTTP: the Chrome export names the same ID.
	raw, err := cli.TraceJSON(ctx, got.TraceID)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), got.TraceID) {
		t.Fatal("trace export does not mention its own trace ID")
	}
}
